// Ablation: Greedy execution strategies (serial vs parallel vs lazy).
//
// The serial exact greedy is the paper's algorithm; parallel evaluation
// is bit-identical but uses worker threads; CELF-style lazy greedy trades
// exactness of the argmax (the objective is not submodular) for far
// fewer oracle calls. This bench quantifies both trade-offs.
//
//   ./ablation_greedy_exec [--scale=...] [--threads=4] [--l=10]

#include <cstdio>

#include "anchor/anchored_core.h"
#include "anchor/greedy.h"
#include "bench_common.h"
#include "util/timer.h"

using namespace avt;
using namespace avt::bench;

int main(int argc, char** argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  Flags flags = Flags::Parse(argc, argv);
  const uint32_t threads =
      static_cast<uint32_t>(flags.GetInt("threads", 4));

  TablePrinter table({"dataset", "variant", "time_ms", "oracle_calls",
                      "followers"});
  for (const DatasetInfo& info : SelectDatasets(config)) {
    double scale = config.scale > 0 ? config.scale : DefaultScale(info);
    Graph g = MakeDatasetGraph(info, scale, config.seed);
    const uint32_t k = info.default_k;

    struct Variant {
      GreedyOptions options;
      const char* label;
    };
    GreedyOptions serial;
    GreedyOptions parallel;
    parallel.num_threads = threads;
    GreedyOptions lazy;
    lazy.lazy = true;

    uint32_t serial_followers = 0;
    for (const Variant& variant :
         {Variant{serial, "serial (paper)"},
          Variant{parallel, "parallel"},
          Variant{lazy, "lazy (CELF)"}}) {
      GreedySolver solver(variant.options);
      Timer timer;
      SolverResult result = solver.Solve(g, k, config.l);
      double ms = timer.ElapsedMillis();
      if (variant.options.num_threads <= 1 && !variant.options.lazy) {
        serial_followers = result.num_followers();
      } else if (variant.options.num_threads > 1) {
        AVT_CHECK_MSG(result.num_followers() == serial_followers,
                      "parallel greedy diverged from serial");
      }
      table.Row()
          .Str(info.name)
          .Str(variant.label)
          .Double(ms, 1)
          .UInt(result.candidates_visited)
          .UInt(result.num_followers());
    }
  }
  EmitTable("Ablation: Greedy execution strategies", table,
            config.print_csv);
  std::printf("\nparallel must match serial exactly (checked); lazy may "
              "deviate because anchored-k-core\ngains are not submodular "
              "(Theorem 2 territory) — the delta shown is its real "
              "quality cost.\n");
  return 0;
}
