// Ablation: Greedy execution strategies (scan vs parallel vs lazy).
//
// The eager scan is the paper's algorithm verbatim; parallel evaluation
// distributes the same scan over worker threads; the certified-bound
// lazy loop (the library default) replaces most full oracle queries with
// phase-1 bound probes. All three are bit-identical in output — the
// table quantifies the work trade (full queries vs bound probes vs wall
// time), and the harness aborts if any variant ever diverges.
//
//   ./ablation_greedy_exec [--scale=...] [--threads=4] [--l=10]

#include <cstdio>

#include "anchor/anchored_core.h"
#include "anchor/greedy.h"
#include "bench_common.h"
#include "util/timer.h"

using namespace avt;
using namespace avt::bench;

int main(int argc, char** argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  Flags flags = Flags::Parse(argc, argv);
  const uint32_t threads =
      static_cast<uint32_t>(flags.GetInt("threads", 4));

  TablePrinter table({"dataset", "variant", "time_ms", "full_queries",
                      "bound_probes", "followers"});
  for (const DatasetInfo& info : SelectDatasets(config)) {
    double scale = config.scale > 0 ? config.scale : DefaultScale(info);
    Graph g = MakeDatasetGraph(info, scale, config.seed);
    const uint32_t k = info.default_k;

    struct Variant {
      GreedyOptions options;
      const char* label;
    };
    GreedyOptions scan;
    scan.lazy = false;
    GreedyOptions parallel;
    parallel.lazy = false;
    parallel.num_threads = threads;
    GreedyOptions lazy;  // library default

    std::vector<VertexId> scan_anchors;
    for (const Variant& variant :
         {Variant{scan, "scan (paper)"},
          Variant{parallel, "parallel"},
          Variant{lazy, "lazy (default)"}}) {
      GreedySolver solver(variant.options);
      Timer timer;
      SolverResult result = solver.Solve(g, k, config.l);
      double ms = timer.ElapsedMillis();
      if (!variant.options.lazy && variant.options.num_threads <= 1) {
        scan_anchors = result.anchors;
      } else {
        AVT_CHECK_MSG(result.anchors == scan_anchors,
                      "greedy execution strategies diverged");
      }
      table.Row()
          .Str(info.name)
          .Str(variant.label)
          .Double(ms, 1)
          .UInt(result.candidates_visited)
          .UInt(result.bound_probes)
          .UInt(result.num_followers());
    }
  }
  EmitTable("Ablation: Greedy execution strategies", table,
            config.print_csv);
  std::printf("\nall variants are bit-identical (checked): parallel "
              "shares the eager scan's argmax and the lazy loop's\n"
              "certified bounds guarantee the same pick per step — the "
              "columns show where the work went instead.\n");
  return 0;
}
