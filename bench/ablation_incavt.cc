// Ablation: where does IncAVT's speedup come from?
//
// The incremental tracker combines two mechanisms: (1) bounded K-order
// maintenance instead of per-snapshot rebuilds, and (2) candidate probing
// restricted to churn-impacted vertices. This bench separates them:
//
//   Greedy            rebuild + full Theorem-3 pool   (upper cost bound)
//   IncAVT-fullpool   maintained order + full pool    (isolates (1))
//   IncAVT            maintained order + restricted   (the algorithm)
//   IncAVT-carry      maintained order + no probing   (lower cost bound)
//
//   ./ablation_incavt [--scale=...] [--t=30] [--l=10]

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/engine.h"
#include "core/inc_avt.h"
#include "graph/delta_source.h"

using namespace avt;
using namespace avt::bench;

namespace {

AvtRunResult RunMode(const SnapshotSequence& sequence, uint32_t k,
                     uint32_t l, IncAvtMode mode) {
  AvtEngine engine(std::make_unique<IncAvtTracker>(k, l, mode),
                   std::make_unique<SequenceSource>(&sequence));
  Status status = engine.Drain();
  AVT_CHECK_MSG(status.ok(), status.ToString().c_str());
  AvtRunResult run = engine.TakeResult();
  run.algorithm = AvtAlgorithm::kIncAvt;
  run.k = k;
  run.l = l;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);

  TablePrinter table({"dataset", "variant", "time_ms", "visited",
                      "followers_total"});
  for (const DatasetInfo& info : SelectDatasets(config)) {
    SnapshotSequence sequence = BuildSequence(info, config);
    const uint32_t k = info.default_k;

    AvtRunResult greedy = RunAvt(sequence, AvtAlgorithm::kGreedy, k,
                                 config.l);
    table.Row()
        .Str(info.name)
        .Str("Greedy (rebuild+full)")
        .Double(greedy.TotalMillis(), 1)
        .UInt(greedy.TotalCandidatesVisited())
        .UInt(greedy.TotalFollowers());

    struct Variant {
      IncAvtMode mode;
      const char* label;
    };
    for (const Variant& variant :
         {Variant{IncAvtMode::kMaintainedFull, "IncAVT-fullpool"},
          Variant{IncAvtMode::kRestricted, "IncAVT (published)"},
          Variant{IncAvtMode::kCarryForward, "IncAVT-carry"}}) {
      AvtRunResult run = RunMode(sequence, k, config.l, variant.mode);
      table.Row()
          .Str(info.name)
          .Str(variant.label)
          .Double(run.TotalMillis(), 1)
          .UInt(run.TotalCandidatesVisited())
          .UInt(run.TotalFollowers());
    }
  }
  EmitTable("Ablation: IncAVT speedup decomposition", table,
            config.print_csv);
  std::printf("\nreading guide: fullpool isolates K-order maintenance; the "
              "published variant adds candidate\nrestriction; carry shows "
              "the quality cost of never re-probing.\n");
  return 0;
}
