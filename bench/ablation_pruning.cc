// Ablation: the two Greedy accelerations of Section 4, measured
// separately (this is the design-choice experiment DESIGN.md calls out;
// the paper reports the combined effect only).
//
//  (a) Theorem-3 candidate pruning: optimized Greedy vs the same solver
//      with the unpruned candidate pool.
//  (b) Order-based follower computation: FollowerOracle vs the exact
//      pinned peel, at equal candidate sets.
//
//   ./ablation_pruning [--scale=...] [--seed=42]

#include <cstdio>

#include "anchor/anchored_core.h"
#include "anchor/candidates.h"
#include "anchor/follower_oracle.h"
#include "anchor/greedy.h"
#include "bench_common.h"
#include "corelib/korder.h"
#include "util/timer.h"

using namespace avt;
using namespace avt::bench;

int main(int argc, char** argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);

  TablePrinter pruning({"dataset", "pruned_ms", "pruned_visited",
                        "unpruned_ms", "unpruned_visited", "followers_eq"});
  TablePrinter oracle_table({"dataset", "candidates", "oracle_ms",
                             "exact_peel_ms", "speedup"});

  for (const DatasetInfo& info : SelectDatasets(config)) {
    double scale = config.scale > 0 ? config.scale : DefaultScale(info);
    Graph g = MakeDatasetGraph(info, scale, config.seed);
    const uint32_t k = info.default_k;
    const uint32_t l = 5;

    // (a) candidate pruning.
    GreedySolver pruned(true), unpruned(false);
    Timer t1;
    SolverResult a = pruned.Solve(g, k, l);
    double pruned_ms = t1.ElapsedMillis();
    Timer t2;
    SolverResult b = unpruned.Solve(g, k, l);
    double unpruned_ms = t2.ElapsedMillis();
    pruning.Row()
        .Str(info.name)
        .Double(pruned_ms, 2)
        .UInt(a.candidates_visited)
        .Double(unpruned_ms, 2)
        .UInt(b.candidates_visited)
        .Str(a.num_followers() == b.num_followers() ? "yes" : "NO");

    // (b) follower computation: evaluate every Theorem-3 candidate once.
    KOrder order;
    order.Build(g);
    FollowerOracle oracle(&g, &order);
    std::vector<VertexId> pool = CollectAnchorCandidates(g, order, k);
    Timer t3;
    uint64_t sink1 = 0;
    for (VertexId x : pool) {
      std::vector<VertexId> anchors{x};
      sink1 += oracle.CountFollowers(anchors, k);
    }
    double oracle_ms = t3.ElapsedMillis();
    Timer t4;
    uint64_t sink2 = 0;
    for (VertexId x : pool) {
      sink2 += CountFollowersExact(g, k, {x});
    }
    double exact_ms = t4.ElapsedMillis();
    AVT_CHECK_MSG(sink1 == sink2, "oracle diverged from exact peel");
    oracle_table.Row()
        .Str(info.name)
        .UInt(pool.size())
        .Double(oracle_ms, 2)
        .Double(exact_ms, 2)
        .Double(oracle_ms > 0 ? exact_ms / oracle_ms : 0.0, 1);
  }

  EmitTable("Ablation (a): Theorem-3 candidate pruning", pruning,
            config.print_csv);
  EmitTable("Ablation (b): order-based follower oracle vs exact peel",
            oracle_table, config.print_csv);
  std::printf("\n'followers_eq' confirms pruning never changes the "
              "result; 'speedup' is exact/oracle per-candidate cost.\n");
  return 0;
}
