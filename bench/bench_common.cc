#include "bench_common.h"

#include <cstdio>
#include <sstream>

#include "util/ascii_chart.h"

namespace avt {
namespace bench {

BenchConfig ParseBenchConfig(int argc, char** argv, size_t default_t) {
  Flags flags = Flags::Parse(argc, argv);
  BenchConfig config;
  config.scale = flags.GetDouble("scale", 0.0);
  config.T = static_cast<size_t>(
      flags.GetInt("t", static_cast<int64_t>(default_t)));
  config.l = static_cast<uint32_t>(flags.GetInt("l", 10));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  config.print_csv = flags.GetBool("csv", true);
  std::string names = flags.GetString("datasets", "");
  if (!names.empty()) {
    std::stringstream stream(names);
    std::string token;
    while (std::getline(stream, token, ',')) {
      if (!token.empty()) config.dataset_names.push_back(token);
    }
  }
  return config;
}

double DefaultScale(const DatasetInfo& info) {
  // Keep every replica in the few-thousand-vertex regime by default; the
  // OLAK baseline is quadratic-ish on shell-heavy configurations, so the
  // whole harness stays minutes-long. --scale overrides.
  if (info.paper_nodes > 30'000) return 0.05;
  if (info.paper_nodes > 10'000) return 0.15;
  return 1.0;
}

std::vector<DatasetInfo> SelectDatasets(const BenchConfig& config) {
  std::vector<DatasetInfo> selected;
  if (config.dataset_names.empty()) {
    selected = AllDatasets();
  } else {
    for (const std::string& name : config.dataset_names) {
      selected.push_back(DatasetByName(name));
    }
  }
  return selected;
}

SnapshotSequence BuildSequence(const DatasetInfo& info,
                               const BenchConfig& config) {
  double scale = config.scale > 0 ? config.scale : DefaultScale(info);
  return MakeDatasetSnapshots(info, scale, config.T, config.seed);
}

void EmitTable(const std::string& title, const TablePrinter& table,
               bool print_csv) {
  std::printf("\n== %s ==\n%s", title.c_str(), table.ToText().c_str());
  if (print_csv) {
    std::printf("-- csv --\n%s", table.ToCsv().c_str());
  }
  std::fflush(stdout);
}

std::string JoinVertices(const std::vector<VertexId>& vertices,
                         size_t limit) {
  std::string out;
  size_t shown = std::min(limit, vertices.size());
  for (size_t i = 0; i < shown; ++i) {
    if (i) out += ' ';
    out += std::to_string(vertices[i]);
  }
  if (vertices.size() > shown) out += " ...";
  return out;
}

namespace {

// Aggregates a run into the figure's y value at a sweep point. For T
// sweeps `prefix` limits aggregation to the first `prefix` snapshots.
double MetricValue(const AvtRunResult& run, Metric metric, size_t prefix) {
  size_t count = std::min(prefix, run.snapshots.size());
  switch (metric) {
    case Metric::kTimeMillis: {
      double total = 0;
      for (size_t t = 0; t < count; ++t) total += run.snapshots[t].millis;
      return total;
    }
    case Metric::kVisited: {
      uint64_t total = 0;
      for (size_t t = 0; t < count; ++t) {
        total += run.snapshots[t].candidates_visited;
      }
      return static_cast<double>(total);
    }
    case Metric::kFollowers: {
      // Figures 9-11 plot the total followers produced over the run so
      // far (the paper's Deezer curve reaches ~50k by T=30 — a
      // cumulative count, since a single snapshot cannot have more
      // followers than vertices).
      uint64_t total = 0;
      for (size_t t = 0; t < count; ++t) {
        total += run.snapshots[t].num_followers;
      }
      return static_cast<double>(total);
    }
  }
  return 0;
}

std::string MetricHeader(Metric metric) {
  switch (metric) {
    case Metric::kTimeMillis: return "time_ms";
    case Metric::kVisited: return "visited";
    case Metric::kFollowers: return "followers";
  }
  return "value";
}

}  // namespace

void RunFigureSweep(const BenchConfig& config, const std::string& figure,
                    Sweep sweep, Metric metric,
                    const std::vector<AvtAlgorithm>& algorithms) {
  const std::vector<size_t> t_points{2, 6, 10, 14, 18, 22, 26, 30};
  const std::vector<uint32_t> l_points{5, 10, 15, 20};

  for (const DatasetInfo& info : SelectDatasets(config)) {
    SnapshotSequence sequence = BuildSequence(info, config);

    // Collect the x axis and one value series per algorithm.
    std::vector<std::string> x_labels;
    std::vector<ChartSeries> series(algorithms.size());
    for (size_t a = 0; a < algorithms.size(); ++a) {
      series[a].label = AvtAlgorithmName(algorithms[a]);
    }

    if (sweep == Sweep::kT) {
      // One run at full length per algorithm; prefix aggregation.
      std::vector<AvtRunResult> runs;
      runs.reserve(algorithms.size());
      for (AvtAlgorithm algorithm : algorithms) {
        runs.push_back(
            RunAvt(sequence, algorithm, info.default_k, config.l));
      }
      for (size_t t : t_points) {
        if (t > sequence.NumSnapshots()) break;
        x_labels.push_back(std::to_string(t));
        for (size_t a = 0; a < runs.size(); ++a) {
          series[a].values.push_back(MetricValue(runs[a], metric, t));
        }
      }
    } else if (sweep == Sweep::kK) {
      for (uint32_t k : info.k_values) {
        x_labels.push_back(std::to_string(k));
        for (size_t a = 0; a < algorithms.size(); ++a) {
          AvtRunResult run = RunAvt(sequence, algorithms[a], k, config.l);
          series[a].values.push_back(
              MetricValue(run, metric, run.snapshots.size()));
        }
      }
    } else {
      for (uint32_t l : l_points) {
        x_labels.push_back(std::to_string(l));
        for (size_t a = 0; a < algorithms.size(); ++a) {
          AvtRunResult run =
              RunAvt(sequence, algorithms[a], info.default_k, l);
          series[a].values.push_back(
              MetricValue(run, metric, run.snapshots.size()));
        }
      }
    }

    // Table.
    std::vector<std::string> header{
        sweep == Sweep::kK ? "k" : (sweep == Sweep::kL ? "l" : "T")};
    for (const ChartSeries& s : series) {
      header.push_back(s.label + "_" + MetricHeader(metric));
    }
    TablePrinter table(std::move(header));
    for (size_t i = 0; i < x_labels.size(); ++i) {
      auto row = table.Row();
      row.Str(x_labels[i]);
      for (const ChartSeries& s : series) {
        row.Double(s.values[i], metric == Metric::kTimeMillis ? 2 : 0);
      }
    }
    EmitTable(figure + " — " + info.name, table, config.print_csv);

    // Chart (log scale, like the paper's plots).
    ChartOptions chart;
    chart.x_label =
        sweep == Sweep::kK ? "k" : (sweep == Sweep::kL ? "l" : "T");
    chart.y_label = MetricHeader(metric);
    std::printf("%s\n",
                RenderAsciiChart(x_labels, series, chart).c_str());
  }
}

}  // namespace bench
}  // namespace avt
