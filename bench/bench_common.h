// Shared experiment-harness plumbing for the per-figure bench binaries.
//
// Every binary follows the same shape:
//   * parse flags (--scale, --t, --l, --seed, --datasets, --csv);
//   * loop over datasets x parameter values x algorithms;
//   * run RunAvt over the dataset's snapshot sequence;
//   * print a paper-style aligned table plus a CSV block.
//
// Default scales are chosen so the whole harness finishes in minutes;
// --scale closer to 1.0 approaches the paper's full dataset sizes.

#ifndef AVT_BENCH_BENCH_COMMON_H_
#define AVT_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/avt.h"
#include "gen/datasets.h"
#include "util/flags.h"
#include "util/ascii_chart.h"
#include "util/table.h"

namespace avt {
namespace bench {

/// Harness configuration derived from command-line flags.
struct BenchConfig {
  double scale = 0.0;        // 0 = per-dataset default
  size_t T = 30;             // snapshots
  uint32_t l = 10;           // anchor budget (paper default)
  uint64_t seed = 42;
  bool print_csv = true;
  std::vector<std::string> dataset_names;  // empty = all six
  std::vector<AvtAlgorithm> algorithms = {
      AvtAlgorithm::kOlak, AvtAlgorithm::kGreedy, AvtAlgorithm::kIncAvt,
      AvtAlgorithm::kRcm};
};

/// Parses the common flags; unknown flags are ignored by design.
/// `default_t` lets expensive sweeps (k sweeps rerun every algorithm per
/// k value) default below the paper's T=30; --t restores it.
BenchConfig ParseBenchConfig(int argc, char** argv, size_t default_t = 30);

/// Default scale for a dataset: large graphs get shrunk harder so every
/// figure regenerates quickly.
double DefaultScale(const DatasetInfo& info);

/// Resolves the datasets selected by the config (all six if unset).
std::vector<DatasetInfo> SelectDatasets(const BenchConfig& config);

/// Builds (and memoizes nothing — callers cache) the snapshot sequence
/// for a dataset under this config.
SnapshotSequence BuildSequence(const DatasetInfo& info,
                               const BenchConfig& config);

/// Prints the table plus optional CSV with a titled banner.
void EmitTable(const std::string& title, const TablePrinter& table,
               bool print_csv);

/// Formats a vertex list as "v1 v2 v3" (for anchor/follower columns).
std::string JoinVertices(const std::vector<VertexId>& vertices,
                         size_t limit = 12);

/// What a figure plots on its y-axis.
enum class Metric {
  kTimeMillis,   // Figures 3, 5, 7
  kVisited,      // Figures 4, 6, 8
  kFollowers,    // Figures 9, 10, 11
};

/// What a figure sweeps on its x-axis.
enum class Sweep {
  kK,  // dataset-specific k values (Table 3)
  kL,  // l in {5, 10, 15, 20}
  kT,  // T in {2, 6, ..., 30}; one run at max T, prefix aggregation
};

/// Runs the standard figure harness: for each selected dataset and each
/// sweep value, runs every algorithm in `algorithms` and prints one table
/// per dataset with a row per sweep value and a column per algorithm —
/// the same series the corresponding paper figure plots.
void RunFigureSweep(const BenchConfig& config, const std::string& figure,
                    Sweep sweep, Metric metric,
                    const std::vector<AvtAlgorithm>& algorithms);

}  // namespace bench
}  // namespace avt

#endif  // AVT_BENCH_BENCH_COMMON_H_
