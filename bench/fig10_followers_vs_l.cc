// Figure 10: followers vs l, one series per algorithm, one panel (table)
// per dataset. Reproduces the paper's Figure 10(a)-(f) with
// OLAK, Greedy, IncAVT and RCM.
//
//   ./fig10_followers_vs_l [--scale=...] [--t=30] [--l=10] [--datasets=a,b] [--seed=42]

#include "bench_common.h"

using namespace avt;
using namespace avt::bench;

int main(int argc, char** argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  RunFigureSweep(config, "Figure 10: followers vs l",
                 Sweep::kL, Metric::kFollowers,
                 {AvtAlgorithm::kOlak, AvtAlgorithm::kGreedy, AvtAlgorithm::kIncAvt, AvtAlgorithm::kRcm});
  return 0;
}
