// Figure 12 + Section 6.4 case study: follower counts of the four
// approximate algorithms against the brute-force optimum on the eu-core
// replica with l = 2, k = 3, per snapshot.
//
// The paper reports the approximate algorithms land within a whisker of
// the exact optimum (follower counts 0-7); the same closeness should be
// visible here.
//
//   ./fig12_case_study [--t=20] [--scale=1.0] [--seed=42]

#include <cstdio>

#include "bench_common.h"

using namespace avt;
using namespace avt::bench;

int main(int argc, char** argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  const uint32_t k = 3;
  const uint32_t l = 2;
  size_t T = config.T > 20 ? 20 : config.T;  // the paper plots T <= 20

  const DatasetInfo& info = DatasetByName("eu-core");
  BenchConfig sequence_config = config;
  sequence_config.T = T;
  SnapshotSequence sequence = BuildSequence(info, sequence_config);

  const std::vector<AvtAlgorithm> algorithms{
      AvtAlgorithm::kOlak, AvtAlgorithm::kGreedy, AvtAlgorithm::kIncAvt,
      AvtAlgorithm::kRcm, AvtAlgorithm::kBruteForce};

  std::vector<AvtRunResult> runs;
  for (AvtAlgorithm algorithm : algorithms) {
    runs.push_back(RunAvt(sequence, algorithm, k, l));
  }

  TablePrinter table({"T", "OLAK", "Greedy", "IncAVT", "RCM",
                      "Brute-force"});
  for (size_t t = 0; t < T; ++t) {
    auto row = table.Row();
    row.UInt(t);
    for (const AvtRunResult& run : runs) {
      row.UInt(run.snapshots[t].num_followers);
    }
  }
  EmitTable("Figure 12: follower number comparison (eu-core, l=2, k=3)",
            table, config.print_csv);

  // Shape check the paper emphasizes: the heuristics stay close to the
  // optimum.
  uint64_t brute = runs.back().TotalFollowers();
  std::printf("\ntotal followers across snapshots: brute-force=%lu",
              static_cast<unsigned long>(brute));
  for (size_t i = 0; i + 1 < runs.size(); ++i) {
    std::printf(", %s=%lu", AvtAlgorithmName(algorithms[i]),
                static_cast<unsigned long>(runs[i].TotalFollowers()));
  }
  std::printf("\n");
  return 0;
}
