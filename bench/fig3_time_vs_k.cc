// Figure 3: running time vs k, one series per algorithm, one panel (table)
// per dataset. Reproduces the paper's Figure 3(a)-(f) with
// OLAK, Greedy, IncAVT and RCM.
//
//   ./fig3_time_vs_k [--scale=...] [--t=30] [--l=10] [--datasets=a,b] [--seed=42]

#include "bench_common.h"

using namespace avt;
using namespace avt::bench;

int main(int argc, char** argv) {
  // k sweeps rerun every algorithm per k value; default to T=10 so the
  // whole harness stays minutes-long (--t=30 restores the paper protocol).
  BenchConfig config = ParseBenchConfig(argc, argv, /*default_t=*/10);
  RunFigureSweep(config, "Figure 3: running time vs k",
                 Sweep::kK, Metric::kTimeMillis,
                 {AvtAlgorithm::kOlak, AvtAlgorithm::kGreedy, AvtAlgorithm::kIncAvt, AvtAlgorithm::kRcm});
  return 0;
}
