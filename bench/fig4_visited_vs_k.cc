// Figure 4: visited candidate anchors vs k, one series per algorithm, one panel (table)
// per dataset. Reproduces the paper's Figure 4(a)-(f) with
// OLAK, Greedy and IncAVT (the paper omits RCM here).
//
//   ./fig4_visited_vs_k [--scale=...] [--t=30] [--l=10] [--datasets=a,b] [--seed=42]

#include "bench_common.h"

using namespace avt;
using namespace avt::bench;

int main(int argc, char** argv) {
  // k sweeps rerun every algorithm per k value; default to T=10 so the
  // whole harness stays minutes-long (--t=30 restores the paper protocol).
  BenchConfig config = ParseBenchConfig(argc, argv, /*default_t=*/10);
  RunFigureSweep(config, "Figure 4: visited candidate anchors vs k",
                 Sweep::kK, Metric::kVisited,
                 {AvtAlgorithm::kOlak, AvtAlgorithm::kGreedy, AvtAlgorithm::kIncAvt});
  return 0;
}
