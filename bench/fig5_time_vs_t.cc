// Figure 5: running time vs T, one series per algorithm, one panel (table)
// per dataset. Reproduces the paper's Figure 5(a)-(f) with
// OLAK, Greedy, IncAVT and RCM.
//
//   ./fig5_time_vs_t [--scale=...] [--t=30] [--l=10] [--datasets=a,b] [--seed=42]

#include "bench_common.h"

using namespace avt;
using namespace avt::bench;

int main(int argc, char** argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  RunFigureSweep(config, "Figure 5: running time vs T",
                 Sweep::kT, Metric::kTimeMillis,
                 {AvtAlgorithm::kOlak, AvtAlgorithm::kGreedy, AvtAlgorithm::kIncAvt, AvtAlgorithm::kRcm});
  return 0;
}
