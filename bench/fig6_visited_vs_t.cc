// Figure 6: visited candidate anchors vs T, one series per algorithm, one panel (table)
// per dataset. Reproduces the paper's Figure 6(a)-(f) with
// OLAK, Greedy and IncAVT (the paper omits RCM here).
//
//   ./fig6_visited_vs_t [--scale=...] [--t=30] [--l=10] [--datasets=a,b] [--seed=42]

#include "bench_common.h"

using namespace avt;
using namespace avt::bench;

int main(int argc, char** argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  RunFigureSweep(config, "Figure 6: visited candidate anchors vs T",
                 Sweep::kT, Metric::kVisited,
                 {AvtAlgorithm::kOlak, AvtAlgorithm::kGreedy, AvtAlgorithm::kIncAvt});
  return 0;
}
