// Figure 7: running time vs l, one series per algorithm, one panel (table)
// per dataset. Reproduces the paper's Figure 7(a)-(f) with
// OLAK, Greedy, IncAVT and RCM.
//
//   ./fig7_time_vs_l [--scale=...] [--t=30] [--l=10] [--datasets=a,b] [--seed=42]

#include "bench_common.h"

using namespace avt;
using namespace avt::bench;

int main(int argc, char** argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  RunFigureSweep(config, "Figure 7: running time vs l",
                 Sweep::kL, Metric::kTimeMillis,
                 {AvtAlgorithm::kOlak, AvtAlgorithm::kGreedy, AvtAlgorithm::kIncAvt, AvtAlgorithm::kRcm});
  return 0;
}
