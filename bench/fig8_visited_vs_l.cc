// Figure 8: visited candidate anchors vs l, one series per algorithm, one panel (table)
// per dataset. Reproduces the paper's Figure 8(a)-(f) with
// OLAK, Greedy and IncAVT (the paper omits RCM here).
//
//   ./fig8_visited_vs_l [--scale=...] [--t=30] [--l=10] [--datasets=a,b] [--seed=42]

#include "bench_common.h"

using namespace avt;
using namespace avt::bench;

int main(int argc, char** argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  RunFigureSweep(config, "Figure 8: visited candidate anchors vs l",
                 Sweep::kL, Metric::kVisited,
                 {AvtAlgorithm::kOlak, AvtAlgorithm::kGreedy, AvtAlgorithm::kIncAvt});
  return 0;
}
