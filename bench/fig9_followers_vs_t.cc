// Figure 9: followers vs T, one series per algorithm, one panel (table)
// per dataset. Reproduces the paper's Figure 9(a)-(f) with
// OLAK, Greedy, IncAVT and RCM.
//
//   ./fig9_followers_vs_t [--scale=...] [--t=30] [--l=10] [--datasets=a,b] [--seed=42]

#include "bench_common.h"

using namespace avt;
using namespace avt::bench;

int main(int argc, char** argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  RunFigureSweep(config, "Figure 9: followers vs T",
                 Sweep::kT, Metric::kFollowers,
                 {AvtAlgorithm::kOlak, AvtAlgorithm::kGreedy, AvtAlgorithm::kIncAvt, AvtAlgorithm::kRcm});
  return 0;
}
