// Google-benchmark microbenches for the library's primitives:
// core decomposition, K-order construction, single-edge maintenance vs
// rebuild, follower-oracle queries, and exact anchored peels.
//
//   ./micro_benchmarks [--benchmark_filter=...]

#include <benchmark/benchmark.h>

#include "anchor/anchored_core.h"
#include "anchor/candidates.h"
#include "anchor/follower_oracle.h"
#include "corelib/decomposition.h"
#include "corelib/korder.h"
#include "gen/models.h"
#include "maint/maintainer.h"
#include "util/random.h"

namespace avt {
namespace {

Graph BenchGraph(int64_t n) {
  Rng rng(1234);
  return ChungLuPowerLaw(static_cast<VertexId>(n), 8.0, 2.1,
                         static_cast<uint32_t>(n / 20 + 10), rng);
}

void BM_CoreDecomposition(benchmark::State& state) {
  Graph g = BenchGraph(state.range(0));
  for (auto _ : state) {
    CoreDecomposition cores = DecomposeCores(g);
    benchmark::DoNotOptimize(cores.max_core);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.NumEdges()));
}
BENCHMARK(BM_CoreDecomposition)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_KOrderBuild(benchmark::State& state) {
  Graph g = BenchGraph(state.range(0));
  for (auto _ : state) {
    KOrder order;
    order.Build(g);
    benchmark::DoNotOptimize(order.MaxLevel());
  }
}
BENCHMARK(BM_KOrderBuild)->Arg(1000)->Arg(10000)->Arg(50000);

// Maintain one edge churn step (insert + remove) on a warm index.
void BM_MaintainSingleEdge(benchmark::State& state) {
  Graph g = BenchGraph(state.range(0));
  CoreMaintainer m;
  m.Reset(g);
  Rng rng(77);
  const VertexId n = g.NumVertices();
  for (auto _ : state) {
    VertexId u = static_cast<VertexId>(rng.Uniform(n));
    VertexId v = static_cast<VertexId>(rng.Uniform(n));
    if (u == v) continue;
    if (m.InsertEdge(u, v)) {
      m.RemoveEdge(u, v);
    }
  }
}
BENCHMARK(BM_MaintainSingleEdge)->Arg(1000)->Arg(10000)->Arg(50000);

// The alternative the maintenance replaces: full rebuild per edge.
void BM_RebuildPerEdge(benchmark::State& state) {
  Graph g = BenchGraph(state.range(0));
  Rng rng(78);
  const VertexId n = g.NumVertices();
  for (auto _ : state) {
    VertexId u = static_cast<VertexId>(rng.Uniform(n));
    VertexId v = static_cast<VertexId>(rng.Uniform(n));
    if (u == v) continue;
    if (g.AddEdge(u, v)) {
      KOrder order;
      order.Build(g);
      benchmark::DoNotOptimize(order.MaxLevel());
      g.RemoveEdge(u, v);
    }
  }
}
BENCHMARK(BM_RebuildPerEdge)->Arg(1000)->Arg(10000);

void BM_FollowerOracleQuery(benchmark::State& state) {
  Graph g = BenchGraph(state.range(0));
  KOrder order;
  order.Build(g);
  FollowerOracle oracle(&g, &order);
  std::vector<VertexId> pool = CollectAnchorCandidates(g, order, 3);
  if (pool.empty()) {
    state.SkipWithError("no candidates");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    std::vector<VertexId> anchors{pool[i % pool.size()]};
    benchmark::DoNotOptimize(oracle.CountFollowers(anchors, 3));
    ++i;
  }
}
BENCHMARK(BM_FollowerOracleQuery)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_ExactAnchoredPeel(benchmark::State& state) {
  Graph g = BenchGraph(state.range(0));
  KOrder order;
  order.Build(g);
  std::vector<VertexId> pool = CollectAnchorCandidates(g, order, 3);
  if (pool.empty()) {
    state.SkipWithError("no candidates");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CountFollowersExact(g, 3, {pool[i % pool.size()]}));
    ++i;
  }
}
BENCHMARK(BM_ExactAnchoredPeel)->Arg(1000)->Arg(10000);

void BM_BatchDelta(benchmark::State& state) {
  Graph g = BenchGraph(10000);
  CoreMaintainer m;
  m.Reset(g);
  Rng rng(79);
  for (auto _ : state) {
    state.PauseTiming();
    EdgeDelta delta;
    std::vector<Edge> edges = m.graph().CollectEdges();
    std::vector<uint64_t> picks = rng.SampleDistinct(
        edges.size(), static_cast<uint64_t>(state.range(0)));
    for (uint64_t p : picks) delta.deletions.push_back(edges[p]);
    int added = 0;
    while (added < state.range(0)) {
      VertexId u = static_cast<VertexId>(rng.Uniform(10000));
      VertexId v = static_cast<VertexId>(rng.Uniform(10000));
      if (u == v || m.graph().HasEdge(u, v)) continue;
      Edge e(u, v);
      bool dup = false;
      for (const Edge& d : delta.deletions) {
        if (d == e) dup = true;
      }
      if (dup) continue;
      delta.insertions.push_back(e);
      ++added;
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(m.ApplyDelta(delta).size());
  }
}
BENCHMARK(BM_BatchDelta)->Arg(100)->Arg(250);

}  // namespace
}  // namespace avt

BENCHMARK_MAIN();
