// Perf gate: the repeatable before/after measurements behind
// BENCH_PR2.json and BENCH_PR3.json (run via scripts/bench.sh).
//
// PR-2 gates — two workloads, each measured in its eager ("before", the
// seed repo's execution strategy) and lazy ("after", certified-bound
// CELF) form:
//
//   * greedy_solve — one GreedySolver::Solve on a Chung-Lu power-law
//     graph (paper-style social topology) at --n vertices;
//   * incavt_per_delta — an IncAvtTracker over a --t-snapshot churn
//     sequence, timing only the ProcessDelta steps.
//
// PR-3 gate — thread scaling of the parallel trial engine: the same two
// workloads (lazy strategy) at every --threads-list count, reporting
// wall time and speedup vs 1 thread into --threads-out. host_cpus is
// recorded alongside because wall-clock scaling is bounded by the
// machine; the work counters and outputs are deterministic everywhere.
//
// PR-4 gate — CSR maintenance for the incremental tracker: the IncAVT
// per-delta workload across the three cascade-scan backings (no CSR /
// rebuild-per-delta CsrView / delta-maintained DynamicCsr), emitted to
// --csr-out with the patch-vs-rebuild ratio. Anchors are additionally
// asserted identical for the maintained backing across
// {lazy, eager} x threads {1, 2, 8}.
//
// Outputs are asserted identical between all strategies, thread counts,
// and scan backings before any number is written: the gate measures a
// speedup, never a quality trade. The JSON is intentionally flat so
// future PRs can diff it and append their own gates alongside.
//
//   ./bench_perf_gate [--n=50000] [--k=3] [--l=10] [--t=12]
//                     [--churn=150] [--repeats=3] [--out=BENCH_PR2.json]
//                     [--threads-list=1,2,4,8] [--threads-out=BENCH_PR3.json]
//                     [--csr-out=BENCH_PR4.json]
//
// --repeats re-runs each timed section and keeps the fastest wall time
// (work counters are deterministic and identical across repeats).

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "anchor/greedy.h"
#include "core/inc_avt.h"
#include "gen/churn.h"
#include "gen/models.h"
#include "graph/snapshots.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/status.h"
#include "util/timer.h"

namespace avt {
namespace {

struct GateMetrics {
  double millis = 0;
  uint64_t oracle_queries = 0;  // full follower queries
  uint64_t bound_probes = 0;    // phase-1-only probes
  uint64_t followers = 0;
};

GateMetrics MeasureGreedy(const Graph& g, uint32_t k, uint32_t l,
                          bool lazy, int repeats,
                          std::vector<VertexId>* anchors_out,
                          uint32_t num_threads = 1) {
  GateMetrics metrics;
  metrics.millis = 1e300;
  GreedyOptions options;
  options.lazy = lazy;
  options.num_threads = num_threads;
  for (int r = 0; r < repeats; ++r) {
    GreedySolver solver(options);
    Timer timer;
    SolverResult result = solver.Solve(g, k, l);
    metrics.millis = std::min(metrics.millis, timer.ElapsedMillis());
    metrics.oracle_queries = result.candidates_visited;
    metrics.bound_probes = result.bound_probes;
    metrics.followers = result.num_followers();
    *anchors_out = result.anchors;
  }
  return metrics;
}

GateMetrics MeasureIncAvt(const SnapshotSequence& sequence, uint32_t k,
                          uint32_t l, bool lazy, int repeats,
                          std::vector<std::vector<VertexId>>* anchors_out,
                          uint32_t num_threads = 1,
                          IncAvtCsrMode csr_mode = IncAvtCsrMode::kMaintained) {
  GateMetrics metrics;
  metrics.millis = 1e300;
  for (int r = 0; r < repeats; ++r) {
    IncAvtOptions options;
    options.lazy = lazy;
    options.num_threads = num_threads;
    options.csr = csr_mode;
    IncAvtTracker tracker(k, l, IncAvtMode::kRestricted, options);
    anchors_out->clear();
    double delta_millis = 0;
    uint64_t queries = 0;
    uint64_t probes = 0;
    uint64_t followers = 0;
    sequence.ForEachSnapshot([&](size_t t, const Graph& graph,
                                 const EdgeDelta& delta) {
      if (t == 0) {
        AvtSnapshotResult snap = tracker.ProcessFirst(graph);
        anchors_out->push_back(snap.anchors);
        return;
      }
      Timer timer;
      AvtSnapshotResult snap = tracker.ProcessDelta(graph, delta);
      delta_millis += timer.ElapsedMillis();
      queries += snap.candidates_visited;
      probes += snap.bound_probes;
      followers += snap.num_followers;
      anchors_out->push_back(snap.anchors);
    });
    metrics.millis = std::min(metrics.millis, delta_millis);
    metrics.oracle_queries = queries;
    metrics.bound_probes = probes;
    metrics.followers = followers;
  }
  return metrics;
}

void PrintMetrics(FILE* f, const char* key, const GateMetrics& m,
                  const char* trailing) {
  std::fprintf(f,
               "    \"%s\": {\"millis\": %.3f, \"oracle_queries\": %" PRIu64
               ", \"bound_probes\": %" PRIu64 ", \"followers\": %" PRIu64
               "}%s\n",
               key, m.millis, m.oracle_queries, m.bound_probes, m.followers,
               trailing);
}

double Ratio(double before, double after) {
  return after > 0 ? before / after : 0.0;
}

std::vector<uint32_t> ParseThreadList(const std::string& spec) {
  std::vector<uint32_t> counts;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    int value = std::atoi(spec.substr(pos, comma - pos).c_str());
    if (value > 0) counts.push_back(static_cast<uint32_t>(value));
    pos = comma + 1;
  }
  // Speedups are measured relative to 1 thread and reported against the
  // largest count; sorting + deduping makes any input order valid and
  // keeps the per-count JSON keys unique.
  counts.push_back(1);
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

}  // namespace
}  // namespace avt

int main(int argc, char** argv) {
  using namespace avt;
  Flags flags = Flags::Parse(argc, argv);
  const uint32_t n = static_cast<uint32_t>(flags.GetInt("n", 50000));
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 3));
  const uint32_t l = static_cast<uint32_t>(flags.GetInt("l", 10));
  const size_t T = static_cast<size_t>(flags.GetInt("t", 12));
  const uint32_t churn = static_cast<uint32_t>(flags.GetInt("churn", 150));
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  const std::string out = flags.GetString("out", "BENCH_PR2.json");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1234));

  // Same topology family as bench/micro_benchmarks.cc's BenchGraph.
  Rng rng(seed);
  Graph g = ChungLuPowerLaw(n, 8.0, 2.1, n / 20 + 10, rng);
  std::printf("graph: n=%u m=%" PRIu64 " (Chung-Lu power law)\n",
              g.NumVertices(), g.NumEdges());

  // --- Gate 1: single-snapshot greedy solve -------------------------
  std::vector<VertexId> scan_anchors;
  std::vector<VertexId> lazy_anchors;
  GateMetrics greedy_scan =
      MeasureGreedy(g, k, l, /*lazy=*/false, repeats, &scan_anchors);
  GateMetrics greedy_lazy =
      MeasureGreedy(g, k, l, /*lazy=*/true, repeats, &lazy_anchors);
  AVT_CHECK_MSG(scan_anchors == lazy_anchors,
                "perf gate violated: lazy greedy diverged from scan");
  std::printf("greedy  scan: %8.1f ms  %8" PRIu64 " full queries\n",
              greedy_scan.millis, greedy_scan.oracle_queries);
  std::printf("greedy  lazy: %8.1f ms  %8" PRIu64 " full queries  %8" PRIu64
              " bound probes\n",
              greedy_lazy.millis, greedy_lazy.oracle_queries,
              greedy_lazy.bound_probes);

  // --- Gate 2: IncAVT per-delta steps -------------------------------
  Rng churn_rng(seed + 1);
  ChurnOptions churn_options;
  churn_options.num_snapshots = T;
  churn_options.min_churn = churn;
  churn_options.max_churn = churn + 100;
  SnapshotSequence sequence = MakeChurnSnapshots(g, churn_options, churn_rng);
  std::vector<std::vector<VertexId>> eager_track;
  std::vector<std::vector<VertexId>> lazy_track;
  GateMetrics inc_eager =
      MeasureIncAvt(sequence, k, l, /*lazy=*/false, repeats, &eager_track);
  GateMetrics inc_lazy =
      MeasureIncAvt(sequence, k, l, /*lazy=*/true, repeats, &lazy_track);
  AVT_CHECK_MSG(eager_track == lazy_track,
                "perf gate violated: lazy IncAVT diverged from eager");
  const double deltas = static_cast<double>(T > 1 ? T - 1 : 1);
  std::printf("incavt eager: %8.2f ms/delta  %8" PRIu64 " full queries\n",
              inc_eager.millis / deltas, inc_eager.oracle_queries);
  std::printf("incavt  lazy: %8.2f ms/delta  %8" PRIu64 " full queries  %8"
              PRIu64 " bound probes\n",
              inc_lazy.millis / deltas, inc_lazy.oracle_queries,
              inc_lazy.bound_probes);

  // --- Gate 3 (PR 3): thread scaling of the parallel trial engine ----
  // Same workloads, lazy strategy, across --threads-list worker counts.
  // Anchors are asserted bit-identical to the serial runs above at every
  // count; wall speedups are relative to the 1-thread engine run.
  const std::string threads_out =
      flags.GetString("threads-out", "BENCH_PR3.json");
  const std::vector<uint32_t> thread_counts =
      ParseThreadList(flags.GetString("threads-list", "1,2,4,8"));
  const unsigned host_cpus = std::thread::hardware_concurrency();
  std::vector<GateMetrics> greedy_by_threads;
  std::vector<GateMetrics> incavt_by_threads;
  for (uint32_t threads : thread_counts) {
    std::vector<VertexId> anchors;
    greedy_by_threads.push_back(MeasureGreedy(g, k, l, /*lazy=*/true,
                                              repeats, &anchors, threads));
    AVT_CHECK_MSG(anchors == lazy_anchors,
                  "perf gate violated: parallel greedy diverged");
    std::vector<std::vector<VertexId>> track;
    incavt_by_threads.push_back(MeasureIncAvt(sequence, k, l, /*lazy=*/true,
                                              repeats, &track, threads));
    AVT_CHECK_MSG(track == lazy_track,
                  "perf gate violated: parallel IncAVT diverged");
    std::printf("threads %2u: greedy %8.1f ms (%.2fx)   incavt %8.2f "
                "ms/delta (%.2fx)\n",
                threads, greedy_by_threads.back().millis,
                Ratio(greedy_by_threads.front().millis,
                      greedy_by_threads.back().millis),
                incavt_by_threads.back().millis / deltas,
                Ratio(incavt_by_threads.front().millis,
                      incavt_by_threads.back().millis));
  }

  // --- Gate 4 (PR 4): CSR maintenance for the incremental tracker ----
  // The IncAVT per-delta workload (lazy, serial — the headline path)
  // across the three cascade-scan backings. The maintained backing is
  // then re-run across {lazy, eager} x threads {1, 2, 8} and every
  // anchor track must match the no-CSR baseline bit for bit.
  const std::string csr_out = flags.GetString("csr-out", "BENCH_PR4.json");
  std::vector<std::vector<VertexId>> nocsr_track;
  std::vector<std::vector<VertexId>> rebuild_track;
  std::vector<std::vector<VertexId>> maintained_track;
  GateMetrics inc_nocsr =
      MeasureIncAvt(sequence, k, l, /*lazy=*/true, repeats, &nocsr_track,
                    /*num_threads=*/1, IncAvtCsrMode::kNone);
  GateMetrics inc_rebuild =
      MeasureIncAvt(sequence, k, l, /*lazy=*/true, repeats, &rebuild_track,
                    /*num_threads=*/1, IncAvtCsrMode::kRebuildPerDelta);
  GateMetrics inc_maintained =
      MeasureIncAvt(sequence, k, l, /*lazy=*/true, repeats,
                    &maintained_track, /*num_threads=*/1,
                    IncAvtCsrMode::kMaintained);
  AVT_CHECK_MSG(nocsr_track == lazy_track,
                "perf gate violated: csr=none IncAVT diverged");
  AVT_CHECK_MSG(rebuild_track == nocsr_track,
                "perf gate violated: rebuild-per-delta IncAVT diverged");
  AVT_CHECK_MSG(maintained_track == nocsr_track,
                "perf gate violated: maintained-CSR IncAVT diverged");
  std::printf("incavt csr=none:       %8.2f ms/delta\n",
              inc_nocsr.millis / deltas);
  std::printf("incavt csr=rebuild:    %8.2f ms/delta\n",
              inc_rebuild.millis / deltas);
  std::printf("incavt csr=maintained: %8.2f ms/delta  (%.2fx vs none, "
              "%.2fx vs rebuild)\n",
              inc_maintained.millis / deltas,
              Ratio(inc_nocsr.millis, inc_maintained.millis),
              Ratio(inc_rebuild.millis, inc_maintained.millis));
  for (bool strategy_lazy : {true, false}) {
    for (uint32_t threads : {1u, 2u, 8u}) {
      std::vector<std::vector<VertexId>> track;
      MeasureIncAvt(sequence, k, l, strategy_lazy, /*repeats=*/1, &track,
                    threads, IncAvtCsrMode::kMaintained);
      AVT_CHECK_MSG(track == nocsr_track,
                    "perf gate violated: maintained-CSR IncAVT diverged "
                    "in the strategy x threads matrix");
    }
  }
  std::printf("incavt maintained identity matrix: {lazy, eager} x threads "
              "{1, 2, 8} all bit-identical\n");

  // --- Emit JSON -----------------------------------------------------
  FILE* f = std::fopen(out.c_str(), "w");
  AVT_CHECK_MSG(f != nullptr, "cannot open bench output file");
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"perf_gate\",\n");
  std::fprintf(f, "  \"pr\": 2,\n");
  std::fprintf(
      f,
      "  \"config\": {\"n\": %u, \"avg_degree\": 8.0, \"alpha\": 2.1, "
      "\"k\": %u, \"l\": %u, \"snapshots\": %zu, \"churn_min\": %u, "
      "\"churn_max\": %u, \"seed\": %" PRIu64 ", \"repeats\": %d},\n",
      n, k, l, T, churn, churn + 100, seed, repeats);
  std::fprintf(f, "  \"greedy_solve\": {\n");
  PrintMetrics(f, "before_scan", greedy_scan, ",");
  PrintMetrics(f, "after_lazy", greedy_lazy, ",");
  std::fprintf(f, "    \"wall_speedup\": %.2f,\n",
               Ratio(greedy_scan.millis, greedy_lazy.millis));
  std::fprintf(f, "    \"oracle_query_reduction\": %.2f\n",
               Ratio(static_cast<double>(greedy_scan.oracle_queries),
                     static_cast<double>(greedy_lazy.oracle_queries)));
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"incavt_per_delta\": {\n");
  PrintMetrics(f, "before_eager", inc_eager, ",");
  PrintMetrics(f, "after_lazy", inc_lazy, ",");
  std::fprintf(f, "    \"wall_speedup\": %.2f,\n",
               Ratio(inc_eager.millis, inc_lazy.millis));
  std::fprintf(f, "    \"oracle_query_reduction\": %.2f\n",
               Ratio(static_cast<double>(inc_eager.oracle_queries),
                     static_cast<double>(inc_lazy.oracle_queries)));
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"identical_outputs\": true\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());

  // --- Emit BENCH_PR3.json (thread scaling) --------------------------
  FILE* tf = std::fopen(threads_out.c_str(), "w");
  AVT_CHECK_MSG(tf != nullptr, "cannot open thread-scaling output file");
  std::fprintf(tf, "{\n");
  std::fprintf(tf, "  \"bench\": \"perf_gate_thread_scaling\",\n");
  std::fprintf(tf, "  \"pr\": 3,\n");
  std::fprintf(
      tf,
      "  \"config\": {\"n\": %u, \"avg_degree\": 8.0, \"alpha\": 2.1, "
      "\"k\": %u, \"l\": %u, \"snapshots\": %zu, \"churn_min\": %u, "
      "\"churn_max\": %u, \"seed\": %" PRIu64 ", \"repeats\": %d, "
      "\"strategy\": \"lazy\"},\n",
      n, k, l, T, churn, churn + 100, seed, repeats);
  std::fprintf(tf, "  \"host_cpus\": %u,\n", host_cpus);
  std::fprintf(tf, "  \"greedy_solve\": {\n");
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    std::string key = "threads_" + std::to_string(thread_counts[i]);
    PrintMetrics(tf, key.c_str(), greedy_by_threads[i], ",");
  }
  std::fprintf(tf, "    \"speedup_max_threads_vs_1\": %.2f\n",
               Ratio(greedy_by_threads.front().millis,
                     greedy_by_threads.back().millis));
  std::fprintf(tf, "  },\n");
  std::fprintf(tf, "  \"incavt_per_delta\": {\n");
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    std::string key = "threads_" + std::to_string(thread_counts[i]);
    PrintMetrics(tf, key.c_str(), incavt_by_threads[i], ",");
  }
  std::fprintf(tf, "    \"speedup_max_threads_vs_1\": %.2f\n",
               Ratio(incavt_by_threads.front().millis,
                     incavt_by_threads.back().millis));
  std::fprintf(tf, "  },\n");
  std::fprintf(tf, "  \"identical_outputs\": true\n");
  std::fprintf(tf, "}\n");
  std::fclose(tf);
  std::printf("wrote %s\n", threads_out.c_str());

  // --- Emit BENCH_PR4.json (CSR maintenance) -------------------------
  FILE* cf = std::fopen(csr_out.c_str(), "w");
  AVT_CHECK_MSG(cf != nullptr, "cannot open csr-maintenance output file");
  std::fprintf(cf, "{\n");
  std::fprintf(cf, "  \"bench\": \"perf_gate_csr_maintenance\",\n");
  std::fprintf(cf, "  \"pr\": 4,\n");
  std::fprintf(
      cf,
      "  \"config\": {\"n\": %u, \"avg_degree\": 8.0, \"alpha\": 2.1, "
      "\"k\": %u, \"l\": %u, \"snapshots\": %zu, \"churn_min\": %u, "
      "\"churn_max\": %u, \"seed\": %" PRIu64 ", \"repeats\": %d, "
      "\"strategy\": \"lazy\", \"threads\": 1},\n",
      n, k, l, T, churn, churn + 100, seed, repeats);
  std::fprintf(cf, "  \"incavt_per_delta\": {\n");
  PrintMetrics(cf, "no_csr", inc_nocsr, ",");
  PrintMetrics(cf, "rebuild_per_delta", inc_rebuild, ",");
  PrintMetrics(cf, "maintained", inc_maintained, ",");
  std::fprintf(cf, "    \"maintained_vs_no_csr_wall_ratio\": %.3f,\n",
               inc_nocsr.millis > 0
                   ? inc_maintained.millis / inc_nocsr.millis
                   : 0.0);
  std::fprintf(cf, "    \"maintained_vs_rebuild_wall_ratio\": %.3f,\n",
               inc_rebuild.millis > 0
                   ? inc_maintained.millis / inc_rebuild.millis
                   : 0.0);
  std::fprintf(cf, "    \"patch_vs_rebuild_wall_speedup\": %.2f,\n",
               Ratio(inc_rebuild.millis, inc_maintained.millis));
  std::fprintf(cf, "    \"maintained_speedup_vs_no_csr\": %.2f\n",
               Ratio(inc_nocsr.millis, inc_maintained.millis));
  std::fprintf(cf, "  },\n");
  std::fprintf(cf,
               "  \"identity_matrix\": {\"strategies\": [\"lazy\", "
               "\"eager\"], \"threads\": [1, 2, 8]},\n");
  std::fprintf(cf, "  \"identical_outputs\": true\n");
  std::fprintf(cf, "}\n");
  std::fclose(cf);
  std::printf("wrote %s\n", csr_out.c_str());
  return 0;
}
