// Perf gate: the repeatable before/after measurement behind
// BENCH_PR2.json (run via scripts/bench.sh).
//
// Two workloads, each measured in its eager ("before", the seed repo's
// execution strategy) and lazy ("after", certified-bound CELF) form:
//
//   * greedy_solve — one GreedySolver::Solve on a Chung-Lu power-law
//     graph (paper-style social topology) at --n vertices;
//   * incavt_per_delta — an IncAvtTracker over a --t-snapshot churn
//     sequence, timing only the ProcessDelta steps.
//
// Outputs are asserted identical between the two strategies before any
// number is written: the gate measures a speedup, never a quality trade.
// The JSON is intentionally flat so future PRs can diff it and append
// their own gates alongside.
//
//   ./bench_perf_gate [--n=50000] [--k=3] [--l=10] [--t=12]
//                     [--churn=150] [--repeats=3] [--out=BENCH_PR2.json]
//
// --repeats re-runs each timed section and keeps the fastest wall time
// (work counters are deterministic and identical across repeats).

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "anchor/greedy.h"
#include "core/inc_avt.h"
#include "gen/churn.h"
#include "gen/models.h"
#include "graph/snapshots.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/status.h"
#include "util/timer.h"

namespace avt {
namespace {

struct GateMetrics {
  double millis = 0;
  uint64_t oracle_queries = 0;  // full follower queries
  uint64_t bound_probes = 0;    // phase-1-only probes
  uint64_t followers = 0;
};

GateMetrics MeasureGreedy(const Graph& g, uint32_t k, uint32_t l,
                          bool lazy, int repeats,
                          std::vector<VertexId>* anchors_out) {
  GateMetrics metrics;
  metrics.millis = 1e300;
  GreedyOptions options;
  options.lazy = lazy;
  for (int r = 0; r < repeats; ++r) {
    GreedySolver solver(options);
    Timer timer;
    SolverResult result = solver.Solve(g, k, l);
    metrics.millis = std::min(metrics.millis, timer.ElapsedMillis());
    metrics.oracle_queries = result.candidates_visited;
    metrics.bound_probes = result.bound_probes;
    metrics.followers = result.num_followers();
    *anchors_out = result.anchors;
  }
  return metrics;
}

GateMetrics MeasureIncAvt(const SnapshotSequence& sequence, uint32_t k,
                          uint32_t l, bool lazy, int repeats,
                          std::vector<std::vector<VertexId>>* anchors_out) {
  GateMetrics metrics;
  metrics.millis = 1e300;
  for (int r = 0; r < repeats; ++r) {
    IncAvtOptions options;
    options.lazy = lazy;
    IncAvtTracker tracker(k, l, IncAvtMode::kRestricted, options);
    anchors_out->clear();
    double delta_millis = 0;
    uint64_t queries = 0;
    uint64_t probes = 0;
    uint64_t followers = 0;
    sequence.ForEachSnapshot([&](size_t t, const Graph& graph,
                                 const EdgeDelta& delta) {
      if (t == 0) {
        AvtSnapshotResult snap = tracker.ProcessFirst(graph);
        anchors_out->push_back(snap.anchors);
        return;
      }
      Timer timer;
      AvtSnapshotResult snap = tracker.ProcessDelta(graph, delta);
      delta_millis += timer.ElapsedMillis();
      queries += snap.candidates_visited;
      probes += snap.bound_probes;
      followers += snap.num_followers;
      anchors_out->push_back(snap.anchors);
    });
    metrics.millis = std::min(metrics.millis, delta_millis);
    metrics.oracle_queries = queries;
    metrics.bound_probes = probes;
    metrics.followers = followers;
  }
  return metrics;
}

void PrintMetrics(FILE* f, const char* key, const GateMetrics& m,
                  const char* trailing) {
  std::fprintf(f,
               "    \"%s\": {\"millis\": %.3f, \"oracle_queries\": %" PRIu64
               ", \"bound_probes\": %" PRIu64 ", \"followers\": %" PRIu64
               "}%s\n",
               key, m.millis, m.oracle_queries, m.bound_probes, m.followers,
               trailing);
}

double Ratio(double before, double after) {
  return after > 0 ? before / after : 0.0;
}

}  // namespace
}  // namespace avt

int main(int argc, char** argv) {
  using namespace avt;
  Flags flags = Flags::Parse(argc, argv);
  const uint32_t n = static_cast<uint32_t>(flags.GetInt("n", 50000));
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 3));
  const uint32_t l = static_cast<uint32_t>(flags.GetInt("l", 10));
  const size_t T = static_cast<size_t>(flags.GetInt("t", 12));
  const uint32_t churn = static_cast<uint32_t>(flags.GetInt("churn", 150));
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  const std::string out = flags.GetString("out", "BENCH_PR2.json");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1234));

  // Same topology family as bench/micro_benchmarks.cc's BenchGraph.
  Rng rng(seed);
  Graph g = ChungLuPowerLaw(n, 8.0, 2.1, n / 20 + 10, rng);
  std::printf("graph: n=%u m=%" PRIu64 " (Chung-Lu power law)\n",
              g.NumVertices(), g.NumEdges());

  // --- Gate 1: single-snapshot greedy solve -------------------------
  std::vector<VertexId> scan_anchors;
  std::vector<VertexId> lazy_anchors;
  GateMetrics greedy_scan =
      MeasureGreedy(g, k, l, /*lazy=*/false, repeats, &scan_anchors);
  GateMetrics greedy_lazy =
      MeasureGreedy(g, k, l, /*lazy=*/true, repeats, &lazy_anchors);
  AVT_CHECK_MSG(scan_anchors == lazy_anchors,
                "perf gate violated: lazy greedy diverged from scan");
  std::printf("greedy  scan: %8.1f ms  %8" PRIu64 " full queries\n",
              greedy_scan.millis, greedy_scan.oracle_queries);
  std::printf("greedy  lazy: %8.1f ms  %8" PRIu64 " full queries  %8" PRIu64
              " bound probes\n",
              greedy_lazy.millis, greedy_lazy.oracle_queries,
              greedy_lazy.bound_probes);

  // --- Gate 2: IncAVT per-delta steps -------------------------------
  Rng churn_rng(seed + 1);
  ChurnOptions churn_options;
  churn_options.num_snapshots = T;
  churn_options.min_churn = churn;
  churn_options.max_churn = churn + 100;
  SnapshotSequence sequence = MakeChurnSnapshots(g, churn_options, churn_rng);
  std::vector<std::vector<VertexId>> eager_track;
  std::vector<std::vector<VertexId>> lazy_track;
  GateMetrics inc_eager =
      MeasureIncAvt(sequence, k, l, /*lazy=*/false, repeats, &eager_track);
  GateMetrics inc_lazy =
      MeasureIncAvt(sequence, k, l, /*lazy=*/true, repeats, &lazy_track);
  AVT_CHECK_MSG(eager_track == lazy_track,
                "perf gate violated: lazy IncAVT diverged from eager");
  const double deltas = static_cast<double>(T > 1 ? T - 1 : 1);
  std::printf("incavt eager: %8.2f ms/delta  %8" PRIu64 " full queries\n",
              inc_eager.millis / deltas, inc_eager.oracle_queries);
  std::printf("incavt  lazy: %8.2f ms/delta  %8" PRIu64 " full queries  %8"
              PRIu64 " bound probes\n",
              inc_lazy.millis / deltas, inc_lazy.oracle_queries,
              inc_lazy.bound_probes);

  // --- Emit JSON -----------------------------------------------------
  FILE* f = std::fopen(out.c_str(), "w");
  AVT_CHECK_MSG(f != nullptr, "cannot open bench output file");
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"perf_gate\",\n");
  std::fprintf(f, "  \"pr\": 2,\n");
  std::fprintf(
      f,
      "  \"config\": {\"n\": %u, \"avg_degree\": 8.0, \"alpha\": 2.1, "
      "\"k\": %u, \"l\": %u, \"snapshots\": %zu, \"churn_min\": %u, "
      "\"churn_max\": %u, \"seed\": %" PRIu64 ", \"repeats\": %d},\n",
      n, k, l, T, churn, churn + 100, seed, repeats);
  std::fprintf(f, "  \"greedy_solve\": {\n");
  PrintMetrics(f, "before_scan", greedy_scan, ",");
  PrintMetrics(f, "after_lazy", greedy_lazy, ",");
  std::fprintf(f, "    \"wall_speedup\": %.2f,\n",
               Ratio(greedy_scan.millis, greedy_lazy.millis));
  std::fprintf(f, "    \"oracle_query_reduction\": %.2f\n",
               Ratio(static_cast<double>(greedy_scan.oracle_queries),
                     static_cast<double>(greedy_lazy.oracle_queries)));
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"incavt_per_delta\": {\n");
  PrintMetrics(f, "before_eager", inc_eager, ",");
  PrintMetrics(f, "after_lazy", inc_lazy, ",");
  std::fprintf(f, "    \"wall_speedup\": %.2f,\n",
               Ratio(inc_eager.millis, inc_lazy.millis));
  std::fprintf(f, "    \"oracle_query_reduction\": %.2f\n",
               Ratio(static_cast<double>(inc_eager.oracle_queries),
                     static_cast<double>(inc_lazy.oracle_queries)));
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"identical_outputs\": true\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
