// Perf gate: the repeatable before/after measurements behind
// BENCH_PR2.json and BENCH_PR3.json (run via scripts/bench.sh).
//
// PR-2 gates — two workloads, each measured in its eager ("before", the
// seed repo's execution strategy) and lazy ("after", certified-bound
// CELF) form:
//
//   * greedy_solve — one GreedySolver::Solve on a Chung-Lu power-law
//     graph (paper-style social topology) at --n vertices;
//   * incavt_per_delta — an IncAvtTracker over a --t-snapshot churn
//     sequence, timing only the ProcessDelta steps.
//
// PR-3 gate — thread scaling of the parallel trial engine: the same two
// workloads (lazy strategy) at every --threads-list count, reporting
// wall time and speedup vs 1 thread into --threads-out. host_cpus is
// recorded alongside because wall-clock scaling is bounded by the
// machine; the work counters and outputs are deterministic everywhere.
//
// PR-4 gate — CSR maintenance for the incremental tracker: the IncAVT
// per-delta workload across the three cascade-scan backings (no CSR /
// rebuild-per-delta CsrView / delta-maintained DynamicCsr), emitted to
// --csr-out with the patch-vs-rebuild ratio. Anchors are additionally
// asserted identical for the maintained backing across
// {lazy, eager} x threads {1, 2, 8}.
//
// PR-5 gate — streaming ingestion: the same IncAVT workload driven
// three ways, emitted to --stream-out:
//
//   * materialized — the retired snapshot-pull pattern: a full Graph is
//     built per transition (SnapshotSequence::Materialize, O(T * m))
//     before the tracker sees the delta;
//   * streamed — AvtEngine + SequenceSource: deltas pushed straight to
//     the tracker, no snapshot ever built (O(churn) per transition);
//   * coalesced — CoalescingSource merges --coalesce-window transitions
//     into one net-effect delta before tracking.
//
//   Each arm reports per-delta wall time and a peak-RSS proxy (bytes of
//   adjacency state the driver must keep live; an analytic proxy so the
//   arms are comparable inside one process). The streamed arm must
//   reproduce the per-delta anchors bit for bit; the coalesced arm's
//   maintained graph must equal the materialized snapshot at every
//   window boundary. A second check streams a generated temporal
//   edge-list FILE (StreamingEdgeFileSource, the zero-materialization
//   path) against the WindowSnapshots sequence across
//   {lazy, eager} x csr {none, maintained} x threads {1, 8} and asserts
//   bit-identical anchors and follower counts — the acceptance matrix.
//
// PR-6 gate — parallel scaling after the batching/partition bugfix:
// asserts the trial-engine work counters are thread-count-invariant
// (BENCH_PR3's defect was oracle_queries scaling linearly with the
// thread count), asserts engine-batched IncAVT replay is bit-identical
// to a net-delta mirror at every batch boundary for batch {1, --batch,
// 16} x threads {1, 8}, measures batched IncAVT across --threads-list,
// and — below 2 CPUs skips with a notice, at >= 4 CPUs ENFORCES —
// speedup_max_threads_vs_1 > 1.0 on both workloads. Emitted to
// --scaling-out.
//
// PR-7 gate — crash-safe streaming: the streamed IncAVT workload
// measured end-to-end (wall time around Drain, because the WAL append
// is exactly what the arms differ in) with durability off / WAL
// fsync=never / WAL fsync=every-record / WAL + cadenced checkpoints,
// all four tracks asserted bit-identical; then a --recovery-deltas-long
// churn log is written durably and AvtEngine::Recover is timed replaying
// the whole WAL, with the recovered final anchors and work counters
// asserted identical to the uninterrupted writer's. Emitted to
// --durability-out.
//
// PR-8 gate — bounded memo memory: the cross-snapshot trial memo
// under every retention policy (memoize-all / top-value-only / LRU
// under a byte budget / none), measured on two streams emitted to
// --memo-out:
//
//   * erase-heavy — --memo-transitions transitions of ~255-edge churn
//     (~200k edge deltas at the default 800) in IncAvtMode::
//     kMaintainedFull, the workload whose invalidation-walk erase
//     traffic used to grow the memo's FlatKeyMap without bound
//     (tombstones counted toward the growth trigger). Asserts the
//     memoize-all peak footprint stays bounded and the LRU arm never
//     exceeds its budget;
//   * retention — gentle churn where entries survive long enough for
//     the policies to differ in hit rate (the memory/recomputation
//     trade the policy knob exists for).
//
// Anchors are asserted bit-identical across all four policies x
// {lazy, eager} on the erase-heavy stream, and a direct FlatKeyMap
// put/erase soak asserts capacity stays within 4x of the live set's
// own capacity across 100k cycles (the tombstone-growth fix itself).
//
// PR-9 gate — self-healing audit overhead: the streamed IncAVT
// workload (--audit-transitions churn transitions) with the sentinel
// auditor off / every 16 transactions / every transaction, timed
// end-to-end around Drain (the audit runs in the engine's pre-commit
// hook) and emitted to --selfheal-out. The audit is a read-only
// cross-check, so all three anchor tracks and follower counts are
// asserted bit-identical, zero audits may fail on the clean stream,
// and the production cadence (every 16) must stay within 1.15x of the
// unaudited wall time.
//
// Outputs are asserted identical between all strategies, thread counts,
// and scan backings before any number is written: the gate measures a
// speedup, never a quality trade. The JSON is intentionally flat so
// future PRs can diff it and append their own gates alongside.
//
//   ./bench_perf_gate [--n=50000] [--k=3] [--l=10] [--t=12]
//                     [--churn=150] [--repeats=3] [--out=BENCH_PR2.json]
//                     [--threads-list=1,2,4,8] [--threads-out=BENCH_PR3.json]
//                     [--csr-out=BENCH_PR4.json]
//                     [--stream-out=BENCH_PR5.json] [--coalesce-window=3]
//                     [--scaling-out=BENCH_PR6.json] [--batch=3]
//                     [--durability-out=BENCH_PR7.json]
//                     [--recovery-deltas=50000]
//                     [--memo-out=BENCH_PR8.json] [--memo-transitions=800]
//                     [--selfheal-out=BENCH_PR9.json]
//                     [--audit-transitions=96]
//
// --repeats re-runs each timed section and keeps the fastest wall time
// (work counters are deterministic and identical across repeats).

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "anchor/greedy.h"
#include "core/engine.h"
#include "core/inc_avt.h"
#include "core/run_summary.h"
#include "durability/wal.h"
#include "gen/churn.h"
#include "gen/models.h"
#include "gen/temporal.h"
#include "graph/delta_source.h"
#include "graph/io.h"
#include "graph/snapshots.h"
#include "util/flags.h"
#include "util/flat_map.h"
#include "util/random.h"
#include "util/status.h"
#include "util/timer.h"

namespace avt {
namespace {

struct GateMetrics {
  double millis = 0;
  uint64_t oracle_queries = 0;  // full follower queries
  uint64_t bound_probes = 0;    // phase-1-only probes
  uint64_t followers = 0;
};

GateMetrics MeasureGreedy(const Graph& g, uint32_t k, uint32_t l,
                          bool lazy, int repeats,
                          std::vector<VertexId>* anchors_out,
                          uint32_t num_threads = 1) {
  GateMetrics metrics;
  metrics.millis = 1e300;
  GreedyOptions options;
  options.lazy = lazy;
  options.num_threads = num_threads;
  for (int r = 0; r < repeats; ++r) {
    GreedySolver solver(options);
    Timer timer;
    SolverResult result = solver.Solve(g, k, l);
    metrics.millis = std::min(metrics.millis, timer.ElapsedMillis());
    metrics.oracle_queries = result.candidates_visited;
    metrics.bound_probes = result.bound_probes;
    metrics.followers = result.num_followers();
    *anchors_out = result.anchors;
  }
  return metrics;
}

GateMetrics MeasureIncAvt(const SnapshotSequence& sequence, uint32_t k,
                          uint32_t l, bool lazy, int repeats,
                          std::vector<std::vector<VertexId>>* anchors_out,
                          uint32_t num_threads = 1,
                          IncAvtCsrMode csr_mode = IncAvtCsrMode::kMaintained,
                          size_t batch_size = 1) {
  GateMetrics metrics;
  metrics.millis = 1e300;
  for (int r = 0; r < repeats; ++r) {
    IncAvtOptions options;
    options.lazy = lazy;
    options.num_threads = num_threads;
    options.csr = csr_mode;
    options.batch_size = batch_size;
    // All tracking rides the streaming engine; snap.millis is the
    // tracker's own per-transition timer, so the sum matches the old
    // externally-timed ProcessDelta loop.
    AvtEngine engine(std::make_unique<IncAvtTracker>(
                         k, l, IncAvtMode::kRestricted, options),
                     std::make_unique<SequenceSource>(&sequence));
    anchors_out->clear();
    double delta_millis = 0;
    uint64_t queries = 0;
    uint64_t probes = 0;
    uint64_t followers = 0;
    engine.SetObserver([&](const AvtSnapshotResult& snap) {
      anchors_out->push_back(snap.anchors);
      if (snap.t == 0) return;
      delta_millis += snap.millis;
      queries += snap.candidates_visited;
      probes += snap.bound_probes;
      followers += snap.num_followers;
    });
    Status status = engine.Drain();
    AVT_CHECK_MSG(status.ok(), status.ToString().c_str());
    metrics.millis = std::min(metrics.millis, delta_millis);
    metrics.oracle_queries = queries;
    metrics.bound_probes = probes;
    metrics.followers = followers;
  }
  return metrics;
}

void PrintMetrics(FILE* f, const char* key, const GateMetrics& m,
                  const char* trailing) {
  std::fprintf(f,
               "    \"%s\": {\"millis\": %.3f, \"oracle_queries\": %" PRIu64
               ", \"bound_probes\": %" PRIu64 ", \"followers\": %" PRIu64
               "}%s\n",
               key, m.millis, m.oracle_queries, m.bound_probes, m.followers,
               trailing);
}

double Ratio(double before, double after) {
  return after > 0 ? before / after : 0.0;
}

// End-to-end wall time of one streamed engine run (Drain), optionally
// durable. Unlike MeasureIncAvt this times OUTSIDE the tracker: the WAL
// append + fsync + checkpoint cost is precisely what the PR-7 arms
// differ in, and it lives in the engine, not the tracker.
struct WallRun {
  double millis = 1e300;
  std::vector<std::vector<VertexId>> track;
};

WallRun MeasureDurableDrain(const SnapshotSequence& sequence, uint32_t k,
                            uint32_t l, int repeats,
                            const DurabilityOptions* durability) {
  WallRun run;
  for (int r = 0; r < repeats; ++r) {
    AvtEngine engine(std::make_unique<IncAvtTracker>(k, l),
                     std::make_unique<SequenceSource>(&sequence));
    if (durability != nullptr) {
      std::filesystem::remove_all(durability->dir);
      Status armed = engine.EnableDurability(*durability);
      AVT_CHECK_MSG(armed.ok(), armed.ToString().c_str());
    }
    std::vector<std::vector<VertexId>> track;
    engine.SetObserver([&](const AvtSnapshotResult& snap) {
      track.push_back(snap.anchors);
    });
    Timer timer;
    Status status = engine.Drain();
    const double millis = timer.ElapsedMillis();
    AVT_CHECK_MSG(status.ok(), status.ToString().c_str());
    run.millis = std::min(run.millis, millis);
    run.track = std::move(track);
  }
  return run;
}

// One tracker run for the PR-8 memo gate: kMaintainedFull (the full
// candidate pool — kRestricted memoizes no slot entries and exerts no
// memo pressure), one pass, per-policy counters summed over the stream.
struct MemoRun {
  double millis = 0;  // ProcessDelta time only (t >= 1)
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t peak_bytes = 0;
  std::vector<std::vector<VertexId>> track;
};

MemoRun MeasureMemoPolicy(const SnapshotSequence& sequence, uint32_t k,
                          uint32_t l, MemoPolicy policy, size_t budget,
                          bool lazy) {
  IncAvtOptions options;
  options.lazy = lazy;
  options.memo_policy = policy;
  options.memo_budget_bytes = budget;
  IncAvtTracker tracker(k, l, IncAvtMode::kMaintainedFull, options);
  MemoRun run;
  sequence.ForEachSnapshot(
      [&](size_t t, const Graph& graph, const EdgeDelta& delta) {
        AvtSnapshotResult snap =
            t == 0 ? tracker.ProcessFirst(graph) : tracker.ProcessDelta(delta);
        run.track.push_back(snap.anchors);
        run.hits += snap.memo_hits;
        run.misses += snap.memo_misses;
        run.evictions += snap.memo_evictions;
        run.peak_bytes = std::max(run.peak_bytes, snap.memo_bytes);
        if (t > 0) run.millis += snap.millis;
      });
  return run;
}

double HitRate(const MemoRun& run) {
  const uint64_t lookups = run.hits + run.misses;
  return lookups == 0 ? 0.0
                      : static_cast<double>(run.hits) /
                            static_cast<double>(lookups);
}

// One audited engine run for the PR-9 gate: wall time around Drain
// (the sentinel audit runs inside the engine's pre-commit hook, so —
// like the WAL cost in gate 7 — it is invisible to the tracker's own
// per-snapshot timer), plus the per-snapshot anchors AND follower
// counts so the audit arms can be asserted output-identical.
struct AuditRun {
  double millis = 1e300;
  std::vector<std::vector<VertexId>> track;
  std::vector<uint64_t> followers;
  uint64_t audits_run = 0;
  uint64_t audits_failed = 0;
};

AuditRun MeasureAuditedDrain(const SnapshotSequence& sequence, uint32_t k,
                             uint32_t l, int repeats, size_t audit_every) {
  AuditRun run;
  for (int r = 0; r < repeats; ++r) {
    EngineOptions options;
    options.audit.every = audit_every;
    AvtEngine engine(std::make_unique<IncAvtTracker>(k, l),
                     std::make_unique<SequenceSource>(&sequence), options);
    std::vector<std::vector<VertexId>> track;
    std::vector<uint64_t> followers;
    engine.SetObserver([&](const AvtSnapshotResult& snap) {
      track.push_back(snap.anchors);
      followers.push_back(snap.num_followers);
    });
    Timer timer;
    Status status = engine.Drain();
    const double millis = timer.ElapsedMillis();
    AVT_CHECK_MSG(status.ok(), status.ToString().c_str());
    AVT_CHECK_MSG(engine.health().healthy(),
                  "perf gate violated: an audited run on a clean stream "
                  "left the healthy state");
    run.millis = std::min(run.millis, millis);
    run.track = std::move(track);
    run.followers = std::move(followers);
    run.audits_run = engine.auditor().audits_run();
    run.audits_failed = engine.auditor().audits_failed();
  }
  return run;
}

std::vector<uint32_t> ParseThreadList(const std::string& spec) {
  std::vector<uint32_t> counts;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    int value = std::atoi(spec.substr(pos, comma - pos).c_str());
    if (value > 0) counts.push_back(static_cast<uint32_t>(value));
    pos = comma + 1;
  }
  // Speedups are measured relative to 1 thread and reported against the
  // largest count; sorting + deduping makes any input order valid and
  // keeps the per-count JSON keys unique.
  counts.push_back(1);
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

}  // namespace
}  // namespace avt

int main(int argc, char** argv) {
  using namespace avt;
  Flags flags = Flags::Parse(argc, argv);
  const uint32_t n = static_cast<uint32_t>(flags.GetInt("n", 50000));
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 3));
  const uint32_t l = static_cast<uint32_t>(flags.GetInt("l", 10));
  const size_t T = static_cast<size_t>(flags.GetInt("t", 12));
  const uint32_t churn = static_cast<uint32_t>(flags.GetInt("churn", 150));
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  const std::string out = flags.GetString("out", "BENCH_PR2.json");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1234));

  // Same topology family as bench/micro_benchmarks.cc's BenchGraph.
  Rng rng(seed);
  Graph g = ChungLuPowerLaw(n, 8.0, 2.1, n / 20 + 10, rng);
  std::printf("graph: n=%u m=%" PRIu64 " (Chung-Lu power law)\n",
              g.NumVertices(), g.NumEdges());

  // --- Gate 1: single-snapshot greedy solve -------------------------
  std::vector<VertexId> scan_anchors;
  std::vector<VertexId> lazy_anchors;
  GateMetrics greedy_scan =
      MeasureGreedy(g, k, l, /*lazy=*/false, repeats, &scan_anchors);
  GateMetrics greedy_lazy =
      MeasureGreedy(g, k, l, /*lazy=*/true, repeats, &lazy_anchors);
  AVT_CHECK_MSG(scan_anchors == lazy_anchors,
                "perf gate violated: lazy greedy diverged from scan");
  std::printf("greedy  scan: %8.1f ms  %8" PRIu64 " full queries\n",
              greedy_scan.millis, greedy_scan.oracle_queries);
  std::printf("greedy  lazy: %8.1f ms  %8" PRIu64 " full queries  %8" PRIu64
              " bound probes\n",
              greedy_lazy.millis, greedy_lazy.oracle_queries,
              greedy_lazy.bound_probes);

  // --- Gate 2: IncAVT per-delta steps -------------------------------
  Rng churn_rng(seed + 1);
  ChurnOptions churn_options;
  churn_options.num_snapshots = T;
  churn_options.min_churn = churn;
  churn_options.max_churn = churn + 100;
  SnapshotSequence sequence = MakeChurnSnapshots(g, churn_options, churn_rng);
  std::vector<std::vector<VertexId>> eager_track;
  std::vector<std::vector<VertexId>> lazy_track;
  GateMetrics inc_eager =
      MeasureIncAvt(sequence, k, l, /*lazy=*/false, repeats, &eager_track);
  GateMetrics inc_lazy =
      MeasureIncAvt(sequence, k, l, /*lazy=*/true, repeats, &lazy_track);
  AVT_CHECK_MSG(eager_track == lazy_track,
                "perf gate violated: lazy IncAVT diverged from eager");
  const double deltas = static_cast<double>(T > 1 ? T - 1 : 1);
  std::printf("incavt eager: %8.2f ms/delta  %8" PRIu64 " full queries\n",
              inc_eager.millis / deltas, inc_eager.oracle_queries);
  std::printf("incavt  lazy: %8.2f ms/delta  %8" PRIu64 " full queries  %8"
              PRIu64 " bound probes\n",
              inc_lazy.millis / deltas, inc_lazy.oracle_queries,
              inc_lazy.bound_probes);

  // --- Gate 3 (PR 3): thread scaling of the parallel trial engine ----
  // Same workloads, lazy strategy, across --threads-list worker counts.
  // Anchors are asserted bit-identical to the serial runs above at every
  // count; wall speedups are relative to the 1-thread engine run.
  const std::string threads_out =
      flags.GetString("threads-out", "BENCH_PR3.json");
  const std::vector<uint32_t> thread_counts =
      ParseThreadList(flags.GetString("threads-list", "1,2,4,8"));
  const unsigned host_cpus = std::thread::hardware_concurrency();
  std::vector<GateMetrics> greedy_by_threads;
  std::vector<GateMetrics> incavt_by_threads;
  for (uint32_t threads : thread_counts) {
    std::vector<VertexId> anchors;
    greedy_by_threads.push_back(MeasureGreedy(g, k, l, /*lazy=*/true,
                                              repeats, &anchors, threads));
    AVT_CHECK_MSG(anchors == lazy_anchors,
                  "perf gate violated: parallel greedy diverged");
    std::vector<std::vector<VertexId>> track;
    incavt_by_threads.push_back(MeasureIncAvt(sequence, k, l, /*lazy=*/true,
                                              repeats, &track, threads));
    AVT_CHECK_MSG(track == lazy_track,
                  "perf gate violated: parallel IncAVT diverged");
    std::printf("threads %2u: greedy %8.1f ms (%.2fx)   incavt %8.2f "
                "ms/delta (%.2fx)\n",
                threads, greedy_by_threads.back().millis,
                Ratio(greedy_by_threads.front().millis,
                      greedy_by_threads.back().millis),
                incavt_by_threads.back().millis / deltas,
                Ratio(incavt_by_threads.front().millis,
                      incavt_by_threads.back().millis));
  }

  // --- Gate 4 (PR 4): CSR maintenance for the incremental tracker ----
  // The IncAVT per-delta workload (lazy, serial — the headline path)
  // across the three cascade-scan backings. The maintained backing is
  // then re-run across {lazy, eager} x threads {1, 2, 8} and every
  // anchor track must match the no-CSR baseline bit for bit.
  const std::string csr_out = flags.GetString("csr-out", "BENCH_PR4.json");
  std::vector<std::vector<VertexId>> nocsr_track;
  std::vector<std::vector<VertexId>> rebuild_track;
  std::vector<std::vector<VertexId>> maintained_track;
  GateMetrics inc_nocsr =
      MeasureIncAvt(sequence, k, l, /*lazy=*/true, repeats, &nocsr_track,
                    /*num_threads=*/1, IncAvtCsrMode::kNone);
  GateMetrics inc_rebuild =
      MeasureIncAvt(sequence, k, l, /*lazy=*/true, repeats, &rebuild_track,
                    /*num_threads=*/1, IncAvtCsrMode::kRebuildPerDelta);
  GateMetrics inc_maintained =
      MeasureIncAvt(sequence, k, l, /*lazy=*/true, repeats,
                    &maintained_track, /*num_threads=*/1,
                    IncAvtCsrMode::kMaintained);
  AVT_CHECK_MSG(nocsr_track == lazy_track,
                "perf gate violated: csr=none IncAVT diverged");
  AVT_CHECK_MSG(rebuild_track == nocsr_track,
                "perf gate violated: rebuild-per-delta IncAVT diverged");
  AVT_CHECK_MSG(maintained_track == nocsr_track,
                "perf gate violated: maintained-CSR IncAVT diverged");
  std::printf("incavt csr=none:       %8.2f ms/delta\n",
              inc_nocsr.millis / deltas);
  std::printf("incavt csr=rebuild:    %8.2f ms/delta\n",
              inc_rebuild.millis / deltas);
  std::printf("incavt csr=maintained: %8.2f ms/delta  (%.2fx vs none, "
              "%.2fx vs rebuild)\n",
              inc_maintained.millis / deltas,
              Ratio(inc_nocsr.millis, inc_maintained.millis),
              Ratio(inc_rebuild.millis, inc_maintained.millis));
  for (bool strategy_lazy : {true, false}) {
    for (uint32_t threads : {1u, 2u, 8u}) {
      std::vector<std::vector<VertexId>> track;
      MeasureIncAvt(sequence, k, l, strategy_lazy, /*repeats=*/1, &track,
                    threads, IncAvtCsrMode::kMaintained);
      AVT_CHECK_MSG(track == nocsr_track,
                    "perf gate violated: maintained-CSR IncAVT diverged "
                    "in the strategy x threads matrix");
    }
  }
  std::printf("incavt maintained identity matrix: {lazy, eager} x threads "
              "{1, 2, 8} all bit-identical\n");

  // --- Gate 5 (PR 5): streaming ingestion ----------------------------
  // Same churn workload, three drivers. Wall time is measured OUTSIDE
  // the tracker (ingestion + tracking), because ingestion is exactly
  // what the arms differ in. The proxy counts driver-side adjacency
  // bytes — the state a driver must keep live beyond the tracker's own
  // — which the streamed arm reduces from O(m) per transition to the
  // delta batches themselves.
  const std::string stream_out =
      flags.GetString("stream-out", "BENCH_PR5.json");
  const size_t coalesce_window =
      static_cast<size_t>(flags.GetInt("coalesce-window", 3));
  AVT_CHECK_MSG(coalesce_window >= 1, "--coalesce-window must be >= 1");
  auto graph_bytes = [](const Graph& graph) {
    return static_cast<uint64_t>(graph.NumVertices()) *
               sizeof(std::vector<VertexId>) +
           2 * graph.NumEdges() * sizeof(VertexId);
  };
  auto delta_bytes = [](const EdgeDelta& d) {
    return static_cast<uint64_t>(d.Size()) * sizeof(Edge);
  };

  // (a) materialized — the retired snapshot-pull pattern: one working
  // graph mutated per delta plus a full Graph copy handed around per
  // transition (O(T * m) ingestion).
  double mat_millis = 1e300;
  uint64_t mat_bytes = 0;
  std::vector<std::vector<VertexId>> stream_baseline;
  for (int r = 0; r < repeats; ++r) {
    IncAvtTracker tracker(k, l);
    stream_baseline.clear();
    stream_baseline.push_back(tracker.ProcessFirst(sequence.initial())
                                  .anchors);
    Graph working = sequence.initial();
    double millis = 0;
    uint64_t bytes = 0;
    for (const EdgeDelta& delta : sequence.deltas()) {
      Timer timer;
      delta.Apply(working);
      Graph snapshot = working;  // the per-transition materialization
      AvtSnapshotResult snap = tracker.ProcessDelta(delta);
      millis += timer.ElapsedMillis();
      bytes = std::max(bytes, graph_bytes(working) + graph_bytes(snapshot));
      stream_baseline.push_back(snap.anchors);
    }
    mat_millis = std::min(mat_millis, millis);
    mat_bytes = bytes;
  }
  AVT_CHECK_MSG(stream_baseline == lazy_track,
                "perf gate violated: materialized-arm replay diverged");

  // (b) streamed — AvtEngine + SequenceSource, no snapshot ever built.
  double str_millis = 1e300;
  uint64_t str_bytes = 0;
  for (int r = 0; r < repeats; ++r) {
    AvtEngine engine(std::make_unique<IncAvtTracker>(k, l),
                     std::make_unique<SequenceSource>(&sequence));
    std::vector<std::vector<VertexId>> track;
    uint64_t bytes = 0;
    engine.SetObserver([&](const AvtSnapshotResult& snap) {
      track.push_back(snap.anchors);
    });
    AVT_CHECK(engine.Step().value());  // G_0 outside the timed section
    for (const EdgeDelta& delta : sequence.deltas()) {
      bytes = std::max(bytes, delta_bytes(delta));
    }
    Timer timer;
    Status status = engine.Drain();
    const double millis = timer.ElapsedMillis();
    AVT_CHECK_MSG(status.ok(), status.ToString().c_str());
    AVT_CHECK_MSG(track == stream_baseline,
                  "perf gate violated: streamed replay diverged from "
                  "materialized");
    str_millis = std::min(str_millis, millis);
    str_bytes = bytes;
  }

  // Coalesce-window 1 is the identity: bit-identical to streamed.
  {
    AvtEngine engine(std::make_unique<IncAvtTracker>(k, l),
                     std::make_unique<CoalescingSource>(
                         std::make_unique<SequenceSource>(&sequence), 1));
    std::vector<std::vector<VertexId>> track;
    engine.SetObserver([&](const AvtSnapshotResult& snap) {
      track.push_back(snap.anchors);
    });
    Status status = engine.Drain();
    AVT_CHECK_MSG(status.ok(), status.ToString().c_str());
    AVT_CHECK_MSG(track == stream_baseline,
                  "perf gate violated: coalesce-window 1 is not the "
                  "identity");
  }

  // (c) coalesced — net-effect batches of --coalesce-window
  // transitions. Fewer, coarser snapshots by design, so the assertion
  // is state equivalence: after coalesced transition j the maintained
  // graph must equal the materialized snapshot at boundary
  // min(j * W, T - 1) (precomputed by one working replay).
  std::vector<Graph> boundary_graphs;
  {
    Graph working = sequence.initial();
    size_t t = 0;
    for (const EdgeDelta& delta : sequence.deltas()) {
      delta.Apply(working);
      ++t;
      if (t % coalesce_window == 0 || t == sequence.deltas().size()) {
        boundary_graphs.push_back(working);
      }
    }
  }
  double coal_millis = 1e300;
  uint64_t coal_bytes = 0;
  size_t coal_transitions = 0;
  for (int r = 0; r < repeats; ++r) {
    auto tracker = std::make_unique<IncAvtTracker>(k, l);
    IncAvtTracker* inc = tracker.get();
    AvtEngine engine(std::move(tracker),
                     std::make_unique<CoalescingSource>(
                         std::make_unique<SequenceSource>(&sequence),
                         coalesce_window));
    AVT_CHECK(engine.Step().value());  // G_0
    double millis = 0;
    size_t boundary = 0;
    for (;;) {
      Timer timer;
      StatusOr<bool> stepped = engine.Step();
      AVT_CHECK_MSG(stepped.ok(), stepped.status().ToString().c_str());
      if (!stepped.value()) break;
      millis += timer.ElapsedMillis();
      AVT_CHECK_MSG(boundary < boundary_graphs.size() &&
                        inc->maintainer().graph() ==
                            boundary_graphs[boundary],
                    "perf gate violated: coalesced replay diverged from "
                    "the materialized boundary snapshot");
      ++boundary;
    }
    AVT_CHECK(boundary == boundary_graphs.size());
    coal_transitions = boundary;
    coal_millis = std::min(coal_millis, millis);
    coal_bytes = static_cast<uint64_t>(coalesce_window) * str_bytes;
  }
  const double coal_deltas =
      static_cast<double>(coal_transitions > 0 ? coal_transitions : 1);
  std::printf("ingest materialized: %8.2f ms/delta  (%7.1f KiB driver "
              "state)\n",
              mat_millis / deltas,
              static_cast<double>(mat_bytes) / 1024.0);
  std::printf("ingest streamed:     %8.2f ms/delta  (%7.1f KiB driver "
              "state)  %.2fx vs materialized\n",
              str_millis / deltas,
              static_cast<double>(str_bytes) / 1024.0,
              Ratio(mat_millis, str_millis));
  std::printf("ingest coalesced(%zu): %6.2f ms/delta over %zu net "
              "transitions\n",
              coalesce_window, coal_millis / coal_deltas,
              coal_transitions);

  // (d) acceptance matrix — a generated temporal edge-list FILE
  // streamed with zero materialization vs the WindowSnapshots sequence
  // of the SAME file (load-order id compaction matches), across
  // {lazy, eager} x csr {none, maintained} x threads {1, 8}.
  const size_t file_T = 8;
  const uint32_t file_window = 45;
  std::filesystem::path tmp_path =
      std::filesystem::temp_directory_path() /
      "avt_perf_gate_pr5_temporal.txt";
  {
    Rng temporal_rng(seed + 7);
    TemporalGenOptions temporal_options;
    temporal_options.num_vertices = 2000;
    temporal_options.num_events = 60'000;
    temporal_options.num_days = 180;
    TemporalEventLog log =
        GenPowerLawActivityEvents(temporal_options, 2.1, temporal_rng);
    Status saved = SaveTemporalEdgeList(log, tmp_path.string());
    AVT_CHECK_MSG(saved.ok(), saved.ToString().c_str());
  }
  auto reloaded = LoadTemporalEdgeList(tmp_path.string());
  AVT_CHECK(reloaded.ok());
  SnapshotSequence file_sequence =
      WindowSnapshots(reloaded.value(), file_T, file_window);
  for (bool strategy_lazy : {true, false}) {
    for (IncAvtCsrMode mode :
         {IncAvtCsrMode::kNone, IncAvtCsrMode::kMaintained}) {
      for (uint32_t threads : {1u, 8u}) {
        IncAvtOptions options;
        options.lazy = strategy_lazy;
        options.num_threads = threads;
        options.csr = mode;
        auto run_config = [&](std::unique_ptr<DeltaSource> src) {
          AvtEngine engine(
              std::make_unique<IncAvtTracker>(
                  k, l, IncAvtMode::kRestricted, options),
              std::move(src));
          std::vector<std::vector<VertexId>> anchors;
          std::vector<uint32_t> followers;
          engine.SetObserver([&](const AvtSnapshotResult& snap) {
            anchors.push_back(snap.anchors);
            followers.push_back(snap.num_followers);
          });
          Status status = engine.Drain();
          AVT_CHECK_MSG(status.ok(), status.ToString().c_str());
          return std::make_pair(std::move(anchors), std::move(followers));
        };
        auto materialized =
            run_config(std::make_unique<SequenceSource>(&file_sequence));
        auto opened = StreamingEdgeFileSource::Open(tmp_path.string(),
                                                    file_T, file_window);
        AVT_CHECK_MSG(opened.ok(), opened.status().ToString().c_str());
        auto streamed = run_config(std::move(opened).value());
        AVT_CHECK_MSG(materialized == streamed,
                      "perf gate violated: streamed temporal file "
                      "diverged from materialized WindowSnapshots in the "
                      "{strategy x csr x threads} matrix");
      }
    }
  }
  std::filesystem::remove(tmp_path);
  std::printf("stream acceptance matrix: file-streamed == materialized "
              "for {lazy, eager} x csr {none, maintained} x threads "
              "{1, 8}\n");

  // --- Gate 6 (PR 6): parallel scaling after the batching fix --------
  // BENCH_PR3 recorded the defect this PR fixes: the per-shard trial
  // engine resolved one winner PER SHARD, so oracle_queries scaled
  // linearly with the thread count and threads=8 lost to threads=1 on
  // both workloads. The fixed engine's counters are thread-count
  // invariant (asserted below), the live candidates are partitioned by
  // K-order region, and the incremental tracker amortizes its
  // invalidation walk over --batch merged deltas. This gate asserts
  // the counters, asserts batched replay == the net-delta mirror at
  // every batch boundary for batch {1, --batch, 16} x threads {1, 8},
  // and — on hosts with enough CPUs to measure wall scaling — enforces
  // speedup_max_threads_vs_1 > 1.0 for both workloads.
  const std::string scaling_out =
      flags.GetString("scaling-out", "BENCH_PR6.json");
  const size_t gate6_batch = static_cast<size_t>(flags.GetInt("batch", 3));
  AVT_CHECK_MSG(gate6_batch >= 1, "--batch must be >= 1");

  // (a) Work counters must be pure functions of the workload.
  for (size_t i = 1; i < thread_counts.size(); ++i) {
    AVT_CHECK_MSG(greedy_by_threads[i].oracle_queries ==
                          greedy_by_threads[0].oracle_queries &&
                      greedy_by_threads[i].bound_probes ==
                          greedy_by_threads[0].bound_probes,
                  "perf gate violated: greedy work counters scale with "
                  "the thread count (the BENCH_PR3 defect)");
    AVT_CHECK_MSG(incavt_by_threads[i].oracle_queries ==
                          incavt_by_threads[0].oracle_queries &&
                      incavt_by_threads[i].bound_probes ==
                          incavt_by_threads[0].bound_probes,
                  "perf gate violated: IncAVT work counters scale with "
                  "the thread count (the BENCH_PR3 defect)");
  }
  std::printf("work counters: thread-count-invariant on both workloads "
              "across all measured counts\n");

  // (b) Batched replay == net-delta mirror (one DiffGraphs transaction
  // per boundary) — the Theorem-3-safe batching contract, at gate scale.
  auto mirror_track = [&](size_t batch) {
    std::vector<std::vector<VertexId>> track;
    IncAvtTracker mirror(k, l);
    track.push_back(mirror.ProcessFirst(sequence.initial()).anchors);
    Graph prev = sequence.initial();
    Graph working = sequence.initial();
    size_t t = 0;
    for (const EdgeDelta& delta : sequence.deltas()) {
      delta.Apply(working);
      ++t;
      if (t % batch == 0 || t == sequence.deltas().size()) {
        track.push_back(
            mirror.ProcessDelta(DiffGraphs(prev, working)).anchors);
        prev = working;
      }
    }
    return track;
  };
  for (size_t b : {size_t{1}, gate6_batch, size_t{16}}) {
    // batch 1 must be VERBATIM per-delta delivery; larger batches must
    // match the mirror at every emitted boundary.
    const std::vector<std::vector<VertexId>> expected =
        b == 1 ? lazy_track : mirror_track(b);
    for (uint32_t threads : {1u, 8u}) {
      std::vector<std::vector<VertexId>> track;
      MeasureIncAvt(sequence, k, l, /*lazy=*/true, /*repeats=*/1, &track,
                    threads, IncAvtCsrMode::kMaintained, b);
      AVT_CHECK_MSG(track == expected,
                    "perf gate violated: batched IncAVT diverged from "
                    "the net-delta mirror replay");
    }
  }
  std::printf("batch identity: engine batch {1, %zu, 16} == net-delta "
              "mirror at every boundary, threads {1, 8}\n",
              gate6_batch);

  // (c) Batched IncAVT thread scaling (the measured arm: batching gives
  // the parallel phase pools big enough to amortize the fan-out).
  const std::vector<std::vector<VertexId>> batched_expected =
      mirror_track(gate6_batch);
  std::vector<GateMetrics> incavt_batched_by_threads;
  for (uint32_t threads : thread_counts) {
    std::vector<std::vector<VertexId>> track;
    incavt_batched_by_threads.push_back(
        MeasureIncAvt(sequence, k, l, /*lazy=*/true, repeats, &track,
                      threads, IncAvtCsrMode::kMaintained, gate6_batch));
    AVT_CHECK_MSG(track == batched_expected,
                  "perf gate violated: batched IncAVT diverged across "
                  "thread counts");
    std::printf("threads %2u (batch %zu): incavt %8.2f ms/batch (%.2fx)\n",
                threads, gate6_batch,
                incavt_batched_by_threads.back().millis /
                    static_cast<double>(batched_expected.size() - 1),
                Ratio(incavt_batched_by_threads.front().millis,
                      incavt_batched_by_threads.back().millis));
  }
  for (size_t i = 1; i < thread_counts.size(); ++i) {
    AVT_CHECK_MSG(incavt_batched_by_threads[i].oracle_queries ==
                          incavt_batched_by_threads[0].oracle_queries &&
                      incavt_batched_by_threads[i].bound_probes ==
                          incavt_batched_by_threads[0].bound_probes,
                  "perf gate violated: batched IncAVT work counters "
                  "scale with the thread count");
  }

  // (d) Wall-clock scaling assertion, gated on the host: below 2 CPUs
  // wall scaling is unmeasurable (the PR-3 gate silently asserted
  // nothing there — this one says so); at >= 4 CPUs threads=max must
  // beat threads=1 on BOTH workloads.
  const double greedy_speedup = Ratio(greedy_by_threads.front().millis,
                                      greedy_by_threads.back().millis);
  const double incavt_batched_speedup =
      Ratio(incavt_batched_by_threads.front().millis,
            incavt_batched_by_threads.back().millis);
  const char* wall_assert = "recorded";
  if (host_cpus < 2) {
    wall_assert = "skipped";
    std::printf("scaling gate: SKIPPED — host has %u CPU(s); wall-clock "
                "scaling is unmeasurable here (outputs, counters, and "
                "batch identity asserted above)\n",
                host_cpus);
  } else if (host_cpus >= 4) {
    wall_assert = "enforced";
    AVT_CHECK_MSG(greedy_speedup > 1.0,
                  "perf gate violated: greedy threads=max is no faster "
                  "than threads=1 on a >=4-CPU host");
    AVT_CHECK_MSG(incavt_batched_speedup > 1.0,
                  "perf gate violated: batched IncAVT threads=max is no "
                  "faster than threads=1 on a >=4-CPU host");
    std::printf("scaling gate: ENFORCED — greedy %.2fx, batched incavt "
                "%.2fx at max threads vs 1 (%u CPUs)\n",
                greedy_speedup, incavt_batched_speedup, host_cpus);
  } else {
    std::printf("scaling gate: recorded only — %u CPUs is too few to "
                "enforce a speedup, too many to skip the record\n",
                host_cpus);
  }

  // --- Gate 7 (PR 7): crash-safe streaming ---------------------------
  // (a) WAL overhead on the streamed workload: the same engine run with
  // durability off, WAL fsync=never, WAL fsync=every-record, and WAL +
  // cadenced checkpoints. All four anchor tracks must be bit-identical
  // (the WAL is a pure observer of committed transactions); only the
  // wall clock may move.
  const std::string durability_out =
      flags.GetString("durability-out", "BENCH_PR7.json");
  const std::filesystem::path wal_dir =
      std::filesystem::temp_directory_path() / "avt_perf_gate_pr7_wal";
  const size_t gate7_checkpoint_every = 4;

  WallRun wal_off =
      MeasureDurableDrain(sequence, k, l, repeats, nullptr);
  AVT_CHECK_MSG(wal_off.track == lazy_track,
                "perf gate violated: durability-off streamed replay "
                "diverged");
  DurabilityOptions wal_never;
  wal_never.dir = wal_dir.string();
  wal_never.fsync = FsyncPolicy::kNever;
  WallRun wal_fsync_never =
      MeasureDurableDrain(sequence, k, l, repeats, &wal_never);
  DurabilityOptions wal_record = wal_never;
  wal_record.fsync = FsyncPolicy::kEveryRecord;
  WallRun wal_fsync_record =
      MeasureDurableDrain(sequence, k, l, repeats, &wal_record);
  DurabilityOptions wal_ckpt = wal_never;
  wal_ckpt.checkpoint_every = gate7_checkpoint_every;
  WallRun wal_checkpointed =
      MeasureDurableDrain(sequence, k, l, repeats, &wal_ckpt);
  AVT_CHECK_MSG(wal_fsync_never.track == wal_off.track &&
                    wal_fsync_record.track == wal_off.track &&
                    wal_checkpointed.track == wal_off.track,
                "perf gate violated: a durable arm's anchors diverged "
                "from the durability-off run (the WAL must be a pure "
                "observer)");
  std::printf("durability off:          %8.2f ms/delta\n",
              wal_off.millis / deltas);
  std::printf("wal fsync=never:         %8.2f ms/delta  (%.2fx overhead)\n",
              wal_fsync_never.millis / deltas,
              wal_off.millis > 0 ? wal_fsync_never.millis / wal_off.millis
                                 : 0.0);
  std::printf("wal fsync=every-record:  %8.2f ms/delta  (%.2fx overhead)\n",
              wal_fsync_record.millis / deltas,
              wal_off.millis > 0 ? wal_fsync_record.millis / wal_off.millis
                                 : 0.0);
  std::printf("wal + checkpoint/%zu:     %8.2f ms/delta\n",
              gate7_checkpoint_every, wal_checkpointed.millis / deltas);
  std::filesystem::remove_all(wal_dir);

  // (b) Recovery wall time: write a --recovery-deltas-long churn log
  // durably (fsync=never, initial checkpoint only — the worst case for
  // recovery: the whole WAL replays), then time AvtEngine::Recover and
  // assert the recovered run is bit-identical to the writer.
  const size_t recovery_deltas =
      static_cast<size_t>(flags.GetInt("recovery-deltas", 50000));
  AVT_CHECK_MSG(recovery_deltas >= 1, "--recovery-deltas must be >= 1");
  Rng recovery_rng(seed + 11);
  Graph recovery_g =
      ChungLuPowerLaw(4000, 6.0, 2.1, 200, recovery_rng);
  ChurnOptions recovery_churn;
  recovery_churn.num_snapshots = recovery_deltas + 1;
  recovery_churn.min_churn = 3;
  recovery_churn.max_churn = 8;
  SnapshotSequence recovery_sequence =
      MakeChurnSnapshots(recovery_g, recovery_churn, recovery_rng);
  const std::filesystem::path recovery_dir =
      std::filesystem::temp_directory_path() / "avt_perf_gate_pr7_recovery";
  std::filesystem::remove_all(recovery_dir);
  DurabilityOptions recovery_durability;
  recovery_durability.dir = recovery_dir.string();
  recovery_durability.fsync = FsyncPolicy::kNever;
  EngineOptions recovery_engine_options;
  recovery_engine_options.keep_snapshots = false;

  double recovery_write_millis = 0;
  std::vector<VertexId> recovery_expected_anchors;
  RunSummary recovery_expected_summary;
  {
    AvtEngine writer(
        std::make_unique<IncAvtTracker>(k, l),
        std::make_unique<SequenceSource>(&recovery_sequence),
        recovery_engine_options);
    Status armed = writer.EnableDurability(recovery_durability);
    AVT_CHECK_MSG(armed.ok(), armed.ToString().c_str());
    Timer timer;
    Status status = writer.Drain();
    recovery_write_millis = timer.ElapsedMillis();
    AVT_CHECK_MSG(status.ok(), status.ToString().c_str());
    AVT_CHECK(writer.SnapshotsProcessed() == recovery_deltas + 1);
    recovery_expected_anchors = writer.last().anchors;
    recovery_expected_summary = writer.Summary();
  }
  const uint64_t recovery_wal_bytes = static_cast<uint64_t>(
      std::filesystem::file_size(recovery_dir /
                                 DeltaWal::kFileName));
  double recovery_millis = 0;
  {
    Timer timer;
    auto recovered = AvtEngine::Recover(
        std::make_unique<IncAvtTracker>(k, l),
        std::make_unique<SequenceSource>(&recovery_sequence),
        recovery_engine_options, recovery_durability);
    recovery_millis = timer.ElapsedMillis();
    AVT_CHECK_MSG(recovered.ok(), recovered.status().ToString().c_str());
    AVT_CHECK_MSG(
        recovered.value()->SnapshotsProcessed() == recovery_deltas + 1 &&
            recovered.value()->last().anchors == recovery_expected_anchors,
        "perf gate violated: recovered run's anchors diverged from the "
        "uninterrupted writer");
    RunSummary recovered_summary = recovered.value()->Summary();
    AVT_CHECK_MSG(
        recovered_summary.total_candidates ==
                recovery_expected_summary.total_candidates &&
            recovered_summary.total_followers ==
                recovery_expected_summary.total_followers &&
            recovered_summary.anchor_changes ==
                recovery_expected_summary.anchor_changes,
        "perf gate violated: recovered run's work counters diverged "
        "from the uninterrupted writer");
  }
  std::filesystem::remove_all(recovery_dir);
  const double recovery_per_delta =
      recovery_millis / static_cast<double>(recovery_deltas);
  std::printf("recovery: %zu-delta WAL (%.1f MiB) replayed in %.1f ms "
              "(%.3f ms/delta; durable write took %.1f ms)\n",
              recovery_deltas,
              static_cast<double>(recovery_wal_bytes) / (1024.0 * 1024.0),
              recovery_millis, recovery_per_delta, recovery_write_millis);

  // --- Gate 8 (PR 8): bounded memo memory ----------------------------
  const std::string memo_out = flags.GetString("memo-out", "BENCH_PR8.json");
  const size_t memo_transitions =
      static_cast<size_t>(flags.GetInt("memo-transitions", 800));
  AVT_CHECK_MSG(memo_transitions >= 1, "--memo-transitions must be >= 1");
  // Tight enough that the per-snapshot working set overflows it (the
  // table holds ~128 slots, evicting down to ~80 live entries): the
  // gate shows LRU actually evicting, not a budget it never feels.
  const size_t memo_lru_budget = 8 * 1024;
  const uint32_t memo_k = 3, memo_l = 4, memo_n = 1200;

  // (a) Erase-heavy stream: ~255 edge events per transition (~200k edge
  // deltas at the default 800 transitions). The invalidation walk
  // erases and re-records memo entries constantly — the traffic that
  // used to balloon the FlatKeyMap via tombstone-triggered doubling.
  Rng memo_rng(seed + 13);
  Graph memo_g = ChungLuPowerLaw(memo_n, 6.0, 2.1, 100, memo_rng);
  ChurnOptions memo_churn;
  memo_churn.num_snapshots = memo_transitions + 1;
  memo_churn.min_churn = 250;
  memo_churn.max_churn = 260;
  SnapshotSequence memo_sequence =
      MakeChurnSnapshots(memo_g, memo_churn, memo_rng);
  const double memo_deltas = static_cast<double>(memo_transitions);

  struct MemoPolicyArm {
    MemoPolicy policy;
    size_t budget;
  };
  const MemoPolicyArm memo_arms[] = {
      {MemoPolicy::kMemoizeAll, 0},
      {MemoPolicy::kTopValueOnly, 0},
      {MemoPolicy::kLru, memo_lru_budget},
      {MemoPolicy::kNone, 0},
  };
  MemoRun memo_heavy[4];
  for (size_t i = 0; i < 4; ++i) {
    memo_heavy[i] =
        MeasureMemoPolicy(memo_sequence, memo_k, memo_l,
                          memo_arms[i].policy, memo_arms[i].budget,
                          /*lazy=*/true);
  }
  // Identity matrix: every policy, lazy AND eager, must walk the exact
  // same anchor track — retention is a memory knob, never a result
  // knob (eviction only ever costs recomputation).
  for (size_t i = 1; i < 4; ++i) {
    AVT_CHECK_MSG(memo_heavy[i].track == memo_heavy[0].track,
                  "perf gate violated: a memo policy changed the "
                  "anchor track");
  }
  for (const MemoPolicyArm& arm : memo_arms) {
    MemoRun eager = MeasureMemoPolicy(memo_sequence, memo_k, memo_l,
                                      arm.policy, arm.budget,
                                      /*lazy=*/false);
    AVT_CHECK_MSG(eager.track == memo_heavy[0].track,
                  "perf gate violated: eager anchors diverged from lazy "
                  "under a memo policy");
    AVT_CHECK_MSG(eager.peak_bytes == 0,
                  "perf gate violated: eager mode reported memo bytes");
  }
  // The bounded-memory assertions themselves. memoize-all's footprint
  // must stay a small multiple of its initial table (the pre-fix map
  // reached tens of MiB here by doubling on tombstone load); the LRU
  // arm's slot array must never outgrow its budget.
  AVT_CHECK_MSG(memo_heavy[0].peak_bytes <= 2u * 1024 * 1024,
                "perf gate violated: memoize-all memo footprint grew "
                "past 2 MiB on the erase-heavy stream (tombstone "
                "growth is back)");
  AVT_CHECK_MSG(memo_heavy[2].peak_bytes <= memo_lru_budget,
                "perf gate violated: lru memo footprint exceeded its "
                "byte budget");
  const char* memo_names[] = {"all", "top", "lru", "none"};
  for (size_t i = 0; i < 4; ++i) {
    std::printf("memo erase-heavy %-5s %8.3f ms/delta  %5.1f%% hit rate  "
                "%8" PRIu64 " evictions  peak %llu KiB\n",
                memo_names[i], memo_heavy[i].millis / memo_deltas,
                100.0 * HitRate(memo_heavy[i]), memo_heavy[i].evictions,
                static_cast<unsigned long long>(
                    memo_heavy[i].peak_bytes / 1024));
  }

  // (b) Retention stream: gentle churn, where entries survive between
  // snapshots and the policies genuinely differ in hit rate.
  const size_t retention_transitions =
      std::max<size_t>(30, memo_transitions / 4);
  Rng retention_rng(81);
  Graph retention_g = ChungLuPowerLaw(400, 6.0, 2.2, 50, retention_rng);
  ChurnOptions retention_churn;
  retention_churn.num_snapshots = retention_transitions + 1;
  retention_churn.min_churn = 1;
  retention_churn.max_churn = 4;
  SnapshotSequence retention_sequence =
      MakeChurnSnapshots(retention_g, retention_churn, retention_rng);
  MemoRun memo_retention[4];
  for (size_t i = 0; i < 4; ++i) {
    memo_retention[i] =
        MeasureMemoPolicy(retention_sequence, memo_k, memo_l,
                          memo_arms[i].policy, memo_arms[i].budget,
                          /*lazy=*/true);
    AVT_CHECK_MSG(i == 0 ||
                      memo_retention[i].track == memo_retention[0].track,
                  "perf gate violated: a memo policy changed the "
                  "retention-stream anchor track");
    std::printf("memo retention   %-5s %5.1f%% hit rate  %8" PRIu64
                " evictions  peak %llu KiB\n",
                memo_names[i], 100.0 * HitRate(memo_retention[i]),
                memo_retention[i].evictions,
                static_cast<unsigned long long>(
                    memo_retention[i].peak_bytes / 1024));
  }
  AVT_CHECK_MSG(memo_retention[2].peak_bytes <= memo_lru_budget,
                "perf gate violated: lru memo footprint exceeded its "
                "byte budget on the retention stream");
  if (retention_transitions >= 100) {
    AVT_CHECK_MSG(memo_retention[0].hits > 0,
                  "perf gate violated: the memo earned no hits on the "
                  "retention stream (the cache is dead weight)");
  }

  // (c) The FlatKeyMap fix, measured directly: 100k put/erase cycles
  // with a 1000-entry live set. Pre-fix this doubled capacity every
  // time tombstones crossed the growth trigger (~128k slots by the
  // end); post-fix capacity stays within 4x of what the live set needs.
  const size_t soak_live = 1000, soak_cycles = 100000;
  FlatKeyMap<uint64_t> soak_map;
  for (uint64_t key = 0; key < soak_live; ++key) soak_map.Put(key, key);
  const size_t soak_capacity_for_live = soak_map.capacity();
  size_t soak_max_capacity = soak_map.capacity();
  for (uint64_t cycle = 0; cycle < soak_cycles; ++cycle) {
    soak_map.Put(soak_live + cycle, cycle);
    soak_map.Erase(cycle);
    soak_max_capacity = std::max(soak_max_capacity, soak_map.capacity());
  }
  AVT_CHECK_MSG(soak_map.size() == soak_live,
                "perf gate violated: FlatKeyMap soak lost entries");
  AVT_CHECK_MSG(soak_max_capacity <= 4 * soak_capacity_for_live,
                "perf gate violated: FlatKeyMap capacity exceeded 4x "
                "the live set's capacity under erase-heavy churn");
  std::printf("flat_map soak: %zu cycles at %zu live entries — capacity "
              "%zu..%zu slots (%.1fx live-set capacity, bound 4x)\n",
              soak_cycles, soak_live, soak_capacity_for_live,
              soak_max_capacity,
              static_cast<double>(soak_max_capacity) /
                  static_cast<double>(soak_capacity_for_live));

  // --- Gate 9 (PR 9): online integrity audit overhead ----------------
  // The streamed IncAVT workload with the sentinel auditor off / every
  // 16 transactions / every transaction. The audit (sampled coreness
  // probe + full K-order invariant sweep over one shared DecomposeCores)
  // runs pre-commit inside the engine, so the arms are timed around
  // Drain like gate 7. An audit is a read-only cross-check: all three
  // anchor tracks AND follower counts must be bit-identical, no audit
  // may fail on a clean stream, and the production cadence (every 16)
  // must cost at most 15% wall overhead.
  const std::string selfheal_out =
      flags.GetString("selfheal-out", "BENCH_PR9.json");
  const size_t audit_transitions =
      static_cast<size_t>(flags.GetInt("audit-transitions", 96));
  AVT_CHECK_MSG(audit_transitions >= 16,
                "--audit-transitions must be >= 16 so the every-16 arm "
                "audits at least once");
  const uint32_t audit_k = 3, audit_l = 4, audit_n = 2500;
  const uint32_t audit_churn_min = 260, audit_churn_max = 300;
  Rng audit_rng(seed + 17);
  Graph audit_g = ChungLuPowerLaw(audit_n, 7.0, 2.1, 120, audit_rng);
  ChurnOptions audit_churn;
  audit_churn.num_snapshots = audit_transitions + 1;
  audit_churn.min_churn = audit_churn_min;
  audit_churn.max_churn = audit_churn_max;
  SnapshotSequence audit_sequence =
      MakeChurnSnapshots(audit_g, audit_churn, audit_rng);
  const double audit_deltas = static_cast<double>(audit_transitions);

  AuditRun audit_off =
      MeasureAuditedDrain(audit_sequence, audit_k, audit_l, repeats, 0);
  AuditRun audit_16 =
      MeasureAuditedDrain(audit_sequence, audit_k, audit_l, repeats, 16);
  AuditRun audit_1 =
      MeasureAuditedDrain(audit_sequence, audit_k, audit_l, repeats, 1);
  AVT_CHECK_MSG(audit_16.track == audit_off.track &&
                    audit_1.track == audit_off.track,
                "perf gate violated: enabling audits changed the anchor "
                "track (audits must be read-only)");
  AVT_CHECK_MSG(audit_16.followers == audit_off.followers &&
                    audit_1.followers == audit_off.followers,
                "perf gate violated: enabling audits changed follower "
                "counts (audits must be read-only)");
  AVT_CHECK_MSG(audit_off.audits_run == 0,
                "perf gate violated: the audit-off arm ran audits");
  AVT_CHECK_MSG(audit_16.audits_run == audit_transitions / 16,
                "perf gate violated: the every-16 arm missed its audit "
                "cadence");
  AVT_CHECK_MSG(audit_1.audits_run == audit_transitions,
                "perf gate violated: the every-1 arm missed its audit "
                "cadence");
  AVT_CHECK_MSG(audit_16.audits_failed == 0 && audit_1.audits_failed == 0,
                "perf gate violated: an audit failed on a clean stream");
  const double audit_16_overhead =
      audit_off.millis > 0 ? audit_16.millis / audit_off.millis : 0.0;
  const double audit_1_overhead =
      audit_off.millis > 0 ? audit_1.millis / audit_off.millis : 0.0;
  std::printf("audit    off: %8.3f ms/delta\n",
              audit_off.millis / audit_deltas);
  std::printf("audit  ev-16: %8.3f ms/delta  %.3fx (bound 1.15x)  %" PRIu64
              " audits\n",
              audit_16.millis / audit_deltas, audit_16_overhead,
              audit_16.audits_run);
  std::printf("audit   ev-1: %8.3f ms/delta  %.3fx               %" PRIu64
              " audits\n",
              audit_1.millis / audit_deltas, audit_1_overhead,
              audit_1.audits_run);
  AVT_CHECK_MSG(audit_16_overhead <= 1.15,
                "perf gate violated: the every-16 audit cadence cost more "
                "than 15% wall overhead");

  // --- Emit JSON -----------------------------------------------------
  FILE* f = std::fopen(out.c_str(), "w");
  AVT_CHECK_MSG(f != nullptr, "cannot open bench output file");
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"perf_gate\",\n");
  std::fprintf(f, "  \"pr\": 2,\n");
  std::fprintf(
      f,
      "  \"config\": {\"n\": %u, \"avg_degree\": 8.0, \"alpha\": 2.1, "
      "\"k\": %u, \"l\": %u, \"snapshots\": %zu, \"churn_min\": %u, "
      "\"churn_max\": %u, \"seed\": %" PRIu64 ", \"repeats\": %d},\n",
      n, k, l, T, churn, churn + 100, seed, repeats);
  std::fprintf(f, "  \"greedy_solve\": {\n");
  PrintMetrics(f, "before_scan", greedy_scan, ",");
  PrintMetrics(f, "after_lazy", greedy_lazy, ",");
  std::fprintf(f, "    \"wall_speedup\": %.2f,\n",
               Ratio(greedy_scan.millis, greedy_lazy.millis));
  std::fprintf(f, "    \"oracle_query_reduction\": %.2f\n",
               Ratio(static_cast<double>(greedy_scan.oracle_queries),
                     static_cast<double>(greedy_lazy.oracle_queries)));
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"incavt_per_delta\": {\n");
  PrintMetrics(f, "before_eager", inc_eager, ",");
  PrintMetrics(f, "after_lazy", inc_lazy, ",");
  std::fprintf(f, "    \"wall_speedup\": %.2f,\n",
               Ratio(inc_eager.millis, inc_lazy.millis));
  std::fprintf(f, "    \"oracle_query_reduction\": %.2f\n",
               Ratio(static_cast<double>(inc_eager.oracle_queries),
                     static_cast<double>(inc_lazy.oracle_queries)));
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"identical_outputs\": true\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());

  // --- Emit BENCH_PR3.json (thread scaling) --------------------------
  FILE* tf = std::fopen(threads_out.c_str(), "w");
  AVT_CHECK_MSG(tf != nullptr, "cannot open thread-scaling output file");
  std::fprintf(tf, "{\n");
  std::fprintf(tf, "  \"bench\": \"perf_gate_thread_scaling\",\n");
  std::fprintf(tf, "  \"pr\": 3,\n");
  std::fprintf(
      tf,
      "  \"config\": {\"n\": %u, \"avg_degree\": 8.0, \"alpha\": 2.1, "
      "\"k\": %u, \"l\": %u, \"snapshots\": %zu, \"churn_min\": %u, "
      "\"churn_max\": %u, \"seed\": %" PRIu64 ", \"repeats\": %d, "
      "\"strategy\": \"lazy\"},\n",
      n, k, l, T, churn, churn + 100, seed, repeats);
  std::fprintf(tf, "  \"host_cpus\": %u,\n", host_cpus);
  std::fprintf(tf, "  \"greedy_solve\": {\n");
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    std::string key = "threads_" + std::to_string(thread_counts[i]);
    PrintMetrics(tf, key.c_str(), greedy_by_threads[i], ",");
  }
  std::fprintf(tf, "    \"speedup_max_threads_vs_1\": %.2f\n",
               Ratio(greedy_by_threads.front().millis,
                     greedy_by_threads.back().millis));
  std::fprintf(tf, "  },\n");
  std::fprintf(tf, "  \"incavt_per_delta\": {\n");
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    std::string key = "threads_" + std::to_string(thread_counts[i]);
    PrintMetrics(tf, key.c_str(), incavt_by_threads[i], ",");
  }
  std::fprintf(tf, "    \"speedup_max_threads_vs_1\": %.2f\n",
               Ratio(incavt_by_threads.front().millis,
                     incavt_by_threads.back().millis));
  std::fprintf(tf, "  },\n");
  std::fprintf(tf, "  \"identical_outputs\": true\n");
  std::fprintf(tf, "}\n");
  std::fclose(tf);
  std::printf("wrote %s\n", threads_out.c_str());

  // --- Emit BENCH_PR4.json (CSR maintenance) -------------------------
  FILE* cf = std::fopen(csr_out.c_str(), "w");
  AVT_CHECK_MSG(cf != nullptr, "cannot open csr-maintenance output file");
  std::fprintf(cf, "{\n");
  std::fprintf(cf, "  \"bench\": \"perf_gate_csr_maintenance\",\n");
  std::fprintf(cf, "  \"pr\": 4,\n");
  std::fprintf(
      cf,
      "  \"config\": {\"n\": %u, \"avg_degree\": 8.0, \"alpha\": 2.1, "
      "\"k\": %u, \"l\": %u, \"snapshots\": %zu, \"churn_min\": %u, "
      "\"churn_max\": %u, \"seed\": %" PRIu64 ", \"repeats\": %d, "
      "\"strategy\": \"lazy\", \"threads\": 1},\n",
      n, k, l, T, churn, churn + 100, seed, repeats);
  std::fprintf(cf, "  \"incavt_per_delta\": {\n");
  PrintMetrics(cf, "no_csr", inc_nocsr, ",");
  PrintMetrics(cf, "rebuild_per_delta", inc_rebuild, ",");
  PrintMetrics(cf, "maintained", inc_maintained, ",");
  std::fprintf(cf, "    \"maintained_vs_no_csr_wall_ratio\": %.3f,\n",
               inc_nocsr.millis > 0
                   ? inc_maintained.millis / inc_nocsr.millis
                   : 0.0);
  std::fprintf(cf, "    \"maintained_vs_rebuild_wall_ratio\": %.3f,\n",
               inc_rebuild.millis > 0
                   ? inc_maintained.millis / inc_rebuild.millis
                   : 0.0);
  std::fprintf(cf, "    \"patch_vs_rebuild_wall_speedup\": %.2f,\n",
               Ratio(inc_rebuild.millis, inc_maintained.millis));
  std::fprintf(cf, "    \"maintained_speedup_vs_no_csr\": %.2f\n",
               Ratio(inc_nocsr.millis, inc_maintained.millis));
  std::fprintf(cf, "  },\n");
  std::fprintf(cf,
               "  \"identity_matrix\": {\"strategies\": [\"lazy\", "
               "\"eager\"], \"threads\": [1, 2, 8]},\n");
  std::fprintf(cf, "  \"identical_outputs\": true\n");
  std::fprintf(cf, "}\n");
  std::fclose(cf);
  std::printf("wrote %s\n", csr_out.c_str());

  // --- Emit BENCH_PR5.json (streaming ingestion) ---------------------
  FILE* sf = std::fopen(stream_out.c_str(), "w");
  AVT_CHECK_MSG(sf != nullptr, "cannot open stream-ingestion output file");
  std::fprintf(sf, "{\n");
  std::fprintf(sf, "  \"bench\": \"perf_gate_stream_ingestion\",\n");
  std::fprintf(sf, "  \"pr\": 5,\n");
  std::fprintf(
      sf,
      "  \"config\": {\"n\": %u, \"avg_degree\": 8.0, \"alpha\": 2.1, "
      "\"k\": %u, \"l\": %u, \"snapshots\": %zu, \"churn_min\": %u, "
      "\"churn_max\": %u, \"seed\": %" PRIu64 ", \"repeats\": %d, "
      "\"strategy\": \"lazy\", \"threads\": 1, \"csr\": \"maintained\", "
      "\"coalesce_window\": %zu},\n",
      n, k, l, T, churn, churn + 100, seed, repeats, coalesce_window);
  std::fprintf(sf, "  \"incavt_ingestion\": {\n");
  std::fprintf(sf,
               "    \"materialized\": {\"millis_per_delta\": %.3f, "
               "\"driver_bytes_peak\": %" PRIu64 "},\n",
               mat_millis / deltas, mat_bytes);
  std::fprintf(sf,
               "    \"streamed\": {\"millis_per_delta\": %.3f, "
               "\"driver_bytes_peak\": %" PRIu64 "},\n",
               str_millis / deltas, str_bytes);
  std::fprintf(sf,
               "    \"coalesced\": {\"millis_per_net_delta\": %.3f, "
               "\"net_transitions\": %zu, \"driver_bytes_peak\": %" PRIu64
               "},\n",
               coal_millis / coal_deltas, coal_transitions, coal_bytes);
  std::fprintf(sf, "    \"streamed_vs_materialized_wall_speedup\": %.2f,\n",
               Ratio(mat_millis, str_millis));
  std::fprintf(sf,
               "    \"driver_bytes_reduction\": %.1f\n",
               str_bytes > 0 ? static_cast<double>(mat_bytes) /
                                   static_cast<double>(str_bytes)
                             : 0.0);
  std::fprintf(sf, "  },\n");
  std::fprintf(sf,
               "  \"acceptance_matrix\": {\"source\": "
               "\"StreamingEdgeFileSource\", \"strategies\": [\"lazy\", "
               "\"eager\"], \"csr\": [\"none\", \"maintained\"], "
               "\"threads\": [1, 8], \"coalesce_window_identity\": 1},\n");
  std::fprintf(sf, "  \"identical_outputs\": true\n");
  std::fprintf(sf, "}\n");
  std::fclose(sf);
  std::printf("wrote %s\n", stream_out.c_str());

  // --- Emit BENCH_PR6.json (parallel scaling after the fix) ----------
  FILE* gf = std::fopen(scaling_out.c_str(), "w");
  AVT_CHECK_MSG(gf != nullptr, "cannot open scaling output file");
  std::fprintf(gf, "{\n");
  std::fprintf(gf, "  \"bench\": \"perf_gate_parallel_scaling\",\n");
  std::fprintf(gf, "  \"pr\": 6,\n");
  std::fprintf(
      gf,
      "  \"config\": {\"n\": %u, \"avg_degree\": 8.0, \"alpha\": 2.1, "
      "\"k\": %u, \"l\": %u, \"snapshots\": %zu, \"churn_min\": %u, "
      "\"churn_max\": %u, \"seed\": %" PRIu64 ", \"repeats\": %d, "
      "\"strategy\": \"lazy\", \"csr\": \"maintained\", \"batch\": %zu},\n",
      n, k, l, T, churn, churn + 100, seed, repeats, gate6_batch);
  std::fprintf(gf, "  \"host_cpus\": %u,\n", host_cpus);
  std::fprintf(gf, "  \"wall_assert\": \"%s\",\n", wall_assert);
  std::fprintf(gf, "  \"greedy_solve\": {\n");
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    std::string key = "threads_" + std::to_string(thread_counts[i]);
    PrintMetrics(gf, key.c_str(), greedy_by_threads[i], ",");
  }
  std::fprintf(gf, "    \"speedup_max_threads_vs_1\": %.2f\n",
               greedy_speedup);
  std::fprintf(gf, "  },\n");
  std::fprintf(gf, "  \"incavt_per_delta_batched\": {\n");
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    std::string key = "threads_" + std::to_string(thread_counts[i]);
    PrintMetrics(gf, key.c_str(), incavt_batched_by_threads[i], ",");
  }
  std::fprintf(gf, "    \"speedup_max_threads_vs_1\": %.2f\n",
               incavt_batched_speedup);
  std::fprintf(gf, "  },\n");
  std::fprintf(gf, "  \"incavt_per_delta_batch1_speedup\": %.2f,\n",
               Ratio(incavt_by_threads.front().millis,
                     incavt_by_threads.back().millis));
  std::fprintf(gf, "  \"counters_thread_invariant\": true,\n");
  std::fprintf(gf, "  \"batch_identity\": [1, %zu, 16],\n", gate6_batch);
  std::fprintf(gf, "  \"identical_outputs\": true\n");
  std::fprintf(gf, "}\n");
  std::fclose(gf);
  std::printf("wrote %s\n", scaling_out.c_str());

  // --- Emit BENCH_PR7.json (crash-safe streaming) --------------------
  FILE* df = std::fopen(durability_out.c_str(), "w");
  AVT_CHECK_MSG(df != nullptr, "cannot open durability output file");
  std::fprintf(df, "{\n");
  std::fprintf(df, "  \"bench\": \"perf_gate_durability\",\n");
  std::fprintf(df, "  \"pr\": 7,\n");
  std::fprintf(
      df,
      "  \"config\": {\"n\": %u, \"avg_degree\": 8.0, \"alpha\": 2.1, "
      "\"k\": %u, \"l\": %u, \"snapshots\": %zu, \"churn_min\": %u, "
      "\"churn_max\": %u, \"seed\": %" PRIu64 ", \"repeats\": %d, "
      "\"strategy\": \"lazy\", \"csr\": \"maintained\", "
      "\"checkpoint_every\": %zu},\n",
      n, k, l, T, churn, churn + 100, seed, repeats,
      gate7_checkpoint_every);
  std::fprintf(df, "  \"incavt_streamed_wall\": {\n");
  std::fprintf(df, "    \"durability_off\": {\"millis_per_delta\": %.3f},\n",
               wal_off.millis / deltas);
  std::fprintf(df,
               "    \"wal_fsync_never\": {\"millis_per_delta\": %.3f},\n",
               wal_fsync_never.millis / deltas);
  std::fprintf(
      df, "    \"wal_fsync_every_record\": {\"millis_per_delta\": %.3f},\n",
      wal_fsync_record.millis / deltas);
  std::fprintf(df,
               "    \"wal_checkpointed\": {\"millis_per_delta\": %.3f},\n",
               wal_checkpointed.millis / deltas);
  std::fprintf(df, "    \"wal_fsync_never_overhead_ratio\": %.3f,\n",
               wal_off.millis > 0 ? wal_fsync_never.millis / wal_off.millis
                                  : 0.0);
  std::fprintf(df, "    \"wal_fsync_every_record_overhead_ratio\": %.3f\n",
               wal_off.millis > 0 ? wal_fsync_record.millis / wal_off.millis
                                  : 0.0);
  std::fprintf(df, "  },\n");
  std::fprintf(df,
               "  \"recovery\": {\"deltas\": %zu, \"wal_bytes\": %" PRIu64
               ", \"durable_write_wall_millis\": %.1f, "
               "\"recover_wall_millis\": %.1f, "
               "\"recover_millis_per_delta\": %.4f},\n",
               recovery_deltas, recovery_wal_bytes, recovery_write_millis,
               recovery_millis, recovery_per_delta);
  std::fprintf(df, "  \"identical_outputs\": true\n");
  std::fprintf(df, "}\n");
  std::fclose(df);
  std::printf("wrote %s\n", durability_out.c_str());

  // --- Emit BENCH_PR8.json (bounded memo memory) ---------------------
  FILE* mf = std::fopen(memo_out.c_str(), "w");
  AVT_CHECK_MSG(mf != nullptr, "cannot open memo output file");
  std::fprintf(mf, "{\n");
  std::fprintf(mf, "  \"bench\": \"perf_gate_memo_policy\",\n");
  std::fprintf(mf, "  \"pr\": 8,\n");
  std::fprintf(
      mf,
      "  \"config\": {\"n\": %u, \"avg_degree\": 6.0, \"alpha\": 2.1, "
      "\"k\": %u, \"l\": %u, \"mode\": \"maintained-full\", "
      "\"transitions\": %zu, \"churn_min\": 250, \"churn_max\": 260, "
      "\"lru_budget_bytes\": %zu, \"seed\": %" PRIu64 "},\n",
      memo_n, memo_k, memo_l, memo_transitions, memo_lru_budget,
      seed + 13);
  std::fprintf(mf, "  \"erase_heavy_per_policy\": {\n");
  for (size_t i = 0; i < 4; ++i) {
    std::fprintf(
        mf,
        "    \"%s\": {\"millis_per_delta\": %.3f, \"hit_rate\": %.4f, "
        "\"hits\": %" PRIu64 ", \"misses\": %" PRIu64
        ", \"evictions\": %" PRIu64 ", \"peak_memo_bytes\": %" PRIu64
        "}%s\n",
        memo_names[i], memo_heavy[i].millis / memo_deltas,
        HitRate(memo_heavy[i]), memo_heavy[i].hits, memo_heavy[i].misses,
        memo_heavy[i].evictions, memo_heavy[i].peak_bytes,
        i + 1 < 4 ? "," : "");
  }
  std::fprintf(mf, "  },\n");
  std::fprintf(
      mf,
      "  \"retention_config\": {\"n\": 400, \"transitions\": %zu, "
      "\"churn_min\": 1, \"churn_max\": 4},\n",
      retention_transitions);
  std::fprintf(mf, "  \"retention_per_policy\": {\n");
  for (size_t i = 0; i < 4; ++i) {
    std::fprintf(
        mf,
        "    \"%s\": {\"hit_rate\": %.4f, \"hits\": %" PRIu64
        ", \"misses\": %" PRIu64 ", \"evictions\": %" PRIu64
        ", \"peak_memo_bytes\": %" PRIu64 "}%s\n",
        memo_names[i], HitRate(memo_retention[i]), memo_retention[i].hits,
        memo_retention[i].misses, memo_retention[i].evictions,
        memo_retention[i].peak_bytes, i + 1 < 4 ? "," : "");
  }
  std::fprintf(mf, "  },\n");
  std::fprintf(
      mf,
      "  \"flat_map_soak\": {\"cycles\": %zu, \"live_entries\": %zu, "
      "\"capacity_for_live\": %zu, \"max_capacity\": %zu, "
      "\"capacity_ratio\": %.2f, \"bound\": 4.0},\n",
      soak_cycles, soak_live, soak_capacity_for_live, soak_max_capacity,
      static_cast<double>(soak_max_capacity) /
          static_cast<double>(soak_capacity_for_live));
  std::fprintf(mf,
               "  \"identity_matrix\": \"policies {all, top, lru, none} "
               "x {lazy, eager}\",\n");
  std::fprintf(mf, "  \"identical_outputs\": true\n");
  std::fprintf(mf, "}\n");
  std::fclose(mf);
  std::printf("wrote %s\n", memo_out.c_str());

  // --- Emit BENCH_PR9.json (self-healing audit overhead) -------------
  FILE* hf = std::fopen(selfheal_out.c_str(), "w");
  AVT_CHECK_MSG(hf != nullptr, "cannot open self-heal output file");
  std::fprintf(hf, "{\n");
  std::fprintf(hf, "  \"bench\": \"perf_gate_audit_overhead\",\n");
  std::fprintf(hf, "  \"pr\": 9,\n");
  std::fprintf(
      hf,
      "  \"config\": {\"n\": %u, \"avg_degree\": 7.0, \"alpha\": 2.1, "
      "\"k\": %u, \"l\": %u, \"transitions\": %zu, \"churn_min\": %u, "
      "\"churn_max\": %u, \"audit_sample\": 16, \"seed\": %" PRIu64
      ", \"repeats\": %d},\n",
      audit_n, audit_k, audit_l, audit_transitions, audit_churn_min,
      audit_churn_max, seed + 17, repeats);
  std::fprintf(hf, "  \"audited_drain_wall\": {\n");
  std::fprintf(hf,
               "    \"audit_off\": {\"millis_per_delta\": %.3f, "
               "\"audits\": 0},\n",
               audit_off.millis / audit_deltas);
  std::fprintf(hf,
               "    \"audit_every_16\": {\"millis_per_delta\": %.3f, "
               "\"audits\": %" PRIu64 ", \"overhead_ratio\": %.3f},\n",
               audit_16.millis / audit_deltas, audit_16.audits_run,
               audit_16_overhead);
  std::fprintf(hf,
               "    \"audit_every_1\": {\"millis_per_delta\": %.3f, "
               "\"audits\": %" PRIu64 ", \"overhead_ratio\": %.3f},\n",
               audit_1.millis / audit_deltas, audit_1.audits_run,
               audit_1_overhead);
  std::fprintf(hf, "    \"every_16_overhead_bound\": 1.15\n");
  std::fprintf(hf, "  },\n");
  std::fprintf(hf, "  \"audits_failed\": 0,\n");
  std::fprintf(hf, "  \"identical_outputs\": true\n");
  std::fprintf(hf, "}\n");
  std::fclose(hf);
  std::printf("wrote %s\n", selfheal_out.c_str());
  return 0;
}
