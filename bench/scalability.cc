// Scalability: running time of the four algorithms as the replica grows
// (fixed k, l, T). Complements the paper's parameter sweeps with the
// classic size-scaling view, and reports the anchor-stability summary
// that explains why incremental tracking works.
//
//   ./scalability [--dataset=Deezer] [--t=10] [--l=10]

#include <cstdio>

#include "bench_common.h"
#include "core/run_summary.h"

using namespace avt;
using namespace avt::bench;

int main(int argc, char** argv) {
  BenchConfig config = ParseBenchConfig(argc, argv, /*default_t=*/10);
  Flags flags = Flags::Parse(argc, argv);
  const std::string dataset_name = flags.GetString("dataset", "Deezer");
  const DatasetInfo& info = DatasetByName(dataset_name);

  const std::vector<double> scales{0.02, 0.04, 0.08, 0.16};
  const std::vector<AvtAlgorithm> algorithms{
      AvtAlgorithm::kOlak, AvtAlgorithm::kGreedy, AvtAlgorithm::kIncAvt,
      AvtAlgorithm::kRcm};

  TablePrinter table({"vertices", "edges", "OLAK_ms", "Greedy_ms",
                      "IncAVT_ms", "RCM_ms", "IncAVT_stability"});
  std::vector<std::string> x_labels;
  std::vector<ChartSeries> series(algorithms.size());
  for (size_t a = 0; a < algorithms.size(); ++a) {
    series[a].label = AvtAlgorithmName(algorithms[a]);
  }

  for (double scale : scales) {
    SnapshotSequence sequence =
        MakeDatasetSnapshots(info, scale, config.T, config.seed);
    auto row = table.Row();
    row.UInt(sequence.NumVertices());
    row.UInt(sequence.initial().NumEdges());
    double stability = 1.0;
    for (size_t a = 0; a < algorithms.size(); ++a) {
      AvtRunResult run =
          RunAvt(sequence, algorithms[a], info.default_k, config.l);
      row.Double(run.TotalMillis(), 1);
      series[a].values.push_back(run.TotalMillis());
      if (algorithms[a] == AvtAlgorithm::kIncAvt) {
        stability = SummarizeRun(run).anchor_stability;
      }
    }
    row.Double(stability, 2);
    x_labels.push_back(std::to_string(sequence.NumVertices()));
  }

  EmitTable("Scalability: total tracking time vs replica size (" +
                info.name + ", k=" + std::to_string(info.default_k) +
                ", l=" + std::to_string(config.l) + ", T=" +
                std::to_string(config.T) + ")",
            table, config.print_csv);
  ChartOptions chart;
  chart.x_label = "vertices";
  chart.y_label = "time_ms";
  std::printf("%s\n", RenderAsciiChart(x_labels, series, chart).c_str());
  return 0;
}
