// Scalability tier (BENCH_PR10.json): the full stream -> track ->
// anchor pipeline at real-graph scale, plus the ingestion gate that
// justifies the binary edge log (graph/edge_log.h).
//
// Two tiers:
//
//   * n = 1M (always): a synthetic sorted temporal edge list is
//     written to disk, transcoded to a binary edge log
//     (ConvertTemporalToEdgeLog — the `avt_cli convert` path), and
//     ingested both ways. The gate times a pure drain (Open + every
//     NextDelta, no tracking) of the text streamer against the mmap
//     binlog source and ENFORCES binlog >= 1.5x; the streams are also
//     pulled side by side and asserted delta-for-delta identical, and
//     the full pipeline is run from BOTH sources with every snapshot's
//     anchor set asserted bit-identical.
//   * n = 10M (opt-in: --full or AVT_SCALE_10M=1; nightly CI): the
//     delta stream is generated straight into a binary edge log —
//     no 10M-vertex text file is ever written — and the pipeline runs
//     from the mmap source alone.
//
// Peak-RSS methodology: each tier's pipeline runs in a CHILD process
// (this binary re-invoked with --tier-child), so getrusage's process
// high-water mark reflects that tier's stream -> track -> anchor run
// and not the parent's generation scratch. The child samples peak RSS
// immediately after the binlog pipeline drains — before the 1M tier's
// text-pipeline comparison run — and writes a JSON fragment the
// parent embeds verbatim into BENCH_PR10.json.
//
//   ./bench_scalability [--out=BENCH_PR10.json] [--workdir=scale_work]
//                       [--n1=1000000] [--n10=10000000] [--full]
//                       [--t=8] [--k=3] [--l=3] [--seed=42]
//                       [--events-per-vertex=4] [--churn=3000]
//                       [--keep-artifacts]

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/avt.h"
#include "core/engine.h"
#include "core/run_summary.h"
#include "gen/churn.h"
#include "gen/generator_source.h"
#include "gen/models.h"
#include "graph/delta_source.h"
#include "graph/edge_log.h"
#include "util/flags.h"
#include "util/mem.h"
#include "util/random.h"
#include "util/status.h"
#include "util/timer.h"

using namespace avt;

namespace {

constexpr double kIngestSpeedupBound = 1.5;

// Ticks per text window period; the --window horizon is in the same
// unit, sized so pairs age out and every transition carries deletions.
constexpr int64_t kTicksPerPeriod = 1000;
constexpr uint32_t kWindowTicks = 1500;

// Writes a sorted synthetic temporal edge list: `events` uniform
// events over `n` ids, timestamps climbing linearly across T periods.
void WriteSyntheticTemporal(const std::string& path, VertexId n,
                            uint64_t events, size_t T, uint64_t seed) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  AVT_CHECK_MSG(f != nullptr, "cannot write synthetic temporal file");
  std::fprintf(f, "# synthetic uniform temporal stream: n=%u events=%" PRIu64
                  " T=%zu seed=%" PRIu64 "\n",
               n, events, T, seed);
  Rng rng(seed);
  const int64_t span = static_cast<int64_t>(T) * kTicksPerPeriod;
  for (uint64_t e = 0; e < events; ++e) {
    const int64_t ts =
        1 + static_cast<int64_t>((static_cast<__uint128_t>(e) * span) /
                                 events);
    VertexId u = static_cast<VertexId>(rng.Uniform(n));
    VertexId v = static_cast<VertexId>(rng.Uniform(n));
    if (u == v) v = (v + 1) % n;
    std::fprintf(f, "%u %u %" PRId64 "\n", u, v, ts);
  }
  std::fclose(f);
}

// Pure ingestion drain: every delta pulled, nothing tracked.
struct DrainResult {
  double millis = 0;
  uint64_t deltas = 0;
  uint64_t edges = 0;  // total batch entries pulled
};

DrainResult DrainSource(DeltaSource& source) {
  DrainResult result;
  result.edges = source.InitialGraph().NumEdges();
  EdgeDelta delta;
  Timer timer;
  for (;;) {
    StatusOr<bool> more = source.NextDelta(&delta);
    AVT_CHECK_MSG(more.ok(), "scalability drain hit a source error");
    if (!more.value()) break;
    ++result.deltas;
    result.edges += delta.insertions.size() + delta.deletions.size();
  }
  result.millis = timer.ElapsedMillis();
  return result;
}

// One pipeline run: engine + IncAVT over `source`, anchors recorded
// per snapshot. Wall time is split into the t=0 build (decomposition +
// first anchor solve, O(n + m)) and the per-delta tracking the paper's
// cost model is about.
struct PipelineResult {
  size_t snapshots = 0;
  double initial_millis = 0;    // snapshot 0
  double delta_millis = 0;      // snapshots 1..T-1 (tracker time)
  double wall_millis = 0;       // whole Drain, wall clock
  VertexId vertices = 0;
  std::vector<std::vector<VertexId>> anchors;
};

PipelineResult RunPipeline(std::unique_ptr<DeltaSource> source, uint32_t k,
                           uint32_t l) {
  PipelineResult result;
  auto engine = std::make_unique<AvtEngine>(
      MakeTracker(AvtAlgorithm::kIncAvt, k, l), std::move(source));
  engine->SetObserver([&](const AvtSnapshotResult& snap) {
    if (snap.t == 0) {
      result.initial_millis += snap.millis;
    } else {
      result.delta_millis += snap.millis;
    }
    result.anchors.push_back(snap.anchors);
  });
  Timer timer;
  Status status = engine->Drain();
  result.wall_millis = timer.ElapsedMillis();
  AVT_CHECK_MSG(status.ok(), "scalability pipeline drain failed");
  result.snapshots = engine->SnapshotsProcessed();
  result.vertices = engine->NumVertices();
  return result;
}

std::unique_ptr<MmapEdgeLogSource> MustOpenBinlog(const std::string& path) {
  auto opened = MmapEdgeLogSource::Open(path);
  AVT_CHECK_MSG(opened.ok(), "cannot open the tier's binary edge log");
  return std::move(opened).value();
}

std::unique_ptr<StreamingEdgeFileSource> MustOpenText(
    const std::string& path, size_t T, uint32_t window) {
  auto opened = StreamingEdgeFileSource::Open(path, T, window);
  AVT_CHECK_MSG(opened.ok(), "cannot open the tier's temporal text file");
  return std::move(opened).value();
}

// --- Child mode --------------------------------------------------------
//
// Runs one tier's pipeline in a fresh process so peak RSS is the
// tier's own. Writes a JSON object fragment to --tier-out.
int RunTierChild(const Flags& flags) {
  const std::string binlog = flags.GetString("binlog", "");
  const std::string text = flags.GetString("text", "");
  const std::string tier_out = flags.GetString("tier-out", "tier.json");
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 3));
  const uint32_t l = static_cast<uint32_t>(flags.GetInt("l", 3));
  AVT_CHECK_MSG(!binlog.empty(), "--tier-child needs --binlog");

  auto source = MustOpenBinlog(binlog);
  const uint64_t binlog_bytes = source->reader().file_bytes();
  const VertexId declared = source->reader().num_vertices();
  const uint64_t initial_edges = source->InitialGraph().NumEdges();

  PipelineResult bin = RunPipeline(std::move(source), k, l);
  // Sample the high-water mark NOW: everything after this line (the
  // text comparison pipeline) must not pollute the tier's number.
  const uint64_t peak_rss = PeakRssBytes();

  bool anchors_match = true;
  if (!text.empty()) {
    const size_t T = static_cast<size_t>(flags.GetInt("t", 8));
    const uint32_t window =
        static_cast<uint32_t>(flags.GetInt("window", kWindowTicks));
    PipelineResult txt =
        RunPipeline(MustOpenText(text, T, window), k, l);
    anchors_match = bin.anchors == txt.anchors &&
                    bin.snapshots == txt.snapshots &&
                    bin.vertices == txt.vertices;
    AVT_CHECK_MSG(anchors_match,
                  "scalability gate violated: binlog-streamed anchors "
                  "differ from text-streamed anchors");
  }

  const size_t deltas = bin.snapshots > 0 ? bin.snapshots - 1 : 0;
  const double ms_per_delta =
      deltas > 0 ? bin.delta_millis / static_cast<double>(deltas) : 0.0;
  const double deltas_per_sec =
      bin.delta_millis > 0
          ? static_cast<double>(deltas) * 1000.0 / bin.delta_millis
          : 0.0;

  std::FILE* f = std::fopen(tier_out.c_str(), "w");
  AVT_CHECK_MSG(f != nullptr, "cannot write tier fragment");
  std::fprintf(f, "{\n");
  std::fprintf(f, "      \"n\": %u,\n", bin.vertices);
  std::fprintf(f, "      \"declared_universe\": %u,\n", declared);
  std::fprintf(f, "      \"initial_edges\": %" PRIu64 ",\n", initial_edges);
  std::fprintf(f, "      \"binlog_bytes\": %" PRIu64 ",\n", binlog_bytes);
  std::fprintf(f, "      \"snapshots\": %zu,\n", bin.snapshots);
  std::fprintf(f, "      \"deltas\": %zu,\n", deltas);
  std::fprintf(f, "      \"initial_build_ms\": %.1f,\n", bin.initial_millis);
  std::fprintf(f, "      \"ms_per_delta\": %.3f,\n", ms_per_delta);
  std::fprintf(f, "      \"deltas_per_sec\": %.1f,\n", deltas_per_sec);
  std::fprintf(f, "      \"pipeline_wall_ms\": %.1f,\n", bin.wall_millis);
  std::fprintf(f, "      \"peak_rss_bytes\": %" PRIu64 ",\n", peak_rss);
  std::fprintf(f, "      \"peak_rss_mib\": %.1f,\n",
               static_cast<double>(peak_rss) / (1024.0 * 1024.0));
  std::fprintf(f, "      \"text_compared\": %s,\n",
               text.empty() ? "false" : "true");
  std::fprintf(f, "      \"anchors_bit_identical\": %s\n",
               anchors_match ? "true" : "false");
  std::fprintf(f, "    }");
  std::fclose(f);
  std::printf("tier n=%u: %zu deltas, %.3f ms/delta, peak RSS %.1f MiB\n",
              bin.vertices, deltas, ms_per_delta,
              static_cast<double>(peak_rss) / (1024.0 * 1024.0));
  return 0;
}

std::string Slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  AVT_CHECK_MSG(f != nullptr, "cannot read tier fragment");
  std::string content;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, got);
  }
  std::fclose(f);
  return content;
}

void RunChild(const std::string& command) {
  std::printf("+ %s\n", command.c_str());
  std::fflush(stdout);
  const int rc = std::system(command.c_str());
  AVT_CHECK_MSG(rc == 0, "tier child process failed");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  if (flags.GetBool("tier-child", false)) return RunTierChild(flags);

  const std::string out = flags.GetString("out", "BENCH_PR10.json");
  const std::string workdir = flags.GetString("workdir", "scale_work");
  const VertexId n1 =
      static_cast<VertexId>(flags.GetInt("n1", 1000000));
  const VertexId n10 =
      static_cast<VertexId>(flags.GetInt("n10", 10000000));
  const size_t T = static_cast<size_t>(flags.GetInt("t", 8));
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 3));
  const uint32_t l = static_cast<uint32_t>(flags.GetInt("l", 3));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const uint64_t events_per_vertex =
      static_cast<uint64_t>(flags.GetInt("events-per-vertex", 4));
  const uint32_t churn =
      static_cast<uint32_t>(flags.GetInt("churn", 3000));
  const bool full = flags.GetBool("full", false) ||
                    std::getenv("AVT_SCALE_10M") != nullptr;

  std::error_code ec;
  std::filesystem::create_directories(workdir, ec);
  AVT_CHECK_MSG(!ec, "cannot create the scalability workdir");
  const std::string self = argv[0];

  // --- Tier 1: n = 1M, text vs binlog --------------------------------
  const std::string text_path = workdir + "/scale_1m.txt";
  const std::string binlog_1m = workdir + "/scale_1m.avtb";
  std::printf("generating %s (n=%u, %" PRIu64 " events)...\n",
              text_path.c_str(), n1, events_per_vertex * n1);
  WriteSyntheticTemporal(text_path, n1, events_per_vertex * n1, T, seed);
  {
    auto converted = ConvertTemporalToEdgeLog(text_path, T, kWindowTicks,
                                              binlog_1m);
    AVT_CHECK_MSG(converted.ok(), "convert to binary edge log failed");
    std::printf("converted -> %s (%" PRIu64 " deltas, %" PRIu64 " bytes)\n",
                binlog_1m.c_str(), converted.value().deltas,
                converted.value().bytes);
  }

  // Ingestion gate: pure drains, then a side-by-side equality pull.
  DrainResult text_drain;
  {
    Timer open_and_drain;
    auto source = MustOpenText(text_path, T, kWindowTicks);
    text_drain = DrainSource(*source);
    // Open (the metadata pre-scan + G_0 window) is part of the cost
    // the binary header eliminates, so the gate times it too.
    text_drain.millis = open_and_drain.ElapsedMillis();
  }
  DrainResult binlog_drain;
  {
    Timer open_and_drain;
    auto source = MustOpenBinlog(binlog_1m);
    binlog_drain = DrainSource(*source);
    binlog_drain.millis = open_and_drain.ElapsedMillis();
  }
  AVT_CHECK_MSG(text_drain.deltas == binlog_drain.deltas &&
                    text_drain.edges == binlog_drain.edges,
                "text and binlog streams disagree on shape");
  {
    auto text_source = MustOpenText(text_path, T, kWindowTicks);
    auto bin_source = MustOpenBinlog(binlog_1m);
    AVT_CHECK_MSG(DiffGraphs(text_source->InitialGraph(),
                             bin_source->InitialGraph())
                      .Empty(),
                  "text and binlog initial graphs differ");
    EdgeDelta from_text, from_bin;
    for (;;) {
      StatusOr<bool> t_more = text_source->NextDelta(&from_text);
      StatusOr<bool> b_more = bin_source->NextDelta(&from_bin);
      AVT_CHECK(t_more.ok() && b_more.ok());
      AVT_CHECK_MSG(t_more.value() == b_more.value(),
                    "streams end at different deltas");
      if (!t_more.value()) break;
      AVT_CHECK_MSG(from_text.insertions == from_bin.insertions &&
                        from_text.deletions == from_bin.deletions,
                    "a converted delta is not bit-identical to the "
                    "text-streamed delta");
    }
  }
  const double speedup =
      binlog_drain.millis > 0 ? text_drain.millis / binlog_drain.millis
                              : 0.0;
  std::printf("ingest n=%u: text %.1f ms, binlog %.1f ms -> %.2fx "
              "(bound %.1fx)\n",
              n1, text_drain.millis, binlog_drain.millis, speedup,
              kIngestSpeedupBound);
  AVT_CHECK_MSG(speedup >= kIngestSpeedupBound,
                "scalability gate violated: binary ingestion is not >= "
                "1.5x faster than the text streamer at n=1M");

  // Pipeline tier 1M in a child process (see peak-RSS methodology).
  const std::string tier1_out = workdir + "/tier_1m.json";
  RunChild(self + " --tier-child --binlog=" + binlog_1m +
           " --text=" + text_path + " --t=" + std::to_string(T) +
           " --window=" + std::to_string(kWindowTicks) +
           " --k=" + std::to_string(k) + " --l=" + std::to_string(l) +
           " --tier-out=" + tier1_out);

  // --- Tier 2: n = 10M, binlog only ----------------------------------
  std::string tier10_fragment;
  if (full) {
    const std::string binlog_10m = workdir + "/scale_10m.avtb";
    std::printf("generating %s (n=%u, direct to binary)...\n",
                binlog_10m.c_str(), n10);
    {
      // Generation scratch lives and dies in this scope; the pipeline
      // itself runs in the child with a clean RSS slate anyway.
      Rng rng(seed + 1);
      Graph initial = ErdosRenyi(
          n10, static_cast<uint64_t>(n10) * 3 / 2, rng);
      ChurnOptions options;
      options.num_snapshots = T;
      options.min_churn = churn;
      options.max_churn = churn + churn / 2;
      ChurnSource source(std::move(initial), options, rng);
      auto written = WriteEdgeLog(source, binlog_10m);
      AVT_CHECK_MSG(written.ok(), "10M edge-log generation failed");
      std::printf("wrote %s (%" PRIu64 " deltas, %" PRIu64 " bytes)\n",
                  binlog_10m.c_str(), written.value().deltas,
                  written.value().bytes);
    }
    const std::string tier10_out = workdir + "/tier_10m.json";
    RunChild(self + " --tier-child --binlog=" + binlog_10m +
             " --k=" + std::to_string(k) + " --l=" + std::to_string(l) +
             " --tier-out=" + tier10_out);
    tier10_fragment = Slurp(tier10_out);
  } else {
    std::printf("10M tier skipped (enable with --full or "
                "AVT_SCALE_10M=1)\n");
  }

  // --- Emit BENCH_PR10.json ------------------------------------------
  std::FILE* f = std::fopen(out.c_str(), "w");
  AVT_CHECK_MSG(f != nullptr, "cannot open bench output file");
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"scalability\",\n");
  std::fprintf(f, "  \"pr\": 10,\n");
  std::fprintf(
      f,
      "  \"config\": {\"n1\": %u, \"n10\": %u, \"t\": %zu, \"k\": %u, "
      "\"l\": %u, \"window_ticks\": %u, \"events_per_vertex\": %" PRIu64
      ", \"churn\": %u, \"seed\": %" PRIu64 ", \"ten_m_tier_run\": %s},\n",
      n1, n10, T, k, l, kWindowTicks, events_per_vertex, churn, seed,
      full ? "true" : "false");
  std::fprintf(f, "  \"ingest_1m\": {\n");
  std::fprintf(f,
               "    \"text\": {\"wall_ms\": %.1f, \"deltas\": %" PRIu64
               ", \"edges\": %" PRIu64 "},\n",
               text_drain.millis, text_drain.deltas, text_drain.edges);
  std::fprintf(f,
               "    \"binlog\": {\"wall_ms\": %.1f, \"deltas\": %" PRIu64
               ", \"edges\": %" PRIu64 "},\n",
               binlog_drain.millis, binlog_drain.deltas,
               binlog_drain.edges);
  std::fprintf(f, "    \"speedup\": %.2f,\n", speedup);
  std::fprintf(f, "    \"speedup_bound\": %.1f,\n", kIngestSpeedupBound);
  std::fprintf(f, "    \"streams_bit_identical\": true\n");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"tiers\": [\n");
  std::fprintf(f, "    %s", Slurp(tier1_out).c_str());
  if (!tier10_fragment.empty()) {
    std::fprintf(f, ",\n    %s\n", tier10_fragment.c_str());
  } else {
    std::fprintf(f, "\n");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"anchors_bit_identical\": true\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());

  if (!flags.GetBool("keep-artifacts", false)) {
    std::filesystem::remove_all(workdir, ec);
  }
  return 0;
}
