// Table 2: dataset statistics.
//
// Prints, for each of the six replicas, the paper-reported statistics
// next to the replica's measured statistics at the configured scale, so
// the fidelity of every substitution is visible at a glance.
//
//   ./table2_datasets [--scale=0.1] [--seed=42]

#include <cstdio>

#include "bench_common.h"
#include "corelib/graph_stats.h"

using namespace avt;
using namespace avt::bench;

int main(int argc, char** argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);

  TablePrinter table({"dataset", "type", "paper_nodes", "paper_edges",
                      "paper_davg", "days", "replica_nodes",
                      "replica_edges", "replica_davg", "replica_maxcore"});
  for (const DatasetInfo& info : SelectDatasets(config)) {
    double scale = config.scale > 0 ? config.scale : DefaultScale(info);
    Graph g = MakeDatasetGraph(info, scale, config.seed);
    GraphStats stats = ComputeGraphStats(g);
    table.Row()
        .Str(info.name)
        .Str(info.type_label)
        .UInt(info.paper_nodes)
        .UInt(info.paper_edges)
        .Double(info.paper_avg_degree, 2)
        .UInt(info.paper_days)
        .UInt(stats.num_vertices)
        .UInt(stats.num_edges)
        .Double(stats.average_degree, 2)
        .UInt(stats.degeneracy);
  }
  EmitTable("Table 2: dataset statistics (paper vs replica)", table,
            config.print_csv);
  std::printf("\nnote: replica columns are the synthetic stand-ins "
              "described in DESIGN.md section 3;\n"
              "temporal replicas report their first-window graph.\n");
  return 0;
}
