// Table 4: selected anchored vertices and their followers at the first
// snapshot of the eu-core replica (l = 2, k = 3), for brute-force, OLAK,
// Greedy, IncAVT and RCM — the detailed view of the Section 6.4 case
// study.
//
//   ./table4_anchors [--scale=1.0] [--seed=42]

#include "anchor/anchored_core.h"
#include "bench_common.h"

using namespace avt;
using namespace avt::bench;

int main(int argc, char** argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  const uint32_t k = 3;
  const uint32_t l = 2;

  const DatasetInfo& info = DatasetByName("eu-core");
  BenchConfig sequence_config = config;
  sequence_config.T = 2;
  SnapshotSequence sequence = BuildSequence(info, sequence_config);

  TablePrinter table({"algorithm", "selected_anchors", "followers"});
  for (AvtAlgorithm algorithm :
       {AvtAlgorithm::kBruteForce, AvtAlgorithm::kOlak,
        AvtAlgorithm::kGreedy, AvtAlgorithm::kIncAvt, AvtAlgorithm::kRcm}) {
    AvtRunResult run = RunAvt(sequence, algorithm, k, l);
    const AvtSnapshotResult& first = run.snapshots.front();
    // Recover the follower ids for the reported anchors.
    Graph g0 = sequence.initial();
    AnchoredCoreResult exact = ComputeAnchoredKCore(g0, k, first.anchors);
    table.Row()
        .Str(AvtAlgorithmName(algorithm))
        .Str(JoinVertices(first.anchors))
        .Str(JoinVertices(exact.followers));
  }
  EmitTable(
      "Table 4: selected anchored vertices and followers "
      "(eu-core, first snapshot, l=2, k=3)",
      table, config.print_csv);
  return 0;
}
