# Shared compile/link options for every avt target, attached via the
# avt_build_flags INTERFACE library.
#
#   AVT_WERROR   — promote warnings to errors (the source tree is clean
#                  under -Wall -Wextra -Wpedantic -Wshadow; keep it so).
#   AVT_SANITIZE — ON/address selects AddressSanitizer + UBSan (all
#                  suites currently pass under it at seed scale; CI runs
#                  the `unit` label plus a reduced differential fuzz).
#                  thread selects ThreadSanitizer — the opt-in preset for
#                  the parallel trial engine (see docs/TESTING.md).

add_library(avt_build_flags INTERFACE)

target_compile_options(avt_build_flags INTERFACE
  -Wall -Wextra -Wpedantic -Wshadow)

if(AVT_WERROR)
  target_compile_options(avt_build_flags INTERFACE -Werror)
endif()

if(AVT_SANITIZE)
  string(TOLOWER "${AVT_SANITIZE}" _avt_sanitize_mode)
  if(_avt_sanitize_mode STREQUAL "thread")
    target_compile_options(avt_build_flags INTERFACE
      -fsanitize=thread -fno-omit-frame-pointer -g)
    target_link_options(avt_build_flags INTERFACE -fsanitize=thread)
  elseif(_avt_sanitize_mode STREQUAL "on" OR
         _avt_sanitize_mode STREQUAL "true" OR
         _avt_sanitize_mode STREQUAL "1" OR
         _avt_sanitize_mode STREQUAL "address")
    target_compile_options(avt_build_flags INTERFACE
      -fsanitize=address,undefined -fno-omit-frame-pointer -g)
    target_link_options(avt_build_flags INTERFACE
      -fsanitize=address,undefined)
  else()
    message(FATAL_ERROR
      "AVT_SANITIZE must be OFF, ON/address, or thread (got "
      "'${AVT_SANITIZE}')")
  endif()
endif()
