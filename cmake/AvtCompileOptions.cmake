# Shared compile/link options for every avt target, attached via the
# avt_build_flags INTERFACE library.
#
#   AVT_WERROR   — promote warnings to errors (the source tree is clean
#                  under -Wall -Wextra -Wpedantic -Wshadow; keep it so).
#   AVT_SANITIZE — AddressSanitizer + UndefinedBehaviorSanitizer. All
#                  suites currently pass under it at seed scale; CI runs
#                  the `unit` label only because soak suites grow with
#                  future dataset scale (see docs/TESTING.md).

add_library(avt_build_flags INTERFACE)

target_compile_options(avt_build_flags INTERFACE
  -Wall -Wextra -Wpedantic -Wshadow)

if(AVT_WERROR)
  target_compile_options(avt_build_flags INTERFACE -Werror)
endif()

if(AVT_SANITIZE)
  target_compile_options(avt_build_flags INTERFACE
    -fsanitize=address,undefined -fno-omit-frame-pointer -g)
  target_link_options(avt_build_flags INTERFACE
    -fsanitize=address,undefined)
endif()
