// Advertising-placement impact analysis (paper Section 1's application).
//
// An advertiser refreshes a campaign every period and wants the set of
// "seed" users whose sustained engagement maximizes the audience that
// stays active around them. As the interaction network evolves, the best
// seeds drift; this example tracks them with IncAVT over a temporal
// message log (CollegeMsg-style replica), reports per-period seed churn
// (how many seeds changed vs the previous period), and the audience size
// each period.
//
//   ./ad_campaign [--periods=8] [--k=5] [--seeds=6] [--seed=21]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/avt.h"
#include "gen/temporal.h"
#include "util/flags.h"
#include "util/random.h"

using namespace avt;

namespace {

uint32_t Overlap(const std::vector<VertexId>& a,
                 const std::vector<VertexId>& b) {
  uint32_t shared = 0;
  for (VertexId x : a) {
    if (std::find(b.begin(), b.end(), x) != b.end()) ++shared;
  }
  return shared;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const size_t periods = static_cast<size_t>(flags.GetInt("periods", 8));
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 5));
  const uint32_t seeds = static_cast<uint32_t>(flags.GetInt("seeds", 6));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 21));

  // Bursty messaging log, windowed into campaign periods.
  Rng rng(seed);
  TemporalGenOptions options;
  options.num_vertices = 1200;
  options.num_events = 60'000;
  options.num_days = 160;
  options.recurrence = 0.5;
  TemporalEventLog log =
      GenBurstyMessageEvents(options, /*burst_fraction=*/0.12,
                             /*burst_multiplier=*/6.0, rng);
  SnapshotSequence sequence = WindowSnapshots(log, periods, /*window=*/40);

  AvtRunResult run = RunAvt(sequence, AvtAlgorithm::kIncAvt, k, seeds);

  std::printf("campaign tracking: k=%u, %u seeds, %zu periods\n\n", k,
              seeds, periods);
  std::printf("period | audience |C_k(S)| | extra reach | seeds kept | "
              "seed ids\n");
  std::printf("-------+------------------+-------------+------------+"
              "---------\n");
  const std::vector<VertexId>* previous = nullptr;
  for (const AvtSnapshotResult& snap : run.snapshots) {
    uint32_t kept = previous ? Overlap(*previous, snap.anchors)
                             : static_cast<uint32_t>(snap.anchors.size());
    std::printf("%6zu | %16u | %11u | %7u/%-2zu | ", snap.t,
                snap.anchored_core_size, snap.num_followers, kept,
                snap.anchors.size());
    for (size_t i = 0; i < std::min<size_t>(snap.anchors.size(), 8); ++i) {
      std::printf("%u ", snap.anchors[i]);
    }
    std::printf("\n");
    previous = &snap.anchors;
  }

  std::printf("\n'extra reach' counts users who stay engaged only because "
              "the seeds are retained\n");
  std::printf("'seeds kept' shows how the optimal seed set drifts as the "
              "network evolves -- the\n");
  std::printf("phenomenon AVT tracks without re-solving from scratch each "
              "period.\n");
  return 0;
}
