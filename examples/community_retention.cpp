// Community retention planning: the paper's motivating scenario.
//
// A platform observes weekly snapshots of its friendship graph and wants
// to spend a fixed retention budget (l incentives per week) on the users
// whose continued engagement keeps the most other users active. This
// example simulates a shrinking community (more departures than
// arrivals), compares "do nothing", "anchor once at week 0", and
// "re-anchor weekly with IncAVT", and reports how much of the community
// each policy retains.
//
//   ./community_retention [--weeks=12] [--k=3] [--budget=8] [--seed=9]

#include <cstdio>
#include <vector>

#include "anchor/anchored_core.h"
#include "core/avt.h"
#include "core/inc_avt.h"
#include "corelib/decomposition.h"
#include "gen/churn.h"
#include "gen/models.h"
#include "util/flags.h"
#include "util/random.h"

using namespace avt;

namespace {

// Engaged population under a fixed anchor set: |C_k(S)|.
uint32_t EngagedUsers(const Graph& graph, uint32_t k,
                      const std::vector<VertexId>& anchors) {
  return static_cast<uint32_t>(
      ComputeAnchoredKCore(graph, k, anchors).members.size());
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const size_t weeks = static_cast<size_t>(flags.GetInt("weeks", 12));
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 3));
  const uint32_t budget = static_cast<uint32_t>(flags.GetInt("budget", 8));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 9));

  // A community with realistic degree structure...
  Rng rng(seed);
  Graph initial = ChungLuPowerLaw(800, 7.0, 2.1, 90, rng);

  // ...slowly decaying: each week loses more friendships than it gains.
  SnapshotSequence sequence(initial);
  Graph current = initial;
  for (size_t week = 1; week < weeks; ++week) {
    EdgeDelta delta;
    std::vector<Edge> edges = current.CollectEdges();
    std::vector<uint64_t> picks = rng.SampleDistinct(
        edges.size(), std::min<size_t>(edges.size(), 120));
    for (uint64_t i : picks) {
      delta.deletions.push_back(edges[i]);
      current.RemoveEdge(edges[i].u, edges[i].v);
    }
    for (int added = 0; added < 40;) {
      VertexId u = static_cast<VertexId>(rng.Uniform(800));
      VertexId v = static_cast<VertexId>(rng.Uniform(800));
      if (u == v) continue;
      if (current.AddEdge(u, v)) {
        delta.insertions.push_back(Edge(u, v));
        ++added;
      }
    }
    sequence.PushDelta(std::move(delta));
  }

  // Policy 1: no retention spending.
  // Policy 2: anchor once at week 0 and never update.
  // Policy 3: IncAVT re-anchoring each week.
  AvtRunResult tracked = RunAvt(sequence, AvtAlgorithm::kIncAvt, k, budget);
  std::vector<VertexId> static_anchors = tracked.snapshots[0].anchors;

  std::printf("week | engaged (no anchors) | engaged (week-0 anchors) | "
              "engaged (IncAVT weekly)\n");
  std::printf("-----+----------------------+--------------------------+"
              "------------------------\n");
  uint64_t none_total = 0, fixed_total = 0, tracked_total = 0;
  sequence.ForEachSnapshot([&](size_t t, const Graph& graph,
                               const EdgeDelta&) {
    uint32_t none = EngagedUsers(graph, k, {});
    uint32_t fixed = EngagedUsers(graph, k, static_anchors);
    uint32_t dynamic = tracked.snapshots[t].anchored_core_size;
    none_total += none;
    fixed_total += fixed;
    tracked_total += dynamic;
    std::printf("%4zu | %20u | %24u | %22u\n", t, none, fixed, dynamic);
  });

  std::printf("\ncumulative engaged user-weeks:\n");
  std::printf("  no anchors      : %lu\n",
              static_cast<unsigned long>(none_total));
  std::printf("  week-0 anchors  : %lu (+%.1f%%)\n",
              static_cast<unsigned long>(fixed_total),
              100.0 * (static_cast<double>(fixed_total) - none_total) /
                  static_cast<double>(none_total));
  std::printf("  IncAVT tracking : %lu (+%.1f%%)\n",
              static_cast<unsigned long>(tracked_total),
              100.0 * (static_cast<double>(tracked_total) - none_total) /
                  static_cast<double>(none_total));
  std::printf("\nre-anchoring beats a frozen anchor set because churn "
              "moves the k-core boundary every week.\n");
  return 0;
}
