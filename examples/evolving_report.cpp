// Evolving-network health report: a sustainability-analysis tool built on
// the library's substrates (the paper's third application example).
//
// Given an evolving network (a dataset replica or a loaded edge list),
// prints per-snapshot structural health: size of the engaged core, shell
// population at risk, degeneracy, and the marginal value of retention
// spending at several budgets (anchored-core gain per anchor).
//
//   ./evolving_report [--dataset=eu-core] [--t=8] [--k=3] [--scale=0.5]

#include <cstdio>

#include "anchor/greedy.h"
#include "core/avt.h"
#include "corelib/decomposition.h"
#include "gen/datasets.h"
#include "util/flags.h"
#include "util/table.h"

using namespace avt;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const std::string dataset_name =
      flags.GetString("dataset", "eu-core");
  const size_t T = static_cast<size_t>(flags.GetInt("t", 8));
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 3));
  const double scale = flags.GetDouble("scale", 0.5);

  const DatasetInfo& info = DatasetByName(dataset_name);
  SnapshotSequence sequence = MakeDatasetSnapshots(info, scale, T, 33);
  std::printf("dataset %s (replica, scale %.2f): %u vertices, %zu "
              "snapshots\n\n",
              info.name.c_str(), scale, sequence.NumVertices(), T);

  TablePrinter table({"t", "edges", "degeneracy", "|C_k|", "shell(k-1)",
                      "gain@l=2", "gain@l=5", "gain@l=10"});
  GreedySolver greedy;
  sequence.ForEachSnapshot([&](size_t t, const Graph& graph,
                               const EdgeDelta&) {
    CoreDecomposition cores = DecomposeCores(graph);
    uint32_t core_size = 0, shell_size = 0;
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      if (cores.core[v] >= k) ++core_size;
      if (cores.core[v] + 1 == k) ++shell_size;
    }
    uint32_t gain2 = greedy.Solve(graph, k, 2).num_followers();
    uint32_t gain5 = greedy.Solve(graph, k, 5).num_followers();
    uint32_t gain10 = greedy.Solve(graph, k, 10).num_followers();
    table.Row()
        .UInt(t)
        .UInt(graph.NumEdges())
        .UInt(cores.max_core)
        .UInt(core_size)
        .UInt(shell_size)
        .UInt(gain2)
        .UInt(gain5)
        .UInt(gain10);
  });

  std::printf("%s\n", table.ToText().c_str());
  std::printf("shell(k-1): users one friend short of staying engaged -- "
              "the population anchors recruit from.\n");
  std::printf("gain@l: followers gained by the best l anchors (Greedy), "
              "i.e. the marginal value of retention budget.\n");
  return 0;
}
