// Walkthrough of the paper's Figure 1 running example (Examples 1-5).
//
// Reconstructs the 17-user reading-hobby community, shows the 3-core,
// anchors {u7, u10} at t=1, evolves the network (friendship u2-u5 forms,
// u2-u11 breaks), and demonstrates why the best anchors shift to
// {u7, u15} at t=2 — the phenomenon AVT tracks.
//
//   ./figure1_walkthrough

#include <cstdio>

#include "anchor/anchored_core.h"
#include "anchor/greedy.h"
#include "core/avt.h"
#include "corelib/decomposition.h"
#include "graph/snapshots.h"

using namespace avt;

namespace {

constexpr VertexId U(int i) { return static_cast<VertexId>(i - 1); }

Graph ReadingCommunityT1() {
  Graph g(17);
  // The engaged nucleus (3-core): u8, u9, u12, u13, u16.
  g.AddEdge(U(8), U(9));
  g.AddEdge(U(8), U(12));
  g.AddEdge(U(8), U(13));
  g.AddEdge(U(8), U(16));
  g.AddEdge(U(9), U(12));
  g.AddEdge(U(9), U(13));
  g.AddEdge(U(12), U(16));
  g.AddEdge(U(13), U(16));
  // The periphery (see tests/paper_example_test.cc for the derivation).
  g.AddEdge(U(1), U(4));
  g.AddEdge(U(1), U(8));
  g.AddEdge(U(4), U(8));
  g.AddEdge(U(2), U(7));
  g.AddEdge(U(2), U(3));
  g.AddEdge(U(2), U(11));
  g.AddEdge(U(3), U(7));
  g.AddEdge(U(3), U(8));
  g.AddEdge(U(3), U(11));
  g.AddEdge(U(3), U(6));
  g.AddEdge(U(5), U(10));
  g.AddEdge(U(5), U(6));
  g.AddEdge(U(5), U(9));
  g.AddEdge(U(6), U(10));
  g.AddEdge(U(10), U(9));
  g.AddEdge(U(11), U(13));
  g.AddEdge(U(11), U(15));
  g.AddEdge(U(14), U(9));
  g.AddEdge(U(14), U(15));
  g.AddEdge(U(14), U(16));
  g.AddEdge(U(17), U(16));
  return g;
}

void PrintUsers(const char* label, const std::vector<VertexId>& users) {
  std::printf("%s", label);
  for (VertexId v : users) std::printf(" u%u", v + 1);
  std::printf("\n");
}

void Evaluate(const Graph& g, const std::vector<VertexId>& anchors) {
  AnchoredCoreResult result = ComputeAnchoredKCore(g, 3, anchors);
  PrintUsers("  anchors   :", anchors);
  PrintUsers("  followers :", result.followers);
  std::printf("  |C_3(S)|  : %zu engaged users\n", result.members.size());
}

}  // namespace

int main() {
  std::printf("Figure 1 walkthrough: a reading-hobby community with 17 "
              "users, engagement threshold k = 3\n\n");

  Graph t1 = ReadingCommunityT1();
  CoreDecomposition cores = DecomposeCores(t1);
  PrintUsers("t=1 engaged nucleus (3-core):", KCoreMembers(cores, 3));
  std::printf("only %zu of 17 users stay engaged on their own.\n\n",
              KCoreMembers(cores, 3).size());

  std::printf("Example 3: persuade u7 and u10 to stay (anchor them):\n");
  Evaluate(t1, {U(7), U(10)});
  std::printf("engagement grows from 5 to 12 users.\n\n");

  std::printf("Example 5: anchoring u15 alone re-engages u14 (in this\n"
              "reconstruction the cascade reaches a few more users than\n"
              "the paper's figure, whose exact edges are unpublished):\n");
  Evaluate(t1, {U(15)});
  std::printf("\n");

  // The network evolves: u2-u5 befriend, u2-u11 fall out.
  Graph t2 = t1;
  t2.AddEdge(U(2), U(5));
  t2.RemoveEdge(U(2), U(11));
  std::printf("t=2: friendship (u2,u5) forms, (u2,u11) breaks.\n\n");

  std::printf("yesterday's anchors {u7, u10} at t=2:\n");
  Evaluate(t2, {U(7), U(10)});
  std::printf("\nbut {u7, u15} at t=2:\n");
  Evaluate(t2, {U(7), U(15)});
  std::printf("\nthe optimal anchors MOVED as the network evolved — "
              "exactly what AVT tracks.\n\n");

  // Let the incremental tracker discover this automatically.
  SnapshotSequence sequence(t1);
  EdgeDelta delta;
  delta.insertions.push_back(Edge(U(2), U(5)));
  delta.deletions.push_back(Edge(U(2), U(11)));
  sequence.PushDelta(delta);
  AvtRunResult run = RunAvt(sequence, AvtAlgorithm::kIncAvt, 3, 2);
  std::printf("IncAVT (k=3, l=2) tracking the two snapshots:\n");
  for (const AvtSnapshotResult& snap : run.snapshots) {
    std::printf("  t=%zu:", snap.t + 1);
    for (VertexId a : snap.anchors) std::printf(" u%u", a + 1);
    std::printf("  -> %u followers, %u engaged users\n",
                snap.num_followers, snap.anchored_core_size);
  }
  return 0;
}
