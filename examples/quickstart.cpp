// Quickstart: the 60-second tour of the AVT library.
//
// Builds a small social graph, computes its k-core, asks the Greedy
// solver for the best anchors, and then tracks anchors across an
// evolving version of the graph by streaming churn deltas through
// AvtEngine — no snapshot is ever materialized past G_0.
//
//   ./quickstart [--k=3] [--l=2]

#include <cstdio>
#include <memory>

#include "anchor/anchored_core.h"
#include "anchor/greedy.h"
#include "core/avt.h"
#include "core/engine.h"
#include "core/run_summary.h"
#include "corelib/decomposition.h"
#include "gen/churn.h"
#include "gen/generator_source.h"
#include "gen/models.h"
#include "util/flags.h"
#include "util/random.h"

using namespace avt;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 3));
  const uint32_t l = static_cast<uint32_t>(flags.GetInt("l", 2));

  // 1. Build a graph. Any edge list works; here: a small social network.
  Rng rng(7);
  Graph graph = ChungLuPowerLaw(/*n=*/400, /*average_degree=*/6.0,
                                /*alpha=*/2.2, /*max_degree=*/60, rng);
  std::printf("graph: %u vertices, %lu edges, avg degree %.2f\n",
              graph.NumVertices(),
              static_cast<unsigned long>(graph.NumEdges()),
              graph.AverageDegree());

  // 2. Core decomposition: who is engaged at level k?
  CoreDecomposition cores = DecomposeCores(graph);
  std::printf("degeneracy (max core) = %u, |C_%u| = %zu\n", cores.max_core,
              k, KCoreMembers(cores, k).size());

  // 3. Anchored k-core: which l users should we retain to maximize the
  //    engaged community?
  GreedySolver greedy;
  SolverResult best = greedy.Solve(graph, k, l);
  std::printf("greedy anchors (k=%u, l=%u):", k, l);
  for (VertexId a : best.anchors) std::printf(" %u", a);
  std::printf("\n  -> %u followers join the %u-core\n",
              best.num_followers(), k);

  // 4. The same question on an evolving network: stream 8 churn
  //    transitions through the engine and track anchors incrementally.
  //    The source generates each delta on demand; the tracker maintains
  //    its own graph — nobody materializes snapshots.
  ChurnOptions churn;
  churn.num_snapshots = 8;
  churn.min_churn = 30;
  churn.max_churn = 80;
  AvtEngine engine(
      MakeTracker(AvtAlgorithm::kIncAvt, k, l),
      std::make_unique<ChurnSource>(graph, churn, rng));

  std::printf("\nIncAVT over a streamed churn workload:\n");
  std::printf("%4s %10s %12s %14s %10s\n", "t", "followers", "|C_k(S)|",
              "candidates", "millis");
  engine.SetObserver([](const AvtSnapshotResult& snap) {
    std::printf("%4zu %10u %12u %14lu %10.2f\n", snap.t,
                snap.num_followers, snap.anchored_core_size,
                static_cast<unsigned long>(snap.candidates_visited),
                snap.millis);
  });
  Status status = engine.Drain();
  if (!status.ok()) {
    std::fprintf(stderr, "stream failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("\n%s\n", FormatRunSummary(engine.Summary()).c_str());
  return 0;
}
