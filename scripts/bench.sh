#!/usr/bin/env bash
# Reproduces BENCH_PR2.json: Release build, then the perf gate bench.
#
#   scripts/bench.sh                 # full gate (n=50k), writes BENCH_PR2.json
#   scripts/bench.sh --smoke         # small run for CI (writes bench_smoke.json)
#   scripts/bench.sh -- --n=100000   # extra args forwarded to bench_perf_gate
#
# The gate measures the eager ("before", seed execution strategy) and
# lazy ("after", certified-bound) pick loops on identical inputs, checks
# the outputs are bit-identical, and emits the before/after JSON that
# docs/PERFORMANCE.md explains. Wall times move with the host; the work
# counters (oracle_queries, bound_probes) are deterministic.

set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH_PR2.json"
extra=()
if [[ "${1:-}" == "--smoke" ]]; then
  shift
  out="bench_smoke.json"
  extra+=(--n=8000 --t=6 --repeats=1)
fi
if [[ "${1:-}" == "--" ]]; then
  shift
fi

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$jobs" --target bench_perf_gate

./build/bench_perf_gate --out="$out" "${extra[@]}" "$@"
echo "bench output: $out"
