#!/usr/bin/env bash
# Reproduces BENCH_PR2.json + BENCH_PR3.json + BENCH_PR4.json +
# BENCH_PR5.json + BENCH_PR6.json + BENCH_PR7.json + BENCH_PR8.json +
# BENCH_PR9.json: Release build, then the perf gate.
#
#   scripts/bench.sh                 # full gates (n=50k): BENCH_PR2.json
#                                    # + BENCH_PR3.json (thread scaling)
#                                    # + BENCH_PR4.json (CSR maintenance)
#                                    # + BENCH_PR5.json (stream ingestion)
#                                    # + BENCH_PR6.json (parallel scaling
#                                    #   after the batching fix; enforces
#                                    #   speedup > 1 at >= 4 CPUs)
#                                    # + BENCH_PR7.json (WAL overhead +
#                                    #   50k-delta recovery wall time)
#                                    # + BENCH_PR8.json (memo retention
#                                    #   policies; ~200k-delta erase-heavy
#                                    #   stream, LRU budget enforcement)
#                                    # + BENCH_PR9.json (sentinel audit
#                                    #   overhead; every-16 cadence must
#                                    #   stay within 1.15x of audits-off)
#   scripts/bench.sh --smoke         # small run for CI (bench_smoke.json
#                                    # + bench_smoke_pr3.json
#                                    # + bench_smoke_pr4.json
#                                    # + bench_smoke_pr5.json
#                                    # + bench_smoke_pr6.json
#                                    # + bench_smoke_pr7.json
#                                    # + bench_smoke_pr8.json
#                                    # + bench_smoke_pr9.json)
#   scripts/bench.sh --stream-out=X.json   # redirect the PR-5 JSON
#   scripts/bench.sh --scale-out=X.json    # ALSO run bench_scalability
#                                    # (n=1M stream->track->anchor tier +
#                                    # text-vs-binlog ingestion gate >=1.5x;
#                                    # AVT_SCALE_10M=1 adds the 10M tier)
#   scripts/bench.sh -- --n=100000   # extra args forwarded to bench_perf_gate
#
# The gate measures the eager ("before", seed execution strategy) and
# lazy ("after", certified-bound) pick loops on identical inputs, the
# lazy loops across the --threads-list worker counts, the IncAVT
# per-delta workload across the three cascade-scan backings (no CSR /
# rebuild-per-delta / delta-maintained), the three ingestion drivers
# (materialized snapshot-pull / streamed AvtEngine / coalesced
# windows), the four memo retention policies (memoize-all / top /
# lru / none), and the sentinel-audit cadences (off / every-16 /
# every-1), checks all outputs are bit-identical, and emits the
# before/after JSON that docs/PERFORMANCE.md explains. Wall times move
# with the host (the PR-3 JSON records host_cpus for that reason); the
# work counters (oracle_queries, bound_probes) are deterministic.

set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH_PR2.json"
threads_out="BENCH_PR3.json"
csr_out="BENCH_PR4.json"
stream_out="BENCH_PR5.json"
scaling_out="BENCH_PR6.json"
durability_out="BENCH_PR7.json"
memo_out="BENCH_PR8.json"
selfheal_out="BENCH_PR9.json"
extra=()
if [[ "${1:-}" == "--smoke" ]]; then
  shift
  out="bench_smoke.json"
  threads_out="bench_smoke_pr3.json"
  csr_out="bench_smoke_pr4.json"
  stream_out="bench_smoke_pr5.json"
  scaling_out="bench_smoke_pr6.json"
  durability_out="bench_smoke_pr7.json"
  memo_out="bench_smoke_pr8.json"
  selfheal_out="bench_smoke_pr9.json"
  extra+=(--n=8000 --t=6 --repeats=1 --recovery-deltas=2000 --memo-transitions=60 --audit-transitions=48)
fi
if [[ "${1:-}" == --stream-out=* ]]; then
  stream_out="${1#--stream-out=}"
  shift
fi
scale_out=""
if [[ "${1:-}" == --scale-out=* ]]; then
  scale_out="${1#--scale-out=}"
  shift
fi
if [[ "${1:-}" == "--" ]]; then
  shift
fi

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$jobs" --target bench_perf_gate

./build/bench_perf_gate --out="$out" --threads-out="$threads_out" \
  --csr-out="$csr_out" --stream-out="$stream_out" \
  --scaling-out="$scaling_out" --durability-out="$durability_out" \
  --memo-out="$memo_out" --selfheal-out="$selfheal_out" \
  "${extra[@]}" "$@"
echo "bench output: $out + $threads_out + $csr_out + $stream_out + $scaling_out + $durability_out + $memo_out + $selfheal_out"

# Scalability tier (PR 10): full stream->track->anchor pipeline at
# n=1M driven from the binary edge log, plus the text-vs-binlog
# ingestion gate (>= 1.5x). Opt-in because the 1M tier alone needs a
# few GB of scratch and ~2 minutes; AVT_SCALE_10M=1 adds the 10M tier
# (nightly-sized: ~10 GB scratch, several minutes).
if [[ -n "$scale_out" ]]; then
  cmake --build build -j "$jobs" --target bench_scalability
  scale_flags=(--out="$scale_out")
  if [[ -n "${AVT_SCALE_10M:-}" ]]; then
    scale_flags+=(--full)
  fi
  ./build/bench_scalability "${scale_flags[@]}"
  echo "scalability output: $scale_out"
fi
