#!/usr/bin/env bash
# One-shot tier-1 verify: configure -> build -> ctest, exactly as CI and
# the ROADMAP run it. Usage:
#
#   scripts/check.sh             # Release, all labels
#   scripts/check.sh --werror    # additionally promote warnings to errors
#   scripts/check.sh --asan      # sanitizer tier: unit tests + reduced
#                                # differential fuzz under ASan/UBSan
#   scripts/check.sh --tsan      # ThreadSanitizer tier: the parallel
#                                # trial engine's determinism battery +
#                                # thread-pool units under TSan
#
# Any extra arguments after the mode flag are forwarded to ctest.

set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-}"
if [[ "$mode" == "--werror" || "$mode" == "--asan" || "$mode" == "--tsan" ]]; then
  shift
else
  mode=""
fi

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

case "$mode" in
  --asan)
    build_dir=build-asan
    cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Debug -DAVT_SANITIZE=ON \
      -DAVT_BUILD_BENCH=OFF -DAVT_BUILD_EXAMPLES=OFF
    cmake --build "$build_dir" -j "$jobs"
    ctest --test-dir "$build_dir" -L unit --output-on-failure -j "$jobs" "$@"
    # The differential fuzz is soak-labeled (its full sweep scales with
    # dataset size), but a reduced sweep is cheap enough to keep under
    # the sanitizers permanently.
    AVT_FUZZ_TRANSITIONS=60 ctest --test-dir "$build_dir" \
      -R '^differential_fuzz_test$' --output-on-failure "$@"
    ;;
  --tsan)
    build_dir=build-tsan
    cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DAVT_SANITIZE=thread -DAVT_BUILD_BENCH=OFF -DAVT_BUILD_EXAMPLES=OFF
    cmake --build "$build_dir" -j "$jobs"
    ctest --test-dir "$build_dir" \
      -R '^(parallel_determinism_test|util_test)$' \
      --output-on-failure -j "$jobs" "$@"
    ;;
  --werror)
    build_dir=build-werror
    cmake -B "$build_dir" -S . -DAVT_WERROR=ON
    cmake --build "$build_dir" -j "$jobs"
    ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" "$@"
    ;;
  *)
    build_dir=build
    cmake -B "$build_dir" -S .
    cmake --build "$build_dir" -j "$jobs"
    ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" "$@"
    ;;
esac
