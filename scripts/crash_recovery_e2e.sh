#!/usr/bin/env bash
# Crash-recovery end-to-end drill: SIGKILL the streaming CLI at
# randomized points, resume it with --resume, and diff the final state
# against an uninterrupted reference run. This is the process-level
# proof of the recovery invariant that tests/durability_test.cc pins at
# the library level — real torn files from a real dead process, via the
# public CLI surface only (docs/DURABILITY.md).
#
#   scripts/crash_recovery_e2e.sh                  # defaults (3 kills)
#   scripts/crash_recovery_e2e.sh --kills=5        # more kill rounds
#   scripts/crash_recovery_e2e.sh --seed=123       # workload + kill seed
#   scripts/crash_recovery_e2e.sh --artifacts=DIR  # where failures dump
#
# On mismatch, the checkpoint dir (wal.log + checkpoint-*.avtc) and all
# run transcripts are copied into the artifacts dir and the script exits
# 1 — CI uploads that directory so the torn state is inspectable.
#
# Exit-code contract consumed here (tools/cli_commands.h): 0 ok,
# 2 invalid argument, 4 corruption, 5 io error; a SIGKILLed child
# reports 137.

set -euo pipefail
cd "$(dirname "$0")/.."

kills=3
seed=97
artifacts="crash_recovery_artifacts"
for arg in "$@"; do
  case "$arg" in
    --kills=*) kills="${arg#--kills=}" ;;
    --seed=*) seed="${arg#--seed=}" ;;
    --artifacts=*) artifacts="${arg#--artifacts=}" ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

# A workload long enough (~seconds) that randomized kills land at
# genuinely different stages: during generation, mid-stream between
# checkpoints, inside a WAL append, after the last delta.
stream_flags=(stream --source=gen --n=60000 --t=60 --k=3 --l=5
              "--seed=$seed")

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j "$jobs" --target avt_cli >/dev/null

work="$(mktemp -d "${TMPDIR:-/tmp}/avt_crash_e2e.XXXXXX")"
ckpt="$work/checkpoints"
trap 'rm -rf "$work"' EXIT

fail() {
  echo "FAIL: $1" >&2
  rm -rf "$artifacts"
  mkdir -p "$artifacts"
  [[ -d "$ckpt" ]] && cp -r "$ckpt" "$artifacts/checkpoints"
  cp "$work"/*.out "$work"/*.err "$artifacts/" 2>/dev/null || true
  echo "torn state + transcripts copied to $artifacts/" >&2
  exit 1
}

# --- Reference: one uninterrupted, durability-free run ----------------
./build/avt_cli "${stream_flags[@]}" >"$work/reference.out" \
  2>"$work/reference.err" || fail "reference run exited $?"
reference_final="$(grep '^final ' "$work/reference.out")" \
  || fail "reference run printed no final line"
echo "reference: $reference_final"

# --- Kill/resume loop -------------------------------------------------
# Round 0 starts fresh; every later round resumes. The first $kills
# rounds get SIGKILLed after a randomized delay drawn under an adaptive
# cap; a round that outruns every kill and completes with NO kill
# landed wipes the dir, halves the cap, and starts over — the drill is
# meaningless unless at least one process actually died mid-run.
RANDOM=$seed
durable_flags=("${stream_flags[@]}" "--checkpoint-dir=$ckpt"
               --checkpoint-every=2 --fsync=never)
cap_ms=2000
attempt=0
killed=0
rounds=0
while :; do
  flags=("${durable_flags[@]}")
  if [[ $attempt -gt 0 ]]; then
    flags+=(--resume)
  fi
  ./build/avt_cli "${flags[@]}" >"$work/run_$attempt.out" \
    2>"$work/run_$attempt.err" &
  pid=$!
  delay_ms=0
  if [[ $killed -lt $kills ]]; then
    delay_ms=$((100 + RANDOM % cap_ms))
    sleep "$(awk -v ms="$delay_ms" 'BEGIN { printf "%.3f", ms / 1000 }')"
    kill -KILL "$pid" 2>/dev/null || true
  fi
  rc=0
  wait "$pid" || rc=$?
  rounds=$((rounds + 1))
  [[ $rounds -gt $((kills * 4 + 4)) ]] \
    && fail "kill/resume loop did not converge"
  if [[ $rc -eq 0 ]]; then
    if [[ $killed -eq 0 ]]; then
      # The run outpaced the kill: no crash happened, so nothing was
      # drilled. Tighten the window and start the whole drill over.
      cap_ms=$((cap_ms / 2))
      [[ $cap_ms -lt 100 ]] && fail "workload finishes faster than kills land"
      echo "round $attempt: completed before any kill; retrying with cap ${cap_ms}ms"
      rm -rf "$ckpt"
      attempt=0
      continue
    fi
    break
  elif [[ $rc -eq 137 ]]; then
    killed=$((killed + 1))
    echo "round $attempt: SIGKILLed after ${delay_ms}ms (kill $killed/$kills)"
  else
    fail "round $attempt exited $rc (expected 0 or 137): $(cat "$work/run_$attempt.err")"
  fi
  attempt=$((attempt + 1))
done
echo "round $attempt: completed after $killed kill(s)"

[[ -f "$ckpt/wal.log" ]] || fail "no wal.log in the checkpoint dir"

# --- Diff the survivor against the reference --------------------------
survivor_final="$(grep '^final ' "$work/run_$attempt.out")" \
  || fail "surviving run printed no final line"
if [[ "$survivor_final" != "$reference_final" ]]; then
  fail "final state diverged
  reference: $reference_final
  recovered: $survivor_final"
fi

# A resume of the COMPLETED run must also converge to the same state
# (recovery is idempotent: nothing left to replay changes nothing).
./build/avt_cli "${durable_flags[@]}" --resume >"$work/idempotent.out" \
  2>"$work/idempotent.err" || fail "idempotent resume exited $?"
idempotent_final="$(grep '^final ' "$work/idempotent.out")" \
  || fail "idempotent resume printed no final line"
[[ "$idempotent_final" == "$reference_final" ]] \
  || fail "idempotent resume diverged: $idempotent_final"

echo "PASS: recovered final state bit-identical to the uninterrupted"
echo "      reference after $killed SIGKILL(s) + resume (and idempotent)"
