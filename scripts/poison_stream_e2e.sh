#!/usr/bin/env bash
# Self-healing end-to-end drill, the process-level companion to
# tests/self_healing_test.cc — through the public CLI surface only:
#
#   leg 1 (poison quarantine): stream a generated workload with a
#     seeded PoisonInjectingSource corrupting a fraction of the deltas
#     in flight. The run must COMPLETE (exit 6, degraded), quarantine
#     every injected poison, keep the final anchors bit-identical to a
#     clean reference run of the same seed, and `avt_cli quarantine`
#     must list exactly the quarantined records.
#
#   leg 2 (corruption drill): the same workload run durably with
#     cadenced audits and --corrupt-state-after, which desyncs the
#     tracker's index mid-run. The sentinel audit must catch it, the
#     checkpoint+WAL rollback must heal it in-process (recoveries=1,
#     exit 6), and the final anchors must again match the reference.
#
#   scripts/poison_stream_e2e.sh                   # defaults
#   scripts/poison_stream_e2e.sh --seed=123        # workload seed
#   scripts/poison_stream_e2e.sh --poison-rate=0.4 # heavier poisoning
#   scripts/poison_stream_e2e.sh --artifacts=DIR   # where failures dump
#
# On failure the quarantine log (quarantine.avtq), the checkpoint dir,
# and all run transcripts are copied into the artifacts dir and the
# script exits 1 — CI uploads that directory so the poisoned state is
# inspectable.
#
# Exit-code contract consumed here (tools/cli_commands.h): 0 ok,
# 2 invalid argument, 3 not found, 4 corruption, 5 io error,
# 6 completed but degraded.

set -euo pipefail
cd "$(dirname "$0")/.."

seed=41
poison_rate=0.3
artifacts="poison_stream_artifacts"
for arg in "$@"; do
  case "$arg" in
    --seed=*) seed="${arg#--seed=}" ;;
    --poison-rate=*) poison_rate="${arg#--poison-rate=}" ;;
    --artifacts=*) artifacts="${arg#--artifacts=}" ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

stream_flags=(stream --source=gen --n=20000 --t=24 --k=3 --l=5
              --churn-min=60 --churn-max=120 "--seed=$seed")

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j "$jobs" --target avt_cli >/dev/null

work="$(mktemp -d "${TMPDIR:-/tmp}/avt_poison_e2e.XXXXXX")"
qdir="$work/quarantine"
ckpt="$work/checkpoints"
trap 'rm -rf "$work"' EXIT

fail() {
  echo "FAIL: $1" >&2
  rm -rf "$artifacts"
  mkdir -p "$artifacts"
  [[ -d "$qdir" ]] && cp -r "$qdir" "$artifacts/quarantine"
  [[ -d "$ckpt" ]] && cp -r "$ckpt" "$artifacts/checkpoints"
  cp "$work"/*.out "$work"/*.err "$artifacts/" 2>/dev/null || true
  echo "quarantine log + transcripts copied to $artifacts/" >&2
  exit 1
}

# --- Reference: one clean, undecorated run ----------------------------
./build/avt_cli "${stream_flags[@]}" >"$work/reference.out" \
  2>"$work/reference.err" || fail "reference run exited $?"
reference_final="$(grep '^final ' "$work/reference.out")" \
  || fail "reference run printed no final line"
grep -q '^health: healthy' "$work/reference.out" \
  || fail "reference run is not healthy"
echo "reference: $reference_final"

# --- Leg 1: poison quarantine -----------------------------------------
# The injector corrupts deltas AFTER the clean source produced them, so
# the underlying stream is unchanged: quarantining every poison must
# reproduce the reference anchors exactly.
rc=0
./build/avt_cli "${stream_flags[@]}" "--poison-rate=$poison_rate" \
  --poison-seed=99 "--quarantine-dir=$qdir" \
  >"$work/poison.out" 2>"$work/poison.err" || rc=$?
[[ $rc -eq 6 ]] || fail "poison run exited $rc (expected 6, degraded)"
grep -q '^health: degraded (quarantined-delta)' "$work/poison.out" \
  || fail "poison run did not report degraded (quarantined-delta)"
injected="$(sed -n 's/^poison injected: //p' "$work/poison.out")"
[[ -n "$injected" && "$injected" -gt 0 ]] \
  || fail "poison run injected nothing (seed too kind? got '$injected')"
quarantined="$(sed -n 's/^health: .* quarantined=\([0-9]*\).*/\1/p' \
  "$work/poison.out")"
[[ "$quarantined" == "$injected" ]] \
  || fail "quarantined $quarantined of $injected injected poisons"
poison_final="$(grep '^final ' "$work/poison.out")" \
  || fail "poison run printed no final line"
if [[ "$poison_final" != "$reference_final" ]]; then
  fail "poisoned final state diverged
  reference: $reference_final
  poisoned:  $poison_final"
fi
echo "leg 1: $injected poison(s) quarantined, final state identical"

# The quarantine inspector must agree with the engine's own count.
./build/avt_cli quarantine "$qdir" >"$work/quarantine.out" \
  2>"$work/quarantine.err" || fail "quarantine listing exited $?"
grep -q "^$injected quarantined delta(s)" "$work/quarantine.out" \
  || fail "quarantine listing disagrees with the engine count"
listed="$(grep -c '^#' "$work/quarantine.out")" || true
[[ "$listed" == "$injected" ]] \
  || fail "quarantine listing has $listed record lines, expected $injected"

# --- Leg 2: corruption drill + audit-triggered rollback ---------------
rc=0
./build/avt_cli "${stream_flags[@]}" "--checkpoint-dir=$ckpt" \
  --checkpoint-every=2 --audit-every=2 --corrupt-state-after=4 \
  >"$work/drill.out" 2>"$work/drill.err" || rc=$?
[[ $rc -eq 6 ]] || fail "corruption drill exited $rc (expected 6, degraded)"
grep -q '^health: degraded (audit-recovered)' "$work/drill.out" \
  || fail "drill run did not report degraded (audit-recovered)"
grep -q 'recoveries=1' "$work/drill.out" \
  || fail "drill run did not report exactly one recovery"
grep -q 'failures=1' "$work/drill.out" \
  || fail "drill run did not report the failed audit"
drill_final="$(grep '^final ' "$work/drill.out")" \
  || fail "drill run printed no final line"
if [[ "$drill_final" != "$reference_final" ]]; then
  fail "drilled final state diverged
  reference: $reference_final
  recovered: $drill_final"
fi
echo "leg 2: audit caught the drilled desync, rollback healed it,"
echo "       final state identical"

echo "PASS: quarantine + audit rollback both converged to the clean"
echo "      reference state through the public CLI"
