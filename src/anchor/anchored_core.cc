#include "anchor/anchored_core.h"

#include <algorithm>

#include "util/status.h"

namespace avt {

AnchoredCoreResult ComputeAnchoredKCore(
    const Graph& graph, uint32_t k, const std::vector<VertexId>& anchors) {
  const VertexId n = graph.NumVertices();
  AnchoredCoreResult result;

  std::vector<uint8_t> is_anchor(n, 0);
  for (VertexId a : anchors) {
    AVT_CHECK(a < n);
    is_anchor[a] = 1;
  }

  // Pinned peel at threshold k.
  std::vector<uint32_t> degree(n);
  std::vector<uint8_t> removed(n, 0);
  std::vector<VertexId> frontier;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = graph.Degree(v);
    if (!is_anchor[v] && degree[v] < k) frontier.push_back(v);
  }
  while (!frontier.empty()) {
    VertexId v = frontier.back();
    frontier.pop_back();
    if (removed[v]) continue;
    removed[v] = 1;
    for (VertexId w : graph.Neighbors(v)) {
      if (removed[w] || is_anchor[w]) continue;
      if (--degree[w] == k - 1) frontier.push_back(w);
    }
  }

  // Plain k-core membership for the follower split.
  CoreDecomposition plain = DecomposeCores(graph);

  for (VertexId v = 0; v < n; ++v) {
    if (removed[v]) continue;
    result.members.push_back(v);
    if (!is_anchor[v] && plain.core[v] < k) result.followers.push_back(v);
  }
  return result;
}

uint32_t CountFollowersExact(const Graph& graph, uint32_t k,
                             const std::vector<VertexId>& anchors) {
  return static_cast<uint32_t>(
      ComputeAnchoredKCore(graph, k, anchors).followers.size());
}

bool IsValidAnchoredKCore(const Graph& graph, uint32_t k,
                          const std::vector<VertexId>& anchors,
                          const std::vector<VertexId>& claimed_members) {
  const VertexId n = graph.NumVertices();
  std::vector<uint8_t> member(n, 0);
  for (VertexId v : claimed_members) {
    if (v >= n) return false;
    member[v] = 1;
  }
  std::vector<uint8_t> is_anchor(n, 0);
  for (VertexId a : anchors) {
    if (a >= n) return false;
    is_anchor[a] = 1;
    if (!member[a]) return false;  // anchors belong to C_k(S) by definition
  }

  // Internal-degree constraint for non-anchor members.
  for (VertexId v : claimed_members) {
    if (is_anchor[v]) continue;
    uint32_t inside = 0;
    for (VertexId w : graph.Neighbors(v)) inside += member[w];
    if (inside < k) return false;
  }

  // Maximality: no vertex outside could be added greedily... a single
  // outside vertex with >= k member-neighbors proves non-maximality.
  for (VertexId v = 0; v < n; ++v) {
    if (member[v]) continue;
    uint32_t inside = 0;
    for (VertexId w : graph.Neighbors(v)) inside += member[w];
    if (inside >= k) return false;
  }

  // Contains the ordinary k-core.
  CoreDecomposition plain = DecomposeCores(graph);
  for (VertexId v = 0; v < n; ++v) {
    if (plain.core[v] >= k && !member[v]) return false;
  }
  return true;
}

}  // namespace avt
