// Exact anchored k-core semantics (Definitions 3 and 4 of the paper).
//
// An anchored vertex is exempt from the degree constraint: during the
// k-core peel it is never removed. The anchored k-core C_k(S) is the set
// of survivors of that pinned peel; followers F_k(S) are survivors that
// are neither original k-core members nor anchors.
//
// This module is the ground truth the fast order-based follower oracle is
// differentially tested against, and the engine behind the brute-force
// solver and the effectiveness metrics.

#ifndef AVT_ANCHOR_ANCHORED_CORE_H_
#define AVT_ANCHOR_ANCHORED_CORE_H_

#include <cstdint>
#include <vector>

#include "corelib/decomposition.h"
#include "graph/graph.h"

namespace avt {

/// Result of an exact anchored peel.
struct AnchoredCoreResult {
  /// Every vertex of C_k(S): k-core members, anchors, and followers.
  std::vector<VertexId> members;
  /// Followers only (members minus original k-core minus anchors).
  std::vector<VertexId> followers;
};

/// Exact anchored k-core by pinned peel; O(n + m).
AnchoredCoreResult ComputeAnchoredKCore(const Graph& graph, uint32_t k,
                                        const std::vector<VertexId>& anchors);

/// Convenience: just the follower count of an anchor set.
uint32_t CountFollowersExact(const Graph& graph, uint32_t k,
                             const std::vector<VertexId>& anchors);

/// Checks Definition 3 directly: every claimed follower has at least k
/// neighbors inside claimed_members, no non-member qualifies for
/// inclusion, and members ⊇ k-core ∪ anchors. Used by property tests.
bool IsValidAnchoredKCore(const Graph& graph, uint32_t k,
                          const std::vector<VertexId>& anchors,
                          const std::vector<VertexId>& claimed_members);

}  // namespace avt

#endif  // AVT_ANCHOR_ANCHORED_CORE_H_
