#include "anchor/brute_force.h"

#include "anchor/anchored_core.h"
#include "anchor/follower_oracle.h"
#include "corelib/korder.h"

namespace avt {

SolverResult BruteForceSolver::Solve(const Graph& graph, uint32_t k,
                                     uint32_t l) {
  SolverResult result;
  truncated_ = false;
  if (k == 0 || l == 0) return result;

  KOrder order;
  order.Build(graph);
  FollowerOracle oracle(&graph, &order);

  // Pool: every non-k-core vertex with at least one edge.
  std::vector<VertexId> pool;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (order.CoreOf(v) < k && graph.Degree(v) > 0) pool.push_back(v);
  }
  const uint32_t pool_size = static_cast<uint32_t>(pool.size());
  if (pool_size == 0) return result;
  const uint32_t pick = std::min(l, pool_size);

  std::vector<uint32_t> index(pick);
  for (uint32_t i = 0; i < pick; ++i) index[i] = i;

  std::vector<VertexId> best_anchors;
  uint32_t best_followers = 0;
  bool have_best = false;
  uint64_t evaluations = 0;
  std::vector<VertexId> trial(pick);

  // Enumerate all C(pool, pick) combinations in lexicographic order.
  while (true) {
    for (uint32_t i = 0; i < pick; ++i) trial[i] = pool[index[i]];
    ++evaluations;
    ++result.candidates_visited;
    uint32_t followers = oracle.CountFollowers(trial, k);
    if (!have_best || followers > best_followers) {
      have_best = true;
      best_followers = followers;
      best_anchors = trial;
    }
    if (max_evaluations_ != 0 && evaluations >= max_evaluations_) {
      truncated_ = true;
      break;
    }
    // Advance the combination.
    int32_t slot = static_cast<int32_t>(pick) - 1;
    while (slot >= 0 &&
           index[slot] == pool_size - pick + static_cast<uint32_t>(slot)) {
      --slot;
    }
    if (slot < 0) break;
    ++index[slot];
    for (uint32_t i = static_cast<uint32_t>(slot) + 1; i < pick; ++i) {
      index[i] = index[i - 1] + 1;
    }
  }

  result.anchors = best_anchors;
  result.followers = ComputeAnchoredKCore(graph, k, best_anchors).followers;
  result.cascade_visited = oracle.stats().visited;
  return result;
}

}  // namespace avt
