// Exact anchored-k-core by exhaustive subset enumeration (paper Sec 6.4).
//
// Enumerates every anchor set of size <= l drawn from the useful
// candidate pool (non-k-core vertices with a neighbor; adding anything
// else can never help) and keeps the set with the most followers. The
// paper reports this is feasible only at case-study scale (l = 2 on
// eu-core); the implementation guards against accidental blow-ups with a
// configurable evaluation cap.

#ifndef AVT_ANCHOR_BRUTE_FORCE_H_
#define AVT_ANCHOR_BRUTE_FORCE_H_

#include "anchor/solver.h"

namespace avt {

/// Exhaustive optimal solver for tiny instances.
class BruteForceSolver : public AnchorSolver {
 public:
  /// `max_evaluations` bounds the number of anchored peels; 0 = unlimited.
  explicit BruteForceSolver(uint64_t max_evaluations = 50'000'000)
      : max_evaluations_(max_evaluations) {}

  SolverResult Solve(const Graph& graph, uint32_t k, uint32_t l) override;
  std::string name() const override { return "Brute-force"; }

  /// True if the last Solve hit the evaluation cap (result then is the
  /// best over the enumerated prefix).
  bool truncated() const { return truncated_; }

 private:
  uint64_t max_evaluations_;
  bool truncated_ = false;
};

}  // namespace avt

#endif  // AVT_ANCHOR_BRUTE_FORCE_H_
