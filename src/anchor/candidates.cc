#include "anchor/candidates.h"

namespace avt {

std::vector<VertexId> CollectAnchorCandidates(const Graph& graph,
                                              const KOrder& order,
                                              uint32_t k) {
  std::vector<VertexId> out;
  for (VertexId x = 0; x < graph.NumVertices(); ++x) {
    if (IsAnchorCandidate(graph, order, x, k)) out.push_back(x);
  }
  return out;
}

std::vector<VertexId> CollectUnprunedCandidates(const Graph& graph,
                                                const KOrder& order,
                                                uint32_t k) {
  std::vector<VertexId> out;
  for (VertexId x = 0; x < graph.NumVertices(); ++x) {
    if (order.CoreOf(x) < k && graph.Degree(x) > 0) out.push_back(x);
  }
  return out;
}

}  // namespace avt
