// Candidate anchored-vertex pruning (Theorem 3 of the paper).
//
// A vertex x can only produce followers if it has at least one neighbor v
// with core(v) = k-1 positioned after x in the K-order (x ⪯ v): anchoring
// x only adds support to neighbors it precedes, and a first follower must
// sit on the (k-1)-shell. The theorem shrinks the Greedy candidate pool
// from |V| to the vertices adjacent "upward" to the shell, which is the
// dominant speedup of the paper's optimized Greedy over OLAK.
//
// Everything here is templated over the adjacency view (Graph, CsrView,
// or the delta-maintained DynamicCsr — all iterate neighbors in the same
// order, see graph/dynamic_csr.h), so the one-shot solvers filter over
// their frozen snapshot and the incremental tracker filters its
// churn-restricted pool over the maintained mirror without leaving the
// contiguous scan path.

#ifndef AVT_ANCHOR_CANDIDATES_H_
#define AVT_ANCHOR_CANDIDATES_H_

#include <cstdint>
#include <vector>

#include "corelib/korder.h"
#include "graph/graph.h"

namespace avt {

/// True iff x passes the Theorem-3 filter for threshold k.
template <typename Adjacency>
inline bool IsAnchorCandidate(const Adjacency& adj, const KOrder& order,
                              VertexId x, uint32_t k) {
  if (k == 0) return false;
  if (order.CoreOf(x) >= k) return false;  // k-core members gain nothing
  for (VertexId v : adj.Neighbors(x)) {
    if (order.CoreOf(v) == k - 1 && order.Precedes(x, v)) return true;
  }
  return false;
}

/// All Theorem-3 candidates of the graph, ascending vertex id.
template <typename Adjacency>
std::vector<VertexId> CollectAnchorCandidates(const Adjacency& adj,
                                              const KOrder& order,
                                              uint32_t k) {
  std::vector<VertexId> out;
  for (VertexId x = 0; x < adj.NumVertices(); ++x) {
    if (IsAnchorCandidate(adj, order, x, k)) out.push_back(x);
  }
  return out;
}

/// Unpruned pool used by the OLAK baseline: every vertex outside the
/// k-core with at least one neighbor (anchoring an isolated vertex or a
/// k-core member can never create followers, which OLAK also skips).
template <typename Adjacency>
std::vector<VertexId> CollectUnprunedCandidates(const Adjacency& adj,
                                                const KOrder& order,
                                                uint32_t k) {
  std::vector<VertexId> out;
  for (VertexId x = 0; x < adj.NumVertices(); ++x) {
    if (order.CoreOf(x) < k && adj.Degree(x) > 0) out.push_back(x);
  }
  return out;
}

}  // namespace avt

#endif  // AVT_ANCHOR_CANDIDATES_H_
