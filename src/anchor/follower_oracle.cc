#include "anchor/follower_oracle.h"

#include <algorithm>
#include <functional>

#include "graph/dynamic_csr.h"

namespace avt {

void FollowerOracle::ResizeScratch() {
  const size_t n = graph_->NumVertices();
  anchor_.Resize(n);
  bump_.Resize(n);
  deg_minus_.Resize(n);
  in_heap_.Resize(n);
  candidate_.Resize(n);
  eliminated_.Resize(n);
  support_.Resize(n);
  base_anchor_.Resize(n);
  base_bump_.Resize(n);
  base_deg_minus_.Resize(n);
  base_candidate_.Resize(n);
  d_bump_.Resize(n);
  d_deg_minus_.Resize(n);
  d_candidate_.Resize(n);
  d_in_heap_.Resize(n);
  base_valid_ = false;
  // Reserve the hot vectors once; queries then run allocation-free after
  // a short warm-up (forward passes rarely touch more than a small
  // fraction of the graph, so these grow to their high-water mark and
  // stay there).
  unique_anchors_.reserve(64);
  visited_.reserve(256);
  candidates_in_order_.reserve(256);
  review_.reserve(256);
  heap_.reserve(256);
}

// Phase 1: the optimistic forward cascade, parameterized over the array
// bundle it writes. One definition serves the per-query scratch
// (CountFollowers / UpperBound) and the resident base (BuildBase) so the
// two can never drift — the MarginalUpperBound == UpperBound invariant
// the lazy argmax proof rests on depends on that. `in_heap_` and `heap_`
// are shared transients (only live during one cascade).
template <typename Adjacency>
uint32_t FollowerOracle::RunCascade(
    const Adjacency& adj, std::span<const VertexId> anchors, VertexId extra,
    uint32_t k, EpochArray<uint8_t>& anchor_flags, EpochArray<uint32_t>& bump,
    EpochArray<uint32_t>& deg_minus, EpochArray<uint8_t>& candidate,
    std::vector<VertexId>& anchors_out, std::vector<VertexId>& visited_out,
    std::vector<VertexId>* candidates_out) {
  anchor_flags.Clear();
  bump.Clear();
  deg_minus.Clear();
  candidate.Clear();
  in_heap_.Clear();
  anchors_out.clear();
  visited_out.clear();
  if (candidates_out) candidates_out->clear();
  heap_.clear();

  auto add_anchor = [&](VertexId a) {
    if (!anchor_flags.Get(a)) {
      anchor_flags.Set(a, 1);
      anchors_out.push_back(a);
    }
  };
  for (VertexId a : anchors) add_anchor(a);
  if (extra != kNoVertex) add_anchor(extra);

  auto push = [this](VertexId v) {
    if (!in_heap_.Get(v)) {
      in_heap_.Set(v, 1);
      heap_.push_back({order_->CoreOf(v), order_->TagOf(v), v});
      std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    }
  };

  // Seed: anchors raise the potential of neighbors they precede (anchors
  // positioned after a neighbor are already inside its deg+ bound).
  for (VertexId a : anchors_out) {
    for (VertexId w : adj.Neighbors(a)) {
      if (order_->CoreOf(w) >= k || anchor_flags.Get(w)) continue;
      if (order_->Precedes(a, w)) {
        bump.Add(w, 1);
        push(w);
      }
    }
  }

  uint32_t count = 0;
  while (!heap_.empty()) {
    VertexId w = heap_.front().vertex;
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
    visited_out.push_back(w);
    ++stats_.visited;
    uint64_t upper = static_cast<uint64_t>(order_->DegPlus(w)) +
                     deg_minus.Get(w) + bump.Get(w);
    if (upper < k) continue;  // final: later pushes only target
                              // later positions.
    candidate.Set(w, 1);
    ++count;
    if (candidates_out) candidates_out->push_back(w);
    for (VertexId x : adj.Neighbors(w)) {
      if (order_->CoreOf(x) >= k || anchor_flags.Get(x)) continue;
      if (!order_->Precedes(w, x)) continue;
      if (candidate.Get(x)) continue;
      deg_minus.Add(x, 1);
      push(x);
    }
  }
  return count;
}

template <typename Adjacency>
uint32_t FollowerOracle::ForwardPass(const Adjacency& adj,
                                     std::span<const VertexId> anchors,
                                     VertexId extra, uint32_t k) {
  eliminated_.Clear();
  support_.Clear();
  return RunCascade(adj, anchors, extra, k, anchor_, bump_, deg_minus_,
                    candidate_, unique_anchors_, visited_,
                    &candidates_in_order_);
}

template <typename Adjacency>
uint32_t FollowerOracle::Eliminate(const Adjacency& adj, uint32_t k,
                                   std::vector<VertexId>* followers) {
  // Elimination fixpoint with exact support. `review_` doubles as the
  // FIFO (head index instead of std::queue — no per-query allocation).
  review_.clear();
  size_t head = 0;
  for (VertexId w : candidates_in_order_) {
    uint32_t support = 0;
    for (VertexId x : adj.Neighbors(w)) {
      if (anchor_.Get(x) || order_->CoreOf(x) >= k || candidate_.Get(x)) {
        ++support;
      }
    }
    support_.Set(w, support);
    if (support < k) review_.push_back(w);
  }
  while (head < review_.size()) {
    VertexId w = review_[head++];
    if (eliminated_.Get(w)) continue;
    if (support_.Get(w) >= k) continue;
    eliminated_.Set(w, 1);
    candidate_.Set(w, 0);
    ++stats_.eliminated;
    for (VertexId x : adj.Neighbors(w)) {
      if (candidate_.Get(x) && !eliminated_.Get(x) && !anchor_.Get(x)) {
        support_.Add(x, static_cast<uint32_t>(-1));
        if (support_.Get(x) < k) review_.push_back(x);
      }
    }
  }

  uint32_t count = 0;
  for (VertexId w : candidates_in_order_) {
    if (candidate_.Get(w)) {
      ++count;
      if (followers) followers->push_back(w);
    }
  }
  return count;
}

template <typename F>
decltype(auto) FollowerOracle::WithAdjacency(F&& f) {
  if (dcsr_ != nullptr) return f(*dcsr_);
  if (csr_ != nullptr) return f(*csr_);
  return f(*graph_);
}

uint32_t FollowerOracle::CountFollowers(std::span<const VertexId> anchors,
                                        VertexId extra, uint32_t k,
                                        std::vector<VertexId>* followers) {
  ++stats_.queries;
  if (followers) followers->clear();
  if (k == 0) return 0;  // every vertex is trivially in the 0-core
  return WithAdjacency([&](const auto& adj) {
    ForwardPass(adj, anchors, extra, k);
    return Eliminate(adj, k, followers);
  });
}

uint32_t FollowerOracle::UpperBound(std::span<const VertexId> anchors,
                                    VertexId extra, uint32_t k) {
  ++stats_.bound_queries;
  if (k == 0) return 0;
  return WithAdjacency(
      [&](const auto& adj) { return ForwardPass(adj, anchors, extra, k); });
}

void FollowerOracle::BuildBase(std::span<const VertexId> anchors,
                               uint32_t k) {
  base_k_ = k;
  base_valid_ = true;
  if (k == 0) {
    base_anchor_.Clear();
    base_candidate_.Clear();
    base_anchors_.clear();
    base_visited_.clear();
    base_count_ = 0;
    return;
  }
  base_count_ = WithAdjacency([&](const auto& adj) {
    return RunCascade(adj, anchors, kNoVertex, k, base_anchor_, base_bump_,
                      base_deg_minus_, base_candidate_, base_anchors_,
                      base_visited_, nullptr);
  });
}

template <typename Adjacency>
uint32_t FollowerOracle::MarginalUpperBoundImpl(const Adjacency& adj,
                                                VertexId x) {
  const uint32_t k = base_k_;
  // Overlay reset: four epoch bumps, no O(n) work.
  d_bump_.Clear();
  d_deg_minus_.Clear();
  d_candidate_.Clear();
  d_in_heap_.Clear();
  marginal_visited_.clear();
  heap_.clear();

  if (base_anchor_.Get(x)) return base_count_;  // trial set == base set
  marginal_visited_.push_back(x);
  if (base_candidate_.Get(x)) {
    // x's phase-1 influence on others is already in the base state (a
    // candidate propagates the same +1 credit to its later neighbors
    // that an anchor's bump would); promoting it to an anchor only
    // removes its own candidacy.
    return base_count_ - 1;
  }

  auto push = [this](VertexId v) {
    if (!d_in_heap_.Get(v)) {
      d_in_heap_.Set(v, 1);
      heap_.push_back({order_->CoreOf(v), order_->TagOf(v), v});
      std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    }
  };

  // Seeds: x's bump to later neighbors that are not already settled.
  for (VertexId w : adj.Neighbors(x)) {
    if (order_->CoreOf(w) >= k || base_anchor_.Get(w)) continue;
    if (base_candidate_.Get(w)) continue;  // already a candidate
    if (order_->Precedes(x, w)) {
      d_bump_.Add(w, 1);
      push(w);
    }
  }

  // Continue the base fixpoint: influence flows only forward in K-order,
  // so the position-ordered pops decide every vertex after all of its
  // (base + marginal) earlier contributors — the combined result is the
  // least fixpoint for base_anchors ∪ {x}.
  uint32_t added = 0;
  while (!heap_.empty()) {
    VertexId w = heap_.front().vertex;
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
    marginal_visited_.push_back(w);
    ++stats_.visited;
    uint64_t upper = static_cast<uint64_t>(order_->DegPlus(w)) +
                     base_bump_.Get(w) + d_bump_.Get(w) +
                     base_deg_minus_.Get(w) + d_deg_minus_.Get(w);
    if (upper < k) continue;
    d_candidate_.Set(w, 1);
    ++added;
    for (VertexId z : adj.Neighbors(w)) {
      if (order_->CoreOf(z) >= k || base_anchor_.Get(z) || z == x) continue;
      if (!order_->Precedes(w, z)) continue;
      if (base_candidate_.Get(z) || d_candidate_.Get(z)) continue;
      d_deg_minus_.Add(z, 1);
      push(z);
    }
  }
  return base_count_ + added;
}

uint32_t FollowerOracle::MarginalUpperBound(VertexId x) {
  AVT_DCHECK(base_valid_);
  ++stats_.bound_queries;
  if (base_k_ == 0) return 0;
  return WithAdjacency(
      [&](const auto& adj) { return MarginalUpperBoundImpl(adj, x); });
}

}  // namespace avt
