#include "anchor/follower_oracle.h"

#include <queue>

namespace avt {

void FollowerOracle::ResizeScratch() {
  const size_t n = graph_->NumVertices();
  anchor_.Resize(n);
  bump_.Resize(n);
  deg_minus_.Resize(n);
  in_heap_.Resize(n);
  candidate_.Resize(n);
  eliminated_.Resize(n);
  support_.Resize(n);
}

uint32_t FollowerOracle::CountFollowers(std::span<const VertexId> anchors,
                                        uint32_t k,
                                        std::vector<VertexId>* followers) {
  ++stats_.queries;
  if (followers) followers->clear();
  if (k == 0) return 0;  // every vertex is trivially in the 0-core

  anchor_.Clear();
  bump_.Clear();
  deg_minus_.Clear();
  in_heap_.Clear();
  candidate_.Clear();
  eliminated_.Clear();
  support_.Clear();

  unique_anchors_.clear();
  for (VertexId a : anchors) {
    if (!anchor_.Get(a)) {
      anchor_.Set(a, 1);
      unique_anchors_.push_back(a);
    }
  }

  // Position key: (level, tag). Levels fit in 32 bits, so pack for the
  // heap; pops then follow the full K-order.
  using Key = std::pair<uint64_t, uint64_t>;  // (level, tag)
  using HeapEntry = std::pair<Key, VertexId>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;
  auto key_of = [this](VertexId v) {
    return Key{order_->CoreOf(v), order_->TagOf(v)};
  };
  auto push = [&](VertexId v) {
    if (!in_heap_.Get(v)) {
      in_heap_.Set(v, 1);
      heap.emplace(key_of(v), v);
    }
  };

  // Seed: anchors raise the potential of neighbors they precede (anchors
  // positioned after a neighbor are already inside its deg+ bound).
  for (VertexId a : unique_anchors_) {
    for (VertexId w : graph_->Neighbors(a)) {
      if (order_->CoreOf(w) >= k || anchor_.Get(w)) continue;
      if (order_->Precedes(a, w)) {
        bump_.Add(w, 1);
        push(w);
      }
    }
  }

  std::vector<VertexId> visited;
  std::vector<VertexId> candidates_in_order;
  while (!heap.empty()) {
    VertexId w = heap.top().second;
    heap.pop();
    visited.push_back(w);
    ++stats_.visited;
    uint64_t upper = static_cast<uint64_t>(order_->DegPlus(w)) +
                     deg_minus_.Get(w) + bump_.Get(w);
    if (upper < k) continue;  // final: later pushes only target
                              // later positions.
    candidate_.Set(w, 1);
    candidates_in_order.push_back(w);
    for (VertexId x : graph_->Neighbors(w)) {
      if (order_->CoreOf(x) >= k || anchor_.Get(x)) continue;
      if (!order_->Precedes(w, x)) continue;
      if (candidate_.Get(x)) continue;
      deg_minus_.Add(x, 1);
      push(x);
    }
  }

  // Elimination fixpoint with exact support.
  std::queue<VertexId> review;
  for (VertexId w : candidates_in_order) {
    uint32_t support = 0;
    for (VertexId x : graph_->Neighbors(w)) {
      if (anchor_.Get(x) || order_->CoreOf(x) >= k || candidate_.Get(x)) {
        ++support;
      }
    }
    support_.Set(w, support);
    if (support < k) review.push(w);
  }
  while (!review.empty()) {
    VertexId w = review.front();
    review.pop();
    if (eliminated_.Get(w)) continue;
    if (support_.Get(w) >= k) continue;
    eliminated_.Set(w, 1);
    candidate_.Set(w, 0);
    ++stats_.eliminated;
    for (VertexId x : graph_->Neighbors(w)) {
      if (candidate_.Get(x) && !eliminated_.Get(x) && !anchor_.Get(x)) {
        support_.Add(x, static_cast<uint32_t>(-1));
        if (support_.Get(x) < k) review.push(x);
      }
    }
  }

  uint32_t count = 0;
  for (VertexId w : candidates_in_order) {
    if (candidate_.Get(w)) {
      ++count;
      if (followers) followers->push_back(w);
    }
  }
  return count;
}

}  // namespace avt
