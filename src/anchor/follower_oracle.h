// Fast, non-destructive follower computation over the K-order
// (generalization of the paper's Algorithm 3 to anchor *sets*).
//
// Given anchors S and threshold k, the followers F_k(S) are the unique
// maximal set F of non-anchor vertices outside C_k such that every member
// has at least k neighbors in C_k ∪ S ∪ F. The oracle finds F in two
// phases without touching the index:
//
//  1. Optimistic forward pass in K-order. Anchoring bumps the potential of
//     a neighbor w by one for every anchor positioned before w (anchors
//     after w are already counted by deg+(w), the invariant upper bound).
//     Visiting affected vertices in K-order position, w becomes a
//     candidate when
//         deg+(w) + deg-(w) + bump(w) >= k,
//     where deg-(w) counts candidate neighbors positioned before w.
//     Candidates propagate deg- to their later neighbors below the k-core.
//     An induction over positions shows every true follower becomes a
//     candidate (DESIGN.md), so the pass yields a superset of F.
//
//  2. Elimination fixpoint. A candidate's exact support counts neighbors
//     that are anchors, k-core members (core >= k), or surviving
//     candidates; candidates with support < k are removed until stable.
//     Because F stays inside the surviving set throughout and the final
//     survivor set is itself valid, the fixpoint equals F exactly.
//
// Unlike the single-anchor Algorithm 3, candidates may live on any level
// below k-1 (with several anchors a low-core vertex can reach k engaged
// neighbors); the pass therefore orders by full (level, tag) position.
//
// All scratch state is epoch-stamped: evaluating a candidate anchor set
// is allocation-free and leaves the K-order untouched, which is what lets
// Greedy and IncAVT probe thousands of hypothetical sets per snapshot.

#ifndef AVT_ANCHOR_FOLLOWER_ORACLE_H_
#define AVT_ANCHOR_FOLLOWER_ORACLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "corelib/korder.h"
#include "graph/graph.h"
#include "util/epoch.h"

namespace avt {

/// Work counters for a follower query (paper's "visited vertices").
struct OracleStats {
  uint64_t queries = 0;
  uint64_t visited = 0;       // vertices popped by forward passes
  uint64_t eliminated = 0;    // candidates removed by fixpoints

  void Reset() { *this = OracleStats{}; }
};

/// Read-only follower computation bound to a (graph, K-order) pair.
/// The referenced structures must outlive the oracle and stay consistent
/// (rebuild/maintain them through CoreMaintainer).
class FollowerOracle {
 public:
  FollowerOracle(const Graph* graph, const KOrder* order)
      : graph_(graph), order_(order) {
    ResizeScratch();
  }

  /// Re-binds after the underlying graph/order changed size.
  void ResizeScratch();

  /// Returns |F_k(anchors)|; optionally materializes the follower set
  /// (K-order position order). Anchors inside the k-core contribute
  /// nothing (handled gracefully); duplicate anchors are allowed.
  uint32_t CountFollowers(std::span<const VertexId> anchors, uint32_t k,
                          std::vector<VertexId>* followers = nullptr);

  const OracleStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  const Graph* graph_;
  const KOrder* order_;
  OracleStats stats_;

  EpochArray<uint8_t> anchor_;
  EpochArray<uint32_t> bump_;
  EpochArray<uint32_t> deg_minus_;
  EpochArray<uint8_t> in_heap_;
  EpochArray<uint8_t> candidate_;
  EpochArray<uint8_t> eliminated_;
  EpochArray<uint32_t> support_;
  std::vector<VertexId> unique_anchors_;
};

}  // namespace avt

#endif  // AVT_ANCHOR_FOLLOWER_ORACLE_H_
