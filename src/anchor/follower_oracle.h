// Fast, non-destructive follower computation over the K-order
// (generalization of the paper's Algorithm 3 to anchor *sets*).
//
// Given anchors S and threshold k, the followers F_k(S) are the unique
// maximal set F of non-anchor vertices outside C_k such that every member
// has at least k neighbors in C_k ∪ S ∪ F. The oracle finds F in two
// phases without touching the index:
//
//  1. Optimistic forward pass in K-order. Anchoring bumps the potential of
//     a neighbor w by one for every anchor positioned before w (anchors
//     after w are already counted by deg+(w), the invariant upper bound).
//     Visiting affected vertices in K-order position, w becomes a
//     candidate when
//         deg+(w) + deg-(w) + bump(w) >= k,
//     where deg-(w) counts candidate neighbors positioned before w.
//     Candidates propagate deg- to their later neighbors below the k-core.
//     An induction over positions shows every true follower becomes a
//     candidate (DESIGN.md), so the pass yields a superset of F.
//
//  2. Elimination fixpoint. A candidate's exact support counts neighbors
//     that are anchors, k-core members (core >= k), or surviving
//     candidates; candidates with support < k are removed until stable.
//     Because F stays inside the surviving set throughout and the final
//     survivor set is itself valid, the fixpoint equals F exactly.
//
// Unlike the single-anchor Algorithm 3, candidates may live on any level
// below k-1 (with several anchors a low-core vertex can reach k engaged
// neighbors); the pass therefore orders by full (level, tag) position.
//
// Phase 1 alone is exposed as UpperBound(): its candidate count is a
// certified upper bound on |F| at a fraction of a full query's cost
// (no support scans, no fixpoint). The lazy greedy pick loop uses it to
// decide which candidates deserve a full query — and because the bound
// is valid (not a stale heuristic), the lazy argmax is bit-identical to
// the exhaustive scan. See docs/PERFORMANCE.md.
//
// All scratch state is epoch-stamped and all hot vectors are reused
// across queries: evaluating a candidate anchor set is allocation-free
// and leaves the K-order untouched, which is what lets Greedy and IncAVT
// probe thousands of hypothetical sets per snapshot. Every cascade is
// templated over an adjacency view — any type exposing
// Neighbors(v) -> contiguous span in Graph's iteration order — so the
// oracle scans whichever backing the caller binds: the dynamic
// adjacency itself, a frozen CsrView (one-shot solvers), or a
// delta-maintained DynamicCsr that the CoreMaintainer patches in place
// under churn (the incremental tracker). All three iterate neighbors in
// the identical order, so results are bit-identical across backings.

#ifndef AVT_ANCHOR_FOLLOWER_ORACLE_H_
#define AVT_ANCHOR_FOLLOWER_ORACLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "corelib/korder.h"
#include "graph/graph.h"
#include "util/epoch.h"

namespace avt {

class DynamicCsr;

/// Work counters for a follower query (paper's "visited vertices").
struct OracleStats {
  uint64_t queries = 0;        // full CountFollowers evaluations
  uint64_t bound_queries = 0;  // phase-1-only UpperBound evaluations
  uint64_t visited = 0;        // vertices popped by forward passes
  uint64_t eliminated = 0;     // candidates removed by fixpoints

  void Reset() { *this = OracleStats{}; }
};

/// Read-only follower computation bound to a (graph, K-order) pair.
/// The referenced structures must outlive the oracle and stay consistent
/// (rebuild/maintain them through CoreMaintainer). An optional CsrView
/// snapshot of the same graph routes all neighbor scans through
/// contiguous storage; the caller must keep it in sync with the graph
/// (drop it via set_csr(nullptr) before mutating). Alternatively a
/// delta-maintained DynamicCsr — patched in lockstep with the graph by
/// CoreMaintainer — keeps the contiguous path live under churn; when
/// both are bound the maintained view wins.
class FollowerOracle {
 public:
  FollowerOracle(const Graph* graph, const KOrder* order,
                 const CsrView* csr = nullptr,
                 const DynamicCsr* dynamic_csr = nullptr)
      : graph_(graph), order_(order), csr_(csr), dcsr_(dynamic_csr) {
    ResizeScratch();
  }

  /// Re-binds after the underlying graph/order changed size.
  void ResizeScratch();

  /// Swaps the contiguous adjacency snapshot (nullptr = scan the graph).
  void set_csr(const CsrView* csr) { csr_ = csr; }

  /// Swaps the maintained adjacency mirror (nullptr = fall back to the
  /// frozen CsrView, then the graph).
  void set_dynamic_csr(const DynamicCsr* dynamic_csr) {
    dcsr_ = dynamic_csr;
  }

  /// Returns |F_k(anchors)|; optionally materializes the follower set
  /// (K-order position order). Anchors inside the k-core contribute
  /// nothing (handled gracefully); duplicate anchors are allowed.
  uint32_t CountFollowers(std::span<const VertexId> anchors, uint32_t k,
                          std::vector<VertexId>* followers = nullptr) {
    return CountFollowers(anchors, kNoVertex, k, followers);
  }

  /// Same, for the trial set anchors ∪ {extra} without materializing it
  /// (extra == kNoVertex means no extra anchor). This is the pick-loop
  /// hot call: no per-trial vector copy.
  uint32_t CountFollowers(std::span<const VertexId> anchors, VertexId extra,
                          uint32_t k,
                          std::vector<VertexId>* followers = nullptr);

  /// Certified upper bound on CountFollowers(anchors, extra, k): the
  /// phase-1 candidate count, skipping support scans and the elimination
  /// fixpoint. Guaranteed >= the exact count for identical inputs (the
  /// fixpoint only removes candidates).
  uint32_t UpperBound(std::span<const VertexId> anchors, VertexId extra,
                      uint32_t k);

  // --- marginal probes over a resident base cascade -----------------
  //
  // The pick loops evaluate UpperBound(S, x) for every candidate x of a
  // pool while S stays fixed; re-walking S's whole cascade per probe is
  // the dominant cost. BuildBase runs phase 1 for S once and keeps its
  // state resident; MarginalUpperBound(x) then *continues* the fixpoint
  // with x's seeds over epoch-cleared overlay arrays, touching only x's
  // marginal region, and returns exactly UpperBound(S, x, k). This is
  // sound because the phase-1 candidate set is the least fixpoint of a
  // monotone credit rule: influence flows only forward in K-order, so
  // continuing the ordered pass from the base fixpoint with extra seeds
  // reaches the trial set's fixpoint (tests/follower_oracle_test.cc pins
  // MarginalUpperBound == UpperBound on random graphs).
  //
  // Base state survives full CountFollowers queries (disjoint scratch);
  // it is invalidated by ResizeScratch or the next BuildBase.

  /// Runs and retains phase 1 for `anchors` at threshold k.
  void BuildBase(std::span<const VertexId> anchors, uint32_t k);
  bool HasBase() const { return base_valid_; }
  void InvalidateBase() { base_valid_ = false; }

  /// Phase-1 candidate count of base_anchors ∪ {x} (== UpperBound for
  /// that trial set), at the cost of x's marginal cascade only.
  uint32_t MarginalUpperBound(VertexId x);

  /// Base dependency region (anchors + phase-1 pops), for memoization.
  std::span<const VertexId> BaseRegionAnchors() const {
    return base_anchors_;
  }
  std::span<const VertexId> BaseRegionVisited() const {
    return base_visited_;
  }
  /// Vertices the last MarginalUpperBound popped beyond the base region
  /// (plus x itself, reported first).
  std::span<const VertexId> LastMarginalVisited() const {
    return marginal_visited_;
  }

  /// Vertices whose state the most recent query (full or bound) depended
  /// on: the unique anchors plus every vertex popped by the forward pass.
  /// The query result is a pure function of the edges incident to this
  /// region and of the K-order positions of region members and their
  /// neighbors — the soundness basis for IncAVT's cross-snapshot memo
  /// (entries are reused only while the region avoids churn-impacted
  /// vertices). Invalidated by the next query.
  std::span<const VertexId> LastRegionAnchors() const {
    return unique_anchors_;
  }
  std::span<const VertexId> LastRegionVisited() const { return visited_; }

  const OracleStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  /// Phase 1 for anchors ∪ {extra}: fills candidate_ / candidates_in_
  /// order_ / visited_ and returns the candidate count.
  template <typename Adjacency>
  uint32_t ForwardPass(const Adjacency& adj,
                       std::span<const VertexId> anchors, VertexId extra,
                       uint32_t k);

  /// Phase 2: elimination fixpoint over candidates_in_order_.
  template <typename Adjacency>
  uint32_t Eliminate(const Adjacency& adj, uint32_t k,
                     std::vector<VertexId>* followers);

  const Graph* graph_;
  const KOrder* order_;
  const CsrView* csr_;
  const DynamicCsr* dcsr_;
  OracleStats stats_;

  /// The phase-1 cascade, parameterized over the array bundle it writes
  /// (per-query scratch vs resident base) so both paths share one
  /// definition. Returns the candidate count.
  template <typename Adjacency>
  uint32_t RunCascade(const Adjacency& adj,
                      std::span<const VertexId> anchors, VertexId extra,
                      uint32_t k, EpochArray<uint8_t>& anchor_flags,
                      EpochArray<uint32_t>& bump,
                      EpochArray<uint32_t>& deg_minus,
                      EpochArray<uint8_t>& candidate,
                      std::vector<VertexId>& anchors_out,
                      std::vector<VertexId>& visited_out,
                      std::vector<VertexId>* candidates_out);

  template <typename Adjacency>
  uint32_t MarginalUpperBoundImpl(const Adjacency& adj, VertexId x);

  /// Single definition of the backing precedence (maintained mirror,
  /// then frozen snapshot, then dynamic adjacency): every query entry
  /// point dispatches through this so the rule cannot drift per method.
  template <typename F>
  decltype(auto) WithAdjacency(F&& f);

  EpochArray<uint8_t> anchor_;
  EpochArray<uint32_t> bump_;
  EpochArray<uint32_t> deg_minus_;
  EpochArray<uint8_t> in_heap_;
  EpochArray<uint8_t> candidate_;
  EpochArray<uint8_t> eliminated_;
  EpochArray<uint32_t> support_;

  // Resident base cascade (BuildBase) + per-probe overlays. The overlays
  // are the only state a marginal probe writes, so "resetting" a probe
  // is four O(1) epoch bumps.
  EpochArray<uint8_t> base_anchor_;
  EpochArray<uint32_t> base_bump_;
  EpochArray<uint32_t> base_deg_minus_;
  EpochArray<uint8_t> base_candidate_;
  EpochArray<uint32_t> d_bump_;
  EpochArray<uint32_t> d_deg_minus_;
  EpochArray<uint8_t> d_candidate_;
  EpochArray<uint8_t> d_in_heap_;
  std::vector<VertexId> base_anchors_;
  std::vector<VertexId> base_visited_;
  std::vector<VertexId> marginal_visited_;
  uint32_t base_k_ = 0;
  uint32_t base_count_ = 0;
  bool base_valid_ = false;

  // Hot vectors reused across queries (reserved by ResizeScratch).
  std::vector<VertexId> unique_anchors_;
  std::vector<VertexId> visited_;
  std::vector<VertexId> candidates_in_order_;
  std::vector<VertexId> review_;

  // Binary heap of (level, tag, vertex) reused across queries. A flat
  // POD key beats the seed's pair<pair<u64,u64>, VertexId> layout: one
  // comparison chain, no tuple machinery, contiguous storage.
  struct HeapItem {
    uint64_t level;
    uint64_t tag;
    VertexId vertex;
    // Min-heap on K-order position. Tags are unique within a level, so
    // the vertex id never decides.
    friend bool operator>(const HeapItem& a, const HeapItem& b) {
      if (a.level != b.level) return a.level > b.level;
      return a.tag > b.tag;
    }
  };
  std::vector<HeapItem> heap_;
};

}  // namespace avt

#endif  // AVT_ANCHOR_FOLLOWER_ORACLE_H_
