#include "anchor/greedy.h"

#include <atomic>
#include <queue>
#include <thread>

#include "anchor/candidates.h"
#include "anchor/follower_oracle.h"
#include "corelib/korder.h"

namespace avt {
namespace {

// Shared per-solve state: CSR snapshot, order, candidate pool. The pool
// is id-ascending (CollectAnchorCandidates guarantees it), which every
// pick strategy relies on for the common tie-break.
struct SolveContext {
  const Graph& graph;
  const CsrView& csr;
  const KOrder& order;
  uint32_t k;
  std::vector<VertexId> pool;
};

// One greedy pick evaluated eagerly: a full oracle query per candidate.
// Returns kNoVertex when the pool is exhausted. `taken` flags committed
// anchors. Tie-break: more followers first, then smaller id (the pool is
// id-ascending and the comparison is strict).
VertexId ScanPick(SolveContext& ctx, FollowerOracle& oracle,
                  const std::vector<VertexId>& chosen,
                  const std::vector<uint8_t>& taken,
                  uint64_t* candidates_visited) {
  VertexId best_vertex = kNoVertex;
  uint32_t best_followers = 0;
  for (VertexId x : ctx.pool) {
    if (taken[x]) continue;
    ++*candidates_visited;
    uint32_t followers = oracle.CountFollowers(chosen, x, ctx.k);
    if (best_vertex == kNoVertex || followers > best_followers) {
      best_followers = followers;
      best_vertex = x;
    }
  }
  return best_vertex;
}

// One greedy pick evaluated by `threads` workers. Deterministic: the
// reduction prefers more followers, then the smaller vertex id, which is
// also what the scan loop produces.
VertexId ParallelPick(SolveContext& ctx, uint32_t threads,
                      const std::vector<VertexId>& chosen,
                      const std::vector<uint8_t>& taken,
                      uint64_t* candidates_visited) {
  struct Local {
    VertexId vertex = kNoVertex;
    uint32_t followers = 0;
    uint64_t evaluated = 0;
  };
  std::vector<Local> locals(threads);
  std::atomic<size_t> cursor{0};

  auto worker = [&](uint32_t id) {
    FollowerOracle oracle(&ctx.graph, &ctx.order, &ctx.csr);
    Local& local = locals[id];
    while (true) {
      size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= ctx.pool.size()) break;
      VertexId x = ctx.pool[i];
      if (taken[x]) continue;
      ++local.evaluated;
      uint32_t followers = oracle.CountFollowers(chosen, x, ctx.k);
      if (local.vertex == kNoVertex || followers > local.followers ||
          (followers == local.followers && x < local.vertex)) {
        local.followers = followers;
        local.vertex = x;
      }
    }
  };
  std::vector<std::thread> pool_threads;
  pool_threads.reserve(threads);
  for (uint32_t t = 0; t < threads; ++t) pool_threads.emplace_back(worker, t);
  for (std::thread& t : pool_threads) t.join();

  Local best;
  for (const Local& local : locals) {
    *candidates_visited += local.evaluated;
    if (local.vertex == kNoVertex) continue;
    if (best.vertex == kNoVertex || local.followers > best.followers ||
        (local.followers == best.followers && local.vertex < best.vertex)) {
      best = local;
    }
  }
  return best.vertex;
}

// Lazy pick loop with certified bounds (see greedy.h for the strategy
// rationale). Per pick:
//
//   1. Refresh a cheap certified bound per live candidate: the oracle
//      retains S's phase-1 cascade once per pick (BuildBase) and each
//      candidate's bound is the marginal continuation of that fixpoint
//      (MarginalUpperBound == phase-1 count of S ∪ {x} >= F(S ∪ {x})),
//      costing only x's marginal region instead of a full re-walk.
//      (Bounds are NOT carried across picks: the objective is not
//      submodular, so a bound for S is not a bound for S ∪ {y}.)
//   2. Pop a max-heap keyed (value desc, id asc). A popped bound entry
//      is resolved with one full oracle query and re-pushed as exact;
//      the pick is accepted when the heap's top entry is exact.
//
// Why the accepted vertex equals the eager argmax, tie-break included:
// let the accepted exact entry be (g, i). Every other live candidate x
// still in the heap sits below it, so its entry (b_x, i_x) satisfies
// b_x < g, or b_x == g and i_x > i. Since b_x >= F(S ∪ {x}), every such
// x either has strictly fewer followers than g, or ties with a larger
// id — exactly the candidates the eager scan would reject. Re-pushed
// exact entries compare by their true counts, so the argument covers
// them directly.
std::vector<VertexId> LazyGreedy(SolveContext& ctx, FollowerOracle& oracle,
                                 uint32_t l, SolverResult* result) {
  struct Entry {
    uint32_t value;  // exact ? F(S ∪ {v}) : certified upper bound
    VertexId vertex;
    bool exact;
    bool operator<(const Entry& other) const {
      // max-heap by value, tie-break small id first. A vertex appears at
      // most once per pick, so (value, vertex) never ties.
      if (value != other.value) return value < other.value;
      return vertex > other.vertex;
    }
  };

  std::vector<uint8_t> taken(ctx.graph.NumVertices(), 0);
  std::vector<VertexId> chosen;
  std::priority_queue<Entry> heap;
  while (chosen.size() < l) {
    // Per-pick bound refresh over the live pool, as marginal probes of
    // the retained S-cascade.
    oracle.BuildBase(chosen, ctx.k);
    heap = std::priority_queue<Entry>();
    for (VertexId x : ctx.pool) {
      if (taken[x]) continue;
      ++result->bound_probes;
      heap.push({oracle.MarginalUpperBound(x), x, false});
    }
    if (heap.empty()) break;  // candidate pool exhausted

    while (!heap.top().exact) {
      Entry top = heap.top();
      heap.pop();
      ++result->candidates_visited;
      heap.push({oracle.CountFollowers(chosen, top.vertex, ctx.k),
                 top.vertex, true});
    }
    VertexId best = heap.top().vertex;
    chosen.push_back(best);
    taken[best] = 1;
  }
  return chosen;
}

}  // namespace

SolverResult GreedySolver::Solve(const Graph& graph, uint32_t k,
                                 uint32_t l) {
  SolverResult result;
  if (k == 0 || l == 0) return result;

  // One contiguous adjacency snapshot serves the whole solve: the
  // K-order build and every oracle cascade scan it.
  CsrView csr = graph.BuildCsr();
  KOrder order;
  order.Build(csr);
  FollowerOracle oracle(&graph, &order, &csr);

  SolveContext ctx{graph, csr, order, k,
                   options_.prune_candidates
                       ? CollectAnchorCandidates(graph, order, k)
                       : CollectUnprunedCandidates(graph, order, k)};

  std::vector<VertexId> chosen;
  if (options_.num_threads <= 1 && options_.lazy) {
    chosen = LazyGreedy(ctx, oracle, l, &result);
  } else {
    // Algorithm 2: l picks, each taking the candidate with the most
    // followers given the anchors already chosen. Zero-marginal picks
    // are allowed (an anchor always joins C_k(S) itself), matching the
    // paper's objective |C_k(S)| = |C_k| + |S| + |F|.
    std::vector<uint8_t> taken(graph.NumVertices(), 0);
    for (uint32_t pick = 0; pick < l; ++pick) {
      VertexId best =
          options_.num_threads > 1
              ? ParallelPick(ctx, options_.num_threads, chosen, taken,
                             &result.candidates_visited)
              : ScanPick(ctx, oracle, chosen, taken,
                         &result.candidates_visited);
      if (best == kNoVertex) break;  // candidate pool exhausted
      chosen.push_back(best);
      taken[best] = 1;
    }
  }

  result.anchors = chosen;
  if (!chosen.empty()) {
    oracle.CountFollowers(chosen, k, &result.followers);
  }
  result.cascade_visited = oracle.stats().visited;
  return result;
}

}  // namespace avt
