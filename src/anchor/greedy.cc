#include "anchor/greedy.h"

#include <atomic>
#include <queue>
#include <thread>

#include "anchor/candidates.h"
#include "anchor/follower_oracle.h"
#include "corelib/korder.h"

namespace avt {
namespace {

// Shared per-solve state: graph, order, candidate pool.
struct SolveContext {
  const Graph& graph;
  const KOrder& order;
  uint32_t k;
  std::vector<VertexId> pool;
};

// One greedy pick evaluated serially. Returns kNoVertex when the pool is
// exhausted. `taken` flags committed anchors.
VertexId SerialPick(SolveContext& ctx, FollowerOracle& oracle,
                    const std::vector<VertexId>& chosen,
                    const std::vector<uint8_t>& taken,
                    uint64_t* candidates_visited) {
  VertexId best_vertex = kNoVertex;
  uint32_t best_followers = 0;
  std::vector<VertexId> trial;
  for (VertexId x : ctx.pool) {
    if (taken[x]) continue;
    trial = chosen;
    trial.push_back(x);
    ++*candidates_visited;
    uint32_t followers = oracle.CountFollowers(trial, ctx.k);
    if (best_vertex == kNoVertex || followers > best_followers) {
      best_followers = followers;
      best_vertex = x;
    }
  }
  return best_vertex;
}

// One greedy pick evaluated by `threads` workers. Deterministic: the
// reduction prefers more followers, then the smaller vertex id, which is
// also what the serial loop produces (pool is id-ascending).
VertexId ParallelPick(SolveContext& ctx, uint32_t threads,
                      const std::vector<VertexId>& chosen,
                      const std::vector<uint8_t>& taken,
                      uint64_t* candidates_visited) {
  struct Local {
    VertexId vertex = kNoVertex;
    uint32_t followers = 0;
    uint64_t evaluated = 0;
  };
  std::vector<Local> locals(threads);
  std::atomic<size_t> cursor{0};

  auto worker = [&](uint32_t id) {
    FollowerOracle oracle(&ctx.graph, &ctx.order);
    std::vector<VertexId> trial;
    Local& local = locals[id];
    while (true) {
      size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= ctx.pool.size()) break;
      VertexId x = ctx.pool[i];
      if (taken[x]) continue;
      trial = chosen;
      trial.push_back(x);
      ++local.evaluated;
      uint32_t followers = oracle.CountFollowers(trial, ctx.k);
      if (local.vertex == kNoVertex || followers > local.followers ||
          (followers == local.followers && x < local.vertex)) {
        local.followers = followers;
        local.vertex = x;
      }
    }
  };
  std::vector<std::thread> pool_threads;
  pool_threads.reserve(threads);
  for (uint32_t t = 0; t < threads; ++t) pool_threads.emplace_back(worker, t);
  for (std::thread& t : pool_threads) t.join();

  Local best;
  for (const Local& local : locals) {
    *candidates_visited += local.evaluated;
    if (local.vertex == kNoVertex) continue;
    if (best.vertex == kNoVertex || local.followers > best.followers ||
        (local.followers == best.followers && local.vertex < best.vertex)) {
      best = local;
    }
  }
  return best.vertex;
}

// CELF-style lazy greedy: cached gains are optimistic bounds; only the
// head of the priority queue is refreshed each step. Approximate (the
// objective is not submodular) but typically near-identical and much
// cheaper on large pools.
std::vector<VertexId> LazyGreedy(SolveContext& ctx, FollowerOracle& oracle,
                                 uint32_t l,
                                 uint64_t* candidates_visited) {
  struct Entry {
    uint32_t gain;
    VertexId vertex;
    uint32_t evaluated_at;  // pick index of the cached gain
    bool operator<(const Entry& other) const {
      // max-heap by gain, tie-break small id first.
      if (gain != other.gain) return gain < other.gain;
      return vertex > other.vertex;
    }
  };
  std::priority_queue<Entry> heap;
  std::vector<VertexId> trial;
  for (VertexId x : ctx.pool) {
    trial.assign(1, x);
    ++*candidates_visited;
    heap.push({oracle.CountFollowers(trial, ctx.k), x, 0});
  }

  std::vector<VertexId> chosen;
  uint32_t current_followers = 0;
  while (chosen.size() < l && !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    uint32_t pick = static_cast<uint32_t>(chosen.size()) + 1;
    if (top.evaluated_at == pick) {
      chosen.push_back(top.vertex);
      current_followers += top.gain;
      continue;
    }
    trial = chosen;
    trial.push_back(top.vertex);
    ++*candidates_visited;
    uint32_t total = oracle.CountFollowers(trial, ctx.k);
    uint32_t gain = total > current_followers ? total - current_followers
                                              : 0;
    heap.push({gain, top.vertex, pick});
  }
  return chosen;
}

}  // namespace

SolverResult GreedySolver::Solve(const Graph& graph, uint32_t k,
                                 uint32_t l) {
  SolverResult result;
  if (k == 0 || l == 0) return result;

  KOrder order;
  order.Build(graph);
  FollowerOracle oracle(&graph, &order);

  SolveContext ctx{graph, order, k,
                   options_.prune_candidates
                       ? CollectAnchorCandidates(graph, order, k)
                       : CollectUnprunedCandidates(graph, order, k)};

  std::vector<VertexId> chosen;
  if (options_.lazy) {
    chosen = LazyGreedy(ctx, oracle, l, &result.candidates_visited);
  } else {
    // Algorithm 2: l picks, each taking the candidate with the most
    // followers given the anchors already chosen. Zero-marginal picks
    // are allowed (an anchor always joins C_k(S) itself), matching the
    // paper's objective |C_k(S)| = |C_k| + |S| + |F|.
    std::vector<uint8_t> taken(graph.NumVertices(), 0);
    for (uint32_t pick = 0; pick < l; ++pick) {
      VertexId best =
          options_.num_threads > 1
              ? ParallelPick(ctx, options_.num_threads, chosen, taken,
                             &result.candidates_visited)
              : SerialPick(ctx, oracle, chosen, taken,
                           &result.candidates_visited);
      if (best == kNoVertex) break;  // candidate pool exhausted
      chosen.push_back(best);
      taken[best] = 1;
    }
  }

  result.anchors = chosen;
  if (!chosen.empty()) {
    oracle.CountFollowers(chosen, k, &result.followers);
  }
  result.cascade_visited = oracle.stats().visited;
  return result;
}

}  // namespace avt
