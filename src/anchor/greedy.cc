#include "anchor/greedy.h"

#include "anchor/candidates.h"
#include "anchor/follower_oracle.h"
#include "anchor/trial_engine.h"
#include "corelib/korder.h"

namespace avt {

SolverResult GreedySolver::Solve(const Graph& graph, uint32_t k,
                                 uint32_t l) {
  SolverResult result;
  if (k == 0 || l == 0) return result;

  // One contiguous adjacency snapshot serves the whole solve: the
  // K-order build and every oracle cascade scan it. The view lives in
  // the solver so back-to-back solves reuse its buffers.
  graph.BuildCsr(&csr_);
  const CsrView& csr = csr_;
  KOrder order;
  order.Build(csr);

  // Candidate filtering scans the snapshot too — identical pool either
  // way (the view preserves neighbor order), contiguous reads.
  std::vector<VertexId> pool = options_.prune_candidates
                                   ? CollectAnchorCandidates(csr, order, k)
                                   : CollectUnprunedCandidates(csr, order, k);

  // Algorithm 2: l picks, each taking the candidate with the most
  // followers given the anchors already chosen — evaluated by the trial
  // engine (per-worker oracles, deterministic sharded reduction; serial
  // when num_threads <= 1). Both strategies share the engine:
  //   * lazy (default) — certified-bound CELF per shard (see greedy.h);
  //   * eager scan — one full query per candidate, the reference loop.
  // Zero-marginal picks are allowed (an anchor always joins C_k(S)
  // itself), matching the paper's objective |C_k(S)| = |C_k| + |S| + |F|.
  TrialEngine engine(&graph, &order, &csr, options_.num_threads);
  TrialPolicy policy;
  policy.lazy = options_.lazy;

  std::vector<uint8_t> taken(graph.NumVertices(), 0);
  std::vector<VertexId> chosen;
  std::vector<VertexId> live;
  live.reserve(pool.size());
  for (uint32_t pick = 0; pick < l; ++pick) {
    // The pool is id-ascending (CollectAnchorCandidates guarantees it);
    // the engine's reduction does not depend on that, but keeping the
    // order makes the serial lazy heap bit-compatible with PR 2.
    live.clear();
    for (VertexId x : pool) {
      if (!taken[x]) live.push_back(x);
    }
    if (live.empty()) break;  // candidate pool exhausted
    TrialOutcome outcome = engine.Evaluate(live, chosen, k, policy);
    result.candidates_visited += outcome.full_queries;
    result.bound_probes += outcome.bound_probes;
    if (outcome.vertex == kNoVertex) break;
    chosen.push_back(outcome.vertex);
    taken[outcome.vertex] = 1;
  }

  result.anchors = chosen;
  if (!chosen.empty()) {
    FollowerOracle oracle(&graph, &order, &csr);
    oracle.CountFollowers(chosen, k, &result.followers);
    result.cascade_visited = oracle.stats().visited;
  }
  result.cascade_visited += engine.CascadeVisited();
  return result;
}

}  // namespace avt
