// The paper's optimized Greedy algorithm (Section 4), plus two optional
// execution strategies used by the ablation benches.
//
// Per pick, evaluates the marginal follower gain F(S ∪ {x}) for every
// Theorem-3 candidate x via the non-destructive FollowerOracle and keeps
// the best. Both accelerations of Section 4 are active by default:
//   4.1 candidate reduction — only vertices preceding a (k-1)-shell
//       neighbor in K-order are probed;
//   4.2 fast follower computation — order-based cascade instead of a
//       fresh core decomposition per candidate.
//
// Execution strategies:
//   * num_threads > 1 — candidates of each pick are evaluated in
//     parallel by worker threads sharing the read-only K-order (each with
//     its own oracle scratch). Result is bit-identical to serial: ties
//     break toward the smallest vertex id.
//   * lazy = true — CELF-style lazy re-evaluation: cached gains from
//     earlier picks are used as optimistic bounds and only the queue head
//     is re-evaluated. The anchored-k-core objective is NOT submodular
//     (the paper proves inapproximability), so lazy mode is a heuristic
//     accelerator; the ablation bench quantifies its quality/time
//     trade-off.

#ifndef AVT_ANCHOR_GREEDY_H_
#define AVT_ANCHOR_GREEDY_H_

#include "anchor/solver.h"

namespace avt {

/// Tuning knobs for GreedySolver.
struct GreedyOptions {
  bool prune_candidates = true;
  uint32_t num_threads = 1;
  bool lazy = false;
};

/// Optimized greedy anchored-k-core solver.
class GreedySolver : public AnchorSolver {
 public:
  GreedySolver() = default;
  explicit GreedySolver(bool prune_candidates) {
    options_.prune_candidates = prune_candidates;
  }
  explicit GreedySolver(const GreedyOptions& options) : options_(options) {}

  SolverResult Solve(const Graph& graph, uint32_t k, uint32_t l) override;

  std::string name() const override {
    if (options_.lazy) return "Greedy-lazy";
    if (options_.num_threads > 1) return "Greedy-parallel";
    return options_.prune_candidates ? "Greedy" : "Greedy-nopruning";
  }

 private:
  GreedyOptions options_;
};

}  // namespace avt

#endif  // AVT_ANCHOR_GREEDY_H_
