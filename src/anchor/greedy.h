// The paper's optimized Greedy algorithm (Section 4), plus the execution
// strategies used by the ablation benches.
//
// Per pick, the algorithm needs argmax over candidates x of the follower
// count F(S ∪ {x}) given the anchors S already chosen. Both accelerations
// of Section 4 are active in every mode:
//   4.1 candidate reduction — only vertices preceding a (k-1)-shell
//       neighbor in K-order are probed;
//   4.2 fast follower computation — order-based cascade instead of a
//       fresh core decomposition per candidate.
//
// Execution strategies for the pick loop (both route through
// anchor/trial_engine.h and compose freely with num_threads):
//   * lazy (DEFAULT) — CELF-style lazy evaluation with *certified* upper
//     bounds. The anchored-k-core objective is not submodular (the paper
//     proves inapproximability), so the classic CELF trick of reusing
//     stale gains as bounds is unsound here: a candidate's gain can grow
//     as S grows, and a stale bound would silently change the argmax.
//     Instead, each pick refreshes a cheap certified bound per candidate
//     (FollowerOracle::UpperBound — the phase-1 cascade without the
//     elimination fixpoint), then pops a max-heap keyed (bound desc,
//     id asc), fully evaluating only the top until an exact entry
//     dominates every remaining bound. Because bound >= exact always
//     holds for the same trial set, the accepted pick is provably the
//     exhaustive argmax under the same tie-break (followers desc, id
//     asc) — anchors are bit-identical to the serial scan while full
//     oracle queries collapse to a handful per pick.
//   * lazy = false ("scan") — the textbook loop: one full oracle query
//     per candidate per pick. Kept as the reference for tests and the
//     perf gate.
//
// num_threads > 1 distributes either strategy over a worker pool with
// one FollowerOracle per worker: lazy shards the candidate heap into
// fixed per-thread slices, eager fans full queries out with work
// stealing, and both reduce winners by (followers desc, id asc) — the
// anchors stay bit-identical to the serial path at every thread count
// (the determinism argument lives in trial_engine.h; enforced by
// tests/parallel_determinism_test.cc).
//
// Every mode snapshots the graph into a CsrView once per solve and routes
// the K-order build plus all cascade scans through contiguous spans.

#ifndef AVT_ANCHOR_GREEDY_H_
#define AVT_ANCHOR_GREEDY_H_

#include "anchor/solver.h"
#include "graph/csr.h"

namespace avt {

/// Tuning knobs for GreedySolver.
struct GreedyOptions {
  bool prune_candidates = true;
  /// Trial-engine worker count; <= 1 runs serial. Output is identical at
  /// every thread count.
  uint32_t num_threads = 1;
  /// Lazy pick loop with certified bounds (see file comment). Identical
  /// output to the eager scan, much cheaper. Composes with num_threads.
  bool lazy = true;
};

/// Optimized greedy anchored-k-core solver.
class GreedySolver : public AnchorSolver {
 public:
  GreedySolver() = default;
  explicit GreedySolver(bool prune_candidates) {
    options_.prune_candidates = prune_candidates;
  }
  explicit GreedySolver(const GreedyOptions& options) : options_(options) {}

  SolverResult Solve(const Graph& graph, uint32_t k, uint32_t l) override;

  std::string name() const override {
    if (!options_.prune_candidates) return "Greedy-nopruning";
    if (options_.num_threads > 1) return "Greedy-parallel";
    if (!options_.lazy) return "Greedy-scan";
    return "Greedy";
  }

 private:
  GreedyOptions options_;
  /// Per-solve adjacency snapshot, kept across Solve calls so repeated
  /// solves (StaticAvtTracker re-solving every snapshot) refill the same
  /// buffers instead of reallocating offsets/targets each time.
  CsrView csr_;
};

}  // namespace avt

#endif  // AVT_ANCHOR_GREEDY_H_
