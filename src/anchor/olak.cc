#include "anchor/olak.h"

#include <queue>

#include "anchor/anchored_core.h"
#include "corelib/korder.h"
#include "corelib/layers.h"
#include "util/epoch.h"

namespace avt {
namespace {

// Evaluates the follower count of anchoring `x` on top of the pinned
// layer structure `layers` (anchors already pinned are kCoreLayer-free).
// Region discovery: BFS from x's shell neighbors along shell vertices
// with non-decreasing layer index (OLAK's follower lemma: a saved vertex
// chain never descends layers), then an elimination fixpoint computes the
// exact follower set within the region.
uint32_t EvaluateCandidate(const Graph& graph, const OnionLayers& layers,
                           VertexId x, uint32_t k,
                           EpochArray<uint8_t>& in_region,
                           EpochArray<uint32_t>& support,
                           uint64_t* visited,
                           std::vector<VertexId>* followers_out) {
  in_region.Clear();
  support.Clear();

  std::vector<VertexId> region;
  std::queue<VertexId> bfs;
  for (VertexId w : graph.Neighbors(x)) {
    if (layers.InCore(w) || w == x) continue;
    if (!in_region.Get(w)) {
      in_region.Set(w, 1);
      bfs.push(w);
    }
  }
  while (!bfs.empty()) {
    VertexId w = bfs.front();
    bfs.pop();
    region.push_back(w);
    ++*visited;
    for (VertexId y : graph.Neighbors(w)) {
      if (layers.InCore(y) || y == x || in_region.Get(y)) continue;
      if (layers.layer[y] >= layers.layer[w]) {
        in_region.Set(y, 1);
        bfs.push(y);
      }
    }
  }

  // Optimistic region -> eliminate members short of k supporters.
  // Supporters: k-core members (pinned anchors included by the pinned
  // peel), the candidate anchor x, and surviving region members.
  std::queue<VertexId> review;
  for (VertexId w : region) {
    uint32_t s = 0;
    for (VertexId y : graph.Neighbors(w)) {
      if (layers.InCore(y) || y == x || in_region.Get(y)) ++s;
    }
    support.Set(w, s);
    if (s < k) review.push(w);
  }
  uint32_t alive = static_cast<uint32_t>(region.size());
  while (!review.empty()) {
    VertexId w = review.front();
    review.pop();
    if (!in_region.Get(w)) continue;
    if (support.Get(w) >= k) continue;
    in_region.Set(w, 0);
    --alive;
    for (VertexId y : graph.Neighbors(w)) {
      if (y != x && !layers.InCore(y) && in_region.Get(y)) {
        support.Add(y, static_cast<uint32_t>(-1));
        if (support.Get(y) < k) review.push(y);
      }
    }
  }
  if (followers_out) {
    followers_out->clear();
    for (VertexId w : region) {
      if (in_region.Get(w)) followers_out->push_back(w);
    }
  }
  return alive;
}

}  // namespace

SolverResult OlakSolver::Solve(const Graph& graph, uint32_t k, uint32_t l) {
  SolverResult result;
  if (k == 0 || l == 0) return result;

  EpochArray<uint8_t> in_region(graph.NumVertices());
  EpochArray<uint32_t> support(graph.NumVertices());

  std::vector<VertexId> anchors;
  std::vector<uint8_t> taken(graph.NumVertices(), 0);
  for (uint32_t pick = 0; pick < l; ++pick) {
    // Re-peel with committed anchors pinned (OLAK's maintenance step).
    OnionLayers layers = ComputeOnionLayers(graph, k, anchors);

    VertexId best_vertex = kNoVertex;
    uint32_t best_followers = 0;
    for (VertexId x = 0; x < graph.NumVertices(); ++x) {
      if (taken[x] || layers.InCore(x) || graph.Degree(x) == 0) continue;
      ++result.candidates_visited;
      uint32_t followers =
          EvaluateCandidate(graph, layers, x, k, in_region, support,
                            &result.cascade_visited, nullptr);
      if (best_vertex == kNoVertex || followers > best_followers) {
        best_followers = followers;
        best_vertex = x;
      }
    }
    if (best_vertex == kNoVertex) break;
    anchors.push_back(best_vertex);
    taken[best_vertex] = 1;
  }

  result.anchors = anchors;
  result.followers = ComputeAnchoredKCore(graph, k, anchors).followers;
  return result;
}

}  // namespace avt
