// OLAK baseline (Zhang et al., "OLAK: an efficient algorithm to prevent
// unraveling in social networks", PVLDB 2017), reimplemented for
// comparison as in the paper's Section 6.
//
// Differences from the paper's optimized Greedy that give OLAK its
// measured cost profile (slowest runtime, most visited candidates):
//   * the candidate pool is every non-k-core vertex with a neighbor —
//     no Theorem-3 K-order pruning;
//   * follower evaluation per candidate uses the onion-layer structure:
//     a bounded BFS collects the shell region reachable from the
//     candidate along non-decreasing layers, then an elimination fixpoint
//     extracts the exact follower set of that region;
//   * after each committed anchor the layer structure is recomputed with
//     the chosen anchors pinned (OLAK's own maintenance strategy).

#ifndef AVT_ANCHOR_OLAK_H_
#define AVT_ANCHOR_OLAK_H_

#include "anchor/solver.h"

namespace avt {

/// Onion-layer-based anchored-k-core baseline.
class OlakSolver : public AnchorSolver {
 public:
  SolverResult Solve(const Graph& graph, uint32_t k, uint32_t l) override;
  std::string name() const override { return "OLAK"; }
};

}  // namespace avt

#endif  // AVT_ANCHOR_OLAK_H_
