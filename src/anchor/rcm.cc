#include "anchor/rcm.h"

#include <algorithm>

#include "anchor/anchored_core.h"

#include "corelib/korder.h"
#include "corelib/decomposition.h"

namespace avt {

SolverResult RcmSolver::Solve(const Graph& graph, uint32_t k, uint32_t l) {
  SolverResult result;
  if (k == 0 || l == 0) return result;
  const VertexId n = graph.NumVertices();

  std::vector<VertexId> anchors;
  std::vector<uint8_t> taken(n, 0);
  uint32_t committed_followers = 0;

  for (uint32_t pick = 0; pick < l; ++pick) {
    // Engagement state given committed anchors: members of C_k(anchors).
    AnchoredCoreResult state = ComputeAnchoredKCore(graph, k, anchors);
    std::vector<uint8_t> engaged(n, 0);
    for (VertexId v : state.members) engaged[v] = 1;

    // Residual degree of non-engaged vertices.
    std::vector<uint32_t> residual(n, 0);
    for (VertexId v = 0; v < n; ++v) {
      if (engaged[v]) continue;
      uint32_t have = 0;
      for (VertexId w : graph.Neighbors(v)) have += engaged[w];
      residual[v] = have >= k ? 0 : k - have;
    }

    // Anchor score: cheap-to-convert shell neighbors weigh most.
    std::vector<std::pair<double, VertexId>> scored;
    for (VertexId x = 0; x < n; ++x) {
      if (taken[x] || engaged[x] || graph.Degree(x) == 0) continue;
      double score = 0;
      for (VertexId v : graph.Neighbors(x)) {
        if (!engaged[v] && residual[v] > 0) {
          score += 1.0 / static_cast<double>(residual[v]);
        }
      }
      if (score > 0) scored.emplace_back(score, x);
    }
    if (scored.empty()) break;
    uint32_t verify = std::min<uint32_t>(
        verify_top_, static_cast<uint32_t>(scored.size()));
    std::partial_sort(
        scored.begin(), scored.begin() + verify, scored.end(),
        [](const auto& a, const auto& b) {
          return a.first != b.first ? a.first > b.first : a.second < b.second;
        });

    // Exact verification of the shortlist.
    VertexId best_vertex = kNoVertex;
    uint32_t best_followers = 0;
    std::vector<VertexId> trial;
    for (uint32_t i = 0; i < verify; ++i) {
      VertexId x = scored[i].second;
      trial = anchors;
      trial.push_back(x);
      ++result.candidates_visited;
      uint32_t followers = CountFollowersExact(graph, k, trial);
      result.cascade_visited += graph.Degree(x);
      if (best_vertex == kNoVertex || followers > best_followers) {
        best_followers = followers;
        best_vertex = x;
      }
    }
    if (best_vertex == kNoVertex) break;
    anchors.push_back(best_vertex);
    taken[best_vertex] = 1;
    committed_followers = best_followers;
  }
  (void)committed_followers;

  result.anchors = anchors;
  result.followers = ComputeAnchoredKCore(graph, k, anchors).followers;
  return result;
}

}  // namespace avt
