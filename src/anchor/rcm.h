// RCM baseline (Laishram et al., "Residual Core Maximization", SDM 2020),
// adapted as the paper's second comparison algorithm.
//
// RCM's key idea: most anchors are only useful through shell vertices
// that are a few supporters short of k. The residual degree of a shell
// vertex v is r(v) = k - |engaged neighbors| (engaged = k-core members,
// committed anchors, and their confirmed followers); vertices with small
// positive r are cheap to convert. Candidates are scored by
//     score(x) = sum over shell neighbors v of x with r(v) > 0 of 1/r(v),
// the top scorers are verified with an exact anchored evaluation, and the
// best verified candidate is committed. This reproduces RCM's profile of
// cheap scoring sweeps plus a handful of exact evaluations per pick —
// faster than OLAK, usually close to Greedy in quality.

#ifndef AVT_ANCHOR_RCM_H_
#define AVT_ANCHOR_RCM_H_

#include "anchor/solver.h"

namespace avt {

/// Residual-degree scored anchored-k-core baseline.
class RcmSolver : public AnchorSolver {
 public:
  /// `verify_top` controls how many top-scoring candidates get an exact
  /// follower evaluation per pick (RCM's candidate-anchor selection).
  explicit RcmSolver(uint32_t verify_top = 16) : verify_top_(verify_top) {}

  SolverResult Solve(const Graph& graph, uint32_t k, uint32_t l) override;
  std::string name() const override { return "RCM"; }

 private:
  uint32_t verify_top_;
};

}  // namespace avt

#endif  // AVT_ANCHOR_RCM_H_
