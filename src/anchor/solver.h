// Common interface for single-snapshot anchored-k-core solvers.
//
// A solver receives one graph snapshot, a threshold k and a budget l and
// returns an anchor set of size <= l plus its follower set. Four
// implementations exist:
//   GreedySolver     — the paper's optimized Greedy (Theorem-3 pruning +
//                      order-based follower oracle);
//   OlakSolver       — the OLAK baseline [37] (onion layers, unpruned
//                      candidate pool, per-pick re-peel);
//   RcmSolver        — the RCM baseline [23] (residual-degree anchor
//                      scores, exact verification of top scorers);
//   BruteForceSolver — exact subset enumeration (case study only).
//
// Solvers are stateless across calls except for accumulated work counters,
// so one instance can serve a whole snapshot sequence (the paper's OLAK /
// RCM / Greedy rows re-run the solver per snapshot).

#ifndef AVT_ANCHOR_SOLVER_H_
#define AVT_ANCHOR_SOLVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace avt {

/// Output of one anchored-k-core query.
struct SolverResult {
  std::vector<VertexId> anchors;
  std::vector<VertexId> followers;
  /// Candidate anchors examined with a full follower query (the paper's
  /// "visited vertices" metric). The lazy greedy collapses this to a
  /// handful per pick; cheap bound probes are counted separately below.
  uint64_t candidates_visited = 0;
  /// Vertices touched by follower computations (finer-grained work).
  uint64_t cascade_visited = 0;
  /// Phase-1-only UpperBound probes issued by the lazy pick loop (zero
  /// for eager strategies). One probe costs well under half a full query.
  uint64_t bound_probes = 0;

  uint32_t num_followers() const {
    return static_cast<uint32_t>(followers.size());
  }
};

/// Abstract single-snapshot solver.
class AnchorSolver {
 public:
  virtual ~AnchorSolver() = default;

  /// Finds up to l anchors maximizing followers on `graph` at threshold k.
  virtual SolverResult Solve(const Graph& graph, uint32_t k, uint32_t l) = 0;

  /// Short identifier used in benchmark output ("Greedy", "OLAK", ...).
  virtual std::string name() const = 0;
};

}  // namespace avt

#endif  // AVT_ANCHOR_SOLVER_H_
