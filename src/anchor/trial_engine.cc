#include "anchor/trial_engine.h"

#include <algorithm>
#include <numeric>
#include <queue>

namespace avt {
namespace {

/// Lazy heap entry, max-heap by value with smaller id first on ties —
/// the common tie-break of every pick loop. A vertex appears at most
/// once per call, so (value, vertex) never fully ties.
struct LazyEntry {
  uint32_t value;  // exact ? F(base ∪ {v}) : certified upper bound
  VertexId vertex;
  bool exact;
  bool operator<(const LazyEntry& other) const {
    if (value != other.value) return value < other.value;
    return vertex > other.vertex;
  }
};

/// Per-worker winner candidate (eager mode).
struct WorkerBest {
  VertexId vertex = kNoVertex;
  uint32_t followers = 0;
  uint64_t full_queries = 0;
};

bool Improves(const WorkerBest& best, uint32_t followers, VertexId vertex) {
  if (best.vertex == kNoVertex) return true;
  if (followers != best.followers) return followers > best.followers;
  return vertex < best.vertex;
}

/// Below this many probes per worker the fork-join wakeup plus the
/// per-worker base-cascade rebuild cost more than the probes they
/// spread; the serial path computes the identical bounds, so the
/// cutover changes nothing observable. (BENCH_PR3's IncAVT arm lost
/// 1.4x at 8 threads precisely because steady-state pools are this
/// small.)
constexpr size_t kMinProbesPerWorker = 8;

}  // namespace

TrialEngine::TrialEngine(const Graph* graph, const KOrder* order,
                         const CsrView* csr, uint32_t num_threads,
                         const DynamicCsr* dynamic_csr)
    : num_threads_(std::max<uint32_t>(1, num_threads)), order_(order) {
  if (num_threads_ > 1) pool_ = std::make_unique<ThreadPool>(num_threads_);
  oracles_.reserve(num_threads_);
  for (uint32_t w = 0; w < num_threads_; ++w) {
    oracles_.push_back(
        std::make_unique<FollowerOracle>(graph, order, csr, dynamic_csr));
  }
}

void TrialEngine::ResizeScratch() {
  for (auto& oracle : oracles_) oracle->ResizeScratch();
}

uint64_t TrialEngine::CascadeVisited() const {
  uint64_t total = 0;
  for (const auto& oracle : oracles_) total += oracle->stats().visited;
  return total;
}

TrialOutcome TrialEngine::Evaluate(std::span<const VertexId> live,
                                   std::span<const VertexId> base,
                                   uint32_t k, const TrialPolicy& policy) {
  TrialOutcome outcome;
  if (live.empty()) return outcome;

  if (policy.lazy) {
    // --- Phase 1: one certified bound per candidate, partition-parallel.
    // Each bound is a pure function of (base, candidate, k) — the
    // marginal probe continues the worker's private resident base
    // cascade over epoch-reset overlays — so the filled array is
    // identical no matter which worker computed which slot, or whether
    // any fan-out happened at all.
    bounds_.resize(live.size());
    const bool fan_out =
        pool_ != nullptr &&
        live.size() >= static_cast<size_t>(num_threads_) * kMinProbesPerWorker;
    if (!fan_out) {
      FollowerOracle& oracle = *oracles_[0];
      oracle.BuildBase(base, k);
      for (size_t i = 0; i < live.size(); ++i) {
        bounds_[i] = oracle.MarginalUpperBound(live[i]);
      }
    } else {
      // Graph-region partition: candidates sorted by K-order position
      // (level, tag), then block-split, so one worker's probes cascade
      // through neighboring K-order state instead of striding the whole
      // order. Purely a locality choice — the winner and counters never
      // depend on the partition.
      perm_.resize(live.size());
      std::iota(perm_.begin(), perm_.end(), 0u);
      const KOrder* order = order_;
      std::sort(perm_.begin(), perm_.end(),
                [order, live](uint32_t a, uint32_t b) {
                  const VertexId u = live[a];
                  const VertexId v = live[b];
                  const uint32_t lu = order->CoreOf(u);
                  const uint32_t lv = order->CoreOf(v);
                  if (lu != lv) return lu < lv;
                  const uint64_t tu = order->TagOf(u);
                  const uint64_t tv = order->TagOf(v);
                  if (tu != tv) return tu < tv;
                  return u < v;
                });
      const uint32_t workers = num_threads_;
      pool_->Run([&](uint32_t w) {
        const size_t lo = ThreadPool::BlockBegin(live.size(), workers, w);
        const size_t hi = ThreadPool::BlockEnd(live.size(), workers, w);
        if (lo >= hi) return;
        FollowerOracle& oracle = *oracles_[w];
        oracle.BuildBase(base, k);
        for (size_t j = lo; j < hi; ++j) {
          const uint32_t i = perm_[j];
          bounds_[i] = oracle.MarginalUpperBound(live[i]);
        }
      });
    }
    outcome.bound_probes = live.size();

    // --- Phase 2: one GLOBAL certified-bound CELF heap, serial resolve.
    // Exactly the serial discipline: pop the (value desc, id asc) top;
    // settle with zero further queries if it cannot beat the floor;
    // accept it if exact; otherwise resolve it with ONE full query and
    // re-insert. Only the global winner is ever resolved exactly, so
    // full_queries is independent of the thread count.
    std::priority_queue<LazyEntry> heap;
    for (size_t i = 0; i < live.size(); ++i) {
      heap.push({bounds_[i], live[i], false});
    }
    FollowerOracle& resolver = *oracles_[0];
    while (!heap.empty()) {
      LazyEntry top = heap.top();
      if (policy.gate && top.value <= policy.floor) break;  // settled
      if (top.exact) {
        outcome.vertex = top.vertex;
        outcome.followers = top.value;
        break;
      }
      heap.pop();
      ++outcome.full_queries;
      heap.push({resolver.CountFollowers(base, top.vertex, k), top.vertex,
                 true});
    }
    return outcome;
  }

  // Eager: one full query per candidate, fanned out with work stealing.
  // The per-worker running best depends on which indices the worker
  // ran, but the reduction below recovers the unique global (followers
  // desc, id asc) maximum from any partition; the query count is
  // |live| regardless of the thread count.
  std::vector<WorkerBest> bests(num_threads_);
  ParallelFor(pool_.get(), live.size(), /*grain=*/8,
              [&](uint32_t w, size_t i) {
                FollowerOracle& oracle = *oracles_[w];
                WorkerBest& best = bests[w];
                ++best.full_queries;
                uint32_t followers =
                    oracle.CountFollowers(base, live[i], k);
                if (policy.gate && followers <= policy.floor) return;
                if (Improves(best, followers, live[i])) {
                  best.vertex = live[i];
                  best.followers = followers;
                }
              });

  // Deterministic fold: ascending worker id, strict (followers desc,
  // id asc) tie-break over exact counts.
  WorkerBest winner;
  for (const WorkerBest& best : bests) {
    outcome.full_queries += best.full_queries;
    if (best.vertex == kNoVertex) continue;
    if (Improves(winner, best.followers, best.vertex)) {
      winner.vertex = best.vertex;
      winner.followers = best.followers;
    }
  }
  outcome.vertex = winner.vertex;
  outcome.followers = winner.followers;
  return outcome;
}

}  // namespace avt
