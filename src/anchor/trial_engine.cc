#include "anchor/trial_engine.h"

#include <algorithm>
#include <queue>

namespace avt {
namespace {

/// Lazy heap entry, max-heap by value with smaller id first on ties —
/// the common tie-break of every pick loop. A vertex appears at most
/// once per shard, so (value, vertex) never fully ties.
struct LazyEntry {
  uint32_t value;  // exact ? F(base ∪ {v}) : certified upper bound
  VertexId vertex;
  bool exact;
  bool operator<(const LazyEntry& other) const {
    if (value != other.value) return value < other.value;
    return vertex > other.vertex;
  }
};

/// Per-shard (or per-worker) winner candidate.
struct ShardBest {
  VertexId vertex = kNoVertex;
  uint32_t followers = 0;
  uint64_t full_queries = 0;
  uint64_t bound_probes = 0;
};

bool Improves(const ShardBest& best, uint32_t followers, VertexId vertex) {
  if (best.vertex == kNoVertex) return true;
  if (followers != best.followers) return followers > best.followers;
  return vertex < best.vertex;
}

}  // namespace

TrialEngine::TrialEngine(const Graph* graph, const KOrder* order,
                         const CsrView* csr, uint32_t num_threads,
                         const DynamicCsr* dynamic_csr)
    : num_threads_(std::max<uint32_t>(1, num_threads)) {
  if (num_threads_ > 1) pool_ = std::make_unique<ThreadPool>(num_threads_);
  oracles_.reserve(num_threads_);
  for (uint32_t w = 0; w < num_threads_; ++w) {
    oracles_.push_back(
        std::make_unique<FollowerOracle>(graph, order, csr, dynamic_csr));
  }
}

void TrialEngine::ResizeScratch() {
  for (auto& oracle : oracles_) oracle->ResizeScratch();
}

uint64_t TrialEngine::CascadeVisited() const {
  uint64_t total = 0;
  for (const auto& oracle : oracles_) total += oracle->stats().visited;
  return total;
}

TrialOutcome TrialEngine::Evaluate(std::span<const VertexId> live,
                                   std::span<const VertexId> base,
                                   uint32_t k, const TrialPolicy& policy) {
  TrialOutcome outcome;
  if (live.empty()) return outcome;

  const uint32_t workers = num_threads_;
  std::vector<ShardBest> bests(workers);

  if (policy.lazy) {
    // Fixed contiguous shards: each worker runs the certified-bound CELF
    // discipline over its own slice with its own oracle, so the winner
    // AND the per-shard counters are pure functions of (live, base, k,
    // workers). Each worker rebuilds the base cascade privately — the
    // base is one phase-1 walk of S, tiny next to |shard| bound probes.
    auto shard_body = [&](uint32_t w) {
      const size_t lo = ThreadPool::BlockBegin(live.size(), workers, w);
      const size_t hi = ThreadPool::BlockEnd(live.size(), workers, w);
      if (lo >= hi) return;
      FollowerOracle& oracle = *oracles_[w];
      ShardBest& best = bests[w];
      oracle.BuildBase(base, k);
      std::priority_queue<LazyEntry> heap;
      for (size_t i = lo; i < hi; ++i) {
        ++best.bound_probes;
        heap.push({oracle.MarginalUpperBound(live[i]), live[i], false});
      }
      while (!heap.empty()) {
        LazyEntry top = heap.top();
        if (policy.gate && top.value <= policy.floor) return;  // settled
        if (top.exact) {
          best.vertex = top.vertex;
          best.followers = top.value;
          return;
        }
        heap.pop();
        ++best.full_queries;
        heap.push({oracle.CountFollowers(base, top.vertex, k), top.vertex,
                   true});
      }
    };
    if (pool_ != nullptr) {
      pool_->Run(shard_body);
    } else {
      shard_body(0);
    }
  } else {
    // Eager: one full query per candidate, fanned out with work stealing.
    // The per-worker running best depends on which indices the worker
    // ran, but the reduction below recovers the unique global (followers
    // desc, id asc) maximum from any partition; the query count is
    // |live| regardless.
    ParallelFor(pool_.get(), live.size(), /*grain=*/8,
                [&](uint32_t w, size_t i) {
                  FollowerOracle& oracle = *oracles_[w];
                  ShardBest& best = bests[w];
                  ++best.full_queries;
                  uint32_t followers =
                      oracle.CountFollowers(base, live[i], k);
                  if (policy.gate && followers <= policy.floor) return;
                  if (Improves(best, followers, live[i])) {
                    best.vertex = live[i];
                    best.followers = followers;
                  }
                });
  }

  // Deterministic fold: ascending worker id, strict (followers desc,
  // id asc) tie-break over exact counts.
  ShardBest winner;
  for (const ShardBest& best : bests) {
    outcome.full_queries += best.full_queries;
    outcome.bound_probes += best.bound_probes;
    if (best.vertex == kNoVertex) continue;
    if (Improves(winner, best.followers, best.vertex)) {
      winner.vertex = best.vertex;
      winner.followers = best.followers;
    }
  }
  outcome.vertex = winner.vertex;
  outcome.followers = winner.followers;
  return outcome;
}

}  // namespace avt
