// Deterministic parallel trial evaluation: the one primitive behind both
// pick loops.
//
// GreedySolver's per-pick argmax and IncAvtTracker's per-slot local
// search both reduce to the same question: among live candidates x,
// which trial set base ∪ {x} has the most followers — tie-break smallest
// id — optionally restricted to counts strictly above an incumbent
// floor? Every trial is a pure function of the shared read-only
// (graph, K-order[, CSR]) triple, so trials are embarrassingly parallel;
// what is NOT trivially parallel is keeping the answer (and the lazy
// strategy's work counters) bit-identical to the serial loop. TrialEngine
// owns that guarantee:
//
//   * one FollowerOracle per worker — oracle queries are non-destructive
//     over the shared structures, and each worker's cascade scratch
//     (including its own resident base cascade) is private;
//   * the live-candidate list is split into FIXED contiguous per-worker
//     shards (ThreadPool::BlockBegin/End), so in lazy mode each shard's
//     bound heap — and therefore its probe/query counters — depends only
//     on (live, base, k, num_threads), never on scheduling;
//   * lazy shards run the certified-bound CELF discipline locally: build
//     the shard's max-heap of MarginalUpperBound probes keyed
//     (value desc, id asc), pop-resolve with full queries until the top
//     is exact (or provably cannot beat the floor) — the shard winner is
//     the shard's exhaustive argmax by the bound-soundness argument of
//     greedy.h / docs/PERFORMANCE.md;
//   * eager mode fans the full queries out with work stealing
//     (ParallelFor) and keeps a per-worker running best — valid because
//     the global (followers desc, id asc) maximum of a set is reachable
//     from any partition of it;
//   * the reduction folds shard/worker winners in ascending worker id
//     with the same strict tie-break. Winners are exact counts, so the
//     fold yields the unique global argmax: anchors are bit-identical to
//     the serial path at every thread count (pinned by
//     tests/parallel_determinism_test.cc).

#ifndef AVT_ANCHOR_TRIAL_ENGINE_H_
#define AVT_ANCHOR_TRIAL_ENGINE_H_

#include <memory>
#include <span>
#include <vector>

#include "anchor/follower_oracle.h"
#include "util/thread_pool.h"

namespace avt {

/// How one Evaluate call selects its winner.
struct TrialPolicy {
  /// Certified-bound gating (phase-1 probes, pop-resolve) instead of a
  /// full query per candidate. Identical winner either way.
  bool lazy = true;
  /// When true, only trials with followers strictly above `floor`
  /// qualify (IncAVT's swap slots); a lazy shard whose top bound cannot
  /// beat the floor settles with zero full queries.
  bool gate = false;
  uint32_t floor = 0;
};

/// Winner plus deterministic work counters (summed over shards).
struct TrialOutcome {
  VertexId vertex = kNoVertex;  // kNoVertex: no live candidate qualified
  uint32_t followers = 0;       // exact F(base ∪ {vertex})
  uint64_t full_queries = 0;
  uint64_t bound_probes = 0;
};

/// Parallel (or serial, num_threads <= 1) trial evaluator bound to one
/// read-only (graph, order[, csr]) triple. The referenced structures must
/// outlive the engine and stay consistent while Evaluate runs; after the
/// graph/order are maintained in place (IncAVT), the next Evaluate simply
/// reads the new state — per-worker oracles hold no cross-call caches.
/// `dynamic_csr` (optional) binds every worker oracle to one shared
/// delta-maintained adjacency mirror: the maintainer patches it between
/// Evaluate calls and workers only read it during a call, so the sharing
/// is race-free and the scans stay contiguous across the whole stream.
class TrialEngine {
 public:
  TrialEngine(const Graph* graph, const KOrder* order, const CsrView* csr,
              uint32_t num_threads, const DynamicCsr* dynamic_csr = nullptr);

  uint32_t num_threads() const { return num_threads_; }

  /// Re-sizes every worker oracle's scratch after the bound graph/order
  /// grew (streaming sources add vertices mid-stream). Call between
  /// Evaluate calls only.
  void ResizeScratch();

  /// Argmax over live candidates of F(base ∪ {x}) under `policy`. `live`
  /// must be duplicate-free and disjoint from `base`; id-ascending order
  /// is NOT required (the reduction never depends on it).
  TrialOutcome Evaluate(std::span<const VertexId> live,
                        std::span<const VertexId> base, uint32_t k,
                        const TrialPolicy& policy);

  /// Total cascade vertices visited across all worker oracles (the
  /// solver-level cascade_visited metric).
  uint64_t CascadeVisited() const;

 private:
  const uint32_t num_threads_;
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads_ == 1
  std::vector<std::unique_ptr<FollowerOracle>> oracles_;
};

}  // namespace avt

#endif  // AVT_ANCHOR_TRIAL_ENGINE_H_
