// Deterministic parallel trial evaluation: the one primitive behind both
// pick loops.
//
// GreedySolver's per-pick argmax and IncAvtTracker's per-slot local
// search both reduce to the same question: among live candidates x,
// which trial set base ∪ {x} has the most followers — tie-break smallest
// id — optionally restricted to counts strictly above an incumbent
// floor? Every trial is a pure function of the shared read-only
// (graph, K-order[, CSR]) triple, so trials are embarrassingly parallel;
// what is NOT trivially parallel is keeping the answer (and the lazy
// strategy's work counters) bit-identical to the serial loop. TrialEngine
// owns that guarantee:
//
//   * one FollowerOracle per worker — oracle queries are non-destructive
//     over the shared structures, and each worker's cascade scratch
//     (including its own resident base cascade) is private;
//   * lazy mode runs in two phases. Phase 1 (parallel): the live list is
//     partitioned into per-worker GRAPH REGIONS — candidates sorted by
//     K-order position (level, tag), then block-split — so the marginal
//     cascades a worker probes share cache-resident K-order state; each
//     worker builds the base cascade once and writes one certified
//     MarginalUpperBound per candidate into an index-addressed slot.
//     Phase 2 (serial): ONE global CELF heap over all bounds, keyed
//     (value desc, id asc), pop-resolved with full queries on worker 0's
//     oracle until the top is exact (or provably cannot beat the floor).
//     Because each bound is a pure function of (base, candidate, k) —
//     independent of which worker produced it or in what order — the
//     heap's content, its pop sequence, and therefore the winner AND the
//     full_queries/bound_probes counters are identical to the serial
//     loop at every thread count. In particular the global winner is
//     resolved exactly ONCE per call: full queries no longer scale with
//     the worker count (the PR-3 per-shard design resolved one winner
//     per shard, multiplying exact queries by the thread count — the
//     regression BENCH_PR3 recorded);
//   * eager mode fans the full queries out with work stealing
//     (ParallelFor) and keeps a per-worker running best — valid because
//     the global (followers desc, id asc) maximum of a set is reachable
//     from any partition of it, and the query count is |live| at every
//     thread count;
//   * small live sets skip the fan-out entirely (the base-cascade
//     rebuild per worker plus the fork-join wakeup dwarf a handful of
//     marginal probes); the serial path computes the identical bounds,
//     so the cutover is invisible in outputs and counters.
//
// Anchors are bit-identical to the serial path at every thread count,
// and the work counters are thread-count-invariant — both pinned by
// tests/parallel_determinism_test.cc.

#ifndef AVT_ANCHOR_TRIAL_ENGINE_H_
#define AVT_ANCHOR_TRIAL_ENGINE_H_

#include <memory>
#include <span>
#include <vector>

#include "anchor/follower_oracle.h"
#include "util/thread_pool.h"

namespace avt {

/// How one Evaluate call selects its winner.
struct TrialPolicy {
  /// Certified-bound gating (phase-1 probes, pop-resolve) instead of a
  /// full query per candidate. Identical winner either way.
  bool lazy = true;
  /// When true, only trials with followers strictly above `floor`
  /// qualify (IncAVT's swap slots); a lazy call whose top bound cannot
  /// beat the floor settles with zero full queries.
  bool gate = false;
  uint32_t floor = 0;
};

/// Winner plus deterministic work counters. Both counters are pure
/// functions of (live, base, k, policy) — never of the thread count.
struct TrialOutcome {
  VertexId vertex = kNoVertex;  // kNoVertex: no live candidate qualified
  uint32_t followers = 0;       // exact F(base ∪ {vertex})
  uint64_t full_queries = 0;
  uint64_t bound_probes = 0;
};

/// Parallel (or serial, num_threads <= 1) trial evaluator bound to one
/// read-only (graph, order[, csr]) triple. The referenced structures must
/// outlive the engine and stay consistent while Evaluate runs; after the
/// graph/order are maintained in place (IncAVT), the next Evaluate simply
/// reads the new state — per-worker oracles hold no cross-call caches.
/// `dynamic_csr` (optional) binds every worker oracle to one shared
/// delta-maintained adjacency mirror: the maintainer patches it between
/// Evaluate calls and workers only read it during a call, so the sharing
/// is race-free and the scans stay contiguous across the whole stream.
class TrialEngine {
 public:
  TrialEngine(const Graph* graph, const KOrder* order, const CsrView* csr,
              uint32_t num_threads, const DynamicCsr* dynamic_csr = nullptr);

  uint32_t num_threads() const { return num_threads_; }

  /// Re-sizes every worker oracle's scratch after the bound graph/order
  /// grew (streaming sources add vertices mid-stream). Call between
  /// Evaluate calls only.
  void ResizeScratch();

  /// Argmax over live candidates of F(base ∪ {x}) under `policy`. `live`
  /// must be duplicate-free and disjoint from `base`; id-ascending order
  /// is NOT required (neither the reduction nor the K-order partition
  /// depends on it).
  TrialOutcome Evaluate(std::span<const VertexId> live,
                        std::span<const VertexId> base, uint32_t k,
                        const TrialPolicy& policy);

  /// Total cascade vertices visited across all worker oracles (the
  /// solver-level cascade_visited metric).
  uint64_t CascadeVisited() const;

 private:
  const uint32_t num_threads_;
  const KOrder* order_;               // partition key source (level, tag)
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads_ == 1
  std::vector<std::unique_ptr<FollowerOracle>> oracles_;
  /// Evaluate scratch, reused across calls: per-candidate certified
  /// bounds (index-addressed, so phase 1 writes are race-free) and the
  /// K-order-sorted index permutation behind the region partition.
  std::vector<uint32_t> bounds_;
  std::vector<uint32_t> perm_;
};

}  // namespace avt

#endif  // AVT_ANCHOR_TRIAL_ENGINE_H_
