#include "core/avt.h"

#include "anchor/brute_force.h"
#include "anchor/greedy.h"
#include "anchor/olak.h"
#include "anchor/rcm.h"
#include "core/engine.h"
#include "core/inc_avt.h"
#include "corelib/decomposition.h"
#include "durability/serde.h"
#include "graph/delta_source.h"
#include "util/timer.h"

namespace avt {

const char* AvtAlgorithmName(AvtAlgorithm algorithm) {
  switch (algorithm) {
    case AvtAlgorithm::kGreedy: return "Greedy";
    case AvtAlgorithm::kOlak: return "OLAK";
    case AvtAlgorithm::kRcm: return "RCM";
    case AvtAlgorithm::kIncAvt: return "IncAVT";
    case AvtAlgorithm::kBruteForce: return "Brute-force";
  }
  return "unknown";
}

const char* MemoPolicyName(MemoPolicy policy) {
  switch (policy) {
    case MemoPolicy::kMemoizeAll: return "all";
    case MemoPolicy::kTopValueOnly: return "top";
    case MemoPolicy::kLru: return "lru";
    case MemoPolicy::kNone: return "none";
  }
  return "unknown";
}

double AvtRunResult::TotalMillis() const {
  double total = 0;
  for (const auto& s : snapshots) total += s.millis;
  return total;
}

uint64_t AvtRunResult::TotalCandidatesVisited() const {
  uint64_t total = 0;
  for (const auto& s : snapshots) total += s.candidates_visited;
  return total;
}

uint64_t AvtRunResult::TotalFollowers() const {
  uint64_t total = 0;
  for (const auto& s : snapshots) total += s.num_followers;
  return total;
}

AvtSnapshotResult StaticAvtTracker::SolveSnapshot() {
  Timer timer;
  AvtSnapshotResult snap;
  snap.t = t_;
  SolverResult solved = solver_->Solve(graph_, k_, l_);
  snap.anchors = solved.anchors;
  snap.num_followers = solved.num_followers();
  snap.candidates_visited = solved.candidates_visited;

  CoreDecomposition cores = DecomposeCores(graph_);
  uint32_t kcore = 0;
  for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
    if (cores.core[v] >= k_) ++kcore;
  }
  uint32_t anchors_outside = 0;
  for (VertexId a : solved.anchors) {
    if (cores.core[a] < k_) ++anchors_outside;
  }
  snap.kcore_size = kcore;
  snap.anchored_core_size = kcore + anchors_outside + snap.num_followers;
  snap.millis = timer.ElapsedMillis();
  return snap;
}

AvtSnapshotResult StaticAvtTracker::ProcessFirst(const Graph& g0) {
  t_ = 0;
  graph_ = g0;
  return SolveSnapshot();
}

AvtSnapshotResult StaticAvtTracker::ProcessDelta(const EdgeDelta& delta) {
  ++t_;
  delta.Apply(graph_);  // from-scratch families maintain their own copy
  return SolveSnapshot();
}

bool StaticAvtTracker::SaveCheckpointState(std::string* out) const {
  out->clear();
  serde::PutU64(out, t_);
  serde::PutU32(out, graph_.NumVertices());
  for (VertexId u = 0; u < graph_.NumVertices(); ++u) {
    const std::span<const VertexId> neighbors = graph_.Neighbors(u);
    serde::PutU32(out, static_cast<uint32_t>(neighbors.size()));
    for (VertexId v : neighbors) serde::PutU32(out, v);
  }
  return true;
}

Status StaticAvtTracker::RestoreCheckpointState(const std::string& blob) {
  serde::Reader reader(blob);
  uint64_t t = 0;
  uint32_t n = 0;
  if (!reader.GetU64(&t) || !reader.GetU32(&n)) {
    return Status::Corruption("truncated tracker state blob");
  }
  std::vector<std::vector<VertexId>> adjacency(n);
  for (uint32_t u = 0; u < n; ++u) {
    uint32_t degree = 0;
    if (!reader.GetU32(&degree) || reader.Remaining() < 4ull * degree) {
      return Status::Corruption("truncated tracker state blob");
    }
    adjacency[u].reserve(degree);
    for (uint32_t i = 0; i < degree; ++i) {
      uint32_t v = 0;
      if (!reader.GetU32(&v)) {
        return Status::Corruption("truncated tracker state blob");
      }
      adjacency[u].push_back(v);
    }
  }
  if (!reader.Exhausted()) {
    return Status::Corruption("trailing bytes in tracker state blob");
  }
  StatusOr<Graph> graph = Graph::FromAdjacency(std::move(adjacency));
  if (!graph.ok()) return graph.status();
  graph_ = std::move(graph).value();
  t_ = static_cast<size_t>(t);
  return Status::Ok();
}

std::unique_ptr<AvtTracker> MakeTracker(AvtAlgorithm algorithm, uint32_t k,
                                        uint32_t l, uint32_t num_threads,
                                        IncAvtCsrMode csr_mode,
                                        size_t batch_size,
                                        MemoPolicy memo_policy,
                                        size_t memo_budget_bytes) {
  switch (algorithm) {
    case AvtAlgorithm::kGreedy: {
      GreedyOptions options;
      options.num_threads = num_threads;
      return std::make_unique<StaticAvtTracker>(
          std::make_unique<GreedySolver>(options), k, l);
    }
    case AvtAlgorithm::kOlak:
      return std::make_unique<StaticAvtTracker>(
          std::make_unique<OlakSolver>(), k, l);
    case AvtAlgorithm::kRcm:
      return std::make_unique<StaticAvtTracker>(std::make_unique<RcmSolver>(),
                                                k, l);
    case AvtAlgorithm::kBruteForce:
      return std::make_unique<StaticAvtTracker>(
          std::make_unique<BruteForceSolver>(), k, l);
    case AvtAlgorithm::kIncAvt: {
      IncAvtOptions options;
      options.num_threads = num_threads;
      options.csr = csr_mode;
      options.batch_size = batch_size;
      options.memo_policy = memo_policy;
      options.memo_budget_bytes = memo_budget_bytes;
      return std::make_unique<IncAvtTracker>(k, l, IncAvtMode::kRestricted,
                                             options);
    }
  }
  return nullptr;
}

AvtRunResult RunAvt(const SnapshotSequence& sequence, AvtAlgorithm algorithm,
                    uint32_t k, uint32_t l, uint32_t num_threads,
                    IncAvtCsrMode csr_mode, size_t batch_size,
                    MemoPolicy memo_policy, size_t memo_budget_bytes) {
  std::unique_ptr<AvtTracker> tracker =
      MakeTracker(algorithm, k, l, num_threads, csr_mode, batch_size,
                  memo_policy, memo_budget_bytes);
  AVT_CHECK(tracker != nullptr);
  // Every run — bench, CLI, test — rides the streaming engine; the
  // sequence adapter re-emits deltas verbatim, so this is bit-identical
  // to the retired materialized ForEachSnapshot replay.
  AvtEngine engine(std::move(tracker),
                   std::make_unique<SequenceSource>(&sequence));
  Status status = engine.Drain();
  AVT_CHECK_MSG(status.ok(), status.ToString().c_str());
  AvtRunResult run = engine.TakeResult();
  run.algorithm = algorithm;
  run.k = k;
  run.l = l;
  return run;
}

}  // namespace avt
