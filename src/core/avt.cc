#include "core/avt.h"

#include "anchor/brute_force.h"
#include "anchor/greedy.h"
#include "anchor/olak.h"
#include "anchor/rcm.h"
#include "core/inc_avt.h"
#include "corelib/decomposition.h"
#include "util/timer.h"

namespace avt {

const char* AvtAlgorithmName(AvtAlgorithm algorithm) {
  switch (algorithm) {
    case AvtAlgorithm::kGreedy: return "Greedy";
    case AvtAlgorithm::kOlak: return "OLAK";
    case AvtAlgorithm::kRcm: return "RCM";
    case AvtAlgorithm::kIncAvt: return "IncAVT";
    case AvtAlgorithm::kBruteForce: return "Brute-force";
  }
  return "unknown";
}

double AvtRunResult::TotalMillis() const {
  double total = 0;
  for (const auto& s : snapshots) total += s.millis;
  return total;
}

uint64_t AvtRunResult::TotalCandidatesVisited() const {
  uint64_t total = 0;
  for (const auto& s : snapshots) total += s.candidates_visited;
  return total;
}

uint64_t AvtRunResult::TotalFollowers() const {
  uint64_t total = 0;
  for (const auto& s : snapshots) total += s.num_followers;
  return total;
}

AvtSnapshotResult StaticAvtTracker::SolveSnapshot(const Graph& graph) {
  Timer timer;
  AvtSnapshotResult snap;
  snap.t = t_;
  SolverResult solved = solver_->Solve(graph, k_, l_);
  snap.anchors = solved.anchors;
  snap.num_followers = solved.num_followers();
  snap.candidates_visited = solved.candidates_visited;

  CoreDecomposition cores = DecomposeCores(graph);
  uint32_t kcore = 0;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (cores.core[v] >= k_) ++kcore;
  }
  uint32_t anchors_outside = 0;
  for (VertexId a : solved.anchors) {
    if (cores.core[a] < k_) ++anchors_outside;
  }
  snap.kcore_size = kcore;
  snap.anchored_core_size = kcore + anchors_outside + snap.num_followers;
  snap.millis = timer.ElapsedMillis();
  return snap;
}

AvtSnapshotResult StaticAvtTracker::ProcessFirst(const Graph& g0) {
  t_ = 0;
  return SolveSnapshot(g0);
}

AvtSnapshotResult StaticAvtTracker::ProcessDelta(const Graph& graph,
                                                 const EdgeDelta& delta) {
  (void)delta;  // static trackers re-solve from the materialized snapshot
  ++t_;
  return SolveSnapshot(graph);
}

std::unique_ptr<AvtTracker> MakeTracker(AvtAlgorithm algorithm, uint32_t k,
                                        uint32_t l, uint32_t num_threads,
                                        IncAvtCsrMode csr_mode) {
  switch (algorithm) {
    case AvtAlgorithm::kGreedy: {
      GreedyOptions options;
      options.num_threads = num_threads;
      return std::make_unique<StaticAvtTracker>(
          std::make_unique<GreedySolver>(options), k, l);
    }
    case AvtAlgorithm::kOlak:
      return std::make_unique<StaticAvtTracker>(
          std::make_unique<OlakSolver>(), k, l);
    case AvtAlgorithm::kRcm:
      return std::make_unique<StaticAvtTracker>(std::make_unique<RcmSolver>(),
                                                k, l);
    case AvtAlgorithm::kBruteForce:
      return std::make_unique<StaticAvtTracker>(
          std::make_unique<BruteForceSolver>(), k, l);
    case AvtAlgorithm::kIncAvt: {
      IncAvtOptions options;
      options.num_threads = num_threads;
      options.csr = csr_mode;
      return std::make_unique<IncAvtTracker>(k, l, IncAvtMode::kRestricted,
                                             options);
    }
  }
  return nullptr;
}

AvtRunResult RunAvt(const SnapshotSequence& sequence, AvtAlgorithm algorithm,
                    uint32_t k, uint32_t l, uint32_t num_threads,
                    IncAvtCsrMode csr_mode) {
  AvtRunResult run;
  run.algorithm = algorithm;
  run.k = k;
  run.l = l;
  std::unique_ptr<AvtTracker> tracker =
      MakeTracker(algorithm, k, l, num_threads, csr_mode);
  AVT_CHECK(tracker != nullptr);
  sequence.ForEachSnapshot([&](size_t t, const Graph& graph,
                               const EdgeDelta& delta) {
    if (t == 0) {
      run.snapshots.push_back(tracker->ProcessFirst(graph));
    } else {
      run.snapshots.push_back(tracker->ProcessDelta(graph, delta));
    }
  });
  return run;
}

}  // namespace avt
