// Anchored Vertex Tracking (AVT): the paper's core problem and API.
//
// Given an evolving graph G = {G_1..G_T}, a threshold k and a budget l,
// AVT asks for one anchor set per snapshot maximizing the anchored k-core
// size (Problem formulation, Section 2.2). Two tracker families solve it:
//
//   StaticAvtTracker — re-solves every snapshot from scratch with a
//     pluggable single-snapshot solver (Greedy / OLAK / RCM /
//     Brute-force). This is how the paper runs all baselines.
//
//   IncAvtTracker — the paper's IncAVT (Algorithm 6): maintains the
//     K-order across snapshots with bounded maintenance (Algorithms 4/5),
//     seeds each snapshot's anchors with the previous answer, and probes
//     replacement candidates only among vertices impacted by the churn
//     (VI ∪ VR ∪ their neighbors, Theorem-3 filtered).
//
// Both report per-snapshot metrics (runtime, candidates visited,
// followers, anchored-core size) consumed by the benchmark harness.

#ifndef AVT_CORE_AVT_H_
#define AVT_CORE_AVT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "anchor/solver.h"
#include "graph/delta.h"
#include "graph/graph.h"
#include "graph/snapshots.h"

namespace avt {

/// Algorithms available to the runner.
enum class AvtAlgorithm {
  kGreedy,
  kOlak,
  kRcm,
  kIncAvt,
  kBruteForce,
};

const char* AvtAlgorithmName(AvtAlgorithm algorithm);

/// Adjacency backing for the incremental tracker's cascade scans (the
/// knob lives here so the runner/CLI can set it without pulling in
/// inc_avt.h; see IncAvtOptions).
enum class IncAvtCsrMode {
  /// Scan the maintainer's dynamic per-vertex adjacency (the pre-PR-4
  /// behavior; the differential baseline).
  kNone,
  /// Snapshot a fresh CsrView from the maintained graph after every
  /// delta — contiguous scans bought with an O(n + m) rebuild per
  /// transition (the ablation arm the perf gate measures patching
  /// against).
  kRebuildPerDelta,
  /// Delta-maintained DynamicCsr patched in place by the maintainer
  /// (default): contiguous scans with O(churn) maintenance per delta.
  kMaintained,
};

/// Retention policy for IncAVT's cross-snapshot trial memo (the knob
/// lives here so the runner/CLI can set it without pulling in
/// inc_avt.h; see IncAvtOptions and core/memo_store.h). The memo is a
/// cache of exact evaluations, so eviction can only cost recomputation:
/// anchors are bit-identical across all four policies (enforced by the
/// differential-fuzz policy matrix).
enum class MemoPolicy {
  /// Memoize every evaluation, unbounded — the pre-PR-8 behavior, now
  /// byte-accounted.
  kMemoizeAll,
  /// Keep only the best-valued (slot, candidate) entry per slot, plus
  /// the incumbent and per-slot base cascades: O(l) live entries.
  kTopValueOnly,
  /// Memoize everything under a byte budget; least-recently-used
  /// entries are evicted when the table would outgrow it.
  kLru,
  /// No cross-snapshot memo at all (certified-bound gating within a
  /// transition still applies).
  kNone,
};

const char* MemoPolicyName(MemoPolicy policy);

/// Per-snapshot tracking output.
struct AvtSnapshotResult {
  size_t t = 0;
  std::vector<VertexId> anchors;
  uint32_t num_followers = 0;
  uint32_t kcore_size = 0;          // |C_k| without anchors
  uint32_t anchored_core_size = 0;  // |C_k(S)| = kcore + anchors + followers
  double millis = 0;
  /// Candidates settled with a full follower query (the paper's metric).
  uint64_t candidates_visited = 0;
  /// Cheap phase-1 bound probes issued by lazy pick/swap loops.
  uint64_t bound_probes = 0;
  /// Cross-snapshot memo counters for this transition (IncAVT lazy mode
  /// only; zero elsewhere). memo_bytes is the memo table's footprint
  /// AFTER the transition — table capacity never shrinks, so the
  /// per-run maximum is the true peak.
  uint64_t memo_hits = 0;
  uint64_t memo_misses = 0;
  uint64_t memo_evictions = 0;
  uint64_t memo_bytes = 0;
};

/// Whole-run output plus aggregates.
struct AvtRunResult {
  AvtAlgorithm algorithm;
  uint32_t k = 0;
  uint32_t l = 0;
  std::vector<AvtSnapshotResult> snapshots;

  double TotalMillis() const;
  uint64_t TotalCandidatesVisited() const;
  uint64_t TotalFollowers() const;
};

class KOrder;

/// Read-only window into a tracker's internals for integrity audits
/// (see AvtTracker::AuditView and core/health.h).
struct TrackerAuditView {
  const Graph* graph = nullptr;
  const KOrder* order = nullptr;
};

/// Streaming tracker interface over an evolving graph. Trackers consume
/// a delta STREAM: after ProcessFirst seeds them with G_0, each
/// ProcessDelta receives only the transition — every tracker retains
/// whatever state it needs (the incremental tracker its maintained
/// graph + K-order, the from-scratch baselines their own snapshot
/// copy), so drivers never materialize graphs on the trackers' behalf.
class AvtTracker {
 public:
  virtual ~AvtTracker() = default;

  /// Processes the first snapshot.
  virtual AvtSnapshotResult ProcessFirst(const Graph& g0) = 0;

  /// Processes the transition G_{t-1} -> G_t described by `delta`. Every
  /// endpoint must be inside the tracker's current vertex universe
  /// (grow first via EnsureVertices; AvtEngine does this automatically
  /// for streaming sources).
  virtual AvtSnapshotResult ProcessDelta(const EdgeDelta& delta) = 0;

  /// Grows the tracker's vertex universe to at least `count` ids (new
  /// vertices isolated; no effect when already large enough). Called
  /// between transitions only, never mid-ProcessDelta.
  virtual void EnsureVertices(VertexId count) = 0;

  /// Serializes the tracker's EXACT resumable state into `*out`
  /// (replacing its contents), for durability checkpoints. Returns
  /// false when the tracker does not support state snapshots — the
  /// default, and the right answer whenever any retained state is
  /// history-dependent in ways a blob cannot capture faithfully (the
  /// incremental tracker's cross-snapshot memo shapes its work
  /// counters, so it declines and recovery replays the full WAL
  /// instead, which is bit-identical by construction).
  virtual bool SaveCheckpointState(std::string* out) const {
    (void)out;
    return false;
  }

  /// Restores state produced by SaveCheckpointState on a freshly
  /// constructed tracker with the same configuration. kUnimplemented
  /// when unsupported, kCorruption when the blob does not decode.
  virtual Status RestoreCheckpointState(const std::string& blob) {
    (void)blob;
    return Status::Unimplemented(name() +
                                 " does not support checkpoint state");
  }

  /// How many consecutive source deltas the driver should merge into
  /// one net-effect transaction before each ProcessDelta call. 1 (the
  /// default) means verbatim per-delta delivery; trackers whose
  /// per-transition fixed costs dominate (IncAVT's invalidation walk +
  /// candidate-pool rebuild) override this to request batched
  /// transactions. With N > 1 the tracker observes every N-th snapshot
  /// of the stream — exactly the state a per-delta replay reaches at
  /// those boundaries (DeltaBatcher's last-op-wins guarantee).
  virtual size_t PreferredBatchSize() const { return 1; }

  /// Read-only window into the tracker's REDUNDANT internal state for
  /// integrity audits (core/health.h): the maintained graph plus, when
  /// the tracker keeps one, the incrementally maintained K-order index
  /// a fresh decomposition can be checked against. Null pointers mean
  /// "nothing to cross-check" — the re-solve family retains only a
  /// graph copy (order stays null) and audits skip it.
  virtual TrackerAuditView AuditView() const { return {}; }

  /// Corruption drill: forcibly desynchronizes redundant internal
  /// state — the signature of a maintenance regression or a memory
  /// fault — so audits have something real to detect. Returns false
  /// when the tracker keeps no redundant state. Drill/test surface
  /// only (tests, `avt_cli stream --corrupt-state-after`); never
  /// called by library code.
  virtual bool InjectAuditFaultForDrill() { return false; }

  virtual std::string name() const = 0;
};

/// Re-solve-per-snapshot tracker wrapping any single-snapshot solver.
/// Retains its own copy of the current snapshot and applies each delta
/// to it — the O(m) snapshot cost lives with the algorithm family that
/// actually re-reads the whole graph, not with every caller.
class StaticAvtTracker : public AvtTracker {
 public:
  StaticAvtTracker(std::unique_ptr<AnchorSolver> solver, uint32_t k,
                   uint32_t l)
      : solver_(std::move(solver)), k_(k), l_(l) {}

  AvtSnapshotResult ProcessFirst(const Graph& g0) override;
  AvtSnapshotResult ProcessDelta(const EdgeDelta& delta) override;
  void EnsureVertices(VertexId count) override {
    if (count > 0) graph_.EnsureVertex(count - 1);
  }
  std::string name() const override { return solver_->name(); }

  /// The re-solve family's whole state is the snapshot counter plus the
  /// retained graph — and the graph's neighbor ORDER feeds solver
  /// tie-breaks, so the blob stores the adjacency lists verbatim.
  /// Restoring it and replaying the WAL suffix is therefore exactly
  /// the uninterrupted run.
  bool SaveCheckpointState(std::string* out) const override;
  Status RestoreCheckpointState(const std::string& blob) override;

  /// Only the retained snapshot is visible; there is no maintained
  /// index to cross-check, so audits skip this family.
  TrackerAuditView AuditView() const override { return {&graph_, nullptr}; }

 private:
  AvtSnapshotResult SolveSnapshot();

  std::unique_ptr<AnchorSolver> solver_;
  uint32_t k_;
  uint32_t l_;
  size_t t_ = 0;
  Graph graph_;  // retained current snapshot
};

/// Runs one algorithm over a whole snapshot sequence. `num_threads`
/// sizes the trial engine of the algorithms that have one (Greedy,
/// IncAVT); the other algorithms ignore it. `csr_mode` selects IncAVT's
/// cascade-scan backing (ignored by the other algorithms). Output is
/// bit-identical at every thread count and every csr mode. `batch_size`
/// sets IncAVT's delta-transaction width (ignored by the re-solve
/// families, whose per-snapshot cost has no per-delta fixed part): with
/// N > 1 the engine merges N consecutive deltas per transaction, so the
/// run reports one result per BATCH BOUNDARY snapshot — each
/// bit-identical to the per-delta replay's result at that snapshot
/// (tests/differential_fuzz_test.cc pins this). `memo_policy` /
/// `memo_budget_bytes` bound IncAVT's cross-snapshot memo (ignored by
/// the re-solve families, which keep no cross-snapshot cache); anchors
/// are bit-identical under every policy — only the work counters and
/// memory footprint move.
AvtRunResult RunAvt(const SnapshotSequence& sequence, AvtAlgorithm algorithm,
                    uint32_t k, uint32_t l, uint32_t num_threads = 1,
                    IncAvtCsrMode csr_mode = IncAvtCsrMode::kMaintained,
                    size_t batch_size = 1,
                    MemoPolicy memo_policy = MemoPolicy::kMemoizeAll,
                    size_t memo_budget_bytes = 0);

/// Factory for trackers (IncAVT included). `num_threads` / `csr_mode` /
/// `batch_size` / `memo_policy` / `memo_budget_bytes` as in RunAvt.
std::unique_ptr<AvtTracker> MakeTracker(
    AvtAlgorithm algorithm, uint32_t k, uint32_t l, uint32_t num_threads = 1,
    IncAvtCsrMode csr_mode = IncAvtCsrMode::kMaintained, size_t batch_size = 1,
    MemoPolicy memo_policy = MemoPolicy::kMemoizeAll,
    size_t memo_budget_bytes = 0);

}  // namespace avt

#endif  // AVT_CORE_AVT_H_
