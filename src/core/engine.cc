#include "core/engine.h"

#include <algorithm>
#include <filesystem>
#include <string>
#include <utility>

#include "durability/checkpoint.h"
#include "durability/serde.h"

namespace avt {

AvtEngine::AvtEngine(std::unique_ptr<AvtTracker> tracker,
                     std::unique_ptr<DeltaSource> source,
                     EngineOptions options)
    : tracker_(std::move(tracker)),
      source_(std::move(source)),
      options_(options) {
  AVT_CHECK_MSG(tracker_ != nullptr, "AvtEngine needs a tracker");
  AVT_CHECK_MSG(source_ != nullptr, "AvtEngine needs a delta source");
}

void AvtEngine::Record(AvtSnapshotResult snap) {
  total_millis_ += snap.millis;
  max_millis_ = std::max(max_millis_, snap.millis);
  total_candidates_ += snap.candidates_visited;
  total_followers_ += snap.num_followers;
  memo_hits_ += snap.memo_hits;
  memo_misses_ += snap.memo_misses;
  memo_evictions_ += snap.memo_evictions;
  memo_peak_bytes_ = std::max(memo_peak_bytes_, snap.memo_bytes);
  if (processed_ > 0) {
    double jaccard = JaccardSimilarity(previous_anchors_, snap.anchors);
    stability_sum_ += jaccard;
    if (jaccard < 1.0) ++anchor_changes_;
  }
  previous_anchors_ = snap.anchors;
  ++processed_;
  if (observer_) observer_(snap);
  if (options_.keep_snapshots) result_.snapshots.push_back(snap);
  last_ = std::move(snap);
}

Status AvtEngine::ValidateAndGrow(const EdgeDelta& delta) {
  // Source boundary: every endpoint must fit the tracker's universe.
  VertexId max_id = 0;
  bool any_endpoint = false;
  for (const std::vector<Edge>* batch : {&delta.insertions,
                                         &delta.deletions}) {
    for (const Edge& e : *batch) {
      max_id = std::max({max_id, e.u, e.v});
      any_endpoint = true;
    }
  }
  if (any_endpoint && max_id >= num_vertices_) {
    if (!options_.grow_universe) {
      return Status::OutOfRange(
          "delta (transition " + std::to_string(processed_) +
          " from source '" + source_->name() + "') references vertex " +
          std::to_string(max_id) + " but the universe holds " +
          std::to_string(num_vertices_) +
          " vertices; enable EngineOptions::grow_universe for streaming "
          "sources or fix the source");
    }
    tracker_->EnsureVertices(max_id + 1);
    num_vertices_ = max_id + 1;
  }
  return Status::Ok();
}

StatusOr<bool> AvtEngine::Step() {
  if (durable_ && !durability_broken_.ok()) return durability_broken_;

  if (!started_) {
    started_ = true;
    const Graph& g0 = source_->InitialGraph();
    num_vertices_ = g0.NumVertices();
    Record(tracker_->ProcessFirst(g0));
    if (durable_) {
      // The initial checkpoint anchors the fingerprint and gives
      // Recover something to validate even before the first cadenced
      // checkpoint lands.
      Status status = WriteCheckpointNow();
      if (!status.ok()) {
        durability_broken_ = status;
        return status;
      }
    }
    return true;
  }

  // A delta that failed validation last Step is re-delivered, so a
  // caller that resolves the problem (grows the tracker by hand, flips
  // grow_universe) and retries does not silently skip the transition.
  // (The pending delta is already merged/validated-shaped: batching
  // happened before the failed validation, so the retry path needs no
  // re-merge.)
  EdgeDelta delta;
  if (has_pending_delta_) {
    delta = std::move(pending_delta_);
    has_pending_delta_ = false;
  } else {
    const size_t batch = tracker_->PreferredBatchSize();
    if (batch <= 1) {
      // Verbatim per-delta delivery — within-batch op order reaches the
      // tracker untouched (canonicalization would reorder it).
      StatusOr<bool> pulled = source_->NextDelta(&delta);
      if (!pulled.ok()) return pulled.status();
      if (!pulled.value()) return false;
      ++uncommitted_pulls_;
    } else {
      // Batched transaction: merge up to `batch` consecutive deltas
      // into one canonical net-effect delta (last-op-wins, exactly the
      // state the per-delta replay reaches at this boundary). The
      // tracker pays its per-transition fixed costs once per batch. A
      // transient source error propagates with the partial batch
      // retained in the batcher — the next Step resumes the merge.
      EdgeDelta pulled;
      while (batcher_.merged() < batch) {
        StatusOr<bool> more = source_->NextDelta(&pulled);
        if (!more.ok()) return more.status();
        if (!more.value()) break;
        batcher_.Add(pulled);
        ++uncommitted_pulls_;
      }
      if (batcher_.Empty()) return false;
      batcher_.Flush(&delta);
    }
  }

  Status valid = ValidateAndGrow(delta);
  if (!valid.ok()) {
    pending_delta_ = std::move(delta);
    has_pending_delta_ = true;
    return valid;
  }

  Record(tracker_->ProcessDelta(delta));

  if (durable_) {
    Status status = CommitDurable(delta);
    if (!status.ok()) {
      durability_broken_ = status;
      return status;
    }
  }
  return true;
}

Status AvtEngine::CommitDurable(const EdgeDelta& delta) {
  WalRecord record;
  record.seq = wal_seq_ + 1;
  record.source_pulls = uncommitted_pulls_;
  record.delta = delta;
  AVT_RETURN_IF_ERROR(wal_->Append(record));
  ++wal_seq_;
  source_pulls_committed_ += uncommitted_pulls_;
  uncommitted_pulls_ = 0;

  const size_t transactions = processed_ - 1;  // G_0 is not a WAL record
  if (durability_.checkpoint_every > 0 &&
      transactions % durability_.checkpoint_every == 0) {
    // The WAL prefix this checkpoint summarizes must be in the file
    // before the checkpoint claims it happened (fflush suffices for
    // SIGKILL-survival; kEveryRecord already fsynced).
    if (durability_.fsync == FsyncPolicy::kNever) {
      AVT_RETURN_IF_ERROR(wal_->Flush());
    }
    AVT_RETURN_IF_ERROR(WriteCheckpointNow());
  }
  return Status::Ok();
}

Status AvtEngine::WriteCheckpointNow() {
  CheckpointData data;
  data.fingerprint = ConfigFingerprint();
  data.step = processed_;
  data.wal_records = wal_seq_;
  data.source_pulls = source_pulls_committed_;
  data.num_vertices = num_vertices_;
  data.total_millis = total_millis_;
  data.max_millis = max_millis_;
  data.total_candidates = total_candidates_;
  data.total_followers = total_followers_;
  data.stability_sum = stability_sum_;
  data.anchor_changes = anchor_changes_;
  data.previous_anchors = previous_anchors_;
  std::string blob;
  if (tracker_->SaveCheckpointState(&blob)) {
    data.has_tracker_state = true;
    data.tracker_state = std::move(blob);
  }
  return WriteCheckpoint(durability_.dir, data,
                         durability_.fsync != FsyncPolicy::kNever);
}

uint64_t AvtEngine::ConfigFingerprint() const {
  std::string config;
  config += tracker_->name();
  config += '\x1f';
  config += std::to_string(tracker_->PreferredBatchSize());
  config += '\x1f';
  config += source_->name();
  config += '\x1f';
  config += options_.grow_universe ? '1' : '0';
  config += '\x1f';
  config += durability_.config_extra;
  return serde::Fnv1a64(config);
}

Status AvtEngine::EnableDurability(const DurabilityOptions& options) {
  if (started_) {
    return Status::InvalidArgument(
        "EnableDurability must precede the first Step");
  }
  if (options.dir.empty()) {
    return Status::InvalidArgument("durability needs a directory");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return Status::IoError("cannot create durability dir " + options.dir +
                           ": " + ec.message());
  }
  durability_ = options;
  auto checkpoints = ListCheckpoints(options.dir);
  if (!checkpoints.ok()) return checkpoints.status();
  if (!checkpoints.value().empty() ||
      std::filesystem::exists(
          options.dir + "/" + DeltaWal::kFileName, ec)) {
    return Status::InvalidArgument(
        "durability dir " + options.dir +
        " already contains a run; Recover from it or use a fresh dir");
  }
  auto wal = DeltaWal::Create(options.dir + "/" + DeltaWal::kFileName,
                              options.fsync);
  if (!wal.ok()) return wal.status();
  wal_ = std::move(wal).value();
  durable_ = true;
  return Status::Ok();
}

StatusOr<std::unique_ptr<AvtEngine>> AvtEngine::Recover(
    std::unique_ptr<AvtTracker> tracker, std::unique_ptr<DeltaSource> source,
    const EngineOptions& options, const DurabilityOptions& durability) {
  auto checkpoint_or = LoadLatestValidCheckpoint(durability.dir);
  if (!checkpoint_or.ok()) return checkpoint_or.status();
  CheckpointData checkpoint = std::move(checkpoint_or).value();

  const std::string wal_path = durability.dir + "/" + DeltaWal::kFileName;
  DeltaWal::ReadResult wal_contents;
  {
    StatusOr<DeltaWal::ReadResult> read = DeltaWal::ReadAll(wal_path);
    if (read.ok()) {
      wal_contents = std::move(read).value();
    } else if (read.status().code() == StatusCode::kNotFound) {
      // Crash before the WAL was created: recoverable iff the
      // checkpoint never claimed any records (checked below).
    } else {
      return read.status();
    }
  }

  auto engine = std::unique_ptr<AvtEngine>(
      new AvtEngine(std::move(tracker), std::move(source), options));
  engine->durability_ = durability;

  if (engine->ConfigFingerprint() != checkpoint.fingerprint) {
    return Status::InvalidArgument(
        "durability dir " + durability.dir +
        " was written under a different configuration (fingerprint "
        "mismatch); resume with the original tracker/source/options");
  }
  if (checkpoint.wal_records > wal_contents.records.size()) {
    return Status::Corruption(
        "WAL holds " + std::to_string(wal_contents.records.size()) +
        " records but checkpoint step " + std::to_string(checkpoint.step) +
        " claims " + std::to_string(checkpoint.wal_records) +
        "; the log was truncated after the checkpoint was written");
  }
  if (checkpoint.step != checkpoint.wal_records + 1) {
    return Status::Corruption(
        "inconsistent checkpoint: step " + std::to_string(checkpoint.step) +
        " does not match " + std::to_string(checkpoint.wal_records) +
        " WAL records");
  }

  // Restore the tracker from its state blob when it can do so exactly;
  // otherwise replay the whole WAL from G_0 (bit-identical by the
  // engine's determinism, pinned in tests/engine_test.cc).
  bool restored = false;
  if (checkpoint.has_tracker_state) {
    Status status =
        engine->tracker_->RestoreCheckpointState(checkpoint.tracker_state);
    if (status.ok()) {
      restored = true;
    } else if (status.code() != StatusCode::kUnimplemented) {
      return status;  // corrupt blob
    }
    // kUnimplemented: a tracker family that cannot restore state falls
    // back to full replay — legal when the caller swapped algorithm
    // families, but the fingerprint already rejected that.
  }

  engine->started_ = true;
  if (restored) {
    engine->processed_ = checkpoint.step;
    engine->num_vertices_ = checkpoint.num_vertices;
    engine->total_millis_ = checkpoint.total_millis;
    engine->max_millis_ = checkpoint.max_millis;
    engine->total_candidates_ = checkpoint.total_candidates;
    engine->total_followers_ = checkpoint.total_followers;
    engine->stability_sum_ = checkpoint.stability_sum;
    engine->anchor_changes_ = static_cast<size_t>(checkpoint.anchor_changes);
    engine->previous_anchors_ = checkpoint.previous_anchors;
    engine->wal_seq_ = checkpoint.wal_records;
    engine->source_pulls_committed_ = checkpoint.source_pulls;
    engine->last_.anchors = checkpoint.previous_anchors;
    engine->last_.t = checkpoint.step - 1;
  } else {
    const Graph& g0 = engine->source_->InitialGraph();
    engine->num_vertices_ = g0.NumVertices();
    engine->Record(engine->tracker_->ProcessFirst(g0));
  }

  // Replay the committed transactions past the restore point. Each WAL
  // record is exactly one engine transaction — same merge boundaries,
  // same within-batch order as the interrupted run.
  for (const WalRecord& record : wal_contents.records) {
    if (record.seq <= engine->wal_seq_) continue;
    AVT_RETURN_IF_ERROR(engine->ValidateAndGrow(record.delta));
    engine->Record(engine->tracker_->ProcessDelta(record.delta));
    engine->wal_seq_ = record.seq;
    engine->source_pulls_committed_ += record.source_pulls;

    // Integrity anchor: when full replay passes the checkpoint's step,
    // its deterministic accumulators must match bit-exactly. A
    // mismatch means the WAL and checkpoint describe different runs.
    if (!restored && engine->wal_seq_ == checkpoint.wal_records) {
      const bool consistent =
          engine->processed_ == checkpoint.step &&
          engine->num_vertices_ == checkpoint.num_vertices &&
          engine->total_candidates_ == checkpoint.total_candidates &&
          engine->total_followers_ == checkpoint.total_followers &&
          engine->stability_sum_ == checkpoint.stability_sum &&
          engine->anchor_changes_ == checkpoint.anchor_changes &&
          engine->previous_anchors_ == checkpoint.previous_anchors;
      if (!consistent) {
        return Status::Corruption(
            "WAL replay diverged from checkpoint step " +
            std::to_string(checkpoint.step) +
            "; the durability dir mixes incompatible runs");
      }
    }
  }

  // Fast-forward the source past every committed delta: the stream
  // position after recovery is exactly where the interrupted run's
  // next pull would have started (deltas consumed but never committed
  // are re-supplied by the source — nothing is lost or double-applied).
  EdgeDelta discard;
  for (uint64_t i = 0; i < engine->source_pulls_committed_; ++i) {
    StatusOr<bool> more = engine->source_->NextDelta(&discard);
    if (!more.ok()) return more.status();
    if (!more.value()) {
      return Status::Corruption(
          "source exhausted after " + std::to_string(i) + " of " +
          std::to_string(engine->source_pulls_committed_) +
          " committed pulls; it is not the stream the log was written "
          "from");
    }
  }

  // Resume appending after the intact prefix (truncating a torn tail).
  if (wal_contents.valid_bytes == 0 && wal_contents.records.empty() &&
      !std::filesystem::exists(wal_path)) {
    auto wal = DeltaWal::Create(wal_path, durability.fsync);
    if (!wal.ok()) return wal.status();
    engine->wal_ = std::move(wal).value();
  } else {
    auto wal = DeltaWal::OpenForAppend(wal_path, durability.fsync,
                                       wal_contents.valid_bytes);
    if (!wal.ok()) return wal.status();
    engine->wal_ = std::move(wal).value();
  }
  engine->durable_ = true;
  return engine;
}

Status AvtEngine::Drain() {
  for (;;) {
    StatusOr<bool> stepped = Step();
    if (!stepped.ok()) return stepped.status();
    if (!stepped.value()) return Status::Ok();
  }
}

RunSummary AvtEngine::Summary() const {
  RunSummary summary;
  summary.snapshots = processed_;
  const DeltaSource::Stats source_stats = source_->SourceStats();
  summary.source_retries = source_stats.retries;
  summary.source_transient_errors = source_stats.transient_errors;
  if (processed_ == 0) return summary;
  summary.total_millis = total_millis_;
  summary.max_millis = max_millis_;
  summary.total_candidates = total_candidates_;
  summary.total_followers = total_followers_;
  summary.mean_millis = total_millis_ / static_cast<double>(processed_);
  summary.mean_followers = static_cast<double>(total_followers_) /
                           static_cast<double>(processed_);
  const size_t transitions = processed_ - 1;
  summary.anchor_stability =
      transitions == 0 ? 1.0
                       : stability_sum_ / static_cast<double>(transitions);
  summary.anchor_changes = anchor_changes_;
  summary.memo_hits = memo_hits_;
  summary.memo_misses = memo_misses_;
  summary.memo_evictions = memo_evictions_;
  summary.memo_peak_bytes = memo_peak_bytes_;
  return summary;
}

}  // namespace avt
