#include "core/engine.h"

#include <algorithm>
#include <string>

namespace avt {

AvtEngine::AvtEngine(std::unique_ptr<AvtTracker> tracker,
                     std::unique_ptr<DeltaSource> source,
                     EngineOptions options)
    : tracker_(std::move(tracker)),
      source_(std::move(source)),
      options_(options) {
  AVT_CHECK_MSG(tracker_ != nullptr, "AvtEngine needs a tracker");
  AVT_CHECK_MSG(source_ != nullptr, "AvtEngine needs a delta source");
}

void AvtEngine::Record(AvtSnapshotResult snap) {
  total_millis_ += snap.millis;
  max_millis_ = std::max(max_millis_, snap.millis);
  total_candidates_ += snap.candidates_visited;
  total_followers_ += snap.num_followers;
  if (processed_ > 0) {
    double jaccard = JaccardSimilarity(previous_anchors_, snap.anchors);
    stability_sum_ += jaccard;
    if (jaccard < 1.0) ++anchor_changes_;
  }
  previous_anchors_ = snap.anchors;
  ++processed_;
  if (observer_) observer_(snap);
  if (options_.keep_snapshots) result_.snapshots.push_back(snap);
  last_ = std::move(snap);
}

StatusOr<bool> AvtEngine::Step() {
  if (!started_) {
    started_ = true;
    const Graph& g0 = source_->InitialGraph();
    num_vertices_ = g0.NumVertices();
    Record(tracker_->ProcessFirst(g0));
    return true;
  }

  // A delta that failed validation last Step is re-delivered, so a
  // caller that resolves the problem (grows the tracker by hand, flips
  // grow_universe) and retries does not silently skip the transition.
  // (The pending delta is already merged/validated-shaped: batching
  // happened before the failed validation, so the retry path needs no
  // re-merge.)
  EdgeDelta delta;
  if (has_pending_delta_) {
    delta = std::move(pending_delta_);
    has_pending_delta_ = false;
  } else {
    const size_t batch = tracker_->PreferredBatchSize();
    if (batch <= 1) {
      // Verbatim per-delta delivery — within-batch op order reaches the
      // tracker untouched (canonicalization would reorder it).
      if (!source_->NextDelta(&delta)) return false;
    } else {
      // Batched transaction: merge up to `batch` consecutive deltas
      // into one canonical net-effect delta (last-op-wins, exactly the
      // state the per-delta replay reaches at this boundary). The
      // tracker pays its per-transition fixed costs once per batch.
      EdgeDelta pulled;
      while (batcher_.merged() < batch && source_->NextDelta(&pulled)) {
        batcher_.Add(pulled);
      }
      if (batcher_.Empty()) return false;
      batcher_.Flush(&delta);
    }
  }

  // Source boundary: every endpoint must fit the tracker's universe.
  VertexId max_id = 0;
  bool any_endpoint = false;
  for (const std::vector<Edge>* batch : {&delta.insertions,
                                         &delta.deletions}) {
    for (const Edge& e : *batch) {
      max_id = std::max({max_id, e.u, e.v});
      any_endpoint = true;
    }
  }
  if (any_endpoint && max_id >= num_vertices_) {
    if (!options_.grow_universe) {
      pending_delta_ = std::move(delta);
      has_pending_delta_ = true;
      return Status::OutOfRange(
          "delta (transition " + std::to_string(processed_) +
          " from source '" + source_->name() + "') references vertex " +
          std::to_string(max_id) + " but the universe holds " +
          std::to_string(num_vertices_) +
          " vertices; enable EngineOptions::grow_universe for streaming "
          "sources or fix the source");
    }
    tracker_->EnsureVertices(max_id + 1);
    num_vertices_ = max_id + 1;
  }

  Record(tracker_->ProcessDelta(delta));
  return true;
}

Status AvtEngine::Drain() {
  for (;;) {
    StatusOr<bool> stepped = Step();
    if (!stepped.ok()) return stepped.status();
    if (!stepped.value()) return Status::Ok();
  }
}

RunSummary AvtEngine::Summary() const {
  RunSummary summary;
  summary.snapshots = processed_;
  if (processed_ == 0) return summary;
  summary.total_millis = total_millis_;
  summary.max_millis = max_millis_;
  summary.total_candidates = total_candidates_;
  summary.total_followers = total_followers_;
  summary.mean_millis = total_millis_ / static_cast<double>(processed_);
  summary.mean_followers = static_cast<double>(total_followers_) /
                           static_cast<double>(processed_);
  const size_t transitions = processed_ - 1;
  summary.anchor_stability =
      transitions == 0 ? 1.0
                       : stability_sum_ / static_cast<double>(transitions);
  summary.anchor_changes = anchor_changes_;
  return summary;
}

}  // namespace avt
