#include "core/engine.h"

#include <algorithm>
#include <filesystem>
#include <string>
#include <utility>

#include "durability/checkpoint.h"
#include "durability/serde.h"
#include "util/mem.h"

namespace avt {

namespace {

/// Replay-side twin of ValidateAndGrow for trackers the engine does
/// not own yet (recovery rebuilds, bisection probes): grows the
/// tracker for a committed/candidate delta unconditionally — the
/// engine's boundary checks already ran when the delta first arrived.
void GrowForReplay(AvtTracker& tracker, const EdgeDelta& delta,
                   VertexId* universe) {
  VertexId max_id = 0;
  bool any_endpoint = false;
  for (const std::vector<Edge>* batch : {&delta.insertions,
                                         &delta.deletions}) {
    for (const Edge& e : *batch) {
      max_id = std::max({max_id, e.u, e.v});
      any_endpoint = true;
    }
  }
  if (any_endpoint && max_id >= *universe) {
    tracker.EnsureVertices(max_id + 1);
    *universe = max_id + 1;
  }
}

}  // namespace

AvtEngine::AvtEngine(std::unique_ptr<AvtTracker> tracker,
                     std::unique_ptr<DeltaSource> source,
                     EngineOptions options)
    : tracker_(std::move(tracker)),
      source_(std::move(source)),
      options_(options),
      auditor_(options.audit) {
  AVT_CHECK_MSG(tracker_ != nullptr, "AvtEngine needs a tracker");
  AVT_CHECK_MSG(source_ != nullptr, "AvtEngine needs a delta source");
}

void AvtEngine::Record(AvtSnapshotResult snap) {
  total_millis_ += snap.millis;
  max_millis_ = std::max(max_millis_, snap.millis);
  total_candidates_ += snap.candidates_visited;
  total_followers_ += snap.num_followers;
  memo_hits_ += snap.memo_hits;
  memo_misses_ += snap.memo_misses;
  memo_evictions_ += snap.memo_evictions;
  memo_peak_bytes_ = std::max(memo_peak_bytes_, snap.memo_bytes);
  if (processed_ > 0) {
    double jaccard = JaccardSimilarity(previous_anchors_, snap.anchors);
    stability_sum_ += jaccard;
    if (jaccard < 1.0) ++anchor_changes_;
  }
  previous_anchors_ = snap.anchors;
  ++processed_;
  // Replayed snapshots (AdoptReplay) were observed when first
  // processed; re-announcing them would double every side effect.
  if (observer_ && !replaying_) observer_(snap);
  if (options_.keep_snapshots) result_.snapshots.push_back(snap);
  last_ = std::move(snap);
}

Status AvtEngine::ValidateAndGrow(const EdgeDelta& delta) {
  // Source boundary: every endpoint must fit the tracker's universe.
  VertexId max_id = 0;
  bool any_endpoint = false;
  for (const std::vector<Edge>* batch : {&delta.insertions,
                                         &delta.deletions}) {
    for (const Edge& e : *batch) {
      max_id = std::max({max_id, e.u, e.v});
      any_endpoint = true;
    }
  }
  if (any_endpoint && options_.max_universe > 0 &&
      max_id >= options_.max_universe) {
    return Status::OutOfRange(
        "delta (transition " + std::to_string(processed_) +
        " from source '" + source_->name() + "') references vertex " +
        std::to_string(max_id) + " at or beyond the max_universe cap of " +
        std::to_string(options_.max_universe));
  }
  if (any_endpoint && max_id >= num_vertices_) {
    if (!options_.grow_universe) {
      return Status::OutOfRange(
          "delta (transition " + std::to_string(processed_) +
          " from source '" + source_->name() + "') references vertex " +
          std::to_string(max_id) + " but the universe holds " +
          std::to_string(num_vertices_) +
          " vertices; enable EngineOptions::grow_universe for streaming "
          "sources or fix the source");
    }
    tracker_->EnsureVertices(max_id + 1);
    num_vertices_ = max_id + 1;
  }
  return Status::Ok();
}

StatusOr<bool> AvtEngine::Step() {
  if (!halt_status_.ok()) return halt_status_;
  if (durable_ && !durability_broken_.ok()) return durability_broken_;

  if (!started_) {
    started_ = true;
    const Graph& g0 = source_->InitialGraph();
    num_vertices_ = g0.NumVertices();
    Record(tracker_->ProcessFirst(g0));
    if (durable_) {
      // The initial checkpoint anchors the fingerprint and gives
      // Recover something to validate even before the first cadenced
      // checkpoint lands.
      Status status = WriteCheckpointNow();
      if (!status.ok()) {
        durability_broken_ = status;
        health_.Halt(HealthReason::kDurabilityFailure, processed_,
                     status.message());
        return status;
      }
    }
    return true;
  }

  // A delta that failed validation last Step is re-delivered, so a
  // caller that resolves the problem (grows the tracker by hand, flips
  // grow_universe) and retries does not silently skip the transition.
  // (The pending delta is already merged/validated-shaped: batching
  // happened before the failed validation, so the retry path needs no
  // re-merge.)
  EdgeDelta delta;
  if (has_pending_delta_) {
    delta = std::move(pending_delta_);
    has_pending_delta_ = false;
  } else {
    const size_t batch = tracker_->PreferredBatchSize();
    if (batch <= 1) {
      // Verbatim per-delta delivery — within-batch op order reaches the
      // tracker untouched (canonicalization would reorder it).
      StatusOr<bool> pulled = PullOne(&delta);
      if (!pulled.ok()) return SourcePullFailed(pulled.status());
      unavailable_streak_ = 0;
      if (!pulled.value()) return false;
    } else {
      // Batched transaction: merge up to `batch` consecutive deltas
      // into one canonical net-effect delta (last-op-wins, exactly the
      // state the per-delta replay reaches at this boundary). The
      // tracker pays its per-transition fixed costs once per batch. A
      // transient source error propagates with the partial batch
      // retained in the batcher — the next Step resumes the merge.
      EdgeDelta pulled;
      while (batcher_.merged() < batch) {
        StatusOr<bool> more = PullOne(&pulled);
        if (!more.ok()) return SourcePullFailed(more.status());
        if (!more.value()) break;
        batcher_.Add(pulled);
      }
      unavailable_streak_ = 0;
      if (batcher_.Empty()) return false;
      batcher_.Flush(&delta);
    }
  }

  Status valid = ValidateAndGrow(delta);
  if (!valid.ok()) {
    pending_delta_ = std::move(delta);
    has_pending_delta_ = true;
    return valid;
  }

  AvtSnapshotResult snap = tracker_->ProcessDelta(delta);

  // Pre-commit audit: a divergence must be caught while the suspect
  // transaction is still OUTSIDE the WAL — the committed prefix then
  // provably describes the last audited-good state, which is what
  // rollback recovery rebuilds.
  if (auditor_.Due(processed_)) {
    if (audit_drill_pending_) {
      // Drill: desync the index now, with the snapshot already computed
      // from the healthy state, so the audit below must fail and the
      // rollback recovery must reproduce this exact snapshot.
      audit_drill_pending_ = false;
      tracker_->InjectAuditFaultForDrill();
    }
    AuditOutcome outcome = AuditTracker(*tracker_);
    if (outcome.audited && !outcome.ok) {
      Status healed = HandleAuditFailure(std::move(delta), outcome.failure);
      if (!healed.ok()) return healed;
      txn_source_deltas_.clear();
      return true;  // HandleAuditFailure recorded + committed
    }
  }

  Record(std::move(snap));
  txn_source_deltas_.clear();

  if (durable_) {
    Status status = CommitDurable(delta);
    if (!status.ok()) {
      durability_broken_ = status;
      health_.Halt(HealthReason::kDurabilityFailure, processed_,
                   status.message());
      return status;
    }
  }
  return true;
}

StatusOr<bool> AvtEngine::PullOne(EdgeDelta* delta) {
  for (;;) {
    StatusOr<bool> pulled = source_->NextDelta(delta);
    if (!pulled.ok()) return pulled;
    if (!pulled.value()) return false;
    ++uncommitted_pulls_;
    const uint64_t pull_index = source_pulls_committed_ + uncommitted_pulls_;
    if (QuarantineArmed()) {
      QuarantineReason reason;
      std::string detail;
      if (!PreValidateSourceDelta(*delta, &reason, &detail)) {
        // Poison diverted at the source boundary: the pull is counted
        // (commit accounting must match the stream cursor), the delta
        // never reaches the tracker, and the engine keeps pulling.
        AVT_RETURN_IF_ERROR(
            Quarantine(reason, *delta, pull_index, std::move(detail)));
        continue;
      }
    }
    if (auditor_.enabled()) {
      txn_source_deltas_.push_back({*delta, pull_index});
    }
    return true;
  }
}

StatusOr<bool> AvtEngine::SourcePullFailed(const Status& status) {
  if (status.code() != StatusCode::kUnavailable) return status;
  // An open circuit breaker rejected the pull. Degrade and let Drain
  // keep stepping — each rejected pull counts down the breaker's
  // pull-counted cooldown, so stepping IS the path back to a
  // half-open probe — but bound the patience so a dead source cannot
  // spin the engine forever.
  health_.Degrade(HealthReason::kSourceUnavailable, processed_,
                  status.message());
  ++unavailable_streak_;
  if (unavailable_streak_ > options_.max_source_failures) {
    return HaltWith(
        HealthReason::kSourceFailure,
        Status::Unavailable(
            "source stayed unavailable for " +
            std::to_string(unavailable_streak_) +
            " consecutive pulls (max_source_failures = " +
            std::to_string(options_.max_source_failures) + "); halting"));
  }
  return status;
}

bool AvtEngine::PreValidateSourceDelta(const EdgeDelta& delta,
                                       QuarantineReason* reason,
                                       std::string* detail) const {
  VertexId max_id = 0;
  bool any_endpoint = false;
  for (const std::vector<Edge>* batch : {&delta.insertions,
                                         &delta.deletions}) {
    for (const Edge& e : *batch) {
      if (e.u == e.v) {
        *reason = QuarantineReason::kInvalidDelta;
        *detail = "self-loop edge {" + std::to_string(e.u) + ", " +
                  std::to_string(e.v) + "}";
        return false;
      }
      max_id = std::max({max_id, e.u, e.v});
      any_endpoint = true;
    }
  }
  if (!any_endpoint) return true;
  if (options_.max_universe > 0 && max_id >= options_.max_universe) {
    *reason = QuarantineReason::kUniverseExceeded;
    *detail = "vertex " + std::to_string(max_id) +
              " at or beyond the max_universe cap of " +
              std::to_string(options_.max_universe);
    return false;
  }
  if (!options_.grow_universe && max_id >= num_vertices_) {
    *reason = QuarantineReason::kUniverseExceeded;
    *detail = "vertex " + std::to_string(max_id) +
              " outside the frozen universe of " +
              std::to_string(num_vertices_) + " vertices";
    return false;
  }
  return true;
}

Status AvtEngine::Quarantine(QuarantineReason reason, const EdgeDelta& delta,
                             uint64_t pull, std::string detail) {
  if (quarantine_ == nullptr) {
    StatusOr<std::unique_ptr<QuarantineLog>> log =
        QuarantineLog::Open(options_.quarantine_dir);
    if (!log.ok()) {
      // Failing open would mean silently dropping poison evidence —
      // the one thing the dead-letter log exists to prevent.
      return HaltWith(HealthReason::kDurabilityFailure, log.status());
    }
    quarantine_ = std::move(log).value();
  }
  QuarantineRecord record;
  record.reason = reason;
  record.source_pull = pull;
  record.delta = delta;
  record.detail = std::move(detail);
  Status status = quarantine_->Append(&record);
  if (!status.ok()) {
    return HaltWith(HealthReason::kDurabilityFailure, status);
  }
  ++quarantined_;
  health_.Degrade(HealthReason::kQuarantinedDelta, processed_,
                  std::string(QuarantineReasonName(reason)) + ": " +
                      record.detail);
  return Status::Ok();
}

AuditOutcome AvtEngine::AuditTracker(const AvtTracker& tracker) {
  const TrackerAuditView view = tracker.AuditView();
  return auditor_.Audit(view.graph, view.order, processed_);
}

Status AvtEngine::HaltWith(HealthReason reason, Status status) {
  health_.Halt(reason, processed_, status.message());
  halt_status_ = status;
  return status;
}

StatusOr<AvtEngine::ReplayedRun> AvtEngine::RebuildFromWal() {
  // Buffered appends must be visible to the independent read below.
  if (wal_ != nullptr) AVT_RETURN_IF_ERROR(wal_->Flush());
  StatusOr<DeltaWal::ReadResult> read =
      DeltaWal::ReadAll(durability_.dir + "/" + DeltaWal::kFileName);
  if (!read.ok()) return read.status();

  ReplayedRun run;
  run.tracker = tracker_factory_();
  if (run.tracker == nullptr) {
    return Status::Internal("tracker factory returned null");
  }
  const Graph& g0 = source_->InitialGraph();
  run.num_vertices = g0.NumVertices();
  run.snaps.reserve(read.value().records.size() + 1);
  run.snaps.push_back(run.tracker->ProcessFirst(g0));
  for (const WalRecord& record : read.value().records) {
    GrowForReplay(*run.tracker, record.delta, &run.num_vertices);
    run.snaps.push_back(run.tracker->ProcessDelta(record.delta));
  }
  return run;
}

void AvtEngine::AdoptReplay(ReplayedRun run) {
  tracker_ = std::move(run.tracker);
  num_vertices_ = run.num_vertices;
  // Re-derive every accumulator from the replayed snapshots: results
  // recorded between the corruption and its detection may be wrong,
  // and the deterministic replay recomputes all of them exactly
  // (timings are recomputed too — they are advisory, and the
  // checkpoint cross-check deliberately excludes them).
  processed_ = 0;
  total_millis_ = 0;
  max_millis_ = 0;
  total_candidates_ = 0;
  total_followers_ = 0;
  stability_sum_ = 0;
  anchor_changes_ = 0;
  memo_hits_ = 0;
  memo_misses_ = 0;
  memo_evictions_ = 0;
  memo_peak_bytes_ = 0;
  previous_anchors_.clear();
  result_.snapshots.clear();
  replaying_ = true;
  for (AvtSnapshotResult& snap : run.snaps) Record(std::move(snap));
  replaying_ = false;
}

Status AvtEngine::HandleAuditFailure(EdgeDelta delta,
                                     const std::string& failure) {
  const std::string at =
      "integrity audit failed at transaction " + std::to_string(processed_);
  if (!durable_ || !tracker_factory_) {
    // No rollback machinery: the only honest move is to halt before
    // the divergent state commits anything further.
    return HaltWith(
        HealthReason::kCorruption,
        Status::Corruption(at + ": " + failure +
                           (durable_ ? " (no tracker factory; cannot "
                                       "self-recover)"
                                     : " (durability off; nothing to roll "
                                       "back to)")));
  }

  // 1. Roll back: rebuild the last known-good state from G_0 plus the
  // committed WAL prefix (every record there predates this audit).
  StatusOr<ReplayedRun> rebuilt_or = RebuildFromWal();
  if (!rebuilt_or.ok()) {
    return HaltWith(HealthReason::kCorruption, rebuilt_or.status());
  }
  ReplayedRun rebuilt = std::move(rebuilt_or).value();

  // 2. Re-audit the rebuild. If the committed prefix itself diverges,
  // the log does not describe a healthy run — halt with kCorruption,
  // exactly the contract: recover once, never loop on a lie.
  AuditOutcome base = AuditTracker(*rebuilt.tracker);
  if (base.audited && !base.ok) {
    return HaltWith(
        HealthReason::kCorruption,
        Status::Corruption(at + " and the state rebuilt from "
                           "checkpoint+WAL diverges again: " + base.failure));
  }

  // 3. Innocent-delta check: apply the suspect transaction to the
  // clean rebuild. If the audit now passes, the divergence was
  // in-memory corruption (bit flip, logic drill) and the rollback
  // healed it — adopt the rebuild and commit the transaction normally.
  GrowForReplay(*rebuilt.tracker, delta, &rebuilt.num_vertices);
  AvtSnapshotResult snap = rebuilt.tracker->ProcessDelta(delta);
  AuditOutcome retried = AuditTracker(*rebuilt.tracker);
  if (!retried.audited || retried.ok) {
    AdoptReplay(std::move(rebuilt));
    ++recoveries_;
    health_.Degrade(HealthReason::kAuditRecovered, processed_,
                    at + "; healed by checkpoint+WAL rollback");
    Record(std::move(snap));
    if (durable_) {
      Status status = CommitDurable(delta);
      if (!status.ok()) {
        durability_broken_ = status;
        health_.Halt(HealthReason::kDurabilityFailure, processed_,
                     status.message());
        return status;
      }
    }
    return Status::Ok();
  }

  // 4. The transaction itself is poison. Without quarantine there is
  // no honest way to skip it.
  if (!QuarantineArmed()) {
    return HaltWith(
        HealthReason::kCorruption,
        Status::Corruption(
            at + ": the transaction trips the audit even on a clean "
                 "rebuild (" + retried.failure +
            "); arm EngineOptions::quarantine_dir to isolate the poison"));
  }

  // 5. Deterministic bisection over the raw source deltas of this
  // transaction. Invariant per round: the kept prefix passes on a
  // clean rebuild; kept+remaining fails. Binary-search the smallest
  // failing prefix of `remaining`, quarantine the delta at its edge,
  // repeat until kept+remaining passes. Every probe replays from the
  // same committed WAL prefix, so the search is exactly reproducible.
  std::vector<PulledDelta> remaining = std::move(txn_source_deltas_);
  txn_source_deltas_.clear();
  if (remaining.empty()) remaining.push_back({delta, 0});
  std::vector<PulledDelta> kept;

  auto merge = [](const std::vector<PulledDelta>& deltas) {
    DeltaBatcher batcher;
    for (const PulledDelta& pulled : deltas) batcher.Add(pulled.delta);
    EdgeDelta merged;
    if (!batcher.Empty()) batcher.Flush(&merged);
    return merged;
  };
  auto probe = [&](size_t take) -> StatusOr<bool> {
    // Apply kept + the first `take` of remaining to a fresh rebuild.
    StatusOr<ReplayedRun> run_or = RebuildFromWal();
    if (!run_or.ok()) return run_or.status();
    ReplayedRun run = std::move(run_or).value();
    std::vector<PulledDelta> candidate = kept;
    candidate.insert(candidate.end(), remaining.begin(),
                     remaining.begin() + take);
    EdgeDelta merged = merge(candidate);
    GrowForReplay(*run.tracker, merged, &run.num_vertices);
    run.tracker->ProcessDelta(merged);
    AuditOutcome outcome = AuditTracker(*run.tracker);
    return !outcome.audited || outcome.ok;
  };

  for (;;) {
    StatusOr<bool> whole = probe(remaining.size());
    if (!whole.ok()) return HaltWith(HealthReason::kCorruption,
                                     whole.status());
    if (whole.value()) break;
    size_t lo = 1;
    size_t hi = remaining.size();
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      StatusOr<bool> passes = probe(mid);
      if (!passes.ok()) return HaltWith(HealthReason::kCorruption,
                                        passes.status());
      if (passes.value()) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    // remaining[lo-1] is the first delta whose application trips the
    // audit given everything kept so far.
    const PulledDelta poison = remaining[lo - 1];
    AVT_RETURN_IF_ERROR(Quarantine(
        QuarantineReason::kAuditDivergence, poison.delta, poison.pull,
        "isolated by bisection at transaction " + std::to_string(processed_) +
            ": " + failure));
    kept.insert(kept.end(), remaining.begin(), remaining.begin() + (lo - 1));
    remaining.erase(remaining.begin(), remaining.begin() + lo);
  }
  kept.insert(kept.end(), remaining.begin(), remaining.end());

  // 6. Rebuild once more, apply the cleaned transaction for real, and
  // paranoia-audit the result before adopting it.
  StatusOr<ReplayedRun> healed_or = RebuildFromWal();
  if (!healed_or.ok()) {
    return HaltWith(HealthReason::kCorruption, healed_or.status());
  }
  ReplayedRun healed = std::move(healed_or).value();
  EdgeDelta cleaned = merge(kept);
  GrowForReplay(*healed.tracker, cleaned, &healed.num_vertices);
  AvtSnapshotResult cleaned_snap = healed.tracker->ProcessDelta(cleaned);
  AuditOutcome verify = AuditTracker(*healed.tracker);
  if (verify.audited && !verify.ok) {
    return HaltWith(
        HealthReason::kCorruption,
        Status::Corruption(at + ": state still diverges after bisection (" +
                           verify.failure + ")"));
  }
  AdoptReplay(std::move(healed));
  ++recoveries_;
  Record(std::move(cleaned_snap));
  if (durable_) {
    // The committed transaction is the CLEANED one; its source_pulls
    // still count every pull of the original batch (quarantined deltas
    // consumed stream positions too), so recovery fast-forward stays
    // exact.
    Status status = CommitDurable(cleaned);
    if (!status.ok()) {
      durability_broken_ = status;
      health_.Halt(HealthReason::kDurabilityFailure, processed_,
                   status.message());
      return status;
    }
  }
  return Status::Ok();
}

Status AvtEngine::CommitDurable(const EdgeDelta& delta) {
  WalRecord record;
  record.seq = wal_seq_ + 1;
  record.source_pulls = uncommitted_pulls_;
  record.delta = delta;
  AVT_RETURN_IF_ERROR(wal_->Append(record));
  ++wal_seq_;
  source_pulls_committed_ += uncommitted_pulls_;
  uncommitted_pulls_ = 0;

  const size_t transactions = processed_ - 1;  // G_0 is not a WAL record
  if (durability_.checkpoint_every > 0 &&
      transactions % durability_.checkpoint_every == 0) {
    // The WAL prefix this checkpoint summarizes must be in the file
    // before the checkpoint claims it happened (fflush suffices for
    // SIGKILL-survival; kEveryRecord already fsynced).
    if (durability_.fsync == FsyncPolicy::kNever) {
      AVT_RETURN_IF_ERROR(wal_->Flush());
    }
    AVT_RETURN_IF_ERROR(WriteCheckpointNow());
  }
  return Status::Ok();
}

Status AvtEngine::WriteCheckpointNow() {
  CheckpointData data;
  data.fingerprint = ConfigFingerprint();
  data.step = processed_;
  data.wal_records = wal_seq_;
  data.source_pulls = source_pulls_committed_;
  data.num_vertices = num_vertices_;
  data.total_millis = total_millis_;
  data.max_millis = max_millis_;
  data.total_candidates = total_candidates_;
  data.total_followers = total_followers_;
  data.stability_sum = stability_sum_;
  data.anchor_changes = anchor_changes_;
  data.previous_anchors = previous_anchors_;
  std::string blob;
  if (tracker_->SaveCheckpointState(&blob)) {
    data.has_tracker_state = true;
    data.tracker_state = std::move(blob);
  }
  return WriteCheckpoint(durability_.dir, data,
                         durability_.fsync != FsyncPolicy::kNever);
}

uint64_t AvtEngine::ConfigFingerprint() const {
  std::string config;
  config += tracker_->name();
  config += '\x1f';
  config += std::to_string(tracker_->PreferredBatchSize());
  config += '\x1f';
  config += source_->name();
  config += '\x1f';
  config += options_.grow_universe ? '1' : '0';
  config += '\x1f';
  config += durability_.config_extra;
  return serde::Fnv1a64(config);
}

Status AvtEngine::EnableDurability(const DurabilityOptions& options) {
  if (started_) {
    return Status::InvalidArgument(
        "EnableDurability must precede the first Step");
  }
  if (options.dir.empty()) {
    return Status::InvalidArgument("durability needs a directory");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return Status::IoError("cannot create durability dir " + options.dir +
                           ": " + ec.message());
  }
  durability_ = options;
  auto checkpoints = ListCheckpoints(options.dir);
  if (!checkpoints.ok()) return checkpoints.status();
  if (!checkpoints.value().empty() ||
      std::filesystem::exists(
          options.dir + "/" + DeltaWal::kFileName, ec)) {
    return Status::InvalidArgument(
        "durability dir " + options.dir +
        " already contains a run; Recover from it or use a fresh dir");
  }
  auto wal = DeltaWal::Create(options.dir + "/" + DeltaWal::kFileName,
                              options.fsync);
  if (!wal.ok()) return wal.status();
  wal_ = std::move(wal).value();
  durable_ = true;
  return Status::Ok();
}

StatusOr<std::unique_ptr<AvtEngine>> AvtEngine::Recover(
    std::unique_ptr<AvtTracker> tracker, std::unique_ptr<DeltaSource> source,
    const EngineOptions& options, const DurabilityOptions& durability) {
  auto checkpoint_or = LoadLatestValidCheckpoint(durability.dir);
  if (!checkpoint_or.ok()) return checkpoint_or.status();
  CheckpointData checkpoint = std::move(checkpoint_or).value();

  const std::string wal_path = durability.dir + "/" + DeltaWal::kFileName;
  DeltaWal::ReadResult wal_contents;
  {
    StatusOr<DeltaWal::ReadResult> read = DeltaWal::ReadAll(wal_path);
    if (read.ok()) {
      wal_contents = std::move(read).value();
    } else if (read.status().code() == StatusCode::kNotFound) {
      // Crash before the WAL was created: recoverable iff the
      // checkpoint never claimed any records (checked below).
    } else {
      return read.status();
    }
  }

  auto engine = std::unique_ptr<AvtEngine>(
      new AvtEngine(std::move(tracker), std::move(source), options));
  engine->durability_ = durability;

  if (engine->ConfigFingerprint() != checkpoint.fingerprint) {
    return Status::InvalidArgument(
        "durability dir " + durability.dir +
        " was written under a different configuration (fingerprint "
        "mismatch); resume with the original tracker/source/options");
  }
  if (checkpoint.wal_records > wal_contents.records.size()) {
    return Status::Corruption(
        "WAL holds " + std::to_string(wal_contents.records.size()) +
        " records but checkpoint step " + std::to_string(checkpoint.step) +
        " claims " + std::to_string(checkpoint.wal_records) +
        "; the log was truncated after the checkpoint was written");
  }
  if (checkpoint.step != checkpoint.wal_records + 1) {
    return Status::Corruption(
        "inconsistent checkpoint: step " + std::to_string(checkpoint.step) +
        " does not match " + std::to_string(checkpoint.wal_records) +
        " WAL records");
  }

  // Restore the tracker from its state blob when it can do so exactly;
  // otherwise replay the whole WAL from G_0 (bit-identical by the
  // engine's determinism, pinned in tests/engine_test.cc).
  bool restored = false;
  if (checkpoint.has_tracker_state) {
    Status status =
        engine->tracker_->RestoreCheckpointState(checkpoint.tracker_state);
    if (status.ok()) {
      restored = true;
    } else if (status.code() != StatusCode::kUnimplemented) {
      return status;  // corrupt blob
    }
    // kUnimplemented: a tracker family that cannot restore state falls
    // back to full replay — legal when the caller swapped algorithm
    // families, but the fingerprint already rejected that.
  }

  engine->started_ = true;
  if (restored) {
    engine->processed_ = checkpoint.step;
    engine->num_vertices_ = checkpoint.num_vertices;
    engine->total_millis_ = checkpoint.total_millis;
    engine->max_millis_ = checkpoint.max_millis;
    engine->total_candidates_ = checkpoint.total_candidates;
    engine->total_followers_ = checkpoint.total_followers;
    engine->stability_sum_ = checkpoint.stability_sum;
    engine->anchor_changes_ = static_cast<size_t>(checkpoint.anchor_changes);
    engine->previous_anchors_ = checkpoint.previous_anchors;
    engine->wal_seq_ = checkpoint.wal_records;
    engine->source_pulls_committed_ = checkpoint.source_pulls;
    engine->last_.anchors = checkpoint.previous_anchors;
    engine->last_.t = checkpoint.step - 1;
  } else {
    const Graph& g0 = engine->source_->InitialGraph();
    engine->num_vertices_ = g0.NumVertices();
    engine->Record(engine->tracker_->ProcessFirst(g0));
  }

  // Replay the committed transactions past the restore point. Each WAL
  // record is exactly one engine transaction — same merge boundaries,
  // same within-batch order as the interrupted run.
  for (const WalRecord& record : wal_contents.records) {
    if (record.seq <= engine->wal_seq_) continue;
    AVT_RETURN_IF_ERROR(engine->ValidateAndGrow(record.delta));
    engine->Record(engine->tracker_->ProcessDelta(record.delta));
    engine->wal_seq_ = record.seq;
    engine->source_pulls_committed_ += record.source_pulls;

    // Integrity anchor: when full replay passes the checkpoint's step,
    // its deterministic accumulators must match bit-exactly. A
    // mismatch means the WAL and checkpoint describe different runs.
    if (!restored && engine->wal_seq_ == checkpoint.wal_records) {
      const bool consistent =
          engine->processed_ == checkpoint.step &&
          engine->num_vertices_ == checkpoint.num_vertices &&
          engine->total_candidates_ == checkpoint.total_candidates &&
          engine->total_followers_ == checkpoint.total_followers &&
          engine->stability_sum_ == checkpoint.stability_sum &&
          engine->anchor_changes_ == checkpoint.anchor_changes &&
          engine->previous_anchors_ == checkpoint.previous_anchors;
      if (!consistent) {
        return Status::Corruption(
            "WAL replay diverged from checkpoint step " +
            std::to_string(checkpoint.step) +
            "; the durability dir mixes incompatible runs");
      }
    }
  }

  // Fast-forward the source past every committed delta: the stream
  // position after recovery is exactly where the interrupted run's
  // next pull would have started (deltas consumed but never committed
  // are re-supplied by the source — nothing is lost or double-applied).
  EdgeDelta discard;
  for (uint64_t i = 0; i < engine->source_pulls_committed_; ++i) {
    StatusOr<bool> more = engine->source_->NextDelta(&discard);
    if (!more.ok()) return more.status();
    if (!more.value()) {
      return Status::Corruption(
          "source exhausted after " + std::to_string(i) + " of " +
          std::to_string(engine->source_pulls_committed_) +
          " committed pulls; it is not the stream the log was written "
          "from");
    }
  }

  // Resume appending after the intact prefix (truncating a torn tail).
  if (wal_contents.valid_bytes == 0 && wal_contents.records.empty() &&
      !std::filesystem::exists(wal_path)) {
    auto wal = DeltaWal::Create(wal_path, durability.fsync);
    if (!wal.ok()) return wal.status();
    engine->wal_ = std::move(wal).value();
  } else {
    auto wal = DeltaWal::OpenForAppend(wal_path, durability.fsync,
                                       wal_contents.valid_bytes);
    if (!wal.ok()) return wal.status();
    engine->wal_ = std::move(wal).value();
  }
  engine->durable_ = true;
  return engine;
}

Status AvtEngine::Drain() {
  for (;;) {
    StatusOr<bool> stepped = Step();
    if (!stepped.ok()) {
      // An open circuit breaker rejects pulls with kUnavailable; each
      // rejected pull counts down its pull-counted cooldown, so the
      // way to wait it out is to keep stepping. SourcePullFailed halts
      // the engine if the streak outlives max_source_failures, at
      // which point halt_status_ is set and we stop retrying.
      if (stepped.status().code() == StatusCode::kUnavailable &&
          halt_status_.ok()) {
        continue;
      }
      return stepped.status();
    }
    if (!stepped.value()) return Status::Ok();
  }
}

RunSummary AvtEngine::Summary() const {
  RunSummary summary;
  summary.snapshots = processed_;
  const DeltaSource::Stats source_stats = source_->SourceStats();
  summary.source_retries = source_stats.retries;
  summary.source_transient_errors = source_stats.transient_errors;
  summary.breaker_opens = source_stats.breaker_opens;
  summary.breaker_rejected_pulls = source_stats.breaker_rejected_pulls;
  summary.audits_run = auditor_.audits_run();
  summary.audits_failed = auditor_.audits_failed();
  summary.deltas_quarantined = quarantined_;
  summary.recoveries = recoveries_;
  summary.health = health_.state();
  summary.health_reason = health_.reason();
  summary.peak_rss_bytes = PeakRssBytes();
  if (processed_ == 0) return summary;
  summary.total_millis = total_millis_;
  summary.max_millis = max_millis_;
  summary.total_candidates = total_candidates_;
  summary.total_followers = total_followers_;
  summary.mean_millis = total_millis_ / static_cast<double>(processed_);
  summary.mean_followers = static_cast<double>(total_followers_) /
                           static_cast<double>(processed_);
  const size_t transitions = processed_ - 1;
  summary.anchor_stability =
      transitions == 0 ? 1.0
                       : stability_sum_ / static_cast<double>(transitions);
  summary.anchor_changes = anchor_changes_;
  summary.memo_hits = memo_hits_;
  summary.memo_misses = memo_misses_;
  summary.memo_evictions = memo_evictions_;
  summary.memo_peak_bytes = memo_peak_bytes_;
  return summary;
}

}  // namespace avt
