// AvtEngine: the push-based streaming layer between delta sources and
// trackers.
//
//   DeltaSource  ──pull──▶  AvtEngine  ──push──▶  AvtTracker
//        │                      │                     │
//   (file / generator /    validates ids,        per-snapshot
//    sequence / coalesce)  grows the universe,   AvtSnapshotResult
//                          times & records            │
//                               └────────▶ RunSummary sink
//
// The engine owns one tracker and one source, drives the stream
// (Step-at-a-time for tools that pause and inspect, Drain for batch
// runs), and folds every snapshot into a running RunSummary so long
// streams can drop per-snapshot results (keep_snapshots = false) and
// still report aggregates in O(1) memory.
//
// The engine is also the SOURCE BOUNDARY for vertex-universe growth: a
// delta referencing an id outside the tracker's universe either grows
// the tracker first (grow_universe, the default — streaming file
// sources discover vertices mid-stream) or is rejected with a precise
// Status naming the offending id — never handed down to trip an
// assertion deep inside Graph::AddEdge.
//
// Replay invariance: driving a tracker through AvtEngine +
// SequenceSource produces bit-identical snapshots to the historical
// materialized ForEachSnapshot replay (the source re-emits deltas
// verbatim and trackers maintain their own state); enforced by
// tests/engine_test.cc and the differential fuzz.

#ifndef AVT_CORE_ENGINE_H_
#define AVT_CORE_ENGINE_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/avt.h"
#include "core/health.h"
#include "core/run_summary.h"
#include "durability/quarantine.h"
#include "durability/wal.h"
#include "graph/delta_source.h"
#include "util/status.h"

namespace avt {

/// Engine behavior knobs.
struct EngineOptions {
  /// Grow the tracker's vertex universe when a delta references unseen
  /// ids (streaming sources). When false such a delta is an error.
  bool grow_universe = true;
  /// Retain every per-snapshot result in result(). Disable for
  /// unbounded streams: aggregates and last() stay available.
  bool keep_snapshots = true;
  /// Online integrity audits (core/health.h): every `audit.every`
  /// committed transactions the tracker's maintained state is
  /// cross-checked against a fresh decomposition BEFORE the
  /// transaction commits — so a divergence is caught while the
  /// suspect transaction is still outside the WAL and rollback can
  /// rebuild the last known-good state. audit.every = 0 disables.
  AuditOptions audit;
  /// Non-empty arms poison-delta quarantine: source deltas failing
  /// structural validation (or isolated by audit bisection) are
  /// appended to <quarantine_dir>/quarantine.avtq and skipped, and the
  /// engine continues in HealthState::kDegraded instead of erroring.
  std::string quarantine_dir;
  /// Hard cap on the vertex universe; 0 = uncapped. A delta whose
  /// endpoint reaches the cap is quarantined (when armed) or rejected
  /// like a grow_universe violation — the fence that keeps one absurd
  /// upstream id from ballooning every per-vertex array.
  VertexId max_universe = 0;
  /// Consecutive kUnavailable pulls Drain tolerates (waiting out an
  /// open circuit breaker, whose cooldown is pull-counted) before the
  /// engine halts with HealthReason::kSourceFailure.
  size_t max_source_failures = 256;
};

/// Crash-safety knobs (EnableDurability / Recover). The invariant the
/// whole layer exists for: a recovered run's anchors, followers, work
/// counters, and RunSummary are BIT-IDENTICAL to the uninterrupted
/// run's, at any kill point, for every tracker configuration — because
/// recovery replays the exact committed transactions from the WAL and
/// the engine's replay is deterministic (docs/DURABILITY.md).
struct DurabilityOptions {
  /// Directory for wal.log + checkpoint-*.avtc. Must be empty (or not
  /// exist) for a fresh run; Recover reads an existing one.
  std::string dir;
  /// Write a checkpoint every N committed delta transactions; 0 keeps
  /// only the initial checkpoint (recovery then replays the whole WAL).
  size_t checkpoint_every = 0;
  FsyncPolicy fsync = FsyncPolicy::kNever;
  /// Caller configuration folded into the checkpoint fingerprint (the
  /// CLI passes k/l/algorithm flags here), so a resume under a
  /// different configuration is rejected instead of diverging.
  std::string config_extra;
};

/// Facade driving one tracker off one delta stream.
class AvtEngine {
 public:
  AvtEngine(std::unique_ptr<AvtTracker> tracker,
            std::unique_ptr<DeltaSource> source,
            EngineOptions options = EngineOptions{});

  /// Processes the next snapshot: G_0 on the first call, then one
  /// TRANSACTION per call — one pulled delta verbatim when the tracker's
  /// PreferredBatchSize() is 1, else up to that many consecutive deltas
  /// merged into one canonical net-effect delta (DeltaBatcher), so the
  /// tracker observes every N-th snapshot of the stream with state
  /// bit-identical to the per-delta replay at those boundaries. Returns
  /// false when the stream is exhausted, or an error Status when a
  /// delta fails validation — the rejected (already merged) delta is
  /// retained and re-delivered by the next Step, so resolving the
  /// problem and retrying never skips a transition.
  StatusOr<bool> Step();

  /// Steps until the stream is exhausted or a step fails.
  Status Drain();

  /// Arms crash safety for a FRESH run: every committed transaction is
  /// appended to `<dir>/wal.log` and checkpoints are written at the
  /// configured cadence (plus one right after G_0). Must be called
  /// before the first Step; the directory must not already contain a
  /// run (use Recover for that).
  Status EnableDurability(const DurabilityOptions& options);

  /// Rebuilds an engine from a durability directory: loads the latest
  /// valid checkpoint, replays the WAL (the suffix past the checkpoint
  /// when the tracker restored a state blob, the whole log otherwise),
  /// cross-checks the replayed accumulators against the checkpoint,
  /// fast-forwards `source` past every committed delta, and resumes
  /// appending. `tracker` and `source` must be freshly constructed
  /// with the same configuration as the interrupted run — the stored
  /// fingerprint rejects mismatches. Corrupt files surface as
  /// kCorruption/kIoError Status, never a crash.
  static StatusOr<std::unique_ptr<AvtEngine>> Recover(
      std::unique_ptr<AvtTracker> tracker,
      std::unique_ptr<DeltaSource> source, const EngineOptions& options,
      const DurabilityOptions& durability);

  /// The config fingerprint durability stamps into checkpoints.
  uint64_t ConfigFingerprint() const;

  /// Factory producing a fresh tracker with the engine's exact
  /// configuration — the engine cannot construct trackers itself, and
  /// audit-failure self-recovery (rollback rebuild + bisection probes)
  /// needs pristine ones. Without a factory, an audit divergence halts
  /// with kCorruption instead of self-healing.
  void SetTrackerFactory(
      std::function<std::unique_ptr<AvtTracker>()> factory) {
    tracker_factory_ = std::move(factory);
  }

  /// Corruption drill: arms a one-shot index fault that the engine
  /// injects into the tracker immediately BEFORE the next due audit
  /// (injecting at the audit boundary keeps the drill deterministic —
  /// a fault planted between transactions can be healed incidentally
  /// by the next delta's cascades before any audit sees it). The
  /// snapshot of that transaction is computed from the healthy state
  /// first, so a successful rollback recovery reproduces it exactly.
  /// No-op unless audits are enabled.
  void RequestAuditFaultDrill() { audit_drill_pending_ = true; }

  /// Engine health (monotone; see core/health.h). Audits, quarantine,
  /// self-recovery, and breaker trips all report through here and are
  /// mirrored into Summary().
  const HealthStateMachine& health() const { return health_; }
  const SentinelAuditor& auditor() const { return auditor_; }
  uint64_t QuarantinedDeltas() const { return quarantined_; }
  uint64_t Recoveries() const { return recoveries_; }

  /// Observer invoked after every processed snapshot (pause/inspect
  /// hook for tools and benches; called before Step returns).
  void SetObserver(std::function<void(const AvtSnapshotResult&)> observer) {
    observer_ = std::move(observer);
  }

  /// Snapshots processed so far (G_0 included once processed).
  size_t SnapshotsProcessed() const { return processed_; }

  /// The most recent snapshot result. Requires SnapshotsProcessed() > 0.
  const AvtSnapshotResult& last() const { return last_; }

  /// All per-snapshot results (algorithm/k/l fields are the caller's to
  /// fill; the engine records snapshots only). Empty snapshots when
  /// keep_snapshots is false.
  const AvtRunResult& result() const { return result_; }
  AvtRunResult TakeResult() { return std::move(result_); }

  /// Running aggregate over everything processed so far — identical to
  /// SummarizeRun(result()) when snapshots are kept, and still exact
  /// when they are not.
  RunSummary Summary() const;

  /// Current vertex universe as the engine has grown it.
  VertexId NumVertices() const { return num_vertices_; }

  AvtTracker& tracker() { return *tracker_; }
  const AvtTracker& tracker() const { return *tracker_; }
  const DeltaSource& source() const { return *source_; }

 private:
  void Record(AvtSnapshotResult snap);

  /// Source boundary: grows the universe for (or rejects) out-of-range
  /// endpoints. Shared by Step and WAL replay.
  Status ValidateAndGrow(const EdgeDelta& delta);

  /// Appends the just-committed transaction to the WAL and writes a
  /// cadenced checkpoint when due. No-op when durability is off.
  Status CommitDurable(const EdgeDelta& delta);

  Status WriteCheckpointNow();

  // --- self-healing internals (PR 9) ---

  bool QuarantineArmed() const { return !options_.quarantine_dir.empty(); }

  /// Structural screen for one SOURCE delta (quarantine armed only):
  /// self-loop endpoints, universe-cap / frozen-universe violations.
  /// Returns false with reason + detail filled when the delta is
  /// poison.
  bool PreValidateSourceDelta(const EdgeDelta& delta,
                              QuarantineReason* reason,
                              std::string* detail) const;

  /// Appends one poison delta to the dead-letter log (opening it
  /// lazily) and degrades health. `pull` is the 1-based source pull
  /// index the delta arrived on.
  Status Quarantine(QuarantineReason reason, const EdgeDelta& delta,
                    uint64_t pull, std::string detail);

  /// Pulls the next source delta, diverting poison to quarantine when
  /// armed and retaining raw pulls for bisection when audits are on.
  /// Same contract as DeltaSource::NextDelta.
  StatusOr<bool> PullOne(EdgeDelta* delta);

  /// Classifies a failed pull: kUnavailable degrades health and is
  /// bounded by max_source_failures; everything else passes through.
  StatusOr<bool> SourcePullFailed(const Status& status);

  /// A tracker rebuilt from G_0 + the committed WAL prefix, with every
  /// replayed snapshot retained for accumulator reconstruction.
  struct ReplayedRun {
    std::unique_ptr<AvtTracker> tracker;
    std::vector<AvtSnapshotResult> snaps;
    VertexId num_vertices = 0;
  };
  StatusOr<ReplayedRun> RebuildFromWal();

  /// Swaps in a rebuilt tracker and re-derives every accumulator from
  /// its replayed snapshots (observer suppressed: they were already
  /// observed once).
  void AdoptReplay(ReplayedRun run);

  /// Audits `tracker` with the sentinel (at the current step).
  AuditOutcome AuditTracker(const AvtTracker& tracker);

  /// The pre-commit audit tripped on the in-flight transaction:
  /// rollback, re-audit, innocent-delta check, deterministic bisection
  /// — or an honest halt when none of that is possible. On success the
  /// (possibly cleaned) transaction is recorded and committed.
  Status HandleAuditFailure(EdgeDelta delta, const std::string& failure);

  /// Marks the engine terminally broken with kCorruption semantics.
  Status HaltWith(HealthReason reason, Status status);

  std::unique_ptr<AvtTracker> tracker_;
  std::unique_ptr<DeltaSource> source_;
  EngineOptions options_;
  std::function<void(const AvtSnapshotResult&)> observer_;

  bool started_ = false;
  size_t processed_ = 0;
  VertexId num_vertices_ = 0;
  /// Merges consecutive source deltas into one net-effect transaction
  /// when the tracker requests batches (PreferredBatchSize() > 1).
  DeltaBatcher batcher_;
  /// A delta rejected by validation (already batch-merged when batching
  /// is on), re-delivered on the next Step.
  EdgeDelta pending_delta_;
  bool has_pending_delta_ = false;
  AvtRunResult result_;
  AvtSnapshotResult last_;

  // Incremental RunSummary sink (exact SummarizeRun semantics).
  double total_millis_ = 0;
  double max_millis_ = 0;
  uint64_t total_candidates_ = 0;
  uint64_t total_followers_ = 0;
  double stability_sum_ = 0;
  size_t anchor_changes_ = 0;
  /// Memo totals + peak footprint (zero for memo-less trackers). Not
  /// part of the checkpoint cross-check: IncAVT declines state blobs,
  /// so recovery always full-replays and recomputes them exactly, and
  /// the blob-restoring static trackers never touch a memo.
  uint64_t memo_hits_ = 0;
  uint64_t memo_misses_ = 0;
  uint64_t memo_evictions_ = 0;
  uint64_t memo_peak_bytes_ = 0;
  std::vector<VertexId> previous_anchors_;

  // Durability state (inert until EnableDurability/Recover).
  bool durable_ = false;
  DurabilityOptions durability_;
  std::unique_ptr<DeltaWal> wal_;
  uint64_t wal_seq_ = 0;               // last committed WAL record
  uint64_t source_pulls_committed_ = 0;
  /// Source deltas pulled for the in-flight (not yet committed)
  /// transaction: survives validation failures and transient source
  /// errors so the eventual commit logs the right cursor advance.
  uint64_t uncommitted_pulls_ = 0;
  /// A durability write failed; the log can no longer be trusted to be
  /// contiguous, so every later Step refuses with this status instead
  /// of silently streaming without crash safety.
  Status durability_broken_ = Status::Ok();

  // Self-healing state (inert unless audits/quarantine/breaker are
  // armed; all counters are per-process — a Recover'd engine starts
  // them at zero, the logs on disk are the durable record).
  HealthStateMachine health_;
  SentinelAuditor auditor_;
  std::function<std::unique_ptr<AvtTracker>()> tracker_factory_;
  std::unique_ptr<QuarantineLog> quarantine_;
  uint64_t quarantined_ = 0;
  uint64_t recoveries_ = 0;
  /// Consecutive kUnavailable pulls (an open breaker counting down its
  /// cooldown); reset by any successful pull.
  size_t unavailable_streak_ = 0;
  /// Raw source deltas of the in-flight transaction (with their pull
  /// indices), retained when audits are armed so bisection can isolate
  /// a poison delta inside a merged batch. Cleared on commit.
  struct PulledDelta {
    EdgeDelta delta;
    uint64_t pull = 0;
  };
  std::vector<PulledDelta> txn_source_deltas_;
  /// Observer suppressed while AdoptReplay re-records replayed
  /// snapshots (they were observed when first processed).
  bool replaying_ = false;
  /// One-shot flag armed by RequestAuditFaultDrill.
  bool audit_drill_pending_ = false;
  /// Terminal halt (audit divergence that could not be healed, source
  /// failure bound exceeded): every later Step refuses with this.
  Status halt_status_ = Status::Ok();
};

}  // namespace avt

#endif  // AVT_CORE_ENGINE_H_
