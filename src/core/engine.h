// AvtEngine: the push-based streaming layer between delta sources and
// trackers.
//
//   DeltaSource  ──pull──▶  AvtEngine  ──push──▶  AvtTracker
//        │                      │                     │
//   (file / generator /    validates ids,        per-snapshot
//    sequence / coalesce)  grows the universe,   AvtSnapshotResult
//                          times & records            │
//                               └────────▶ RunSummary sink
//
// The engine owns one tracker and one source, drives the stream
// (Step-at-a-time for tools that pause and inspect, Drain for batch
// runs), and folds every snapshot into a running RunSummary so long
// streams can drop per-snapshot results (keep_snapshots = false) and
// still report aggregates in O(1) memory.
//
// The engine is also the SOURCE BOUNDARY for vertex-universe growth: a
// delta referencing an id outside the tracker's universe either grows
// the tracker first (grow_universe, the default — streaming file
// sources discover vertices mid-stream) or is rejected with a precise
// Status naming the offending id — never handed down to trip an
// assertion deep inside Graph::AddEdge.
//
// Replay invariance: driving a tracker through AvtEngine +
// SequenceSource produces bit-identical snapshots to the historical
// materialized ForEachSnapshot replay (the source re-emits deltas
// verbatim and trackers maintain their own state); enforced by
// tests/engine_test.cc and the differential fuzz.

#ifndef AVT_CORE_ENGINE_H_
#define AVT_CORE_ENGINE_H_

#include <functional>
#include <memory>
#include <utility>

#include "core/avt.h"
#include "core/run_summary.h"
#include "graph/delta_source.h"
#include "util/status.h"

namespace avt {

/// Engine behavior knobs.
struct EngineOptions {
  /// Grow the tracker's vertex universe when a delta references unseen
  /// ids (streaming sources). When false such a delta is an error.
  bool grow_universe = true;
  /// Retain every per-snapshot result in result(). Disable for
  /// unbounded streams: aggregates and last() stay available.
  bool keep_snapshots = true;
};

/// Facade driving one tracker off one delta stream.
class AvtEngine {
 public:
  AvtEngine(std::unique_ptr<AvtTracker> tracker,
            std::unique_ptr<DeltaSource> source,
            EngineOptions options = EngineOptions{});

  /// Processes the next snapshot: G_0 on the first call, then one
  /// TRANSACTION per call — one pulled delta verbatim when the tracker's
  /// PreferredBatchSize() is 1, else up to that many consecutive deltas
  /// merged into one canonical net-effect delta (DeltaBatcher), so the
  /// tracker observes every N-th snapshot of the stream with state
  /// bit-identical to the per-delta replay at those boundaries. Returns
  /// false when the stream is exhausted, or an error Status when a
  /// delta fails validation — the rejected (already merged) delta is
  /// retained and re-delivered by the next Step, so resolving the
  /// problem and retrying never skips a transition.
  StatusOr<bool> Step();

  /// Steps until the stream is exhausted or a step fails.
  Status Drain();

  /// Observer invoked after every processed snapshot (pause/inspect
  /// hook for tools and benches; called before Step returns).
  void SetObserver(std::function<void(const AvtSnapshotResult&)> observer) {
    observer_ = std::move(observer);
  }

  /// Snapshots processed so far (G_0 included once processed).
  size_t SnapshotsProcessed() const { return processed_; }

  /// The most recent snapshot result. Requires SnapshotsProcessed() > 0.
  const AvtSnapshotResult& last() const { return last_; }

  /// All per-snapshot results (algorithm/k/l fields are the caller's to
  /// fill; the engine records snapshots only). Empty snapshots when
  /// keep_snapshots is false.
  const AvtRunResult& result() const { return result_; }
  AvtRunResult TakeResult() { return std::move(result_); }

  /// Running aggregate over everything processed so far — identical to
  /// SummarizeRun(result()) when snapshots are kept, and still exact
  /// when they are not.
  RunSummary Summary() const;

  /// Current vertex universe as the engine has grown it.
  VertexId NumVertices() const { return num_vertices_; }

  AvtTracker& tracker() { return *tracker_; }
  const AvtTracker& tracker() const { return *tracker_; }
  const DeltaSource& source() const { return *source_; }

 private:
  void Record(AvtSnapshotResult snap);

  std::unique_ptr<AvtTracker> tracker_;
  std::unique_ptr<DeltaSource> source_;
  EngineOptions options_;
  std::function<void(const AvtSnapshotResult&)> observer_;

  bool started_ = false;
  size_t processed_ = 0;
  VertexId num_vertices_ = 0;
  /// Merges consecutive source deltas into one net-effect transaction
  /// when the tracker requests batches (PreferredBatchSize() > 1).
  DeltaBatcher batcher_;
  /// A delta rejected by validation (already batch-merged when batching
  /// is on), re-delivered on the next Step.
  EdgeDelta pending_delta_;
  bool has_pending_delta_ = false;
  AvtRunResult result_;
  AvtSnapshotResult last_;

  // Incremental RunSummary sink (exact SummarizeRun semantics).
  double total_millis_ = 0;
  double max_millis_ = 0;
  uint64_t total_candidates_ = 0;
  uint64_t total_followers_ = 0;
  double stability_sum_ = 0;
  size_t anchor_changes_ = 0;
  std::vector<VertexId> previous_anchors_;
};

}  // namespace avt

#endif  // AVT_CORE_ENGINE_H_
