#include "core/health.h"

#include "corelib/decomposition.h"
#include "corelib/invariants.h"
#include "corelib/korder.h"
#include "graph/graph.h"
#include "util/random.h"

namespace avt {

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kHalted: return "halted";
  }
  return "unknown";
}

const char* HealthReasonName(HealthReason reason) {
  switch (reason) {
    case HealthReason::kNone: return "none";
    case HealthReason::kQuarantinedDelta: return "quarantined-delta";
    case HealthReason::kAuditRecovered: return "audit-recovered";
    case HealthReason::kSourceUnavailable: return "source-unavailable";
    case HealthReason::kSourceFailure: return "source-failure";
    case HealthReason::kCorruption: return "corruption";
    case HealthReason::kDurabilityFailure: return "durability-failure";
  }
  return "unknown";
}

void HealthStateMachine::MoveTo(HealthState to, HealthReason reason,
                                size_t step, std::string detail) {
  const bool state_changed = to != state_;
  const bool reason_changed =
      transitions_.empty() || transitions_.back().reason != reason;
  if (!state_changed && !reason_changed) return;
  HealthTransition transition;
  transition.step = step;
  transition.from = state_;
  transition.to = to;
  transition.reason = reason;
  transition.detail = std::move(detail);
  transitions_.push_back(std::move(transition));
  state_ = to;
}

void HealthStateMachine::Degrade(HealthReason reason, size_t step,
                                 std::string detail) {
  if (halted()) return;  // monotone: a halted engine never "improves"
  MoveTo(HealthState::kDegraded, reason, step, std::move(detail));
}

void HealthStateMachine::Halt(HealthReason reason, size_t step,
                              std::string detail) {
  if (halted()) return;  // terminal: keep the first halt reason
  MoveTo(HealthState::kHalted, reason, step, std::move(detail));
}

std::string HealthStateMachine::Describe() const {
  std::string description = HealthStateName(state_);
  if (state_ != HealthState::kHealthy) {
    description += " (";
    description += HealthReasonName(reason());
    description += ")";
  }
  return description;
}

AuditOutcome SentinelAuditor::Audit(const Graph* graph, const KOrder* order,
                                    size_t step) {
  AuditOutcome outcome;
  if (graph == nullptr || order == nullptr) return outcome;
  outcome.audited = true;
  ++audits_run_;

  // One fresh decomposition feeds both the sampled probe and the full
  // sweep — the expensive part of the audit is paid exactly once.
  CoreDecomposition fresh = DecomposeCores(*graph);

  const VertexId n = graph->NumVertices();
  if (order->NumVertices() == n && n > 0 && options_.sample > 0) {
    // Seeded spot checks: a fresh deterministic sample per audit point,
    // so repeated audits of the same step probe the same vertices.
    Rng rng(options_.seed ^ (0x9e3779b97f4a7c15ULL * (step + 1)));
    for (uint32_t i = 0; i < options_.sample; ++i) {
      const VertexId v = static_cast<VertexId>(rng.Uniform(n));
      if (order->CoreOf(v) != fresh.core[v]) {
        ++audits_failed_;
        outcome.ok = false;
        outcome.failure =
            "sampled coreness mismatch at vertex " + std::to_string(v) +
            ": index says " + std::to_string(order->CoreOf(v)) +
            ", fresh decomposition says " + std::to_string(fresh.core[v]);
        return outcome;
      }
    }
  }

  InvariantReport report = CheckKOrderInvariants(*graph, *order, fresh);
  if (!report.ok) {
    ++audits_failed_;
    outcome.ok = false;
    outcome.failure = "invariant sweep failed: " + report.failure;
  }
  return outcome;
}

}  // namespace avt
