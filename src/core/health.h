// Engine health: a monotone state machine plus the sentinel auditor
// that feeds it.
//
//   kHealthy ──▶ kDegraded ──▶ kHalted
//
// A long-lived streaming engine needs a defense layer between "every
// answer is perfect" and "the process is dead": PR 7 made crashes
// survivable and this module makes *silent wrongness* survivable. The
// state machine is deliberately monotone — health never improves
// within a run, because a stream that quarantined a delta or rolled
// itself back produced a run whose provenance differs from a clean
// one, and the operator must be told so. Every transition is
// reason-coded and step-stamped; RunSummary and the CLI surface the
// terminal state.
//
// SentinelAuditor runs the actual integrity cross-checks: on a
// configurable cadence it compares the tracker's incrementally
// maintained K-order index against a fresh DecomposeCores of the same
// graph — first K seeded per-vertex coreness spot checks (the cheap
// sampled probe), then the full CheckKOrderInvariants sweep sharing
// that one decomposition. The audit is strictly read-only: an audited
// run's anchors and followers are bit-identical to an unaudited one
// (pinned by tests/self_healing_test.cc).

#ifndef AVT_CORE_HEALTH_H_
#define AVT_CORE_HEALTH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace avt {

class Graph;
class KOrder;

enum class HealthState {
  kHealthy = 0,   ///< no anomaly observed
  kDegraded = 1,  ///< run continued past an anomaly (quarantine,
                  ///< self-recovery, breaker trips); results are
                  ///< complete but provenance is not pristine
  kHalted = 2,    ///< unrecoverable; the engine refuses further Steps
};
const char* HealthStateName(HealthState state);

/// Why a transition happened. One reason can justify either a
/// degradation or a halt depending on whether the engine could keep
/// an honest stream going (docs/DURABILITY.md has the taxonomy).
enum class HealthReason {
  kNone = 0,
  kQuarantinedDelta,    ///< poison delta diverted to the dead-letter log
  kAuditRecovered,      ///< audit divergence healed by checkpoint+WAL rollback
  kSourceUnavailable,   ///< circuit breaker recorded/short-circuited a pull
  kSourceFailure,       ///< source failures exhausted the engine's patience
  kCorruption,          ///< audit divergence that rollback could not heal
  kDurabilityFailure,   ///< WAL/checkpoint write failed; log not contiguous
};
const char* HealthReasonName(HealthReason reason);

/// One recorded health transition (or reason change within a state).
struct HealthTransition {
  size_t step = 0;  ///< engine snapshots processed when it happened
  HealthState from = HealthState::kHealthy;
  HealthState to = HealthState::kHealthy;
  HealthReason reason = HealthReason::kNone;
  std::string detail;
};

/// Monotone health with a bounded transition journal: a transition is
/// recorded when the state OR the reason changes, so a thousand
/// quarantined deltas cost one entry, not a thousand.
class HealthStateMachine {
 public:
  HealthState state() const { return state_; }
  /// Reason of the most recent recorded transition (kNone when healthy).
  HealthReason reason() const {
    return transitions_.empty() ? HealthReason::kNone
                                : transitions_.back().reason;
  }
  bool healthy() const { return state_ == HealthState::kHealthy; }
  bool halted() const { return state_ == HealthState::kHalted; }
  const std::vector<HealthTransition>& transitions() const {
    return transitions_;
  }

  /// Moves to kDegraded (no-op if already halted; monotone).
  void Degrade(HealthReason reason, size_t step, std::string detail);
  /// Moves to kHalted (terminal; later calls keep the first reason).
  void Halt(HealthReason reason, size_t step, std::string detail);

  /// "healthy" or "degraded (quarantined-delta)" — the CLI health line.
  std::string Describe() const;

 private:
  void MoveTo(HealthState to, HealthReason reason, size_t step,
              std::string detail);

  HealthState state_ = HealthState::kHealthy;
  std::vector<HealthTransition> transitions_;
};

/// Audit cadence and sampling knobs (`--audit-every`, `--audit-sample`).
struct AuditOptions {
  /// Audit after every Nth committed delta transaction; 0 disables.
  size_t every = 0;
  /// Seeded per-vertex coreness spot checks per audit (before the full
  /// invariant sweep; 0 skips the sampled probe).
  uint32_t sample = 16;
  /// Seed for the per-audit sample draw; mixed with the step so every
  /// audit probes a fresh deterministic sample.
  uint64_t seed = 0x5eed;
};

/// What one audit concluded.
struct AuditOutcome {
  /// False when the tracker exposes no maintained index to audit
  /// (re-solve trackers keep only a graph copy) — not a failure.
  bool audited = false;
  bool ok = true;
  std::string failure;
};

/// Read-only integrity cross-checker over a tracker's AuditView.
class SentinelAuditor {
 public:
  explicit SentinelAuditor(const AuditOptions& options) : options_(options) {}

  bool enabled() const { return options_.every > 0; }
  /// Is transaction number `transaction` (1-based) an audit point?
  bool Due(size_t transaction) const {
    return enabled() && transaction > 0 && transaction % options_.every == 0;
  }

  /// Cross-checks `order` against a fresh decomposition of `graph`.
  /// Either pointer null → outcome.audited = false. Never mutates
  /// anything; bounded by one O(n + m) decomposition plus the sweep.
  AuditOutcome Audit(const Graph* graph, const KOrder* order, size_t step);

  uint64_t audits_run() const { return audits_run_; }
  uint64_t audits_failed() const { return audits_failed_; }

 private:
  AuditOptions options_;
  uint64_t audits_run_ = 0;
  uint64_t audits_failed_ = 0;
};

}  // namespace avt

#endif  // AVT_CORE_HEALTH_H_
