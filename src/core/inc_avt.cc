#include "core/inc_avt.h"

#include <algorithm>
#include <queue>

#include "anchor/anchored_core.h"
#include "anchor/candidates.h"
#include "anchor/greedy.h"
#include "util/timer.h"

namespace avt {
namespace {

/// Heap entry of the lazy local search: max-heap by value, smaller id
/// first on ties — the same tie-break the eager pool scan produces.
struct LazyEntry {
  uint32_t value;  // exact ? F(trial) : certified upper bound
  VertexId vertex;
  bool exact;
  bool operator<(const LazyEntry& other) const {
    if (value != other.value) return value < other.value;
    return vertex > other.vertex;
  }
};

/// Stale references are dropped lazily (generation stamps + per-list
/// compaction); past this many HELD (vertex, key) references across all
/// lists the whole cache restarts cold — the global backstop.
constexpr size_t kTouchCompactionLimit = 4'000'000;

}  // namespace

uint32_t IncAvtTracker::KCoreSize() const {
  // The K-order level lists partition V by core number, so |C_k| is the
  // sum of the level sizes from k up — O(degeneracy) instead of the
  // former O(n) per-vertex scan (which dominated small-delta snapshots).
  uint32_t size = 0;
  const KOrder& order = maintainer_.order();
  for (uint32_t level = k_; level <= order.MaxLevel(); ++level) {
    size += order.LevelSize(level);
  }
  return size;
}

void IncAvtTracker::RecordTouch(uint64_t key, uint32_t gen,
                                std::span<const VertexId> region_a,
                                std::span<const VertexId> region_b) {
  for (VertexId r : region_a) PushTouch(touch_index_[r], {key, gen});
  for (VertexId r : region_b) PushTouch(touch_index_[r], {key, gen});
}

void IncAvtTracker::PushTouch(TouchList& list, TouchRef ref) {
  list.refs.push_back(ref);
  ++touch_total_;
  if (list.refs.size() >= list.compact_at) CompactTouchList(list);
}

void IncAvtTracker::CompactTouchList(TouchList& list) {
  size_t kept = 0;
  for (const TouchRef& ref : list.refs) {
    if (memo_.IsLive(ref.key, ref.gen)) list.refs[kept++] = ref;
  }
  touch_total_ -= list.refs.size() - kept;
  list.refs.resize(kept);
  // Next sweep only once the list doubles from here: amortized O(1).
  list.compact_at = static_cast<uint32_t>(
      std::max<size_t>(kTouchCompactMin, 2 * kept));
}

void IncAvtTracker::ClearTouchList(TouchList& list) {
  touch_total_ -= list.refs.size();
  list.refs.clear();
  list.compact_at = kTouchCompactMin;
}

void IncAvtTracker::InvalidateTouched(VertexId v) {
  TouchList& list = touch_index_[v];
  if (list.refs.empty()) return;
  // EraseRef skips references whose entry was meanwhile overwritten
  // (its region was re-recorded under a newer generation) or evicted.
  for (const TouchRef& ref : list.refs) memo_.EraseRef(ref.key, ref.gen);
  ClearTouchList(list);
}

AvtSnapshotResult IncAvtTracker::ProcessFirst(const Graph& g0) {
  Timer timer;
  AvtSnapshotResult snap;
  snap.t = t_ = 0;

  // Algorithm 6 lines 1-2: build the K-order of G_1 and solve it with the
  // Greedy algorithm (lazy pick loop unless the tracker is eager — both
  // produce identical anchors).
  maintainer_.Reset(g0);
  maintainer_.SetCsrMirror(options_.csr == IncAvtCsrMode::kMaintained);
  // Scan backing per options_.csr: the maintained mirror (patched in
  // place, stable pointer), the per-delta rebuilt snapshot (stable
  // member, refilled before every use), or the dynamic adjacency. The
  // engine's per-worker oracles share the same backing read-only.
  rebuilt_csr_ = CsrView{};
  const CsrView* frozen = options_.csr == IncAvtCsrMode::kRebuildPerDelta
                              ? &rebuilt_csr_
                              : nullptr;
  oracle_ = std::make_unique<FollowerOracle>(&maintainer_.graph(),
                                             &maintainer_.order(), frozen,
                                             maintainer_.csr());
  engine_ = options_.num_threads > 1
                ? std::make_unique<TrialEngine>(&maintainer_.graph(),
                                                &maintainer_.order(), frozen,
                                                options_.num_threads,
                                                maintainer_.csr())
                : nullptr;
  GreedyOptions greedy_options;
  greedy_options.lazy = options_.lazy;
  greedy_options.num_threads = options_.num_threads;
  GreedySolver greedy(greedy_options);
  SolverResult first = greedy.Solve(g0, k_, l_);
  anchors_ = first.anchors;

  // Reset the cross-snapshot memo under the configured retention
  // policy. Eager mode keeps no cross-snapshot memo at all, so it
  // configures kNone regardless — the store then reports zero bytes
  // and every memo path below self-gates on enabled().
  const size_t num_slots = 2 * static_cast<size_t>(l_) + 2;
  memo_.Configure(options_.lazy ? options_.memo_policy : MemoPolicy::kNone,
                  options_.memo_budget_bytes, num_slots);
  last_memo_stats_ = memo_.stats();
  touch_index_.assign(g0.NumVertices(), {});
  touch_total_ = 0;
  slot_bound_keys_.assign(num_slots, {});
  pool_state_.assign(g0.NumVertices(), kUnseen);
  is_anchor_.assign(g0.NumVertices(), 0);
  pool_.clear();

  snap.anchors = anchors_;
  snap.num_followers = first.num_followers();
  snap.candidates_visited = first.candidates_visited;
  snap.bound_probes = first.bound_probes;
  snap.kcore_size = KCoreSize();
  uint32_t anchors_outside = 0;
  for (VertexId a : anchors_) {
    if (maintainer_.order().CoreOf(a) < k_) ++anchors_outside;
  }
  snap.anchored_core_size =
      snap.kcore_size + anchors_outside + snap.num_followers;
  snap.memo_bytes = memo_.bytes();
  snap.millis = timer.ElapsedMillis();
  return snap;
}

void IncAvtTracker::EagerLocalSearch(const std::vector<VertexId>& pool,
                                     uint32_t& current,
                                     AvtSnapshotResult& snap) {
  // Algorithm 6 lines 9-16 verbatim: per anchor slot, evaluate every
  // pool vertex with a full follower query and commit strict
  // improvements.
  std::vector<VertexId> base;
  for (size_t i = 0; i < anchors_.size() && !pool.empty(); ++i) {
    base = anchors_;
    base.erase(base.begin() + static_cast<ptrdiff_t>(i));
    VertexId best_replacement = kNoVertex;
    uint32_t best_followers = current;
    for (VertexId v : pool) {
      if (is_anchor_[v]) continue;
      ++snap.candidates_visited;
      uint32_t followers = oracle_->CountFollowers(base, v, k_);
      if (followers > best_followers) {
        best_followers = followers;
        best_replacement = v;
      }
    }
    if (best_replacement != kNoVertex) {
      is_anchor_[anchors_[i]] = 0;
      is_anchor_[best_replacement] = 1;
      anchors_[i] = best_replacement;
      current = best_followers;
    }
  }

  // If the budget was never filled (tiny first snapshot), try to extend.
  while (anchors_.size() < l_ && !pool.empty()) {
    VertexId best_vertex = kNoVertex;
    uint32_t best_followers = current;
    for (VertexId v : pool) {
      if (is_anchor_[v]) continue;
      ++snap.candidates_visited;
      uint32_t followers = oracle_->CountFollowers(anchors_, v, k_);
      if (best_vertex == kNoVertex || followers > best_followers) {
        best_followers = followers;
        best_vertex = v;
      }
    }
    if (best_vertex == kNoVertex) break;
    anchors_.push_back(best_vertex);
    is_anchor_[best_vertex] = 1;
    current = best_followers;
  }
}

void IncAvtTracker::LazyLocalSearch(const std::vector<VertexId>& pool,
                                    uint32_t& current,
                                    AvtSnapshotResult& snap) {
  // Same search as EagerLocalSearch, same committed anchors (see the
  // equivalence argument in greedy.cc's LazyGreedy — identical heap
  // discipline), but each full query is gated by a certified bound and
  // both bounds and exact values are memoized across snapshots with
  // region-based invalidation.
  std::vector<VertexId> base;
  std::priority_queue<LazyEntry> heap;
  bool base_ready = false;  // physical base state == this slot's base?

  // Per-(slot, candidate) values can only be reused across snapshots
  // when the candidate can reappear in the pool with a clean region. In
  // kRestricted the pool is a subset of impacted ∪ N(impacted) — exactly
  // the set ProcessDelta just invalidated (every slot key's region
  // contains its candidate) — so recording them would be pure overhead;
  // the mode's cross-snapshot reuse comes from the incumbent memo and
  // bound gating instead. Wider pools (kMaintainedFull) do get hits.
  // MemoPolicy::kNone disables all of it (bound gating remains).
  const bool memoize_slots =
      mode_ != IncAvtMode::kRestricted && memo_.enabled();

  // (Re)establishes the oracle's resident cascade for the slot's trial
  // base. Each slot's base is memoized across snapshots under
  // kBaseKeyBase | slot with its own dependency region; when churn kills
  // it, every per-slot bound probed against it dies too
  // (slot_bound_keys_). The oracle holds one physical base at a time, so
  // switching slots rebuilds it — a rebuild over a clean region is
  // deterministic, so memoized bounds stay exact.
  // `record = false` skips all memo/touch bookkeeping — used by the
  // extend phase, whose every iteration ends in a commit that would
  // discard the entries unread.
  auto ensure_base = [&](uint64_t slot, std::span<const VertexId> trial_base,
                         bool record) {
    if (base_ready) return;
    const uint64_t base_key = kBaseKeyBase | slot;
    if (record && memo_.enabled() && !memo_.ContainsLive(base_key)) {
      // The base died (churn or eviction): every bound probed against
      // it dies too. Stale references — bounds since re-recorded under
      // a newer generation, or upgraded to exact entries that carry
      // their own full region — are skipped, not erased.
      TouchList& bounds = slot_bound_keys_[slot];
      for (const TouchRef& ref : bounds.refs) memo_.EraseRef(ref.key, ref.gen);
      ClearTouchList(bounds);
      oracle_->BuildBase(trial_base, k_);
      const uint32_t gen = memo_.Record(base_key, {0, true});
      if (gen != TrialMemoStore::kDroppedGen) {
        RecordTouch(base_key, gen, oracle_->BaseRegionAnchors(),
                    oracle_->BaseRegionVisited());
      }
    } else {
      oracle_->BuildBase(trial_base, k_);
    }
    base_ready = true;
  };

  // Certified per-slot bound on F(trial_base ∪ {v}): the phase-1 count
  // of the exact trial set, obtained as a marginal continuation of the
  // slot's resident cascade (cost: v's marginal region only).
  auto bound_of = [&](uint64_t slot, std::span<const VertexId> trial_base,
                      VertexId v, bool record) -> uint32_t {
    ensure_base(slot, trial_base, record);
    ++snap.bound_probes;
    uint32_t ub = oracle_->MarginalUpperBound(v);
    if (record && memoize_slots) {
      const uint64_t key = (slot << 32) | v;
      const uint32_t gen = memo_.Record(key, {ub, false});
      if (gen != TrialMemoStore::kDroppedGen) {
        RecordTouch(key, gen, oracle_->LastMarginalVisited(), {});
        PushTouch(slot_bound_keys_[slot], {key, gen});
      }
    }
    return ub;
  };

  // Resolves the heap top to an exact value (one full query per
  // non-exact pop), memoizing per (slot, candidate); returns the
  // accepted exact top.
  auto resolve_top = [&](uint64_t slot, std::span<const VertexId> trial_base,
                         bool stop_at_current, bool record) -> LazyEntry {
    while (!heap.empty()) {
      LazyEntry top = heap.top();
      if (stop_at_current && top.value <= current) {
        return {0, kNoVertex, true};  // nothing can strictly improve
      }
      if (top.exact) return top;
      heap.pop();
      ++snap.candidates_visited;
      uint32_t exact = oracle_->CountFollowers(trial_base, top.vertex, k_);
      if (record && memoize_slots) {
        const uint64_t key = (slot << 32) | top.vertex;
        const uint32_t gen = memo_.Record(key, {exact, true});
        if (gen != TrialMemoStore::kDroppedGen) {
          RecordTouch(key, gen, oracle_->LastRegionAnchors(),
                      oracle_->LastRegionVisited());
        }
      }
      heap.push({exact, top.vertex, true});
    }
    return {0, kNoVertex, true};
  };

  // Commits a new anchor set: every memo entry was evaluated against a
  // base containing the replaced set, so the whole cache (resident
  // cascades included) dies. The winning trial's exact value is the new
  // F(S); the next snapshot re-establishes its dependency region with
  // one full query.
  auto commit = [&](const LazyEntry& winner) {
    memo_.Clear();
    for (TouchList& bounds : slot_bound_keys_) ClearTouchList(bounds);
    current = winner.value;
  };

  // A memoized bound is only as valid as the base cascade it was probed
  // against: exact entries carry their full region, but bound entries'
  // recorded region is their marginal cascade only, with the base's
  // region tracked by the slot's base key. A dead base key therefore
  // disqualifies surviving bound entries (ensure_base purges them on
  // the next probe); without this gate a stale bound could under-
  // estimate and silently settle a slot the eager loop would improve.
  auto memo_hit = [&](uint64_t slot, VertexId v, LazyEntry* out) {
    if (!memoize_slots) return false;
    TrialMemoStore::Entry entry;
    const bool found = memo_.Lookup((slot << 32) | v, &entry);
    const bool usable =
        found && (entry.exact || memo_.ContainsLive(kBaseKeyBase | slot));
    memo_.CountLookup(usable);
    if (!usable) return false;
    *out = {entry.value, static_cast<VertexId>(v), entry.exact};
    return true;
  };

  // Swap phase.
  for (size_t i = 0; i < anchors_.size() && !pool.empty(); ++i) {
    base = anchors_;
    base.erase(base.begin() + static_cast<ptrdiff_t>(i));
    heap = std::priority_queue<LazyEntry>();
    base_ready = false;
    for (VertexId v : pool) {
      if (is_anchor_[v]) continue;
      LazyEntry cached;
      if (memo_hit(i, v, &cached)) {
        heap.push(cached);
      } else {
        heap.push({bound_of(i, base, v, /*record=*/true), v, false});
      }
    }
    LazyEntry winner =
        resolve_top(i, base, /*stop_at_current=*/true, /*record=*/true);
    if (winner.vertex == kNoVertex) continue;  // slot settled, no commit
    is_anchor_[anchors_[i]] = 0;
    is_anchor_[winner.vertex] = 1;
    anchors_[i] = winner.vertex;
    commit(winner);
  }

  // Extend phase: the eager loop always commits the argmax (anchoring
  // never hurts the objective by more than it adds), so no incumbent
  // gate here. The trial base is S itself.
  while (anchors_.size() < l_ && !pool.empty()) {
    const uint64_t slot = l_ + anchors_.size();
    heap = std::priority_queue<LazyEntry>();
    base_ready = false;
    bool any = false;
    for (VertexId v : pool) {
      if (is_anchor_[v]) continue;
      LazyEntry cached;
      if (memo_hit(slot, v, &cached)) {
        heap.push(cached);
      } else {
        heap.push({bound_of(slot, anchors_, v, /*record=*/false), v, false});
      }
      any = true;
    }
    if (!any) break;
    LazyEntry winner = resolve_top(slot, anchors_, /*stop_at_current=*/false,
                                   /*record=*/false);
    if (winner.vertex == kNoVertex) break;
    anchors_.push_back(winner.vertex);
    is_anchor_[winner.vertex] = 1;
    commit(winner);
  }
}

void IncAvtTracker::ParallelLocalSearch(const std::vector<VertexId>& pool,
                                        uint32_t& current,
                                        AvtSnapshotResult& snap) {
  // The serial slot loops (Eager/LazyLocalSearch) fanned out over the
  // trial engine: each slot's pool evaluation is one Evaluate call —
  // fixed per-worker shards, per-worker oracles, (followers desc, id
  // asc) reduction — so the committed anchors are bit-identical to the
  // serial searches at every thread count. Cross-snapshot slot memo
  // entries are not recorded here (worker oracles keep no state between
  // calls); the incumbent memo in ProcessDelta still applies, and every
  // commit must invalidate it exactly like the serial commit does.
  TrialPolicy policy;
  policy.lazy = options_.lazy;
  std::vector<VertexId> base;
  std::vector<VertexId> live;
  live.reserve(pool.size());
  auto collect_live = [&] {
    live.clear();
    for (VertexId v : pool) {
      if (!is_anchor_[v]) live.push_back(v);
    }
  };
  auto commit_invalidates_memo = [&] {
    memo_.Clear();
    for (TouchList& bounds : slot_bound_keys_) ClearTouchList(bounds);
  };

  // Swap phase: per anchor slot, the best strict improvement wins.
  for (size_t i = 0; i < anchors_.size() && !pool.empty(); ++i) {
    base = anchors_;
    base.erase(base.begin() + static_cast<ptrdiff_t>(i));
    collect_live();
    if (live.empty()) continue;
    policy.gate = true;
    policy.floor = current;
    TrialOutcome outcome = engine_->Evaluate(live, base, k_, policy);
    snap.candidates_visited += outcome.full_queries;
    snap.bound_probes += outcome.bound_probes;
    if (outcome.vertex == kNoVertex) continue;  // slot settled
    is_anchor_[anchors_[i]] = 0;
    is_anchor_[outcome.vertex] = 1;
    anchors_[i] = outcome.vertex;
    commit_invalidates_memo();
    current = outcome.followers;
  }

  // Extend phase: ungated argmax, like the serial extend loops.
  while (anchors_.size() < l_ && !pool.empty()) {
    collect_live();
    if (live.empty()) break;
    policy.gate = false;
    policy.floor = 0;
    TrialOutcome outcome = engine_->Evaluate(live, anchors_, k_, policy);
    snap.candidates_visited += outcome.full_queries;
    snap.bound_probes += outcome.bound_probes;
    if (outcome.vertex == kNoVertex) break;
    anchors_.push_back(outcome.vertex);
    is_anchor_[outcome.vertex] = 1;
    commit_invalidates_memo();
    current = outcome.followers;
  }
}

void IncAvtTracker::EnsureVertices(VertexId count) {
  if (count <= maintainer_.graph().NumVertices()) return;
  maintainer_.EnsureVertices(count);
  const size_t n = maintainer_.graph().NumVertices();
  pool_state_.resize(n, kUnseen);
  is_anchor_.resize(n, 0);
  touch_index_.resize(n);
  if (oracle_) oracle_->ResizeScratch();
  if (engine_) engine_->ResizeScratch();
}

AvtSnapshotResult IncAvtTracker::ProcessDelta(const EdgeDelta& delta) {
  Timer timer;
  AvtSnapshotResult snap;
  snap.t = ++t_;

  // Step 1: bounded K-order maintenance; collect impacted vertices
  // (union of the paper's VI and VR before the core-number filter).
  std::vector<VertexId> impacted = maintainer_.ApplyDelta(delta);

  const Graph& g = maintainer_.graph();
  const KOrder& order = maintainer_.order();

  // kRebuildPerDelta ablation: snapshot the post-delta adjacency into
  // the bound CsrView before any oracle scan. The maintained mirror
  // (kMaintained) needs nothing here — ApplyDelta already patched it.
  if (options_.csr == IncAvtCsrMode::kRebuildPerDelta) {
    g.BuildCsr(&rebuilt_csr_);
  }

  // Every adjacency walk below (invalidation neighborhoods, the
  // Theorem-3 pool filter) runs against the same backing the oracle
  // scans: the maintained mirror, the per-delta rebuilt view, or the
  // dynamic adjacency. All three iterate neighbors identically, so the
  // pool — and therefore every downstream tie-break — is bit-identical
  // across modes.
  auto with_adjacency = [&](auto&& body) {
    if (maintainer_.csr() != nullptr) {
      body(*maintainer_.csr());
    } else if (options_.csr == IncAvtCsrMode::kRebuildPerDelta) {
      body(rebuilt_csr_);
    } else {
      body(g);
    }
  };

  // Warm-start invalidation: kill exactly the memo entries whose
  // dependency region the churn touched. A cached evaluation stays
  // exact iff its region avoids every impacted vertex and its one-hop
  // neighborhood — the query reads edges incident to the region and
  // positions of the region + its neighbors, and the maintainer marks
  // every cascade-touched vertex and both endpoints of every changed
  // edge, so impacted ∪ N(impacted) covers all state changes. The
  // periodic full reset bounds dead key references in the index.
  if (options_.lazy && memo_.enabled()) {
    if (touch_total_ > kTouchCompactionLimit) {
      memo_.Clear();
      for (TouchList& list : touch_index_) ClearTouchList(list);
      for (TouchList& list : slot_bound_keys_) ClearTouchList(list);
      touch_total_ = 0;
    }
    with_adjacency([&](const auto& adj) {
      for (VertexId v : impacted) {
        InvalidateTouched(v);
        for (VertexId w : adj.Neighbors(v)) InvalidateTouched(w);
      }
    });
  }

  // Step 3: replacement pool. The published algorithm (kRestricted)
  // takes impacted vertices and their neighbors, outside C_k, passing
  // Theorem 3 (Algorithm 6 line 12); the ablation modes widen or empty
  // the pool to isolate the restriction's contribution. Sorted by id so
  // the scan order (and thus tie-breaks) is deterministic. Scratch is
  // reused (no n-sized allocation), and pool_state_ memoizes each
  // vertex's Theorem-3 verdict for the delta: a vertex adjacent to many
  // impacted vertices is filtered exactly once.
  pool_state_.assign(pool_state_.size(), kUnseen);
  is_anchor_.assign(is_anchor_.size(), 0);
  for (VertexId a : anchors_) is_anchor_[a] = 1;
  pool_.clear();
  with_adjacency([&](const auto& adj) {
    auto consider = [&](VertexId v) {
      if (pool_state_[v] != kUnseen || is_anchor_[v]) return;
      pool_state_[v] = kRejected;
      if (order.CoreOf(v) >= k_) return;
      if (!IsAnchorCandidate(adj, order, v, k_)) return;
      pool_state_[v] = kPooled;
      pool_.push_back(v);
    };
    switch (mode_) {
      case IncAvtMode::kRestricted:
        for (VertexId v : impacted) {
          consider(v);
          for (VertexId w : adj.Neighbors(v)) consider(w);
        }
        break;
      case IncAvtMode::kMaintainedFull:
        for (VertexId v = 0; v < g.NumVertices(); ++v) consider(v);
        break;
      case IncAvtMode::kCarryForward:
        break;  // no replacements; keep S_{t-1}
    }
  });
  std::vector<VertexId>& pool = pool_;
  std::sort(pool.begin(), pool.end());

  // Step 2: seed with S_{t-1}; re-establish the incumbent follower count
  // F(S) on the new snapshot. In lazy mode the previous snapshot's value
  // is reused when churn did not touch its dependency region.
  uint32_t current = 0;
  bool have_incumbent = false;
  if (options_.lazy && memo_.enabled()) {
    TrialMemoStore::Entry incumbent;
    have_incumbent = memo_.Lookup(kIncumbentKey, &incumbent);
    memo_.CountLookup(have_incumbent);
    if (have_incumbent) current = incumbent.value;
  }
  if (!have_incumbent) {
    current = oracle_->CountFollowers(anchors_, k_);
    if (options_.lazy && memo_.enabled()) {
      const uint32_t gen = memo_.Record(kIncumbentKey, {current, true});
      if (gen != TrialMemoStore::kDroppedGen) {
        RecordTouch(kIncumbentKey, gen, oracle_->LastRegionAnchors(),
                    oracle_->LastRegionVisited());
      }
    }
  }

  // Step 4: local search (lines 9-16).
  if (options_.num_threads > 1) {
    ParallelLocalSearch(pool, current, snap);
  } else if (options_.lazy) {
    LazyLocalSearch(pool, current, snap);
  } else {
    EagerLocalSearch(pool, current, snap);
  }

  snap.anchors = anchors_;
  // `current` is the exact follower count of the committed set in both
  // paths (incumbent or winning trial evaluation).
  snap.num_followers = current;
  snap.kcore_size = KCoreSize();
  uint32_t anchors_outside = 0;
  for (VertexId a : anchors_) {
    if (order.CoreOf(a) < k_) ++anchors_outside;
  }
  snap.anchored_core_size =
      snap.kcore_size + anchors_outside + snap.num_followers;
  // Memo counters: per-transition deltas of the store's cumulative
  // stats, plus the table footprint after the transition (capacity
  // never shrinks, so the per-run max of memo_bytes is the peak).
  const TrialMemoStore::Stats& memo_stats = memo_.stats();
  snap.memo_hits = memo_stats.hits - last_memo_stats_.hits;
  snap.memo_misses = memo_stats.misses - last_memo_stats_.misses;
  snap.memo_evictions = memo_stats.evictions - last_memo_stats_.evictions;
  snap.memo_bytes = memo_.bytes();
  last_memo_stats_ = memo_stats;
  snap.millis = timer.ElapsedMillis();
  return snap;
}

}  // namespace avt
