#include "core/inc_avt.h"

#include <algorithm>

#include "anchor/anchored_core.h"
#include "anchor/candidates.h"
#include "anchor/greedy.h"
#include "util/timer.h"

namespace avt {

uint32_t IncAvtTracker::KCoreSize() const {
  uint32_t size = 0;
  const KOrder& order = maintainer_.order();
  for (VertexId v = 0; v < order.NumVertices(); ++v) {
    if (order.CoreOf(v) >= k_) ++size;
  }
  return size;
}

AvtSnapshotResult IncAvtTracker::ProcessFirst(const Graph& g0) {
  Timer timer;
  AvtSnapshotResult snap;
  snap.t = t_ = 0;

  // Algorithm 6 lines 1-2: build the K-order of G_1 and solve it with the
  // Greedy algorithm.
  maintainer_.Reset(g0);
  oracle_ = std::make_unique<FollowerOracle>(&maintainer_.graph(),
                                             &maintainer_.order());
  GreedySolver greedy;
  SolverResult first = greedy.Solve(g0, k_, l_);
  anchors_ = first.anchors;

  snap.anchors = anchors_;
  snap.num_followers = first.num_followers();
  snap.candidates_visited = first.candidates_visited;
  snap.kcore_size = KCoreSize();
  uint32_t anchors_outside = 0;
  for (VertexId a : anchors_) {
    if (maintainer_.order().CoreOf(a) < k_) ++anchors_outside;
  }
  snap.anchored_core_size =
      snap.kcore_size + anchors_outside + snap.num_followers;
  snap.millis = timer.ElapsedMillis();
  return snap;
}

AvtSnapshotResult IncAvtTracker::ProcessDelta(const Graph& graph,
                                              const EdgeDelta& delta) {
  Timer timer;
  AvtSnapshotResult snap;
  snap.t = ++t_;

  // Step 1: bounded K-order maintenance; collect impacted vertices
  // (union of the paper's VI and VR before the core-number filter).
  std::vector<VertexId> impacted = maintainer_.ApplyDelta(delta);
  AVT_CHECK_MSG(maintainer_.graph().NumEdges() == graph.NumEdges(),
                "maintained graph diverged from the snapshot stream");

  const Graph& g = maintainer_.graph();
  const KOrder& order = maintainer_.order();

  // Step 3: replacement pool. The published algorithm (kRestricted)
  // takes impacted vertices and their neighbors, outside C_k, passing
  // Theorem 3 (Algorithm 6 line 12); the ablation modes widen or empty
  // the pool to isolate the restriction's contribution.
  std::vector<uint8_t> in_pool(g.NumVertices(), 0);
  std::vector<uint8_t> is_anchor(g.NumVertices(), 0);
  for (VertexId a : anchors_) is_anchor[a] = 1;
  std::vector<VertexId> pool;
  auto consider = [&](VertexId v) {
    if (in_pool[v] || is_anchor[v]) return;
    if (order.CoreOf(v) >= k_) return;
    if (!IsAnchorCandidate(g, order, v, k_)) return;
    in_pool[v] = 1;
    pool.push_back(v);
  };
  switch (mode_) {
    case IncAvtMode::kRestricted:
      for (VertexId v : impacted) {
        consider(v);
        for (VertexId w : g.Neighbors(v)) consider(w);
      }
      break;
    case IncAvtMode::kMaintainedFull:
      for (VertexId v = 0; v < g.NumVertices(); ++v) consider(v);
      break;
    case IncAvtMode::kCarryForward:
      break;  // no replacements; keep S_{t-1}
  }

  // Step 2 + 4: seed with S_{t-1}, then local-search swaps against the
  // pool (Algorithm 6 lines 9-16).
  uint32_t current = oracle_->CountFollowers(anchors_, k_);
  std::vector<VertexId> trial;
  for (size_t i = 0; i < anchors_.size() && !pool.empty(); ++i) {
    VertexId best_replacement = kNoVertex;
    uint32_t best_followers = current;
    for (VertexId v : pool) {
      if (is_anchor[v]) continue;
      trial = anchors_;
      trial[i] = v;
      ++snap.candidates_visited;
      uint32_t followers = oracle_->CountFollowers(trial, k_);
      if (followers > best_followers) {
        best_followers = followers;
        best_replacement = v;
      }
    }
    if (best_replacement != kNoVertex) {
      is_anchor[anchors_[i]] = 0;
      is_anchor[best_replacement] = 1;
      anchors_[i] = best_replacement;
      current = best_followers;
    }
  }

  // If the budget was never filled (tiny first snapshot), try to extend.
  while (anchors_.size() < l_ && !pool.empty()) {
    VertexId best_vertex = kNoVertex;
    uint32_t best_followers = current;
    for (VertexId v : pool) {
      if (is_anchor[v]) continue;
      trial = anchors_;
      trial.push_back(v);
      ++snap.candidates_visited;
      uint32_t followers = oracle_->CountFollowers(trial, k_);
      if (best_vertex == kNoVertex || followers > best_followers) {
        best_followers = followers;
        best_vertex = v;
      }
    }
    if (best_vertex == kNoVertex) break;
    anchors_.push_back(best_vertex);
    is_anchor[best_vertex] = 1;
    current = best_followers;
  }

  snap.anchors = anchors_;
  snap.num_followers = oracle_->CountFollowers(anchors_, k_);
  snap.kcore_size = KCoreSize();
  uint32_t anchors_outside = 0;
  for (VertexId a : anchors_) {
    if (order.CoreOf(a) < k_) ++anchors_outside;
  }
  snap.anchored_core_size =
      snap.kcore_size + anchors_outside + snap.num_followers;
  snap.millis = timer.ElapsedMillis();
  return snap;
}

}  // namespace avt
