// IncAVT: the paper's incremental AVT algorithm (Section 5, Algorithm 6).
//
// State carried between snapshots:
//   * CoreMaintainer — graph + K-order kept consistent by the bounded
//     maintenance of Algorithms 4/5 (no per-snapshot rebuild);
//   * the previous anchor set S_{t-1};
//   * (lazy mode) a memo of trial evaluations with their dependency
//     regions, reused across snapshots until churn touches them.
//
// Per transition:
//   1. Apply E+ / E- through the maintainer, collecting the impacted
//     vertex set (the union of the paper's VI and VR).
//   2. Seed S_t := S_{t-1}.
//   3. Build the replacement pool: impacted vertices and their neighbors,
//      outside C_k(G_t), passing the Theorem-3 filter (Algorithm 6 line
//      12). The pool is sorted by id so tie-breaks are deterministic and
//      independent of cascade traversal order.
//   4. Local search: for each u in S_t, try every pool vertex v as a
//      replacement; commit the swap whenever it strictly increases the
//      follower count (lines 9-16). Follower counts come from the
//      non-destructive FollowerOracle on the maintained K-order.
//
// Lazy mode (default) accelerates step 4 without changing its output:
//
//   * Each trial's full follower query is gated by the oracle's
//     certified UpperBound (phase-1-only cascade). A slot's max-heap of
//     bounds is popped lazily; if the top bound cannot strictly beat the
//     incumbent follower count, the whole slot is settled with zero full
//     queries — the common steady-state outcome.
//   * Every evaluation (bound or full) records its dependency region:
//     the trial anchors plus all vertices popped by the forward pass. A
//     query's result is a pure function of the edges incident to that
//     region and the K-order positions of the region and its neighbors,
//     so a cached value stays exact while no region vertex is impacted.
//     ProcessDelta therefore warm-starts from the previous snapshot's
//     cached values, re-evaluating only entries whose region intersects
//     the maintainer's impacted set (plus its one-hop neighborhood) —
//     the "stable vertex values" reuse the paper's incremental thesis
//     motivates. Which entries can actually survive depends on the
//     pool: in kRestricted the pool is itself a subset of the
//     invalidated set, so the reuse that materializes there is the
//     incumbent F(S) and the bound gating; per-(slot, candidate) values
//     are memoized only for the wider ablation pools (kMaintainedFull)
//     where unimpacted candidates recur.
//
//   Both accelerations preserve bit-identical anchors versus the eager
//   loop (enforced by tests/lazy_greedy_test.cc).
//
// The pool is usually tiny relative to the full Theorem-3 candidate set —
// that is the entire advantage the paper measures in Figures 4/6/8.

#ifndef AVT_CORE_INC_AVT_H_
#define AVT_CORE_INC_AVT_H_

#include <vector>

#include "anchor/follower_oracle.h"
#include "anchor/trial_engine.h"
#include "core/avt.h"
#include "core/memo_store.h"
#include "maint/maintainer.h"

namespace avt {

/// Ablation modes for the incremental tracker (the full algorithm is
/// kRestricted; the others isolate where its speedup comes from).
enum class IncAvtMode {
  /// Algorithm 6 as published: maintained K-order + candidates
  /// restricted to churn-impacted vertices.
  kRestricted,
  /// Maintained K-order but the full Theorem-3 candidate pool per
  /// snapshot: measures the value of candidate restriction alone.
  kMaintainedFull,
  /// Carry S_{t-1} forward untouched (only refill if the budget is
  /// short): the "do-nothing" lower bound on tracking cost/quality.
  kCarryForward,
};

/// Execution knobs for IncAvtTracker.
struct IncAvtOptions {
  /// Lazy local search: certified-bound gating + cross-snapshot region
  /// memo (see file comment). Bit-identical anchors to the eager loop.
  bool lazy = true;
  /// Trial-engine worker count for the slot-trial local search (and the
  /// first snapshot's greedy solve); <= 1 runs serial. Parallel slot
  /// trials keep the bound gating but skip the cross-snapshot slot memo
  /// (worker oracles hold no cross-call state); anchors stay
  /// bit-identical to the serial loops at every thread count
  /// (tests/parallel_determinism_test.cc).
  uint32_t num_threads = 1;
  /// Cascade-scan backing (enum in core/avt.h). kMaintained (default)
  /// has the CoreMaintainer patch a DynamicCsr in lockstep with the
  /// graph, so every oracle scan — serial and per-worker — reads
  /// contiguous slabs with no per-delta rebuild; kRebuildPerDelta
  /// snapshots a fresh CsrView each transition; kNone scans the dynamic
  /// adjacency. All three backings iterate neighbors in the identical
  /// order, so anchors are bit-identical across modes (pinned by the
  /// differential fuzz and the PR-4 perf gate).
  IncAvtCsrMode csr = IncAvtCsrMode::kMaintained;
  /// Delta-transaction width the tracker requests from the driving
  /// engine (AvtEngine honors it via AvtTracker::PreferredBatchSize).
  /// With N > 1 the engine merges N consecutive source deltas into one
  /// canonical net-effect transaction, so the tracker pays ONE
  /// invalidation walk, ONE impacted-region candidate-pool build, and
  /// ONE local search per N deltas — and observes exactly every N-th
  /// snapshot of the stream, with state bit-identical to what the
  /// per-delta replay reaches at those boundaries (DeltaBatcher's
  /// last-op-wins guarantee; tests/differential_fuzz_test.cc pins it).
  /// 1 (default) is verbatim per-delta delivery.
  size_t batch_size = 1;
  /// Retention policy for the cross-snapshot trial memo (enum in
  /// core/avt.h, store in core/memo_store.h). Anchors are bit-identical
  /// under every policy — eviction only costs recomputation (pinned by
  /// the differential-fuzz policy matrix). Ignored in eager mode, which
  /// keeps no cross-snapshot memo at all.
  MemoPolicy memo_policy = MemoPolicy::kMemoizeAll;
  /// Byte budget for MemoPolicy::kLru (0 = the store's default 1 MiB);
  /// the memo table's slot array never outgrows it. Ignored by the
  /// other policies.
  size_t memo_budget_bytes = 0;
};

/// Incremental tracker (the paper's primary contribution).
class IncAvtTracker : public AvtTracker {
 public:
  IncAvtTracker(uint32_t k, uint32_t l,
                IncAvtMode mode = IncAvtMode::kRestricted,
                IncAvtOptions options = IncAvtOptions{})
      : k_(k), l_(l), mode_(mode), options_(options) {}

  AvtSnapshotResult ProcessFirst(const Graph& g0) override;
  AvtSnapshotResult ProcessDelta(const EdgeDelta& delta) override;
  /// Streaming growth: new isolated vertices join the maintained graph,
  /// K-order (back of level 0), CSR mirror, the oracle/engine scratch,
  /// and this tracker's per-vertex state, all without invalidating the
  /// cross-snapshot memo — an isolated vertex intersects no recorded
  /// dependency region and cannot change any query's result.
  void EnsureVertices(VertexId count) override;
  size_t PreferredBatchSize() const override {
    return options_.batch_size < 1 ? 1 : options_.batch_size;
  }
  std::string name() const override {
    switch (mode_) {
      case IncAvtMode::kRestricted: return "IncAVT";
      case IncAvtMode::kMaintainedFull: return "IncAVT-fullpool";
      case IncAvtMode::kCarryForward: return "IncAVT-carry";
    }
    return "IncAVT";
  }

  const CoreMaintainer& maintainer() const { return maintainer_; }
  const std::vector<VertexId>& current_anchors() const { return anchors_; }

  /// The maintained graph + K-order index: exactly the redundant state
  /// integrity audits cross-check against a fresh decomposition.
  TrackerAuditView AuditView() const override {
    return {&maintainer_.graph(), &maintainer_.order()};
  }
  bool InjectAuditFaultForDrill() override {
    return maintainer_.InjectIndexFaultForDrill();
  }

 private:
  /// A (key, generation) reference into the memo store: the store
  /// stamps every Record, so a reference whose entry was overwritten,
  /// evicted, or cleared elsewhere is recognizably stale — skipped by
  /// the invalidation walk and dropped by compaction instead of
  /// accumulating forever (the PR-8 stale-key fix).
  struct TouchRef {
    uint64_t key;
    uint32_t gen;
  };

  /// One touch/bound list plus its compaction trigger. A list compacts
  /// (drops stale references) when it reaches `compact_at`, which then
  /// moves to twice the survivor count — so every O(n) sweep is paid
  /// for by at least n/2 preceding appends, amortized O(1).
  struct TouchList {
    std::vector<TouchRef> refs;
    uint32_t compact_at = kTouchCompactMin;
  };

  /// |C_k| of the maintained graph (anchors excluded by construction:
  /// anchors are tracked outside the k-core).
  uint32_t KCoreSize() const;

  /// Registers (key, gen) as dependent on every vertex of the given
  /// region spans (a query's anchors + forward-pass pops).
  void RecordTouch(uint64_t key, uint32_t gen,
                   std::span<const VertexId> region_a,
                   std::span<const VertexId> region_b);

  /// Appends to a touch/bound list, compacting stale references when
  /// the list hits its trigger.
  void PushTouch(TouchList& list, TouchRef ref);
  /// Drops references whose memo entries are gone or superseded.
  void CompactTouchList(TouchList& list);
  /// Empties a list (references only — entries stay) and resets its
  /// trigger; keeps touch_total_ in step.
  void ClearTouchList(TouchList& list);

  /// Kills every memo entry whose region contains v.
  void InvalidateTouched(VertexId v);

  /// Local search over `pool` (already sorted), replicating the eager
  /// swap + extend loops with bound gating and the memo. Updates
  /// anchors_/is_anchor_/current; returns work counters via snap.
  void LazyLocalSearch(const std::vector<VertexId>& pool, uint32_t& current,
                       AvtSnapshotResult& snap);
  void EagerLocalSearch(const std::vector<VertexId>& pool, uint32_t& current,
                        AvtSnapshotResult& snap);
  /// num_threads > 1: the same slot loops fanned out over the trial
  /// engine — per-slot sharded evaluation (bound-gated when lazy),
  /// deterministic (followers desc, id asc) reduction, identical commits
  /// to the serial searches. Uses the incumbent memo but not the
  /// per-(slot, candidate) memo.
  void ParallelLocalSearch(const std::vector<VertexId>& pool,
                           uint32_t& current, AvtSnapshotResult& snap);

  uint32_t k_;
  uint32_t l_;
  IncAvtMode mode_;
  IncAvtOptions options_;
  size_t t_ = 0;
  CoreMaintainer maintainer_;
  std::unique_ptr<FollowerOracle> oracle_;
  /// Parallel slot-trial evaluator (created when num_threads > 1), bound
  /// to the maintainer's graph/order plus whichever CSR backing
  /// options_.csr selects (the per-worker oracles share the maintained
  /// mirror read-only).
  std::unique_ptr<TrialEngine> engine_;
  /// kRebuildPerDelta scratch: refilled from the maintained graph at the
  /// start of every ProcessDelta (caller-owned buffers, so the rebuild
  /// reuses its high-water allocation). Stable address — the oracle and
  /// engine bind it once.
  CsrView rebuilt_csr_;
  std::vector<VertexId> anchors_;
  /// Per-delta scratch, reused across deltas so ProcessDelta performs no
  /// n-sized allocation in steady state (assign() reuses capacity; the
  /// 1-byte-per-vertex memset is far cheaper than the cache misses of
  /// wider layouts on these hot flags). pool_state_ memoizes the
  /// Theorem-3 verdict per vertex within one delta — vertices reachable
  /// from several impacted vertices are filtered once, not per
  /// appearance. is_anchor_ is read by the local searches.
  enum : uint8_t { kUnseen = 0, kRejected = 1, kPooled = 2 };
  std::vector<uint8_t> pool_state_;
  std::vector<uint8_t> is_anchor_;
  std::vector<VertexId> pool_;

  // --- lazy-mode state ---------------------------------------------
  /// Cross-snapshot trial memo behind the MemoPolicy abstraction (key
  /// space and retention semantics documented in core/memo_store.h).
  /// Cleared whenever anchors_ changes (a new base invalidates every
  /// trial); churn kills individual entries via touch_index_, and a dead
  /// base drags its dependent bounds along (slot_bound_keys_). Policies
  /// may additionally evict entries (LRU budget, top-value-only) — the
  /// generation stamps keep those evictions and this tracker's
  /// invalidation bookkeeping consistent with each other.
  TrialMemoStore memo_;
  /// Per-transition deltas for AvtSnapshotResult's memo counters.
  TrialMemoStore::Stats last_memo_stats_;
  /// Inverted dependency index: touch_index_[v] lists the memo entries
  /// whose evaluation read v's state. ProcessDelta erases exactly those
  /// entries for each impacted vertex and its one-hop neighborhood;
  /// stale references are skipped via their generation stamp and
  /// dropped by per-list compaction. touch_total_ (references currently
  /// held across ALL lists) still triggers a periodic full reset as the
  /// global backstop.
  std::vector<TouchList> touch_index_;
  size_t touch_total_ = 0;
  /// slot_bound_keys_[slot] — references to bounds probed against the
  /// slot's current base cascade; erased together with the base.
  std::vector<TouchList> slot_bound_keys_;

  static constexpr uint64_t kIncumbentKey = TrialMemoStore::kIncumbentKey;
  static constexpr uint64_t kBaseKeyBase = TrialMemoStore::kBaseKeyBase;
  static constexpr uint32_t kTouchCompactMin = 64;
};

}  // namespace avt

#endif  // AVT_CORE_INC_AVT_H_
