// IncAVT: the paper's incremental AVT algorithm (Section 5, Algorithm 6).
//
// State carried between snapshots:
//   * CoreMaintainer — graph + K-order kept consistent by the bounded
//     maintenance of Algorithms 4/5 (no per-snapshot rebuild);
//   * the previous anchor set S_{t-1}.
//
// Per transition:
//   1. Apply E+ / E- through the maintainer, collecting the impacted
//     vertex set (the union of the paper's VI and VR).
//   2. Seed S_t := S_{t-1}.
//   3. Build the replacement pool: impacted vertices and their neighbors,
//      outside C_k(G_t), passing the Theorem-3 filter (Algorithm 6 line
//      12).
//   4. Local search: for each u in S_t, try every pool vertex v as a
//      replacement; commit the swap whenever it strictly increases the
//      follower count (lines 9-16). Follower counts come from the
//      non-destructive FollowerOracle on the maintained K-order.
//
// The pool is usually tiny relative to the full Theorem-3 candidate set —
// that is the entire advantage the paper measures in Figures 4/6/8.

#ifndef AVT_CORE_INC_AVT_H_
#define AVT_CORE_INC_AVT_H_

#include <vector>

#include "anchor/follower_oracle.h"
#include "core/avt.h"
#include "maint/maintainer.h"

namespace avt {

/// Ablation modes for the incremental tracker (the full algorithm is
/// kRestricted; the others isolate where its speedup comes from).
enum class IncAvtMode {
  /// Algorithm 6 as published: maintained K-order + candidates
  /// restricted to churn-impacted vertices.
  kRestricted,
  /// Maintained K-order but the full Theorem-3 candidate pool per
  /// snapshot: measures the value of candidate restriction alone.
  kMaintainedFull,
  /// Carry S_{t-1} forward untouched (only refill if the budget is
  /// short): the "do-nothing" lower bound on tracking cost/quality.
  kCarryForward,
};

/// Incremental tracker (the paper's primary contribution).
class IncAvtTracker : public AvtTracker {
 public:
  IncAvtTracker(uint32_t k, uint32_t l,
                IncAvtMode mode = IncAvtMode::kRestricted)
      : k_(k), l_(l), mode_(mode) {}

  AvtSnapshotResult ProcessFirst(const Graph& g0) override;
  AvtSnapshotResult ProcessDelta(const Graph& graph,
                                 const EdgeDelta& delta) override;
  std::string name() const override {
    switch (mode_) {
      case IncAvtMode::kRestricted: return "IncAVT";
      case IncAvtMode::kMaintainedFull: return "IncAVT-fullpool";
      case IncAvtMode::kCarryForward: return "IncAVT-carry";
    }
    return "IncAVT";
  }

  const CoreMaintainer& maintainer() const { return maintainer_; }
  const std::vector<VertexId>& current_anchors() const { return anchors_; }

 private:
  /// |C_k| of the maintained graph (anchors excluded by construction:
  /// anchors are tracked outside the k-core).
  uint32_t KCoreSize() const;

  uint32_t k_;
  uint32_t l_;
  IncAvtMode mode_;
  size_t t_ = 0;
  CoreMaintainer maintainer_;
  std::unique_ptr<FollowerOracle> oracle_;
  std::vector<VertexId> anchors_;
};

}  // namespace avt

#endif  // AVT_CORE_INC_AVT_H_
