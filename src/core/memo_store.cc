#include "core/memo_store.h"

namespace avt {

void TrialMemoStore::Configure(MemoPolicy policy, size_t budget_bytes,
                               size_t num_slots) {
  policy_ = policy;
  map_ = FlatKeyMap<Stored>();
  top_.assign(policy == MemoPolicy::kTopValueOnly ? num_slots : 0, SlotTop{});
  lru_head_ = kNullKey;
  lru_tail_ = kNullKey;
  max_live_ = 0;
  gen_ = 0;
  stats_ = Stats{};
  if (policy == MemoPolicy::kNone) return;
  if (policy == MemoPolicy::kLru) {
    const size_t budget =
        budget_bytes != 0 ? budget_bytes : kDefaultLruBudgetBytes;
    // Largest power-of-two slot capacity whose array fits the budget,
    // floored at the map's minimum footprint (~64 slots): a budget
    // below that floor is honored as closely as the structure allows.
    size_t cap = FlatKeyMap<Stored>::min_capacity();
    while (cap * 2 * FlatKeyMap<Stored>::slot_bytes() <= budget) cap *= 2;
    map_.SetMaxCapacity(cap);
    // Evict down to 5/8 of the cap before fresh inserts: live load then
    // never reaches the 3/4 growth trigger, so the capped table always
    // has tombstone slack to compact in place.
    max_live_ = cap * 5 / 8;
  }
  // Size past the typical working set so the per-delta loop starts
  // rehash-free (Reserve clamps to the LRU capacity cap).
  map_.Reserve(4096);
}

bool TrialMemoStore::Lookup(uint64_t key, Entry* out) {
  if (!enabled()) return false;
  Stored* stored = map_.Find(key);
  if (stored == nullptr) return false;
  if (policy_ == MemoPolicy::kLru) LruTouch(key, stored);
  out->value = stored->value;
  out->exact = stored->exact != 0;
  return true;
}

bool TrialMemoStore::ContainsLive(uint64_t key) {
  if (!enabled()) return false;
  Stored* stored = map_.Find(key);
  if (stored == nullptr) return false;
  if (policy_ == MemoPolicy::kLru) LruTouch(key, stored);
  return true;
}

bool TrialMemoStore::IsLive(uint64_t key, uint32_t gen) const {
  const Stored* stored = map_.Find(key);
  return stored != nullptr && stored->gen == gen;
}

uint32_t TrialMemoStore::Record(uint64_t key, Entry entry) {
  if (!enabled()) return kDroppedGen;
  AVT_DCHECK(key != kNullKey);
  const uint32_t gen = NextGen();  // may flush the cache on stamp wrap
  if (policy_ == MemoPolicy::kTopValueOnly && IsSlotKey(key)) {
    // One (slot, candidate) entry per slot: a strictly-worse value is
    // declined, a better-or-equal one displaces the reigning top.
    const uint64_t slot = key >> 32;
    AVT_DCHECK(slot < top_.size());
    SlotTop& top = top_[slot];
    if (top.valid && top.key != key) {
      if (entry.value < top.value) return kDroppedGen;
      Stored* old = map_.Find(top.key);
      if (old != nullptr) {
        EraseInternal(top.key, old);
        ++stats_.evictions;
      }
    }
    top.key = key;
    top.value = entry.value;
    top.valid = true;
  }
  Stored* existing = map_.Find(key);
  if (existing != nullptr) {
    existing->value = entry.value;
    existing->exact = entry.exact ? 1 : 0;
    existing->gen = gen;
    if (policy_ == MemoPolicy::kLru) LruTouch(key, existing);
    return gen;
  }
  if (policy_ == MemoPolicy::kLru) EvictForInsert();
  map_.Put(key, Stored{entry.value, gen, kNullKey, kNullKey,
                       static_cast<uint8_t>(entry.exact ? 1 : 0)});
  if (policy_ == MemoPolicy::kLru) LruPushFront(key);
  if (map_.size() > stats_.peak_entries) stats_.peak_entries = map_.size();
  return gen;
}

void TrialMemoStore::EraseRef(uint64_t key, uint32_t gen) {
  Stored* stored = map_.Find(key);
  if (stored == nullptr || stored->gen != gen) return;  // stale reference
  EraseInternal(key, stored);
}

void TrialMemoStore::Clear() {
  map_.Clear();
  lru_head_ = kNullKey;
  lru_tail_ = kNullKey;
  for (SlotTop& top : top_) top = SlotTop{};
}

uint32_t TrialMemoStore::NextGen() {
  if (++gen_ == 0) {
    // Stamp wrap (once per 2^32 records): outstanding (key, gen)
    // references could alias fresh stamps, so flush the cache. Stale
    // references that survive the flush can at worst spuriously
    // invalidate a recomputed entry — a recompute, never a wrong value.
    Clear();
    gen_ = 1;
  }
  return gen_;
}

void TrialMemoStore::LruUnlink(Stored* stored) {
  if (stored->lru_prev != kNullKey) {
    map_.Find(stored->lru_prev)->lru_next = stored->lru_next;
  } else {
    lru_head_ = stored->lru_next;
  }
  if (stored->lru_next != kNullKey) {
    map_.Find(stored->lru_next)->lru_prev = stored->lru_prev;
  } else {
    lru_tail_ = stored->lru_prev;
  }
}

void TrialMemoStore::LruPushFront(uint64_t key) {
  Stored* stored = map_.Find(key);
  stored->lru_prev = kNullKey;
  stored->lru_next = lru_head_;
  if (lru_head_ != kNullKey) map_.Find(lru_head_)->lru_prev = key;
  lru_head_ = key;
  if (lru_tail_ == kNullKey) lru_tail_ = key;
}

void TrialMemoStore::LruTouch(uint64_t key, Stored* stored) {
  if (lru_head_ == key) return;
  LruUnlink(stored);
  stored->lru_prev = kNullKey;
  stored->lru_next = lru_head_;
  map_.Find(lru_head_)->lru_prev = key;
  lru_head_ = key;
}

void TrialMemoStore::EvictForInsert() {
  if (max_live_ == 0) return;
  while (map_.size() >= max_live_ && lru_tail_ != kNullKey) {
    const uint64_t victim = lru_tail_;
    Stored* stored = map_.Find(victim);
    AVT_DCHECK(stored != nullptr);
    if (stored == nullptr) break;
    EraseInternal(victim, stored);
    ++stats_.evictions;
  }
}

void TrialMemoStore::EraseInternal(uint64_t key, Stored* stored) {
  if (policy_ == MemoPolicy::kLru) LruUnlink(stored);
  if (policy_ == MemoPolicy::kTopValueOnly && IsSlotKey(key)) {
    SlotTop& top = top_[key >> 32];
    if (top.valid && top.key == key) top.valid = false;
  }
  map_.Erase(key);
}

}  // namespace avt
