// Policy-bounded store for IncAVT's cross-snapshot trial memo.
//
// The tracker's memo (core/inc_avt.h) is a cache of trial evaluations
// keyed by (slot, candidate) / per-slot base / incumbent. PR 2 grew it
// without bound — a production bug for long-lived streams (ROADMAP open
// item 4). Ingress (VLDB 2021) showed memoization policy should be a
// first-class pluggable axis with measured memory/hit-rate tradeoffs;
// this store is that axis for IncAVT: the four MemoPolicy retention
// strategies (core/avt.h) behind one interface, with byte accounting
// and hit/miss/eviction counters surfaced per run.
//
// Correctness: every entry is a cache of an exact evaluation (or a
// certified bound whose validity the tracker re-gates against its base
// key), so DROPPING an entry can only cost recomputation — never change
// anchors. The dangerous direction is the opposite one, failing to drop
// a stale entry; the tracker owns that via its dependency-region
// invalidation, and this store supports it with generation stamps: each
// Record returns a generation, the tracker files (key, gen) references
// in its touch/bound lists, and EraseRef only kills the entry if the
// reference is still current. A reference whose entry was meanwhile
// overwritten, evicted, or cleared is stale and skipped — which is what
// keeps eviction (this store's doing) and invalidation (the tracker's)
// from corrupting each other's bookkeeping.
//
// LRU lives inside the table: the stored value embeds prev/next KEYS
// (slot pointers would dangle across rehash), threading a recency list
// through the map. The byte budget converts to a hard slot-capacity cap
// (FlatKeyMap::SetMaxCapacity); the store evicts from the cold end
// before any insert that would push live entries past 5/8 of the cap,
// leaving slack so the capped table compacts tombstones in place
// instead of degenerating.

#ifndef AVT_CORE_MEMO_STORE_H_
#define AVT_CORE_MEMO_STORE_H_

#include <cstdint>
#include <vector>

#include "core/avt.h"
#include "util/flat_map.h"

namespace avt {

/// Policy-aware memo table. Not thread-safe (the tracker's serial loop
/// owns it; parallel slot trials never record cross-snapshot entries).
class TrialMemoStore {
 public:
  /// One memoized trial evaluation: exact follower count (full query)
  /// or a certified upper bound (phase-1 probe).
  struct Entry {
    uint32_t value;
    bool exact;
  };

  /// Cumulative counters since Configure. Lookups are counted by the
  /// tracker via CountLookup so a base-invalidated bound registers as a
  /// miss, not a hit.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;  // policy-driven drops (LRU + top displaced)
    size_t peak_entries = 0;
  };

  /// Memo key space (shared with the tracker):
  ///   (slot << 32) | v      — F(trial) per swap/extend slot;
  ///   kBaseKeyBase | slot   — the slot's base cascade;
  ///   kIncumbentKey         — F(S) itself.
  static constexpr uint64_t kIncumbentKey = ~uint64_t{0};
  static constexpr uint64_t kBaseKeyBase = uint64_t{1} << 62;

  /// Record() return when the policy declined the entry: the caller
  /// must not file any (key, gen) reference for it.
  static constexpr uint32_t kDroppedGen = 0;

  /// kLru with memo_budget_bytes == 0 falls back to this budget.
  static constexpr size_t kDefaultLruBudgetBytes = size_t{1} << 20;

  /// Resets the store for a fresh run. `num_slots` sizes the
  /// top-value-only registry (the tracker's slot id range, 2l + 2).
  /// kNone keeps the table at its minimum footprint and reports zero
  /// bytes; the other policies pre-reserve the typical working set.
  void Configure(MemoPolicy policy, size_t budget_bytes, size_t num_slots);

  bool enabled() const { return policy_ != MemoPolicy::kNone; }
  MemoPolicy policy() const { return policy_; }

  /// Fetches `key` into `*out`; returns presence. Touches LRU recency
  /// but does NOT count hit/miss — the tracker calls CountLookup with
  /// the post-validity-gate verdict.
  bool Lookup(uint64_t key, Entry* out);

  /// Presence probe for base-validity gates. Touches LRU recency (a
  /// base consulted by a surviving bound must stay warm), no counters.
  bool ContainsLive(uint64_t key);

  /// Whether (key, gen) still names the live entry — the staleness test
  /// for filed references (touch-list compaction).
  bool IsLive(uint64_t key, uint32_t gen) const;

  void CountLookup(bool hit) { hit ? ++stats_.hits : ++stats_.misses; }

  /// Inserts or overwrites `key` under the policy; may evict colder
  /// entries first (kLru) or displace the slot's reigning top entry
  /// (kTopValueOnly). Returns the entry's generation stamp, or
  /// kDroppedGen when the policy declined it.
  uint32_t Record(uint64_t key, Entry entry);

  /// Erases `key` iff (key, gen) is still the live pairing; stale
  /// references no-op (their entry was already superseded elsewhere).
  void EraseRef(uint64_t key, uint32_t gen);

  /// Commit-time wipe: O(1) epoch clear plus LRU / top-registry reset.
  /// Counters and the capacity high-water mark survive (they describe
  /// the run, not the current anchor base).
  void Clear();

  size_t size() const { return map_.size(); }
  /// Slot-array footprint; 0 when the policy is kNone. Monotone
  /// non-decreasing between Configure calls.
  size_t bytes() const { return enabled() ? map_.capacity_bytes() : 0; }
  size_t table_capacity() const { return map_.capacity(); }
  const Stats& stats() const { return stats_; }

 private:
  /// Inline value: the entry plus its generation and the embedded LRU
  /// links (keys, not pointers — stable across rehash).
  struct Stored {
    uint32_t value;
    uint32_t gen;
    uint64_t lru_prev;
    uint64_t lru_next;
    uint8_t exact;
  };

  /// kTopValueOnly registry: the reigning best entry per slot.
  struct SlotTop {
    uint64_t key = 0;
    uint32_t value = 0;
    bool valid = false;
  };

  /// LRU link sentinel. Never a legal memo key: slot keys keep their
  /// high bits small, base keys carry only bit 62, and the incumbent is
  /// all-ones.
  static constexpr uint64_t kNullKey = ~uint64_t{0} - 1;

  static bool IsSlotKey(uint64_t key) { return key < kBaseKeyBase; }

  uint32_t NextGen();
  void LruUnlink(Stored* stored);
  void LruPushFront(uint64_t key);
  void LruTouch(uint64_t key, Stored* stored);
  /// Evicts cold entries until a fresh insert keeps live entries at or
  /// under the budget-derived threshold.
  void EvictForInsert();
  /// Unconditional erase + bookkeeping (LRU unlink, top invalidation).
  void EraseInternal(uint64_t key, Stored* stored);

  MemoPolicy policy_ = MemoPolicy::kMemoizeAll;
  FlatKeyMap<Stored> map_;
  std::vector<SlotTop> top_;
  uint64_t lru_head_ = kNullKey;
  uint64_t lru_tail_ = kNullKey;
  size_t max_live_ = 0;  // kLru eviction threshold; 0 = unbounded
  uint32_t gen_ = 0;
  Stats stats_;
};

}  // namespace avt

#endif  // AVT_CORE_MEMO_STORE_H_
