#include "core/run_summary.h"

#include <algorithm>
#include <cstdio>

namespace avt {

double JaccardSimilarity(const std::vector<VertexId>& a,
                         const std::vector<VertexId>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::vector<VertexId> sa = a, sb = b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  size_t i = 0, j = 0, intersection = 0;
  while (i < sa.size() && j < sb.size()) {
    if (sa[i] == sb[j]) {
      ++intersection;
      ++i;
      ++j;
    } else if (sa[i] < sb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t union_size = sa.size() + sb.size() - intersection;
  return union_size == 0 ? 1.0
                         : static_cast<double>(intersection) /
                               static_cast<double>(union_size);
}

RunSummary SummarizeRun(const AvtRunResult& run) {
  RunSummary summary;
  summary.snapshots = run.snapshots.size();
  if (run.snapshots.empty()) return summary;

  double stability_sum = 0;
  size_t transitions = 0;
  for (size_t t = 0; t < run.snapshots.size(); ++t) {
    const AvtSnapshotResult& snap = run.snapshots[t];
    summary.total_millis += snap.millis;
    summary.max_millis = std::max(summary.max_millis, snap.millis);
    summary.total_candidates += snap.candidates_visited;
    summary.total_followers += snap.num_followers;
    summary.memo_hits += snap.memo_hits;
    summary.memo_misses += snap.memo_misses;
    summary.memo_evictions += snap.memo_evictions;
    summary.memo_peak_bytes = std::max(summary.memo_peak_bytes,
                                       snap.memo_bytes);
    if (t > 0) {
      double jaccard = JaccardSimilarity(run.snapshots[t - 1].anchors,
                                         snap.anchors);
      stability_sum += jaccard;
      ++transitions;
      if (jaccard < 1.0) ++summary.anchor_changes;
    }
  }
  summary.mean_millis =
      summary.total_millis / static_cast<double>(summary.snapshots);
  summary.mean_followers = static_cast<double>(summary.total_followers) /
                           static_cast<double>(summary.snapshots);
  summary.anchor_stability =
      transitions == 0 ? 1.0 : stability_sum / static_cast<double>(transitions);
  return summary;
}

std::string FormatRunSummary(const RunSummary& summary) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%zu snapshots, %.1f ms total (mean %.2f, max %.2f), "
                "%llu candidates, %.1f followers/snapshot, anchor "
                "stability %.2f (%zu changes)",
                summary.snapshots, summary.total_millis,
                summary.mean_millis, summary.max_millis,
                static_cast<unsigned long long>(summary.total_candidates),
                summary.mean_followers, summary.anchor_stability,
                summary.anchor_changes);
  std::string line = buf;
  if (summary.memo_hits > 0 || summary.memo_misses > 0 ||
      summary.memo_evictions > 0) {
    const uint64_t lookups = summary.memo_hits + summary.memo_misses;
    const double hit_rate =
        lookups == 0 ? 0.0
                     : static_cast<double>(summary.memo_hits) /
                           static_cast<double>(lookups);
    std::snprintf(buf, sizeof(buf),
                  ", memo %.0f%% hit rate (%llu evictions, peak %llu KiB)",
                  100.0 * hit_rate,
                  static_cast<unsigned long long>(summary.memo_evictions),
                  static_cast<unsigned long long>(
                      summary.memo_peak_bytes / 1024));
    line += buf;
  }
  if (summary.source_retries > 0 || summary.source_transient_errors > 0) {
    std::snprintf(buf, sizeof(buf),
                  ", %llu transient source errors absorbed (%llu retries)",
                  static_cast<unsigned long long>(
                      summary.source_transient_errors),
                  static_cast<unsigned long long>(summary.source_retries));
    line += buf;
  }
  if (summary.audits_run > 0 || summary.deltas_quarantined > 0 ||
      summary.recoveries > 0) {
    std::snprintf(buf, sizeof(buf),
                  ", %llu audits (%llu failed), %llu quarantined, "
                  "%llu recoveries",
                  static_cast<unsigned long long>(summary.audits_run),
                  static_cast<unsigned long long>(summary.audits_failed),
                  static_cast<unsigned long long>(summary.deltas_quarantined),
                  static_cast<unsigned long long>(summary.recoveries));
    line += buf;
  }
  if (summary.breaker_opens > 0) {
    std::snprintf(buf, sizeof(buf),
                  ", breaker opened %llu times (%llu pulls rejected)",
                  static_cast<unsigned long long>(summary.breaker_opens),
                  static_cast<unsigned long long>(
                      summary.breaker_rejected_pulls));
    line += buf;
  }
  if (summary.peak_rss_bytes > 0) {
    std::snprintf(buf, sizeof(buf), ", peak RSS %.1f MiB",
                  static_cast<double>(summary.peak_rss_bytes) /
                      (1024.0 * 1024.0));
    line += buf;
  }
  if (summary.health != HealthState::kHealthy) {
    std::snprintf(buf, sizeof(buf), ", health %s (%s)",
                  HealthStateName(summary.health),
                  HealthReasonName(summary.health_reason));
    line += buf;
  }
  return line;
}

}  // namespace avt
