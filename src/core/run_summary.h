// Post-hoc analysis of an AVT run: timing distribution, anchor-set
// stability, and effectiveness aggregates.
//
// Anchor stability (the Jaccard similarity between consecutive anchor
// sets) quantifies the paper's implicit claim that anchors drift slowly
// on smooth workloads — the property IncAVT's carried-forward seed
// exploits. The ad-campaign example and EXPERIMENTS.md use this module.

#ifndef AVT_CORE_RUN_SUMMARY_H_
#define AVT_CORE_RUN_SUMMARY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/avt.h"
#include "core/health.h"

namespace avt {

/// Aggregated view of one AvtRunResult.
struct RunSummary {
  size_t snapshots = 0;
  double total_millis = 0;
  double mean_millis = 0;
  double max_millis = 0;
  uint64_t total_candidates = 0;
  uint64_t total_followers = 0;
  double mean_followers = 0;
  /// Mean Jaccard similarity of consecutive anchor sets (1.0 = anchors
  /// never change; undefined -> 1.0 for runs with < 2 snapshots).
  double anchor_stability = 1.0;
  /// Number of transitions where the anchor set changed at all.
  size_t anchor_changes = 0;
  /// Ingestion-side fault counters (RetryingSource, graph/
  /// resilient_source.h): pulls that were re-attempted and transient
  /// errors absorbed. Zero for undecorated sources, and excluded from
  /// recovery bit-identity comparisons (they describe the transport,
  /// not the tracked result). Only AvtEngine::Summary fills them;
  /// SummarizeRun has no source to ask.
  uint64_t source_retries = 0;
  uint64_t source_transient_errors = 0;
  /// Cross-snapshot memo totals (IncAVT lazy mode; zero for trackers
  /// without a memo). memo_peak_bytes is the high-water footprint of
  /// the memo table across the run — under MemoPolicy::kLru it never
  /// exceeds the configured byte budget.
  uint64_t memo_hits = 0;
  uint64_t memo_misses = 0;
  uint64_t memo_evictions = 0;
  uint64_t memo_peak_bytes = 0;
  /// Self-healing telemetry (AvtEngine only; SummarizeRun leaves these
  /// zero). Audits are the cadenced integrity checks of core/health.h;
  /// quarantined deltas went to the dead-letter log instead of the
  /// tracker; recoveries are checkpoint+WAL rollbacks that healed an
  /// audit divergence in-process. Breaker counters come from
  /// CircuitBreakerSource via DeltaSource::SourceStats.
  uint64_t audits_run = 0;
  uint64_t audits_failed = 0;
  uint64_t deltas_quarantined = 0;
  uint64_t recoveries = 0;
  uint64_t breaker_opens = 0;
  uint64_t breaker_rejected_pulls = 0;
  /// Terminal engine health. kHealthy for SummarizeRun and for engine
  /// runs that never degraded; the reason names the FIRST cause of the
  /// current state.
  HealthState health = HealthState::kHealthy;
  HealthReason health_reason = HealthReason::kNone;
  /// Process peak resident set size at summary time (util/mem.h), the
  /// metric that decides whether a run of this size is servable on a
  /// box. 0 = unknown (platform without getrusage). Only
  /// AvtEngine::Summary fills it; it describes the process, not the
  /// tracked result, so recovery bit-identity comparisons exclude it.
  uint64_t peak_rss_bytes = 0;
};

/// Computes the summary.
RunSummary SummarizeRun(const AvtRunResult& run);

/// Jaccard similarity of two vertex sets (1.0 when both empty).
double JaccardSimilarity(const std::vector<VertexId>& a,
                         const std::vector<VertexId>& b);

/// One-line human-readable rendering.
std::string FormatRunSummary(const RunSummary& summary);

}  // namespace avt

#endif  // AVT_CORE_RUN_SUMMARY_H_
