#include "corelib/coreness_history.h"

#include <algorithm>

#include "corelib/decomposition.h"

namespace avt {

CorenessHistory CorenessHistory::Compute(const SnapshotSequence& sequence) {
  CorenessHistory history;
  history.per_snapshot_.reserve(sequence.NumSnapshots());
  sequence.ForEachSnapshot(
      [&history](size_t, const Graph& graph, const EdgeDelta&) {
        history.per_snapshot_.push_back(DecomposeCores(graph).core);
      });
  return history;
}

TransitionStats CorenessHistory::Transition(size_t t) const {
  AVT_CHECK(t >= 1 && t < per_snapshot_.size());
  TransitionStats stats;
  const auto& before = per_snapshot_[t - 1];
  const auto& after = per_snapshot_[t];
  for (VertexId v = 0; v < before.size(); ++v) {
    if (after[v] == before[v]) {
      ++stats.unchanged;
    } else if (after[v] > before[v]) {
      ++stats.raised;
      stats.max_shift = std::max(stats.max_shift, after[v] - before[v]);
    } else {
      ++stats.lowered;
      stats.max_shift = std::max(stats.max_shift, before[v] - after[v]);
    }
  }
  return stats;
}

std::vector<VertexId> CorenessHistory::EverOnShell(uint32_t k) const {
  std::vector<VertexId> result;
  if (per_snapshot_.empty() || k == 0) return result;
  for (VertexId v = 0; v < NumVertices(); ++v) {
    for (const auto& snapshot : per_snapshot_) {
      if (snapshot[v] == k - 1) {
        result.push_back(v);
        break;
      }
    }
  }
  return result;
}

double CorenessHistory::Smoothness() const {
  if (per_snapshot_.size() < 2) return 1.0;
  uint64_t unchanged = 0, total = 0;
  for (size_t t = 1; t < per_snapshot_.size(); ++t) {
    TransitionStats stats = Transition(t);
    unchanged += stats.unchanged;
    total += stats.unchanged + stats.raised + stats.lowered;
  }
  return total == 0 ? 1.0
                    : static_cast<double>(unchanged) /
                          static_cast<double>(total);
}

}  // namespace avt
