// Per-vertex core-number trajectories over an evolving graph.
//
// Several of the paper's claims rest on the "smoothness of the network
// structure's evolution": most vertices keep their core number between
// consecutive snapshots, which is why incremental maintenance and
// restricted candidate probing pay off. CorenessHistory records the
// trajectory and summarizes exactly how smooth a workload is — the
// quantity IncAVT exploits — and feeds the stability analysis in
// EXPERIMENTS.md.

#ifndef AVT_CORELIB_CORENESS_HISTORY_H_
#define AVT_CORELIB_CORENESS_HISTORY_H_

#include <cstdint>
#include <vector>

#include "graph/snapshots.h"

namespace avt {

/// Smoothness summary of one snapshot transition.
struct TransitionStats {
  uint64_t unchanged = 0;  // vertices whose core number kept its value
  uint64_t raised = 0;
  uint64_t lowered = 0;
  uint32_t max_shift = 0;  // largest |delta core| of any vertex

  double ChangedFraction() const {
    uint64_t total = unchanged + raised + lowered;
    return total == 0
               ? 0.0
               : static_cast<double>(raised + lowered) /
                     static_cast<double>(total);
  }
};

/// Core trajectories for every vertex of a snapshot sequence.
class CorenessHistory {
 public:
  /// Computes the history by decomposing every snapshot; O(T * m).
  static CorenessHistory Compute(const SnapshotSequence& sequence);

  size_t NumSnapshots() const { return per_snapshot_.size(); }
  VertexId NumVertices() const {
    return per_snapshot_.empty()
               ? 0
               : static_cast<VertexId>(per_snapshot_[0].size());
  }

  /// core of v at snapshot t.
  uint32_t CoreAt(VertexId v, size_t t) const {
    return per_snapshot_[t][v];
  }

  /// Transition summary between snapshots t-1 and t (t >= 1).
  TransitionStats Transition(size_t t) const;

  /// Vertices whose core number ever touches the (k-1)-shell — the union
  /// of all potential follower populations across time.
  std::vector<VertexId> EverOnShell(uint32_t k) const;

  /// Fraction of (vertex, transition) pairs with unchanged core number:
  /// the paper's "smoothness" in one number.
  double Smoothness() const;

 private:
  std::vector<std::vector<uint32_t>> per_snapshot_;
};

}  // namespace avt

#endif  // AVT_CORELIB_CORENESS_HISTORY_H_
