#include "corelib/decomposition.h"

#include <algorithm>

namespace avt {
namespace {

// The bucket algorithm is adjacency-layout agnostic: it only needs
// NumVertices / Degree / Neighbors. Instantiated for the dynamic Graph
// and for the contiguous CsrView (the hot path of per-solve rebuilds).
template <typename Adjacency>
CoreDecomposition DecomposeCoresImpl(const Adjacency& graph,
                                     const std::vector<VertexId>& pinned) {
  const VertexId n = graph.NumVertices();
  CoreDecomposition result;
  result.core.assign(n, 0);
  result.peel_order.reserve(n);

  std::vector<uint8_t> is_pinned(n, 0);
  for (VertexId p : pinned) {
    AVT_CHECK(p < n);
    is_pinned[p] = 1;
  }

  // Bucket sort vertices by degree. Pinned vertices never enter buckets.
  std::vector<uint32_t> degree(n, 0);
  uint32_t max_degree = 0;
  VertexId peelable = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = graph.Degree(v);
    if (!is_pinned[v]) {
      max_degree = std::max(max_degree, degree[v]);
      ++peelable;
    }
  }

  // bucket_start[d] .. : positions of vertices with current degree d in
  // `order`; standard Batagelj-Zaversnik layout with position index.
  std::vector<VertexId> order(peelable);
  std::vector<VertexId> position(n, 0);
  std::vector<VertexId> bucket_start(max_degree + 2, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (!is_pinned[v]) ++bucket_start[degree[v] + 1];
  }
  for (size_t d = 1; d < bucket_start.size(); ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  {
    std::vector<VertexId> cursor(bucket_start.begin(),
                                 bucket_start.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      if (is_pinned[v]) continue;
      position[v] = cursor[degree[v]]++;
      order[position[v]] = v;
    }
  }

  uint32_t max_core = 0;
  for (VertexId i = 0; i < peelable; ++i) {
    VertexId v = order[i];
    uint32_t core_v = degree[v];
    max_core = std::max(max_core, core_v);
    result.core[v] = core_v;
    result.peel_order.push_back(v);
    for (VertexId w : graph.Neighbors(v)) {
      if (is_pinned[w]) continue;
      if (degree[w] <= degree[v]) continue;  // already peeled or same bucket floor
      // Move w one bucket down: swap w with the first vertex of its bucket.
      uint32_t dw = degree[w];
      VertexId first_pos = bucket_start[dw];
      VertexId first_vertex = order[first_pos];
      if (first_vertex != w) {
        std::swap(order[position[w]], order[first_pos]);
        std::swap(position[w], position[first_vertex]);
      }
      ++bucket_start[dw];
      --degree[w];
    }
    // Clamp: vertices peeled later can never report a lower core than the
    // current peel level. (degree[] of an unpeeled vertex may sit below
    // core_v only transiently; the standard fix is to peel with
    // degree[v] := max(degree[v], core so far), achieved by bucket order.)
  }

  // The bucket algorithm peels in nondecreasing current-degree order, so
  // result.core is already the correct core number; but when a vertex's
  // remaining degree dropped below the current level before being peeled
  // its bucket was below; enforce monotone peel levels:
  uint32_t level = 0;
  for (VertexId v : result.peel_order) {
    level = std::max(level, result.core[v]);
    result.core[v] = level;
  }
  // (For pinned vertices:)
  for (VertexId v = 0; v < n; ++v) {
    if (is_pinned[v]) result.core[v] = kPinnedCore;
  }
  result.max_core = max_core;
  return result;
}

}  // namespace

CoreDecomposition DecomposeCores(const Graph& graph,
                                 const std::vector<VertexId>& pinned) {
  return DecomposeCoresImpl(graph, pinned);
}

CoreDecomposition DecomposeCores(const CsrView& csr,
                                 const std::vector<VertexId>& pinned) {
  return DecomposeCoresImpl(csr, pinned);
}

CoreDecomposition DecomposeCoresNaive(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  CoreDecomposition result;
  result.core.assign(n, 0);
  result.peel_order.reserve(n);

  std::vector<uint32_t> degree(n);
  std::vector<uint8_t> removed(n, 0);
  for (VertexId v = 0; v < n; ++v) degree[v] = graph.Degree(v);

  VertexId remaining = n;
  uint32_t k = 1;
  while (remaining > 0) {
    bool any = true;
    while (any) {
      any = false;
      for (VertexId v = 0; v < n; ++v) {
        if (removed[v] || degree[v] >= k) continue;
        removed[v] = 1;
        --remaining;
        any = true;
        result.core[v] = k - 1;
        result.peel_order.push_back(v);
        result.max_core = std::max(result.max_core, k - 1);
        for (VertexId w : graph.Neighbors(v)) {
          if (!removed[w]) --degree[w];
        }
      }
    }
    ++k;
  }
  return result;
}

std::vector<VertexId> KCoreMembers(const CoreDecomposition& cores,
                                   uint32_t k) {
  std::vector<VertexId> members;
  for (VertexId v = 0; v < cores.core.size(); ++v) {
    if (cores.core[v] >= k) members.push_back(v);
  }
  return members;
}

std::vector<VertexId> KShellMembers(const CoreDecomposition& cores,
                                    uint32_t k) {
  std::vector<VertexId> members;
  for (VertexId v = 0; v < cores.core.size(); ++v) {
    if (cores.core[v] == k) members.push_back(v);
  }
  return members;
}

uint32_t MaxCoreDegree(const Graph& graph, const CoreDecomposition& cores,
                       VertexId u) {
  uint32_t mcd = 0;
  for (VertexId w : graph.Neighbors(u)) {
    if (cores.core[w] >= cores.core[u]) ++mcd;
  }
  return mcd;
}

}  // namespace avt
