// k-core decomposition (Definition 1/2 of the paper).
//
// DecomposeCores implements the O(m) bucket algorithm of Batagelj &
// Zaversnik, additionally recording the peel order, which is exactly the
// K-order of Definition 5: vertices grouped by core number, ordered by
// removal time within a group.
//
// Pinned vertices (anchors treated as having infinite degree, Definition 4)
// are supported: a pinned vertex is never peeled, receives core number
// kPinnedCore, and appears in no order group. This single primitive yields
// the exact anchored k-core used as ground truth throughout the library.

#ifndef AVT_CORELIB_DECOMPOSITION_H_
#define AVT_CORELIB_DECOMPOSITION_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.h"

namespace avt {

/// Core number assigned to pinned (anchored) vertices.
inline constexpr uint32_t kPinnedCore =
    std::numeric_limits<uint32_t>::max();

/// Result of a full core decomposition.
struct CoreDecomposition {
  /// core[v] = core number of v (kPinnedCore for pinned vertices).
  std::vector<uint32_t> core;
  /// Peel order: every non-pinned vertex exactly once, grouped by core
  /// number ascending, removal order within a group (a valid K-order).
  std::vector<VertexId> peel_order;
  /// Largest finite core number present (0 for edgeless graphs).
  uint32_t max_core = 0;

  bool InKCore(VertexId v, uint32_t k) const { return core[v] >= k; }
};

/// Full bucket-based core decomposition. `pinned` (optional, may be empty)
/// lists vertices that are never peeled.
CoreDecomposition DecomposeCores(const Graph& graph,
                                 const std::vector<VertexId>& pinned = {});

/// Same algorithm over a CSR snapshot (contiguous neighbor scans). The
/// view preserves the graph's neighbor order, so the result — including
/// the peel order — is bit-identical to the Graph overload.
CoreDecomposition DecomposeCores(const CsrView& csr,
                                 const std::vector<VertexId>& pinned = {});

/// Literal transcription of the paper's Algorithm 1 (repeated scanning).
/// O(n^2) worst case — reference implementation for differential tests.
CoreDecomposition DecomposeCoresNaive(const Graph& graph);

/// Vertices of the k-core C_k (core >= k), ascending id. Pinned vertices
/// are included (they are members of the anchored k-core by definition).
std::vector<VertexId> KCoreMembers(const CoreDecomposition& cores,
                                   uint32_t k);

/// Vertices with core number exactly k (the k-shell).
std::vector<VertexId> KShellMembers(const CoreDecomposition& cores,
                                    uint32_t k);

/// Max-core degree (Definition 6): number of u's neighbors whose core
/// number is >= core(u).
uint32_t MaxCoreDegree(const Graph& graph, const CoreDecomposition& cores,
                       VertexId u);

}  // namespace avt

#endif  // AVT_CORELIB_DECOMPOSITION_H_
