#include "corelib/graph_stats.h"

#include <algorithm>
#include <queue>

#include "corelib/decomposition.h"

namespace avt {

GraphStats ComputeGraphStats(const Graph& graph) {
  GraphStats stats;
  stats.num_vertices = graph.NumVertices();
  stats.num_edges = graph.NumEdges();
  stats.average_degree = graph.AverageDegree();
  stats.max_degree = graph.MaxDegree();
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    if (graph.Degree(u) == 0) ++stats.isolated_vertices;
  }

  CoreDecomposition cores = DecomposeCores(graph);
  stats.degeneracy = cores.max_core;

  // Exact triangle count: for each edge (u, v) with u < v, intersect
  // neighbor sets, counting each triangle once via ordering.
  uint64_t triangles = 0;
  std::vector<uint8_t> mark(graph.NumVertices(), 0);
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (VertexId v : graph.Neighbors(u)) mark[v] = 1;
    for (VertexId v : graph.Neighbors(u)) {
      if (v <= u) continue;
      for (VertexId w : graph.Neighbors(v)) {
        if (w > v && mark[w]) ++triangles;
      }
    }
    for (VertexId v : graph.Neighbors(u)) mark[v] = 0;
  }
  stats.triangle_estimate = triangles;
  return stats;
}

std::vector<uint64_t> DegreeHistogram(const Graph& graph) {
  std::vector<uint64_t> histogram(graph.MaxDegree() + 1, 0);
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    ++histogram[graph.Degree(u)];
  }
  return histogram;
}

std::vector<uint64_t> ComponentSizes(const Graph& graph) {
  std::vector<uint8_t> visited(graph.NumVertices(), 0);
  std::vector<uint64_t> sizes;
  std::queue<VertexId> queue;
  for (VertexId s = 0; s < graph.NumVertices(); ++s) {
    if (visited[s]) continue;
    visited[s] = 1;
    queue.push(s);
    uint64_t size = 0;
    while (!queue.empty()) {
      VertexId u = queue.front();
      queue.pop();
      ++size;
      for (VertexId v : graph.Neighbors(u)) {
        if (!visited[v]) {
          visited[v] = 1;
          queue.push(v);
        }
      }
    }
    sizes.push_back(size);
  }
  std::sort(sizes.rbegin(), sizes.rend());
  return sizes;
}

}  // namespace avt

namespace avt {

double GlobalClusteringCoefficient(const Graph& graph) {
  // Triangles via neighbor marking (same scheme as ComputeGraphStats).
  uint64_t triangles = 0;
  std::vector<uint8_t> mark(graph.NumVertices(), 0);
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (VertexId v : graph.Neighbors(u)) mark[v] = 1;
    for (VertexId v : graph.Neighbors(u)) {
      if (v <= u) continue;
      for (VertexId w : graph.Neighbors(v)) {
        if (w > v && mark[w]) ++triangles;
      }
    }
    for (VertexId v : graph.Neighbors(u)) mark[v] = 0;
  }
  uint64_t triples = 0;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    uint64_t d = graph.Degree(v);
    triples += d * (d - 1) / 2;
  }
  return triples == 0 ? 0.0
                      : 3.0 * static_cast<double>(triangles) /
                            static_cast<double>(triples);
}

double DegreeAssortativity(const Graph& graph) {
  // Pearson correlation over the 2m ordered endpoint pairs.
  double sum_x = 0, sum_xx = 0, sum_xy = 0;
  uint64_t count = 0;
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    double du = graph.Degree(u);
    for (VertexId v : graph.Neighbors(u)) {
      double dv = graph.Degree(v);
      sum_x += du;
      sum_xx += du * du;
      sum_xy += du * dv;
      ++count;
    }
  }
  if (count == 0) return 0.0;
  double n = static_cast<double>(count);
  double mean = sum_x / n;
  double variance = sum_xx / n - mean * mean;
  if (variance <= 1e-12) return 0.0;
  double covariance = sum_xy / n - mean * mean;
  return covariance / variance;
}

}  // namespace avt
