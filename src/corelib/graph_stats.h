// Descriptive statistics of a graph (Table 2 of the paper).

#ifndef AVT_CORELIB_GRAPH_STATS_H_
#define AVT_CORELIB_GRAPH_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace avt {

/// Summary row matching the paper's dataset-statistics table.
struct GraphStats {
  VertexId num_vertices = 0;
  uint64_t num_edges = 0;
  double average_degree = 0;
  uint32_t max_degree = 0;
  uint32_t degeneracy = 0;       // max core number
  uint64_t isolated_vertices = 0;
  uint64_t triangle_estimate = 0;  // exact count for small graphs
};

/// Computes stats; triangle counting is exact (neighbor intersection) and
/// intended for laptop-scale graphs.
GraphStats ComputeGraphStats(const Graph& graph);

/// Degree histogram: index d -> number of vertices with degree d.
std::vector<uint64_t> DegreeHistogram(const Graph& graph);

/// Connected-component sizes, descending.
std::vector<uint64_t> ComponentSizes(const Graph& graph);

/// Global clustering coefficient: 3 * triangles / connected triples
/// (0 for triangle-free / degenerate graphs).
double GlobalClusteringCoefficient(const Graph& graph);

/// Degree assortativity: Pearson correlation of endpoint degrees over
/// edges (Newman 2002). Range [-1, 1]; 0 for degenerate graphs.
double DegreeAssortativity(const Graph& graph);

}  // namespace avt

#endif  // AVT_CORELIB_GRAPH_STATS_H_
