#include "corelib/invariants.h"

#include <vector>

#include "corelib/decomposition.h"

namespace avt {

InvariantReport CheckKOrderInvariants(const Graph& graph,
                                      const KOrder& order) {
  return CheckKOrderInvariants(graph, order, DecomposeCores(graph));
}

InvariantReport CheckKOrderInvariants(const Graph& graph, const KOrder& order,
                                      const CoreDecomposition& fresh) {
  InvariantReport report;
  const VertexId n = graph.NumVertices();
  if (order.NumVertices() != n) {
    report.Fail("vertex count mismatch");
    return report;
  }

  // 1. Cores match a fresh decomposition.
  for (VertexId v = 0; v < n; ++v) {
    if (order.CoreOf(v) != fresh.core[v]) {
      report.Fail("core mismatch at vertex " + std::to_string(v) +
                  ": index says " + std::to_string(order.CoreOf(v)) +
                  ", decomposition says " + std::to_string(fresh.core[v]));
      return report;
    }
  }

  // 2. Level lists: linkage, tag monotonicity, size, full coverage.
  std::vector<uint8_t> seen(n, 0);
  uint64_t total = 0;
  for (uint32_t level = 0; level <= order.MaxLevel(); ++level) {
    uint32_t count = 0;
    VertexId prev = kNoVertex;
    for (VertexId v = order.LevelFront(level); v != kNoVertex;
         v = order.NextInLevel(v)) {
      if (seen[v]) {
        report.Fail("vertex " + std::to_string(v) + " appears twice");
        return report;
      }
      seen[v] = 1;
      if (order.CoreOf(v) != level) {
        report.Fail("vertex " + std::to_string(v) + " in wrong level list");
        return report;
      }
      if (order.PrevInLevel(v) != prev) {
        report.Fail("broken prev link at vertex " + std::to_string(v));
        return report;
      }
      if (prev != kNoVertex && order.TagOf(prev) >= order.TagOf(v)) {
        report.Fail("non-monotone tags at vertex " + std::to_string(v));
        return report;
      }
      prev = v;
      ++count;
    }
    if (order.LevelBack(level) != prev) {
      report.Fail("tail mismatch at level " + std::to_string(level));
      return report;
    }
    if (count != order.LevelSize(level)) {
      report.Fail("size counter mismatch at level " + std::to_string(level));
      return report;
    }
    total += count;
  }
  if (total != n) {
    report.Fail("level lists cover " + std::to_string(total) + " of " +
                std::to_string(n) + " vertices");
    return report;
  }

  // 3 + 4. deg+ correctness and the peel-order invariant.
  for (VertexId v = 0; v < n; ++v) {
    uint32_t recount = 0;
    for (VertexId w : graph.Neighbors(v)) {
      if (order.Precedes(v, w)) ++recount;
    }
    if (recount != order.DegPlus(v)) {
      report.Fail("stale deg+ at vertex " + std::to_string(v) + ": stored " +
                  std::to_string(order.DegPlus(v)) + ", actual " +
                  std::to_string(recount));
      return report;
    }
    if (recount > order.CoreOf(v)) {
      report.Fail("peel-order violation at vertex " + std::to_string(v) +
                  ": deg+ " + std::to_string(recount) + " > core " +
                  std::to_string(order.CoreOf(v)));
      return report;
    }
  }
  return report;
}

}  // namespace avt
