// Structural and semantic invariant checks for the K-order index.
//
// Used pervasively in tests (and available to debug builds) to verify
// that incremental maintenance leaves the index in a state
// indistinguishable from a fresh rebuild:
//   1. level membership equals the true core number (differential check
//      against DecomposeCores);
//   2. each level list is a consistent doubly-linked list with strictly
//      increasing tags and an accurate size counter;
//   3. stored deg+ values match a fresh recount;
//   4. the order is a valid peel order: deg+(v) <= core(v) for all v.

#ifndef AVT_CORELIB_INVARIANTS_H_
#define AVT_CORELIB_INVARIANTS_H_

#include <string>

#include "corelib/decomposition.h"
#include "corelib/korder.h"
#include "graph/graph.h"

namespace avt {

/// Result of an invariant sweep; `ok` plus a first-failure description.
struct InvariantReport {
  bool ok = true;
  std::string failure;

  void Fail(std::string message) {
    if (ok) {
      ok = false;
      failure = std::move(message);
    }
  }
};

/// Runs all checks; O(n + m) plus one fresh decomposition.
InvariantReport CheckKOrderInvariants(const Graph& graph,
                                      const KOrder& order);

/// Same sweep against a caller-supplied `fresh = DecomposeCores(graph)`
/// — lets an auditor that already decomposed the graph (core/health.h)
/// run the sweep without paying for a second decomposition.
InvariantReport CheckKOrderInvariants(const Graph& graph, const KOrder& order,
                                      const CoreDecomposition& fresh);

}  // namespace avt

#endif  // AVT_CORELIB_INVARIANTS_H_
