#include "corelib/korder.h"

#include "graph/dynamic_csr.h"

namespace avt {

void KOrder::Build(const Graph& graph) {
  BuildFrom(graph, DecomposeCores(graph));
}

void KOrder::Build(const CsrView& csr) {
  BuildFromImpl(csr, DecomposeCores(csr));
}

void KOrder::BuildFrom(const Graph& graph, const CoreDecomposition& cores) {
  BuildFromImpl(graph, cores);
}

template <typename Adjacency>
void KOrder::BuildFromImpl(const Adjacency& graph,
                           const CoreDecomposition& cores) {
  const VertexId n = graph.NumVertices();
  AVT_CHECK(cores.core.size() == n);
  hot_.assign(n, Hot{});
  links_.assign(n, Link{});
  levels_.clear();
  relabel_count_ = 0;
  EnsureLevel(cores.max_core);

  AVT_CHECK_MSG(cores.peel_order.size() == n,
                "pinned decompositions cannot seed a KOrder");
  for (VertexId v : cores.peel_order) {
    hot_[v].level = cores.core[v];
    PushBack(cores.core[v], v);
  }
  // The deg+ pass is the second O(m) scan of a build; over a CsrView it
  // runs on contiguous targets.
  for (VertexId v = 0; v < n; ++v) {
    hot_[v].deg_plus = ComputeDegPlus(graph, v);
  }
}

template <typename Adjacency>
uint32_t KOrder::ComputeDegPlus(const Adjacency& graph, VertexId v) const {
  uint32_t count = 0;
  for (VertexId w : graph.Neighbors(v)) {
    if (Precedes(v, w)) ++count;
  }
  return count;
}

void KOrder::Detach(VertexId v) {
  Link& link = links_[v];
  Level& level = levels_[hot_[v].level];
  if (link.prev != kNoVertex) {
    links_[link.prev].next = link.next;
  } else {
    level.head = link.next;
  }
  if (link.next != kNoVertex) {
    links_[link.next].prev = link.prev;
  } else {
    level.tail = link.prev;
  }
  link.prev = kNoVertex;
  link.next = kNoVertex;
  --level.size;
}

void KOrder::PushFront(uint32_t level_index, VertexId v) {
  EnsureLevel(level_index);
  Level& level = levels_[level_index];
  Hot& hot = hot_[v];
  Link& link = links_[v];
  hot.level = level_index;
  link.prev = kNoVertex;
  link.next = level.head;
  if (level.head != kNoVertex) {
    uint64_t head_tag = hot_[level.head].tag;
    if (head_tag < kTagGap) {
      // Re-attach state before relabeling; simplest correct approach:
      // temporarily push with tag 0, relabel the whole level.
      links_[level.head].prev = v;
      level.head = v;
      ++level.size;
      hot.tag = 0;
      RelabelLevel(level_index);
      return;
    }
    hot.tag = head_tag - kTagGap;
    links_[level.head].prev = v;
  } else {
    hot.tag = kTagOrigin;
    level.tail = v;
  }
  level.head = v;
  ++level.size;
}

void KOrder::PushBack(uint32_t level_index, VertexId v) {
  EnsureLevel(level_index);
  Level& level = levels_[level_index];
  Hot& hot = hot_[v];
  Link& link = links_[v];
  hot.level = level_index;
  link.next = kNoVertex;
  link.prev = level.tail;
  if (level.tail != kNoVertex) {
    uint64_t tail_tag = hot_[level.tail].tag;
    if (tail_tag > ~uint64_t{0} - kTagGap) {
      links_[level.tail].next = v;
      level.tail = v;
      ++level.size;
      hot.tag = ~uint64_t{0};
      RelabelLevel(level_index);
      return;
    }
    hot.tag = tail_tag + kTagGap;
    links_[level.tail].next = v;
  } else {
    hot.tag = kTagOrigin;
    level.head = v;
  }
  level.tail = v;
  ++level.size;
}

void KOrder::RelabelLevel(uint32_t level_index) {
  ++relabel_count_;
  uint64_t tag = kTagOrigin;
  for (VertexId v = levels_[level_index].head; v != kNoVertex;
       v = links_[v].next) {
    hot_[v].tag = tag;
    tag += kTagGap;
  }
}

void KOrder::MoveToLevelFront(VertexId v, uint32_t level) {
  Detach(v);
  PushFront(level, v);
}

void KOrder::MoveToLevelBack(VertexId v, uint32_t level) {
  Detach(v);
  PushBack(level, v);
}

uint32_t KOrder::RecomputeDegPlus(const Graph& graph, VertexId v) {
  hot_[v].deg_plus = ComputeDegPlus(graph, v);
  return hot_[v].deg_plus;
}

uint32_t KOrder::RecomputeDegPlus(const DynamicCsr& csr, VertexId v) {
  hot_[v].deg_plus = ComputeDegPlus(csr, v);
  return hot_[v].deg_plus;
}

std::vector<VertexId> KOrder::LevelVertices(uint32_t level) const {
  std::vector<VertexId> out;
  if (level >= levels_.size()) return out;
  out.reserve(levels_[level].size);
  for (VertexId v = levels_[level].head; v != kNoVertex;
       v = links_[v].next) {
    out.push_back(v);
  }
  return out;
}

std::vector<VertexId> KOrder::FullOrder() const {
  std::vector<VertexId> out;
  out.reserve(hot_.size());
  for (uint32_t level = 0; level < levels_.size(); ++level) {
    for (VertexId v = levels_[level].head; v != kNoVertex;
         v = links_[v].next) {
      out.push_back(v);
    }
  }
  return out;
}

}  // namespace avt
