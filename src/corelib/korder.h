// K-order index (Definition 5 of the paper) with order-maintenance tags.
//
// The K-order of a graph arranges all vertices by (core number, peel
// position): u ⪯ v iff core(u) < core(v), or cores are equal and u was
// peeled before v. The paper's Greedy algorithm, follower computation
// (Algorithm 3) and incremental maintenance (Algorithms 4/5) all operate
// on this order.
//
// Representation: one intrusive doubly-linked list per core level, with a
// 64-bit monotone tag per vertex inside its level. `u ⪯ v` compares
// (level, tag) in O(1). Front/back insertion assigns tags by fixed gaps;
// when a level's tag space is locally exhausted the whole level is
// relabeled (amortized O(1) per operation at the gap sizes used here).
//
// The index also stores the remaining degree deg+(v) (Section 4.2 of the
// paper): the number of neighbors positioned after v. The central
// invariant maintained by all mutations is
//
//     deg+(v) <= core(v)   for every vertex v,
//
// which is exactly the statement that concatenating the level lists gives
// a valid peel order. `CheckInvariants` (invariants.h) verifies this plus
// structural consistency and is called liberally from tests.

#ifndef AVT_CORELIB_KORDER_H_
#define AVT_CORELIB_KORDER_H_

#include <cstdint>
#include <vector>

#include "corelib/decomposition.h"
#include "graph/graph.h"

namespace avt {

class DynamicCsr;

/// Sentinel for "no vertex" in the level lists.
inline constexpr VertexId kNoVertex = static_cast<VertexId>(-1);

/// Mutable K-order index over a graph's core decomposition.
class KOrder {
 public:
  KOrder() = default;

  /// Builds the index from scratch: O(m) decomposition + O(m) deg+ pass.
  void Build(const Graph& graph);

  /// Same build over a CSR snapshot of the graph: both O(m) phases scan
  /// contiguous neighbor spans. Bit-identical to Build(graph) when the
  /// view was taken from `graph` (CsrView preserves neighbor order).
  void Build(const CsrView& csr);

  /// Rebuilds from an existing decomposition (must match `graph`).
  void BuildFrom(const Graph& graph, const CoreDecomposition& cores);

  /// Appends one isolated vertex (core 0, deg+ 0) at the back of level
  /// 0 and returns its id. Any level-0 position satisfies the K-order
  /// invariants for a vertex with no edges — it supports nobody and
  /// deg+(v) = 0 <= core(v) — so back insertion is both valid and the
  /// cheapest choice. Streaming sources use this to grow the universe
  /// without an O(m) rebuild.
  VertexId AddVertex() {
    const VertexId v = static_cast<VertexId>(hot_.size());
    hot_.push_back(Hot{});
    links_.push_back(Link{});
    PushBack(0, v);
    return v;
  }

  VertexId NumVertices() const {
    return static_cast<VertexId>(hot_.size());
  }

  uint32_t CoreOf(VertexId v) const { return hot_[v].level; }
  uint32_t DegPlus(VertexId v) const { return hot_[v].deg_plus; }
  uint64_t TagOf(VertexId v) const { return hot_[v].tag; }

  /// Largest level index with storage (levels above may be empty).
  uint32_t MaxLevel() const {
    return levels_.empty() ? 0 : static_cast<uint32_t>(levels_.size() - 1);
  }

  /// True iff u ⪯ v strictly (u before v in the K-order).
  bool Precedes(VertexId u, VertexId v) const {
    const Hot& a = hot_[u];
    const Hot& b = hot_[v];
    if (a.level != b.level) return a.level < b.level;
    return a.tag < b.tag;
  }

  VertexId LevelFront(uint32_t level) const {
    return level < levels_.size() ? levels_[level].head : kNoVertex;
  }
  VertexId LevelBack(uint32_t level) const {
    return level < levels_.size() ? levels_[level].tail : kNoVertex;
  }
  VertexId NextInLevel(VertexId v) const { return links_[v].next; }
  VertexId PrevInLevel(VertexId v) const { return links_[v].prev; }
  uint32_t LevelSize(uint32_t level) const {
    return level < levels_.size() ? levels_[level].size : 0;
  }

  /// Moves v to the front of `level` (used for promotions: new core
  /// members enter at the beginning of O_{K+1}).
  void MoveToLevelFront(VertexId v, uint32_t level);

  /// Moves v to the back of `level` (used for demotions and for
  /// repositioning failed promotion candidates).
  void MoveToLevelBack(VertexId v, uint32_t level);

  /// Recomputes deg+(v) from current positions; returns the new value.
  /// The DynamicCsr overload serves the maintainer's mirrored cascades
  /// (same ComputeDegPlus definition, contiguous scan).
  uint32_t RecomputeDegPlus(const Graph& graph, VertexId v);
  uint32_t RecomputeDegPlus(const DynamicCsr& csr, VertexId v);

  void SetDegPlus(VertexId v, uint32_t value) {
    hot_[v].deg_plus = value;
  }
  void IncrementDegPlus(VertexId v, int32_t delta) {
    hot_[v].deg_plus = static_cast<uint32_t>(
        static_cast<int64_t>(hot_[v].deg_plus) + delta);
  }

  /// Materializes level `level` front-to-back (for tests/debugging).
  std::vector<VertexId> LevelVertices(uint32_t level) const;

  /// Materializes the full order, level 0 upward.
  std::vector<VertexId> FullOrder() const;

  /// Number of whole-level relabel events since Build (instrumentation).
  uint64_t relabel_count() const { return relabel_count_; }

 private:
  /// Per-vertex state is split hot/cold by access pattern. The hot
  /// struct holds exactly what the scan loops read — Precedes (level,
  /// tag), CoreOf, DegPlus — in 16 aligned bytes, so every position
  /// comparison in a cascade costs one cache line per vertex (the
  /// former 24-byte combined node straddled two lines for a third of
  /// all indices, and dragged the intrusive-list pointers into cache
  /// that only mutations need). The cold struct holds the level-list
  /// links, touched only by maintenance moves and level walks.
  struct Hot {
    uint64_t tag = 0;
    uint32_t level = 0;
    uint32_t deg_plus = 0;
  };
  static_assert(sizeof(Hot) == 16, "keep position lookups one line wide");
  struct Link {
    VertexId prev = kNoVertex;
    VertexId next = kNoVertex;
  };
  struct Level {
    VertexId head = kNoVertex;
    VertexId tail = kNoVertex;
    uint32_t size = 0;
  };

  static constexpr uint64_t kTagGap = uint64_t{1} << 20;
  static constexpr uint64_t kTagOrigin = uint64_t{1} << 40;

  void EnsureLevel(uint32_t level) {
    if (level >= levels_.size()) levels_.resize(level + 1);
  }
  template <typename Adjacency>
  void BuildFromImpl(const Adjacency& graph, const CoreDecomposition& cores);

  /// Single definition of deg+: neighbors positioned after v. Shared by
  /// the bulk build and RecomputeDegPlus so the two paths cannot drift.
  template <typename Adjacency>
  uint32_t ComputeDegPlus(const Adjacency& graph, VertexId v) const;

  void Detach(VertexId v);
  void PushFront(uint32_t level, VertexId v);
  void PushBack(uint32_t level, VertexId v);
  void RelabelLevel(uint32_t level);

  std::vector<Hot> hot_;
  std::vector<Link> links_;
  std::vector<Level> levels_;
  uint64_t relabel_count_ = 0;
};

}  // namespace avt

#endif  // AVT_CORELIB_KORDER_H_
