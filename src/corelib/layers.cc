#include "corelib/layers.h"

#include "util/status.h"

namespace avt {

OnionLayers ComputeOnionLayers(const Graph& graph, uint32_t k,
                               const std::vector<VertexId>& pinned) {
  const VertexId n = graph.NumVertices();
  OnionLayers result;
  result.layer.assign(n, kCoreLayer);

  std::vector<uint8_t> is_pinned(n, 0);
  for (VertexId p : pinned) {
    AVT_CHECK(p < n);
    is_pinned[p] = 1;
  }

  std::vector<uint32_t> degree(n);
  for (VertexId v = 0; v < n; ++v) degree[v] = graph.Degree(v);

  std::vector<VertexId> frontier;
  for (VertexId v = 0; v < n; ++v) {
    if (!is_pinned[v] && degree[v] < k) frontier.push_back(v);
  }

  std::vector<uint8_t> removed(n, 0);
  uint32_t round = 0;
  while (!frontier.empty()) {
    ++round;
    std::vector<VertexId> next;
    for (VertexId v : frontier) {
      if (removed[v]) continue;
      removed[v] = 1;
      result.layer[v] = round;
      result.shell_order.push_back(v);
    }
    for (VertexId v : frontier) {
      if (result.layer[v] != round) continue;
      for (VertexId w : graph.Neighbors(v)) {
        if (removed[w] || is_pinned[w]) continue;
        if (--degree[w] < k && degree[w] + 1 >= k) {
          // w just crossed the threshold; schedule exactly once.
          next.push_back(w);
        }
      }
    }
    frontier = std::move(next);
  }
  result.rounds = round;
  return result;
}

}  // namespace avt
