// Onion layers: the deletion-round structure used by the OLAK baseline.
//
// Peeling a graph at threshold k proceeds in rounds: round 1 removes every
// vertex with degree < k, round 2 removes vertices made deficient by round
// 1, and so on; survivors form the k-core. OLAK (Zhang et al., PVLDB'17)
// organizes the non-k-core vertices by this round index ("onion layers"):
// anchoring a vertex can only save chains of vertices along non-decreasing
// layers, which bounds its follower search.

#ifndef AVT_CORELIB_LAYERS_H_
#define AVT_CORELIB_LAYERS_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.h"

namespace avt {

/// Layer index of k-core survivors.
inline constexpr uint32_t kCoreLayer = std::numeric_limits<uint32_t>::max();

/// Onion-layer decomposition at a fixed threshold k.
struct OnionLayers {
  /// layer[v]: removal round (1-based) for non-core vertices, kCoreLayer
  /// for k-core members.
  std::vector<uint32_t> layer;
  /// Number of peel rounds executed.
  uint32_t rounds = 0;
  /// Vertices outside the k-core, ordered by (layer, removal order).
  std::vector<VertexId> shell_order;

  bool InCore(VertexId v) const { return layer[v] == kCoreLayer; }
};

/// Computes onion layers of `graph` at threshold k. `pinned` vertices are
/// never removed (used when OLAK re-peels with chosen anchors fixed).
OnionLayers ComputeOnionLayers(const Graph& graph, uint32_t k,
                               const std::vector<VertexId>& pinned = {});

}  // namespace avt

#endif  // AVT_CORELIB_LAYERS_H_
