#include "durability/checkpoint.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "durability/serde.h"
#include "util/crc32.h"

namespace avt {

namespace {

constexpr char kMagic[8] = {'A', 'V', 'T', 'C', 'K', 'P', 'T', '1'};
constexpr uint32_t kMaxPayloadBytes = 1u << 30;

std::string CheckpointFileName(uint64_t step) {
  char name[64];
  std::snprintf(name, sizeof(name), "checkpoint-%010llu.avtc",
                static_cast<unsigned long long>(step));
  return name;
}

std::string EncodePayload(const CheckpointData& data) {
  std::string payload;
  serde::PutU64(&payload, data.fingerprint);
  serde::PutU64(&payload, data.step);
  serde::PutU64(&payload, data.wal_records);
  serde::PutU64(&payload, data.source_pulls);
  serde::PutU32(&payload, data.num_vertices);
  serde::PutDouble(&payload, data.total_millis);
  serde::PutDouble(&payload, data.max_millis);
  serde::PutU64(&payload, data.total_candidates);
  serde::PutU64(&payload, data.total_followers);
  serde::PutDouble(&payload, data.stability_sum);
  serde::PutU64(&payload, data.anchor_changes);
  serde::PutU32(&payload,
                static_cast<uint32_t>(data.previous_anchors.size()));
  for (VertexId v : data.previous_anchors) serde::PutU32(&payload, v);
  serde::PutU32(&payload, data.has_tracker_state ? 1 : 0);
  if (data.has_tracker_state) {
    serde::PutU64(&payload, data.tracker_state.size());
    payload.append(data.tracker_state);
  }
  return payload;
}

bool DecodePayload(std::string_view payload, CheckpointData* data) {
  serde::Reader reader(payload);
  uint32_t anchor_count = 0;
  uint32_t has_state = 0;
  if (!reader.GetU64(&data->fingerprint) || !reader.GetU64(&data->step) ||
      !reader.GetU64(&data->wal_records) ||
      !reader.GetU64(&data->source_pulls) ||
      !reader.GetU32(&data->num_vertices) ||
      !reader.GetDouble(&data->total_millis) ||
      !reader.GetDouble(&data->max_millis) ||
      !reader.GetU64(&data->total_candidates) ||
      !reader.GetU64(&data->total_followers) ||
      !reader.GetDouble(&data->stability_sum) ||
      !reader.GetU64(&data->anchor_changes) ||
      !reader.GetU32(&anchor_count)) {
    return false;
  }
  if (reader.Remaining() < 4ull * anchor_count) return false;
  data->previous_anchors.clear();
  data->previous_anchors.reserve(anchor_count);
  for (uint32_t i = 0; i < anchor_count; ++i) {
    uint32_t v = 0;
    if (!reader.GetU32(&v)) return false;
    data->previous_anchors.push_back(v);
  }
  if (!reader.GetU32(&has_state)) return false;
  if (has_state > 1) return false;
  data->has_tracker_state = has_state == 1;
  data->tracker_state.clear();
  if (data->has_tracker_state) {
    uint64_t blob_len = 0;
    if (!reader.GetU64(&blob_len)) return false;
    if (blob_len != reader.Remaining()) return false;
    if (!reader.GetBytes(&data->tracker_state,
                         static_cast<size_t>(blob_len))) {
      return false;
    }
  }
  return reader.Exhausted();
}

Status SyncFd(int fd, const std::string& what) {
  if (::fsync(fd) != 0) {
    return Status::IoError("fsync failed for " + what + ": " +
                           std::strerror(errno));
  }
  return Status::Ok();
}

}  // namespace

Status WriteCheckpoint(const std::string& dir, const CheckpointData& data,
                       bool fsync) {
  const std::string final_path = dir + "/" + CheckpointFileName(data.step);
  const std::string tmp_path = final_path + ".tmp";

  const std::string payload = EncodePayload(data);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = Crc32(payload.data(), payload.size());

  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot create checkpoint tmp " + tmp_path +
                           ": " + std::strerror(errno));
  }
  char header[8];
  std::memcpy(header, &len, 4);
  std::memcpy(header + 4, &crc, 4);
  const bool wrote =
      std::fwrite(kMagic, 1, sizeof(kMagic), file) == sizeof(kMagic) &&
      std::fwrite(header, 1, 8, file) == 8 &&
      std::fwrite(payload.data(), 1, payload.size(), file) == payload.size();
  if (!wrote || std::fflush(file) != 0) {
    std::fclose(file);
    std::remove(tmp_path.c_str());
    return Status::IoError("cannot write checkpoint " + tmp_path);
  }
  if (fsync) {
    Status sync_status = SyncFd(::fileno(file), tmp_path);
    if (!sync_status.ok()) {
      std::fclose(file);
      std::remove(tmp_path.c_str());
      return sync_status;
    }
  }
  std::fclose(file);

  // Atomic publish: readers see either the old set of checkpoints or
  // the new one, never a half-written file under the final name.
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IoError("cannot publish checkpoint " + final_path + ": " +
                           std::strerror(errno));
  }
  if (fsync) {
    // The rename itself must reach the directory for the checkpoint to
    // survive power loss.
    const int dir_fd = ::open(dir.c_str(), O_RDONLY);
    if (dir_fd < 0) {
      return Status::IoError("cannot open durability dir " + dir + ": " +
                             std::strerror(errno));
    }
    Status sync_status = SyncFd(dir_fd, dir);
    ::close(dir_fd);
    AVT_RETURN_IF_ERROR(sync_status);
  }
  return Status::Ok();
}

StatusOr<CheckpointData> ReadCheckpoint(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("no checkpoint at " + path);
  }
  std::string bytes;
  char buffer[1 << 16];
  size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    bytes.append(buffer, got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return Status::IoError("read failed for checkpoint " + path);
  }

  // Checkpoints are published atomically, so unlike the WAL there is
  // no "torn tail" grace: ANY framing damage is corruption.
  if (bytes.size() < sizeof(kMagic) + 8 ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad checkpoint header in " + path);
  }
  uint32_t len = 0;
  uint32_t crc = 0;
  std::memcpy(&len, bytes.data() + sizeof(kMagic), 4);
  std::memcpy(&crc, bytes.data() + sizeof(kMagic) + 4, 4);
  if (len > kMaxPayloadBytes ||
      bytes.size() - sizeof(kMagic) - 8 != len) {
    return Status::Corruption("checkpoint length mismatch in " + path);
  }
  const std::string_view payload(bytes.data() + sizeof(kMagic) + 8, len);
  if (Crc32(payload.data(), payload.size()) != crc) {
    return Status::Corruption("checkpoint checksum mismatch in " + path);
  }
  CheckpointData data;
  if (!DecodePayload(payload, &data)) {
    return Status::Corruption("undecodable checkpoint payload in " + path);
  }
  return data;
}

StatusOr<std::vector<CheckpointEntry>> ListCheckpoints(
    const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IoError("cannot list durability dir " + dir + ": " +
                           ec.message());
  }
  std::vector<CheckpointEntry> entries;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    unsigned long long step = 0;
    int consumed = 0;
    if (std::sscanf(name.c_str(), "checkpoint-%llu.avtc%n", &step,
                    &consumed) == 1 &&
        consumed == static_cast<int>(name.size())) {
      entries.push_back({step, entry.path().string()});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const CheckpointEntry& a, const CheckpointEntry& b) {
              return a.step < b.step;
            });
  return entries;
}

StatusOr<CheckpointData> LoadLatestValidCheckpoint(const std::string& dir) {
  auto entries_or = ListCheckpoints(dir);
  if (!entries_or.ok()) return entries_or.status();
  const std::vector<CheckpointEntry>& entries = entries_or.value();
  if (entries.empty()) {
    return Status::NotFound("no checkpoints in " + dir);
  }
  Status newest_error = Status::Ok();
  for (size_t i = entries.size(); i > 0; --i) {
    StatusOr<CheckpointData> data = ReadCheckpoint(entries[i - 1].path);
    if (data.ok()) return data;
    if (newest_error.ok()) newest_error = data.status();
  }
  return newest_error;
}

}  // namespace avt
