// Checkpoint: the engine's minimal recoverable state at a step cadence.
//
// Recovery in this library is REPLAY-based: the WAL (durability/wal.h)
// holds every committed transaction and the engine's replay is
// bit-identical by construction, so a checkpoint does not need to
// freeze the whole tracker. What it stores is:
//
//   * a config fingerprint — recovery with a different tracker, batch
//     size, source, or engine option is rejected up front instead of
//     silently producing a diverged run;
//   * the engine's step counter, source cursor, and the exact
//     RunSummary accumulators at that step — replay cross-checks its
//     own accumulators against these when it passes the checkpoint's
//     step, so a WAL/checkpoint divergence surfaces as kCorruption;
//   * optionally, a tracker state blob (AvtTracker::SaveCheckpointState)
//     for tracker families whose state is exactly serializable — those
//     resume from the blob and replay only the WAL suffix.
//
// File format: "AVTCKPT1" magic, then one CRC32-framed section
// ([u32 len][u32 crc][payload]); field order documented in
// docs/DURABILITY.md. Files are named checkpoint-<step>.avtc and
// written atomically (tmp + fsync + rename), so a torn checkpoint
// never shadows an older intact one.

#ifndef AVT_DURABILITY_CHECKPOINT_H_
#define AVT_DURABILITY_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace avt {

/// Everything a checkpoint stores. Timing fields are advisory (wall
/// clock is not deterministic); every other field is cross-checked
/// bit-exactly during replay.
struct CheckpointData {
  uint64_t fingerprint = 0;     ///< config hash; mismatch rejects resume
  uint64_t step = 0;            ///< snapshots processed (G_0 included)
  uint64_t wal_records = 0;     ///< committed WAL records at this step
  uint64_t source_pulls = 0;    ///< source deltas consumed at this step
  uint32_t num_vertices = 0;    ///< engine universe at this step

  // RunSummary accumulators, exact.
  double total_millis = 0;      ///< advisory
  double max_millis = 0;        ///< advisory
  uint64_t total_candidates = 0;
  uint64_t total_followers = 0;
  double stability_sum = 0;
  uint64_t anchor_changes = 0;
  std::vector<VertexId> previous_anchors;

  bool has_tracker_state = false;
  std::string tracker_state;    ///< AvtTracker::SaveCheckpointState blob
};

/// Writes `data` to `<dir>/checkpoint-<step>.avtc` atomically. With
/// `fsync` the tmp file and directory entry are forced to stable
/// storage before the rename is considered done.
Status WriteCheckpoint(const std::string& dir, const CheckpointData& data,
                       bool fsync);

/// Reads and validates one checkpoint file. kCorruption for any
/// damaged, truncated, or undecodable content; never crashes.
StatusOr<CheckpointData> ReadCheckpoint(const std::string& path);

/// Checkpoint files in `dir`, sorted by ascending step.
struct CheckpointEntry {
  uint64_t step = 0;
  std::string path;
};
StatusOr<std::vector<CheckpointEntry>> ListCheckpoints(
    const std::string& dir);

/// Loads the newest checkpoint that validates, scanning newest-first.
/// kNotFound when the directory holds no checkpoint files at all; when
/// checkpoints exist but none validates, the newest one's error is
/// returned (typically kCorruption).
StatusOr<CheckpointData> LoadLatestValidCheckpoint(const std::string& dir);

}  // namespace avt

#endif  // AVT_DURABILITY_CHECKPOINT_H_
