#include "durability/quarantine.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include "durability/serde.h"
#include "util/crc32.h"

namespace avt {

namespace {

constexpr char kMagic[8] = {'A', 'V', 'T', 'Q', 'R', 'N', '1', '\n'};

// Bounds allocation when a corrupt length field asks for gigabytes.
constexpr uint32_t kMaxPayloadBytes = 1u << 30;

std::string EncodePayload(const QuarantineRecord& record) {
  std::string payload;
  payload.reserve(32 + 8 * record.delta.Size() + record.detail.size());
  serde::PutU64(&payload, record.seq);
  serde::PutU32(&payload, static_cast<uint32_t>(record.reason));
  serde::PutU64(&payload, record.source_pull);
  serde::PutU32(&payload,
                static_cast<uint32_t>(record.delta.insertions.size()));
  serde::PutU32(&payload,
                static_cast<uint32_t>(record.delta.deletions.size()));
  for (const Edge& e : record.delta.insertions) {
    serde::PutU32(&payload, e.u);
    serde::PutU32(&payload, e.v);
  }
  for (const Edge& e : record.delta.deletions) {
    serde::PutU32(&payload, e.u);
    serde::PutU32(&payload, e.v);
  }
  serde::PutU32(&payload, static_cast<uint32_t>(record.detail.size()));
  payload += record.detail;
  return payload;
}

bool DecodePayload(std::string_view payload, QuarantineRecord* record) {
  serde::Reader reader(payload);
  uint32_t reason = 0;
  uint32_t n_ins = 0;
  uint32_t n_del = 0;
  if (!reader.GetU64(&record->seq) || !reader.GetU32(&reason) ||
      !reader.GetU64(&record->source_pull) || !reader.GetU32(&n_ins) ||
      !reader.GetU32(&n_del)) {
    return false;
  }
  record->reason = static_cast<QuarantineReason>(reason);
  record->delta.insertions.clear();
  record->delta.deletions.clear();
  if (reader.Remaining() <
      8 * (static_cast<size_t>(n_ins) + static_cast<size_t>(n_del))) {
    return false;
  }
  record->delta.insertions.reserve(n_ins);
  record->delta.deletions.reserve(n_del);
  for (uint32_t i = 0; i < n_ins + n_del; ++i) {
    uint32_t u = 0;
    uint32_t v = 0;
    if (!reader.GetU32(&u) || !reader.GetU32(&v)) return false;
    Edge e;
    e.u = u;  // verbatim: forensics must show exactly what arrived
    e.v = v;
    (i < n_ins ? record->delta.insertions : record->delta.deletions)
        .push_back(e);
  }
  uint32_t detail_len = 0;
  if (!reader.GetU32(&detail_len)) return false;
  if (!reader.GetBytes(&record->detail, detail_len)) return false;
  return reader.Exhausted();
}

}  // namespace

const char* QuarantineReasonName(QuarantineReason reason) {
  switch (reason) {
    case QuarantineReason::kInvalidDelta: return "invalid-delta";
    case QuarantineReason::kUniverseExceeded: return "universe-exceeded";
    case QuarantineReason::kAuditDivergence: return "audit-divergence";
  }
  return "unknown";
}

StatusOr<std::unique_ptr<QuarantineLog>> QuarantineLog::Open(
    const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create quarantine dir " + dir + ": " +
                           ec.message());
  }
  const std::string path = dir + "/" + kFileName;

  uint64_t next_seq = 1;
  uint64_t valid_bytes = 0;
  if (std::filesystem::exists(path, ec)) {
    // Resume numbering after the existing valid prefix. ReadAll
    // tolerates a torn tail but rejects corruption — a quarantine log
    // that lies is worse than none.
    StatusOr<std::vector<QuarantineRecord>> existing = ReadAll(path);
    if (!existing.ok()) return existing.status();
    if (!existing.value().empty()) {
      next_seq = existing.value().back().seq + 1;
    }
    // Recompute the valid prefix length to truncate a torn tail.
    valid_bytes = sizeof(kMagic);
    for (const QuarantineRecord& record : existing.value()) {
      valid_bytes += 8 + EncodePayload(record).size();
    }
    std::filesystem::resize_file(path, valid_bytes, ec);
    if (ec) {
      return Status::IoError("cannot truncate quarantine tail at " + path +
                             ": " + ec.message());
    }
  }

  std::FILE* file = std::fopen(path.c_str(), valid_bytes > 0 ? "ab" : "wb");
  if (file == nullptr) {
    return Status::IoError("cannot open quarantine log at " + path + ": " +
                           std::strerror(errno));
  }
  if (valid_bytes == 0 &&
      std::fwrite(kMagic, 1, sizeof(kMagic), file) != sizeof(kMagic)) {
    std::fclose(file);
    return Status::IoError("cannot write quarantine header at " + path);
  }
  return std::unique_ptr<QuarantineLog>(new QuarantineLog(file, next_seq));
}

QuarantineLog::~QuarantineLog() {
  if (file_ != nullptr) std::fclose(file_);
}

Status QuarantineLog::Append(QuarantineRecord* record) {
  record->seq = next_seq_;
  const std::string payload = EncodePayload(*record);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = Crc32(payload.data(), payload.size());
  char header[8];
  std::memcpy(header, &len, 4);
  std::memcpy(header + 4, &crc, 4);
  if (std::fwrite(header, 1, 8, file_) != 8 ||
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size() ||
      std::fflush(file_) != 0) {
    return Status::IoError(std::string("quarantine append failed: ") +
                           std::strerror(errno));
  }
  ++next_seq_;
  ++appended_;
  return Status::Ok();
}

StatusOr<std::vector<QuarantineRecord>> QuarantineLog::ReadAll(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("no quarantine log at " + path);
  }
  std::string bytes;
  char buffer[1 << 16];
  size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    bytes.append(buffer, got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return Status::IoError("read failed for quarantine log " + path);
  }

  if (bytes.size() < sizeof(kMagic)) {
    if (std::memcmp(bytes.data(), kMagic, bytes.size()) != 0) {
      return Status::Corruption("bad quarantine magic in " + path);
    }
    return std::vector<QuarantineRecord>{};  // torn header: zero records
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad quarantine magic in " + path);
  }

  std::vector<QuarantineRecord> records;
  size_t pos = sizeof(kMagic);
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 8) break;  // torn frame header
    uint32_t len = 0;
    uint32_t crc = 0;
    std::memcpy(&len, bytes.data() + pos, 4);
    std::memcpy(&crc, bytes.data() + pos + 4, 4);
    if (len > kMaxPayloadBytes) {
      return Status::Corruption("absurd quarantine record length at offset " +
                                std::to_string(pos) + " in " + path);
    }
    if (bytes.size() - pos - 8 < len) break;  // torn payload
    const std::string_view payload(bytes.data() + pos + 8, len);
    if (Crc32(payload.data(), payload.size()) != crc) {
      return Status::Corruption(
          "quarantine record checksum mismatch at offset " +
          std::to_string(pos) + " in " + path);
    }
    QuarantineRecord record;
    if (!DecodePayload(payload, &record)) {
      return Status::Corruption("undecodable quarantine record at offset " +
                                std::to_string(pos) + " in " + path);
    }
    if (record.seq != records.size() + 1) {
      return Status::Corruption(
          "non-sequential quarantine record (seq " +
          std::to_string(record.seq) + " at position " +
          std::to_string(records.size() + 1) + ") in " + path);
    }
    records.push_back(std::move(record));
    pos += 8 + len;
  }
  return records;
}

}  // namespace avt
