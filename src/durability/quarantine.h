// Poison-delta dead-letter log.
//
// When quarantine is armed (EngineOptions::quarantine_dir), a source
// delta the engine refuses to apply — structural validation failure,
// universe-cap violation, or isolation by audit bisection — is not
// dropped silently and does not kill the stream: it is appended here,
// reason-coded, and the engine continues in HealthState::kDegraded.
// The log is the operator's forensic record: every quarantined delta
// carries its WAL-style framing (CRC'd, torn-tail tolerant) plus the
// source pull position it came from, so "which upstream records were
// bad" is answerable after the fact (`avt_cli quarantine <dir>`).
//
// File format (quarantine.avtq), mirroring durability/wal.h:
//
//   [8-byte magic "AVTQRN1\n"]
//   repeated records: [u32 len][u32 crc32][payload]
//     payload: u64 seq, u32 reason, u64 source_pull,
//              u32 n_ins, u32 n_del, (u32 u, u32 v) pairs,
//              u32 detail_len, detail bytes
//
// A torn tail (crash mid-append) is tolerated on read and truncated on
// reopen; a CRC mismatch inside the valid prefix is kCorruption.
// Appends are at-least-once across crash recovery: a delta quarantined
// in the uncommitted window before a crash may be re-quarantined by
// the resumed run — duplicates are possible, silent loss is not.

#ifndef AVT_DURABILITY_QUARANTINE_H_
#define AVT_DURABILITY_QUARANTINE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "graph/delta.h"
#include "util/status.h"

namespace avt {

/// Why a delta was quarantined instead of applied.
enum class QuarantineReason : uint32_t {
  kInvalidDelta = 1,     ///< structurally malformed (self-loop endpoints)
  kUniverseExceeded = 2, ///< endpoint beyond max_universe / frozen universe
  kAuditDivergence = 3,  ///< applying it trips the integrity audit
                         ///< (isolated by deterministic bisection)
};
const char* QuarantineReasonName(QuarantineReason reason);

/// One dead-lettered delta.
struct QuarantineRecord {
  uint64_t seq = 0;  ///< 1-based, assigned by Append
  QuarantineReason reason = QuarantineReason::kInvalidDelta;
  /// 1-based pull index in the source stream the delta came from (the
  /// engine counts every pull, quarantined or not, so this is the
  /// upstream record number).
  uint64_t source_pull = 0;
  EdgeDelta delta;
  std::string detail;
};

/// Append-only framed dead-letter log.
class QuarantineLog {
 public:
  static constexpr const char* kFileName = "quarantine.avtq";

  /// Opens `<dir>/quarantine.avtq` for appending, creating the
  /// directory and file as needed. An existing log is scanned to
  /// resume the sequence numbering after its valid prefix (a torn
  /// tail is truncated; corrupt records inside the prefix are
  /// kCorruption — quarantine forensics must not be silently lossy).
  static StatusOr<std::unique_ptr<QuarantineLog>> Open(
      const std::string& dir);

  ~QuarantineLog();
  QuarantineLog(const QuarantineLog&) = delete;
  QuarantineLog& operator=(const QuarantineLog&) = delete;

  /// Appends one record, stamping record->seq, and flushes: a
  /// quarantined delta must be on disk before the engine moves on
  /// (the whole point is surviving the run that produced it).
  Status Append(QuarantineRecord* record);

  /// Records appended through this handle (not lifetime file total).
  uint64_t appended() const { return appended_; }

  /// Reads every valid record from a quarantine file. A torn tail is
  /// tolerated; a CRC/decode failure inside the prefix is kCorruption.
  static StatusOr<std::vector<QuarantineRecord>> ReadAll(
      const std::string& path);

 private:
  QuarantineLog(std::FILE* file, uint64_t next_seq)
      : file_(file), next_seq_(next_seq) {}

  std::FILE* file_;
  uint64_t next_seq_;
  uint64_t appended_ = 0;
};

}  // namespace avt

#endif  // AVT_DURABILITY_QUARANTINE_H_
