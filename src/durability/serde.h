// Byte-level serialization primitives shared by the durability file
// formats (durability/wal.h, durability/checkpoint.h).
//
// Fixed-width little-endian fields appended to a std::string, and a
// bounds-checked cursor for reading them back. The reader never
// aborts: every Get returns false on underrun, so a truncated or
// corrupted buffer surfaces as a recoverable decode failure — the
// whole point of the durability layer is that damaged bytes become
// Status, not crashes.

#ifndef AVT_DURABILITY_SERDE_H_
#define AVT_DURABILITY_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace avt {
namespace serde {

inline void PutU32(std::string* out, uint32_t value) {
  char bytes[4];
  std::memcpy(bytes, &value, 4);
  out->append(bytes, 4);
}

inline void PutU64(std::string* out, uint64_t value) {
  char bytes[8];
  std::memcpy(bytes, &value, 8);
  out->append(bytes, 8);
}

inline void PutDouble(std::string* out, double value) {
  char bytes[8];
  std::memcpy(bytes, &value, 8);
  out->append(bytes, 8);
}

/// Bounds-checked forward cursor over an immutable byte buffer.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool GetU32(uint32_t* value) { return GetRaw(value, 4); }
  bool GetU64(uint64_t* value) { return GetRaw(value, 8); }
  bool GetDouble(double* value) { return GetRaw(value, 8); }

  /// Reads `size` raw bytes into `*out` (replacing its contents).
  bool GetBytes(std::string* out, size_t size) {
    if (size > Remaining()) return false;
    out->assign(data_.substr(pos_, size));
    pos_ += size;
    return true;
  }

  size_t Remaining() const { return data_.size() - pos_; }
  bool Exhausted() const { return pos_ == data_.size(); }

 private:
  bool GetRaw(void* out, size_t size) {
    if (size > Remaining()) return false;
    std::memcpy(out, data_.data() + pos_, size);
    pos_ += size;
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
};

/// FNV-1a 64-bit hash, used for config fingerprints.
inline uint64_t Fnv1a64(std::string_view data, uint64_t seed = 0xcbf29ce484222325ULL) {
  uint64_t hash = seed;
  for (char c : data) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace serde
}  // namespace avt

#endif  // AVT_DURABILITY_SERDE_H_
