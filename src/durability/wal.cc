#include "durability/wal.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "durability/serde.h"
#include "util/crc32.h"

namespace avt {

namespace {

constexpr char kMagic[8] = {'A', 'V', 'T', 'W', 'A', 'L', '1', '\n'};

// A single frame cannot plausibly exceed this: it bounds allocation
// when a corrupt length field asks for gigabytes.
constexpr uint32_t kMaxPayloadBytes = 1u << 30;

std::string EncodePayload(const WalRecord& record) {
  std::string payload;
  payload.reserve(24 + 8 * (record.delta.insertions.size() +
                            record.delta.deletions.size()));
  serde::PutU64(&payload, record.seq);
  serde::PutU64(&payload, record.source_pulls);
  serde::PutU32(&payload,
                static_cast<uint32_t>(record.delta.insertions.size()));
  serde::PutU32(&payload,
                static_cast<uint32_t>(record.delta.deletions.size()));
  for (const Edge& e : record.delta.insertions) {
    serde::PutU32(&payload, e.u);
    serde::PutU32(&payload, e.v);
  }
  for (const Edge& e : record.delta.deletions) {
    serde::PutU32(&payload, e.u);
    serde::PutU32(&payload, e.v);
  }
  return payload;
}

bool DecodePayload(std::string_view payload, WalRecord* record) {
  serde::Reader reader(payload);
  uint32_t n_ins = 0;
  uint32_t n_del = 0;
  if (!reader.GetU64(&record->seq) || !reader.GetU64(&record->source_pulls) ||
      !reader.GetU32(&n_ins) || !reader.GetU32(&n_del)) {
    return false;
  }
  if (reader.Remaining() !=
      8 * (static_cast<size_t>(n_ins) + static_cast<size_t>(n_del))) {
    return false;
  }
  record->delta.insertions.clear();
  record->delta.deletions.clear();
  record->delta.insertions.reserve(n_ins);
  record->delta.deletions.reserve(n_del);
  for (uint32_t i = 0; i < n_ins + n_del; ++i) {
    uint32_t u = 0;
    uint32_t v = 0;
    if (!reader.GetU32(&u) || !reader.GetU32(&v)) return false;
    Edge e;
    e.u = u;  // verbatim, NOT normalized: within-batch op order and
    e.v = v;  // endpoint order must replay exactly as committed
    (i < n_ins ? record->delta.insertions : record->delta.deletions)
        .push_back(e);
  }
  return reader.Exhausted();
}

Status SyncFile(std::FILE* file) {
  if (std::fflush(file) != 0) {
    return Status::IoError(std::string("wal flush failed: ") +
                           std::strerror(errno));
  }
  if (::fsync(::fileno(file)) != 0) {
    return Status::IoError(std::string("wal fsync failed: ") +
                           std::strerror(errno));
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::unique_ptr<DeltaWal>> DeltaWal::Create(const std::string& path,
                                                     FsyncPolicy policy) {
  // "x": exclusive — refuse to clobber an existing log.
  std::FILE* file = std::fopen(path.c_str(), "wbx");
  if (file == nullptr) {
    if (errno == EEXIST) {
      return Status::InvalidArgument(
          "WAL already exists at " + path +
          "; recover from it or choose a fresh durability dir");
    }
    return Status::IoError("cannot create WAL at " + path + ": " +
                           std::strerror(errno));
  }
  if (std::fwrite(kMagic, 1, sizeof(kMagic), file) != sizeof(kMagic)) {
    std::fclose(file);
    return Status::IoError("cannot write WAL header at " + path);
  }
  auto wal = std::unique_ptr<DeltaWal>(new DeltaWal(file, policy));
  if (policy == FsyncPolicy::kEveryRecord) {
    AVT_RETURN_IF_ERROR(SyncFile(file));
  }
  return wal;
}

StatusOr<std::unique_ptr<DeltaWal>> DeltaWal::OpenForAppend(
    const std::string& path, FsyncPolicy policy, uint64_t valid_bytes) {
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) {
    return Status::IoError("cannot reopen WAL at " + path + ": " +
                           std::strerror(errno));
  }
  // Drop the torn tail so the next append starts at a record boundary.
  // A tail torn inside the magic itself (valid_bytes == 0) truncates to
  // empty, and the header is rewritten below.
  if (::ftruncate(::fileno(file), static_cast<off_t>(valid_bytes)) != 0) {
    std::fclose(file);
    return Status::IoError("cannot truncate WAL tail at " + path + ": " +
                           std::strerror(errno));
  }
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return Status::IoError("cannot seek WAL at " + path);
  }
  if (valid_bytes < sizeof(kMagic)) {
    if (std::fwrite(kMagic, 1, sizeof(kMagic), file) != sizeof(kMagic)) {
      std::fclose(file);
      return Status::IoError("cannot rewrite WAL header at " + path);
    }
  }
  return std::unique_ptr<DeltaWal>(new DeltaWal(file, policy));
}

DeltaWal::~DeltaWal() {
  if (file_ != nullptr) std::fclose(file_);
}

Status DeltaWal::Append(const WalRecord& record) {
  const std::string payload = EncodePayload(record);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = Crc32(payload.data(), payload.size());
  char header[8];
  std::memcpy(header, &len, 4);
  std::memcpy(header + 4, &crc, 4);
  if (std::fwrite(header, 1, 8, file_) != 8 ||
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    return Status::IoError(std::string("wal append failed: ") +
                           std::strerror(errno));
  }
  if (policy_ == FsyncPolicy::kEveryRecord) {
    return SyncFile(file_);
  }
  return Status::Ok();
}

Status DeltaWal::Flush() {
  if (std::fflush(file_) != 0) {
    return Status::IoError(std::string("wal flush failed: ") +
                           std::strerror(errno));
  }
  return Status::Ok();
}

Status DeltaWal::Sync() { return SyncFile(file_); }

StatusOr<DeltaWal::ReadResult> DeltaWal::ReadAll(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("no WAL at " + path);
  }
  // Read the whole file; WALs the engine writes are bounded by the
  // stream they log, and recovery reads them once.
  std::string bytes;
  char buffer[1 << 16];
  size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    bytes.append(buffer, got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return Status::IoError("read failed for WAL " + path);
  }

  if (bytes.size() < sizeof(kMagic)) {
    // Even the magic is torn; an empty-but-valid log has 8 bytes. A
    // crash can tear the very first write, so this is a torn tail with
    // zero records, not corruption — unless the partial bytes already
    // disagree with the magic.
    if (std::memcmp(bytes.data(), kMagic, bytes.size()) != 0) {
      return Status::Corruption("bad WAL magic in " + path);
    }
    ReadResult result;
    result.valid_bytes = 0;
    result.torn_tail = !bytes.empty();
    return result;
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad WAL magic in " + path);
  }

  ReadResult result;
  size_t pos = sizeof(kMagic);
  result.valid_bytes = pos;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 8) {
      result.torn_tail = true;  // partial frame header
      break;
    }
    uint32_t len = 0;
    uint32_t crc = 0;
    std::memcpy(&len, bytes.data() + pos, 4);
    std::memcpy(&crc, bytes.data() + pos + 4, 4);
    if (len > kMaxPayloadBytes) {
      return Status::Corruption("absurd WAL record length at offset " +
                                std::to_string(pos) + " in " + path);
    }
    if (bytes.size() - pos - 8 < len) {
      result.torn_tail = true;  // partial payload: crash mid-append
      break;
    }
    const std::string_view payload(bytes.data() + pos + 8, len);
    if (Crc32(payload.data(), payload.size()) != crc) {
      return Status::Corruption("WAL record checksum mismatch at offset " +
                                std::to_string(pos) + " in " + path);
    }
    WalRecord record;
    if (!DecodePayload(payload, &record)) {
      return Status::Corruption("undecodable WAL record at offset " +
                                std::to_string(pos) + " in " + path);
    }
    if (record.seq != result.records.size() + 1) {
      return Status::Corruption(
          "non-sequential WAL record (seq " + std::to_string(record.seq) +
          " at position " + std::to_string(result.records.size() + 1) +
          ") in " + path);
    }
    result.records.push_back(std::move(record));
    pos += 8 + len;
    result.valid_bytes = pos;
  }
  return result;
}

}  // namespace avt
