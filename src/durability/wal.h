// DeltaWal: append-only framed log of committed delta transactions.
//
// The durable source of truth for a streamed run is the delta stream
// itself; the WAL records which PREFIX of that stream the engine has
// committed, transaction by transaction, so recovery can replay the
// exact transactions an interrupted run processed (same batching
// boundaries, same within-batch order) and then fast-forward the
// source to the first unprocessed delta.
//
// File format (all fields little-endian):
//
//   [8-byte magic "AVTWAL1\n"]
//   record*
//
//   record  := [u32 payload_len][u32 crc32(payload)][payload]
//   payload := u64 seq            -- 1-based, strictly sequential
//              u64 source_pulls   -- source deltas merged into this txn
//              u32 n_insertions, u32 n_deletions
//              (u32 u, u32 v) * n_insertions
//              (u32 u, u32 v) * n_deletions
//
// Failure discipline (the RocksDB convention): an INCOMPLETE final
// record is a torn tail — the normal signature of a crash mid-append —
// and reading stops cleanly at the last intact record (the source
// re-supplies the lost suffix, so nothing is missing). Anything else —
// a CRC mismatch, a non-sequential seq, a bad magic — means the bytes
// on disk are not what was written, and reading fails with
// kCorruption. Appending after recovery first truncates the torn
// tail so the log never contains garbage between records.
//
// Fsync policy: kNever trusts the OS page cache (data survives process
// death, not power loss); kEveryRecord fsyncs after each append.

#ifndef AVT_DURABILITY_WAL_H_
#define AVT_DURABILITY_WAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "graph/delta.h"
#include "util/status.h"

namespace avt {

/// When the WAL flushes to stable storage.
enum class FsyncPolicy {
  kNever,        ///< OS page cache only (survives SIGKILL, not power loss)
  kEveryRecord,  ///< fsync after every appended record
};

/// One committed delta transaction.
struct WalRecord {
  uint64_t seq = 0;           ///< 1-based, strictly sequential
  uint64_t source_pulls = 0;  ///< source deltas merged into this txn
  EdgeDelta delta;            ///< the committed (possibly merged) delta
};

/// Append handle + reader for the delta log.
class DeltaWal {
 public:
  static constexpr const char* kFileName = "wal.log";

  /// Creates a fresh WAL at `path`; fails with kInvalidArgument if the
  /// file already exists (a fresh run must not clobber a previous log).
  static StatusOr<std::unique_ptr<DeltaWal>> Create(const std::string& path,
                                                    FsyncPolicy policy);

  /// Reopens an existing WAL for appending after recovery, truncating
  /// everything past `valid_bytes` (the torn tail ReadAll reported).
  static StatusOr<std::unique_ptr<DeltaWal>> OpenForAppend(
      const std::string& path, FsyncPolicy policy, uint64_t valid_bytes);

  ~DeltaWal();
  DeltaWal(const DeltaWal&) = delete;
  DeltaWal& operator=(const DeltaWal&) = delete;

  Status Append(const WalRecord& record);

  /// Pushes buffered records to the OS (survives SIGKILL, not power
  /// loss). Called before a checkpoint is written so the checkpoint
  /// never claims records the file does not hold.
  Status Flush();

  /// Forces buffered records to stable storage regardless of policy.
  Status Sync();

  struct ReadResult {
    std::vector<WalRecord> records;
    /// Byte length of the intact prefix (magic + whole records).
    uint64_t valid_bytes = 0;
    /// True when bytes followed the intact prefix (a torn final
    /// record); recovery truncates them before appending.
    bool torn_tail = false;
  };

  /// Reads every intact record. kNotFound when the file is missing,
  /// kCorruption on damaged bytes (see the format comment above).
  static StatusOr<ReadResult> ReadAll(const std::string& path);

 private:
  DeltaWal(std::FILE* file, FsyncPolicy policy)
      : file_(file), policy_(policy) {}

  std::FILE* file_;
  FsyncPolicy policy_;
};

}  // namespace avt

#endif  // AVT_DURABILITY_WAL_H_
