#include "gen/churn.h"

#include <algorithm>

namespace avt {

EdgeDelta NextChurnDelta(Graph& current, const ChurnOptions& options,
                         Rng& rng) {
  const VertexId n = current.NumVertices();
  EdgeDelta delta;
  uint32_t removals = static_cast<uint32_t>(
      rng.UniformInt(options.min_churn, options.max_churn));
  uint32_t insertions =
      options.independent_draws
          ? static_cast<uint32_t>(
                rng.UniformInt(options.min_churn, options.max_churn))
          : removals;

  // Deletions: uniform sample of current edges.
  std::vector<Edge> edges = current.CollectEdges();
  removals = std::min<uint32_t>(removals,
                                static_cast<uint32_t>(edges.size()));
  if (removals > 0) {
    std::vector<uint64_t> picks =
        rng.SampleDistinct(edges.size(), removals);
    for (uint64_t index : picks) {
      const Edge& e = edges[index];
      delta.deletions.push_back(e);
      current.RemoveEdge(e.u, e.v);
    }
  }

  // Insertions: uniform absent pairs (rejection sampling). Pairs deleted
  // in this same step are excluded so E+ and E- stay disjoint — the
  // order-insensitive form IncAVT assumes.
  auto just_deleted = [&delta](VertexId u, VertexId v) {
    Edge probe(u, v);
    for (const Edge& e : delta.deletions) {
      if (e == probe) return true;
    }
    return false;
  };
  uint32_t added = 0;
  uint64_t attempts = 0;
  const uint64_t max_attempts = static_cast<uint64_t>(insertions) * 100 +
                                1000;
  while (added < insertions && attempts < max_attempts) {
    ++attempts;
    VertexId u = static_cast<VertexId>(rng.Uniform(n));
    VertexId v = static_cast<VertexId>(rng.Uniform(n));
    if (u == v || just_deleted(u, v)) continue;
    if (current.AddEdge(u, v)) {
      delta.insertions.push_back(Edge(u, v));
      ++added;
    }
  }
  return delta;
}

SnapshotSequence MakeChurnSnapshots(const Graph& initial,
                                    const ChurnOptions& options, Rng& rng) {
  SnapshotSequence sequence(initial);
  Graph current = initial;
  for (size_t step = 1; step < options.num_snapshots; ++step) {
    sequence.PushDelta(NextChurnDelta(current, options, rng));
  }
  return sequence;
}

}  // namespace avt
