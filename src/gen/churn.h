// Churn-snapshot workload: the paper's synthetic evolution protocol.
//
// Section 6.1: for the non-temporal datasets the authors generate 30
// snapshots by, at each step, randomly removing 100-250 edges and then
// randomly adding 100-250 new edges. MakeChurnSnapshots reproduces this:
// deletions sample uniformly from current edges, insertions sample
// uniformly from absent pairs, and each transition is recorded as an
// EdgeDelta so IncAVT sees exactly the paper's E+/E- stream.

#ifndef AVT_GEN_CHURN_H_
#define AVT_GEN_CHURN_H_

#include <cstdint>

#include "graph/snapshots.h"
#include "util/random.h"

namespace avt {

/// Parameters of the churn protocol.
struct ChurnOptions {
  size_t num_snapshots = 30;   // T
  uint32_t min_churn = 100;    // per-step edge removals and insertions
  uint32_t max_churn = 250;
  /// When true (paper protocol) the number of removals and insertions are
  /// drawn independently; when false both equal one draw (edge count
  /// stays constant).
  bool independent_draws = true;
};

/// One churn step against `current`: samples the removals and
/// insertions, applies them to `current` in place, and returns the
/// transition. MakeChurnSnapshots is a loop over this, and ChurnSource
/// (gen/generator_source.h) streams it delta-by-delta — same code, same
/// Rng consumption, so the streamed and materialized protocols are
/// bit-identical for equal seeds.
EdgeDelta NextChurnDelta(Graph& current, const ChurnOptions& options,
                         Rng& rng);

/// Builds a T-snapshot sequence by applying random churn to `initial`.
SnapshotSequence MakeChurnSnapshots(const Graph& initial,
                                    const ChurnOptions& options, Rng& rng);

}  // namespace avt

#endif  // AVT_GEN_CHURN_H_
