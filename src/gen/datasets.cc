#include "gen/datasets.h"

#include <algorithm>

#include "gen/churn.h"
#include "gen/models.h"
#include "gen/temporal.h"
#include "util/status.h"

namespace avt {

const std::vector<DatasetInfo>& AllDatasets() {
  static const std::vector<DatasetInfo>* datasets =
      new std::vector<DatasetInfo>{
          {"email-Enron", DatasetKind::kChurn, "Communication", 36'692,
           183'831, 10.02, 0, {5, 10, 15, 20}, 10},
          {"Gnutella", DatasetKind::kChurn, "P2P Network", 62'586, 147'878,
           4.73, 0, {2, 3, 4}, 3},
          {"Deezer", DatasetKind::kChurn, "Social Network", 41'773, 125'826,
           6.02, 0, {2, 3, 4, 5}, 3},
          {"eu-core", DatasetKind::kTemporal, "Email", 986, 332'334, 25.28,
           803, {2, 3, 4, 5}, 3},
          {"mathoverflow", DatasetKind::kTemporal, "Question&Answer",
           13'840, 195'330, 5.86, 2'350, {2, 3, 4, 5}, 3},
          {"CollegeMsg", DatasetKind::kTemporal, "Social Network", 1'899,
           59'835, 10.69, 193, {5, 10, 15, 20}, 10},
      };
  return *datasets;
}

const DatasetInfo& DatasetByName(const std::string& name) {
  for (const DatasetInfo& info : AllDatasets()) {
    if (info.name == name) return info;
  }
  AVT_CHECK_MSG(false, ("unknown dataset: " + name).c_str());
  __builtin_unreachable();
}

namespace {

VertexId ScaledNodes(const DatasetInfo& info, double scale) {
  double n = static_cast<double>(info.paper_nodes) * scale;
  return static_cast<VertexId>(std::max(64.0, n));
}

uint64_t ScaledEvents(const DatasetInfo& info, double scale) {
  double m = static_cast<double>(info.paper_edges) * scale;
  return static_cast<uint64_t>(std::max(512.0, m));
}

TemporalEventLog MakeEventLog(const DatasetInfo& info, double scale,
                              uint64_t seed) {
  Rng rng(seed ^ 0x7e3a9d1fULL);
  TemporalGenOptions options;
  options.num_vertices = ScaledNodes(info, scale);
  options.num_events = ScaledEvents(info, scale);
  options.num_days = info.paper_days;

  // Recurrence rates are calibrated so the union of distinct pairs lands
  // near the paper's static edge counts (e.g. eu-core: 332k events but
  // only ~12.5k distinct edges -> ~96% of events repeat a known pair).
  if (info.name == "eu-core") {
    // Dense intra-institution email: strong departments, heavy recurrence.
    options.recurrence = 0.96;
    return GenCommunityEmailEvents(options, /*communities=*/28,
                                   /*p_intra=*/0.85, rng);
  }
  if (info.name == "mathoverflow") {
    options.recurrence = 0.78;
    return GenPowerLawActivityEvents(options, /*alpha=*/2.1, rng);
  }
  AVT_CHECK_MSG(info.name == "CollegeMsg", "unknown temporal dataset");
  options.recurrence = 0.82;
  return GenBurstyMessageEvents(options, /*burst_fraction=*/0.1,
                                /*burst_multiplier=*/6.0, rng);
}

uint32_t WindowDaysFor(const DatasetInfo& info) {
  // The paper states W = 365 days for mathoverflow; the other logs use
  // windows tight enough that per-window graphs keep a low-core
  // periphery (eu-core traffic is so dense that wide windows would put
  // every user in the 3-core).
  if (info.name == "mathoverflow") return 365;
  if (info.name == "eu-core") return 45;
  return std::max<uint32_t>(info.paper_days / 6, 30);
}

}  // namespace

Graph MakeDatasetGraph(const DatasetInfo& info, double scale,
                       uint64_t seed) {
  Rng rng(seed ^ 0x51ed2706ULL);
  const VertexId n = ScaledNodes(info, scale);

  if (info.kind == DatasetKind::kChurn) {
    if (info.name == "email-Enron") {
      // Heavy-tailed communication graph.
      return ChungLuPowerLaw(n, info.paper_avg_degree, /*alpha=*/2.0,
                             /*max_degree=*/std::max<uint32_t>(n / 25, 50),
                             rng);
    }
    if (info.name == "Gnutella") {
      // P2P overlays have near-flat degree distributions.
      uint64_t m = static_cast<uint64_t>(info.paper_avg_degree *
                                         static_cast<double>(n) / 2.0);
      return ErdosRenyi(n, m, rng);
    }
    AVT_CHECK_MSG(info.name == "Deezer", "unknown churn dataset");
    return ChungLuPowerLaw(n, info.paper_avg_degree, /*alpha=*/2.3,
                           /*max_degree=*/std::max<uint32_t>(n / 40, 40),
                           rng);
  }

  // Temporal: the "graph" is the union of all distinct interacting pairs
  // (what Table 2's node/edge/davg columns describe for these datasets).
  TemporalEventLog log = MakeEventLog(info, scale, seed);
  Graph g(log.num_vertices);
  for (const TemporalEdge& e : log.events) g.AddEdge(e.u, e.v);
  return g;
}

SnapshotSequence MakeDatasetSnapshots(const DatasetInfo& info, double scale,
                                      size_t T, uint64_t seed) {
  AVT_CHECK(T >= 1);
  if (info.kind == DatasetKind::kChurn) {
    Graph initial = MakeDatasetGraph(info, scale, seed);
    Rng rng(seed ^ 0x2c6b51a4ULL);
    ChurnOptions options;
    options.num_snapshots = T;
    // The paper churns 100-250 edges per step at full size; scale the
    // churn with the replica so relative churn matches.
    double churn_scale =
        static_cast<double>(initial.NumEdges()) /
        std::max<double>(1.0, static_cast<double>(info.paper_edges));
    options.min_churn = std::max<uint32_t>(
        10, static_cast<uint32_t>(100 * churn_scale));
    options.max_churn = std::max<uint32_t>(
        options.min_churn + 5, static_cast<uint32_t>(250 * churn_scale));
    return MakeChurnSnapshots(initial, options, rng);
  }
  TemporalEventLog log = MakeEventLog(info, scale, seed);
  return WindowSnapshots(log, T, WindowDaysFor(info));
}

}  // namespace avt
