// Named replicas of the paper's six SNAP datasets (Table 2).
//
// The evaluation environment has no network access, so the original edge
// lists cannot be downloaded; each dataset is replaced by a synthetic
// replica that matches the statistics the algorithms are sensitive to
// (vertex count, average degree, degree-distribution family, community
// structure, and — for temporal datasets — event count, day span and the
// paper's window rule). DESIGN.md Section 3 documents each substitution.
//
// `scale` shrinks vertex/event counts proportionally (default benchmark
// runs use a fraction of the paper's sizes so the full harness completes
// in minutes on a laptop; pass --scale=1.0 to a bench binary for
// full-size replicas).

#ifndef AVT_GEN_DATASETS_H_
#define AVT_GEN_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/snapshots.h"
#include "util/random.h"

namespace avt {

/// How a dataset evolves into snapshots.
enum class DatasetKind {
  kChurn,     // static graph + random churn protocol (paper Sec 6.1)
  kTemporal,  // event log + sliding-window snapshots
};

/// Registry entry: paper-reported statistics plus replica parameters.
struct DatasetInfo {
  std::string name;
  DatasetKind kind;
  std::string type_label;     // Table 2 "Type" column
  uint32_t paper_nodes;
  uint64_t paper_edges;       // (temporal) edges in Table 2
  double paper_avg_degree;
  uint32_t paper_days;        // 0 for non-temporal datasets
  /// Default k sweep for this dataset in the figures (the paper uses
  /// {2,3,4,5} for sparse graphs and {5,10,15,20} for dense ones).
  std::vector<uint32_t> k_values;
  uint32_t default_k;
};

/// All six datasets in Table 2 order.
const std::vector<DatasetInfo>& AllDatasets();

/// Looks up a dataset by name; aborts on unknown names.
const DatasetInfo& DatasetByName(const std::string& name);

/// Materializes the replica's base graph (churn datasets) or the first
/// window (temporal datasets), scaled.
Graph MakeDatasetGraph(const DatasetInfo& info, double scale, uint64_t seed);

/// Materializes the full T-snapshot evolving replica.
SnapshotSequence MakeDatasetSnapshots(const DatasetInfo& info, double scale,
                                      size_t T, uint64_t seed);

}  // namespace avt

#endif  // AVT_GEN_DATASETS_H_
