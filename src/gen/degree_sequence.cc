#include "gen/degree_sequence.h"

#include <algorithm>
#include <numeric>

#include "util/status.h"

namespace avt {

bool IsGraphical(std::vector<uint32_t> degrees) {
  if (degrees.empty()) return true;
  std::sort(degrees.rbegin(), degrees.rend());
  const size_t n = degrees.size();
  if (degrees[0] >= n) return false;

  uint64_t total = std::accumulate(degrees.begin(), degrees.end(),
                                   uint64_t{0});
  if (total % 2 != 0) return false;

  // Erdos-Gallai with prefix sums.
  std::vector<uint64_t> prefix(n + 1, 0);
  for (size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + degrees[i];
  for (size_t kk = 1; kk <= n; ++kk) {
    uint64_t lhs = prefix[kk];
    uint64_t rhs = static_cast<uint64_t>(kk) * (kk - 1);
    for (size_t i = kk; i < n; ++i) {
      rhs += std::min<uint64_t>(degrees[i], kk);
    }
    if (lhs > rhs) return false;
  }
  return true;
}

Graph RealizeDegreeSequence(const std::vector<uint32_t>& degrees) {
  const VertexId n = static_cast<VertexId>(degrees.size());
  Graph g(n);
  // Havel-Hakimi: repeatedly connect the highest-residual vertex to the
  // next-highest ones.
  std::vector<std::pair<uint32_t, VertexId>> residual(n);
  for (VertexId v = 0; v < n; ++v) residual[v] = {degrees[v], v};

  while (true) {
    std::sort(residual.rbegin(), residual.rend());
    if (residual.empty() || residual[0].first == 0) break;
    uint32_t d = residual[0].first;
    VertexId v = residual[0].second;
    AVT_CHECK_MSG(d < residual.size(), "sequence not graphical");
    for (uint32_t i = 1; i <= d; ++i) {
      AVT_CHECK_MSG(residual[i].first > 0, "sequence not graphical");
      AVT_CHECK(g.AddEdge(v, residual[i].second));
      --residual[i].first;
    }
    residual[0].first = 0;
  }
  return g;
}

uint64_t RewireDoubleEdgeSwaps(Graph& graph, uint64_t swaps, Rng& rng) {
  std::vector<Edge> edges = graph.CollectEdges();
  if (edges.size() < 2) return 0;
  uint64_t successes = 0;
  for (uint64_t attempt = 0; attempt < swaps; ++attempt) {
    size_t i = static_cast<size_t>(rng.Uniform(edges.size()));
    size_t j = static_cast<size_t>(rng.Uniform(edges.size()));
    if (i == j) continue;
    Edge a = edges[i];
    Edge b = edges[j];
    // Orientation: (a.u—a.v), (b.u—b.v) -> (a.u—b.v), (b.u—a.v);
    // randomly flip b to explore both pairings.
    VertexId bu = b.u, bv = b.v;
    if (rng.Bernoulli(0.5)) std::swap(bu, bv);
    if (a.u == bu || a.u == bv || a.v == bu || a.v == bv) continue;
    if (graph.HasEdge(a.u, bv) || graph.HasEdge(bu, a.v)) continue;
    AVT_CHECK(graph.RemoveEdge(a.u, a.v));
    AVT_CHECK(graph.RemoveEdge(b.u, b.v));
    AVT_CHECK(graph.AddEdge(a.u, bv));
    AVT_CHECK(graph.AddEdge(bu, a.v));
    edges[i] = Edge(a.u, bv);
    edges[j] = Edge(bu, a.v);
    ++successes;
  }
  return successes;
}

std::vector<uint32_t> SamplePowerLawDegrees(VertexId n,
                                            double average_degree,
                                            double alpha,
                                            uint32_t max_degree, Rng& rng) {
  std::vector<uint32_t> degrees(n);
  double sum = 0;
  for (VertexId v = 0; v < n; ++v) {
    degrees[v] = static_cast<uint32_t>(rng.PowerLaw(alpha, max_degree));
    sum += degrees[v];
  }
  // Rescale multiplicatively toward the requested mean (rounded).
  double factor = average_degree * static_cast<double>(n) / sum;
  for (uint32_t& d : degrees) {
    d = std::max<uint32_t>(
        1, static_cast<uint32_t>(d * factor + rng.NextDouble()));
    d = std::min(d, static_cast<uint32_t>(n > 1 ? n - 1 : 0));
  }
  // Make the total even, then trim the largest degrees until graphical.
  uint64_t total = std::accumulate(degrees.begin(), degrees.end(),
                                   uint64_t{0});
  if (total % 2 != 0) {
    auto it = std::max_element(degrees.begin(), degrees.end());
    if (*it > 1) {
      --*it;
    } else {
      ++*it;
    }
  }
  while (!IsGraphical(degrees)) {
    auto it = std::max_element(degrees.begin(), degrees.end());
    AVT_CHECK_MSG(*it > 1, "cannot repair degree sequence");
    *it -= 2;  // keep parity
    if (*it == 0) *it = 2;
  }
  return degrees;
}

Graph ConfigurationModel(VertexId n, double average_degree, double alpha,
                         uint32_t max_degree, Rng& rng) {
  std::vector<uint32_t> degrees =
      SamplePowerLawDegrees(n, average_degree, alpha, max_degree, rng);
  Graph g = RealizeDegreeSequence(degrees);
  // 4m swap attempts give a well-mixed sample in practice.
  RewireDoubleEdgeSwaps(g, g.NumEdges() * 4, rng);
  return g;
}

}  // namespace avt
