// Exact-degree-sequence graph construction (configuration model).
//
// Chung-Lu matches degrees only in expectation; some fidelity experiments
// want the replica's degree sequence to match a target exactly. This
// module provides:
//   * graphicality test (Erdos-Gallai);
//   * deterministic realization (Havel-Hakimi);
//   * degree-preserving randomization (double-edge swaps), turning the
//     deterministic realization into an approximately uniform sample from
//     the graphs with that degree sequence.

#ifndef AVT_GEN_DEGREE_SEQUENCE_H_
#define AVT_GEN_DEGREE_SEQUENCE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/random.h"

namespace avt {

/// Erdos-Gallai: is the sequence realizable as a simple graph?
bool IsGraphical(std::vector<uint32_t> degrees);

/// Havel-Hakimi construction. Aborts (AVT_CHECK) if not graphical; call
/// IsGraphical first for untrusted input.
Graph RealizeDegreeSequence(const std::vector<uint32_t>& degrees);

/// Degree-preserving randomization: attempts `swaps` double-edge swaps
/// ((a,b),(c,d) -> (a,d),(c,b)), skipping those that would create
/// self-loops or duplicates. Returns the number of successful swaps.
uint64_t RewireDoubleEdgeSwaps(Graph& graph, uint64_t swaps, Rng& rng);

/// Convenience: graphical power-law-ish sequence with the given average
/// degree (largest-degree entries trimmed until graphical).
std::vector<uint32_t> SamplePowerLawDegrees(VertexId n,
                                            double average_degree,
                                            double alpha,
                                            uint32_t max_degree, Rng& rng);

/// Full pipeline: sample sequence, realize, randomize.
Graph ConfigurationModel(VertexId n, double average_degree, double alpha,
                         uint32_t max_degree, Rng& rng);

}  // namespace avt

#endif  // AVT_GEN_DEGREE_SEQUENCE_H_
