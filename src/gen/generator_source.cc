#include "gen/generator_source.h"

#include <algorithm>

namespace avt {

TemporalWindowSource::TemporalWindowSource(TemporalEventLog log, size_t T,
                                           uint32_t window_days)
    : log_(std::move(log)), T_(T), window_days_(window_days) {
  AVT_CHECK(T_ >= 1);
  t_min_ = log_.MinTimestamp();
  t_max_ = log_.MaxTimestamp();
  const int64_t boundary = WindowBoundary(t_min_, t_max_, 1, T_);
  ConsumeUpTo(boundary);
  EdgeDelta first;
  differ_.EmitWindow(boundary - static_cast<int64_t>(window_days_), &first);
  AVT_CHECK(first.deletions.empty());
  initial_ = Graph(log_.num_vertices);
  for (const Edge& e : first.insertions) initial_.AddEdge(e.u, e.v);
}

void TemporalWindowSource::ConsumeUpTo(int64_t boundary) {
  while (cursor_ < log_.events.size() &&
         log_.events[cursor_].timestamp <= boundary) {
    const TemporalEdge& e = log_.events[cursor_];
    if (e.u != e.v) differ_.Observe(e.u, e.v, e.timestamp);
    ++cursor_;
  }
}

StatusOr<bool> TemporalWindowSource::NextDelta(EdgeDelta* delta) {
  if (next_t_ > T_) return false;
  const int64_t boundary = WindowBoundary(t_min_, t_max_, next_t_, T_);
  ++next_t_;
  ConsumeUpTo(boundary);
  differ_.EmitWindow(boundary - static_cast<int64_t>(window_days_), delta);
  return true;
}

}  // namespace avt
