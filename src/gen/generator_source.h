// Generator-backed delta sources: synthetic workloads as streams.
//
// The churn protocol (gen/churn.h) and the sliding-window temporal
// replicas (gen/temporal.h) historically produced whole
// SnapshotSequences; these adapters stream the identical transitions
// one pull at a time, so a bench or the CLI can drive arbitrarily long
// synthetic workloads through AvtEngine in O(m + |Δ|) working memory:
//
//   ChurnSource          — one NextChurnDelta step per pull; for equal
//                          seeds the delta stream is bit-identical to
//                          MakeChurnSnapshots;
//   TemporalWindowSource — window-diffs an in-memory event log with the
//                          same WindowDiffer the file source uses; the
//                          stream mirrors WindowSnapshots exactly
//                          (initial graph included).
//
// Both are pinned against their materialized counterparts in
// tests/delta_source_test.cc.

#ifndef AVT_GEN_GENERATOR_SOURCE_H_
#define AVT_GEN_GENERATOR_SOURCE_H_

#include <string>
#include <utility>

#include "gen/churn.h"
#include "graph/delta_source.h"
#include "graph/io.h"
#include "util/random.h"

namespace avt {

/// Streams the paper's churn protocol: G_0 plus num_snapshots - 1
/// generated transitions. Owns its working graph and Rng; pass the Rng
/// by value in the exact state MakeChurnSnapshots would consume it to
/// get a bit-identical stream.
class ChurnSource : public DeltaSource {
 public:
  ChurnSource(Graph initial, const ChurnOptions& options, Rng rng)
      : initial_(std::move(initial)),
        current_(initial_),
        options_(options),
        rng_(rng) {}

  const Graph& InitialGraph() const override { return initial_; }

  StatusOr<bool> NextDelta(EdgeDelta* delta) override {
    if (emitted_ + 1 >= options_.num_snapshots) return false;
    ++emitted_;
    *delta = NextChurnDelta(current_, options_, rng_);
    return true;
  }

  std::string name() const override { return "churn-gen"; }

 private:
  Graph initial_;
  Graph current_;
  ChurnOptions options_;
  Rng rng_;
  size_t emitted_ = 0;
};

/// Streams WindowSnapshots(log, T, window_days) delta-by-delta: same
/// boundary rule, same sorted window diffs, same full vertex universe
/// (an in-memory log knows its num_vertices up front, unlike a file
/// stream). Owns the log.
class TemporalWindowSource : public DeltaSource {
 public:
  TemporalWindowSource(TemporalEventLog log, size_t T,
                       uint32_t window_days);

  const Graph& InitialGraph() const override { return initial_; }
  StatusOr<bool> NextDelta(EdgeDelta* delta) override;
  std::string name() const override { return "temporal-gen"; }

 private:
  /// Feeds events with timestamp <= boundary into the differ.
  void ConsumeUpTo(int64_t boundary);

  TemporalEventLog log_;
  WindowDiffer differ_;
  Graph initial_;
  size_t T_;
  uint32_t window_days_;
  size_t cursor_ = 0;   // next unconsumed event
  size_t next_t_ = 2;   // next window to emit (window 1 built G_0)
  int64_t t_min_ = 0;
  int64_t t_max_ = 0;
};

}  // namespace avt

#endif  // AVT_GEN_GENERATOR_SOURCE_H_
