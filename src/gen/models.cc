#include "gen/models.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace avt {
namespace {

uint64_t PackEdge(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

// Weighted endpoint sampler: binary search over the prefix-sum of weights.
class WeightedSampler {
 public:
  explicit WeightedSampler(const std::vector<double>& weights) {
    prefix_.reserve(weights.size());
    double total = 0;
    for (double w : weights) {
      total += w;
      prefix_.push_back(total);
    }
  }
  VertexId Sample(Rng& rng) const {
    double target = rng.NextDouble() * prefix_.back();
    auto it = std::lower_bound(prefix_.begin(), prefix_.end(), target);
    return static_cast<VertexId>(it - prefix_.begin());
  }

 private:
  std::vector<double> prefix_;
};

}  // namespace

Graph ErdosRenyi(VertexId n, uint64_t m, Rng& rng) {
  Graph g(n);
  if (n < 2) return g;
  uint64_t max_edges = static_cast<uint64_t>(n) * (n - 1) / 2;
  m = std::min(m, max_edges);
  std::unordered_set<uint64_t> used;
  used.reserve(m * 2);
  while (g.NumEdges() < m) {
    VertexId u = static_cast<VertexId>(rng.Uniform(n));
    VertexId v = static_cast<VertexId>(rng.Uniform(n));
    if (u == v) continue;
    if (!used.insert(PackEdge(u, v)).second) continue;
    g.AddEdge(u, v);
  }
  return g;
}

Graph ChungLu(const std::vector<double>& weights, Rng& rng) {
  const VertexId n = static_cast<VertexId>(weights.size());
  Graph g(n);
  if (n < 2) return g;
  double total = 0;
  for (double w : weights) total += w;
  const uint64_t target_edges = static_cast<uint64_t>(total / 2.0);
  if (target_edges == 0) return g;

  WeightedSampler sampler(weights);
  // Ball-dropping: sample endpoint pairs weight-proportionally. Collisions
  // and self-loops are redrawn; cap attempts to avoid pathological loops
  // on degenerate weight vectors.
  uint64_t attempts = 0;
  const uint64_t max_attempts = target_edges * 20 + 1000;
  while (g.NumEdges() < target_edges && attempts < max_attempts) {
    ++attempts;
    VertexId u = sampler.Sample(rng);
    VertexId v = sampler.Sample(rng);
    if (u == v) continue;
    g.AddEdge(u, v);
  }
  return g;
}

Graph ChungLuPowerLaw(VertexId n, double average_degree, double alpha,
                      uint32_t max_degree, Rng& rng) {
  std::vector<double> weights(n);
  double sum = 0;
  for (VertexId v = 0; v < n; ++v) {
    weights[v] = static_cast<double>(rng.PowerLaw(alpha, max_degree));
    sum += weights[v];
  }
  // Rescale to the requested average degree.
  double factor = average_degree * static_cast<double>(n) / sum;
  for (double& w : weights) w *= factor;
  return ChungLu(weights, rng);
}

Graph BarabasiAlbert(VertexId n, uint32_t edges_per_vertex, Rng& rng) {
  Graph g(n);
  if (n == 0) return g;
  const uint32_t m0 = std::max<uint32_t>(edges_per_vertex, 1);
  // `targets` holds one entry per half-edge: degree-proportional sampling.
  std::vector<VertexId> targets;
  targets.reserve(static_cast<size_t>(n) * edges_per_vertex * 2);

  // Seed clique over the first m0+1 vertices (or all if n is small).
  VertexId seed = std::min<VertexId>(n, m0 + 1);
  for (VertexId u = 0; u < seed; ++u) {
    for (VertexId v = u + 1; v < seed; ++v) {
      if (g.AddEdge(u, v)) {
        targets.push_back(u);
        targets.push_back(v);
      }
    }
  }
  for (VertexId v = seed; v < n; ++v) {
    uint32_t added = 0;
    uint32_t attempts = 0;
    while (added < edges_per_vertex && attempts < 20 * edges_per_vertex) {
      ++attempts;
      VertexId target =
          targets.empty()
              ? static_cast<VertexId>(rng.Uniform(v))
              : targets[rng.Uniform(targets.size())];
      if (target == v) continue;
      if (g.AddEdge(v, target)) {
        targets.push_back(v);
        targets.push_back(target);
        ++added;
      }
    }
  }
  return g;
}

Graph WattsStrogatz(VertexId n, uint32_t lattice_degree, double beta,
                    Rng& rng) {
  Graph g(n);
  if (n < 3) return g;
  uint32_t half = std::max<uint32_t>(lattice_degree / 2, 1);
  for (VertexId u = 0; u < n; ++u) {
    for (uint32_t j = 1; j <= half; ++j) {
      VertexId v = static_cast<VertexId>((u + j) % n);
      if (rng.Bernoulli(beta)) {
        // Rewire: keep u, pick a uniform non-duplicate target.
        for (int tries = 0; tries < 16; ++tries) {
          VertexId w = static_cast<VertexId>(rng.Uniform(n));
          if (w != u && !g.HasEdge(u, w)) {
            v = w;
            break;
          }
        }
      }
      g.AddEdge(u, v);
    }
  }
  return g;
}

Graph PlantedPartition(VertexId n, uint32_t communities, uint64_t m,
                       double p_intra, Rng& rng) {
  Graph g(n);
  if (n < 2 || communities == 0) return g;
  const VertexId block = std::max<VertexId>(n / communities, 2);
  uint64_t max_edges = static_cast<uint64_t>(n) * (n - 1) / 2;
  m = std::min(m, max_edges);

  std::unordered_set<uint64_t> used;
  used.reserve(m * 2);
  uint64_t attempts = 0;
  const uint64_t max_attempts = m * 40 + 1000;
  while (g.NumEdges() < m && attempts < max_attempts) {
    ++attempts;
    VertexId u, v;
    if (rng.Bernoulli(p_intra)) {
      // Intra-community pair.
      uint32_t c = static_cast<uint32_t>(rng.Uniform(communities));
      VertexId lo = static_cast<VertexId>(c) * block;
      VertexId hi = std::min<VertexId>(lo + block, n);
      if (hi - lo < 2) continue;
      u = lo + static_cast<VertexId>(rng.Uniform(hi - lo));
      v = lo + static_cast<VertexId>(rng.Uniform(hi - lo));
    } else {
      u = static_cast<VertexId>(rng.Uniform(n));
      v = static_cast<VertexId>(rng.Uniform(n));
    }
    if (u == v) continue;
    if (!used.insert(PackEdge(u, v)).second) continue;
    g.AddEdge(u, v);
  }
  return g;
}

}  // namespace avt
