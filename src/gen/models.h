// Random graph models used to synthesize workloads.
//
// The benchmark datasets are synthetic replicas of the paper's six SNAP
// graphs (datasets.h); these generators provide the underlying models:
// Erdos-Renyi G(n, m) for flat-degree networks (Gnutella-like), Chung-Lu
// for power-law social graphs (Enron/Deezer-like), Barabasi-Albert and
// Watts-Strogatz for structural variety in tests, and planted partitions
// (stochastic block model) for community-heavy graphs (eu-core-like).
// Every generator takes an explicit Rng for reproducibility and returns a
// simple graph (self-loops/multi-edges resolved internally).

#ifndef AVT_GEN_MODELS_H_
#define AVT_GEN_MODELS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/random.h"

namespace avt {

/// G(n, m): exactly m distinct uniform edges (m clamped to n(n-1)/2).
Graph ErdosRenyi(VertexId n, uint64_t m, Rng& rng);

/// Chung-Lu with an explicit expected-degree sequence: ~m edges where m =
/// sum(weights)/2, degree of v concentrated around weights[v].
Graph ChungLu(const std::vector<double>& weights, Rng& rng);

/// Chung-Lu with a truncated-Pareto weight sequence tuned to hit the
/// requested average degree. `alpha` is the power-law exponent (typical
/// social networks: 2.0-2.5); `max_degree` truncates the tail.
Graph ChungLuPowerLaw(VertexId n, double average_degree, double alpha,
                      uint32_t max_degree, Rng& rng);

/// Barabasi-Albert preferential attachment: each new vertex attaches
/// `edges_per_vertex` edges to degree-proportional targets.
Graph BarabasiAlbert(VertexId n, uint32_t edges_per_vertex, Rng& rng);

/// Watts-Strogatz small world: ring lattice with `lattice_degree` (even)
/// neighbors, each edge rewired with probability `beta`.
Graph WattsStrogatz(VertexId n, uint32_t lattice_degree, double beta,
                    Rng& rng);

/// Planted partition / SBM: n vertices in `communities` equal blocks,
/// m edges, each intra-community with probability `p_intra`.
Graph PlantedPartition(VertexId n, uint32_t communities, uint64_t m,
                       double p_intra, Rng& rng);

}  // namespace avt

#endif  // AVT_GEN_MODELS_H_
