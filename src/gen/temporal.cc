#include "gen/temporal.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "graph/delta_source.h"

namespace avt {
namespace {

// Assigns event i of `total` a day in [0, days): uniform spread plus
// small jitter so daily volumes vary.
int64_t EventDay(uint64_t i, uint64_t total, uint32_t days, Rng& rng) {
  if (total == 0 || days == 0) return 0;
  double base = static_cast<double>(i) / static_cast<double>(total) *
                static_cast<double>(days);
  int64_t day = static_cast<int64_t>(base) +
                rng.UniformInt(-2, 2);
  if (day < 0) day = 0;
  if (day >= days) day = days - 1;
  return day;
}

// Power-law per-vertex activity: real interaction networks have a few
// prolific users and a long tail of barely-active ones; without this the
// windowed snapshots have no low-core periphery for anchors to recruit
// from.
class ActivitySampler {
 public:
  ActivitySampler(VertexId n, double alpha, Rng& rng) {
    prefix_.resize(n);
    double total = 0;
    for (VertexId v = 0; v < n; ++v) {
      total += static_cast<double>(rng.PowerLaw(alpha, 1000));
      prefix_[v] = total;
    }
  }
  VertexId Sample(Rng& rng) const {
    double target = rng.NextDouble() * prefix_.back();
    auto it = std::lower_bound(prefix_.begin(), prefix_.end(), target);
    return static_cast<VertexId>(it - prefix_.begin());
  }

 private:
  std::vector<double> prefix_;
};

// Pair-recurrence memory shared by the generators.
class PairMemory {
 public:
  bool Empty() const { return pairs_.empty(); }
  void Remember(VertexId u, VertexId v) {
    pairs_.emplace_back(u, v);
  }
  std::pair<VertexId, VertexId> SampleRecent(Rng& rng) const {
    // Strong recency bias keeps sliding windows stationary: most repeat
    // traffic targets recently active pairs, so stale pairs age out of
    // the window instead of being refreshed forever.
    size_t n = pairs_.size();
    size_t index;
    if (n > 16 && rng.Bernoulli(0.75)) {
      size_t recent = std::max<size_t>(n / 10, 8);
      index = n - recent + static_cast<size_t>(rng.Uniform(recent));
    } else {
      index = static_cast<size_t>(rng.Uniform(n));
    }
    return pairs_[index];
  }

 private:
  std::vector<std::pair<VertexId, VertexId>> pairs_;
};

}  // namespace

TemporalEventLog GenCommunityEmailEvents(const TemporalGenOptions& options,
                                         uint32_t communities,
                                         double p_intra, Rng& rng) {
  TemporalEventLog log;
  log.num_vertices = options.num_vertices;
  const VertexId n = options.num_vertices;
  if (n < 2 || communities == 0) return log;
  const VertexId block = std::max<VertexId>(n / communities, 2);
  PairMemory memory;
  ActivitySampler activity(n, /*alpha=*/1.6, rng);

  // Picks a community member with activity bias: draw active users and
  // keep the first that lands in the block (cheap rejection).
  auto sample_in_block = [&](VertexId lo, VertexId hi) {
    for (int tries = 0; tries < 8; ++tries) {
      VertexId v = activity.Sample(rng);
      if (v >= lo && v < hi) return v;
    }
    return lo + static_cast<VertexId>(rng.Uniform(hi - lo));
  };

  log.events.reserve(options.num_events);
  for (uint64_t i = 0; i < options.num_events; ++i) {
    VertexId u, v;
    if (!memory.Empty() && rng.Bernoulli(options.recurrence)) {
      auto pair = memory.SampleRecent(rng);
      u = pair.first;
      v = pair.second;
    } else if (rng.Bernoulli(p_intra)) {
      uint32_t c = static_cast<uint32_t>(rng.Uniform(communities));
      VertexId lo = static_cast<VertexId>(c) * block;
      VertexId hi = std::min<VertexId>(lo + block, n);
      if (hi - lo < 2) continue;
      u = sample_in_block(lo, hi);
      v = sample_in_block(lo, hi);
      if (u == v) continue;
      memory.Remember(u, v);
    } else {
      u = activity.Sample(rng);
      v = activity.Sample(rng);
      if (u == v) continue;
      memory.Remember(u, v);
    }
    log.events.push_back(
        {u, v, EventDay(i, options.num_events, options.num_days, rng)});
  }
  std::stable_sort(log.events.begin(), log.events.end());
  return log;
}

TemporalEventLog GenPowerLawActivityEvents(const TemporalGenOptions& options,
                                           double alpha, Rng& rng) {
  TemporalEventLog log;
  log.num_vertices = options.num_vertices;
  const VertexId n = options.num_vertices;
  if (n < 2) return log;

  // Per-vertex activity weights: truncated power law.
  std::vector<double> prefix(n);
  double total = 0;
  for (VertexId v = 0; v < n; ++v) {
    total += static_cast<double>(rng.PowerLaw(alpha, 2000));
    prefix[v] = total;
  }
  auto sample_vertex = [&]() {
    double target = rng.NextDouble() * total;
    auto it = std::lower_bound(prefix.begin(), prefix.end(), target);
    return static_cast<VertexId>(it - prefix.begin());
  };

  PairMemory memory;
  log.events.reserve(options.num_events);
  for (uint64_t i = 0; i < options.num_events; ++i) {
    VertexId u, v;
    if (!memory.Empty() && rng.Bernoulli(options.recurrence)) {
      auto pair = memory.SampleRecent(rng);
      u = pair.first;
      v = pair.second;
    } else {
      u = sample_vertex();
      v = sample_vertex();
      if (u == v) continue;
      memory.Remember(u, v);
    }
    log.events.push_back(
        {u, v, EventDay(i, options.num_events, options.num_days, rng)});
  }
  std::stable_sort(log.events.begin(), log.events.end());
  return log;
}

TemporalEventLog GenBurstyMessageEvents(const TemporalGenOptions& options,
                                        double burst_fraction,
                                        double burst_multiplier, Rng& rng) {
  TemporalEventLog log;
  log.num_vertices = options.num_vertices;
  const VertexId n = options.num_vertices;
  if (n < 2) return log;

  // Mark burst days; events land on burst days with boosted probability
  // by re-mapping the uniform day assignment through a weighted table.
  std::vector<double> day_weight(options.num_days, 1.0);
  for (uint32_t d = 0; d < options.num_days; ++d) {
    if (rng.Bernoulli(burst_fraction)) day_weight[d] = burst_multiplier;
  }
  std::vector<double> day_prefix(options.num_days);
  double day_total = 0;
  for (uint32_t d = 0; d < options.num_days; ++d) {
    day_total += day_weight[d];
    day_prefix[d] = day_total;
  }
  auto sample_day = [&]() {
    double target = rng.NextDouble() * day_total;
    auto it = std::lower_bound(day_prefix.begin(), day_prefix.end(), target);
    return static_cast<int64_t>(it - day_prefix.begin());
  };

  PairMemory memory;
  ActivitySampler activity(n, /*alpha=*/2.0, rng);
  log.events.reserve(options.num_events);
  for (uint64_t i = 0; i < options.num_events; ++i) {
    VertexId u, v;
    if (!memory.Empty() && rng.Bernoulli(options.recurrence)) {
      auto pair = memory.SampleRecent(rng);
      u = pair.first;
      v = pair.second;
    } else {
      u = activity.Sample(rng);
      v = activity.Sample(rng);
      if (u == v) continue;
      memory.Remember(u, v);
    }
    log.events.push_back({u, v, sample_day()});
  }
  std::stable_sort(log.events.begin(), log.events.end());
  return log;
}

SnapshotSequence WindowSnapshots(const TemporalEventLog& log, size_t T,
                                 uint32_t window_days) {
  AVT_CHECK(T >= 1);
  const int64_t t_min = log.MinTimestamp();
  const int64_t t_max = log.MaxTimestamp();

  // last_seen[pair] -> most recent timestamp; recomputed per boundary by
  // a single sweep (events are sorted by time).
  std::unordered_map<uint64_t, int64_t> last_seen;
  auto pack = [](VertexId u, VertexId v) {
    if (u > v) std::swap(u, v);
    return (static_cast<uint64_t>(u) << 32) | v;
  };

  std::vector<Graph> snapshots;
  size_t cursor = 0;
  for (size_t t = 1; t <= T; ++t) {
    // Shared boundary rule (graph/delta_source.h) so the streamed and
    // materialized windowings cannot drift.
    int64_t boundary = WindowBoundary(t_min, t_max, t, T);
    while (cursor < log.events.size() &&
           log.events[cursor].timestamp <= boundary) {
      const TemporalEdge& e = log.events[cursor];
      last_seen[pack(e.u, e.v)] = e.timestamp;
      ++cursor;
    }
    int64_t horizon = boundary - static_cast<int64_t>(window_days);
    // Build the window graph from SORTED pairs, not hash-map order:
    // adjacency order feeds peel-order tie-breaks, and the streamed
    // replay (StreamingEdgeFileSource applies sorted canonical deltas)
    // must construct bit-identical adjacency.
    std::vector<Edge> window_edges;
    for (const auto& [key, when] : last_seen) {
      if (when > horizon) {
        window_edges.emplace_back(static_cast<VertexId>(key >> 32),
                                  static_cast<VertexId>(key & 0xffffffffu));
      }
    }
    std::sort(window_edges.begin(), window_edges.end());
    Graph g(log.num_vertices);
    for (const Edge& e : window_edges) g.AddEdge(e.u, e.v);
    snapshots.push_back(std::move(g));
  }

  SnapshotSequence sequence(snapshots.front());
  Graph previous = snapshots.front();
  for (size_t t = 1; t < snapshots.size(); ++t) {
    sequence.PushDelta(DiffGraphs(previous, snapshots[t]));
    previous = snapshots[t];
  }
  return sequence;
}

}  // namespace avt
