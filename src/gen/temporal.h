// Temporal event streams and sliding-window snapshot construction.
//
// The paper's three temporal datasets (eu-core, mathoverflow, CollegeMsg)
// are interaction logs: (u, v, timestamp) events over a span of days. The
// paper divides the span into T periods and declares an edge present in
// G_t when it was active within a time window W ending at period t
// (W = 365 days for mathoverflow); E+/E- follow from consecutive windows.
//
// Generators here synthesize event logs with the statistical signatures
// of the three datasets: community-recurrent email traffic (SBM-flavored),
// power-law activity Q&A interactions, and bursty messaging.

#ifndef AVT_GEN_TEMPORAL_H_
#define AVT_GEN_TEMPORAL_H_

#include <cstdint>

#include "graph/io.h"
#include "graph/snapshots.h"
#include "util/random.h"

namespace avt {

/// Common knobs for temporal event generation.
struct TemporalGenOptions {
  VertexId num_vertices = 1000;
  uint64_t num_events = 50'000;
  uint32_t num_days = 365;
  /// Probability an event re-activates a previously seen pair.
  double recurrence = 0.6;
};

/// Email-style traffic: strong communities, heavy pair recurrence
/// (eu-core replica).
TemporalEventLog GenCommunityEmailEvents(const TemporalGenOptions& options,
                                         uint32_t communities,
                                         double p_intra, Rng& rng);

/// Q&A-interaction traffic: power-law vertex activity
/// (mathoverflow replica).
TemporalEventLog GenPowerLawActivityEvents(const TemporalGenOptions& options,
                                           double alpha, Rng& rng);

/// Messaging traffic with bursty days (CollegeMsg replica).
TemporalEventLog GenBurstyMessageEvents(const TemporalGenOptions& options,
                                        double burst_fraction,
                                        double burst_multiplier, Rng& rng);

/// Splits a log into T snapshots: G_t contains every pair whose most
/// recent event falls in (boundary_t - window_days, boundary_t], where
/// boundary_t is the end of the t-th of T equal periods.
SnapshotSequence WindowSnapshots(const TemporalEventLog& log, size_t T,
                                 uint32_t window_days);

}  // namespace avt

#endif  // AVT_GEN_TEMPORAL_H_
