// Read-only compressed-sparse-row snapshot of a Graph's adjacency.
//
// The dynamic Graph stores one heap vector per vertex, which is the right
// shape for edge churn but scatters neighbor lists across the heap. The
// scan-heavy phases — core decomposition, K-order construction, and the
// follower oracle's cascades — walk millions of neighbor lists per solve
// and are bandwidth-bound, so they read a CsrView instead: one contiguous
// offsets array plus one contiguous targets array, built in O(n + m).
//
// A CsrView is a frozen snapshot: it does NOT observe later mutations of
// the source graph. Callers that mutate (the maintainer) keep using the
// dynamic adjacency; callers that solve one snapshot (GreedySolver, the
// perf gate) build a view once per solve and route every scan through it.
// The build copies each per-vertex neighbor list verbatim, so iteration
// order is IDENTICAL to Graph::Neighbors — that order preservation is
// load-bearing: the decomposition peel order, K-order tags, and the
// pinned lazy/eager equivalence all assume it. Do not reorder targets_
// (e.g., for locality) without revisiting every bit-identical pin.

#ifndef AVT_GRAPH_CSR_H_
#define AVT_GRAPH_CSR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace avt {

class Graph;

/// Vertex identifier: dense index in [0, NumVertices). (Same alias as in
/// graph.h; redeclaring an identical alias is well-formed and keeps this
/// header free of a circular include.)
using VertexId = uint32_t;

/// Immutable CSR adjacency snapshot (see Graph::BuildCsr()).
class CsrView {
 public:
  CsrView() = default;

  VertexId NumVertices() const {
    return offsets_.empty() ? 0
                            : static_cast<VertexId>(offsets_.size() - 1);
  }
  uint64_t NumEdges() const { return targets_.size() / 2; }

  uint32_t Degree(VertexId u) const {
    AVT_DCHECK(u < NumVertices());
    return static_cast<uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

  std::span<const VertexId> Neighbors(VertexId u) const {
    AVT_DCHECK(u < NumVertices());
    return {targets_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }

 private:
  friend class Graph;
  std::vector<uint64_t> offsets_;   // size n + 1
  std::vector<VertexId> targets_;  // size 2m, neighbors of v at
                                   // [offsets_[v], offsets_[v+1])
};

}  // namespace avt

#endif  // AVT_GRAPH_CSR_H_
