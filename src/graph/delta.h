// Edge deltas between consecutive snapshots of an evolving graph.
//
// The paper writes G_t = G_{t-1} (+) E+ (-) E-: an insertion batch and a
// deletion batch. EdgeDelta carries both; SnapshotSequence (snapshots.h)
// stores the initial graph plus one delta per transition so an evolving
// network with T snapshots costs O(m + T * churn) memory instead of
// O(T * m). DeltaBatcher folds a run of consecutive deltas into one
// canonical net-effect transaction — the primitive behind both batching
// layers (CoalescingSource's source-side windows and AvtEngine's
// tracker-requested batch transactions), shared so the two cannot drift.

#ifndef AVT_GRAPH_DELTA_H_
#define AVT_GRAPH_DELTA_H_

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace avt {

/// One evolution step: edges inserted (E+) and deleted (E-).
struct EdgeDelta {
  std::vector<Edge> insertions;
  std::vector<Edge> deletions;

  bool Empty() const { return insertions.empty() && deletions.empty(); }
  size_t Size() const { return insertions.size() + deletions.size(); }

  /// Applies the delta to `graph` in place. By default (insert_first =
  /// true) insertions are applied first and deletions second — the order
  /// of the paper's G'_t = G_{t-1} ⊕ E+ ⊖ E-, and the order
  /// CoreMaintainer::ApplyDelta uses, so replaying a SnapshotSequence
  /// and maintaining it incrementally traverse the same intermediate
  /// graphs. Pass insert_first = false for deletions-then-insertions.
  /// The order is observable when an edge appears in both batches:
  /// insert-first ends with the edge absent, delete-first with it
  /// present (tests/graph_test.cc pins both). Edges already
  /// present/absent are skipped.
  void Apply(Graph& graph, bool insert_first = true) const {
    if (insert_first) {
      for (const Edge& e : insertions) graph.AddEdge(e.u, e.v);
      for (const Edge& e : deletions) graph.RemoveEdge(e.u, e.v);
    } else {
      for (const Edge& e : deletions) graph.RemoveEdge(e.u, e.v);
      for (const Edge& e : insertions) graph.AddEdge(e.u, e.v);
    }
  }

  /// The delta that undoes this one.
  EdgeDelta Inverse() const {
    EdgeDelta inv;
    inv.insertions = deletions;
    inv.deletions = insertions;
    return inv;
  }

  /// Normalizes to the unique canonical form with identical Apply()
  /// semantics under the default insert-first order: both batches
  /// sorted, duplicates and self-loops dropped, and an edge present in
  /// BOTH batches collapsed to its deletion alone. The collapse is
  /// exact: insert-then-delete ends with the edge absent whether or not
  /// it existed before, and so does the lone deletion — but the lone
  /// deletion costs zero cascades where the pair cost two. Loaders,
  /// CoalescingSource, and the engine's validation all assume (and
  /// preserve) this form. A canonical delta has disjoint sorted batches,
  /// so Apply's insert-first / delete-first orders agree on it.
  void Canonicalize() {
    auto scrub = [](std::vector<Edge>& edges) {
      edges.erase(std::remove_if(edges.begin(), edges.end(),
                                 [](const Edge& e) { return e.u == e.v; }),
                  edges.end());
      std::sort(edges.begin(), edges.end());
      edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    };
    scrub(insertions);
    scrub(deletions);
    if (!insertions.empty() && !deletions.empty()) {
      std::vector<Edge> kept;
      kept.reserve(insertions.size());
      std::set_difference(insertions.begin(), insertions.end(),
                          deletions.begin(), deletions.end(),
                          std::back_inserter(kept));
      insertions = std::move(kept);
    }
  }
};

/// Packs a vertex pair into one 64-bit map key, normalized so (u, v)
/// and (v, u) collide — the canonical undirected-edge key used by every
/// pair-keyed map in the delta layer.
inline uint64_t PackEdgeKey(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

inline Edge UnpackEdgeKey(uint64_t key) {
  return Edge(static_cast<VertexId>(key >> 32),
              static_cast<VertexId>(key & 0xffffffffu));
}

/// Folds consecutive EdgeDeltas into one canonical net-effect delta.
///
/// Last-op-wins: replaying the accumulated deltas op by op (insertions
/// before deletions within each delta, matching EdgeDelta::Apply and
/// CoreMaintainer::ApplyDelta), every edge's final membership is decided
/// by its last operation alone, and a redundant operation (inserting a
/// present edge, deleting an absent one) is a no-op on application — so
/// applying the flushed batch reaches exactly the state the op-by-op
/// replay reaches, at one maintenance transaction instead of one per
/// delta. The flushed delta is canonical (sorted disjoint batches), so
/// it is deterministic regardless of upstream batch order.
///
/// The internal map is retained across Flush calls at its high-water
/// capacity, so a steady-state batching loop allocates nothing.
class DeltaBatcher {
 public:
  /// Accumulates one delta (ops applied after everything added before).
  void Add(const EdgeDelta& delta) {
    for (const Edge& e : delta.insertions) {
      last_insert_[PackEdgeKey(e.u, e.v)] = true;
    }
    for (const Edge& e : delta.deletions) {
      last_insert_[PackEdgeKey(e.u, e.v)] = false;
    }
    ++merged_;
  }

  /// Deltas accumulated since the last Flush.
  size_t merged() const { return merged_; }
  bool Empty() const { return merged_ == 0; }

  /// Overwrites `*delta` with the canonical net effect and resets.
  void Flush(EdgeDelta* delta) {
    delta->insertions.clear();
    delta->deletions.clear();
    for (const auto& [key, is_insert] : last_insert_) {
      (is_insert ? delta->insertions : delta->deletions)
          .push_back(UnpackEdgeKey(key));
    }
    delta->Canonicalize();  // hash order -> sorted deterministic batches
    last_insert_.clear();
    merged_ = 0;
  }

 private:
  std::unordered_map<uint64_t, bool> last_insert_;
  size_t merged_ = 0;
};

/// Computes the delta that transforms `from` into `to` (same vertex set).
inline EdgeDelta DiffGraphs(const Graph& from, const Graph& to) {
  AVT_CHECK(from.NumVertices() == to.NumVertices());
  EdgeDelta delta;
  std::vector<Edge> a = from.CollectEdges();
  std::vector<Edge> b = to.CollectEdges();
  size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    if (j == b.size() || (i < a.size() && a[i] < b[j])) {
      delta.deletions.push_back(a[i++]);
    } else if (i == a.size() || b[j] < a[i]) {
      delta.insertions.push_back(b[j++]);
    } else {
      ++i;
      ++j;
    }
  }
  return delta;
}

}  // namespace avt

#endif  // AVT_GRAPH_DELTA_H_
