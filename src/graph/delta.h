// Edge deltas between consecutive snapshots of an evolving graph.
//
// The paper writes G_t = G_{t-1} (+) E+ (-) E-: an insertion batch and a
// deletion batch. EdgeDelta carries both; SnapshotSequence (snapshots.h)
// stores the initial graph plus one delta per transition so an evolving
// network with T snapshots costs O(m + T * churn) memory instead of
// O(T * m).

#ifndef AVT_GRAPH_DELTA_H_
#define AVT_GRAPH_DELTA_H_

#include <algorithm>
#include <iterator>
#include <vector>

#include "graph/graph.h"

namespace avt {

/// One evolution step: edges inserted (E+) and deleted (E-).
struct EdgeDelta {
  std::vector<Edge> insertions;
  std::vector<Edge> deletions;

  bool Empty() const { return insertions.empty() && deletions.empty(); }
  size_t Size() const { return insertions.size() + deletions.size(); }

  /// Applies the delta to `graph` in place. By default (insert_first =
  /// true) insertions are applied first and deletions second — the order
  /// of the paper's G'_t = G_{t-1} ⊕ E+ ⊖ E-, and the order
  /// CoreMaintainer::ApplyDelta uses, so replaying a SnapshotSequence
  /// and maintaining it incrementally traverse the same intermediate
  /// graphs. Pass insert_first = false for deletions-then-insertions.
  /// The order is observable when an edge appears in both batches:
  /// insert-first ends with the edge absent, delete-first with it
  /// present (tests/graph_test.cc pins both). Edges already
  /// present/absent are skipped.
  void Apply(Graph& graph, bool insert_first = true) const {
    if (insert_first) {
      for (const Edge& e : insertions) graph.AddEdge(e.u, e.v);
      for (const Edge& e : deletions) graph.RemoveEdge(e.u, e.v);
    } else {
      for (const Edge& e : deletions) graph.RemoveEdge(e.u, e.v);
      for (const Edge& e : insertions) graph.AddEdge(e.u, e.v);
    }
  }

  /// The delta that undoes this one.
  EdgeDelta Inverse() const {
    EdgeDelta inv;
    inv.insertions = deletions;
    inv.deletions = insertions;
    return inv;
  }

  /// Normalizes to the unique canonical form with identical Apply()
  /// semantics under the default insert-first order: both batches
  /// sorted, duplicates and self-loops dropped, and an edge present in
  /// BOTH batches collapsed to its deletion alone. The collapse is
  /// exact: insert-then-delete ends with the edge absent whether or not
  /// it existed before, and so does the lone deletion — but the lone
  /// deletion costs zero cascades where the pair cost two. Loaders,
  /// CoalescingSource, and the engine's validation all assume (and
  /// preserve) this form. A canonical delta has disjoint sorted batches,
  /// so Apply's insert-first / delete-first orders agree on it.
  void Canonicalize() {
    auto scrub = [](std::vector<Edge>& edges) {
      edges.erase(std::remove_if(edges.begin(), edges.end(),
                                 [](const Edge& e) { return e.u == e.v; }),
                  edges.end());
      std::sort(edges.begin(), edges.end());
      edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    };
    scrub(insertions);
    scrub(deletions);
    if (!insertions.empty() && !deletions.empty()) {
      std::vector<Edge> kept;
      kept.reserve(insertions.size());
      std::set_difference(insertions.begin(), insertions.end(),
                          deletions.begin(), deletions.end(),
                          std::back_inserter(kept));
      insertions = std::move(kept);
    }
  }
};

/// Computes the delta that transforms `from` into `to` (same vertex set).
inline EdgeDelta DiffGraphs(const Graph& from, const Graph& to) {
  AVT_CHECK(from.NumVertices() == to.NumVertices());
  EdgeDelta delta;
  std::vector<Edge> a = from.CollectEdges();
  std::vector<Edge> b = to.CollectEdges();
  size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    if (j == b.size() || (i < a.size() && a[i] < b[j])) {
      delta.deletions.push_back(a[i++]);
    } else if (i == a.size() || b[j] < a[i]) {
      delta.insertions.push_back(b[j++]);
    } else {
      ++i;
      ++j;
    }
  }
  return delta;
}

}  // namespace avt

#endif  // AVT_GRAPH_DELTA_H_
