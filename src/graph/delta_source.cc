#include "graph/delta_source.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>
#include <utility>

namespace avt {

// --- CoalescingSource --------------------------------------------------

CoalescingSource::CoalescingSource(std::unique_ptr<DeltaSource> inner,
                                   size_t window)
    : inner_(std::move(inner)), window_(window) {
  AVT_CHECK_MSG(inner_ != nullptr, "CoalescingSource needs a source");
  AVT_CHECK_MSG(window_ >= 1, "coalescing window must be >= 1");
}

StatusOr<bool> CoalescingSource::NextDelta(EdgeDelta* delta) {
  if (window_ == 1) return inner_->NextDelta(delta);  // exact passthrough

  // Last-op-wins merge via the shared DeltaBatcher (graph/delta.h): the
  // merged batch reaches exactly the state the op-by-op window replay
  // reaches, as one canonical net-effect transaction. An inner error
  // propagates with the partial window retained in the batcher, so the
  // next call continues the same window.
  EdgeDelta pulled;
  while (batcher_.merged() < window_) {
    StatusOr<bool> more = inner_->NextDelta(&pulled);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    batcher_.Add(pulled);
  }
  if (batcher_.Empty()) return false;
  batcher_.Flush(delta);
  return true;
}

// --- WindowDiffer ------------------------------------------------------

void WindowDiffer::Observe(VertexId u, VertexId v, int64_t timestamp) {
  auto [it, inserted] =
      pairs_.try_emplace(PackEdgeKey(u, v), PairState{timestamp, false});
  if (!inserted) it->second.last_seen = timestamp;
}

void WindowDiffer::EmitWindow(int64_t horizon, EdgeDelta* delta) {
  delta->insertions.clear();
  delta->deletions.clear();
  for (auto it = pairs_.begin(); it != pairs_.end();) {
    PairState& state = it->second;
    const bool in_window = state.last_seen > horizon;
    if (in_window != state.present) {
      (in_window ? delta->insertions : delta->deletions)
          .push_back(UnpackEdgeKey(it->first));
    }
    if (!in_window) {
      // Aged out (or observed already stale): only a future event can
      // revive this pair, and that event re-creates the entry — forget
      // it so memory tracks the live window, not the whole history.
      it = pairs_.erase(it);
    } else {
      state.present = true;
      ++it;
    }
  }
  delta->Canonicalize();
}

// --- StreamingEdgeFileSource -------------------------------------------

StatusOr<TemporalFileMetadata> ScanTemporalMetadata(
    const std::string& path) {
  // Timestamp range + sortedness + universe count. The batch loader
  // tolerates unsorted files by sorting in memory; a stream cannot, so
  // reject disorder here with line-level context instead of producing
  // silently wrong windows.
  std::ifstream scan(path);
  if (!scan) {
    return Status::IoError("cannot open " + path);
  }
  std::string line;
  size_t line_number = 0;
  TemporalFileMetadata meta;
  int64_t previous = 0;
  bool any = false;
  std::unordered_set<uint64_t> raw_ids;
  while (std::getline(scan, line)) {
    ++line_number;
    if (IsCommentOrBlankLine(line)) continue;
    uint64_t a = 0, b = 0;
    int64_t ts = 0;
    AVT_RETURN_IF_ERROR(ParseTemporalEdgeLine(line, line_number, &a, &b, &ts));
    // Self-loop lines are not events: the batch loader drops them
    // before they can influence ids, ordering, or the timestamp range,
    // and the boundary rule must see the identical range or the two
    // windowings drift apart.
    if (a == b) continue;
    if (any && ts < previous) {
      return Status::InvalidArgument(
          "temporal edge list is not sorted by timestamp (line " +
          std::to_string(line_number) +
          "); sort the file to stream it, or load it in memory with "
          "LoadTemporalEdgeList");
    }
    previous = ts;
    if (!any || ts < meta.t_min) meta.t_min = ts;
    if (!any || ts > meta.t_max) meta.t_max = ts;
    any = true;
    raw_ids.insert(a);
    raw_ids.insert(b);
  }
  if (!any) {
    return Status::InvalidArgument("temporal edge list " + path +
                                   " contains no events");
  }
  meta.num_vertices = static_cast<VertexId>(raw_ids.size());
  return meta;
}

StatusOr<std::unique_ptr<StreamingEdgeFileSource>>
StreamingEdgeFileSource::Open(const std::string& path, size_t T,
                              uint32_t window_days) {
  StatusOr<TemporalFileMetadata> meta = ScanTemporalMetadata(path);
  if (!meta.ok()) return meta.status();
  return Open(path, T, window_days, meta.value());
}

StatusOr<std::unique_ptr<StreamingEdgeFileSource>>
StreamingEdgeFileSource::Open(const std::string& path, size_t T,
                              uint32_t window_days,
                              const TemporalFileMetadata& metadata) {
  if (T < 1) {
    return Status::InvalidArgument("stream needs at least one snapshot");
  }

  auto source =
      std::unique_ptr<StreamingEdgeFileSource>(new StreamingEdgeFileSource());
  source->path_ = path;
  source->T_ = T;
  source->window_days_ = window_days;
  source->t_min_ = metadata.t_min;
  source->t_max_ = metadata.t_max;
  source->file_.open(path);
  if (!source->file_) {
    return Status::IoError("cannot open " + path);
  }

  // Window 1 builds G_0 over the FULL declared universe (not-yet-active
  // vertices isolated, exactly like the batch loader's fixed universe).
  // Sorted canonical insertions mean G_0's adjacency order is exactly
  // what the materialized WindowSnapshots path builds.
  const int64_t boundary =
      WindowBoundary(metadata.t_min, metadata.t_max, 1, T);
  Status status = source->ConsumeUpTo(boundary);
  if (!status.ok()) return status;
  EdgeDelta first;
  source->differ_.EmitWindow(boundary - static_cast<int64_t>(window_days),
                             &first);
  if (!first.deletions.empty()) {
    // Only reachable with fabricated metadata whose t_min overshoots
    // the real range; with a scanned range window 1 can never delete.
    return Status::InvalidArgument(
        "stream metadata inconsistent with " + path +
        ": first window produced deletions");
  }
  source->initial_ = Graph(metadata.num_vertices);
  for (const Edge& e : first.insertions) {
    if (e.v >= metadata.num_vertices) {
      // Dense ids exceed the declared universe: supplied metadata
      // undercounts the file's endpoints.
      return Status::InvalidArgument(
          "stream metadata undercounts the vertex universe of " + path);
    }
    source->initial_.AddEdge(e.u, e.v);
  }
  return source;
}

Status StreamingEdgeFileSource::ConsumeUpTo(int64_t boundary) {
  if (has_pending_) {
    if (pending_ts_ > boundary) return Status::Ok();
    differ_.Observe(pending_u_, pending_v_, pending_ts_);
    has_pending_ = false;
  }
  std::string line;
  while (std::getline(file_, line)) {
    ++line_number_;
    if (IsCommentOrBlankLine(line)) continue;
    uint64_t a = 0, b = 0;
    int64_t ts = 0;
    AVT_RETURN_IF_ERROR(
        ParseTemporalEdgeLine(line, line_number_, &a, &b, &ts));
    if (a == b) continue;  // the loader drops self-loops before mapping
    // Incremental sortedness check: the scanning Open validated order
    // up front, but the metadata Open never saw the file — and either
    // way the file may have changed under us. Disorder mis-windows
    // everything downstream, so it is an error, not a warning.
    if (any_event_ && ts < last_ts_) {
      return Status::InvalidArgument(
          "temporal edge list is not sorted by timestamp (line " +
          std::to_string(line_number_) + ")");
    }
    last_ts_ = ts;
    any_event_ = true;
    // First-appearance id compaction, exactly like LoadTemporalEdgeList
    // (sequenced Map calls; see graph/io.cc).
    auto map_id = [this](uint64_t raw) {
      auto [it, inserted] =
          ids_.emplace(raw, static_cast<VertexId>(ids_.size()));
      (void)inserted;
      return it->second;
    };
    VertexId u = map_id(a);
    VertexId v = map_id(b);
    if (ts > boundary) {
      has_pending_ = true;
      pending_u_ = u;
      pending_v_ = v;
      pending_ts_ = ts;
      return Status::Ok();
    }
    differ_.Observe(u, v, ts);
  }
  return Status::Ok();
}

StatusOr<bool> StreamingEdgeFileSource::NextDelta(EdgeDelta* delta) {
  if (next_t_ > T_) return false;
  const int64_t boundary = WindowBoundary(t_min_, t_max_, next_t_, T_);
  // Ordering/grammar were validated by Open's metadata pass, so a parse
  // failure here means the file changed under us. That is external
  // input misbehaving at runtime — a Status the caller can surface as
  // an exit code, not a process abort. The window counter advances only
  // on success so the stream position stays well-defined for callers
  // that treat the failure as transient.
  AVT_RETURN_IF_ERROR(ConsumeUpTo(boundary));
  ++next_t_;
  differ_.EmitWindow(boundary - static_cast<int64_t>(window_days_), delta);
  return true;
}

}  // namespace avt
