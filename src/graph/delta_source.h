// Streaming delta ingestion: pull-based sources of edge-delta streams.
//
// The paper's cost model is O(churn) per transition, yet a driver that
// materializes a Graph per snapshot pays O(snapshot) just to feed the
// tracker. DeltaSource inverts that: an evolving network is an initial
// snapshot plus a pull-based stream of EdgeDelta transitions, and the
// engine (core/engine.h) drives any AvtTracker off the stream in
// O(m + Σ|Δ|) memory. Four source families cover the repo's workloads:
//
//   SequenceSource          — adapts an in-memory SnapshotSequence
//                             (deltas re-emitted verbatim, so a streamed
//                             replay is bit-identical to the historical
//                             ForEachSnapshot replay);
//   StreamingEdgeFileSource — reads a timestamped edge-list file
//                             incrementally, window-diffing it into
//                             per-period deltas without ever holding
//                             more than one window's pairs in memory;
//   ChurnSource /           — generator-backed streams (gen/
//   TemporalWindowSource      generator_source.h), one delta per pull;
//   CoalescingSource        — a decorator merging a fixed window of
//                             upstream deltas into one net-effect batch.
//
// Contract: InitialGraph() first, then NextDelta() until it returns
// false. Emitted deltas may reference vertex ids beyond the previous
// universe (streaming files discover vertices mid-stream); consumers
// grow via Graph::EnsureVertex — the engine does this automatically, or
// rejects the delta with a clear Status when growth is disabled,
// instead of letting the id trip an assertion deep in Graph::AddEdge.

#ifndef AVT_GRAPH_DELTA_SOURCE_H_
#define AVT_GRAPH_DELTA_SOURCE_H_

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/delta.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/snapshots.h"
#include "util/status.h"

namespace avt {

/// Pull-based stream of graph transitions.
class DeltaSource {
 public:
  virtual ~DeltaSource() = default;

  /// The stream's first snapshot G_0. Stable reference, valid for the
  /// source's lifetime. Streaming sources may report a smaller vertex
  /// universe than the stream eventually reaches.
  virtual const Graph& InitialGraph() const = 0;

  /// Pulls the next transition into `*delta` (overwriting it). Returns
  /// false when the stream is exhausted (`*delta` is then unspecified),
  /// true when a delta was produced, or a non-OK Status when the pull
  /// failed. A transient failure (kIoError) leaves the stream position
  /// unchanged: calling NextDelta again re-attempts the same pull, which
  /// is what RetryingSource builds on. kCorruption is terminal.
  virtual StatusOr<bool> NextDelta(EdgeDelta* delta) = 0;

  /// Ingestion-side fault counters, aggregated over the source's
  /// lifetime. Decorators that absorb faults (RetryingSource) report
  /// them here; plain sources report zeros. The engine folds these
  /// into RunSummary so retry activity is visible in run output.
  struct Stats {
    uint64_t retries = 0;           ///< re-attempted pulls
    uint64_t transient_errors = 0;  ///< transient errors absorbed
    /// Circuit-breaker counters (CircuitBreakerSource): transitions to
    /// the open state, and pulls rejected without touching the inner
    /// source while open. Zero without a breaker in the stack. Every
    /// decorator forwards-and-adds, so the counters survive any
    /// wrapper nesting order (pinned by tests/breaker_test.cc).
    uint64_t breaker_opens = 0;
    uint64_t breaker_rejected_pulls = 0;
  };
  virtual Stats SourceStats() const { return {}; }

  virtual std::string name() const = 0;
};

/// Adapts an in-memory SnapshotSequence (non-owning: the sequence must
/// outlive the source). Deltas are emitted verbatim — same batches,
/// same within-batch order — so replaying this source is bit-identical
/// to the historical materialized ForEachSnapshot replay.
class SequenceSource : public DeltaSource {
 public:
  explicit SequenceSource(const SnapshotSequence* sequence)
      : sequence_(sequence) {}

  const Graph& InitialGraph() const override { return sequence_->initial(); }

  StatusOr<bool> NextDelta(EdgeDelta* delta) override {
    if (next_ >= sequence_->deltas().size()) return false;
    *delta = sequence_->deltas()[next_++];
    return true;
  }

  std::string name() const override { return "sequence"; }

 private:
  const SnapshotSequence* sequence_;
  size_t next_ = 0;
};

/// Decorator: merges up to `window` upstream deltas into one canonical
/// net-effect delta per pull. Within the window only each edge's LAST
/// operation survives (an edge inserted then deleted collapses to its
/// deletion — a no-op on an edge that was absent before the window, so
/// it never costs a cascade; deleted-then-reinserted likewise collapses
/// to a no-op insertion). Self-loops and duplicates are dropped and the
/// batches sorted by EdgeDelta::Canonicalize, so the output is
/// deterministic regardless of upstream batch order. Replaying the
/// coalesced stream visits every `window`-th snapshot of the upstream
/// stream exactly (tests/delta_source_test.cc pins this against
/// materialized diffs). window == 1 is the identity: deltas pass
/// through verbatim, preserving bit-identical replay.
class CoalescingSource : public DeltaSource {
 public:
  CoalescingSource(std::unique_ptr<DeltaSource> inner, size_t window);

  const Graph& InitialGraph() const override {
    return inner_->InitialGraph();
  }

  /// A transient inner error propagates with the partially merged
  /// window retained, so a later call resumes the same window where it
  /// left off — coalescing composes with retry without re-pulling
  /// already-merged deltas.
  StatusOr<bool> NextDelta(EdgeDelta* delta) override;

  Stats SourceStats() const override { return inner_->SourceStats(); }

  std::string name() const override {
    return inner_->name() + "+coalesce" + std::to_string(window_);
  }

 private:
  std::unique_ptr<DeltaSource> inner_;
  size_t window_;
  DeltaBatcher batcher_;  // shared last-op-wins merge (graph/delta.h)
};

/// Incremental sliding-window differ over a time-ordered event stream:
/// the streaming equivalent of gen/temporal.h's WindowSnapshots. Feed
/// events in nondecreasing timestamp order with Observe; EmitWindow
/// then produces the canonical delta from the previously emitted window
/// to the window containing every pair whose most recent event is
/// strictly after `horizon`. Memory is O(pairs alive in the window):
/// pairs that age out are forgotten (a later event re-adds them), never
/// the whole history.
class WindowDiffer {
 public:
  /// Records one interaction (u != v, dense ids).
  void Observe(VertexId u, VertexId v, int64_t timestamp);

  /// Diffs against the previous emission and updates the window state.
  /// `delta` is overwritten with sorted, disjoint, canonical batches.
  void EmitWindow(int64_t horizon, EdgeDelta* delta);

 private:
  struct PairState {
    int64_t last_seen;
    bool present;  // member of the previously emitted window
  };
  std::unordered_map<uint64_t, PairState> pairs_;
};

/// Computes the end timestamp of period `t` of `T` equal periods over
/// [t_min, t_max] — the boundary rule of WindowSnapshots, shared so the
/// streamed and materialized paths cannot drift.
inline int64_t WindowBoundary(int64_t t_min, int64_t t_max, size_t t,
                              size_t T) {
  const double span =
      std::max<double>(1.0, static_cast<double>(t_max - t_min + 1));
  return t_min +
         static_cast<int64_t>(span * static_cast<double>(t) /
                              static_cast<double>(T)) -
         1;
}

/// What StreamingEdgeFileSource's metadata pre-scan learns about a
/// temporal edge-list file: the timestamp range that fixes the window
/// boundaries and the distinct-endpoint count that fixes the dense
/// universe. Callers that already know these (a binary edge-log header,
/// a prior scan, a generator) hand them to Open and skip the O(file)
/// pre-scan entirely — the fix for the two-pass ingestion cost.
struct TemporalFileMetadata {
  int64_t t_min = 0;
  int64_t t_max = 0;
  /// Distinct non-self-loop endpoint ids (the dense universe size).
  VertexId num_vertices = 0;
};

/// One pass over `path` (O(distinct ids) memory): validates grammar
/// and timestamp sortedness (kInvalidArgument on disorder or an empty
/// event set, kCorruption on malformed lines — LoadTemporalEdgeList's
/// taxonomy) and returns the stream metadata. This IS the pre-scan
/// StreamingEdgeFileSource::Open runs when no metadata is supplied.
StatusOr<TemporalFileMetadata> ScanTemporalMetadata(
    const std::string& path);

/// Streams a temporal edge-list file ("u v timestamp" lines, '#'/'%'
/// comments — the exact grammar of LoadTemporalEdgeList) into T
/// window-diffed transitions without materializing any snapshot beyond
/// G_0. Requirements and behavior:
///
///   * the file must be sorted by timestamp (the batch loader sorts in
///     memory; a stream cannot) — Open rejects out-of-order files with
///     a clear Status instead of silently mis-windowing;
///   * raw vertex ids are compacted to dense [0, n) in first-appearance
///     order, matching LoadTemporalEdgeList on a sorted file. The
///     metadata pass counts the distinct ids, so G_0 declares the FULL
///     dense universe up front (vertices isolated until first touched):
///     K-order positions of not-yet-active vertices then match the
///     batch loader's build exactly, which is what makes the replay
///     bit-identical rather than merely edge-set-equal. Memory stays
///     O(n + window pairs), never O(T * m). (Sources that cannot bound
///     their universe still work — the engine grows trackers on demand
///     via EnsureVertex; this source just never needs it.);
///   * replaying the stream is snapshot-for-snapshot bit-identical —
///     graphs, anchors, and follower counts, under every tracker
///     configuration — to materializing
///     WindowSnapshots(LoadTemporalEdgeList(path), T, window_days)
///     (enforced by tests/delta_source_test.cc, the differential fuzz,
///     and the PR-5 perf gate).
///
/// Open performs one cheap metadata pass (timestamp range, ordering
/// check, universe size — O(n) memory), then streams the file once
/// more as deltas are pulled.
class StreamingEdgeFileSource : public DeltaSource {
 public:
  /// Opens `path` for a T-snapshot stream with the given window width.
  /// Runs ScanTemporalMetadata first (one O(file) pre-scan), then
  /// streams the file once more as deltas are pulled.
  static StatusOr<std::unique_ptr<StreamingEdgeFileSource>> Open(
      const std::string& path, size_t T, uint32_t window_days);

  /// Same stream, but with the pre-scan skipped: `metadata` supplies
  /// the timestamp range and universe, so the file is read exactly
  /// once. The caller vouches for the metadata (from a previous scan,
  /// a convert run, or an external catalog); wrong values mis-window
  /// the stream the same way they would mis-window the batch loader.
  /// Sortedness is still verified incrementally while streaming, so a
  /// disordered file surfaces as kInvalidArgument mid-stream instead
  /// of silently wrong deltas.
  static StatusOr<std::unique_ptr<StreamingEdgeFileSource>> Open(
      const std::string& path, size_t T, uint32_t window_days,
      const TemporalFileMetadata& metadata);

  const Graph& InitialGraph() const override { return initial_; }
  StatusOr<bool> NextDelta(EdgeDelta* delta) override;
  std::string name() const override { return "file-stream"; }

  /// Vertex ids mapped by the delta stream so far (<= the declared
  /// universe; reaches it once every vertex's first event streamed by).
  VertexId NumVerticesSeen() const {
    return static_cast<VertexId>(ids_.size());
  }

 private:
  StreamingEdgeFileSource() = default;

  /// Feeds every event with timestamp <= `boundary` into the differ.
  /// Leaves the first later event pending. Returns a Status only for
  /// malformed lines (ordering was validated by Open).
  Status ConsumeUpTo(int64_t boundary);

  std::ifstream file_;
  std::unordered_map<uint64_t, VertexId> ids_;
  WindowDiffer differ_;
  Graph initial_;
  std::string path_;
  size_t T_ = 0;
  uint32_t window_days_ = 0;
  size_t next_t_ = 2;  // next window to emit (window 1 built G_0)
  int64_t t_min_ = 0;
  int64_t t_max_ = 0;
  size_t line_number_ = 0;
  int64_t last_ts_ = 0;     // incremental sortedness check
  bool any_event_ = false;
  bool has_pending_ = false;
  VertexId pending_u_ = 0;
  VertexId pending_v_ = 0;
  int64_t pending_ts_ = 0;
};

}  // namespace avt

#endif  // AVT_GRAPH_DELTA_SOURCE_H_
