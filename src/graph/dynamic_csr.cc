#include "graph/dynamic_csr.h"

#include <algorithm>

namespace avt {

void DynamicCsr::Rebuild(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  slabs_.assign(static_cast<size_t>(n), Slab{});
  live_ = 0;
  dead_ = 0;
  relocations_ = 0;
  compactions_ = 0;

  uint64_t total = 0;
  for (VertexId u = 0; u < n; ++u) {
    const uint32_t deg = graph.Degree(u);
    slabs_[u].offset = total;
    slabs_[u].degree = deg;
    slabs_[u].capacity = deg + SlackFor(deg);
    total += slabs_[u].capacity;
    live_ += deg;
  }
  targets_.assign(total, 0);
  for (VertexId u = 0; u < n; ++u) {
    std::span<const VertexId> nbrs = graph.Neighbors(u);
    std::copy(nbrs.begin(), nbrs.end(),
              targets_.begin() + static_cast<ptrdiff_t>(slabs_[u].offset));
  }
}

void DynamicCsr::AddEdge(VertexId u, VertexId v) {
  AVT_DCHECK(u < NumVertices() && v < NumVertices() && u != v);
  Append(u, v);
  Append(v, u);
  live_ += 2;
  MaybeCompact();
}

void DynamicCsr::RemoveEdge(VertexId u, VertexId v) {
  AVT_DCHECK(u < NumVertices() && v < NumVertices() && u != v);
  EraseOne(u, v);
  EraseOne(v, u);
  live_ -= 2;
}

void DynamicCsr::Append(VertexId u, VertexId v) {
  if (slabs_[u].degree == slabs_[u].capacity) {
    Relocate(u, slabs_[u].degree + 1);
  }
  targets_[slabs_[u].offset + slabs_[u].degree] = v;
  ++slabs_[u].degree;
}

void DynamicCsr::EraseOne(VertexId u, VertexId v) {
  Slab& slab = slabs_[u];
  VertexId* data = targets_.data() + slab.offset;
  for (uint32_t i = 0; i < slab.degree; ++i) {
    if (data[i] == v) {
      data[i] = data[slab.degree - 1];
      --slab.degree;
      return;
    }
  }
  AVT_CHECK_MSG(false, "DynamicCsr::RemoveEdge: edge absent from mirror");
}

void DynamicCsr::Relocate(VertexId u, uint32_t min_capacity) {
  // Geometric growth caps relocations per vertex at O(log deg); the
  // abandoned slab is reclaimed by the next compaction.
  Slab& slab = slabs_[u];
  const uint32_t new_capacity =
      std::max({min_capacity, 2 * slab.capacity, uint32_t{4}});
  const uint64_t new_offset = targets_.size();
  targets_.resize(new_offset + new_capacity);
  std::copy(targets_.begin() + static_cast<ptrdiff_t>(slab.offset),
            targets_.begin() +
                static_cast<ptrdiff_t>(slab.offset + slab.degree),
            targets_.begin() + static_cast<ptrdiff_t>(new_offset));
  dead_ += slab.capacity;
  slab.offset = new_offset;
  slab.capacity = new_capacity;
  ++relocations_;
}

void DynamicCsr::MaybeCompact() {
  // Compact when stranded garbage exceeds the live payload (plus a
  // floor so tiny graphs don't thrash): total storage then stays within
  // a constant factor of 2m while each live entry is moved at most once
  // per doubling of garbage — amortized O(1) per update.
  if (dead_ > live_ + 1024) Compact();
}

void DynamicCsr::Compact() {
  const VertexId n = NumVertices();
  uint64_t total = 0;
  // First pass: new slab geometry (fresh slack, like Rebuild).
  std::vector<uint64_t> new_offsets(n);
  for (VertexId u = 0; u < n; ++u) {
    new_offsets[u] = total;
    total += slabs_[u].degree + SlackFor(slabs_[u].degree);
  }
  std::vector<VertexId> packed(total);
  for (VertexId u = 0; u < n; ++u) {
    Slab& slab = slabs_[u];
    std::copy(targets_.begin() + static_cast<ptrdiff_t>(slab.offset),
              targets_.begin() +
                  static_cast<ptrdiff_t>(slab.offset + slab.degree),
              packed.begin() + static_cast<ptrdiff_t>(new_offsets[u]));
    slab.offset = new_offsets[u];
    slab.capacity = slab.degree + SlackFor(slab.degree);
  }
  targets_ = std::move(packed);
  dead_ = 0;
  ++compactions_;
}

}  // namespace avt
