// Delta-maintained CSR: the bandwidth-bound scan path under edge churn.
//
// CsrView (csr.h) gives the scan-heavy phases contiguous neighbor spans,
// but it is frozen: one mutation of the source graph and the snapshot is
// stale, which is why the incremental tracker historically fell back to
// the pointer-chasing dynamic adjacency. DynamicCsr closes that gap: a
// packed adjacency whose per-vertex slabs carry slack slots so the
// maintainer can patch it in place on every InsertEdge / RemoveEdge
// instead of rebuilding O(n + m) state per delta.
//
// Layout: one `targets_` array holding a slab per vertex at
// [offsets_[v], offsets_[v] + capacity_[v]), of which the first
// degree_[v] entries are live. Inserts append into the slack; a full
// slab is relocated to a fresh, geometrically larger slab at the end of
// the array (the old slab becomes garbage), and when garbage exceeds
// the live payload the whole array is compacted back to packed slabs
// with fresh slack — classic slack-slotted storage, amortized O(1)
// moved entries per update.
//
// ORDER CONTRACT (load-bearing): within each slab the neighbor order is
// exactly Graph's — append on insert, swap-with-back on delete — and
// relocation/compaction copy slabs verbatim. Every snapshot of a
// DynamicCsr mirroring a Graph therefore iterates neighbors in the
// identical order, so the decomposition peel order, K-order tags, and
// all lazy/eager bit-identical pins hold whether an algorithm scans the
// graph, a CsrView, or this structure (see csr.h for why that matters).
// tests/dynamic_csr_test.cc and the differential fuzz soak pin the
// equivalence after every mutation.
//
// DynamicCsr exposes the same read surface as Graph and CsrView
// (NumVertices / Degree / Neighbors returning a contiguous span), which
// is the adjacency-view concept every templated scan in the repo
// (FollowerOracle cascades, KOrder builds, decomposition) is written
// against. Readers hold no pointers into `targets_` across mutations:
// spans are fetched per call and a patch may reallocate.

#ifndef AVT_GRAPH_DYNAMIC_CSR_H_
#define AVT_GRAPH_DYNAMIC_CSR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace avt {

/// Mutable slack-slotted CSR mirror of a Graph's adjacency.
class DynamicCsr {
 public:
  DynamicCsr() = default;

  /// Snapshots `graph` into packed slabs with fresh slack. Neighbor
  /// order per vertex is copied verbatim.
  void Rebuild(const Graph& graph);

  /// Mirrors Graph::EnsureVertex: appends isolated vertices (empty
  /// zero-capacity slabs — the first Append relocates to a real slab)
  /// until the universe holds `count` ids. Streaming sources grow the
  /// maintained graph mid-stream and the mirror must follow in lockstep.
  void EnsureVertices(VertexId count) {
    if (count > NumVertices()) slabs_.resize(count, Slab{});
  }

  /// Mirrors Graph::AddEdge AFTER the graph accepted it (the caller
  /// guarantees u != v and the edge was absent): appends v to u's slab
  /// and u to v's slab, exactly like the dynamic adjacency's push_back.
  void AddEdge(VertexId u, VertexId v);

  /// Mirrors Graph::RemoveEdge AFTER the graph accepted it (the caller
  /// guarantees the edge was present): in each endpoint's slab the
  /// removed entry is overwritten by the last live entry and the degree
  /// shrinks — the same swap-with-back Graph performs, preserving the
  /// order equivalence.
  void RemoveEdge(VertexId u, VertexId v);

  VertexId NumVertices() const {
    return static_cast<VertexId>(slabs_.size());
  }
  uint64_t NumEdges() const { return live_ / 2; }

  uint32_t Degree(VertexId u) const {
    AVT_DCHECK(u < NumVertices());
    return slabs_[u].degree;
  }

  std::span<const VertexId> Neighbors(VertexId u) const {
    AVT_DCHECK(u < NumVertices());
    const Slab& slab = slabs_[u];
    return {targets_.data() + slab.offset, slab.degree};
  }

  /// Slab capacity of u (live + slack slots) — instrumentation/tests.
  uint32_t CapacityOf(VertexId u) const { return slabs_[u].capacity; }

  /// Garbage entries currently stranded by relocations.
  uint64_t DeadSlots() const { return dead_; }

  /// Lifetime counters: slab relocations (spills) and whole-array
  /// compactions since the last Rebuild.
  uint64_t relocations() const { return relocations_; }
  uint64_t compactions() const { return compactions_; }

 private:
  /// Per-vertex slab descriptor. Exactly 16 bytes so every descriptor
  /// read is one cache line (the scan hot path loads slabs_[u] once per
  /// visited vertex; splitting offset/degree/capacity across parallel
  /// arrays would triple the metadata misses).
  struct Slab {
    uint64_t offset = 0;    // slab start in targets_
    uint32_t degree = 0;    // live entries
    uint32_t capacity = 0;  // slab size (live + slack)
  };
  static_assert(sizeof(Slab) == 16, "keep the descriptor one load wide");

  /// Appends `v` to u's slab, relocating to a larger slab if full.
  void Append(VertexId u, VertexId v);
  /// Swap-with-back removal of `v` from u's slab.
  void EraseOne(VertexId u, VertexId v);
  /// Moves u's slab to a fresh slab of at least `min_capacity` at the
  /// end of `targets_`; the old slab becomes garbage.
  void Relocate(VertexId u, uint32_t min_capacity);
  /// Rewrites `targets_` as packed slabs with fresh slack when garbage
  /// dominates the live payload.
  void MaybeCompact();
  void Compact();

  /// Slack reserved beyond the current degree at (re)build/compaction:
  /// proportional so hubs absorb bursts, floored so low-degree vertices
  /// survive a couple of inserts without relocating.
  static uint32_t SlackFor(uint32_t degree) { return degree / 8 + 2; }

  std::vector<Slab> slabs_;        // one descriptor per vertex
  std::vector<VertexId> targets_;  // slabs + stranded garbage
  uint64_t live_ = 0;              // sum of degrees == 2m
  uint64_t dead_ = 0;              // garbage entries in targets_
  uint64_t relocations_ = 0;
  uint64_t compactions_ = 0;
};

}  // namespace avt

#endif  // AVT_GRAPH_DYNAMIC_CSR_H_
