#include "graph/edge_log.h"

#include <cstring>

#include "util/crc32.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace avt {

namespace {

// Little-endian fixed-width codecs, local so the graph layer does not
// reach up into durability/serde.h.
void PutU32(std::string* out, uint32_t value) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>(value >> (8 * i));
  out->append(bytes, 4);
}

void PutU64(std::string* out, uint64_t value) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(value >> (8 * i));
  out->append(bytes, 8);
}

uint32_t ReadU32(const uint8_t* p) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) value |= static_cast<uint32_t>(p[i]) << (8 * i);
  return value;
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) value |= static_cast<uint64_t>(p[i]) << (8 * i);
  return value;
}

// LEB128. Full uint64_t range so 0 and 0xFFFFFFFF ids round-trip.
void PutVarint(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

bool GetVarint(const uint8_t* data, size_t size, size_t* pos,
               uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift < 64 && *pos < size; shift += 7) {
    const uint8_t byte = data[(*pos)++];
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
  }
  return false;  // ran off the payload or a >64-bit varint
}

// Packs one canonical batch as (delta-u, delta-v) varints. Returns
// kInvalidArgument if the batch is not canonical — sortedness is what
// makes the deltas nonnegative, so it is a precondition, not a hint.
Status EncodeBatch(const std::vector<Edge>& edges, std::string* out,
                   uint64_t* max_endpoint, bool* any_endpoint) {
  VertexId prev_u = 0;
  VertexId prev_v = 0;
  bool first = true;
  for (const Edge& e : edges) {
    if (e.u == e.v) {
      return Status::InvalidArgument(
          "edge log frame contains a self-loop; canonicalize the delta");
    }
    if (!first &&
        !(prev_u < e.u || (prev_u == e.u && prev_v < e.v))) {
      return Status::InvalidArgument(
          "edge log frame batch is not sorted+unique; canonicalize the "
          "delta");
    }
    const uint64_t du = static_cast<uint64_t>(e.u) - prev_u;
    if (du != 0) prev_v = 0;
    PutVarint(out, du);
    PutVarint(out, static_cast<uint64_t>(e.v) - prev_v);
    prev_u = e.u;
    prev_v = e.v;
    if (e.v > *max_endpoint || !*any_endpoint) *max_endpoint = e.v;
    *any_endpoint = true;
    first = false;
  }
  return Status::Ok();
}

// Unpacks `count` edges. Pure bounds-checked decoding: any shape of
// damage returns false (the caller reports kCorruption), never UB.
bool DecodeBatch(const uint8_t* data, size_t size, size_t* pos,
                 uint64_t count, std::vector<Edge>* out) {
  out->clear();
  out->reserve(static_cast<size_t>(count));
  VertexId prev_u = 0;
  VertexId prev_v = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t du = 0, dv = 0;
    if (!GetVarint(data, size, pos, &du)) return false;
    if (!GetVarint(data, size, pos, &dv)) return false;
    const uint64_t u = static_cast<uint64_t>(prev_u) + du;
    const uint64_t v = (du != 0 ? 0ULL : static_cast<uint64_t>(prev_v)) + dv;
    if (u > 0xFFFFFFFFULL || v > 0xFFFFFFFFULL || u >= v) {
      return false;  // id overflow, self-loop, or broken normalization
    }
    out->push_back(Edge(static_cast<VertexId>(u), static_cast<VertexId>(v)));
    prev_u = static_cast<VertexId>(u);
    prev_v = static_cast<VertexId>(v);
  }
  return true;
}

// The 32 header fields after the magic, as written both at Create
// (placeholders) and at Finish (patched).
std::string EncodeHeaderFields(uint32_t index_every, uint64_t num_vertices,
                               uint64_t num_frames, uint64_t index_offset) {
  std::string fields;
  PutU32(&fields, 1);  // version
  PutU32(&fields, index_every);
  PutU64(&fields, num_vertices);
  PutU64(&fields, num_frames);
  PutU64(&fields, index_offset);
  return fields;
}

Status WriteFrame(std::FILE* file, const std::string& payload,
                  uint64_t* offset) {
  std::string head;
  PutU32(&head, static_cast<uint32_t>(payload.size()));
  PutU32(&head, Crc32(payload.data(), payload.size()));
  if (std::fwrite(head.data(), 1, head.size(), file) != head.size() ||
      std::fwrite(payload.data(), 1, payload.size(), file) !=
          payload.size()) {
    return Status::IoError("edge log write failed");
  }
  *offset += head.size() + payload.size();
  return Status::Ok();
}

}  // namespace

namespace edge_log_internal {

StatusOr<std::unique_ptr<MappedFile>> MappedFile::Open(
    const std::string& path) {
  auto file = std::unique_ptr<MappedFile>(new MappedFile());
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open edge log " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("cannot stat edge log " + path);
  }
  file->size_ = static_cast<size_t>(st.st_size);
  if (file->size_ > 0) {
    void* mapping =
        ::mmap(nullptr, file->size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapping == MAP_FAILED) {
      ::close(fd);
      return Status::IoError("cannot mmap edge log " + path);
    }
    file->data_ = static_cast<const uint8_t*>(mapping);
    file->mapped_ = true;
  }
  ::close(fd);  // the mapping outlives the descriptor
  return file;
#else
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    return Status::NotFound("cannot open edge log " + path);
  }
  std::fseek(in, 0, SEEK_END);
  const long end = std::ftell(in);
  std::fseek(in, 0, SEEK_SET);
  file->size_ = end > 0 ? static_cast<size_t>(end) : 0;
  if (file->size_ > 0) {
    uint8_t* buffer = new uint8_t[file->size_];
    if (std::fread(buffer, 1, file->size_, in) != file->size_) {
      delete[] buffer;
      std::fclose(in);
      return Status::IoError("cannot read edge log " + path);
    }
    file->data_ = buffer;
  }
  std::fclose(in);
  return file;
#endif
}

MappedFile::~MappedFile() {
  if (data_ == nullptr) return;
#if defined(__unix__) || defined(__APPLE__)
  if (mapped_) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
    return;
  }
#endif
  delete[] data_;
}

}  // namespace edge_log_internal

// --- EdgeLogWriter -----------------------------------------------------

constexpr char EdgeLogLayout::kMagic[];
constexpr size_t EdgeLogLayout::kMagicSize;
constexpr size_t EdgeLogLayout::kHeaderFieldsSize;
constexpr size_t EdgeLogLayout::kHeaderSize;
constexpr uint64_t EdgeLogLayout::kUnfinalized;

StatusOr<std::unique_ptr<EdgeLogWriter>> EdgeLogWriter::Create(
    const std::string& path, uint32_t index_every) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot create edge log " + path);
  }
  auto writer =
      std::unique_ptr<EdgeLogWriter>(new EdgeLogWriter(file, index_every));
  // Placeholder header: counts are kUnfinalized until Finish patches
  // them, which is exactly what gives an abandoned log its readable
  // valid-prefix semantics.
  std::string header(EdgeLogLayout::kMagic, EdgeLogLayout::kMagicSize);
  const std::string fields = EncodeHeaderFields(
      index_every, EdgeLogLayout::kUnfinalized, EdgeLogLayout::kUnfinalized,
      /*index_offset=*/0);
  header += fields;
  PutU32(&header, Crc32(fields.data(), fields.size()));
  if (std::fwrite(header.data(), 1, header.size(), file) != header.size()) {
    return Status::IoError("cannot write edge log header to " + path);
  }
  writer->offset_ = header.size();
  return writer;
}

EdgeLogWriter::~EdgeLogWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status EdgeLogWriter::Append(const EdgeDelta& delta) {
  if (finished_) {
    return Status::InvalidArgument("edge log writer already finished");
  }
  scratch_.clear();
  PutVarint(&scratch_, delta.insertions.size());
  PutVarint(&scratch_, delta.deletions.size());
  AVT_RETURN_IF_ERROR(EncodeBatch(delta.insertions, &scratch_,
                                  &max_endpoint_, &any_endpoint_));
  AVT_RETURN_IF_ERROR(EncodeBatch(delta.deletions, &scratch_,
                                  &max_endpoint_, &any_endpoint_));
  if (index_every_ > 0 && frames_ % index_every_ == 0) {
    index_.push_back(offset_);
  }
  AVT_RETURN_IF_ERROR(WriteFrame(file_, scratch_, &offset_));
  ++frames_;
  return Status::Ok();
}

Status EdgeLogWriter::AppendInitial(const Graph& initial) {
  EdgeDelta frame;
  frame.insertions = initial.CollectEdges();  // sorted unique by contract
  const uint64_t declared = initial.NumVertices();
  AVT_RETURN_IF_ERROR(Append(frame));
  // Isolated trailing vertices carry no edges; remember the declared
  // universe so Finish(0) still covers them.
  if (declared > 0) {
    if (!any_endpoint_ || declared - 1 > max_endpoint_) {
      max_endpoint_ = declared - 1;
    }
    any_endpoint_ = true;
  }
  return Status::Ok();
}

Status EdgeLogWriter::Finish(VertexId num_vertices) {
  if (finished_) {
    return Status::InvalidArgument("edge log writer already finished");
  }
  uint64_t universe = num_vertices;
  if (universe == 0) {
    universe = any_endpoint_ ? max_endpoint_ + 1 : 0;
  } else if (any_endpoint_ && universe <= max_endpoint_) {
    return Status::InvalidArgument(
        "edge log num_vertices does not cover every endpoint written");
  }

  uint64_t index_offset = 0;
  if (index_every_ > 0) {
    index_offset = offset_;
    std::string payload;
    PutU64(&payload, index_.size());
    for (uint64_t entry : index_) PutU64(&payload, entry);
    AVT_RETURN_IF_ERROR(WriteFrame(file_, payload, &offset_));
  }

  const std::string fields =
      EncodeHeaderFields(index_every_, universe, frames_, index_offset);
  std::string patch = fields;
  PutU32(&patch, Crc32(fields.data(), fields.size()));
  if (std::fseek(file_, static_cast<long>(EdgeLogLayout::kMagicSize),
                 SEEK_SET) != 0 ||
      std::fwrite(patch.data(), 1, patch.size(), file_) != patch.size() ||
      std::fflush(file_) != 0) {
    return Status::IoError("cannot finalize edge log header");
  }
  finished_ = true;
  return Status::Ok();
}

// --- EdgeLogReader -----------------------------------------------------

StatusOr<std::unique_ptr<EdgeLogReader>> EdgeLogReader::Open(
    const std::string& path) {
  auto mapped = edge_log_internal::MappedFile::Open(path);
  if (!mapped.ok()) return mapped.status();

  auto reader = std::unique_ptr<EdgeLogReader>(new EdgeLogReader());
  reader->map_ = std::move(mapped).value();
  const uint8_t* data = reader->map_->data();
  const size_t size = reader->map_->size();

  if (size < EdgeLogLayout::kHeaderSize) {
    return Status::Corruption("edge log " + path +
                              " is shorter than its header");
  }
  if (std::memcmp(data, EdgeLogLayout::kMagic, EdgeLogLayout::kMagicSize) !=
      0) {
    return Status::Corruption("edge log " + path + " has a bad magic");
  }
  const uint8_t* fields = data + EdgeLogLayout::kMagicSize;
  const uint32_t stored_crc =
      ReadU32(fields + EdgeLogLayout::kHeaderFieldsSize);
  if (Crc32(fields, EdgeLogLayout::kHeaderFieldsSize) != stored_crc) {
    return Status::Corruption("edge log " + path +
                              " header checksum mismatch");
  }
  const uint32_t version = ReadU32(fields);
  if (version != 1) {
    return Status::InvalidArgument("edge log " + path +
                                   " has unsupported version " +
                                   std::to_string(version));
  }
  reader->index_every_ = ReadU32(fields + 4);
  reader->num_vertices_ = ReadU64(fields + 8);
  reader->num_frames_ = ReadU64(fields + 16);
  reader->index_offset_ = ReadU64(fields + 24);
  reader->cursor_ = EdgeLogLayout::kHeaderSize;

  if (reader->finalized() && reader->index_offset_ != 0) {
    // Decode and sanity-check the seek index frame.
    if (reader->index_offset_ < EdgeLogLayout::kHeaderSize ||
        reader->index_offset_ + 8 > size) {
      return Status::Corruption("edge log seek index out of bounds");
    }
    const uint8_t* frame = data + reader->index_offset_;
    const uint32_t len = ReadU32(frame);
    const uint32_t crc = ReadU32(frame + 4);
    if (len > size - reader->index_offset_ - 8 ||
        Crc32(frame + 8, len) != crc) {
      return Status::Corruption("edge log seek index damaged");
    }
    const uint8_t* payload = frame + 8;
    if (len < 8) return Status::Corruption("edge log seek index truncated");
    const uint64_t count = ReadU64(payload);
    if (len != 8 + count * 8) {
      return Status::Corruption("edge log seek index has wrong size");
    }
    const uint64_t expected =
        reader->index_every_ == 0
            ? 0
            : (reader->num_frames_ + reader->index_every_ - 1) /
                  reader->index_every_;
    if (count != expected) {
      return Status::Corruption("edge log seek index entry count " +
                                std::to_string(count) + " != expected " +
                                std::to_string(expected));
    }
    uint64_t previous = 0;
    for (uint64_t i = 0; i < count; ++i) {
      const uint64_t entry = ReadU64(payload + 8 + i * 8);
      if (entry < EdgeLogLayout::kHeaderSize ||
          entry >= reader->index_offset_ ||
          (i > 0 && entry <= previous)) {
        return Status::Corruption("edge log seek index entries invalid");
      }
      previous = entry;
      reader->index_.push_back(entry);
    }
  }
  return reader;
}

VertexId EdgeLogReader::num_vertices() const {
  if (num_vertices_ == EdgeLogLayout::kUnfinalized) return 0;
  return static_cast<VertexId>(num_vertices_);
}

size_t EdgeLogReader::FrameRegionEnd() const {
  if (finalized() && index_offset_ != 0) {
    return static_cast<size_t>(index_offset_);
  }
  return map_->size();
}

StatusOr<bool> EdgeLogReader::NextFrame(EdgeDelta* delta) {
  if (finalized() && frame_index_ >= num_frames_) return false;
  const size_t end = FrameRegionEnd();
  const uint8_t* data = map_->data();

  // Frame header. An unfinalized log that runs out of bytes here is a
  // torn tail (the writer died mid-frame): clean end of stream. A
  // FINALIZED log running out below its declared count lost data.
  if (cursor_ + 8 > end) {
    if (finalized()) {
      return Status::Corruption(
          "edge log holds fewer frames than its header declares");
    }
    return false;
  }
  const uint32_t len = ReadU32(data + cursor_);
  const uint32_t crc = ReadU32(data + cursor_ + 4);
  if (len > end - cursor_ - 8) {
    if (finalized()) {
      return Status::Corruption("edge log final frame truncated below "
                                "its declared length");
    }
    return false;  // torn final frame: valid prefix ends here
  }
  const uint8_t* payload = data + cursor_ + 8;
  if (Crc32(payload, len) != crc) {
    return Status::Corruption("edge log frame " +
                              std::to_string(frame_index_) +
                              " checksum mismatch");
  }

  size_t pos = 0;
  uint64_t n_ins = 0, n_del = 0;
  if (!GetVarint(payload, len, &pos, &n_ins) ||
      !GetVarint(payload, len, &pos, &n_del) || n_ins > len || n_del > len ||
      2 * (n_ins + n_del) > len - pos) {
    // Counts that cannot fit in the payload (every edge costs >= 2
    // bytes) are damage the CRC failed to catch — reject before the
    // reserve below can balloon.
    return Status::Corruption("edge log frame " +
                              std::to_string(frame_index_) +
                              " has invalid batch counts");
  }
  if (!DecodeBatch(payload, len, &pos, n_ins, &delta->insertions) ||
      !DecodeBatch(payload, len, &pos, n_del, &delta->deletions) ||
      pos != len) {
    return Status::Corruption("edge log frame " +
                              std::to_string(frame_index_) +
                              " payload does not decode to its length");
  }
  cursor_ += 8 + static_cast<size_t>(len);
  ++frame_index_;
  return true;
}

Status EdgeLogReader::SeekToFrame(uint64_t index) {
  if (finalized() && index > num_frames_) {
    return Status::InvalidArgument(
        "seek to frame " + std::to_string(index) + " past the log's " +
        std::to_string(num_frames_) + " frames");
  }
  uint64_t frame = 0;
  size_t offset = EdgeLogLayout::kHeaderSize;
  if (!index_.empty() && index_every_ > 0) {
    uint64_t entry = index / index_every_;
    if (entry >= index_.size()) entry = index_.size() - 1;
    frame = entry * index_every_;
    offset = static_cast<size_t>(index_[entry]);
  }
  // Forward skip by length fields only; CRCs are checked on decode.
  const size_t end = FrameRegionEnd();
  const uint8_t* data = map_->data();
  while (frame < index) {
    if (offset + 8 > end) {
      return finalized()
                 ? Status::Corruption(
                       "edge log ends below its declared frame count")
                 : Status::InvalidArgument(
                       "seek past the end of an unfinalized edge log");
    }
    const uint32_t len = ReadU32(data + offset);
    if (len > end - offset - 8) {
      return finalized()
                 ? Status::Corruption("edge log frame truncated")
                 : Status::InvalidArgument(
                       "seek past the end of an unfinalized edge log");
    }
    offset += 8 + static_cast<size_t>(len);
    ++frame;
  }
  cursor_ = offset;
  frame_index_ = frame;
  return Status::Ok();
}

// --- MmapEdgeLogSource -------------------------------------------------

StatusOr<std::unique_ptr<MmapEdgeLogSource>> MmapEdgeLogSource::Open(
    const std::string& path) {
  auto opened = EdgeLogReader::Open(path);
  if (!opened.ok()) return opened.status();

  auto source = std::unique_ptr<MmapEdgeLogSource>(new MmapEdgeLogSource());
  source->reader_ = std::move(opened).value();

  EdgeDelta first;
  StatusOr<bool> more = source->reader_->NextFrame(&first);
  if (!more.ok()) return more.status();
  if (!more.value()) {
    return Status::InvalidArgument("edge log " + path +
                                   " has no initial frame");
  }
  if (!first.deletions.empty()) {
    return Status::Corruption("edge log " + path +
                              " initial frame contains deletions");
  }

  VertexId universe = source->reader_->num_vertices();
  if (universe == 0) {
    // Unfinalized log: no declared universe; cover frame 0 and let the
    // engine grow trackers as later deltas discover vertices.
    for (const Edge& e : first.insertions) {
      if (e.v + 1 > universe) universe = e.v + 1;
    }
  }
  source->initial_ = Graph(universe);
  for (const Edge& e : first.insertions) {
    if (e.v >= universe) {
      return Status::Corruption(
          "edge log " + path +
          " initial frame exceeds its declared vertex universe");
    }
    source->initial_.AddEdge(e.u, e.v);
  }
  return source;
}

StatusOr<bool> MmapEdgeLogSource::NextDelta(EdgeDelta* delta) {
  return reader_->NextFrame(delta);
}

// --- Conversion --------------------------------------------------------

StatusOr<EdgeLogWriteStats> WriteEdgeLog(DeltaSource& source,
                                         const std::string& path,
                                         uint32_t index_every) {
  auto created = EdgeLogWriter::Create(path, index_every);
  if (!created.ok()) return created.status();
  std::unique_ptr<EdgeLogWriter> writer = std::move(created).value();

  const Graph& initial = source.InitialGraph();
  Status status = writer->AppendInitial(initial);
  EdgeLogWriteStats stats;
  EdgeDelta delta;
  while (status.ok()) {
    StatusOr<bool> more = source.NextDelta(&delta);
    if (!more.ok()) {
      status = more.status();
      break;
    }
    if (!more.value()) break;
    // Sources are free to emit unsorted batches (generators do);
    // the on-disk form is always canonical, which replay-equivalence
    // (pinned by the differential fuzz) makes safe.
    delta.Canonicalize();
    status = writer->Append(delta);
    if (status.ok()) ++stats.deltas;
  }
  if (status.ok()) status = writer->Finish();
  if (!status.ok()) {
    writer.reset();
    std::remove(path.c_str());  // do not leave a half-written artifact
    return status;
  }
  stats.bytes = writer->bytes_written();
  stats.num_vertices = writer->universe_seen();
  return stats;
}

StatusOr<EdgeLogWriteStats> ConvertTemporalToEdgeLog(
    const std::string& text_path, size_t T, uint32_t window_days,
    const std::string& out_path, uint32_t index_every) {
  // One scan, then one streaming pass (the satellite fix: the source
  // is handed the metadata, so conversion reads the text exactly
  // twice total instead of three times).
  StatusOr<TemporalFileMetadata> meta = ScanTemporalMetadata(text_path);
  if (!meta.ok()) return meta.status();
  auto opened =
      StreamingEdgeFileSource::Open(text_path, T, window_days, meta.value());
  if (!opened.ok()) return opened.status();
  StatusOr<EdgeLogWriteStats> stats =
      WriteEdgeLog(*opened.value(), out_path, index_every);
  if (!stats.ok()) return stats.status();
  // The streamed deltas carry the full dense universe in G_0 already,
  // so the header's count matches the text stream's declared universe.
  return stats;
}

}  // namespace avt
