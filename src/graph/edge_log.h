// Binary temporal edge log: the compact on-disk delta-stream format
// behind `avt_cli stream --source=binlog`, `avt_cli convert`, and the
// scalability tier (bench/scalability.cc).
//
// Every benchmark before PR 10 parsed its stream from text — two
// passes of istringstream over "u v t" lines per run, O(file) each.
// At the paper's real-graph scales (millions of vertices, tens of
// millions of events) that parse dominates ingestion, so this format
// stores the WINDOWED stream itself: one frame per transition, already
// diffed, varint-packed, CRC-framed, and preceded by a header that
// declares the dense vertex universe and delta count up front (no
// metadata pre-scan, and tracker growth is a single reserve).
//
// File layout (all fixed-width fields little-endian):
//
//   [8-byte magic "AVTELG1\n"]
//   [header: u32 version, u32 index_every,
//            u64 num_vertices, u64 num_frames, u64 index_offset,
//            u32 crc32(header fields above)]
//   frame*                      -- frame 0 is G_0 (insertions only),
//                                  frames 1..num_frames-1 are deltas
//   [seek index frame]          -- at index_offset when index_every > 0
//
//   frame   := [u32 payload_len][u32 crc32(payload)][payload]
//   payload := varint n_insertions, varint n_deletions,
//              packed insertion edges, packed deletion edges
//   index   := framed like a frame;
//              payload := u64 count, count * u64 byte offsets
//                         (offset of frame i*index_every)
//
// Edge packing: a canonical batch is sorted and unique, so each edge
// is stored as varint(u - prev_u) then varint(v - prev_v), where
// prev_v resets to 0 whenever u advances — consecutive edges of one
// vertex cost ~2 bytes. Varints are LEB128 over the full id range
// (0 and 0xFFFFFFFF round-trip; tests/edge_log_test.cc pins both).
//
// Failure discipline (the WAL's, durability/wal.h): the header is
// written with placeholder counts at Create and patched by Finish, so
// a writer that died mid-stream leaves an UNFINALIZED log — readers
// stream its intact frames and treat an incomplete final frame as a
// torn tail (clean end of stream, valid prefix). A FINALIZED log that
// holds fewer intact frames than its header claims, a CRC mismatch, a
// bad magic, or a frame that decodes to the wrong byte count is
// kCorruption — the bytes are not what was written. Damaged files
// never crash the reader (every path is a Status).

#ifndef AVT_GRAPH_EDGE_LOG_H_
#define AVT_GRAPH_EDGE_LOG_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "graph/delta.h"
#include "graph/delta_source.h"
#include "graph/graph.h"
#include "util/status.h"

namespace avt {

namespace edge_log_internal {

/// Whole-file mapping (mmap on POSIX, a heap buffer elsewhere so the
/// format stays usable on platforms without <sys/mman.h>).
class MappedFile {
 public:
  static StatusOr<std::unique_ptr<MappedFile>> Open(
      const std::string& path);
  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  MappedFile() = default;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;           // true: munmap; false: delete[]
};

}  // namespace edge_log_internal

/// Fixed layout constants (exposed for tests that surgically damage
/// files byte-by-byte).
struct EdgeLogLayout {
  static constexpr char kMagic[9] = "AVTELG1\n";  // 8 bytes + NUL
  static constexpr size_t kMagicSize = 8;
  static constexpr size_t kHeaderFieldsSize = 4 + 4 + 8 + 8 + 8;
  static constexpr size_t kHeaderSize =
      kMagicSize + kHeaderFieldsSize + 4;  // + header crc
  /// num_vertices / num_frames value meaning "writer never finalized".
  static constexpr uint64_t kUnfinalized = ~0ULL;
};

/// Streams canonical deltas into a new edge log. Frame 0 must be the
/// initial graph (AppendInitial or an insertions-only Append); Finish
/// writes the seek index and patches the header — a log abandoned
/// before Finish stays readable as an unfinalized valid prefix.
class EdgeLogWriter {
 public:
  /// Creates `path` (truncating an existing file). `index_every` is the
  /// seek-index stride in frames; 0 disables the index.
  static StatusOr<std::unique_ptr<EdgeLogWriter>> Create(
      const std::string& path, uint32_t index_every = 64);

  ~EdgeLogWriter();
  EdgeLogWriter(const EdgeLogWriter&) = delete;
  EdgeLogWriter& operator=(const EdgeLogWriter&) = delete;

  /// Appends one frame. Batches must be canonical (sorted, unique, no
  /// self-loops — EdgeDelta::Canonicalize form); violations are
  /// kInvalidArgument so a malformed frame can never be written.
  Status Append(const EdgeDelta& delta);

  /// Convenience for frame 0: the graph's sorted edge set as an
  /// insertions-only frame.
  Status AppendInitial(const Graph& initial);

  /// Writes the seek index, patches the header (num_vertices: pass 0
  /// to use max-endpoint-seen + 1; an explicit value must cover every
  /// endpoint written), and flushes. The writer is unusable after.
  Status Finish(VertexId num_vertices = 0);

  uint64_t frames_written() const { return frames_; }
  uint64_t bytes_written() const { return offset_; }
  /// The universe Finish(0) would declare: max endpoint seen + 1.
  VertexId universe_seen() const {
    return any_endpoint_ ? static_cast<VertexId>(max_endpoint_ + 1) : 0;
  }

 private:
  EdgeLogWriter(std::FILE* file, uint32_t index_every)
      : file_(file), index_every_(index_every) {}

  std::FILE* file_;
  uint32_t index_every_;
  uint64_t frames_ = 0;
  uint64_t offset_ = 0;       // bytes written so far
  uint64_t max_endpoint_ = 0;
  bool any_endpoint_ = false;
  bool finished_ = false;
  std::vector<uint64_t> index_;  // offset of frame i*index_every
  std::string scratch_;          // reused payload buffer
};

/// Random-access reader over a mapped edge log. NextFrame decodes
/// frames in order straight out of the mapping (the only writes are
/// into the caller's reused EdgeDelta, so steady-state pulls allocate
/// nothing); SeekToFrame jumps via the sparse index.
class EdgeLogReader {
 public:
  static StatusOr<std::unique_ptr<EdgeLogReader>> Open(
      const std::string& path);

  /// Header universe (kUnfinalized sentinel resolved to 0 for
  /// unfinalized logs — the universe is then discovered per frame).
  VertexId num_vertices() const;
  bool finalized() const { return num_frames_ != EdgeLogLayout::kUnfinalized; }
  /// Declared frame count; kUnfinalized when the writer never finished.
  uint64_t num_frames() const { return num_frames_; }
  uint32_t index_every() const { return index_every_; }
  size_t file_bytes() const { return map_->size(); }

  /// Decodes the next frame into `*delta` (overwriting it). false at
  /// the clean end of the stream — which for an unfinalized log
  /// includes a torn final frame (valid-prefix discipline). Damage is
  /// kCorruption, including a finalized log running out of intact
  /// frames below its declared count.
  StatusOr<bool> NextFrame(EdgeDelta* delta);

  /// Repositions so the next NextFrame decodes frame `index`: binary
  /// search of the seek index, then a forward skip (length fields
  /// only; CRCs are verified when frames are decoded). Works without
  /// an index by skipping from frame 0.
  Status SeekToFrame(uint64_t index);

  /// Index of the frame the next NextFrame call will decode.
  uint64_t cursor_frame() const { return frame_index_; }

 private:
  EdgeLogReader() = default;

  /// End of the frame region (index_offset when an index exists, else
  /// file size).
  size_t FrameRegionEnd() const;

  std::unique_ptr<edge_log_internal::MappedFile> map_;
  uint64_t num_vertices_ = 0;
  uint64_t num_frames_ = 0;
  uint32_t index_every_ = 0;
  uint64_t index_offset_ = 0;
  std::vector<uint64_t> index_;  // decoded seek index (finalized logs)
  size_t cursor_ = 0;            // byte offset of the next frame
  uint64_t frame_index_ = 0;     // frame number at cursor_
};

/// Zero-copy pull-based DeltaSource over a binary edge log: frame 0 is
/// InitialGraph (universe = the header's declared vertex count, so
/// consumers reserve once and EnsureVertices never fires on finalized
/// logs), frames 1..N-1 are the deltas. Composes with every decorator
/// (Retrying/Breaker/Coalescing) like any other source.
class MmapEdgeLogSource : public DeltaSource {
 public:
  static StatusOr<std::unique_ptr<MmapEdgeLogSource>> Open(
      const std::string& path);

  const Graph& InitialGraph() const override { return initial_; }
  StatusOr<bool> NextDelta(EdgeDelta* delta) override;
  std::string name() const override { return "binlog-mmap"; }

  const EdgeLogReader& reader() const { return *reader_; }

 private:
  MmapEdgeLogSource() = default;

  std::unique_ptr<EdgeLogReader> reader_;
  Graph initial_;
};

/// Drains `source` (G_0 + every delta) into a finalized edge log at
/// `path`. The universe is max(initial universe, endpoints seen).
struct EdgeLogWriteStats {
  uint64_t deltas = 0;   // frames past G_0
  uint64_t bytes = 0;
  VertexId num_vertices = 0;
};
StatusOr<EdgeLogWriteStats> WriteEdgeLog(DeltaSource& source,
                                         const std::string& path,
                                         uint32_t index_every = 64);

/// Transcodes a sorted SNAP-style temporal edge list into an edge log:
/// one metadata scan (ScanTemporalMetadata), then a single streaming
/// window-diff pass shared with `stream --source=file` — the deltas in
/// the log are bit-identical to what the text streamer emits for the
/// same (T, window_days). Unsorted input is kInvalidArgument, a
/// malformed line kCorruption (the CLI maps both onto its exit codes).
StatusOr<EdgeLogWriteStats> ConvertTemporalToEdgeLog(
    const std::string& text_path, size_t T, uint32_t window_days,
    const std::string& out_path, uint32_t index_every = 64);

}  // namespace avt

#endif  // AVT_GRAPH_EDGE_LOG_H_
