#include "graph/graph.h"

#include <algorithm>
#include <string>
#include <unordered_map>

namespace avt {

Graph Graph::FromEdges(VertexId num_vertices, const std::vector<Edge>& edges) {
  Graph g(num_vertices);
  // Degree-counting reserve pass: size every neighbor list up front so
  // the insertion loop never reallocates. Duplicates (skipped below)
  // only make the counts a slight over-reserve.
  std::vector<uint32_t> degree(num_vertices, 0);
  for (const Edge& e : edges) {
    AVT_CHECK_MSG(e.u < num_vertices && e.v < num_vertices,
                  "edge endpoint out of range");
    if (e.u == e.v) continue;
    ++degree[e.u];
    ++degree[e.v];
  }
  for (VertexId v = 0; v < num_vertices; ++v) {
    g.adjacency_[v].reserve(degree[v]);
  }
  for (const Edge& e : edges) {
    g.AddEdge(e.u, e.v);
  }
  return g;
}

StatusOr<Graph> Graph::FromAdjacency(
    std::vector<std::vector<VertexId>> adjacency) {
  const size_t n = adjacency.size();
  // Every undirected edge must appear exactly once in each endpoint's
  // list. Count (min,max) keys from both sides: balanced counts plus
  // no per-list duplicates imply exact symmetry.
  std::unordered_map<uint64_t, int32_t> balance;
  uint64_t entries = 0;
  for (size_t u = 0; u < n; ++u) {
    for (VertexId v : adjacency[u]) {
      if (v >= n) {
        return Status::Corruption("adjacency references vertex " +
                                  std::to_string(v) + " outside universe " +
                                  std::to_string(n));
      }
      if (v == static_cast<VertexId>(u)) {
        return Status::Corruption("adjacency contains self-loop at vertex " +
                                  std::to_string(u));
      }
      const uint64_t lo = std::min<uint64_t>(u, v);
      const uint64_t hi = std::max<uint64_t>(u, v);
      balance[(lo << 32) | hi] += (u < v) ? 1 : -1;
      ++entries;
    }
  }
  for (const auto& [key, count] : balance) {
    if (count != 0) {
      return Status::Corruption(
          "asymmetric adjacency: edge (" + std::to_string(key >> 32) + ", " +
          std::to_string(key & 0xFFFFFFFFull) +
          ") present on one side only");
    }
  }
  if (entries != 2 * balance.size()) {
    return Status::Corruption("duplicate entries in adjacency lists");
  }
  Graph g;
  g.adjacency_ = std::move(adjacency);
  g.num_edges_ = balance.size();
  return g;
}

bool Graph::AddEdge(VertexId u, VertexId v) {
  // Active in release builds: mutation endpoints arrive from deltas and
  // files, and an out-of-range id must fail loudly here (callers that
  // stream a growing universe call EnsureVertex first), never index out
  // of bounds. Two compares per edge mutation is noise next to the list
  // operations below.
  AVT_CHECK_MSG(u < NumVertices() && v < NumVertices(),
                "AddEdge endpoint out of range (grow with EnsureVertex)");
  if (u == v) return false;
  if (HasEdge(u, v)) return false;
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  ++num_edges_;
  return true;
}

bool Graph::RemoveEdge(VertexId u, VertexId v) {
  AVT_CHECK_MSG(u < NumVertices() && v < NumVertices(),
                "RemoveEdge endpoint out of range (grow with EnsureVertex)");
  if (u == v) return false;
  auto erase_one = [this](VertexId from, VertexId target) {
    auto& list = adjacency_[from];
    for (size_t i = 0; i < list.size(); ++i) {
      if (list[i] == target) {
        list[i] = list.back();
        list.pop_back();
        return true;
      }
    }
    return false;
  };
  if (!erase_one(u, v)) return false;
  AVT_CHECK(erase_one(v, u));
  --num_edges_;
  return true;
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  AVT_DCHECK(u < NumVertices() && v < NumVertices());
  // Scan the shorter list.
  const auto& a = adjacency_[u].size() <= adjacency_[v].size()
                      ? adjacency_[u]
                      : adjacency_[v];
  VertexId target = adjacency_[u].size() <= adjacency_[v].size() ? v : u;
  return std::find(a.begin(), a.end(), target) != a.end();
}

std::vector<Edge> Graph::CollectEdges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges_);
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (VertexId v : adjacency_[u]) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

CsrView Graph::BuildCsr() const {
  CsrView csr;
  BuildCsr(&csr);
  return csr;
}

void Graph::BuildCsr(CsrView* out) const {
  const VertexId n = NumVertices();
  out->offsets_.resize(static_cast<size_t>(n) + 1);
  out->offsets_[0] = 0;
  for (VertexId u = 0; u < n; ++u) {
    out->offsets_[u + 1] = out->offsets_[u] + adjacency_[u].size();
  }
  out->targets_.resize(out->offsets_[n]);
  for (VertexId u = 0; u < n; ++u) {
    std::copy(adjacency_[u].begin(), adjacency_[u].end(),
              out->targets_.begin() +
                  static_cast<ptrdiff_t>(out->offsets_[u]));
  }
}

uint32_t Graph::MaxDegree() const {
  uint32_t best = 0;
  for (const auto& list : adjacency_) {
    best = std::max(best, static_cast<uint32_t>(list.size()));
  }
  return best;
}

}  // namespace avt
