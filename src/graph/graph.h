// Dynamic undirected simple graph over a fixed vertex universe.
//
// The paper models an evolving network as a sequence of snapshots sharing
// one vertex set V (dummy vertices stand in for not-yet-joined users), so
// Graph keeps the vertex count fixed and supports edge insertion and
// deletion in O(deg). Neighbor lists are unsorted vectors; deletion swaps
// with the back. This favors the access pattern of every algorithm in the
// library — full neighbor scans — over ordered iteration.

#ifndef AVT_GRAPH_GRAPH_H_
#define AVT_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/csr.h"
#include "util/status.h"

namespace avt {

/// Vertex identifier: dense index in [0, NumVertices).
using VertexId = uint32_t;

/// Undirected edge as an unordered pair; normalized so u <= v.
struct Edge {
  VertexId u;
  VertexId v;

  Edge() : u(0), v(0) {}
  Edge(VertexId a, VertexId b) : u(a < b ? a : b), v(a < b ? b : a) {}

  friend bool operator==(const Edge& lhs, const Edge& rhs) {
    return lhs.u == rhs.u && lhs.v == rhs.v;
  }
  friend bool operator<(const Edge& lhs, const Edge& rhs) {
    return lhs.u != rhs.u ? lhs.u < rhs.u : lhs.v < rhs.v;
  }
};

/// Dynamic undirected simple graph.
class Graph {
 public:
  Graph() = default;
  explicit Graph(VertexId num_vertices) : adjacency_(num_vertices) {}

  /// Builds a graph from an edge list; duplicate edges and self-loops are
  /// silently skipped (generators may emit them).
  static Graph FromEdges(VertexId num_vertices,
                         const std::vector<Edge>& edges);

  /// Reconstructs a graph from verbatim per-vertex neighbor lists —
  /// ORDER INCLUDED. Neighbor order is history-dependent (AddEdge
  /// appends, RemoveEdge swaps with the back) and algorithms scan it,
  /// so a checkpoint restore that merely re-added the edge set could
  /// legally produce different tie-breaks; this keeps the restored
  /// graph bit-identical to the saved one. The lists arrive from disk,
  /// so every structural invariant (endpoints in range, no self-loops,
  /// no duplicates, symmetric membership) is validated and a violation
  /// is a kCorruption Status, never a crash.
  static StatusOr<Graph> FromAdjacency(
      std::vector<std::vector<VertexId>> adjacency);

  VertexId NumVertices() const {
    return static_cast<VertexId>(adjacency_.size());
  }
  uint64_t NumEdges() const { return num_edges_; }

  /// Appends an isolated vertex and returns its id.
  VertexId AddVertex() {
    adjacency_.emplace_back();
    return static_cast<VertexId>(adjacency_.size() - 1);
  }

  /// Grows the vertex universe so `v` is a valid id (no-op when it
  /// already is); new vertices are isolated. Streaming delta sources
  /// discover vertices mid-stream, and an edge referencing an unseen id
  /// must grow the universe explicitly here — Graph::AddEdge treats an
  /// out-of-range endpoint as a programming error, not a growth request.
  void EnsureVertex(VertexId v) {
    if (v >= NumVertices()) {
      adjacency_.resize(static_cast<size_t>(v) + 1);
    }
  }

  /// Inserts edge (u, v). Returns false (and does nothing) if the edge
  /// already exists or u == v.
  bool AddEdge(VertexId u, VertexId v);

  /// Removes edge (u, v). Returns false if absent.
  bool RemoveEdge(VertexId u, VertexId v);

  bool HasEdge(VertexId u, VertexId v) const;

  uint32_t Degree(VertexId u) const {
    AVT_DCHECK(u < NumVertices());
    return static_cast<uint32_t>(adjacency_[u].size());
  }

  std::span<const VertexId> Neighbors(VertexId u) const {
    AVT_DCHECK(u < NumVertices());
    return adjacency_[u];
  }

  /// Materializes all edges (normalized, u <= v), sorted.
  std::vector<Edge> CollectEdges() const;

  /// Snapshots the adjacency into a contiguous CSR view (O(n + m)).
  /// Neighbor order per vertex is preserved exactly, so algorithms give
  /// bit-identical results whether they scan the view or the graph. The
  /// view does not track later mutations.
  CsrView BuildCsr() const;

  /// Same snapshot into caller-owned buffers: `out`'s vectors are
  /// resized in place, so a view reused across solves (per-snapshot
  /// solvers, the rebuild-per-delta tracker arm) stops reallocating
  /// offsets/targets once it reaches its high-water capacity.
  void BuildCsr(CsrView* out) const;

  /// Average degree 2m/n (0 for empty graph).
  double AverageDegree() const {
    return adjacency_.empty()
               ? 0.0
               : 2.0 * static_cast<double>(num_edges_) /
                     static_cast<double>(adjacency_.size());
  }

  /// Maximum degree over all vertices.
  uint32_t MaxDegree() const;

  friend bool operator==(const Graph& lhs, const Graph& rhs) {
    return lhs.NumVertices() == rhs.NumVertices() &&
           lhs.num_edges_ == rhs.num_edges_ &&
           lhs.CollectEdges() == rhs.CollectEdges();
  }

 private:
  std::vector<std::vector<VertexId>> adjacency_;
  uint64_t num_edges_ = 0;
};

}  // namespace avt

#endif  // AVT_GRAPH_GRAPH_H_
