#include "graph/io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace avt {
namespace {

// Remaps arbitrary file ids to dense [0, n); insertion order.
class IdCompactor {
 public:
  VertexId Map(uint64_t raw) {
    auto [it, inserted] = ids_.emplace(raw, next_);
    if (inserted) ++next_;
    return it->second;
  }
  VertexId size() const { return next_; }

 private:
  std::unordered_map<uint64_t, VertexId> ids_;
  VertexId next_ = 0;
};

}  // namespace

bool IsCommentOrBlankLine(const std::string& line) {
  for (char c : line) {
    if (c == '#' || c == '%') return true;
    if (!isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

Status ParseTemporalEdgeLine(const std::string& line, size_t line_number,
                             uint64_t* u, uint64_t* v, int64_t* timestamp) {
  std::istringstream ls(line);
  if (!(ls >> *u >> *v >> *timestamp)) {
    return Status::Corruption("bad temporal edge at line " +
                              std::to_string(line_number));
  }
  return Status::Ok();
}

StatusOr<Graph> ParseEdgeList(const std::string& body) {
  std::istringstream in(body);
  std::string line;
  IdCompactor compact;
  std::vector<std::pair<VertexId, VertexId>> raw_edges;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (IsCommentOrBlankLine(line)) continue;
    std::istringstream ls(line);
    uint64_t a = 0, b = 0;
    if (!(ls >> a >> b)) {
      return Status::Corruption("bad edge at line " +
                                std::to_string(line_number));
    }
    // Sequence the two Map calls: argument evaluation order is
    // unspecified and first-appearance compaction must follow the file.
    VertexId mapped_a = compact.Map(a);
    VertexId mapped_b = compact.Map(b);
    raw_edges.emplace_back(mapped_a, mapped_b);
  }
  Graph g(compact.size());
  for (auto [u, v] : raw_edges) g.AddEdge(u, v);
  return g;
}

StatusOr<Graph> LoadEdgeList(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::IoError("cannot open " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  return ParseEdgeList(buffer.str());
}

StatusOr<TemporalEventLog> LoadTemporalEdgeList(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::IoError("cannot open " + path);
  TemporalEventLog log;
  IdCompactor compact;
  std::string line;
  size_t line_number = 0;
  while (std::getline(file, line)) {
    ++line_number;
    if (IsCommentOrBlankLine(line)) continue;
    uint64_t a = 0, b = 0;
    int64_t t = 0;
    AVT_RETURN_IF_ERROR(ParseTemporalEdgeLine(line, line_number, &a, &b, &t));
    if (a == b) continue;
    log.events.push_back({compact.Map(a), compact.Map(b), t});
  }
  log.num_vertices = compact.size();
  std::stable_sort(log.events.begin(), log.events.end());
  return log;
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open " + path + " for writing");
  file << "# avt edge list: n=" << graph.NumVertices()
       << " m=" << graph.NumEdges() << "\n";
  for (const Edge& e : graph.CollectEdges()) {
    file << e.u << ' ' << e.v << '\n';
  }
  if (!file) return Status::IoError("write failure on " + path);
  return Status::Ok();
}

Status SaveTemporalEdgeList(const TemporalEventLog& log,
                            const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open " + path + " for writing");
  file << "# avt temporal edge list: n=" << log.num_vertices
       << " events=" << log.events.size() << "\n";
  for (const TemporalEdge& e : log.events) {
    file << e.u << ' ' << e.v << ' ' << e.timestamp << '\n';
  }
  if (!file) return Status::IoError("write failure on " + path);
  return Status::Ok();
}

}  // namespace avt
