// Text IO for graphs: SNAP-style edge lists and temporal edge lists.
//
// Formats (whitespace-separated, '#' comment lines ignored):
//   edge list:           "u v" per line
//   temporal edge list:  "u v timestamp" per line (seconds or days)
//
// Vertex ids in files may be sparse; loaders compact them to dense
// [0, n) ids and can report the mapping.

#ifndef AVT_GRAPH_IO_H_
#define AVT_GRAPH_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace avt {

/// One timestamped interaction; vertex ids already dense.
struct TemporalEdge {
  VertexId u;
  VertexId v;
  int64_t timestamp;

  friend bool operator<(const TemporalEdge& a, const TemporalEdge& b) {
    return a.timestamp < b.timestamp;
  }
  friend bool operator==(const TemporalEdge& a, const TemporalEdge& b) {
    return a.u == b.u && a.v == b.v && a.timestamp == b.timestamp;
  }
};

/// A loaded temporal dataset: events sorted by time.
struct TemporalEventLog {
  VertexId num_vertices = 0;
  std::vector<TemporalEdge> events;

  int64_t MinTimestamp() const {
    return events.empty() ? 0 : events.front().timestamp;
  }
  int64_t MaxTimestamp() const {
    return events.empty() ? 0 : events.back().timestamp;
  }
};

/// Reads a static edge list. Self-loops and duplicates are dropped.
StatusOr<Graph> LoadEdgeList(const std::string& path);

/// Reads a temporal edge list (u v t per line), sorted by timestamp.
StatusOr<TemporalEventLog> LoadTemporalEdgeList(const std::string& path);

/// Writes "u v" lines (normalized, sorted) with a stats header comment.
Status SaveEdgeList(const Graph& graph, const std::string& path);

/// Writes "u v t" lines in event order.
Status SaveTemporalEdgeList(const TemporalEventLog& log,
                            const std::string& path);

/// Parses an in-memory edge-list body (used by tests; same grammar).
StatusOr<Graph> ParseEdgeList(const std::string& body);

/// True for lines every loader skips: blank, or starting with '#'/'%'
/// after optional whitespace. Exposed so the streaming temporal source
/// (graph/delta_source.cc) tokenizes files with the exact grammar of
/// LoadTemporalEdgeList — one definition, no drift.
bool IsCommentOrBlankLine(const std::string& line);

/// Parses one non-comment temporal edge-list line ("u v timestamp")
/// into its raw fields. kCorruption with line context on malformed
/// input. Shared by the batch loader and the streaming source — one
/// grammar, one error message, no drift.
Status ParseTemporalEdgeLine(const std::string& line, size_t line_number,
                             uint64_t* u, uint64_t* v, int64_t* timestamp);

}  // namespace avt

#endif  // AVT_GRAPH_IO_H_
