#include "graph/resilient_source.h"

#include <chrono>
#include <thread>

namespace avt {

StatusOr<bool> RetryingSource::NextDelta(EdgeDelta* delta) {
  for (int attempt = 0;; ++attempt) {
    StatusOr<bool> result = inner_->NextDelta(delta);
    if (result.ok()) return result;
    const bool transient = result.status().code() == StatusCode::kIoError;
    if (!transient || attempt >= options_.max_retries) {
      // Non-retryable (corruption, bad input) or retry budget spent:
      // the caller decides; retrying a corrupt stream cannot help.
      return result;
    }
    ++transient_errors_;
    ++retries_;
    Backoff(attempt);
  }
}

void RetryingSource::Backoff(int attempt) {
  double backoff = options_.initial_backoff_millis;
  for (int k = 0; k < attempt && backoff < options_.max_backoff_millis;
       ++k) {
    backoff *= options_.backoff_multiplier;
  }
  if (backoff > options_.max_backoff_millis) {
    backoff = options_.max_backoff_millis;
  }
  // Symmetric seeded jitter decorrelates concurrent retriers without
  // breaking reproducibility: same seed, same sleep schedule.
  const double jitter =
      1.0 + options_.jitter_fraction * (2.0 * jitter_rng_.NextDouble() - 1.0);
  const double millis = backoff * jitter;
  if (millis > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(millis));
  }
}

}  // namespace avt
