#include "graph/resilient_source.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace avt {

StatusOr<bool> RetryingSource::NextDelta(EdgeDelta* delta) {
  for (int attempt = 0;; ++attempt) {
    StatusOr<bool> result = inner_->NextDelta(delta);
    if (result.ok()) return result;
    const bool transient = result.status().code() == StatusCode::kIoError;
    if (!transient || attempt >= options_.max_retries) {
      // Non-retryable (corruption, bad input) or retry budget spent:
      // the caller decides; retrying a corrupt stream cannot help.
      return result;
    }
    ++transient_errors_;
    ++retries_;
    Backoff(attempt);
  }
}

CircuitBreakerSource::CircuitBreakerSource(
    std::unique_ptr<DeltaSource> inner, const CircuitBreakerOptions& options)
    : inner_(std::move(inner)),
      options_(options),
      rng_(options.seed),
      outcomes_(options.window, 0) {
  AVT_CHECK_MSG(inner_ != nullptr, "CircuitBreakerSource needs a source");
  AVT_CHECK_MSG(options_.window > 0, "breaker window must be > 0");
  AVT_CHECK_MSG(options_.failure_threshold > 0.0 &&
                    options_.failure_threshold <= 1.0,
                "failure_threshold must be in (0, 1]");
}

void CircuitBreakerSource::RecordOutcome(bool failure) {
  failures_in_window_ -= outcomes_[outcome_pos_];
  outcomes_[outcome_pos_] = failure ? 1 : 0;
  failures_in_window_ += outcomes_[outcome_pos_];
  outcome_pos_ = (outcome_pos_ + 1) % outcomes_.size();
  if (outcome_count_ < outcomes_.size()) ++outcome_count_;
}

void CircuitBreakerSource::TripOpen() {
  state_ = State::kOpen;
  ++opens_;
  // Seeded jitter on the pull-counted cooldown: deterministic for a
  // fixed seed, decorrelated across breakers with different seeds.
  uint64_t cooldown = options_.cooldown_pulls;
  if (options_.cooldown_jitter > 0.0 && cooldown > 0) {
    const double factor = 1.0 + options_.cooldown_jitter *
                                    (2.0 * rng_.NextDouble() - 1.0);
    cooldown = static_cast<uint64_t>(
        static_cast<double>(cooldown) * factor + 0.5);
    if (cooldown == 0) cooldown = 1;
  }
  cooldown_left_ = cooldown;
  // Fresh window for the next closed period.
  std::fill(outcomes_.begin(), outcomes_.end(), 0);
  outcome_pos_ = 0;
  outcome_count_ = 0;
  failures_in_window_ = 0;
}

StatusOr<bool> CircuitBreakerSource::NextDelta(EdgeDelta* delta) {
  if (state_ == State::kOpen) {
    if (cooldown_left_ > 0) {
      --cooldown_left_;
      ++rejected_;
      return Status::Unavailable(
          "circuit open after repeated source failures; " +
          std::to_string(cooldown_left_) +
          " rejected pull(s) until a half-open probe");
    }
    state_ = State::kHalfOpen;
  }

  StatusOr<bool> result = inner_->NextDelta(delta);
  const StatusCode code = result.ok() ? StatusCode::kOk
                                      : result.status().code();
  // Only transient failures feed the breaker; terminal codes pass
  // through untouched (see class comment).
  const bool transient_failure =
      code == StatusCode::kIoError || code == StatusCode::kUnavailable;
  if (!result.ok() && !transient_failure) return result;

  if (state_ == State::kHalfOpen) {
    if (transient_failure) {
      TripOpen();
      return Status::Unavailable("half-open probe failed (" +
                                 result.status().message() +
                                 "); circuit re-opened");
    }
    state_ = State::kClosed;
    RecordOutcome(false);
    return result;
  }

  RecordOutcome(transient_failure);
  if (transient_failure) {
    if (outcome_count_ >= options_.min_pulls &&
        static_cast<double>(failures_in_window_) >=
            options_.failure_threshold * static_cast<double>(outcome_count_)) {
      TripOpen();
    }
    // The breaker owns transient-failure policy: surface every
    // recorded failure as kUnavailable so the caller treats it as
    // "step again later" whether or not this one tripped the circuit.
    return Status::Unavailable("source failure recorded by breaker: " +
                               result.status().message());
  }
  return result;
}

StatusOr<bool> PoisonInjectingSource::NextDelta(EdgeDelta* delta) {
  // Decide injection BEFORE touching the upstream, so poison displaces
  // no real delta; once the upstream is exhausted, stop injecting so
  // the stream actually ends.
  if (!exhausted_ && options_.poison_rate > 0.0 &&
      rng_.Bernoulli(options_.poison_rate)) {
    delta->insertions.clear();
    delta->deletions.clear();
    const VertexId n = inner_->InitialGraph().NumVertices();
    const bool use_huge =
        options_.huge_ids &&
        (!options_.self_loops || rng_.Bernoulli(0.5));
    Edge poison;
    if (use_huge) {
      poison.u = n > 0 ? static_cast<VertexId>(rng_.Uniform(n)) : 0;
      poison.v = options_.huge_id;
    } else {
      poison.u = n > 0 ? static_cast<VertexId>(rng_.Uniform(n)) : 0;
      poison.v = poison.u;  // self-loop
    }
    delta->insertions.push_back(poison);
    ++poisons_injected_;
    return true;
  }
  StatusOr<bool> result = inner_->NextDelta(delta);
  if (result.ok() && !result.value()) exhausted_ = true;
  return result;
}

void RetryingSource::Backoff(int attempt) {
  double backoff = options_.initial_backoff_millis;
  for (int k = 0; k < attempt && backoff < options_.max_backoff_millis;
       ++k) {
    backoff *= options_.backoff_multiplier;
  }
  if (backoff > options_.max_backoff_millis) {
    backoff = options_.max_backoff_millis;
  }
  // Symmetric seeded jitter decorrelates concurrent retriers without
  // breaking reproducibility: same seed, same sleep schedule.
  const double jitter =
      1.0 + options_.jitter_fraction * (2.0 * jitter_rng_.NextDouble() - 1.0);
  const double millis = backoff * jitter;
  if (millis > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(millis));
  }
}

}  // namespace avt
