// Fault injection + retry decorators for delta ingestion.
//
// A long-lived streaming service cannot treat every transient read
// failure as fatal: the literature's evolving-graph systems assume the
// delta stream is durable and re-readable, so a flaky pull should be
// retried, not crash the tracker. Two composable DeltaSource
// decorators provide that discipline and its test double:
//
//   FaultInjectingSource — wraps any source and injects a seeded,
//       deterministic schedule of faults: transient kIoError pulls
//       (the upstream delta is NOT consumed, so a retry observes the
//       identical stream) and, optionally, a sticky kCorruption after
//       a fixed number of successful pulls (modeling a corrupt frame
//       at a known stream position). Same seed → same fault schedule,
//       which is what lets durability_test assert zero output
//       divergence under ≤ 20% transient fault rates.
//
//   RetryingSource — wraps any source and absorbs transient kIoError
//       failures with bounded retries, exponential backoff, and
//       seeded jitter. Retry counters surface through
//       DeltaSource::SourceStats into RunSummary. kCorruption and
//       every other non-transient code propagate immediately: a
//       corrupt stream is not something retries can fix.
//
// Stacking order matters: Retrying(FaultInjecting(inner)) absorbs the
// injected transient faults; Coalescing(Retrying(...)) then merges the
// repaired stream. durability_test pins that the full stack is
// bit-identical to the undecorated run.

#ifndef AVT_GRAPH_RESILIENT_SOURCE_H_
#define AVT_GRAPH_RESILIENT_SOURCE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "graph/delta_source.h"
#include "util/random.h"

namespace avt {

/// Deterministic fault schedule for FaultInjectingSource.
struct FaultInjectionOptions {
  uint64_t seed = 1;
  /// Probability in [0, 1) that any given pull fails transiently with
  /// kIoError before touching the upstream source.
  double transient_rate = 0.0;
  /// If >= 0, every pull after this many successful upstream pulls
  /// fails with a sticky kCorruption (a corrupt frame at that stream
  /// position). -1 disables.
  int64_t corrupt_after = -1;
};

/// Injects seeded faults in front of `inner`. Transient faults do not
/// consume upstream deltas; corruption is sticky.
class FaultInjectingSource : public DeltaSource {
 public:
  FaultInjectingSource(std::unique_ptr<DeltaSource> inner,
                       const FaultInjectionOptions& options)
      : inner_(std::move(inner)),
        options_(options),
        rng_(options.seed) {
    AVT_CHECK_MSG(inner_ != nullptr, "FaultInjectingSource needs a source");
    AVT_CHECK_MSG(options_.transient_rate >= 0.0 &&
                      options_.transient_rate < 1.0,
                  "transient_rate must be in [0, 1)");
  }

  const Graph& InitialGraph() const override {
    return inner_->InitialGraph();
  }

  StatusOr<bool> NextDelta(EdgeDelta* delta) override {
    if (options_.corrupt_after >= 0 &&
        successes_ >= static_cast<uint64_t>(options_.corrupt_after)) {
      return Status::Corruption("injected: corrupt frame after " +
                                std::to_string(successes_) + " deltas");
    }
    if (options_.transient_rate > 0.0 &&
        rng_.Bernoulli(options_.transient_rate)) {
      ++faults_injected_;
      return Status::IoError("injected: transient read failure at pull " +
                             std::to_string(successes_));
    }
    StatusOr<bool> result = inner_->NextDelta(delta);
    if (result.ok() && result.value()) ++successes_;
    return result;
  }

  Stats SourceStats() const override { return inner_->SourceStats(); }

  std::string name() const override { return inner_->name() + "+faults"; }

  uint64_t faults_injected() const { return faults_injected_; }

 private:
  std::unique_ptr<DeltaSource> inner_;
  FaultInjectionOptions options_;
  Rng rng_;
  uint64_t successes_ = 0;
  uint64_t faults_injected_ = 0;
};

/// Retry policy for RetryingSource.
struct RetryOptions {
  int max_retries = 8;  ///< per pull, not per stream
  /// Backoff before retry k is
  /// min(initial * multiplier^k, max) * (1 ± jitter * U[0,1)) millis.
  double initial_backoff_millis = 0.05;
  double backoff_multiplier = 2.0;
  double max_backoff_millis = 20.0;
  double jitter_fraction = 0.25;
  uint64_t jitter_seed = 42;
};

/// Absorbs transient kIoError pulls from `inner` with bounded
/// exponential-backoff retries. Everything else propagates unchanged.
class RetryingSource : public DeltaSource {
 public:
  RetryingSource(std::unique_ptr<DeltaSource> inner,
                 const RetryOptions& options = RetryOptions())
      : inner_(std::move(inner)),
        options_(options),
        jitter_rng_(options.jitter_seed) {
    AVT_CHECK_MSG(inner_ != nullptr, "RetryingSource needs a source");
    AVT_CHECK_MSG(options_.max_retries >= 0, "max_retries must be >= 0");
  }

  const Graph& InitialGraph() const override {
    return inner_->InitialGraph();
  }

  StatusOr<bool> NextDelta(EdgeDelta* delta) override;

  Stats SourceStats() const override {
    Stats stats = inner_->SourceStats();
    stats.retries += retries_;
    stats.transient_errors += transient_errors_;
    return stats;
  }

  std::string name() const override { return inner_->name() + "+retry"; }

 private:
  void Backoff(int attempt);

  std::unique_ptr<DeltaSource> inner_;
  RetryOptions options_;
  Rng jitter_rng_;
  uint64_t retries_ = 0;
  uint64_t transient_errors_ = 0;
};

}  // namespace avt

#endif  // AVT_GRAPH_RESILIENT_SOURCE_H_
