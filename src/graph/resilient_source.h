// Fault injection + retry decorators for delta ingestion.
//
// A long-lived streaming service cannot treat every transient read
// failure as fatal: the literature's evolving-graph systems assume the
// delta stream is durable and re-readable, so a flaky pull should be
// retried, not crash the tracker. Two composable DeltaSource
// decorators provide that discipline and its test double:
//
//   FaultInjectingSource — wraps any source and injects a seeded,
//       deterministic schedule of faults: transient kIoError pulls
//       (the upstream delta is NOT consumed, so a retry observes the
//       identical stream) and, optionally, a sticky kCorruption after
//       a fixed number of successful pulls (modeling a corrupt frame
//       at a known stream position). Same seed → same fault schedule,
//       which is what lets durability_test assert zero output
//       divergence under ≤ 20% transient fault rates.
//
//   RetryingSource — wraps any source and absorbs transient kIoError
//       failures with bounded retries, exponential backoff, and
//       seeded jitter. Retry counters surface through
//       DeltaSource::SourceStats into RunSummary. kCorruption and
//       every other non-transient code propagate immediately: a
//       corrupt stream is not something retries can fix.
//
//   CircuitBreakerSource — wraps any source (canonically over
//       RetryingSource) with a closed/open/half-open breaker: when the
//       failure rate over a sliding window of pull outcomes crosses a
//       threshold it opens, rejecting pulls with kUnavailable for a
//       pull-counted cooldown instead of hammering a down source, then
//       probes half-open. Deterministic under its seed; trip/reject
//       counters surface through DeltaSource::SourceStats.
//
//   PoisonInjectingSource — test double for the quarantine layer:
//       interleaves a seeded, deterministic schedule of structurally
//       poisoned deltas (self-loop edges, out-of-universe endpoints)
//       into an otherwise healthy stream WITHOUT consuming or altering
//       the real deltas, so a run that quarantines exactly the poison
//       is bit-identical to the clean run.
//
// Stacking order matters: Retrying(FaultInjecting(inner)) absorbs the
// injected transient faults; CircuitBreaker(Retrying(...)) trips on
// the failures that escape the retry budget; Coalescing then merges
// the repaired stream; PoisonInjecting goes outermost so its poison
// reaches the engine verbatim (coalescing would canonicalize it away).
// durability_test pins that the fault/retry stack is bit-identical to
// the undecorated run.

#ifndef AVT_GRAPH_RESILIENT_SOURCE_H_
#define AVT_GRAPH_RESILIENT_SOURCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/delta_source.h"
#include "util/random.h"

namespace avt {

/// Deterministic fault schedule for FaultInjectingSource.
struct FaultInjectionOptions {
  uint64_t seed = 1;
  /// Probability in [0, 1) that any given pull fails transiently with
  /// kIoError before touching the upstream source.
  double transient_rate = 0.0;
  /// If >= 0, every pull after this many successful upstream pulls
  /// fails with a sticky kCorruption (a corrupt frame at that stream
  /// position). -1 disables.
  int64_t corrupt_after = -1;
};

/// Injects seeded faults in front of `inner`. Transient faults do not
/// consume upstream deltas; corruption is sticky.
class FaultInjectingSource : public DeltaSource {
 public:
  FaultInjectingSource(std::unique_ptr<DeltaSource> inner,
                       const FaultInjectionOptions& options)
      : inner_(std::move(inner)),
        options_(options),
        rng_(options.seed) {
    AVT_CHECK_MSG(inner_ != nullptr, "FaultInjectingSource needs a source");
    AVT_CHECK_MSG(options_.transient_rate >= 0.0 &&
                      options_.transient_rate < 1.0,
                  "transient_rate must be in [0, 1)");
  }

  const Graph& InitialGraph() const override {
    return inner_->InitialGraph();
  }

  StatusOr<bool> NextDelta(EdgeDelta* delta) override {
    if (options_.corrupt_after >= 0 &&
        successes_ >= static_cast<uint64_t>(options_.corrupt_after)) {
      return Status::Corruption("injected: corrupt frame after " +
                                std::to_string(successes_) + " deltas");
    }
    if (options_.transient_rate > 0.0 &&
        rng_.Bernoulli(options_.transient_rate)) {
      ++faults_injected_;
      return Status::IoError("injected: transient read failure at pull " +
                             std::to_string(successes_));
    }
    StatusOr<bool> result = inner_->NextDelta(delta);
    if (result.ok() && result.value()) ++successes_;
    return result;
  }

  Stats SourceStats() const override { return inner_->SourceStats(); }

  std::string name() const override { return inner_->name() + "+faults"; }

  uint64_t faults_injected() const { return faults_injected_; }

 private:
  std::unique_ptr<DeltaSource> inner_;
  FaultInjectionOptions options_;
  Rng rng_;
  uint64_t successes_ = 0;
  uint64_t faults_injected_ = 0;
};

/// Retry policy for RetryingSource.
struct RetryOptions {
  int max_retries = 8;  ///< per pull, not per stream
  /// Backoff before retry k is
  /// min(initial * multiplier^k, max) * (1 ± jitter * U[0,1)) millis.
  double initial_backoff_millis = 0.05;
  double backoff_multiplier = 2.0;
  double max_backoff_millis = 20.0;
  double jitter_fraction = 0.25;
  uint64_t jitter_seed = 42;
};

/// Absorbs transient kIoError pulls from `inner` with bounded
/// exponential-backoff retries. Everything else propagates unchanged.
class RetryingSource : public DeltaSource {
 public:
  RetryingSource(std::unique_ptr<DeltaSource> inner,
                 const RetryOptions& options = RetryOptions())
      : inner_(std::move(inner)),
        options_(options),
        jitter_rng_(options.jitter_seed) {
    AVT_CHECK_MSG(inner_ != nullptr, "RetryingSource needs a source");
    AVT_CHECK_MSG(options_.max_retries >= 0, "max_retries must be >= 0");
  }

  const Graph& InitialGraph() const override {
    return inner_->InitialGraph();
  }

  StatusOr<bool> NextDelta(EdgeDelta* delta) override;

  Stats SourceStats() const override {
    Stats stats = inner_->SourceStats();
    stats.retries += retries_;
    stats.transient_errors += transient_errors_;
    return stats;
  }

  std::string name() const override { return inner_->name() + "+retry"; }

 private:
  void Backoff(int attempt);

  std::unique_ptr<DeltaSource> inner_;
  RetryOptions options_;
  Rng jitter_rng_;
  uint64_t retries_ = 0;
  uint64_t transient_errors_ = 0;
};

/// Breaker policy for CircuitBreakerSource.
struct CircuitBreakerOptions {
  /// Sliding window of recent pull outcomes the failure rate is
  /// computed over.
  uint32_t window = 8;
  /// Open when (failures in window) / (outcomes in window) reaches
  /// this, once `min_pulls` outcomes have been observed.
  double failure_threshold = 0.5;
  uint32_t min_pulls = 4;
  /// Rejected pulls while open before the half-open probe. The
  /// cooldown is counted in PULLS, not wall time — the engine's pace
  /// is the clock, which keeps breaker behavior deterministic and
  /// replayable.
  uint64_t cooldown_pulls = 16;
  /// Cooldown jitter fraction (± this × cooldown_pulls, seeded), so
  /// many breakers over one stressed upstream don't re-probe in
  /// lockstep. 0 disables.
  double cooldown_jitter = 0.25;
  uint64_t seed = 7;
};

/// Closed/open/half-open circuit breaker over `inner`.
///
/// While CLOSED, transient inner failures (kIoError) are recorded in
/// the outcome window and surfaced as kUnavailable — the breaker owns
/// transient-failure policy for the stack, and the engine treats
/// kUnavailable as "step again later" rather than fatal. When the
/// window trips, the breaker OPENS: pulls are rejected with
/// kUnavailable without touching the inner source until the cooldown
/// elapses, then one HALF-OPEN probe decides between closing and
/// re-opening. Terminal codes (kCorruption, kInvalidArgument, ...)
/// propagate unchanged and are not recorded: a breaker cannot fix a
/// corrupt stream, and hiding that would be lying.
class CircuitBreakerSource : public DeltaSource {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  CircuitBreakerSource(std::unique_ptr<DeltaSource> inner,
                       const CircuitBreakerOptions& options =
                           CircuitBreakerOptions());

  const Graph& InitialGraph() const override {
    return inner_->InitialGraph();
  }

  StatusOr<bool> NextDelta(EdgeDelta* delta) override;

  Stats SourceStats() const override {
    Stats stats = inner_->SourceStats();
    stats.breaker_opens += opens_;
    stats.breaker_rejected_pulls += rejected_;
    return stats;
  }

  std::string name() const override { return inner_->name() + "+breaker"; }

  State state() const { return state_; }

 private:
  void RecordOutcome(bool failure);
  void TripOpen();

  std::unique_ptr<DeltaSource> inner_;
  CircuitBreakerOptions options_;
  Rng rng_;
  State state_ = State::kClosed;
  /// Ring buffer of the last `window` outcomes (1 = failure).
  std::vector<uint8_t> outcomes_;
  size_t outcome_pos_ = 0;
  size_t outcome_count_ = 0;
  size_t failures_in_window_ = 0;
  uint64_t cooldown_left_ = 0;
  uint64_t opens_ = 0;
  uint64_t rejected_ = 0;
};

/// Seeded poison schedule for PoisonInjectingSource.
struct PoisonInjectionOptions {
  uint64_t seed = 99;
  /// Probability in [0, 1) that a poison delta is injected in place of
  /// any given pull (the real delta is NOT consumed — it arrives on a
  /// later pull, so the healthy substream is unchanged).
  double poison_rate = 0.0;
  /// Inject self-loop insertions {v, v} (structurally invalid).
  bool self_loops = true;
  /// Inject insertions touching `huge_id` (beyond any sane universe
  /// cap). Off by default: only meaningful with a max_universe cap.
  bool huge_ids = false;
  VertexId huge_id = 1u << 30;
};

/// Interleaves seeded poison deltas into `inner`'s stream.
class PoisonInjectingSource : public DeltaSource {
 public:
  PoisonInjectingSource(std::unique_ptr<DeltaSource> inner,
                        const PoisonInjectionOptions& options)
      : inner_(std::move(inner)), options_(options), rng_(options.seed) {
    AVT_CHECK_MSG(inner_ != nullptr, "PoisonInjectingSource needs a source");
    AVT_CHECK_MSG(options_.poison_rate >= 0.0 && options_.poison_rate < 1.0,
                  "poison_rate must be in [0, 1)");
    AVT_CHECK_MSG(options_.self_loops || options_.huge_ids,
                  "enable at least one poison kind");
  }

  const Graph& InitialGraph() const override {
    return inner_->InitialGraph();
  }

  StatusOr<bool> NextDelta(EdgeDelta* delta) override;

  Stats SourceStats() const override { return inner_->SourceStats(); }

  std::string name() const override { return inner_->name() + "+poison"; }

  uint64_t poisons_injected() const { return poisons_injected_; }

 private:
  std::unique_ptr<DeltaSource> inner_;
  PoisonInjectionOptions options_;
  Rng rng_;
  bool exhausted_ = false;
  uint64_t poisons_injected_ = 0;
};

}  // namespace avt

#endif  // AVT_GRAPH_RESILIENT_SOURCE_H_
