// Evolving-network container: initial snapshot + per-step edge deltas.
//
// G = {G_1, ..., G_T} is stored as G_1 and T-1 deltas. Materialize(t)
// replays deltas to produce any snapshot; ForEachSnapshot streams
// snapshots in order reusing one working graph (analysis-side
// consumers: coreness history, reports, tests). Trackers no longer
// take snapshots at all — AvtEngine drives them off a DeltaSource
// (graph/delta_source.h), with SequenceSource adapting this container
// to the stream verbatim.

#ifndef AVT_GRAPH_SNAPSHOTS_H_
#define AVT_GRAPH_SNAPSHOTS_H_

#include <functional>
#include <utility>
#include <vector>

#include "graph/delta.h"
#include "graph/graph.h"

namespace avt {

/// A T-snapshot evolving graph with shared vertex universe.
class SnapshotSequence {
 public:
  SnapshotSequence() = default;
  explicit SnapshotSequence(Graph initial)
      : initial_(std::move(initial)) {}

  /// Number of snapshots T (>= 1 once initialized).
  size_t NumSnapshots() const { return deltas_.size() + 1; }
  VertexId NumVertices() const { return initial_.NumVertices(); }

  const Graph& initial() const { return initial_; }
  const std::vector<EdgeDelta>& deltas() const { return deltas_; }

  /// Appends the transition G_t -> G_{t+1}.
  void PushDelta(EdgeDelta delta) { deltas_.push_back(std::move(delta)); }

  /// Materializes snapshot index t in [0, NumSnapshots()).
  Graph Materialize(size_t t) const {
    AVT_CHECK(t < NumSnapshots());
    Graph g = initial_;
    for (size_t i = 0; i < t; ++i) deltas_[i].Apply(g);
    return g;
  }

  /// Streams snapshots in order. The callback receives (t, graph, delta)
  /// where delta is the transition applied to reach t (empty at t = 0).
  /// The same Graph instance is mutated between calls.
  void ForEachSnapshot(
      const std::function<void(size_t, const Graph&, const EdgeDelta&)>&
          callback) const {
    Graph g = initial_;
    EdgeDelta empty;
    callback(0, g, empty);
    for (size_t i = 0; i < deltas_.size(); ++i) {
      deltas_[i].Apply(g);
      callback(i + 1, g, deltas_[i]);
    }
  }

  /// Total churn (|E+| + |E-|) across all transitions.
  size_t TotalChurn() const {
    size_t total = 0;
    for (const auto& d : deltas_) total += d.Size();
    return total;
  }

 private:
  Graph initial_;
  std::vector<EdgeDelta> deltas_;
};

}  // namespace avt

#endif  // AVT_GRAPH_SNAPSHOTS_H_
