#include "maint/maintainer.h"

#include <algorithm>
#include <queue>

namespace avt {

void CoreMaintainer::Reset(const Graph& graph) {
  graph_ = graph;
  order_.Build(graph_);
  stats_.Reset();
  if (csr_enabled_) csr_.Rebuild(graph_);
  const size_t n = graph_.NumVertices();
  deg_minus_.Resize(n);
  in_heap_.Resize(n);
  candidate_.Resize(n);
  eliminated_.Resize(n);
  support_.Resize(n);
  cd_.Resize(n);
  dropped_.Resize(n);
  affected_mark_.Resize(n);
}

void CoreMaintainer::EnsureVertices(VertexId count) {
  if (count <= graph_.NumVertices()) return;
  while (graph_.NumVertices() < count) {
    graph_.AddVertex();
    order_.AddVertex();
  }
  if (csr_enabled_) csr_.EnsureVertices(count);
  const size_t n = graph_.NumVertices();
  deg_minus_.Grow(n);
  in_heap_.Grow(n);
  candidate_.Grow(n);
  eliminated_.Grow(n);
  support_.Grow(n);
  cd_.Grow(n);
  dropped_.Grow(n);
  affected_mark_.Grow(n);
}

void CoreMaintainer::SetCsrMirror(bool enabled) {
  // An enabled mirror is kept in lockstep by every mutation (and Reset
  // rebuilds it), so re-enabling is a no-op — no redundant O(n + m)
  // rebuild when a tracker re-initializes.
  if (enabled == csr_enabled_) return;
  csr_enabled_ = enabled;
  if (enabled) {
    csr_.Rebuild(graph_);
  } else {
    csr_ = DynamicCsr{};
  }
}

void CoreMaintainer::MarkAffected(VertexId v) {
  if (!collecting_affected_) return;
  if (!affected_mark_.Get(v)) {
    affected_mark_.Set(v, 1);
    affected_list_.push_back(v);
  }
}

bool CoreMaintainer::InsertEdge(VertexId u, VertexId v) {
  if (!graph_.AddEdge(u, v)) return false;
  if (csr_enabled_) csr_.AddEdge(u, v);
  ++stats_.edges_inserted;

  // Lemma 1: the endpoint earlier in K-order gains a later neighbor.
  VertexId root = order_.Precedes(u, v) ? u : v;
  order_.IncrementDegPlus(root, +1);
  MarkAffected(u);
  MarkAffected(v);

  const uint32_t level = order_.CoreOf(root);
  // Lemma 2: core numbers can only change when deg+(root) exceeds its
  // core number.
  if (order_.DegPlus(root) <= level) return true;
  if (csr_enabled_) {
    RunInsertCascade(csr_, root, level);
  } else {
    RunInsertCascade(graph_, root, level);
  }
  return true;
}

template <typename Adjacency>
void CoreMaintainer::RunInsertCascade(const Adjacency& adj, VertexId root,
                                      uint32_t level) {
  ++stats_.cascades;
  deg_minus_.Clear();
  in_heap_.Clear();
  candidate_.Clear();
  eliminated_.Clear();
  support_.Clear();

  // Forward pass in K-order position over level `level`, visiting only
  // affected vertices (root + vertices whose candidate degree turned
  // positive). Pops are ordered by tag, so every vertex is popped after
  // all candidates that precede it have been decided.
  using HeapEntry = std::pair<uint64_t, VertexId>;  // (tag, vertex)
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;
  heap.emplace(order_.TagOf(root), root);
  in_heap_.Set(root, 1);

  std::vector<VertexId> visited;
  std::vector<VertexId> candidates_in_order;
  while (!heap.empty()) {
    auto [tag, w] = heap.top();
    heap.pop();
    visited.push_back(w);
    MarkAffected(w);
    ++stats_.visited;
    uint32_t upper = order_.DegPlus(w) + deg_minus_.Get(w);
    if (upper <= level) continue;  // cannot reach level+1: final (no
                                   // later pushes can target it).
    candidate_.Set(w, 1);
    candidates_in_order.push_back(w);
    for (VertexId x : adj.Neighbors(w)) {
      if (order_.CoreOf(x) != level) continue;
      if (!order_.Precedes(w, x)) continue;
      if (candidate_.Get(x)) continue;
      deg_minus_.Add(x, 1);
      if (!in_heap_.Get(x)) {
        in_heap_.Set(x, 1);
        heap.emplace(order_.TagOf(x), x);
      }
    }
  }

  // Elimination to fixpoint with exact support counts. Support of a
  // candidate = neighbors already above `level` + surviving candidates.
  std::queue<VertexId> review;
  for (VertexId w : candidates_in_order) {
    uint32_t support = 0;
    for (VertexId x : adj.Neighbors(w)) {
      if (order_.CoreOf(x) > level || candidate_.Get(x)) ++support;
    }
    support_.Set(w, support);
    if (support <= level) review.push(w);
  }
  std::vector<VertexId> eliminated_in_order;
  while (!review.empty()) {
    VertexId w = review.front();
    review.pop();
    if (eliminated_.Get(w)) continue;
    if (support_.Get(w) > level) continue;  // revived support? impossible,
                                            // but keep the check cheap.
    eliminated_.Set(w, 1);
    candidate_.Set(w, 0);
    eliminated_in_order.push_back(w);
    for (VertexId x : adj.Neighbors(w)) {
      if (candidate_.Get(x) && !eliminated_.Get(x)) {
        support_.Add(x, static_cast<uint32_t>(-1));
        if (support_.Get(x) <= level) review.push(x);
      }
    }
  }

  // Apply moves. Survivors rise to level+1, entering at the front in
  // their original relative order (push front in reverse pop order).
  std::vector<VertexId> promoted;
  for (VertexId w : candidates_in_order) {
    if (!eliminated_.Get(w)) promoted.push_back(w);
  }
  for (auto it = promoted.rbegin(); it != promoted.rend(); ++it) {
    order_.MoveToLevelFront(*it, level + 1);
    ++stats_.promotions;
  }
  // Failed candidates move to the back of their level in elimination
  // order (restores deg+ <= core; see class comment).
  for (VertexId w : eliminated_in_order) {
    order_.MoveToLevelBack(w, level);
  }

  // Refresh deg+ for everything whose later-neighbor set may have
  // changed: exactly the visited vertices (a vertex not visited has no
  // moved neighbor that crossed from before to after it).
  for (VertexId w : visited) {
    order_.RecomputeDegPlus(adj, w);
  }
}

bool CoreMaintainer::RemoveEdge(VertexId u, VertexId v) {
  // Edge endpoints arrive from stream deltas; like InsertEdge, a
  // removal the graph declines (absent edge, self-loop) is a benign
  // no-op — never an assertion, because external input must not be
  // able to abort the process. The graph mutates first; the index is
  // touched only once the removal actually happened.
  if (!graph_.RemoveEdge(u, v)) return false;
  // Fix deg+ of the earlier endpoint now that its later neighbor is
  // gone (Lemma 1, mirrored).
  VertexId earlier = order_.Precedes(u, v) ? u : v;
  order_.IncrementDegPlus(earlier, -1);
  if (csr_enabled_) csr_.RemoveEdge(u, v);
  ++stats_.edges_removed;
  MarkAffected(u);
  MarkAffected(v);

  const uint32_t ku = order_.CoreOf(u);
  const uint32_t kv = order_.CoreOf(v);
  const uint32_t level = std::min(ku, kv);
  if (level == 0) return true;  // an endpoint already at core 0 (only
                                // possible transiently; nothing to drop).
  std::vector<VertexId> seeds;
  if (ku == level) seeds.push_back(u);
  if (kv == level && v != u) seeds.push_back(v);
  if (csr_enabled_) {
    RunRemoveCascade(csr_, seeds, level);
  } else {
    RunRemoveCascade(graph_, seeds, level);
  }
  return true;
}

template <typename Adjacency>
void CoreMaintainer::RunRemoveCascade(const Adjacency& adj,
                                      const std::vector<VertexId>& seeds,
                                      uint32_t level) {
  cd_.Clear();
  dropped_.Clear();

  // cd(w): number of neighbors currently supporting w at `level`, i.e.
  // with effective core >= level, where already-dropped vertices count as
  // level-1. Computed lazily on first touch.
  auto effective_core = [this](VertexId x, uint32_t lvl) -> uint32_t {
    uint32_t c = order_.CoreOf(x);
    return dropped_.Get(x) ? lvl - 1 : c;
  };
  auto touch = [&](VertexId w) {
    if (cd_.Contains(w)) return;
    uint32_t count = 0;
    for (VertexId x : adj.Neighbors(w)) {
      if (effective_core(x, level) >= level) ++count;
    }
    cd_.Set(w, count);
  };

  std::queue<VertexId> review;
  for (VertexId s : seeds) {
    touch(s);
    ++stats_.visited;
    if (cd_.Get(s) < level) review.push(s);
  }

  std::vector<VertexId> dropped_in_order;
  while (!review.empty()) {
    VertexId w = review.front();
    review.pop();
    if (dropped_.Get(w)) continue;
    if (cd_.Get(w) >= level) continue;
    dropped_.Set(w, 1);
    dropped_in_order.push_back(w);
    MarkAffected(w);
    for (VertexId x : adj.Neighbors(w)) {
      if (order_.CoreOf(x) != level || dropped_.Get(x)) continue;
      if (cd_.Contains(x)) {
        cd_.Add(x, static_cast<uint32_t>(-1));
      } else {
        touch(x);  // already reflects w's drop via effective_core
        ++stats_.visited;
      }
      if (cd_.Get(x) < level) review.push(x);
    }
  }
  if (dropped_in_order.empty()) return;
  ++stats_.cascades;

  // Dropped vertices join the back of level-1 in drop order (valid: at
  // drop time each had < level supporters counting later-dropped ones).
  for (VertexId w : dropped_in_order) {
    order_.MoveToLevelBack(w, level - 1);
    ++stats_.demotions;
  }
  // deg+ refresh: the dropped vertices themselves, plus their kept
  // level-`level` neighbors that preceded them (they may lose the dropped
  // vertex from their later set). Recomputing all level-`level` neighbors
  // is simpler and within the same complexity bound.
  for (VertexId w : dropped_in_order) {
    order_.RecomputeDegPlus(adj, w);
    for (VertexId x : adj.Neighbors(w)) {
      if (order_.CoreOf(x) == level) {
        order_.RecomputeDegPlus(adj, x);
      }
    }
  }
}

std::vector<VertexId> CoreMaintainer::ApplyDelta(const EdgeDelta& delta) {
  affected_mark_.Clear();
  affected_list_.clear();
  collecting_affected_ = true;
  for (const Edge& e : delta.insertions) InsertEdge(e.u, e.v);
  for (const Edge& e : delta.deletions) RemoveEdge(e.u, e.v);
  collecting_affected_ = false;
  return std::move(affected_list_);
}

bool CoreMaintainer::InjectIndexFaultForDrill() {
  if (graph_.NumVertices() == 0) return false;
  // Desync the index from the graph: promote the front vertex of the
  // highest populated level one level up. CoreOf now disagrees with a
  // fresh decomposition for that vertex — detectable by both the
  // sampled-coreness probe and the full invariant sweep.
  uint32_t level = order_.MaxLevel();
  for (;;) {
    const VertexId v = order_.LevelFront(level);
    if (v != kNoVertex) {
      order_.MoveToLevelBack(v, level + 1);
      return true;
    }
    if (level == 0) return false;
    --level;
  }
}

}  // namespace avt
