// Order-based core maintenance (paper Section 5.2, Algorithms 4 and 5).
//
// CoreMaintainer owns a Graph plus its KOrder index and keeps both
// consistent under edge insertions and deletions. A batch delta is applied
// one edge at a time: a single edge changes any core number by at most
// one, so the published single-edge OrderInsert / OrderRemoval updates,
// looped over the batch, implement the paper's bounded K-order maintenance
// exactly (see DESIGN.md for the equivalence argument).
//
// Insertion cascade ("EdgeInsert"). Let the root be the endpoint earlier
// in K-order, at level K. Its remaining degree deg+ rises by one; if it
// now exceeds K a promotion cascade runs over level K in order: a visited
// vertex w is an optimistic candidate when
//     deg+(w) + deg-(w) > K
// where deg-(w) counts already-candidate neighbors positioned before w.
// After the scan, candidates whose exact support
//     |{x in nbr(w) : core(x) >= K+1}| + |{x in nbr(w) : x candidate}|
// falls below K+1 are eliminated to a fixpoint. Survivors form exactly the
// set of vertices whose core number rises to K+1 (the unique maximal
// self-supporting set); they move, preserving relative order, to the front
// of level K+1. Eliminated vertices move to the back of level K in
// elimination order, which provably restores deg+(v) <= core(v).
//
// Deletion cascade ("EdgeRemove"). Only vertices at level K = min endpoint
// core can drop, by exactly one level. Starting from the endpoints, a
// vertex drops when its current-core degree (the paper's max-core degree,
// Definition 6) falls below K; drops propagate to level-K neighbors.
// Dropped vertices move to the back of level K-1 in drop order.
//
// After every edge operation the index satisfies the full invariant suite
// of corelib/invariants.h; randomized differential tests in
// tests/maintainer_*.cc verify this against fresh decompositions.

#ifndef AVT_MAINT_MAINTAINER_H_
#define AVT_MAINT_MAINTAINER_H_

#include <cstdint>
#include <vector>

#include "corelib/korder.h"
#include "graph/delta.h"
#include "graph/dynamic_csr.h"
#include "graph/graph.h"
#include "util/epoch.h"

namespace avt {

/// Counters describing maintenance work done (for benches/tests).
struct MaintenanceStats {
  uint64_t edges_inserted = 0;
  uint64_t edges_removed = 0;
  uint64_t promotions = 0;   // vertices whose core rose
  uint64_t demotions = 0;    // vertices whose core fell
  uint64_t visited = 0;      // vertices examined by cascades
  uint64_t cascades = 0;     // operations that triggered a cascade

  void Reset() { *this = MaintenanceStats{}; }
};

/// Graph + K-order pair kept consistent under edge churn.
class CoreMaintainer {
 public:
  CoreMaintainer() = default;

  /// Takes a copy of `graph` and builds the index.
  void Reset(const Graph& graph);

  const Graph& graph() const { return graph_; }
  const KOrder& order() const { return order_; }
  uint32_t CoreOf(VertexId v) const { return order_.CoreOf(v); }

  /// Enables/disables the delta-maintained CSR mirror of the graph's
  /// adjacency. While enabled, every InsertEdge / RemoveEdge patches the
  /// mirror in lockstep with the dynamic adjacency (identical neighbor
  /// order at every point — see dynamic_csr.h), so scan-heavy readers
  /// (the follower oracle, the trial engine's worker oracles) can stay
  /// bound to one contiguous view across the whole snapshot stream.
  /// Enabling (re)builds the mirror from the current graph; disabling
  /// frees it. Reset() rebuilds an enabled mirror for the new graph.
  void SetCsrMirror(bool enabled);

  /// The maintained CSR mirror, or nullptr when disabled. The pointer
  /// stays valid across deltas (the object is patched in place).
  const DynamicCsr* csr() const { return csr_enabled_ ? &csr_ : nullptr; }

  /// Grows the vertex universe to at least `count` ids: isolated
  /// vertices appended to the graph, the K-order (back of level 0), the
  /// CSR mirror when enabled, and every cascade scratch array — all in
  /// lockstep, no rebuild. Streaming delta sources discover vertices
  /// mid-stream; callers grow before ApplyDelta so edge endpoints are
  /// always in range. Existing state (cores, tags, deg+) is untouched:
  /// an isolated vertex cannot change any other vertex's core number.
  void EnsureVertices(VertexId count);

  /// Inserts one edge, updating cores/K-order. Returns false if the edge
  /// already existed (no-op).
  bool InsertEdge(VertexId u, VertexId v);

  /// Removes one edge. Returns false if absent (no-op).
  bool RemoveEdge(VertexId u, VertexId v);

  /// Applies a whole delta (insertions then deletions, matching the
  /// paper's G'_t = G_{t-1} (+) E+ followed by E-). Returns the set of
  /// vertices touched by any cascade (deduplicated): the union the paper
  /// calls VI and VR before filtering by core number.
  std::vector<VertexId> ApplyDelta(const EdgeDelta& delta);

  const MaintenanceStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  /// Corruption drill (tests, `avt_cli stream --corrupt-state-after`):
  /// moves one vertex — the front of the highest populated level — one
  /// level up WITHOUT touching the graph, so the index reports a wrong
  /// core number: exactly the signature of a maintenance regression or
  /// a memory fault. Returns false on an empty universe. Never called
  /// by library code; the integrity audits (core/health.h) exist to
  /// catch states like the one this creates.
  bool InjectIndexFaultForDrill();

 private:
  /// Cascades are templated over the adjacency they scan: the dynamic
  /// per-vertex lists, or — when the mirror is enabled — the maintained
  /// CSR (patched before the cascade runs, so both see the identical
  /// post-mutation neighborhood in the identical order).
  template <typename Adjacency>
  void RunInsertCascade(const Adjacency& adj, VertexId root, uint32_t level);
  template <typename Adjacency>
  void RunRemoveCascade(const Adjacency& adj,
                        const std::vector<VertexId>& seeds, uint32_t level);
  void MarkAffected(VertexId v);

  Graph graph_;
  KOrder order_;
  MaintenanceStats stats_;
  DynamicCsr csr_;
  bool csr_enabled_ = false;

  // Scratch for cascades (sized to vertex count by Reset()).
  EpochArray<uint32_t> deg_minus_;
  EpochArray<uint8_t> in_heap_;
  EpochArray<uint8_t> candidate_;   // tentatively promoted
  EpochArray<uint8_t> eliminated_;
  EpochArray<uint32_t> support_;
  EpochArray<uint32_t> cd_;         // current-core degree (deletions)
  EpochArray<uint8_t> dropped_;

  // Batch-level affected set (valid during ApplyDelta).
  EpochArray<uint8_t> affected_mark_;
  std::vector<VertexId> affected_list_;
  bool collecting_affected_ = false;
};

}  // namespace avt

#endif  // AVT_MAINT_MAINTAINER_H_
