#include "maint/traversal_maintainer.h"

#include <algorithm>
#include <queue>

#include "corelib/decomposition.h"

namespace avt {

void TraversalMaintainer::Reset(const Graph& graph) {
  graph_ = graph;
  core_ = DecomposeCores(graph_).core;
  last_changed_.clear();
  in_queue_.Resize(graph_.NumVertices());
  candidate_.Resize(graph_.NumVertices());
  support_.Resize(graph_.NumVertices());
}

uint32_t TraversalMaintainer::LocalHIndex(VertexId v) const {
  // Count neighbors with core >= h for descending h; O(deg log deg) via
  // sorting a small buffer would also work, but a counting pass over
  // possible h values bounded by degree is simpler.
  uint32_t degree = graph_.Degree(v);
  if (degree == 0) return 0;
  // bucket[c] = #neighbors with min(core, degree) == c
  std::vector<uint32_t> bucket(degree + 1, 0);
  for (VertexId w : graph_.Neighbors(v)) {
    ++bucket[std::min(core_[w], degree)];
  }
  uint32_t at_least = 0;
  for (uint32_t h = degree;; --h) {
    at_least += bucket[h];
    if (at_least >= h) return h;
    if (h == 0) break;
  }
  return 0;
}

void TraversalMaintainer::RelaxDownward(std::vector<VertexId> seeds) {
  // Standard chaotic relaxation from above: core numbers only decrease,
  // and each decrease wakes the neighbors.
  std::queue<VertexId> queue;
  in_queue_.Clear();
  for (VertexId s : seeds) {
    if (!in_queue_.Get(s)) {
      in_queue_.Set(s, 1);
      queue.push(s);
    }
  }
  while (!queue.empty()) {
    VertexId v = queue.front();
    queue.pop();
    in_queue_.Set(v, 0);
    uint32_t h = LocalHIndex(v);
    if (h < core_[v]) {
      core_[v] = h;
      last_changed_.push_back(v);
      for (VertexId w : graph_.Neighbors(v)) {
        if (core_[w] > h && !in_queue_.Get(w)) {
          in_queue_.Set(w, 1);
          queue.push(w);
        }
      }
    }
  }
}

void TraversalMaintainer::PropagateUpward(VertexId root) {
  // Single-edge insertion raises cores by at most one, only within the
  // region of vertices with core == K reachable from the root through
  // same-core vertices (the "purecore"). Collect the region, then
  // eliminate members lacking K+1 prospective supporters.
  const uint32_t K = core_[root];
  candidate_.Clear();
  support_.Clear();

  std::vector<VertexId> region;
  std::queue<VertexId> bfs;
  candidate_.Set(root, 1);
  bfs.push(root);
  while (!bfs.empty()) {
    VertexId v = bfs.front();
    bfs.pop();
    region.push_back(v);
    for (VertexId w : graph_.Neighbors(v)) {
      if (core_[w] == K && !candidate_.Get(w)) {
        candidate_.Set(w, 1);
        bfs.push(w);
      }
    }
  }

  // support(v) = neighbors that could be at level K+1 afterwards:
  // old core > K, or region members still candidates.
  std::queue<VertexId> review;
  for (VertexId v : region) {
    uint32_t s = 0;
    for (VertexId w : graph_.Neighbors(v)) {
      if (core_[w] > K || candidate_.Get(w)) ++s;
    }
    support_.Set(v, s);
    if (s <= K) review.push(v);
  }
  while (!review.empty()) {
    VertexId v = review.front();
    review.pop();
    if (!candidate_.Get(v)) continue;
    if (support_.Get(v) > K) continue;
    candidate_.Set(v, 0);
    for (VertexId w : graph_.Neighbors(v)) {
      if (candidate_.Get(w)) {
        support_.Add(w, static_cast<uint32_t>(-1));
        if (support_.Get(w) <= K) review.push(w);
      }
    }
  }
  for (VertexId v : region) {
    if (candidate_.Get(v)) {
      core_[v] = K + 1;
      last_changed_.push_back(v);
    }
  }
}

bool TraversalMaintainer::InsertEdge(VertexId u, VertexId v) {
  if (!graph_.AddEdge(u, v)) return false;
  last_changed_.clear();
  VertexId root = core_[u] <= core_[v] ? u : v;
  PropagateUpward(root);
  return true;
}

bool TraversalMaintainer::RemoveEdge(VertexId u, VertexId v) {
  if (!graph_.RemoveEdge(u, v)) return false;
  last_changed_.clear();
  RelaxDownward({u, v});
  return true;
}

void TraversalMaintainer::ApplyDelta(const EdgeDelta& delta) {
  for (const Edge& e : delta.insertions) InsertEdge(e.u, e.v);
  for (const Edge& e : delta.deletions) RemoveEdge(e.u, e.v);
}

}  // namespace avt
