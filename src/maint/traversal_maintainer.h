// Traversal-based core maintenance (the pre-K-order state of the art the
// paper builds on: Sariyüce et al. PVLDB'13 [31], Li et al. TKDE'14
// [26]).
//
// Maintains only core numbers — no K-order — using the locality property
// of coreness: core(v) equals the largest h such that v has at least h
// neighbors with core >= h (an h-index fixpoint). Insertions seed from
// the edge endpoints and propagate through the "purecore" region;
// deletions re-run the h-index rule to a fixpoint from above.
//
// This engine exists for three reasons:
//   * an independent implementation to differential-test CoreMaintainer
//     against (two engines + one naive recompute rarely share bugs);
//   * the baseline the microbench compares order-based maintenance to;
//   * callers that only need core numbers (no anchored queries) can use
//     the lighter structure.

#ifndef AVT_MAINT_TRAVERSAL_MAINTAINER_H_
#define AVT_MAINT_TRAVERSAL_MAINTAINER_H_

#include <cstdint>
#include <vector>

#include "graph/delta.h"
#include "graph/graph.h"
#include "util/epoch.h"

namespace avt {

/// Core-number-only incremental maintenance.
class TraversalMaintainer {
 public:
  TraversalMaintainer() = default;

  /// Copies `graph` and computes initial core numbers.
  void Reset(const Graph& graph);

  const Graph& graph() const { return graph_; }
  uint32_t CoreOf(VertexId v) const { return core_[v]; }
  const std::vector<uint32_t>& cores() const { return core_; }

  /// Inserts an edge and updates core numbers. False if already present.
  bool InsertEdge(VertexId u, VertexId v);

  /// Removes an edge and updates core numbers. False if absent.
  bool RemoveEdge(VertexId u, VertexId v);

  /// Applies a delta (insertions then deletions).
  void ApplyDelta(const EdgeDelta& delta);

  /// Vertices whose core changed in the most recent operation.
  const std::vector<VertexId>& last_changed() const {
    return last_changed_;
  }

 private:
  // h-index of the multiset {effective core of each neighbor}, capped by
  // the vertex's degree.
  uint32_t LocalHIndex(VertexId v) const;

  // Propagates decreases from `seeds` until the h-index fixpoint.
  void RelaxDownward(std::vector<VertexId> seeds);

  // Propagates potential increases after inserting edge (u, v).
  void PropagateUpward(VertexId root);

  Graph graph_;
  std::vector<uint32_t> core_;
  std::vector<VertexId> last_changed_;
  EpochArray<uint8_t> in_queue_;
  EpochArray<uint8_t> candidate_;
  EpochArray<uint32_t> support_;
};

}  // namespace avt

#endif  // AVT_MAINT_TRAVERSAL_MAINTAINER_H_
