#include "util/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace avt {
namespace {

constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};

// Log-safe transform: values <= 0 map below the smallest positive value.
double Transform(double v, bool log_scale, double floor_value) {
  if (!log_scale) return v;
  return std::log10(std::max(v, floor_value));
}

std::string FormatTick(double v, bool log_scale) {
  char buf[32];
  if (log_scale) {
    std::snprintf(buf, sizeof(buf), "1e%+03d",
                  static_cast<int>(std::lround(v)));
  } else if (std::fabs(v) >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.2g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  }
  return buf;
}

}  // namespace

std::string RenderAsciiChart(const std::vector<std::string>& x_labels,
                             const std::vector<ChartSeries>& series,
                             const ChartOptions& options) {
  if (series.empty() || x_labels.empty()) return "(empty chart)\n";

  // Establish the y range across all series.
  double raw_min = 0, raw_max = 0;
  bool first = true;
  double positive_floor = 1.0;
  for (const ChartSeries& s : series) {
    for (double v : s.values) {
      if (v > 0 && (v < positive_floor || positive_floor == 1.0)) {
        positive_floor = std::min(positive_floor, v);
      }
      if (first) {
        raw_min = raw_max = v;
        first = false;
      } else {
        raw_min = std::min(raw_min, v);
        raw_max = std::max(raw_max, v);
      }
    }
  }
  if (first) return "(empty chart)\n";
  if (positive_floor <= 0) positive_floor = 1.0;
  // For log charts zeros plot half a decade below the smallest positive.
  double floor_value = positive_floor / 3.0;

  double lo = Transform(options.log_scale ? std::max(raw_min, floor_value)
                                          : raw_min,
                        options.log_scale, floor_value);
  double hi = Transform(std::max(raw_max, floor_value), options.log_scale,
                        floor_value);
  if (raw_min <= 0 && options.log_scale) {
    lo = Transform(floor_value, true, floor_value);
  }
  if (hi - lo < 1e-9) hi = lo + 1.0;

  const uint32_t height = std::max(options.height, 4u);
  const uint32_t width = std::max<uint32_t>(
      options.width, static_cast<uint32_t>(x_labels.size()));
  std::vector<std::string> canvas(height, std::string(width, ' '));

  auto row_of = [&](double v) {
    double t = Transform(options.log_scale && v <= 0 ? floor_value : v,
                         options.log_scale, floor_value);
    double frac = (t - lo) / (hi - lo);
    frac = std::clamp(frac, 0.0, 1.0);
    return static_cast<uint32_t>(
        std::lround((1.0 - frac) * (height - 1)));
  };
  auto col_of = [&](size_t index, size_t count) {
    if (count <= 1) return 0u;
    return static_cast<uint32_t>(index * (width - 1) / (count - 1));
  };

  for (size_t s = 0; s < series.size(); ++s) {
    char glyph = kGlyphs[s % sizeof(kGlyphs)];
    const std::vector<double>& values = series[s].values;
    uint32_t prev_col = 0, prev_row = 0;
    for (size_t i = 0; i < values.size() && i < x_labels.size(); ++i) {
      uint32_t col = col_of(i, std::min(values.size(), x_labels.size()));
      uint32_t row = row_of(values[i]);
      canvas[row][col] = glyph;
      // Connect consecutive points with a light trace.
      if (i > 0) {
        uint32_t c0 = prev_col, c1 = col;
        for (uint32_t c = c0 + 1; c < c1; ++c) {
          double frac = static_cast<double>(c - c0) /
                        static_cast<double>(c1 - c0);
          uint32_t r = static_cast<uint32_t>(std::lround(
              prev_row + frac * (static_cast<double>(row) - prev_row)));
          if (canvas[r][c] == ' ') canvas[r][c] = '.';
        }
      }
      prev_col = col;
      prev_row = row;
    }
  }

  // Compose with y ticks on the left.
  std::string out;
  if (!options.y_label.empty()) {
    out += options.y_label + "\n";
  }
  const std::string top_tick = FormatTick(hi, options.log_scale);
  const std::string bottom_tick = FormatTick(lo, options.log_scale);
  size_t tick_width = std::max(top_tick.size(), bottom_tick.size());
  for (uint32_t r = 0; r < height; ++r) {
    std::string tick;
    if (r == 0) {
      tick = top_tick;
    } else if (r == height - 1) {
      tick = bottom_tick;
    } else if (r == height / 2) {
      tick = FormatTick(lo + (hi - lo) / 2, options.log_scale);
    }
    tick.insert(tick.begin(), tick_width - std::min(tick.size(), tick_width),
                ' ');
    out += tick + " |" + canvas[r] + "\n";
  }
  out.append(tick_width + 1, ' ');
  out += '+';
  out.append(width, '-');
  out += '\n';

  // X labels: first, middle, last.
  std::string x_axis(tick_width + 2 + width, ' ');
  auto place = [&x_axis, tick_width](uint32_t col, const std::string& text) {
    size_t start = tick_width + 2 + col;
    if (start + text.size() > x_axis.size()) {
      if (text.size() >= x_axis.size()) return;
      start = x_axis.size() - text.size();
    }
    x_axis.replace(start, text.size(), text);
  };
  place(0, x_labels.front());
  if (x_labels.size() > 2) {
    place(col_of(x_labels.size() / 2, x_labels.size()),
          x_labels[x_labels.size() / 2]);
  }
  if (x_labels.size() > 1) {
    place(col_of(x_labels.size() - 1, x_labels.size()), x_labels.back());
  }
  out += x_axis + "  (" + options.x_label + ")\n";

  // Legend.
  for (size_t s = 0; s < series.size(); ++s) {
    out += "  ";
    out += kGlyphs[s % sizeof(kGlyphs)];
    out += " = " + series[s].label;
    out += '\n';
  }
  return out;
}

}  // namespace avt
