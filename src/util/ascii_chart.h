// ASCII line charts for the experiment harness.
//
// Each bench binary reproduces a paper figure; besides the data table it
// renders the series as a log- or linear-scale ASCII chart so the
// figure's *shape* (orderings, crossovers, trends) is visible directly in
// the terminal, mirroring the plots in the paper.

#ifndef AVT_UTIL_ASCII_CHART_H_
#define AVT_UTIL_ASCII_CHART_H_

#include <cstdint>
#include <string>
#include <vector>

namespace avt {

/// One plotted series: a label and y values over the shared x axis.
struct ChartSeries {
  std::string label;
  std::vector<double> values;
};

/// Rendering options.
struct ChartOptions {
  uint32_t width = 64;    // plot columns
  uint32_t height = 16;   // plot rows
  bool log_scale = true;  // log10 y axis (the paper's figures are log)
  std::string x_label;
  std::string y_label;
};

/// Renders series over shared x labels into a multi-line string.
/// Each series is drawn with its own glyph; a legend follows the plot.
std::string RenderAsciiChart(const std::vector<std::string>& x_labels,
                             const std::vector<ChartSeries>& series,
                             const ChartOptions& options);

}  // namespace avt

#endif  // AVT_UTIL_ASCII_CHART_H_
