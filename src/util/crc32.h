// Software CRC32 (IEEE 802.3 polynomial, reflected) for durability
// framing. Every WAL record and checkpoint section carries a CRC so a
// torn write, bit rot, or truncation surfaces as kCorruption during
// recovery instead of silently corrupting the replayed state. A
// table-driven byte-at-a-time implementation is plenty: durability IO
// is dominated by fsync, not checksumming, at the delta rates the
// engine sustains.

#ifndef AVT_UTIL_CRC32_H_
#define AVT_UTIL_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace avt {

namespace crc32_internal {

inline const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace crc32_internal

/// CRC32 of `size` bytes starting at `data`, continuing from `seed`
/// (pass the previous call's return value to checksum a record in
/// pieces; the default starts a fresh checksum).
inline uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0) {
  const auto& table = crc32_internal::Table();
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

}  // namespace avt

#endif  // AVT_UTIL_CRC32_H_
