// Epoch-stamped scratch arrays: O(1) logical reset of per-vertex state.
//
// The follower oracle evaluates thousands of hypothetical anchor sets per
// snapshot; each evaluation needs clean per-vertex scratch (candidate
// flags, candidate degrees, supports) without paying O(n) to clear or
// allocating. EpochArray stamps each slot with the epoch that wrote it;
// bumping the epoch invalidates everything at once.

#ifndef AVT_UTIL_EPOCH_H_
#define AVT_UTIL_EPOCH_H_

#include <cstdint>
#include <vector>

namespace avt {

/// Per-index value store with O(1) whole-array reset.
template <typename T>
class EpochArray {
 public:
  EpochArray() = default;
  explicit EpochArray(size_t size, T default_value = T{})
      : default_(default_value) {
    Resize(size);
  }

  void Resize(size_t size) {
    values_.assign(size, default_);
    stamps_.assign(size, 0);
    epoch_ = 1;
  }

  size_t size() const { return values_.size(); }

  /// Invalidates all slots in O(1).
  void Clear() { ++epoch_; }

  bool Contains(size_t i) const { return stamps_[i] == epoch_; }

  /// Current value, or the default if the slot is stale.
  T Get(size_t i) const {
    return stamps_[i] == epoch_ ? values_[i] : default_;
  }

  void Set(size_t i, T value) {
    stamps_[i] = epoch_;
    values_[i] = value;
  }

  /// Adds `delta` to the slot (initializing from the default) and returns
  /// the new value.
  T Add(size_t i, T delta) {
    T next = Get(i) + delta;
    Set(i, next);
    return next;
  }

 private:
  std::vector<T> values_;
  std::vector<uint64_t> stamps_;
  uint64_t epoch_ = 1;
  T default_{};
};

}  // namespace avt

#endif  // AVT_UTIL_EPOCH_H_
