// Epoch-stamped scratch arrays: O(1) logical reset of per-vertex state.
//
// The follower oracle evaluates thousands of hypothetical anchor sets per
// snapshot; each evaluation needs clean per-vertex scratch (candidate
// flags, candidate degrees, supports) without paying O(n) to clear or
// allocating. EpochArray stamps each slot with the epoch that wrote it;
// bumping the epoch invalidates everything at once.
//
// Layout: value and stamp live in ONE slot struct, not parallel arrays.
// The cascade hot loops touch several EpochArrays per visited vertex;
// with parallel arrays every Get/Set costs two cache lines (stamp +
// value), with packed slots it costs one. That halves the scratch
// traffic of the oracle's probe path — measurable on bandwidth-bound
// per-delta workloads (docs/PERFORMANCE.md).

#ifndef AVT_UTIL_EPOCH_H_
#define AVT_UTIL_EPOCH_H_

#include <cstdint>
#include <vector>

namespace avt {

/// Per-index value store with O(1) whole-array reset.
template <typename T>
class EpochArray {
 public:
  EpochArray() = default;
  explicit EpochArray(size_t size, T default_value = T{})
      : default_(default_value) {
    Resize(size);
  }

  void Resize(size_t size) {
    slots_.assign(size, Slot{default_, 0});
    epoch_ = 1;
  }

  /// Extends the index space without disturbing live slots: appended
  /// slots carry stamp 0, which no live epoch ever equals, so they read
  /// as stale until first written. Streaming workloads grow the vertex
  /// universe mid-run and must not pay (or suffer) the full reset that
  /// Resize performs. Never shrinks.
  void Grow(size_t size) {
    if (size > slots_.size()) slots_.resize(size, Slot{default_, 0});
  }

  size_t size() const { return slots_.size(); }

  /// Invalidates all slots in O(1). On stamp wrap-around (once per 2^32
  /// clears) the array is physically reset so stale stamps can never
  /// collide with a reused epoch.
  void Clear() {
    if (++epoch_ == 0) {
      for (Slot& slot : slots_) slot.stamp = 0;
      epoch_ = 1;
    }
  }

  bool Contains(size_t i) const { return slots_[i].stamp == epoch_; }

  /// Current value, or the default if the slot is stale.
  T Get(size_t i) const {
    const Slot& slot = slots_[i];
    return slot.stamp == epoch_ ? slot.value : default_;
  }

  void Set(size_t i, T value) {
    slots_[i].stamp = epoch_;
    slots_[i].value = value;
  }

  /// Adds `delta` to the slot (initializing from the default) and returns
  /// the new value.
  T Add(size_t i, T delta) {
    T next = Get(i) + delta;
    Set(i, next);
    return next;
  }

 private:
  struct Slot {
    T value;
    uint32_t stamp;
  };

  std::vector<Slot> slots_;
  uint32_t epoch_ = 1;
  T default_{};
};

}  // namespace avt

#endif  // AVT_UTIL_EPOCH_H_
