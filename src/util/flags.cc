#include "util/flags.h"

#include <cstdlib>

namespace avt {

Flags Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      flags.errors_.push_back("bare '--' argument");
      continue;
    }
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // --name value, unless the next token is another flag — then treat as
    // a boolean switch.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[body] = argv[i + 1];
      ++i;
    } else {
      flags.values_[body] = "true";
    }
  }
  return flags;
}

int64_t Flags::GetInt(const std::string& name, int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') return default_value;
  return v;
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') return default_value;
  return v;
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return default_value;
}

}  // namespace avt
