// Minimal command-line flag parsing for the bench/example binaries.
//
// Supports --name=value and --name value forms plus boolean switches
// (--verbose). Unknown flags are reported; positional arguments are
// collected in order. This deliberately avoids a third-party dependency —
// the harness only needs a handful of scalar options.

#ifndef AVT_UTIL_FLAGS_H_
#define AVT_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace avt {

/// Parsed command line: flag map plus positional arguments.
class Flags {
 public:
  /// Parses argv. On syntax error records the problem and keeps going.
  static Flags Parse(int argc, char** argv);

  bool Has(const std::string& name) const {
    return values_.count(name) != 0;
  }

  std::string GetString(const std::string& name,
                        const std::string& default_value) const {
    auto it = values_.find(name);
    return it == values_.end() ? default_value : it->second;
  }

  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::vector<std::string>& errors() const { return errors_; }

  /// Inserts/overrides a flag value (used by tests).
  void Set(const std::string& name, const std::string& value) {
    values_[name] = value;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::vector<std::string> errors_;
};

}  // namespace avt

#endif  // AVT_UTIL_FLAGS_H_
