// Flat open-addressing hash map keyed by uint64_t, built for the
// incremental tracker's trial memo.
//
// The per-delta local search hammers its memo with a hot triple —
// find / insert / erase — plus a whole-map clear on every anchor
// commit. std::unordered_map pays a heap allocation per node and a
// pointer chase per probe, and its clear() walks every node. This map
// stores entries inline in one slot array (linear probing, power-of-two
// capacity), erases with tombstones, and clears by bumping an epoch
// stamp — O(1), no destruction, no free-list churn. Capacity only ever
// grows (Reserve, or load-factor doubling when LIVE entries need the
// room — a tombstone-dominated table compacts in place instead of
// doubling), so after a short warm-up the steady-state loop runs
// allocation-free at its high-water mark. SetMaxCapacity pins a hard
// byte ceiling for budget-bounded callers (core/memo_store.h).
//
// Values must be trivially copyable PODs (they are memcpy'd on rehash
// and abandoned by Clear without destruction). Any uint64_t is a valid
// key — occupancy lives in a per-slot state byte, not a reserved key.

#ifndef AVT_UTIL_FLAT_MAP_H_
#define AVT_UTIL_FLAT_MAP_H_

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace avt {

/// Open-addressing uint64 -> Value map with O(1) epoch-based Clear.
template <typename Value>
class FlatKeyMap {
  static_assert(std::is_trivially_copyable_v<Value>,
                "FlatKeyMap values are memcpy'd and never destroyed");

 public:
  FlatKeyMap() { Rehash(kMinCapacity); }
  explicit FlatKeyMap(size_t expected_entries) {
    Rehash(CapacityFor(expected_entries));
  }

  /// Grows (never shrinks) so `expected_entries` live entries fit
  /// without a rehash. Existing entries are preserved. Clamped to the
  /// capacity cap when one is set.
  void Reserve(size_t expected_entries) {
    size_t want = CapacityFor(expected_entries);
    if (max_capacity_ != 0 && want > max_capacity_) want = max_capacity_;
    if (want > slots_.size()) Rehash(want);
  }

  /// Hard ceiling on the slot-array capacity (0 = unlimited). Once the
  /// table reaches the cap it compacts in place instead of doubling;
  /// the caller must keep live entries strictly under 3/4 of the cap
  /// (evicting ahead of inserts), or Put aborts. Must be a power of two
  /// >= both kMinCapacity and the current capacity — set it before the
  /// map grows, not after.
  void SetMaxCapacity(size_t max_slots) {
    AVT_CHECK((max_slots & (max_slots - 1)) == 0);
    AVT_CHECK(max_slots == 0 ||
              (max_slots >= kMinCapacity && max_slots >= slots_.size()));
    max_capacity_ = max_slots;
  }
  size_t max_capacity() const { return max_capacity_; }

  size_t size() const { return size_; }
  size_t capacity() const { return slots_.size(); }
  /// Occupied + tombstoned slots this epoch (the load Put grows on).
  size_t used() const { return used_; }
  /// Bytes of the slot array — the map's whole steady-state footprint.
  size_t capacity_bytes() const { return slots_.size() * sizeof(Slot); }
  /// Per-slot cost, for sizing a byte budget in slots.
  static constexpr size_t slot_bytes() { return sizeof(Slot); }
  static constexpr size_t min_capacity() { return kMinCapacity; }
  bool empty() const { return size_ == 0; }

  /// O(1) logical clear: every slot's stamp goes stale at once.
  void Clear() {
    size_ = 0;
    used_ = 0;
    if (++epoch_ == 0) {  // stamp wrap: physically reset, restart at 1
      for (Slot& slot : slots_) slot.stamp = 0;
      epoch_ = 1;
    }
  }

  /// Pointer to the value for `key`, or nullptr. Stable until the next
  /// insert/Reserve (which may rehash).
  Value* Find(uint64_t key) {
    Slot* slot = FindSlot(key);
    return slot != nullptr ? &slot->value : nullptr;
  }
  const Value* Find(uint64_t key) const {
    const Slot* slot = const_cast<FlatKeyMap*>(this)->FindSlot(key);
    return slot != nullptr ? &slot->value : nullptr;
  }

  /// Inserts or overwrites.
  void Put(uint64_t key, const Value& value) {
    const size_t mask = slots_.size() - 1;
    size_t i = Hash(key) & mask;
    size_t first_tombstone = kNoSlot;
    for (;; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (slot.stamp != epoch_) {  // empty: key is absent
        Slot& dest =
            first_tombstone != kNoSlot ? slots_[first_tombstone] : slot;
        const bool fresh = &dest == &slot;
        dest.key = key;
        dest.value = value;
        dest.stamp = epoch_;
        dest.state = kOccupied;
        ++size_;
        if (fresh && ++used_ * 4 >= slots_.size() * 3) {
          GrowOrCompact();
        }
        return;
      }
      if (slot.state == kTombstone) {
        if (first_tombstone == kNoSlot) first_tombstone = i;
      } else if (slot.key == key) {
        slot.value = value;
        return;
      }
    }
  }

  /// Removes `key` if present; returns whether it was.
  bool Erase(uint64_t key) {
    Slot* slot = FindSlot(key);
    if (slot == nullptr) return false;
    slot->state = kTombstone;
    --size_;
    return true;
  }

 private:
  enum : uint8_t { kOccupied = 0, kTombstone = 1 };
  static constexpr size_t kMinCapacity = 64;
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  struct Slot {
    uint64_t key = 0;
    Value value{};
    uint32_t stamp = 0;  // slot live iff stamp == epoch_
    uint8_t state = kOccupied;
  };

  /// Smallest power-of-two capacity keeping `entries` under 3/4 load.
  static size_t CapacityFor(size_t entries) {
    size_t capacity = kMinCapacity;
    while (entries * 4 >= capacity * 3) capacity *= 2;
    return capacity;
  }

  /// Put crossed 3/4 total load (live + tombstones). Doubling is only
  /// the right answer when LIVE entries need the room; an erase-heavy
  /// workload reaches the trigger with a tombstone-dominated table, and
  /// doubling there grows capacity without bound while size_ stays
  /// small. When live load is below 3/8 (half the trigger), rehash in
  /// place at the same capacity — it squashes every tombstone, and the
  /// next trigger needs >= 3/8 * capacity fresh inserts, so the O(cap)
  /// compactions stay amortized O(1) per insert. A capacity cap also
  /// forces in-place compaction; there the caller guarantees live load
  /// stays under 3/4 (checked), since no amount of compaction can fit
  /// more live entries than slots.
  void GrowOrCompact() {
    const size_t capacity = slots_.size();
    const bool tombstone_heavy = size_ * 8 <= capacity * 3;
    const bool capped = max_capacity_ != 0 && capacity * 2 > max_capacity_;
    if (capped) {
      AVT_CHECK_MSG(size_ * 4 < capacity * 3,
                    "FlatKeyMap: live entries exceed the capacity cap; "
                    "the caller must evict before inserting");
    }
    Rehash(tombstone_heavy || capped ? capacity : capacity * 2);
  }

  /// SplitMix64 finalizer: full avalanche so the structured memo keys
  /// ((slot << 32) | vertex) spread over the table.
  static uint64_t Hash(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  Slot* FindSlot(uint64_t key) {
    const size_t mask = slots_.size() - 1;
    for (size_t i = Hash(key) & mask;; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (slot.stamp != epoch_) return nullptr;  // empty stops the probe
      if (slot.state == kOccupied && slot.key == key) return &slot;
    }
  }

  void Rehash(size_t new_capacity) {
    AVT_DCHECK((new_capacity & (new_capacity - 1)) == 0);
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    const uint32_t old_epoch = epoch_;
    epoch_ = 1;
    size_ = 0;
    used_ = 0;
    const size_t mask = slots_.size() - 1;
    for (const Slot& slot : old) {
      if (slot.stamp != old_epoch || slot.state != kOccupied) continue;
      size_t i = Hash(slot.key) & mask;
      while (slots_[i].stamp == epoch_) i = (i + 1) & mask;
      slots_[i].key = slot.key;
      slots_[i].value = slot.value;
      slots_[i].stamp = epoch_;
      slots_[i].state = kOccupied;
      ++size_;
      ++used_;
    }
  }

  std::vector<Slot> slots_;
  uint32_t epoch_ = 1;
  size_t size_ = 0;          // live entries
  size_t used_ = 0;          // occupied + tombstoned slots this epoch
  size_t max_capacity_ = 0;  // capacity ceiling in slots; 0 = unlimited
};

}  // namespace avt

#endif  // AVT_UTIL_FLAT_MAP_H_
