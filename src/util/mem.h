// Process-memory introspection for the scalability tier: peak and
// current resident set size, read from getrusage / /proc/self/statm.
//
// Peak RSS — not wall time — is what decides whether a million-delta
// run is servable on a given box (see docs/PERFORMANCE.md, scalability
// section), so RunSummary carries it next to ms/delta and the benches
// report it per tier. Both readers are best-effort: on platforms
// without the facility they return 0, and every consumer treats 0 as
// "unknown" rather than "tiny".

#ifndef AVT_UTIL_MEM_H_
#define AVT_UTIL_MEM_H_

#include <cstdint>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace avt {

/// High-water resident set size of this process in bytes (getrusage
/// ru_maxrss: KiB on Linux, bytes on macOS). 0 when unavailable.
inline uint64_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<uint64_t>(usage.ru_maxrss);
#else
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

/// Current resident set size in bytes (/proc/self/statm, Linux only;
/// falls back to 0 elsewhere). Cheaper than parsing /proc/self/status
/// and precise enough for before/after deltas in benches.
inline uint64_t CurrentRssBytes() {
#if defined(__linux__)
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return 0;
  unsigned long long size_pages = 0, resident_pages = 0;
  const int matched =
      std::fscanf(statm, "%llu %llu", &size_pages, &resident_pages);
  std::fclose(statm);
  if (matched != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  return resident_pages * static_cast<uint64_t>(page > 0 ? page : 4096);
#else
  return 0;
#endif
}

}  // namespace avt

#endif  // AVT_UTIL_MEM_H_
