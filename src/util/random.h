// Deterministic, fast pseudo-random number generation.
//
// All stochastic components of the library (graph generators, churn
// workloads, randomized tests) take an explicit seed and route through
// Rng so that every experiment in EXPERIMENTS.md is exactly
// reproducible. The engine is xoshiro256**, seeded via SplitMix64,
// which is the standard seeding recipe recommended by the xoshiro
// authors.

#ifndef AVT_UTIL_RANDOM_H_
#define AVT_UTIL_RANDOM_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "util/status.h"

namespace avt {

/// SplitMix64 step; used for seeding and as a cheap hash.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with convenience sampling helpers.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t Uniform(uint64_t bound) {
    AVT_DCHECK(bound > 0);
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    AVT_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Geometric-ish power-law sample: returns x >= 1 with
  /// P(x) ~ x^(-alpha), truncated at max_value. Uses inverse-CDF of the
  /// continuous Pareto and rounds down.
  uint64_t PowerLaw(double alpha, uint64_t max_value) {
    AVT_DCHECK(alpha > 1.0);
    AVT_DCHECK(max_value >= 1);
    // Inverse CDF of Pareto(x_m = 1): x = (1-u)^(-1/(alpha-1)).
    double u = NextDouble();
    double x = 1.0;
    double inv = -1.0 / (alpha - 1.0);
    // Guard pow against u == 0.
    if (u > 0.0) x = __builtin_pow(1.0 - u, inv);
    if (x > static_cast<double>(max_value)) {
      return max_value;
    }
    uint64_t result = static_cast<uint64_t>(x);
    return result < 1 ? 1 : result;
  }

  /// Standard-ish exponential sample with the given rate.
  double Exponential(double rate) {
    double u = NextDouble();
    if (u >= 1.0) u = 0.9999999999;
    return -__builtin_log(1.0 - u) / rate;
  }

  /// Fisher-Yates shuffle of the whole vector.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples `count` distinct indices from [0, n) (count <= n).
  /// Floyd's algorithm; O(count) expected time.
  std::vector<uint64_t> SampleDistinct(uint64_t n, uint64_t count);

  /// Forks an independent stream (useful for parallel deterministic work).
  Rng Fork() { return Rng(Next() ^ 0xA3C59AC2ULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t state_[4];
};

inline std::vector<uint64_t> Rng::SampleDistinct(uint64_t n, uint64_t count) {
  AVT_CHECK(count <= n);
  // Floyd's sampling; for dense requests fall back to shuffle-prefix.
  if (count * 2 >= n) {
    std::vector<uint64_t> all(n);
    for (uint64_t i = 0; i < n; ++i) all[i] = i;
    Shuffle(all);
    all.resize(count);
    return all;
  }
  std::vector<uint64_t> result;
  result.reserve(count);
  // Simple hash-set-free variant: Floyd with linear membership check is
  // fine for the small `count` used by churn generation; keep a sorted
  // vector for O(log) membership.
  std::vector<uint64_t> seen;
  seen.reserve(count);
  auto contains = [&seen](uint64_t x) {
    for (uint64_t s : seen) {
      if (s == x) return true;
    }
    return false;
  };
  for (uint64_t j = n - count; j < n; ++j) {
    uint64_t t = Uniform(j + 1);
    if (contains(t)) t = j;
    seen.push_back(t);
    result.push_back(t);
  }
  return result;
}

}  // namespace avt

#endif  // AVT_UTIL_RANDOM_H_
