// Small numeric-summary helpers shared by generators, benches and tests.

#ifndef AVT_UTIL_STATS_H_
#define AVT_UTIL_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace avt {

/// Streaming mean/min/max/variance accumulator (Welford).
class Summary {
 public:
  void Add(double x) {
    ++n_;
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  uint64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Percentile over a copy of the data (p in [0,100]).
inline double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = lo + 1 < values.size() ? lo + 1 : lo;
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace avt

#endif  // AVT_UTIL_STATS_H_
