// Lightweight error-status type used by fallible operations (mostly IO).
//
// The library core (graph algorithms) uses AVT_CHECK assertions for
// programming-error invariants and Status only where failure is a normal
// runtime outcome (missing file, malformed input). This mirrors the
// RocksDB convention of returning Status from anything that touches the
// outside world while keeping hot algorithm paths exception-free.

#ifndef AVT_UTIL_STATUS_H_
#define AVT_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace avt {

/// Error codes for fallible operations.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kCorruption,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  /// Temporarily rejected, retry later: an open circuit breaker
  /// short-circuiting pulls (graph/resilient_source.h). Distinct from
  /// kIoError so callers can tell "the source failed" from "the
  /// breaker is protecting the source".
  kUnavailable,
};

/// Value-semantic status: either OK or a code plus message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "IoError: cannot open foo.txt".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kIoError: return "IoError";
      case StatusCode::kCorruption: return "Corruption";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kUnimplemented: return "Unimplemented";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kUnavailable: return "Unavailable";
    }
    return "Unknown";
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Minimal StatusOr: value or error. Accessing value() on error aborts.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return value_;
  }
  T& value() & {
    CheckOk();
    return value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(value_);
  }

 private:
  void CheckOk() const {
    if (!status_.ok()) {
      std::fprintf(stderr, "StatusOr::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }
  Status status_;
  T value_{};
};

}  // namespace avt

/// Propagates a non-OK Status to the caller. For use in functions that
/// return Status: evaluates `expr` once; if the result is an error it
/// becomes the function's return value, otherwise execution continues.
#define AVT_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::avt::Status avt_rie_status_ = (expr);       \
    if (!avt_rie_status_.ok()) {                  \
      return avt_rie_status_;                     \
    }                                             \
  } while (0)

/// Fatal invariant check, active in all build types. Algorithm invariants
/// in this library are cheap relative to the graph work around them.
#define AVT_CHECK(cond)                                                    \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "AVT_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define AVT_CHECK_MSG(cond, msg)                                           \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "AVT_CHECK failed at %s:%d: %s (%s)\n",         \
                   __FILE__, __LINE__, #cond, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

/// Debug-only check for hot paths; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define AVT_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define AVT_DCHECK(cond) AVT_CHECK(cond)
#endif

#endif  // AVT_UTIL_STATUS_H_
