// Plain-text table / CSV rendering for the experiment harness.
//
// Every bench binary prints (a) a human-readable aligned table matching
// the rows/series of the corresponding paper figure and (b) a CSV block
// that downstream plotting can consume. TablePrinter implements both from
// one row buffer.

#ifndef AVT_UTIL_TABLE_H_
#define AVT_UTIL_TABLE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace avt {

/// Buffers rows of string cells and renders aligned text or CSV.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Convenience for mixed scalar rows.
  class RowBuilder {
   public:
    explicit RowBuilder(TablePrinter* table) : table_(table) {}
    RowBuilder& Str(const std::string& s) {
      cells_.push_back(s);
      return *this;
    }
    RowBuilder& Int(int64_t v) {
      cells_.push_back(std::to_string(v));
      return *this;
    }
    RowBuilder& UInt(uint64_t v) {
      cells_.push_back(std::to_string(v));
      return *this;
    }
    RowBuilder& Double(double v, int precision = 3) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
      cells_.emplace_back(buf);
      return *this;
    }
    ~RowBuilder() { table_->AddRow(std::move(cells_)); }
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

   private:
    TablePrinter* table_;
    std::vector<std::string> cells_;
  };

  RowBuilder Row() { return RowBuilder(this); }

  /// Renders an aligned, pipe-separated table.
  std::string ToText() const {
    std::vector<size_t> width(header_.size(), 0);
    auto widen = [&width](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size() && i < width.size(); ++i) {
        if (row[i].size() > width[i]) width[i] = row[i].size();
      }
    };
    widen(header_);
    for (const auto& row : rows_) widen(row);

    std::string out;
    auto emit = [&out, &width](const std::vector<std::string>& row) {
      for (size_t i = 0; i < width.size(); ++i) {
        const std::string cell = i < row.size() ? row[i] : "";
        out += (i == 0 ? "| " : " ");
        out += cell;
        out.append(width[i] - cell.size(), ' ');
        out += " |";
      }
      out += '\n';
    };
    emit(header_);
    std::string rule = "|";
    for (size_t w : width) {
      rule.append(w + 2 + 1, '-');
      rule.back() = '|';
    }
    out += rule + "\n";
    for (const auto& row : rows_) emit(row);
    return out;
  }

  /// Renders RFC-ish CSV (no quoting needed: cells are numeric/identifiers).
  std::string ToCsv() const {
    std::string out;
    auto emit = [&out](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size(); ++i) {
        if (i) out += ',';
        out += row[i];
      }
      out += '\n';
    };
    emit(header_);
    for (const auto& row : rows_) emit(row);
    return out;
  }

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace avt

#endif  // AVT_UTIL_TABLE_H_
