#include "util/thread_pool.h"

namespace avt {

ThreadPool::ThreadPool(uint32_t num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  threads_.reserve(num_threads_ - 1);
  for (uint32_t id = 1; id < num_threads_; ++id) {
    threads_.emplace_back(&ThreadPool::WorkerLoop, this, id);
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Run(const std::function<void(uint32_t)>& body) {
  if (threads_.empty()) {
    body(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    body_ = &body;
    running_ = static_cast<uint32_t>(threads_.size());
    ++generation_;
  }
  wake_cv_.notify_all();
  body(0);
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return running_ == 0; });
  body_ = nullptr;
}

void ThreadPool::WorkerLoop(uint32_t id) {
  uint64_t seen = 0;
  while (true) {
    const std::function<void(uint32_t)>* body = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_cv_.wait(lock,
                    [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      body = body_;
    }
    (*body)(id);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
    }
    // The caller only waits when it finished its own share first, so a
    // single wakeup of the region owner suffices.
    done_cv_.notify_one();
  }
}

}  // namespace avt
