// Persistent worker pool + work-stealing parallel-for for the trial
// engines (anchor/trial_engine.h).
//
// The pool is a fork-join primitive, not a task queue: Run(body) executes
// body(worker_id) once on every worker concurrently — the calling thread
// participates as worker 0, the pool's threads as 1..num_threads-1 — and
// returns when all invocations finished. Workers sleep on a condition
// variable between regions, so an idle pool costs nothing; a pool of one
// spawns no threads and Run degenerates to a plain call, which keeps the
// serial paths free of synchronization.
//
// ParallelFor layers dynamic load balancing on top: the index range is
// split into one contiguous block per worker, each with an atomic cursor;
// a worker drains its own block in `grain`-sized chunks and then steals
// chunks from the other blocks. Every index is executed exactly once, and
// because the (worker, index) assignment only decides *where* a pure
// per-index computation runs — results land in index-addressed slots or
// in commutative reductions — callers stay deterministic under stealing.
// Work whose *cost accounting* must be deterministic per worker (the lazy
// trial shards) uses Run directly with fixed block bounds instead.

#ifndef AVT_UTIL_THREAD_POOL_H_
#define AVT_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace avt {

/// Fork-join worker pool. See file comment for the execution model.
class ThreadPool {
 public:
  /// A pool of `num_threads` workers total (0 and 1 both mean "no extra
  /// threads": Run executes inline on the caller).
  explicit ThreadPool(uint32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t num_threads() const { return num_threads_; }

  /// Executes body(worker_id) on every worker (caller = worker 0) and
  /// returns when every invocation has finished. Not reentrant: body must
  /// not call Run on the same pool.
  void Run(const std::function<void(uint32_t)>& body);

  /// Fixed contiguous block of [0, n) owned by `worker`: the standard
  /// shard bounds every deterministic sharded computation uses.
  static size_t BlockBegin(size_t n, uint32_t workers, uint32_t worker) {
    return n * worker / workers;
  }
  static size_t BlockEnd(size_t n, uint32_t workers, uint32_t worker) {
    return n * (worker + 1) / workers;
  }

 private:
  void WorkerLoop(uint32_t id);

  const uint32_t num_threads_;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  const std::function<void(uint32_t)>* body_ = nullptr;
  uint64_t generation_ = 0;  // bumped per Run; workers wait for a change
  uint32_t running_ = 0;     // pool workers still inside the current body
  bool stop_ = false;
};

/// Runs fn(worker_id, index) for every index in [0, n) across the pool's
/// workers with chunked work stealing (see file comment). `pool` may be
/// nullptr or single-threaded: indices then run inline in order with
/// worker_id 0. fn must be safe to call concurrently for distinct
/// indices; each index is executed exactly once.
template <typename Fn>
void ParallelFor(ThreadPool* pool, size_t n, size_t grain, Fn&& fn) {
  if (grain == 0) grain = 1;
  const uint32_t workers = pool != nullptr ? pool->num_threads() : 1;
  if (workers <= 1 || n <= grain) {
    for (size_t i = 0; i < n; ++i) fn(uint32_t{0}, i);
    return;
  }

  // One cursor per block, padded so stealers don't false-share with the
  // owner. fetch_add past `end` is harmless (the pop just fails).
  struct alignas(64) Block {
    std::atomic<size_t> next{0};
    size_t end = 0;
  };
  std::vector<Block> blocks(workers);
  for (uint32_t w = 0; w < workers; ++w) {
    blocks[w].next.store(ThreadPool::BlockBegin(n, workers, w),
                         std::memory_order_relaxed);
    blocks[w].end = ThreadPool::BlockEnd(n, workers, w);
  }

  pool->Run([&](uint32_t worker) {
    for (uint32_t offset = 0; offset < workers; ++offset) {
      Block& block = blocks[(worker + offset) % workers];
      while (true) {
        size_t begin =
            block.next.fetch_add(grain, std::memory_order_relaxed);
        if (begin >= block.end) break;
        size_t limit = begin + grain < block.end ? begin + grain : block.end;
        for (size_t i = begin; i < limit; ++i) fn(worker, i);
      }
    }
  });
}

}  // namespace avt

#endif  // AVT_UTIL_THREAD_POOL_H_
