// Wall-clock timing helpers used by the benchmark harness and trackers.

#ifndef AVT_UTIL_TIMER_H_
#define AVT_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace avt {

/// Monotonic stopwatch. Start() resets the origin; elapsed readings are
/// taken without stopping.
class Timer {
 public:
  Timer() { Start(); }

  void Start() { origin_ = Clock::now(); }

  /// Elapsed time since Start() in nanoseconds.
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             origin_)
            .count());
  }

  double ElapsedMicros() const { return ElapsedNanos() * 1e-3; }
  double ElapsedMillis() const { return ElapsedNanos() * 1e-6; }
  double ElapsedSeconds() const { return ElapsedNanos() * 1e-9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point origin_;
};

/// Accumulates wall time across multiple timed sections.
class AccumulatingTimer {
 public:
  void Add(double millis) {
    total_millis_ += millis;
    ++count_;
  }
  double total_millis() const { return total_millis_; }
  uint64_t count() const { return count_; }
  double mean_millis() const {
    return count_ == 0 ? 0.0 : total_millis_ / static_cast<double>(count_);
  }
  void Reset() {
    total_millis_ = 0;
    count_ = 0;
  }

 private:
  double total_millis_ = 0;
  uint64_t count_ = 0;
};

/// RAII helper: adds the scope's wall time to an AccumulatingTimer.
class ScopedTimer {
 public:
  explicit ScopedTimer(AccumulatingTimer* sink) : sink_(sink) {}
  ~ScopedTimer() { sink_->Add(timer_.ElapsedMillis()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  AccumulatingTimer* sink_;
  Timer timer_;
};

}  // namespace avt

#endif  // AVT_UTIL_TIMER_H_
