// Tests for exact anchored k-core semantics (Definitions 3-4).

#include "anchor/anchored_core.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/models.h"
#include "util/random.h"

namespace avt {
namespace {

bool Contains(const std::vector<VertexId>& values, VertexId v) {
  return std::find(values.begin(), values.end(), v) != values.end();
}

TEST(AnchoredCore, NoAnchorsEqualsPlainKCore) {
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  g.AddEdge(2, 3);
  AnchoredCoreResult result = ComputeAnchoredKCore(g, 2, {});
  EXPECT_EQ(result.members.size(), 3u);  // the triangle
  EXPECT_TRUE(result.followers.empty());
}

TEST(AnchoredCore, AnchorJoinsEvenWithoutDegree) {
  Graph g(4);
  g.AddEdge(0, 1);
  AnchoredCoreResult result = ComputeAnchoredKCore(g, 3, {2});
  EXPECT_TRUE(Contains(result.members, 2));
  EXPECT_TRUE(result.followers.empty());
}

TEST(AnchoredCore, SingleAnchorPullsFollower) {
  // Path 0-1-2-3 plus edges making vertex 1 and 2 near-threshold for k=2:
  // anchoring 0 keeps 1 alive (1 has neighbors 0 and 2), cascading to 2.
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 1);
  // k=2: plain 2-core = {1,2,3}; anchoring 0 adds only 0 itself.
  AnchoredCoreResult result = ComputeAnchoredKCore(g, 2, {0});
  EXPECT_EQ(result.members.size(), 4u);
  EXPECT_TRUE(result.followers.empty());  // 0 is an anchor, not a follower
}

TEST(AnchoredCore, FollowerCascade) {
  // Chain hanging off a triangle; k=2. Anchoring the chain tip re-engages
  // the whole chain: each chain vertex regains 2 supported neighbors.
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);  // triangle, 2-core
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  AnchoredCoreResult result = ComputeAnchoredKCore(g, 2, {5});
  // 4 leans on anchor 5 and on 3; 3 leans on 4 and 2 -> both follow.
  EXPECT_TRUE(Contains(result.followers, 3));
  EXPECT_TRUE(Contains(result.followers, 4));
  EXPECT_EQ(result.followers.size(), 2u);
  EXPECT_EQ(result.members.size(), 6u);
}

TEST(AnchoredCore, MultiAnchorSynergyBelowShell) {
  // A vertex below the (k-1)-shell can follow when two anchors support
  // it: w(3) has neighbors {anchor 4, anchor 5, core vertex 0}; k = 3.
  Graph g(6);
  // K4 on {0,1,2, and 6? } -> use 0,1,2 plus extra to make 3-core:
  // build K4 on {0,1,2,3}? 3 is the follower; instead K4 needs 4 vertices:
  // 0,1,2 plus vertex 3 would change the test. Use a 5-clique-minus on
  // {0,1,2} + helpers: simplest 3-core: K4 over {0,1,2,4}? Keep explicit:
  g = Graph(8);
  // 3-core: K4 on {0,1,2,7}.
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 7);
  g.AddEdge(1, 2);
  g.AddEdge(1, 7);
  g.AddEdge(2, 7);
  // w = 3 with neighbors: anchors 4, 5 (degree-1 vertices) and core 0.
  g.AddEdge(3, 4);
  g.AddEdge(3, 5);
  g.AddEdge(3, 0);
  AnchoredCoreResult result = ComputeAnchoredKCore(g, 3, {4, 5});
  EXPECT_TRUE(Contains(result.followers, 3));
  // Sanity: w's plain core is 1, well below k-1 = 2.
  CoreDecomposition cores = DecomposeCores(g);
  EXPECT_EQ(cores.core[3], 1u);
}

TEST(AnchoredCore, MonotoneInAnchors) {
  Rng rng(17);
  Graph g = ChungLuPowerLaw(120, 5.0, 2.2, 30, rng);
  std::vector<VertexId> pool;
  CoreDecomposition cores = DecomposeCores(g);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (cores.core[v] < 3 && g.Degree(v) > 0) pool.push_back(v);
  }
  std::vector<VertexId> anchors;
  size_t last_size = ComputeAnchoredKCore(g, 3, anchors).members.size();
  for (size_t i = 0; i < std::min<size_t>(pool.size(), 8); ++i) {
    anchors.push_back(pool[i]);
    size_t size = ComputeAnchoredKCore(g, 3, anchors).members.size();
    EXPECT_GE(size, last_size) << "anchors are monotone";
    last_size = size;
  }
}

TEST(AnchoredCore, ValidatorAcceptsExactResult) {
  Rng rng(23);
  Graph g = ErdosRenyi(80, 200, rng);
  AnchoredCoreResult result = ComputeAnchoredKCore(g, 3, {1, 2, 3});
  EXPECT_TRUE(IsValidAnchoredKCore(g, 3, {1, 2, 3}, result.members));
}

TEST(AnchoredCore, ValidatorRejectsPaddedResult) {
  Graph g(4);
  g.AddEdge(0, 1);
  AnchoredCoreResult result = ComputeAnchoredKCore(g, 2, {0});
  std::vector<VertexId> padded = result.members;
  padded.push_back(3);  // isolated vertex cannot be a member
  EXPECT_FALSE(IsValidAnchoredKCore(g, 2, {0}, padded));
}

TEST(AnchoredCore, FollowersDisjointFromCoreAndAnchors) {
  Rng rng(31);
  Graph g = BarabasiAlbert(150, 3, rng);
  CoreDecomposition cores = DecomposeCores(g);
  std::vector<VertexId> anchors;
  for (VertexId v = 0; v < g.NumVertices() && anchors.size() < 5; ++v) {
    if (cores.core[v] < 4) anchors.push_back(v);
  }
  AnchoredCoreResult result = ComputeAnchoredKCore(g, 4, anchors);
  for (VertexId f : result.followers) {
    EXPECT_LT(cores.core[f], 4u);
    EXPECT_FALSE(Contains(anchors, f));
  }
}

}  // namespace
}  // namespace avt
