// Integration tests for AVT tracking: static trackers vs IncAVT over
// churn and temporal workloads; accounting, consistency, and the
// incremental candidate-restriction behavior the paper measures.

#include <gtest/gtest.h>

#include "anchor/anchored_core.h"
#include "core/avt.h"
#include "core/inc_avt.h"
#include "corelib/invariants.h"
#include "gen/churn.h"
#include "gen/datasets.h"
#include "gen/models.h"
#include "gen/temporal.h"
#include "util/random.h"

namespace avt {
namespace {

SnapshotSequence SmallChurnWorkload(uint64_t seed, size_t T = 6) {
  Rng rng(seed);
  Graph initial = ChungLuPowerLaw(250, 6.0, 2.2, 50, rng);
  ChurnOptions options;
  options.num_snapshots = T;
  options.min_churn = 20;
  options.max_churn = 50;
  return MakeChurnSnapshots(initial, options, rng);
}

void ExpectRunIsValid(const AvtRunResult& run,
                      const SnapshotSequence& sequence) {
  ASSERT_EQ(run.snapshots.size(), sequence.NumSnapshots());
  for (size_t t = 0; t < run.snapshots.size(); ++t) {
    const AvtSnapshotResult& snap = run.snapshots[t];
    EXPECT_EQ(snap.t, t);
    EXPECT_LE(snap.anchors.size(), run.l);
    Graph g = sequence.Materialize(t);
    // Reported followers must be exact for the reported anchors.
    EXPECT_EQ(snap.num_followers,
              CountFollowersExact(g, run.k, snap.anchors))
        << AvtAlgorithmName(run.algorithm) << " t=" << t;
    // Anchored-core accounting: members of C_k(S) = kcore + outside
    // anchors + followers.
    AnchoredCoreResult exact =
        ComputeAnchoredKCore(g, run.k, snap.anchors);
    EXPECT_EQ(snap.anchored_core_size, exact.members.size())
        << AvtAlgorithmName(run.algorithm) << " t=" << t;
  }
}

TEST(AvtTracking, GreedyRunIsValid) {
  SnapshotSequence sequence = SmallChurnWorkload(1);
  AvtRunResult run = RunAvt(sequence, AvtAlgorithm::kGreedy, 3, 5);
  ExpectRunIsValid(run, sequence);
}

TEST(AvtTracking, OlakRunIsValid) {
  SnapshotSequence sequence = SmallChurnWorkload(2, 4);
  AvtRunResult run = RunAvt(sequence, AvtAlgorithm::kOlak, 3, 3);
  ExpectRunIsValid(run, sequence);
}

TEST(AvtTracking, RcmRunIsValid) {
  SnapshotSequence sequence = SmallChurnWorkload(3, 4);
  AvtRunResult run = RunAvt(sequence, AvtAlgorithm::kRcm, 3, 3);
  ExpectRunIsValid(run, sequence);
}

TEST(AvtTracking, IncAvtRunIsValid) {
  SnapshotSequence sequence = SmallChurnWorkload(4);
  AvtRunResult run = RunAvt(sequence, AvtAlgorithm::kIncAvt, 3, 5);
  ExpectRunIsValid(run, sequence);
}

TEST(AvtTracking, IncAvtMaintainedIndexStaysConsistent) {
  SnapshotSequence sequence = SmallChurnWorkload(5, 8);
  IncAvtTracker tracker(3, 4);
  sequence.ForEachSnapshot(
      [&](size_t t, const Graph& graph, const EdgeDelta& delta) {
        if (t == 0) {
          tracker.ProcessFirst(graph);
        } else {
          tracker.ProcessDelta(delta);
        }
        InvariantReport report = CheckKOrderInvariants(
            tracker.maintainer().graph(), tracker.maintainer().order());
        ASSERT_TRUE(report.ok) << "t=" << t << ": " << report.failure;
        EXPECT_TRUE(tracker.maintainer().graph() == graph) << "t=" << t;
      });
}

TEST(AvtTracking, IncAvtVisitsFewerCandidatesThanGreedy) {
  SnapshotSequence sequence = SmallChurnWorkload(6, 8);
  AvtRunResult greedy = RunAvt(sequence, AvtAlgorithm::kGreedy, 3, 5);
  AvtRunResult inc = RunAvt(sequence, AvtAlgorithm::kIncAvt, 3, 5);
  // Skip t=0 (IncAVT runs Greedy there); from t>=1 the incremental
  // restriction must dominate (this is Figure 4/6/8's headline claim).
  uint64_t greedy_later = 0, inc_later = 0;
  for (size_t t = 1; t < sequence.NumSnapshots(); ++t) {
    greedy_later += greedy.snapshots[t].candidates_visited;
    inc_later += inc.snapshots[t].candidates_visited;
  }
  EXPECT_LT(inc_later, greedy_later);
}

TEST(AvtTracking, IncAvtQualityTracksGreedy) {
  // The paper's effectiveness plots (Figs 9-11) show all algorithms find
  // nearly the same number of followers; require IncAVT to stay within
  // half of Greedy's per-run total.
  SnapshotSequence sequence = SmallChurnWorkload(7, 8);
  AvtRunResult greedy = RunAvt(sequence, AvtAlgorithm::kGreedy, 3, 5);
  AvtRunResult inc = RunAvt(sequence, AvtAlgorithm::kIncAvt, 3, 5);
  EXPECT_GE(2 * inc.TotalFollowers(), greedy.TotalFollowers());
}

TEST(AvtTracking, TemporalWorkloadAllAlgorithms) {
  Rng rng(8);
  TemporalGenOptions options;
  options.num_vertices = 200;
  options.num_events = 10000;
  options.num_days = 120;
  TemporalEventLog log = GenCommunityEmailEvents(options, 8, 0.85, rng);
  SnapshotSequence sequence = WindowSnapshots(log, 5, 30);
  for (AvtAlgorithm algorithm :
       {AvtAlgorithm::kGreedy, AvtAlgorithm::kIncAvt, AvtAlgorithm::kRcm}) {
    AvtRunResult run = RunAvt(sequence, algorithm, 3, 4);
    ExpectRunIsValid(run, sequence);
  }
}

TEST(AvtTracking, AggregatesAreSums) {
  SnapshotSequence sequence = SmallChurnWorkload(9, 4);
  AvtRunResult run = RunAvt(sequence, AvtAlgorithm::kGreedy, 3, 3);
  double millis = 0;
  uint64_t followers = 0, visited = 0;
  for (const auto& snap : run.snapshots) {
    millis += snap.millis;
    followers += snap.num_followers;
    visited += snap.candidates_visited;
  }
  EXPECT_DOUBLE_EQ(run.TotalMillis(), millis);
  EXPECT_EQ(run.TotalFollowers(), followers);
  EXPECT_EQ(run.TotalCandidatesVisited(), visited);
}

TEST(AvtTracking, AlgorithmNamesStable) {
  EXPECT_STREQ(AvtAlgorithmName(AvtAlgorithm::kGreedy), "Greedy");
  EXPECT_STREQ(AvtAlgorithmName(AvtAlgorithm::kOlak), "OLAK");
  EXPECT_STREQ(AvtAlgorithmName(AvtAlgorithm::kRcm), "RCM");
  EXPECT_STREQ(AvtAlgorithmName(AvtAlgorithm::kIncAvt), "IncAVT");
  EXPECT_STREQ(AvtAlgorithmName(AvtAlgorithm::kBruteForce), "Brute-force");
}

TEST(AvtTracking, MakeTrackerCoversAllAlgorithms) {
  for (AvtAlgorithm algorithm :
       {AvtAlgorithm::kGreedy, AvtAlgorithm::kOlak, AvtAlgorithm::kRcm,
        AvtAlgorithm::kIncAvt, AvtAlgorithm::kBruteForce}) {
    auto tracker = MakeTracker(algorithm, 3, 2);
    ASSERT_NE(tracker, nullptr);
    EXPECT_FALSE(tracker->name().empty());
  }
}

TEST(AvtTracking, DatasetReplicaEndToEnd) {
  // Tiny eu-core replica end to end through IncAVT: the full paper
  // pipeline (generator -> windows -> tracker).
  const DatasetInfo& eu = DatasetByName("eu-core");
  SnapshotSequence sequence = MakeDatasetSnapshots(eu, 0.3, 5, 13);
  AvtRunResult run = RunAvt(sequence, AvtAlgorithm::kIncAvt, 3, 3);
  ExpectRunIsValid(run, sequence);
}

}  // namespace
}  // namespace avt
