// Circuit breaker tests: trip threshold over the sliding window, open
// short-circuiting without touching the inner source, pull-counted
// cooldown into a half-open probe that closes or re-trips, determinism
// under the seed, the transient-vs-terminal code policy, SourceStats
// propagation through every decorator nesting order (satellite of the
// self-healing PR), and the engine draining a breaker-guarded stream
// to a bit-identical result.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/inc_avt.h"
#include "core/run_summary.h"
#include "gen/churn.h"
#include "gen/generator_source.h"
#include "gen/models.h"
#include "graph/delta_source.h"
#include "graph/resilient_source.h"
#include "util/random.h"

namespace avt {
namespace {

EdgeDelta MakeDelta(std::vector<Edge> insertions,
                    std::vector<Edge> deletions = {}) {
  EdgeDelta delta;
  delta.insertions = std::move(insertions);
  delta.deletions = std::move(deletions);
  return delta;
}

// Fails with kIoError on exactly the scripted pull indices (0-based,
// counted over calls to NextDelta); other calls emit the next delta or
// stream end. Tracks how many times it was actually invoked, so tests
// can prove an open breaker never touched it.
class ScriptedSource : public DeltaSource {
 public:
  ScriptedSource(Graph initial, std::vector<EdgeDelta> deltas,
                 std::set<uint64_t> failing_calls)
      : initial_(std::move(initial)),
        deltas_(std::move(deltas)),
        failing_calls_(std::move(failing_calls)) {}

  const Graph& InitialGraph() const override { return initial_; }

  StatusOr<bool> NextDelta(EdgeDelta* delta) override {
    const uint64_t call = calls_++;
    if (failing_calls_.count(call) > 0) {
      return Status::IoError("scripted failure at call " +
                             std::to_string(call));
    }
    if (next_ >= deltas_.size()) return false;
    *delta = deltas_[next_++];
    return true;
  }

  std::string name() const override { return "scripted"; }

  uint64_t calls() const { return calls_; }

 private:
  Graph initial_;
  std::vector<EdgeDelta> deltas_;
  std::set<uint64_t> failing_calls_;
  uint64_t calls_ = 0;
  size_t next_ = 0;
};

CircuitBreakerOptions TightBreaker() {
  CircuitBreakerOptions options;
  options.window = 4;
  options.failure_threshold = 0.5;
  options.min_pulls = 2;
  options.cooldown_pulls = 3;
  options.cooldown_jitter = 0.0;  // exact cooldown for scripted tests
  options.seed = 7;
  return options;
}

TEST(CircuitBreaker, ClosedConvertsTransientFailuresToUnavailable) {
  auto inner = std::make_unique<ScriptedSource>(
      Graph(4), std::vector<EdgeDelta>{MakeDelta({{0, 1}})},
      std::set<uint64_t>{0});
  CircuitBreakerSource breaker(std::move(inner), TightBreaker());

  EdgeDelta delta;
  StatusOr<bool> first = breaker.NextDelta(&delta);
  ASSERT_FALSE(first.ok());
  // The breaker owns transient-failure policy: the inner kIoError is
  // recorded and surfaced as kUnavailable even before any trip.
  EXPECT_EQ(first.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(breaker.state(), CircuitBreakerSource::State::kClosed);

  StatusOr<bool> second = breaker.NextDelta(&delta);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value());
  EXPECT_EQ(delta.insertions, (std::vector<Edge>{{0, 1}}));
}

TEST(CircuitBreaker, TerminalCodesPassThroughUnrecorded) {
  // A corrupt stream must surface as corruption — not be absorbed,
  // converted, or counted toward a trip.
  class CorruptSource : public DeltaSource {
   public:
    CorruptSource() : initial_(2) {}
    const Graph& InitialGraph() const override { return initial_; }
    StatusOr<bool> NextDelta(EdgeDelta*) override {
      return Status::Corruption("bad frame");
    }
    std::string name() const override { return "corrupt"; }

   private:
    Graph initial_;
  };

  CircuitBreakerSource breaker(std::make_unique<CorruptSource>(),
                               TightBreaker());
  EdgeDelta delta;
  for (int i = 0; i < 10; ++i) {
    StatusOr<bool> result = breaker.NextDelta(&delta);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  }
  EXPECT_EQ(breaker.state(), CircuitBreakerSource::State::kClosed);
  EXPECT_EQ(breaker.SourceStats().breaker_opens, 0u);
}

TEST(CircuitBreaker, TripsAndShortCircuitsWithoutTouchingInner) {
  // Calls 0 and 1 fail → window {1, 1}, count 2 >= min_pulls, rate
  // 1.0 >= 0.5 → trip on the second failure.
  auto owned = std::make_unique<ScriptedSource>(
      Graph(4), std::vector<EdgeDelta>{MakeDelta({{0, 1}})},
      std::set<uint64_t>{0, 1});
  ScriptedSource* inner = owned.get();
  CircuitBreakerSource breaker(std::move(owned), TightBreaker());

  EdgeDelta delta;
  EXPECT_EQ(breaker.NextDelta(&delta).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(breaker.state(), CircuitBreakerSource::State::kClosed);
  EXPECT_EQ(breaker.NextDelta(&delta).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(breaker.state(), CircuitBreakerSource::State::kOpen);
  EXPECT_EQ(inner->calls(), 2u);

  // cooldown_pulls = 3 rejected pulls, none reaching the inner source.
  for (int i = 0; i < 3; ++i) {
    StatusOr<bool> rejected = breaker.NextDelta(&delta);
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
    EXPECT_EQ(inner->calls(), 2u) << "open breaker touched the source";
  }
  DeltaSource::Stats stats = breaker.SourceStats();
  EXPECT_EQ(stats.breaker_opens, 1u);
  EXPECT_EQ(stats.breaker_rejected_pulls, 3u);

  // Cooldown spent → the next pull is the half-open probe; call 5 of
  // the script succeeds, so the breaker closes and delivers.
  StatusOr<bool> probe = breaker.NextDelta(&delta);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_TRUE(probe.value());
  EXPECT_EQ(breaker.state(), CircuitBreakerSource::State::kClosed);
  EXPECT_EQ(inner->calls(), 3u);
}

TEST(CircuitBreaker, FailedHalfOpenProbeReopens) {
  // Fail calls 0-2: two failures trip it, the cooldown passes, and the
  // half-open probe (inner call 2) fails again → re-open, second
  // cooldown, then the probe succeeds.
  auto owned = std::make_unique<ScriptedSource>(
      Graph(4), std::vector<EdgeDelta>{MakeDelta({{0, 1}})},
      std::set<uint64_t>{0, 1, 2});
  ScriptedSource* inner = owned.get();
  CircuitBreakerSource breaker(std::move(owned), TightBreaker());

  EdgeDelta delta;
  breaker.NextDelta(&delta);
  breaker.NextDelta(&delta);  // trips
  ASSERT_EQ(breaker.state(), CircuitBreakerSource::State::kOpen);
  for (int i = 0; i < 3; ++i) breaker.NextDelta(&delta);  // cooldown

  StatusOr<bool> probe = breaker.NextDelta(&delta);  // inner call 2: fails
  ASSERT_FALSE(probe.ok());
  EXPECT_EQ(probe.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(breaker.state(), CircuitBreakerSource::State::kOpen);
  EXPECT_EQ(breaker.SourceStats().breaker_opens, 2u);

  for (int i = 0; i < 3; ++i) breaker.NextDelta(&delta);  // cooldown again
  StatusOr<bool> retry = breaker.NextDelta(&delta);  // inner call 3: ok
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_TRUE(retry.value());
  EXPECT_EQ(breaker.state(), CircuitBreakerSource::State::kClosed);
  EXPECT_EQ(inner->calls(), 4u);
}

TEST(CircuitBreaker, DeterministicUnderSeed) {
  // Same script + same options (jitter ON) → identical state walk and
  // counters, twice over.
  auto run = []() {
    CircuitBreakerOptions options = TightBreaker();
    options.cooldown_jitter = 0.5;
    auto inner = std::make_unique<ScriptedSource>(
        Graph(4),
        std::vector<EdgeDelta>{MakeDelta({{0, 1}}), MakeDelta({{1, 2}})},
        std::set<uint64_t>{0, 1, 3, 4});
    CircuitBreakerSource breaker(std::move(inner), options);
    EdgeDelta delta;
    std::string trace;
    for (int i = 0; i < 24; ++i) {
      StatusOr<bool> result = breaker.NextDelta(&delta);
      if (!result.ok()) {
        trace += "E";
      } else {
        trace += result.value() ? "D" : ".";
      }
      trace += std::to_string(static_cast<int>(breaker.state()));
    }
    DeltaSource::Stats stats = breaker.SourceStats();
    trace += "/" + std::to_string(stats.breaker_opens) + "/" +
             std::to_string(stats.breaker_rejected_pulls);
    return trace;
  };
  EXPECT_EQ(run(), run());
}

// --- SourceStats propagation (satellite: counters survive nesting) ----

std::unique_ptr<DeltaSource> FlakyBase(Graph initial,
                                       std::vector<EdgeDelta> deltas) {
  FaultInjectionOptions fault;
  fault.seed = 5;
  fault.transient_rate = 0.3;
  auto base = std::make_unique<ScriptedSource>(std::move(initial),
                                               std::move(deltas),
                                               std::set<uint64_t>{});
  return std::make_unique<FaultInjectingSource>(std::move(base), fault);
}

TEST(SourceStats, SurviveEveryDecoratorNesting) {
  Graph initial(6);
  std::vector<EdgeDelta> deltas;
  for (VertexId v = 0; v + 1 < 6; ++v) {
    deltas.push_back(MakeDelta({{v, static_cast<VertexId>(v + 1)}}));
  }
  RetryOptions retry;
  retry.max_retries = 8;
  retry.initial_backoff_millis = 0.0;
  retry.max_backoff_millis = 0.0;

  // Order A: Coalescing(Breaker(Retrying(Fault(base)))).
  auto order_a = std::make_unique<CoalescingSource>(
      std::make_unique<CircuitBreakerSource>(
          std::make_unique<RetryingSource>(FlakyBase(initial, deltas),
                                           retry),
          TightBreaker()),
      2);
  // Order B: Breaker(Coalescing(Retrying(Fault(base)))).
  auto order_b = std::make_unique<CircuitBreakerSource>(
      std::make_unique<CoalescingSource>(
          std::make_unique<RetryingSource>(FlakyBase(initial, deltas),
                                           retry),
          2),
      TightBreaker());

  for (DeltaSource* source : {static_cast<DeltaSource*>(order_a.get()),
                              static_cast<DeltaSource*>(order_b.get())}) {
    EdgeDelta delta;
    size_t delivered = 0;
    for (;;) {
      StatusOr<bool> result = source->NextDelta(&delta);
      if (!result.ok()) {
        ASSERT_EQ(result.status().code(), StatusCode::kUnavailable)
            << result.status().ToString();
        continue;  // recorded transient; pull again
      }
      if (!result.value()) break;
      ++delivered;
    }
    EXPECT_EQ(delivered, 3u) << source->name();  // 5 deltas coalesced by 2
    DeltaSource::Stats stats = source->SourceStats();
    // The retry layer absorbed every injected fault below it; its
    // counters must surface through the full stack in BOTH orders,
    // alongside the breaker fields (zero or not).
    EXPECT_GT(stats.transient_errors, 0u) << source->name();
    EXPECT_EQ(stats.retries, stats.transient_errors) << source->name();
    EXPECT_EQ(stats.breaker_rejected_pulls, 0u) << source->name();
  }
}

// --- Engine integration ------------------------------------------------

TEST(EngineWithBreaker, DrainsToBitIdenticalResultDespiteTrips) {
  Rng rng(11);
  Graph initial = ChungLuPowerLaw(150, 5.0, 2.2, 30, rng);
  ChurnOptions churn;
  churn.num_snapshots = 16;
  churn.min_churn = 10;
  churn.max_churn = 25;

  auto make_tracker = []() {
    return std::make_unique<IncAvtTracker>(3, 3, IncAvtMode::kRestricted,
                                           IncAvtOptions{});
  };

  // Reference: undecorated churn stream.
  Rng source_rng(12);
  AvtEngine reference(make_tracker(),
                      std::make_unique<ChurnSource>(initial, churn,
                                                    source_rng));
  ASSERT_TRUE(reference.Drain().ok());

  // Same stream behind a fault injector (no retry budget) and a tight
  // breaker: every fault feeds the breaker, the breaker trips, Drain
  // waits out the cooldowns — and the tracked result is identical.
  FaultInjectionOptions fault;
  fault.seed = 3;
  fault.transient_rate = 0.4;
  Rng source_rng2(12);
  auto guarded = std::make_unique<CircuitBreakerSource>(
      std::make_unique<FaultInjectingSource>(
          std::make_unique<ChurnSource>(initial, churn, source_rng2), fault),
      TightBreaker());
  AvtEngine engine(make_tracker(), std::move(guarded));
  Status status = engine.Drain();
  ASSERT_TRUE(status.ok()) << status.ToString();

  ASSERT_EQ(engine.SnapshotsProcessed(), reference.SnapshotsProcessed());
  for (size_t t = 0; t < reference.SnapshotsProcessed(); ++t) {
    EXPECT_EQ(engine.result().snapshots[t].anchors,
              reference.result().snapshots[t].anchors) << "t=" << t;
    EXPECT_EQ(engine.result().snapshots[t].num_followers,
              reference.result().snapshots[t].num_followers) << "t=" << t;
  }

  RunSummary summary = engine.Summary();
  EXPECT_GT(summary.breaker_opens, 0u);
  EXPECT_GT(summary.breaker_rejected_pulls, 0u);
  EXPECT_EQ(engine.health().state(), HealthState::kDegraded);
  EXPECT_EQ(engine.health().reason(), HealthReason::kSourceUnavailable);
}

TEST(EngineWithBreaker, DeadSourceHaltsAfterBoundedPatience) {
  class DeadSource : public DeltaSource {
   public:
    DeadSource() : initial_(4) {}
    const Graph& InitialGraph() const override { return initial_; }
    StatusOr<bool> NextDelta(EdgeDelta*) override {
      return Status::IoError("backing store gone");
    }
    std::string name() const override { return "dead"; }

   private:
    Graph initial_;
  };

  EngineOptions options;
  options.max_source_failures = 20;
  AvtEngine engine(
      std::make_unique<IncAvtTracker>(2, 2, IncAvtMode::kRestricted,
                                      IncAvtOptions{}),
      std::make_unique<CircuitBreakerSource>(std::make_unique<DeadSource>(),
                                             TightBreaker()),
      options);
  Status status = engine.Drain();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(engine.health().state(), HealthState::kHalted);
  EXPECT_EQ(engine.health().reason(), HealthReason::kSourceFailure);
  // Halted is sticky: the same status comes back, no more pulls.
  StatusOr<bool> again = engine.Step();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().message(), status.message());
}

}  // namespace
}  // namespace avt
