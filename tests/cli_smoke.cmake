# End-to-end smoke for avt_cli: generate a tiny graph, then drive the
# stats -> core -> anchors -> track pipeline on it, asserting exit codes
# and output shape. Run via `ctest -R cli_smoke`; CMakeLists passes in
# AVT_CLI, GEN_DATASETS, and WORK_DIR.

foreach(var AVT_CLI GEN_DATASETS WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "cli_smoke.cmake requires -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_cli expect_regex)
  execute_process(
    COMMAND ${ARGN}
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (rc=${rc}): ${ARGN}\n${out}\n${err}")
  endif()
  if(NOT out MATCHES "${expect_regex}")
    message(FATAL_ERROR
      "output of `${ARGN}` does not match /${expect_regex}/:\n${out}")
  endif()
endfunction()

set(graph ${WORK_DIR}/smoke.txt)

run_cli("wrote .*200 vertices, [0-9]+ edges"
  ${AVT_CLI} gen --model=chung-lu --n=200 --avg-degree=6 --seed=7
  --out=${graph})

run_cli("vertices +[0-9]+.*edges +[0-9]+.*degeneracy +[0-9]+"
  ${AVT_CLI} stats ${graph})

run_cli("degeneracy [0-9]+\n\\|C_3\\| = [0-9]+"
  ${AVT_CLI} core ${graph} --k=3)

run_cli("algorithm +Greedy.*\\|F\\| = [0-9]+, candidates visited = [0-9]+"
  ${AVT_CLI} anchors ${graph} --k=3 --l=3)

# Tracking over a scaled-down replica exercises the full IncAVT loop:
# header row, one row per snapshot, and the smoothness summary.
run_cli("\\| t \\| followers \\| anchored_core \\| candidates \\| millis \\|.*\\| 2 \\|.*workload smoothness: 0\\.[0-9]+"
  ${AVT_CLI} track --dataset=eu-core --t=3 --k=3 --l=3 --scale=0.05
  --seed=7)

# gen_datasets materializes every Table-2 replica; spot-check one file
# per dataset family lands on disk.
execute_process(
  COMMAND ${GEN_DATASETS} --dir=${WORK_DIR}/data --scale=0.02 --t=2 --seed=7
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "gen_datasets failed (rc=${rc}):\n${out}")
endif()
file(GLOB generated ${WORK_DIR}/data/*_t0.txt)
list(LENGTH generated n_generated)
if(n_generated LESS 1)
  message(FATAL_ERROR "gen_datasets produced no *_t0.txt files")
endif()

message(STATUS "cli_smoke passed (${n_generated} datasets materialized)")
