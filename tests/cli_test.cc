// Tests for the avt_cli command layer (driven in-process through
// cli_commands.h; stdout/stderr captured via temp files).

#include "cli_commands.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace avt {
namespace cli {
namespace {

class CliTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    auto path =
        std::filesystem::temp_directory_path() / ("avt_cli_" + name);
    created_.push_back(path.string());
    return path.string();
  }

  void TearDown() override {
    for (const std::string& path : created_) std::remove(path.c_str());
  }

  // Runs a command capturing stdout/stderr into strings.
  int Run(const std::vector<std::string>& args, std::string* out_text,
          std::string* err_text = nullptr) {
    std::vector<std::string> full = {"avt_cli"};
    full.insert(full.end(), args.begin(), args.end());
    std::vector<char*> argv;
    for (std::string& s : full) argv.push_back(s.data());

    std::string out_path = TempPath("out.txt");
    std::string err_path = TempPath("err.txt");
    FILE* out = fopen(out_path.c_str(), "w+");
    FILE* err = fopen(err_path.c_str(), "w+");
    int rc = RunCli(static_cast<int>(argv.size()), argv.data(), out, err);
    fclose(out);
    fclose(err);
    if (out_text) *out_text = Slurp(out_path);
    if (err_text) *err_text = Slurp(err_path);
    return rc;
  }

  static std::string Slurp(const std::string& path) {
    std::ifstream file(path);
    std::stringstream buffer;
    buffer << file.rdbuf();
    return buffer.str();
  }

  std::vector<std::string> created_;
};

TEST_F(CliTest, NoArgsPrintsUsage) {
  std::string out, err;
  EXPECT_EQ(Run({}, &out, &err), 2);
  EXPECT_NE(err.find("usage:"), std::string::npos);
}

TEST_F(CliTest, HelpSucceeds) {
  std::string out;
  EXPECT_EQ(Run({"help"}, &out), 0);
  EXPECT_NE(out.find("anchors"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandFails) {
  std::string out, err;
  EXPECT_EQ(Run({"frobnicate"}, &out, &err), 2);
  EXPECT_NE(err.find("unknown command"), std::string::npos);
}

TEST_F(CliTest, GenThenStats) {
  std::string graph_path = TempPath("g.txt");
  std::string out;
  ASSERT_EQ(Run({"gen", "--model=er", "--n=200", "--avg-degree=5",
                 "--out=" + graph_path},
                &out),
            0);
  EXPECT_NE(out.find("wrote"), std::string::npos);

  ASSERT_EQ(Run({"stats", graph_path}, &out), 0);
  EXPECT_NE(out.find("vertices            200"), std::string::npos);
  EXPECT_NE(out.find("average degree"), std::string::npos);
  EXPECT_NE(out.find("degeneracy"), std::string::npos);
}

TEST_F(CliTest, GenRejectsUnknownModel) {
  std::string out, err;
  EXPECT_EQ(Run({"gen", "--model=nope", "--out=" + TempPath("x.txt")},
                &out, &err),
            2);
  EXPECT_NE(err.find("unknown --model"), std::string::npos);
}

TEST_F(CliTest, GenRequiresOut) {
  std::string out, err;
  EXPECT_EQ(Run({"gen", "--model=er"}, &out, &err), 2);
  EXPECT_NE(err.find("--out"), std::string::npos);
}

TEST_F(CliTest, CoreProfileAndSpecificK) {
  std::string graph_path = TempPath("core.txt");
  std::string out;
  ASSERT_EQ(Run({"gen", "--model=ba", "--n=300", "--avg-degree=6",
                 "--out=" + graph_path},
                &out),
            0);
  ASSERT_EQ(Run({"core", graph_path}, &out), 0);
  EXPECT_NE(out.find("degeneracy"), std::string::npos);
  EXPECT_NE(out.find("k=1"), std::string::npos);

  ASSERT_EQ(Run({"core", graph_path, "--k=3"}, &out), 0);
  EXPECT_NE(out.find("|C_3|"), std::string::npos);
}

TEST_F(CliTest, AnchorsAllAlgorithms) {
  std::string graph_path = TempPath("anchors.txt");
  std::string out;
  ASSERT_EQ(Run({"gen", "--model=chung-lu", "--n=250", "--avg-degree=6",
                 "--out=" + graph_path},
                &out),
            0);
  for (const char* algo : {"greedy", "olak", "rcm"}) {
    ASSERT_EQ(Run({"anchors", graph_path, "--k=3", "--l=3",
                   std::string("--algo=") + algo},
                  &out),
              0)
        << algo;
    EXPECT_NE(out.find("anchors"), std::string::npos) << algo;
    EXPECT_NE(out.find("|F| ="), std::string::npos) << algo;
  }
}

TEST_F(CliTest, AnchorsRejectsNonPositiveThreads) {
  std::string graph_path = TempPath("threads.txt");
  std::string out, err;
  ASSERT_EQ(Run({"gen", "--model=er", "--n=80", "--avg-degree=4",
                 "--out=" + graph_path},
                &out),
            0);
  for (const char* bad : {"--threads=0", "--threads=-3", "--threads=zap"}) {
    EXPECT_EQ(Run({"anchors", graph_path, "--k=3", "--l=2", bad}, &out,
                  &err),
              2)
        << bad;
    EXPECT_NE(err.find("--threads must be a positive integer"),
              std::string::npos)
        << bad;
  }
}

TEST_F(CliTest, TrackRejectsNonPositiveThreads) {
  std::string out, err;
  EXPECT_EQ(Run({"track", "--dataset=CollegeMsg", "--t=3", "--threads=0"},
                &out, &err),
            2);
  EXPECT_NE(err.find("--threads must be a positive integer"),
            std::string::npos);
}

TEST_F(CliTest, HelpMentionsCsrKnob) {
  std::string out;
  ASSERT_EQ(Run({"help"}, &out), 0);
  EXPECT_NE(out.find("--csr maintained|rebuild|none"), std::string::npos);
}

TEST_F(CliTest, TrackRejectsUnknownCsrMode) {
  std::string out, err;
  EXPECT_EQ(Run({"track", "--dataset=CollegeMsg", "--t=3", "--csr=frozen"},
                &out, &err),
            2);
  EXPECT_NE(err.find("unknown --csr"), std::string::npos);
}

TEST_F(CliTest, TrackCsrBackingsAgree) {
  // The scan backing is a speed knob: every per-snapshot result column
  // must be identical across maintained / rebuild / none (millis aside,
  // which is why the comparison keeps only the result columns).
  auto result_fields = [](const std::string& text) {
    // Keep t / followers / anchored_core / candidates columns of the
    // table rows (drop the trailing millis column), plus the smoothness
    // line.
    std::string kept;
    std::istringstream stream(text);
    for (std::string line; std::getline(stream, line);) {
      if (line.find("smoothness") != std::string::npos) {
        kept += line + "\n";
        continue;
      }
      std::istringstream row(line);
      std::string t, followers, core, candidates;
      if (row >> t >> followers >> core >> candidates &&
          t.find_first_not_of("0123456789") == std::string::npos) {
        kept += t + " " + followers + " " + core + " " + candidates + "\n";
      }
    }
    return kept;
  };
  std::string maintained, rebuild, none;
  ASSERT_EQ(Run({"track", "--dataset=CollegeMsg", "--t=4", "--k=3", "--l=3",
                 "--scale=0.3", "--algo=incavt", "--csr=maintained"},
                &maintained),
            0);
  ASSERT_EQ(Run({"track", "--dataset=CollegeMsg", "--t=4", "--k=3", "--l=3",
                 "--scale=0.3", "--algo=incavt", "--csr=rebuild"},
                &rebuild),
            0);
  ASSERT_EQ(Run({"track", "--dataset=CollegeMsg", "--t=4", "--k=3", "--l=3",
                 "--scale=0.3", "--algo=incavt", "--csr=none"},
                &none),
            0);
  EXPECT_NE(result_fields(maintained), "");
  EXPECT_EQ(result_fields(maintained), result_fields(rebuild));
  EXPECT_EQ(result_fields(maintained), result_fields(none));
}

TEST_F(CliTest, AnchorsThreadedMatchesSerial) {
  std::string graph_path = TempPath("mt.txt");
  std::string serial, threaded;
  ASSERT_EQ(Run({"gen", "--model=chung-lu", "--n=250", "--avg-degree=6",
                 "--out=" + graph_path},
                &serial),
            0);
  ASSERT_EQ(Run({"anchors", graph_path, "--k=3", "--l=3", "--threads=1"},
                &serial),
            0);
  ASSERT_EQ(Run({"anchors", graph_path, "--k=3", "--l=3", "--threads=3"},
                &threaded),
            0);
  // Identical anchors, followers, and anchored-core size. The algorithm
  // name ("Greedy" vs "Greedy-parallel") and the work counters (sharded
  // lazy resolution legitimately issues more full queries) may differ.
  auto result_lines = [](const std::string& text) {
    std::string kept;
    std::istringstream stream(text);
    for (std::string line; std::getline(stream, line);) {
      if (line.rfind("anchors", 0) == 0 || line.rfind("followers", 0) == 0 ||
          line.rfind("|C_", 0) == 0) {
        kept += line + "\n";
      }
    }
    return kept;
  };
  EXPECT_NE(result_lines(serial), "");
  EXPECT_EQ(result_lines(serial), result_lines(threaded));
}

TEST_F(CliTest, AnchorsRejectsBadAlgo) {
  std::string graph_path = TempPath("bad.txt");
  std::string out, err;
  ASSERT_EQ(Run({"gen", "--model=er", "--n=50", "--avg-degree=4",
                 "--out=" + graph_path},
                &out),
            0);
  EXPECT_EQ(Run({"anchors", graph_path, "--algo=magic"}, &out, &err), 2);
  EXPECT_NE(err.find("unknown --algo"), std::string::npos);
}

TEST_F(CliTest, StatsMissingFileFails) {
  std::string out, err;
  EXPECT_EQ(Run({"stats", "/nonexistent/graph.txt"}, &out, &err), 2);
  EXPECT_NE(err.find("error"), std::string::npos);
}

TEST_F(CliTest, TrackOnDatasetReplica) {
  std::string out;
  ASSERT_EQ(Run({"track", "--dataset=CollegeMsg", "--t=4", "--k=3",
                 "--l=3", "--scale=0.3", "--algo=incavt"},
                &out),
            0);
  EXPECT_NE(out.find("followers"), std::string::npos);
  EXPECT_NE(out.find("smoothness"), std::string::npos);
}

TEST_F(CliTest, TrackRequiresSource) {
  std::string out, err;
  EXPECT_EQ(Run({"track", "--t=3"}, &out, &err), 2);
  EXPECT_NE(err.find("--dataset"), std::string::npos);
}

TEST_F(CliTest, ConvertWindowsTemporalLog) {
  // Write a tiny temporal log, convert, and expect snapshot files.
  std::string log_path = TempPath("log.txt");
  {
    std::ofstream file(log_path);
    file << "0 1 0\n1 2 10\n2 3 20\n0 2 30\n1 3 40\n";
  }
  std::string prefix = TempPath("snap");
  std::string out;
  ASSERT_EQ(Run({"convert", log_path, "--t=2", "--window=25",
                 "--out-prefix=" + prefix},
                &out),
            0);
  EXPECT_NE(out.find("wrote"), std::string::npos);
  for (int t = 0; t < 2; ++t) {
    std::string path = prefix + "_" + std::to_string(t) + ".txt";
    created_.push_back(path);
    EXPECT_TRUE(std::filesystem::exists(path)) << path;
  }
}

}  // namespace
}  // namespace cli
}  // namespace avt
