// Tests for the avt_cli command layer (driven in-process through
// cli_commands.h; stdout/stderr captured via temp files).

#include "cli_commands.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

namespace avt {
namespace cli {
namespace {

class CliTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    auto path =
        std::filesystem::temp_directory_path() / ("avt_cli_" + name);
    created_.push_back(path.string());
    return path.string();
  }

  // A scratch directory (checkpoint dirs), removed recursively. Starts
  // absent so `stream --checkpoint-dir` sees a fresh run.
  std::string TempDir(const std::string& name) {
    std::string path = TempPath(name);
    std::filesystem::remove_all(path);
    dirs_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const std::string& path : dirs_) {
      std::error_code ec;
      std::filesystem::remove_all(path, ec);
    }
    for (const std::string& path : created_) std::remove(path.c_str());
  }

  // Runs a command capturing stdout/stderr into strings.
  int Run(const std::vector<std::string>& args, std::string* out_text,
          std::string* err_text = nullptr) {
    std::vector<std::string> full = {"avt_cli"};
    full.insert(full.end(), args.begin(), args.end());
    std::vector<char*> argv;
    for (std::string& s : full) argv.push_back(s.data());

    std::string out_path = TempPath("out.txt");
    std::string err_path = TempPath("err.txt");
    FILE* out = fopen(out_path.c_str(), "w+");
    FILE* err = fopen(err_path.c_str(), "w+");
    int rc = RunCli(static_cast<int>(argv.size()), argv.data(), out, err);
    fclose(out);
    fclose(err);
    if (out_text) *out_text = Slurp(out_path);
    if (err_text) *err_text = Slurp(err_path);
    return rc;
  }

  static std::string Slurp(const std::string& path) {
    std::ifstream file(path);
    std::stringstream buffer;
    buffer << file.rdbuf();
    return buffer.str();
  }

  std::vector<std::string> created_;
  std::vector<std::string> dirs_;
};

// The machine-diffable last line of `stream` output ("final t=... "
// followed by vertices and the sorted anchor set) — the quantity the
// crash-recovery invariant promises is identical after a resume.
std::string FinalLine(const std::string& text) {
  std::istringstream stream(text);
  std::string line, final_line;
  while (std::getline(stream, line)) {
    if (line.rfind("final ", 0) == 0) final_line = line;
  }
  return final_line;
}

TEST_F(CliTest, NoArgsPrintsUsage) {
  std::string out, err;
  EXPECT_EQ(Run({}, &out, &err), 2);
  EXPECT_NE(err.find("usage:"), std::string::npos);
}

TEST_F(CliTest, HelpSucceeds) {
  std::string out;
  EXPECT_EQ(Run({"help"}, &out), 0);
  EXPECT_NE(out.find("anchors"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandFails) {
  std::string out, err;
  EXPECT_EQ(Run({"frobnicate"}, &out, &err), 2);
  EXPECT_NE(err.find("unknown command"), std::string::npos);
}

TEST_F(CliTest, GenThenStats) {
  std::string graph_path = TempPath("g.txt");
  std::string out;
  ASSERT_EQ(Run({"gen", "--model=er", "--n=200", "--avg-degree=5",
                 "--out=" + graph_path},
                &out),
            0);
  EXPECT_NE(out.find("wrote"), std::string::npos);

  ASSERT_EQ(Run({"stats", graph_path}, &out), 0);
  EXPECT_NE(out.find("vertices            200"), std::string::npos);
  EXPECT_NE(out.find("average degree"), std::string::npos);
  EXPECT_NE(out.find("degeneracy"), std::string::npos);
}

TEST_F(CliTest, GenRejectsUnknownModel) {
  std::string out, err;
  EXPECT_EQ(Run({"gen", "--model=nope", "--out=" + TempPath("x.txt")},
                &out, &err),
            2);
  EXPECT_NE(err.find("unknown --model"), std::string::npos);
}

TEST_F(CliTest, GenRequiresOut) {
  std::string out, err;
  EXPECT_EQ(Run({"gen", "--model=er"}, &out, &err), 2);
  EXPECT_NE(err.find("--out"), std::string::npos);
}

TEST_F(CliTest, CoreProfileAndSpecificK) {
  std::string graph_path = TempPath("core.txt");
  std::string out;
  ASSERT_EQ(Run({"gen", "--model=ba", "--n=300", "--avg-degree=6",
                 "--out=" + graph_path},
                &out),
            0);
  ASSERT_EQ(Run({"core", graph_path}, &out), 0);
  EXPECT_NE(out.find("degeneracy"), std::string::npos);
  EXPECT_NE(out.find("k=1"), std::string::npos);

  ASSERT_EQ(Run({"core", graph_path, "--k=3"}, &out), 0);
  EXPECT_NE(out.find("|C_3|"), std::string::npos);
}

TEST_F(CliTest, AnchorsAllAlgorithms) {
  std::string graph_path = TempPath("anchors.txt");
  std::string out;
  ASSERT_EQ(Run({"gen", "--model=chung-lu", "--n=250", "--avg-degree=6",
                 "--out=" + graph_path},
                &out),
            0);
  for (const char* algo : {"greedy", "olak", "rcm"}) {
    ASSERT_EQ(Run({"anchors", graph_path, "--k=3", "--l=3",
                   std::string("--algo=") + algo},
                  &out),
              0)
        << algo;
    EXPECT_NE(out.find("anchors"), std::string::npos) << algo;
    EXPECT_NE(out.find("|F| ="), std::string::npos) << algo;
  }
}

TEST_F(CliTest, AnchorsRejectsNonPositiveThreads) {
  std::string graph_path = TempPath("threads.txt");
  std::string out, err;
  ASSERT_EQ(Run({"gen", "--model=er", "--n=80", "--avg-degree=4",
                 "--out=" + graph_path},
                &out),
            0);
  for (const char* bad : {"--threads=0", "--threads=-3", "--threads=zap"}) {
    EXPECT_EQ(Run({"anchors", graph_path, "--k=3", "--l=2", bad}, &out,
                  &err),
              2)
        << bad;
    EXPECT_NE(err.find("--threads must be a positive integer"),
              std::string::npos)
        << bad;
  }
}

TEST_F(CliTest, TrackRejectsNonPositiveThreads) {
  std::string out, err;
  EXPECT_EQ(Run({"track", "--dataset=CollegeMsg", "--t=3", "--threads=0"},
                &out, &err),
            2);
  EXPECT_NE(err.find("--threads must be a positive integer"),
            std::string::npos);
}

TEST_F(CliTest, ThreadsAboveHardwareClampedWithWarning) {
  // Oversubscribing a small box only adds fork-join wakeups; the CLI
  // clamps to the hardware concurrency and says so on stderr. Outputs
  // are bit-identical at every thread count, so the run still succeeds.
  if (std::thread::hardware_concurrency() == 0) {
    GTEST_SKIP() << "hardware concurrency unknown; clamp disabled";
  }
  std::string graph_path = TempPath("clamp.txt");
  std::string out, err;
  ASSERT_EQ(Run({"gen", "--model=er", "--n=80", "--avg-degree=4",
                 "--out=" + graph_path},
                &out),
            0);
  EXPECT_EQ(Run({"anchors", graph_path, "--k=3", "--l=2",
                 "--threads=4096"},
                &out, &err),
            0);
  EXPECT_NE(err.find("exceeds the"), std::string::npos) << err;
  EXPECT_NE(err.find("clamping to"), std::string::npos) << err;
}

TEST_F(CliTest, ThreadsAtOrBelowHardwareNotClamped) {
  std::string graph_path = TempPath("noclamp.txt");
  std::string out, err;
  ASSERT_EQ(Run({"gen", "--model=er", "--n=80", "--avg-degree=4",
                 "--out=" + graph_path},
                &out),
            0);
  EXPECT_EQ(Run({"anchors", graph_path, "--k=3", "--l=2", "--threads=1"},
                &out, &err),
            0);
  EXPECT_EQ(err.find("clamping"), std::string::npos) << err;
}

TEST_F(CliTest, HelpMentionsCsrKnob) {
  std::string out;
  ASSERT_EQ(Run({"help"}, &out), 0);
  EXPECT_NE(out.find("--csr maintained|rebuild|none"), std::string::npos);
}

TEST_F(CliTest, TrackRejectsUnknownCsrMode) {
  std::string out, err;
  EXPECT_EQ(Run({"track", "--dataset=CollegeMsg", "--t=3", "--csr=frozen"},
                &out, &err),
            2);
  EXPECT_NE(err.find("unknown --csr"), std::string::npos);
}

TEST_F(CliTest, TrackCsrBackingsAgree) {
  // The scan backing is a speed knob: every per-snapshot result column
  // must be identical across maintained / rebuild / none (millis aside,
  // which is why the comparison keeps only the result columns).
  auto result_fields = [](const std::string& text) {
    // Keep t / followers / anchored_core / candidates columns of the
    // table rows (drop the trailing millis column), plus the smoothness
    // line.
    std::string kept;
    std::istringstream stream(text);
    for (std::string line; std::getline(stream, line);) {
      if (line.find("smoothness") != std::string::npos) {
        kept += line + "\n";
        continue;
      }
      std::istringstream row(line);
      std::string t, followers, core, candidates;
      if (row >> t >> followers >> core >> candidates &&
          t.find_first_not_of("0123456789") == std::string::npos) {
        kept += t + " " + followers + " " + core + " " + candidates + "\n";
      }
    }
    return kept;
  };
  std::string maintained, rebuild, none;
  ASSERT_EQ(Run({"track", "--dataset=CollegeMsg", "--t=4", "--k=3", "--l=3",
                 "--scale=0.3", "--algo=incavt", "--csr=maintained"},
                &maintained),
            0);
  ASSERT_EQ(Run({"track", "--dataset=CollegeMsg", "--t=4", "--k=3", "--l=3",
                 "--scale=0.3", "--algo=incavt", "--csr=rebuild"},
                &rebuild),
            0);
  ASSERT_EQ(Run({"track", "--dataset=CollegeMsg", "--t=4", "--k=3", "--l=3",
                 "--scale=0.3", "--algo=incavt", "--csr=none"},
                &none),
            0);
  EXPECT_NE(result_fields(maintained), "");
  EXPECT_EQ(result_fields(maintained), result_fields(rebuild));
  EXPECT_EQ(result_fields(maintained), result_fields(none));
}

TEST_F(CliTest, TrackRejectsUnknownMemoPolicy) {
  std::string out, err;
  EXPECT_EQ(Run({"track", "--dataset=CollegeMsg", "--t=3",
                 "--memo-policy=mru"},
                &out, &err),
            2);
  EXPECT_NE(err.find("unknown --memo-policy"), std::string::npos);
  EXPECT_NE(err.find("lru"), std::string::npos);  // lists valid values
}

TEST_F(CliTest, MemoBudgetRequiresLruPolicy) {
  std::string out, err;
  EXPECT_EQ(Run({"track", "--dataset=CollegeMsg", "--t=3",
                 "--memo-budget=65536"},
                &out, &err),
            2);
  EXPECT_NE(err.find("--memo-policy=lru"), std::string::npos);

  EXPECT_EQ(Run({"stream", "--dataset=CollegeMsg", "--t=3", "--k=3",
                 "--l=3", "--memo-policy=lru", "--memo-budget=0"},
                &out, &err),
            2);
  EXPECT_NE(err.find("positive byte count"), std::string::npos);
}

TEST_F(CliTest, TrackMemoPoliciesAgreeAndReportCounters) {
  // Same result-column equality contract as the CSR knob: memo
  // retention is a memory knob, never a result knob. The lazy default
  // prints a memo summary line; lru under a budget must stay under it.
  auto result_fields = [](std::string text) {
    for (char& c : text) {
      if (c == '|') c = ' ';
    }
    std::string kept;
    std::istringstream stream(text);
    for (std::string line; std::getline(stream, line);) {
      std::istringstream row(line);
      std::string t, followers, core, candidates;
      if (row >> t >> followers >> core >> candidates &&
          t.find_first_not_of("0123456789") == std::string::npos) {
        kept += t + " " + followers + " " + core + " " + candidates + "\n";
      }
    }
    return kept;
  };
  std::string all, lru, none;
  ASSERT_EQ(Run({"track", "--dataset=CollegeMsg", "--t=4", "--k=3", "--l=3",
                 "--scale=0.3", "--algo=incavt", "--memo-policy=all"},
                &all),
            0);
  ASSERT_EQ(Run({"track", "--dataset=CollegeMsg", "--t=4", "--k=3", "--l=3",
                 "--scale=0.3", "--algo=incavt", "--memo-policy=lru",
                 "--memo-budget=16384"},
                &lru),
            0);
  ASSERT_EQ(Run({"track", "--dataset=CollegeMsg", "--t=4", "--k=3", "--l=3",
                 "--scale=0.3", "--algo=incavt", "--memo-policy=none"},
                &none),
            0);
  EXPECT_NE(result_fields(all), "");
  EXPECT_EQ(result_fields(all), result_fields(lru));
  EXPECT_EQ(result_fields(all), result_fields(none));
  EXPECT_NE(all.find("memo policy=all:"), std::string::npos);
  EXPECT_NE(lru.find("memo policy=lru:"), std::string::npos);
  // kNone has no memo activity, so no memo line at all.
  EXPECT_EQ(none.find("memo policy="), std::string::npos);
}

TEST_F(CliTest, HelpMentionsMemoKnobs) {
  std::string out;
  ASSERT_EQ(Run({"help"}, &out), 0);
  EXPECT_NE(out.find("--memo-policy"), std::string::npos);
  EXPECT_NE(out.find("--memo-budget"), std::string::npos);
}

TEST_F(CliTest, AnchorsThreadedMatchesSerial) {
  std::string graph_path = TempPath("mt.txt");
  std::string serial, threaded;
  ASSERT_EQ(Run({"gen", "--model=chung-lu", "--n=250", "--avg-degree=6",
                 "--out=" + graph_path},
                &serial),
            0);
  ASSERT_EQ(Run({"anchors", graph_path, "--k=3", "--l=3", "--threads=1"},
                &serial),
            0);
  ASSERT_EQ(Run({"anchors", graph_path, "--k=3", "--l=3", "--threads=3"},
                &threaded),
            0);
  // Identical anchors, followers, and anchored-core size. The algorithm
  // name ("Greedy" vs "Greedy-parallel") and the work counters (sharded
  // lazy resolution legitimately issues more full queries) may differ.
  auto result_lines = [](const std::string& text) {
    std::string kept;
    std::istringstream stream(text);
    for (std::string line; std::getline(stream, line);) {
      if (line.rfind("anchors", 0) == 0 || line.rfind("followers", 0) == 0 ||
          line.rfind("|C_", 0) == 0) {
        kept += line + "\n";
      }
    }
    return kept;
  };
  EXPECT_NE(result_lines(serial), "");
  EXPECT_EQ(result_lines(serial), result_lines(threaded));
}

TEST_F(CliTest, AnchorsRejectsBadAlgo) {
  std::string graph_path = TempPath("bad.txt");
  std::string out, err;
  ASSERT_EQ(Run({"gen", "--model=er", "--n=50", "--avg-degree=4",
                 "--out=" + graph_path},
                &out),
            0);
  EXPECT_EQ(Run({"anchors", graph_path, "--algo=magic"}, &out, &err), 2);
  EXPECT_NE(err.find("unknown --algo"), std::string::npos);
}

TEST_F(CliTest, StatsMissingFileFails) {
  // A missing input file is an IoError; the Status-code exit mapping
  // (2 invalid, 3 not-found, 4 corruption, 5 io) surfaces it as 5.
  std::string out, err;
  EXPECT_EQ(Run({"stats", "/nonexistent/graph.txt"}, &out, &err), 5);
  EXPECT_NE(err.find("error"), std::string::npos);
}

TEST_F(CliTest, TrackOnDatasetReplica) {
  std::string out;
  ASSERT_EQ(Run({"track", "--dataset=CollegeMsg", "--t=4", "--k=3",
                 "--l=3", "--scale=0.3", "--algo=incavt"},
                &out),
            0);
  EXPECT_NE(out.find("followers"), std::string::npos);
  EXPECT_NE(out.find("smoothness"), std::string::npos);
}

TEST_F(CliTest, TrackRequiresSource) {
  std::string out, err;
  EXPECT_EQ(Run({"track", "--t=3"}, &out, &err), 2);
  EXPECT_NE(err.find("--dataset"), std::string::npos);
}

TEST_F(CliTest, ConvertWindowsTemporalLog) {
  // Write a tiny temporal log, convert, and expect snapshot files.
  std::string log_path = TempPath("log.txt");
  {
    std::ofstream file(log_path);
    file << "0 1 0\n1 2 10\n2 3 20\n0 2 30\n1 3 40\n";
  }
  std::string prefix = TempPath("snap");
  std::string out;
  ASSERT_EQ(Run({"convert", log_path, "--t=2", "--window=25",
                 "--out-prefix=" + prefix},
                &out),
            0);
  EXPECT_NE(out.find("wrote"), std::string::npos);
  for (int t = 0; t < 2; ++t) {
    std::string path = prefix + "_" + std::to_string(t) + ".txt";
    created_.push_back(path);
    EXPECT_TRUE(std::filesystem::exists(path)) << path;
  }
}

// --- binary edge log: convert + stream --source=binlog ------------------

// Writes a sorted synthetic temporal log with enough events to give
// every window a few deltas.
static void WriteTemporalFixture(const std::string& path) {
  std::ofstream file(path);
  for (int i = 0; i < 120; ++i) {
    int u = i % 7;
    int v = (i + 1 + i / 7) % 9;
    if (u == v) v = (v + 1) % 9;
    file << u << " " << v << " " << i * 3 << "\n";
  }
}

TEST_F(CliTest, ConvertToBinlogRoundTripsThroughStream) {
  // `convert <text> <binlog>` transcodes; streaming either form must
  // land on the same final anchors.
  std::string log_path = TempPath("binlog_src.txt");
  WriteTemporalFixture(log_path);
  std::string binlog_path = TempPath("binlog.avtb");

  std::string out;
  ASSERT_EQ(Run({"convert", log_path, binlog_path, "--t=5", "--window=90"},
                &out),
            0);
  EXPECT_NE(out.find("wrote"), std::string::npos);
  EXPECT_NE(out.find("deltas"), std::string::npos);
  ASSERT_TRUE(std::filesystem::exists(binlog_path));

  std::string from_text, from_binlog;
  ASSERT_EQ(Run({"stream", "--source=file", "--temporal=" + log_path, "--t=5",
                 "--window=90", "--k=3", "--l=2"},
                &from_text),
            0);
  ASSERT_EQ(Run({"stream", "--source=binlog", "--binlog=" + binlog_path,
                 "--k=3", "--l=2"},
                &from_binlog),
            0);
  ASSERT_NE(FinalLine(from_text), "");
  EXPECT_EQ(FinalLine(from_binlog), FinalLine(from_text));
}

TEST_F(CliTest, ConvertBinlogRejectsUnsortedEvents) {
  std::string log_path = TempPath("unsorted.txt");
  {
    std::ofstream file(log_path);
    file << "0 1 50\n1 2 10\n";
  }
  std::string out, err;
  EXPECT_EQ(Run({"convert", log_path, TempPath("unsorted.avtb"), "--t=3",
                 "--window=30"},
                &out, &err),
            2);
  EXPECT_NE(err.find("sorted"), std::string::npos);
}

TEST_F(CliTest, ConvertBinlogMalformedInputIsCorruption) {
  std::string log_path = TempPath("garbled.txt");
  {
    std::ofstream file(log_path);
    file << "0 1 10\nnot an event line\n";
  }
  std::string out, err;
  EXPECT_EQ(Run({"convert", log_path, TempPath("garbled.avtb"), "--t=3",
                 "--window=30"},
                &out, &err),
            4);
}

TEST_F(CliTest, StreamBinlogRequiresTheFlag) {
  std::string out, err;
  EXPECT_EQ(Run({"stream", "--source=binlog", "--k=3", "--l=2"}, &out, &err),
            2);
  EXPECT_NE(err.find("--binlog"), std::string::npos);
}

TEST_F(CliTest, StreamBinlogMissingFileIsNotFound) {
  std::string out, err;
  EXPECT_EQ(Run({"stream", "--source=binlog",
                 "--binlog=/nonexistent/log.avtb", "--k=3", "--l=2"},
                &out, &err),
            3);
}

TEST_F(CliTest, StreamBinlogCorruptFileIsCorruption) {
  std::string bogus = TempPath("bogus.avtb");
  {
    std::ofstream file(bogus, std::ios::binary);
    file << std::string(128, 'z');
  }
  std::string out, err;
  EXPECT_EQ(Run({"stream", "--source=binlog", "--binlog=" + bogus, "--k=3",
                 "--l=2"},
                &out, &err),
            4);
}

TEST_F(CliTest, StreamMetaFlagsMustComeTogether) {
  std::string log_path = TempPath("meta_partial.txt");
  WriteTemporalFixture(log_path);
  std::string out, err;
  EXPECT_EQ(Run({"stream", "--source=file", "--temporal=" + log_path, "--t=4",
                 "--window=90", "--k=3", "--l=2", "--meta-vertices=9"},
                &out, &err),
            2);
  EXPECT_NE(err.find("--meta-tmin"), std::string::npos);
}

TEST_F(CliTest, StreamMetaFlagsSkipTheScanAndMatch) {
  // Handing the scanner's own metadata back via flags must not change
  // the stream (the single-pass open is an optimization, not a fork).
  std::string log_path = TempPath("meta_full.txt");
  WriteTemporalFixture(log_path);
  std::string scanned, handed;
  ASSERT_EQ(Run({"stream", "--source=file", "--temporal=" + log_path, "--t=4",
                 "--window=90", "--k=3", "--l=2"},
                &scanned),
            0);
  // Fixture: ts spans 0..357, max vertex id 8 -> universe 9.
  ASSERT_EQ(Run({"stream", "--source=file", "--temporal=" + log_path, "--t=4",
                 "--window=90", "--k=3", "--l=2", "--meta-tmin=0",
                 "--meta-tmax=357", "--meta-vertices=9"},
                &handed),
            0);
  ASSERT_NE(FinalLine(scanned), "");
  EXPECT_EQ(FinalLine(handed), FinalLine(scanned));
}

// --- stream command ----------------------------------------------------

TEST_F(CliTest, HelpMentionsStreamCommand) {
  std::string out;
  ASSERT_EQ(Run({"help"}, &out), 0);
  EXPECT_NE(out.find("stream"), std::string::npos);
  EXPECT_NE(out.find("--coalesce-window"), std::string::npos);
}

TEST_F(CliTest, StreamGeneratedChurnWorkload) {
  std::string out;
  ASSERT_EQ(Run({"stream", "--source=gen", "--n=300", "--t=5", "--k=3",
                 "--l=3", "--churn-min=20", "--churn-max=40"},
                &out),
            0);
  EXPECT_NE(out.find("source churn-gen: 5 snapshots"), std::string::npos);
  EXPECT_NE(out.find("anchor stability"), std::string::npos);
}

TEST_F(CliTest, StreamRejectsBadBatch) {
  std::string out, err;
  for (const char* bad : {"--batch=0", "--batch=-2", "--batch=huge"}) {
    EXPECT_EQ(Run({"stream", "--source=gen", "--n=100", "--t=3", "--k=3",
                   "--l=2", bad},
                  &out, &err),
              2)
        << bad;
    EXPECT_NE(err.find("--batch must be a positive integer"),
              std::string::npos)
        << bad;
  }
}

TEST_F(CliTest, StreamBatchMergesTransactions) {
  // T=5 snapshots = G_0 + 4 deltas; --batch=2 merges them into 2
  // transactions, so the engine reports 3 snapshots (batch boundaries).
  std::string out;
  ASSERT_EQ(Run({"stream", "--source=gen", "--n=300", "--t=5", "--k=3",
                 "--l=3", "--churn-min=20", "--churn-max=40",
                 "--algo=incavt", "--batch=2"},
                &out),
            0);
  EXPECT_NE(out.find("source churn-gen: 3 snapshots"), std::string::npos)
      << out;
}

TEST_F(CliTest, HelpMentionsBatchKnob) {
  std::string out;
  ASSERT_EQ(Run({"help"}, &out), 0);
  EXPECT_NE(out.find("--batch"), std::string::npos);
}

TEST_F(CliTest, StreamTemporalFileMatchesMaterializedTrack) {
  // The same temporal log driven through `track --temporal` (batch
  // load, WindowSnapshots, SequenceSource) and `stream --source=file`
  // (StreamingEdgeFileSource) must report identical per-snapshot
  // followers / anchored-core / candidates columns.
  std::string log_path = TempPath("stream_log.txt");
  {
    std::ofstream file(log_path);
    // 30 sorted events over a dense little community.
    for (int i = 0; i < 30; ++i) {
      int u = i % 5;
      int v = (i + 1 + i / 5) % 6;
      if (u == v) v = (v + 1) % 6;
      file << u << ' ' << v << ' ' << i * 3 << '\n';
    }
  }
  // Keeps the first `columns` whitespace/pipe-separated fields of every
  // numeric table row (dropping the trailing millis column).
  auto result_rows = [](const std::string& text, int columns) {
    std::string kept;
    std::istringstream stream(text);
    for (std::string line; std::getline(stream, line);) {
      if (line.find("ms total") != std::string::npos) continue;
      for (char& c : line) {
        if (c == '|') c = ' ';
      }
      std::istringstream row(line);
      std::string t;
      if (!(row >> t) ||
          t.find_first_not_of("0123456789") != std::string::npos) {
        continue;
      }
      kept += t;
      std::string field;
      for (int i = 1; i < columns && row >> field; ++i) {
        kept += " " + field;
      }
      kept += "\n";
    }
    return kept;
  };
  std::string tracked, streamed;
  ASSERT_EQ(Run({"track", "--temporal=" + log_path, "--t=4", "--window=30",
                 "--k=2", "--l=2", "--algo=incavt"},
                &tracked),
            0);
  ASSERT_EQ(Run({"stream", "--source=file", "--temporal=" + log_path,
                 "--t=4", "--window=30", "--k=2", "--l=2",
                 "--algo=incavt"},
                &streamed),
            0);
  // track rows: t followers anchored_core candidates [millis];
  // stream rows: t vertices followers anchored_core candidates
  // [millis]. The vertices column is constant here (full universe
  // declared up front), so compare after dropping it.
  auto drop_second_column = [](const std::string& rows) {
    std::string kept;
    std::istringstream stream(rows);
    for (std::string line; std::getline(stream, line);) {
      std::istringstream row(line);
      std::string t, vertices, rest;
      row >> t >> vertices;
      std::getline(row, rest);
      kept += t + rest + "\n";
    }
    return kept;
  };
  EXPECT_NE(result_rows(tracked, 4), "");
  EXPECT_EQ(result_rows(tracked, 4),
            drop_second_column(result_rows(streamed, 5)));
}

TEST_F(CliTest, StreamCoalesceWindowOneIsIdentity) {
  // Identical up to wall-clock: strip the trailing millis column and
  // the timing summary line before comparing.
  auto deterministic = [](const std::string& text) {
    std::string kept;
    std::istringstream stream(text);
    for (std::string line; std::getline(stream, line);) {
      if (line.find("ms total") != std::string::npos) continue;
      for (char& c : line) {
        if (c == '|') c = ' ';
      }
      std::istringstream row(line);
      std::string t;
      if (!(row >> t) ||
          t.find_first_not_of("0123456789") != std::string::npos) {
        kept += line + "\n";
        continue;
      }
      std::string vertices, followers, core, candidates;
      row >> vertices >> followers >> core >> candidates;
      kept += t + " " + vertices + " " + followers + " " + core + " " +
              candidates + "\n";
    }
    return kept;
  };
  std::string plain, coalesced;
  ASSERT_EQ(Run({"stream", "--source=gen", "--n=250", "--t=5", "--k=3",
                 "--l=3"},
                &plain),
            0);
  ASSERT_EQ(Run({"stream", "--source=gen", "--n=250", "--t=5", "--k=3",
                 "--l=3", "--coalesce-window=1"},
                &coalesced),
            0);
  EXPECT_EQ(deterministic(plain), deterministic(coalesced));
}

TEST_F(CliTest, StreamCoalesceMergesTransitions) {
  std::string out;
  ASSERT_EQ(Run({"stream", "--source=gen", "--n=250", "--t=7", "--k=3",
                 "--l=3", "--coalesce-window=3"},
                &out),
            0);
  // 6 upstream transitions coalesce into ceil(6/3) = 2, plus G_0.
  EXPECT_NE(out.find("3 snapshots"), std::string::npos);
}

TEST_F(CliTest, StreamRejectsBadFlags) {
  std::string out, err;
  EXPECT_EQ(Run({"stream", "--source=teleport"}, &out, &err), 2);
  EXPECT_NE(err.find("unknown --source"), std::string::npos);

  EXPECT_EQ(Run({"stream", "--source=gen", "--coalesce-window=0"}, &out,
                &err),
            2);
  EXPECT_NE(err.find("--coalesce-window must be a positive integer"),
            std::string::npos);

  EXPECT_EQ(Run({"stream", "--source=file"}, &out, &err), 2);
  EXPECT_NE(err.find("--temporal"), std::string::npos);

  EXPECT_EQ(Run({"stream", "--source=sequence"}, &out, &err), 2);
  EXPECT_NE(err.find("--dataset"), std::string::npos);
}

TEST_F(CliTest, StreamRejectsUnsortedTemporalFile) {
  // An unsorted file is an InvalidArgument: exit 2 under the Status
  // exit-code mapping.
  std::string log_path = TempPath("unsorted_log.txt");
  {
    std::ofstream file(log_path);
    file << "0 1 100\n2 3 50\n";
  }
  std::string out, err;
  EXPECT_EQ(Run({"stream", "--source=file", "--temporal=" + log_path,
                 "--t=3", "--window=30"},
                &out, &err),
            2);
  EXPECT_NE(err.find("not sorted by timestamp"), std::string::npos);
}

TEST_F(CliTest, StreamMissingTemporalFileExitsIoCode) {
  std::string out, err;
  EXPECT_EQ(Run({"stream", "--source=file",
                 "--temporal=/nonexistent/stream.txt", "--t=3"},
                &out, &err),
            5);
  EXPECT_NE(err.find("cannot open"), std::string::npos);
}

// --- stream crash safety -----------------------------------------------

TEST_F(CliTest, HelpMentionsCrashSafetyKnobs) {
  std::string out;
  ASSERT_EQ(Run({"help"}, &out), 0);
  EXPECT_NE(out.find("--checkpoint-dir"), std::string::npos);
  EXPECT_NE(out.find("--resume"), std::string::npos);
  EXPECT_NE(out.find("--fault-rate"), std::string::npos);
  EXPECT_NE(out.find("exit codes"), std::string::npos);
}

TEST_F(CliTest, StreamDurabilityFlagsNeedCheckpointDir) {
  std::string out, err;
  for (const char* orphan :
       {"--resume", "--checkpoint-every=4", "--fsync=record"}) {
    EXPECT_EQ(Run({"stream", "--source=gen", "--n=100", "--t=3", orphan},
                  &out, &err),
              2)
        << orphan;
    EXPECT_NE(err.find("--checkpoint-dir"), std::string::npos) << orphan;
  }
}

TEST_F(CliTest, StreamRejectsBadDurabilityValues) {
  std::string dir = TempDir("bad_durability");
  std::string out, err;
  EXPECT_EQ(Run({"stream", "--source=gen", "--n=100", "--t=3",
                 "--checkpoint-dir=" + dir, "--fsync=sometimes"},
                &out, &err),
            2);
  EXPECT_NE(err.find("unknown --fsync"), std::string::npos);
  EXPECT_EQ(Run({"stream", "--source=gen", "--n=100", "--t=3",
                 "--checkpoint-dir=" + dir, "--checkpoint-every=-1"},
                &out, &err),
            2);
  EXPECT_NE(err.find("--checkpoint-every"), std::string::npos);
  EXPECT_EQ(Run({"stream", "--source=gen", "--n=100", "--t=3",
                 "--fault-rate=1.5"},
                &out, &err),
            2);
  EXPECT_NE(err.find("--fault-rate"), std::string::npos);
}

TEST_F(CliTest, StreamCheckpointedRunMatchesPlainRunAndResumes) {
  // One deterministic generated stream, three ways: plain, with
  // durability armed, and resumed from the completed run's directory.
  // All three must report the identical final anchor set — and the
  // durability directory must hold a WAL plus checkpoints.
  std::vector<std::string> base = {"stream",      "--source=gen",
                                   "--n=250",     "--t=5",
                                   "--k=3",       "--l=3",
                                   "--seed=11",   "--churn-min=20",
                                   "--churn-max=40"};
  std::string plain;
  ASSERT_EQ(Run(base, &plain), 0);
  ASSERT_NE(FinalLine(plain), "");

  std::string dir = TempDir("ckpt_run");
  std::vector<std::string> durable = base;
  durable.push_back("--checkpoint-dir=" + dir);
  durable.push_back("--checkpoint-every=2");
  std::string checkpointed;
  ASSERT_EQ(Run(durable, &checkpointed), 0);
  EXPECT_EQ(FinalLine(checkpointed), FinalLine(plain));
  EXPECT_TRUE(std::filesystem::exists(dir + "/wal.log"));

  // Re-running WITHOUT --resume into the used directory must refuse
  // rather than clobber the log.
  std::string out, err;
  EXPECT_EQ(Run(durable, &out, &err), 2);
  EXPECT_NE(err.find("error"), std::string::npos);

  std::vector<std::string> resumed_args = durable;
  resumed_args.push_back("--resume");
  std::string resumed;
  ASSERT_EQ(Run(resumed_args, &resumed), 0);
  EXPECT_EQ(FinalLine(resumed), FinalLine(plain));
}

TEST_F(CliTest, StreamResumeRejectsMismatchedConfig) {
  std::string dir = TempDir("ckpt_mismatch");
  std::string out, err;
  ASSERT_EQ(Run({"stream", "--source=gen", "--n=200", "--t=4", "--k=3",
                 "--l=3", "--seed=5", "--checkpoint-dir=" + dir},
                &out),
            0);
  // Same directory, different k: the checkpoint fingerprint rejects it.
  EXPECT_EQ(Run({"stream", "--source=gen", "--n=200", "--t=4", "--k=4",
                 "--l=3", "--seed=5", "--checkpoint-dir=" + dir,
                 "--resume"},
                &out, &err),
            2);
  EXPECT_NE(err.find("error"), std::string::npos);
}

TEST_F(CliTest, StreamResumeDetectsCorruptWal) {
  std::string dir = TempDir("ckpt_corrupt");
  std::string out, err;
  ASSERT_EQ(Run({"stream", "--source=gen", "--n=200", "--t=4", "--k=3",
                 "--l=3", "--seed=5", "--checkpoint-dir=" + dir},
                &out),
            0);
  // Flip one byte inside the first WAL frame (past the 8-byte magic):
  // the record CRC catches it and resume exits with the corruption
  // code, never a crash.
  std::string wal_path = dir + "/wal.log";
  {
    std::fstream wal(wal_path,
                     std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(wal.good());
    wal.seekg(0, std::ios::end);
    ASSERT_GT(static_cast<long>(wal.tellg()), 16L);
    wal.seekp(12);
    char byte = 0;
    wal.seekg(12);
    wal.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    wal.seekp(12);
    wal.write(&byte, 1);
  }
  EXPECT_EQ(Run({"stream", "--source=gen", "--n=200", "--t=4", "--k=3",
                 "--l=3", "--seed=5", "--checkpoint-dir=" + dir,
                 "--resume"},
                &out, &err),
            4);
  EXPECT_NE(err.find("error"), std::string::npos);
}

TEST_F(CliTest, StreamFaultInjectionAbsorbedByRetries) {
  // A 40% transient fault rate (high enough to fire on a 4-pull
  // stream), absorbed by the retry decorator: the run succeeds,
  // reports the absorbed faults in its summary, and its final anchors
  // match the fault-free run exactly (transient faults never consume
  // upstream deltas).
  std::vector<std::string> base = {"stream",    "--source=gen", "--n=250",
                                   "--t=5",     "--k=3",        "--l=3",
                                   "--seed=11", "--churn-min=20",
                                   "--churn-max=40"};
  std::string clean;
  ASSERT_EQ(Run(base, &clean), 0);
  std::vector<std::string> faulty = base;
  faulty.push_back("--fault-rate=0.4");
  faulty.push_back("--fault-seed=7");
  std::string absorbed;
  ASSERT_EQ(Run(faulty, &absorbed), 0);
  EXPECT_EQ(FinalLine(absorbed), FinalLine(clean));
  EXPECT_NE(absorbed.find("transient source errors absorbed"),
            std::string::npos)
      << absorbed;
}

TEST_F(CliTest, StreamInjectedCorruptionExitsCorruptionCode) {
  std::string out, err;
  EXPECT_EQ(Run({"stream", "--source=gen", "--n=200", "--t=5", "--k=3",
                 "--l=3", "--fault-corrupt-after=2"},
                &out, &err),
            4);
  EXPECT_NE(err.find("injected"), std::string::npos);
}

// --- stream self-healing -------------------------------------------------

TEST_F(CliTest, HelpMentionsSelfHealingKnobs) {
  std::string out;
  ASSERT_EQ(Run({"help"}, &out), 0);
  EXPECT_NE(out.find("--audit-every"), std::string::npos);
  EXPECT_NE(out.find("--quarantine-dir"), std::string::npos);
  EXPECT_NE(out.find("--breaker"), std::string::npos);
  EXPECT_NE(out.find("--poison-rate"), std::string::npos);
  EXPECT_NE(out.find("quarantine"), std::string::npos);
  EXPECT_NE(out.find("6 completed but degraded"), std::string::npos);
}

TEST_F(CliTest, StreamRejectsBadSelfHealingFlags) {
  std::string out, err;
  EXPECT_EQ(Run({"stream", "--source=gen", "--n=100", "--t=3",
                 "--audit-every=-2"},
                &out, &err),
            2);
  EXPECT_NE(err.find("--audit-every"), std::string::npos);

  EXPECT_EQ(Run({"stream", "--source=gen", "--n=100", "--t=3",
                 "--audit-sample=32"},
                &out, &err),
            2);
  EXPECT_NE(err.find("need --audit-every"), std::string::npos);

  EXPECT_EQ(Run({"stream", "--source=gen", "--n=100", "--t=3",
                 "--poison-rate=1.5"},
                &out, &err),
            2);
  EXPECT_NE(err.find("--poison-rate"), std::string::npos);

  EXPECT_EQ(Run({"stream", "--source=gen", "--n=100", "--t=3",
                 "--breaker-window=4"},
                &out, &err),
            2);
  EXPECT_NE(err.find("need --breaker"), std::string::npos);

  EXPECT_EQ(Run({"stream", "--source=gen", "--n=100", "--t=3",
                 "--breaker", "--breaker-threshold=2.0"},
                &out, &err),
            2);
  EXPECT_NE(err.find("--breaker-threshold"), std::string::npos);

  // The corruption drill needs an audit to catch it and a WAL to roll
  // back to; orphaned it is a caller error.
  EXPECT_EQ(Run({"stream", "--source=gen", "--n=100", "--t=3",
                 "--corrupt-state-after=2"},
                &out, &err),
            2);
  EXPECT_NE(err.find("--corrupt-state-after"), std::string::npos);
}

TEST_F(CliTest, StreamHealthyAuditedRunPrintsHealthLine) {
  std::vector<std::string> base = {"stream",      "--source=gen",
                                   "--n=250",     "--t=5",
                                   "--k=3",       "--l=3",
                                   "--seed=11",   "--churn-min=20",
                                   "--churn-max=40"};
  std::string plain;
  ASSERT_EQ(Run(base, &plain), 0);

  std::vector<std::string> audited_args = base;
  audited_args.push_back("--audit-every=2");
  std::string audited;
  ASSERT_EQ(Run(audited_args, &audited), 0);
  EXPECT_NE(audited.find("health: healthy audits=2 failures=0"),
            std::string::npos)
      << audited;
  // Audits are pure observers: the tracked result is unchanged.
  EXPECT_EQ(FinalLine(audited), FinalLine(plain));
}

TEST_F(CliTest, StreamPoisonRunQuarantinesAndExitsDegraded) {
  std::vector<std::string> base = {"stream",      "--source=gen",
                                   "--n=250",     "--t=6",
                                   "--k=3",       "--l=3",
                                   "--seed=11",   "--churn-min=20",
                                   "--churn-max=40"};
  std::string clean;
  ASSERT_EQ(Run(base, &clean), 0);

  std::string dir = TempDir("poison_run");
  std::vector<std::string> poisoned_args = base;
  poisoned_args.push_back("--poison-rate=0.3");
  poisoned_args.push_back("--quarantine-dir=" + dir);
  std::string poisoned;
  ASSERT_EQ(Run(poisoned_args, &poisoned), 6);
  EXPECT_NE(poisoned.find("health: degraded (quarantined-delta)"),
            std::string::npos)
      << poisoned;
  EXPECT_NE(poisoned.find("poison injected:"), std::string::npos);
  // Exactly the poison was diverted: the surviving stream reproduces
  // the clean run bit for bit.
  EXPECT_EQ(FinalLine(poisoned), FinalLine(clean));

  // The quarantine subcommand lists the dead-lettered deltas.
  std::string listed;
  ASSERT_EQ(Run({"quarantine", dir}, &listed), 0);
  EXPECT_NE(listed.find("quarantined delta(s) in"), std::string::npos);
  EXPECT_NE(listed.find("reason=invalid-delta"), std::string::npos);
  EXPECT_NE(listed.find("self-loop"), std::string::npos);
}

TEST_F(CliTest, QuarantineCommandErrors) {
  std::string out, err;
  EXPECT_EQ(Run({"quarantine"}, &out, &err), 2);
  EXPECT_NE(err.find("missing"), std::string::npos);

  EXPECT_EQ(Run({"quarantine", TempDir("no_such_quarantine")}, &out, &err),
            3);
  EXPECT_NE(err.find("no quarantine log"), std::string::npos);
}

TEST_F(CliTest, StreamCorruptionDrillSelfHealsBitIdentically) {
  std::vector<std::string> base = {"stream",      "--source=gen",
                                   "--n=250",     "--t=6",
                                   "--k=3",       "--l=3",
                                   "--seed=11",   "--churn-min=20",
                                   "--churn-max=40"};
  std::string clean;
  ASSERT_EQ(Run(base, &clean), 0);

  std::string dir = TempDir("drill_run");
  std::vector<std::string> drilled_args = base;
  drilled_args.push_back("--checkpoint-dir=" + dir);
  drilled_args.push_back("--audit-every=2");
  drilled_args.push_back("--corrupt-state-after=2");
  std::string drilled;
  ASSERT_EQ(Run(drilled_args, &drilled), 6);
  EXPECT_NE(drilled.find("health: degraded (audit-recovered)"),
            std::string::npos)
      << drilled;
  EXPECT_NE(drilled.find("recoveries=1"), std::string::npos) << drilled;
  // Rollback recovery reproduced the exact pre-drill trajectory.
  EXPECT_EQ(FinalLine(drilled), FinalLine(clean));
}

TEST_F(CliTest, StreamBreakerRunSurvivesFaultySourceDegraded) {
  std::vector<std::string> base = {"stream",      "--source=gen",
                                   "--n=250",     "--t=6",
                                   "--k=3",       "--l=3",
                                   "--seed=11",   "--churn-min=20",
                                   "--churn-max=40"};
  std::string clean;
  ASSERT_EQ(Run(base, &clean), 0);

  // No retry budget: every injected fault reaches the breaker, which
  // trips, cools down in pulls, half-open-probes, and the run still
  // completes with the identical final state — exit 6 because trips
  // mean the source was degraded.
  std::vector<std::string> guarded_args = base;
  guarded_args.push_back("--fault-rate=0.4");
  guarded_args.push_back("--fault-seed=3");
  guarded_args.push_back("--max-retries=0");
  guarded_args.push_back("--breaker");
  guarded_args.push_back("--breaker-window=4");
  guarded_args.push_back("--breaker-threshold=0.5");
  guarded_args.push_back("--breaker-cooldown=6");
  std::string guarded;
  ASSERT_EQ(Run(guarded_args, &guarded), 6);
  EXPECT_NE(guarded.find("health: degraded (source-unavailable)"),
            std::string::npos)
      << guarded;
  EXPECT_NE(guarded.find("breaker opened"), std::string::npos) << guarded;
  EXPECT_EQ(FinalLine(guarded), FinalLine(clean));
}

}  // namespace
}  // namespace cli
}  // namespace avt
