// Unit tests for core decomposition (Definitions 1-2, Algorithm 1).

#include "corelib/decomposition.h"

#include <gtest/gtest.h>

#include "gen/models.h"
#include "graph/graph.h"
#include "util/random.h"

namespace avt {
namespace {

Graph Triangle() {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  return g;
}

TEST(Decomposition, EmptyGraph) {
  Graph g(5);
  CoreDecomposition cores = DecomposeCores(g);
  EXPECT_EQ(cores.max_core, 0u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(cores.core[v], 0u);
  EXPECT_EQ(cores.peel_order.size(), 5u);
}

TEST(Decomposition, SingleEdge) {
  Graph g(2);
  g.AddEdge(0, 1);
  CoreDecomposition cores = DecomposeCores(g);
  EXPECT_EQ(cores.core[0], 1u);
  EXPECT_EQ(cores.core[1], 1u);
  EXPECT_EQ(cores.max_core, 1u);
}

TEST(Decomposition, TriangleIsTwoCore) {
  CoreDecomposition cores = DecomposeCores(Triangle());
  for (VertexId v = 0; v < 3; ++v) EXPECT_EQ(cores.core[v], 2u);
}

TEST(Decomposition, PathHasCoreOne) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  CoreDecomposition cores = DecomposeCores(g);
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(cores.core[v], 1u);
}

TEST(Decomposition, CliqueCore) {
  const VertexId n = 6;
  Graph g(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) g.AddEdge(u, v);
  }
  CoreDecomposition cores = DecomposeCores(g);
  for (VertexId v = 0; v < n; ++v) EXPECT_EQ(cores.core[v], n - 1);
  EXPECT_EQ(cores.max_core, n - 1);
}

TEST(Decomposition, StarIsOneCore) {
  Graph g(7);
  for (VertexId v = 1; v < 7; ++v) g.AddEdge(0, v);
  CoreDecomposition cores = DecomposeCores(g);
  for (VertexId v = 0; v < 7; ++v) EXPECT_EQ(cores.core[v], 1u);
}

// Clique with a pendant path: mixed core numbers.
TEST(Decomposition, CliquePlusTail) {
  Graph g(7);
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = u + 1; v < 4; ++v) g.AddEdge(u, v);
  }
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  g.AddEdge(5, 6);
  CoreDecomposition cores = DecomposeCores(g);
  EXPECT_EQ(cores.core[0], 3u);
  EXPECT_EQ(cores.core[3], 3u);
  EXPECT_EQ(cores.core[4], 1u);
  EXPECT_EQ(cores.core[6], 1u);
}

TEST(Decomposition, PeelOrderGroupedByCore) {
  Rng rng(7);
  Graph g = BarabasiAlbert(200, 3, rng);
  CoreDecomposition cores = DecomposeCores(g);
  uint32_t level = 0;
  for (VertexId v : cores.peel_order) {
    EXPECT_GE(cores.core[v], level);
    level = std::max(level, cores.core[v]);
  }
  EXPECT_EQ(cores.peel_order.size(), g.NumVertices());
}

TEST(Decomposition, MatchesNaiveOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    Graph g = ErdosRenyi(120, 360, rng);
    CoreDecomposition fast = DecomposeCores(g);
    CoreDecomposition naive = DecomposeCoresNaive(g);
    EXPECT_EQ(fast.core, naive.core) << "seed " << seed;
    EXPECT_EQ(fast.max_core, naive.max_core) << "seed " << seed;
  }
}

TEST(Decomposition, MatchesNaiveOnPowerLawGraphs) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed + 100);
    Graph g = ChungLuPowerLaw(150, 6.0, 2.2, 40, rng);
    CoreDecomposition fast = DecomposeCores(g);
    CoreDecomposition naive = DecomposeCoresNaive(g);
    EXPECT_EQ(fast.core, naive.core) << "seed " << seed;
  }
}

// Definition-level check: core(v) >= k iff v survives peeling at k.
TEST(Decomposition, CoreNumbersAreSelfConsistent) {
  Rng rng(11);
  Graph g = WattsStrogatz(150, 6, 0.2, rng);
  CoreDecomposition cores = DecomposeCores(g);
  for (uint32_t k = 1; k <= cores.max_core + 1; ++k) {
    // Peel at k and compare membership.
    std::vector<uint32_t> degree(g.NumVertices());
    std::vector<uint8_t> removed(g.NumVertices(), 0);
    for (VertexId v = 0; v < g.NumVertices(); ++v) degree[v] = g.Degree(v);
    bool changed = true;
    while (changed) {
      changed = false;
      for (VertexId v = 0; v < g.NumVertices(); ++v) {
        if (removed[v] || degree[v] >= k) continue;
        removed[v] = 1;
        changed = true;
        for (VertexId w : g.Neighbors(v)) {
          if (!removed[w]) --degree[w];
        }
      }
    }
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      EXPECT_EQ(cores.core[v] >= k, !removed[v])
          << "k=" << k << " v=" << v;
    }
  }
}

TEST(Decomposition, PinnedVerticesNeverPeel) {
  Graph g(5);
  g.AddEdge(0, 1);  // pendant pair attached to a triangle
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  g.AddEdge(2, 4);
  CoreDecomposition pinned = DecomposeCores(g, {0});
  EXPECT_EQ(pinned.core[0], kPinnedCore);
  // Vertex 1 now leans on the pinned vertex 0: peel still removes it at
  // k=2 because 0 counts as a neighbor forever -> degree 2 at start.
  EXPECT_EQ(pinned.core[1], 2u);
}

TEST(Decomposition, KCoreAndShellMembers) {
  Graph g = Triangle();
  CoreDecomposition cores = DecomposeCores(g);
  EXPECT_EQ(KCoreMembers(cores, 2).size(), 3u);
  EXPECT_EQ(KCoreMembers(cores, 3).size(), 0u);
  EXPECT_EQ(KShellMembers(cores, 2).size(), 3u);
  EXPECT_EQ(KShellMembers(cores, 1).size(), 0u);
}

TEST(Decomposition, MaxCoreDegreeDefinition) {
  // Example 10 shape: mcd counts neighbors with core >= own core.
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);  // triangle: cores 2
  g.AddEdge(2, 3);  // pendant chain: cores 1
  g.AddEdge(3, 4);
  CoreDecomposition cores = DecomposeCores(g);
  EXPECT_EQ(cores.core[2], 2u);
  EXPECT_EQ(cores.core[3], 1u);
  EXPECT_EQ(MaxCoreDegree(g, cores, 3), 2u);  // both 2 and 4 have core >= 1
  EXPECT_EQ(MaxCoreDegree(g, cores, 2), 2u);  // 0 and 1 (core 2), not 3
}

}  // namespace
}  // namespace avt
