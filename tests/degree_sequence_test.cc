// Tests for the configuration-model pipeline: graphicality testing,
// Havel-Hakimi realization, and degree-preserving rewiring.

#include "gen/degree_sequence.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/random.h"

namespace avt {
namespace {

TEST(Graphicality, ClassicCases) {
  EXPECT_TRUE(IsGraphical({}));
  EXPECT_TRUE(IsGraphical({0, 0, 0}));
  EXPECT_TRUE(IsGraphical({1, 1}));
  EXPECT_TRUE(IsGraphical({2, 2, 2}));          // triangle
  EXPECT_TRUE(IsGraphical({3, 3, 3, 3}));       // K4
  EXPECT_TRUE(IsGraphical({3, 2, 2, 2, 1}));
  EXPECT_FALSE(IsGraphical({1}));               // odd sum
  EXPECT_FALSE(IsGraphical({3, 1, 1}));         // odd sum
  EXPECT_TRUE(IsGraphical({4, 1, 1, 1, 1}));    // star K_{1,4}
}

TEST(Graphicality, HubTooLargeFails) {
  // n = 4 but one vertex wants degree 4 > n-1.
  EXPECT_FALSE(IsGraphical({4, 1, 1, 1}));
  // Erdos-Gallai beyond the trivial bound: {3,3,1,1} has even sum and
  // max < n, but the two high-degree vertices cannot be satisfied.
  EXPECT_FALSE(IsGraphical({3, 3, 1, 1}));
}

TEST(HavelHakimi, RealizesExactDegrees) {
  std::vector<uint32_t> degrees{3, 2, 2, 2, 1};
  // sum = 10, even; graphical.
  ASSERT_TRUE(IsGraphical(degrees));
  Graph g = RealizeDegreeSequence(degrees);
  for (VertexId v = 0; v < degrees.size(); ++v) {
    EXPECT_EQ(g.Degree(v), degrees[v]) << "vertex " << v;
  }
}

TEST(HavelHakimi, RegularGraph) {
  std::vector<uint32_t> degrees(10, 3);
  Graph g = RealizeDegreeSequence(degrees);
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(g.Degree(v), 3u);
  EXPECT_EQ(g.NumEdges(), 15u);
}

TEST(Rewiring, PreservesDegreesExactly) {
  Rng rng(5);
  std::vector<uint32_t> degrees = SamplePowerLawDegrees(120, 5.0, 2.2, 30,
                                                        rng);
  Graph g = RealizeDegreeSequence(degrees);
  std::vector<uint32_t> before(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) before[v] = g.Degree(v);
  uint64_t edges_before = g.NumEdges();

  uint64_t swaps = RewireDoubleEdgeSwaps(g, 2000, rng);
  EXPECT_GT(swaps, 0u);
  EXPECT_EQ(g.NumEdges(), edges_before);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(g.Degree(v), before[v]) << "vertex " << v;
  }
}

TEST(Rewiring, ActuallyChangesTopology) {
  Rng rng(7);
  std::vector<uint32_t> degrees(40, 4);
  Graph g = RealizeDegreeSequence(degrees);
  Graph original = g;
  RewireDoubleEdgeSwaps(g, 1000, rng);
  EXPECT_FALSE(g == original);
}

TEST(SampleDegrees, GraphicalAndNearTarget) {
  Rng rng(9);
  for (double target : {3.0, 6.0, 10.0}) {
    std::vector<uint32_t> degrees =
        SamplePowerLawDegrees(300, target, 2.1, 60, rng);
    EXPECT_TRUE(IsGraphical(degrees));
    double mean = 0;
    for (uint32_t d : degrees) mean += d;
    mean /= 300.0;
    EXPECT_NEAR(mean, target, target * 0.35) << "target " << target;
  }
}

TEST(ConfigurationModel, EndToEnd) {
  Rng rng(11);
  Graph g = ConfigurationModel(400, 6.0, 2.2, 50, rng);
  EXPECT_EQ(g.NumVertices(), 400u);
  EXPECT_NEAR(g.AverageDegree(), 6.0, 2.0);
  // Simple graph: no self-loops or duplicates by construction.
  std::vector<Edge> edges = g.CollectEdges();
  for (size_t i = 0; i + 1 < edges.size(); ++i) {
    EXPECT_FALSE(edges[i] == edges[i + 1]);
  }
  for (const Edge& e : edges) EXPECT_NE(e.u, e.v);
}

TEST(ConfigurationModel, Deterministic) {
  Rng a(13), b(13);
  Graph ga = ConfigurationModel(200, 5.0, 2.2, 40, a);
  Graph gb = ConfigurationModel(200, 5.0, 2.2, 40, b);
  EXPECT_TRUE(ga == gb);
}

}  // namespace
}  // namespace avt
