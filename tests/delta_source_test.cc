// Delta-source layer tests: every streaming source must mirror the
// materialized construction it replaces — identical delta sequences,
// identical replayed graphs, and (for the coalescing decorator)
// bit-identical tracking results — plus EdgeDelta::Canonicalize as the
// standalone utility the sources build on.

#include "graph/delta_source.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/inc_avt.h"
#include "gen/churn.h"
#include "gen/generator_source.h"
#include "gen/models.h"
#include "gen/temporal.h"
#include "graph/io.h"
#include "util/random.h"

namespace avt {
namespace {

// Emits a fixed initial graph + delta script (for decorator tests).
class VectorSource : public DeltaSource {
 public:
  VectorSource(Graph initial, std::vector<EdgeDelta> deltas)
      : initial_(std::move(initial)), deltas_(std::move(deltas)) {}

  const Graph& InitialGraph() const override { return initial_; }
  StatusOr<bool> NextDelta(EdgeDelta* delta) override {
    if (next_ >= deltas_.size()) return false;
    *delta = deltas_[next_++];
    return true;
  }
  std::string name() const override { return "vector"; }

 private:
  Graph initial_;
  std::vector<EdgeDelta> deltas_;
  size_t next_ = 0;
};

// Pulls one delta, asserting the pull itself succeeded (these tests
// exercise ordering/merging, not fault paths).
bool MustNext(DeltaSource& source, EdgeDelta* delta) {
  StatusOr<bool> more = source.NextDelta(delta);
  EXPECT_TRUE(more.ok()) << more.status().ToString();
  return more.ok() && more.value();
}

std::vector<EdgeDelta> DrainSource(DeltaSource& source) {
  std::vector<EdgeDelta> deltas;
  EdgeDelta delta;
  while (MustNext(source, &delta)) deltas.push_back(delta);
  return deltas;
}

void ExpectSameDeltas(const std::vector<EdgeDelta>& a,
                      const std::vector<EdgeDelta>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a[t].insertions, b[t].insertions) << "t=" << t;
    EXPECT_EQ(a[t].deletions, b[t].deletions) << "t=" << t;
  }
}

// --- EdgeDelta::Canonicalize ------------------------------------------

TEST(Canonicalize, SortsDedupesAndDropsSelfLoops) {
  EdgeDelta delta;
  delta.insertions = {Edge(5, 2), Edge(1, 3), Edge(5, 2), Edge(4, 4)};
  delta.deletions = {Edge(9, 9), Edge(8, 6), Edge(6, 8)};
  delta.Canonicalize();
  EXPECT_EQ(delta.insertions, (std::vector<Edge>{Edge(1, 3), Edge(2, 5)}));
  EXPECT_EQ(delta.deletions, (std::vector<Edge>{Edge(6, 8)}));
}

TEST(Canonicalize, CollapsesInsertDeletePairsToTheDeletion) {
  EdgeDelta delta;
  delta.insertions = {Edge(0, 1), Edge(2, 3)};
  delta.deletions = {Edge(1, 0), Edge(4, 5)};
  delta.Canonicalize();
  // (0,1) appears in both batches; insert-then-delete ends absent in
  // every starting state, exactly like the lone deletion.
  EXPECT_EQ(delta.insertions, (std::vector<Edge>{Edge(2, 3)}));
  EXPECT_EQ(delta.deletions, (std::vector<Edge>{Edge(0, 1), Edge(4, 5)}));
}

TEST(Canonicalize, PreservesApplySemantics) {
  Rng rng(11);
  Graph g = ErdosRenyi(40, 120, rng);
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng delta_rng(100 + seed);
    EdgeDelta messy;
    for (int i = 0; i < 30; ++i) {
      VertexId u = static_cast<VertexId>(delta_rng.Uniform(40));
      VertexId v = static_cast<VertexId>(delta_rng.Uniform(40));
      if (delta_rng.Bernoulli(0.5)) {
        messy.insertions.push_back(Edge(u, v));
      } else {
        messy.deletions.push_back(Edge(u, v));
      }
    }
    EdgeDelta canonical = messy;
    canonical.Canonicalize();
    Graph a = g;
    Graph b = g;
    messy.Apply(a);
    canonical.Apply(b);
    EXPECT_TRUE(a == b) << "seed " << seed;
  }
}

TEST(Canonicalize, EmptyDeltaStaysEmpty) {
  EdgeDelta delta;
  delta.Canonicalize();
  EXPECT_TRUE(delta.Empty());
}

// --- SequenceSource ----------------------------------------------------

TEST(SequenceSource, EmitsDeltasVerbatim) {
  Rng rng(21);
  Graph initial = ChungLuPowerLaw(120, 5.0, 2.2, 30, rng);
  ChurnOptions options;
  options.num_snapshots = 6;
  options.min_churn = 10;
  options.max_churn = 25;
  SnapshotSequence sequence = MakeChurnSnapshots(initial, options, rng);

  SequenceSource source(&sequence);
  EXPECT_TRUE(source.InitialGraph() == sequence.initial());
  std::vector<EdgeDelta> streamed = DrainSource(source);
  ExpectSameDeltas(streamed, sequence.deltas());
}

// --- ChurnSource vs MakeChurnSnapshots --------------------------------

TEST(ChurnSource, BitIdenticalToMaterializedProtocol) {
  Rng graph_rng(31);
  Graph initial = ChungLuPowerLaw(150, 6.0, 2.2, 40, graph_rng);
  ChurnOptions options;
  options.num_snapshots = 8;
  options.min_churn = 15;
  options.max_churn = 40;

  // Same Rng state feeds both constructions.
  Rng protocol_rng(77);
  SnapshotSequence sequence =
      MakeChurnSnapshots(initial, options, protocol_rng);
  ChurnSource source(initial, options, Rng(77));

  EXPECT_TRUE(source.InitialGraph() == sequence.initial());
  std::vector<EdgeDelta> streamed = DrainSource(source);
  ExpectSameDeltas(streamed, sequence.deltas());
}

// --- TemporalWindowSource vs WindowSnapshots --------------------------

TemporalEventLog SmallTemporalLog(uint64_t seed) {
  Rng rng(seed);
  TemporalGenOptions options;
  options.num_vertices = 200;
  options.num_events = 12'000;
  options.num_days = 120;
  return GenCommunityEmailEvents(options, 6, 0.85, rng);
}

TEST(TemporalWindowSource, MirrorsWindowSnapshots) {
  TemporalEventLog log = SmallTemporalLog(41);
  const size_t T = 6;
  const uint32_t window = 30;
  SnapshotSequence sequence = WindowSnapshots(log, T, window);
  TemporalWindowSource source(log, T, window);

  EXPECT_TRUE(source.InitialGraph() == sequence.initial());
  std::vector<EdgeDelta> streamed = DrainSource(source);
  ExpectSameDeltas(streamed, sequence.deltas());
}

// --- StreamingEdgeFileSource ------------------------------------------

class TempFileTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    auto path = std::filesystem::temp_directory_path() /
                ("avt_delta_source_" + name);
    created_.push_back(path.string());
    return path.string();
  }
  void TearDown() override {
    for (const std::string& path : created_) std::remove(path.c_str());
  }
  std::vector<std::string> created_;
};

using StreamingEdgeFileSourceTest = TempFileTest;

TEST_F(StreamingEdgeFileSourceTest, MirrorsMaterializedWindowing) {
  TemporalEventLog log = SmallTemporalLog(43);
  std::string path = TempPath("log.txt");
  ASSERT_TRUE(SaveTemporalEdgeList(log, path).ok());

  // The materialized mirror of the FILE: load (same first-appearance id
  // compaction the stream performs) then window.
  auto loaded = LoadTemporalEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  const size_t T = 6;
  const uint32_t window = 30;
  SnapshotSequence sequence = WindowSnapshots(loaded.value(), T, window);

  auto opened = StreamingEdgeFileSource::Open(path, T, window);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  StreamingEdgeFileSource& source = *opened.value();

  // The metadata pass declared the full dense universe, so G_0 is
  // bit-identical to the batch loader's initial snapshot.
  EXPECT_TRUE(source.InitialGraph() == sequence.initial());
  EXPECT_EQ(source.InitialGraph().NumVertices(),
            loaded.value().num_vertices);

  std::vector<EdgeDelta> streamed = DrainSource(source);
  ExpectSameDeltas(streamed, sequence.deltas());
  // After the whole file: every id the loader assigned has been seen.
  EXPECT_EQ(source.NumVerticesSeen(), loaded.value().num_vertices);

  // Replaying streamed deltas reproduces every materialized snapshot.
  Graph replay = source.InitialGraph();
  for (size_t t = 0; t < streamed.size(); ++t) {
    streamed[t].Apply(replay);
    EXPECT_TRUE(replay == sequence.Materialize(t + 1)) << "t=" << (t + 1);
  }
}

TEST_F(StreamingEdgeFileSourceTest, SelfLoopLinesAreInvisibleLikeTheLoader) {
  // The batch loader drops self-loops before they can touch ids or the
  // timestamp range; the stream's metadata pass must agree, or the
  // window boundaries drift. The self-loops here carry the extreme
  // timestamps AND appear out of timestamp order relative to real
  // events — both must be ignored.
  std::string path = TempPath("selfloops.txt");
  {
    std::ofstream file(path);
    file << "9 9 1\n"     // self-loop owns t_min and is out of order
         << "0 1 10\n0 2 12\n1 2 14\n2 3 20\n0 3 26\n"
         << "7 7 999\n";  // self-loop owns t_max
  }
  auto loaded = LoadTemporalEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  const size_t T = 3;
  const uint32_t window = 8;
  SnapshotSequence sequence = WindowSnapshots(loaded.value(), T, window);

  auto opened = StreamingEdgeFileSource::Open(path, T, window);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  StreamingEdgeFileSource& source = *opened.value();
  EXPECT_TRUE(source.InitialGraph() == sequence.initial());
  ExpectSameDeltas(DrainSource(source), sequence.deltas());
}

TEST_F(StreamingEdgeFileSourceTest, MissingFileIsAnIoError) {
  auto opened = StreamingEdgeFileSource::Open("/nonexistent/nope.txt", 4, 30);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kIoError);
}

TEST_F(StreamingEdgeFileSourceTest, UnsortedFileIsRejectedWithContext) {
  std::string path = TempPath("unsorted.txt");
  {
    std::ofstream file(path);
    file << "0 1 100\n2 3 50\n";
  }
  auto opened = StreamingEdgeFileSource::Open(path, 4, 30);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(opened.status().message().find("line 2"), std::string::npos);
}

TEST_F(StreamingEdgeFileSourceTest, MalformedLineIsCorruption) {
  std::string path = TempPath("bad.txt");
  {
    std::ofstream file(path);
    file << "# header\n0 1 5\nnot an edge\n";
  }
  auto opened = StreamingEdgeFileSource::Open(path, 4, 30);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
}

TEST_F(StreamingEdgeFileSourceTest, ScanTemporalMetadataReportsTheRange) {
  // The scan is the formerly-inline first pass of Open: timestamp range
  // and universe, with self-loops invisible exactly as above.
  std::string path = TempPath("meta.txt");
  {
    std::ofstream file(path);
    file << "9 9 1\n"  // self-loop: must not own t_min or grow the universe
         << "0 1 10\n0 2 12\n1 2 14\n2 5 20\n0 3 26\n";
  }
  auto meta = ScanTemporalMetadata(path);
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  EXPECT_EQ(meta.value().t_min, 10);
  EXPECT_EQ(meta.value().t_max, 26);
  EXPECT_EQ(meta.value().num_vertices, 5u);  // distinct real ids 0,1,2,3,5

  // The metadata-handed Open trusts but verifies: a universe that
  // undercounts the file is rejected, not a crash inside AddEdge.
  TemporalFileMetadata wrong = meta.value();
  wrong.num_vertices = 2;
  auto opened = StreamingEdgeFileSource::Open(path, 3, 8, wrong);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
}

// --- CoalescingSource --------------------------------------------------

TEST(CoalescingSource, WindowOneIsTheIdentity) {
  // Churn deltas have UNSORTED batches; the identity must preserve them
  // byte for byte, not merely up to canonicalization.
  Rng rng(51);
  Graph initial = ChungLuPowerLaw(100, 5.0, 2.2, 30, rng);
  ChurnOptions options;
  options.num_snapshots = 5;
  options.min_churn = 10;
  options.max_churn = 30;
  SnapshotSequence sequence = MakeChurnSnapshots(initial, options, rng);

  CoalescingSource source(std::make_unique<SequenceSource>(&sequence), 1);
  std::vector<EdgeDelta> streamed = DrainSource(source);
  ExpectSameDeltas(streamed, sequence.deltas());
}

TEST(CoalescingSource, InsertThenDeleteCollapsesInsideTheWindow) {
  Graph initial(4);
  initial.AddEdge(0, 1);
  EdgeDelta first;
  first.insertions = {Edge(2, 3)};  // new edge, deleted next step
  EdgeDelta second;
  second.deletions = {Edge(2, 3), Edge(0, 1)};
  CoalescingSource source(
      std::make_unique<VectorSource>(
          initial, std::vector<EdgeDelta>{first, second}),
      2);
  EdgeDelta merged;
  ASSERT_TRUE(MustNext(source, &merged));
  // (2,3)'s last op is its deletion — a no-op on the pre-window graph,
  // so the blip costs zero cascades; (0,1)'s deletion is real.
  EXPECT_TRUE(merged.insertions.empty());
  EXPECT_EQ(merged.deletions, (std::vector<Edge>{Edge(0, 1), Edge(2, 3)}));
  EXPECT_FALSE(MustNext(source, &merged));
}

TEST(CoalescingSource, DeleteThenReinsertCollapsesToANoOpInsertion) {
  Graph initial(3);
  initial.AddEdge(0, 1);
  EdgeDelta first;
  first.deletions = {Edge(0, 1)};
  EdgeDelta second;
  second.insertions = {Edge(0, 1)};
  CoalescingSource source(
      std::make_unique<VectorSource>(
          initial, std::vector<EdgeDelta>{first, second}),
      2);
  EdgeDelta merged;
  ASSERT_TRUE(MustNext(source, &merged));
  EXPECT_EQ(merged.insertions, (std::vector<Edge>{Edge(0, 1)}));
  EXPECT_TRUE(merged.deletions.empty());
  Graph replay = initial;
  merged.Apply(replay);
  EXPECT_TRUE(replay == initial);
}

TEST(CoalescingSource, ReplayVisitsEveryWindowBoundarySnapshot) {
  Rng rng(61);
  Graph initial = ChungLuPowerLaw(120, 6.0, 2.2, 30, rng);
  ChurnOptions options;
  options.num_snapshots = 10;  // 9 deltas
  options.min_churn = 10;
  options.max_churn = 30;
  SnapshotSequence sequence = MakeChurnSnapshots(initial, options, rng);

  for (size_t window : {2u, 3u, 4u}) {
    CoalescingSource source(std::make_unique<SequenceSource>(&sequence),
                            window);
    Graph replay = source.InitialGraph();
    EdgeDelta merged;
    size_t boundary = 0;
    while (MustNext(source, &merged)) {
      merged.Apply(replay);
      boundary = std::min(boundary + window, sequence.deltas().size());
      EXPECT_TRUE(replay == sequence.Materialize(boundary))
          << "window=" << window << " boundary=" << boundary;
    }
    EXPECT_EQ(boundary, sequence.deltas().size()) << "window=" << window;
  }
}

// Coalesced vs uncoalesced-net replay: the incremental tracker fed
// CoalescingSource output must produce bit-identical anchors to the
// same tracker fed the pure net deltas (DiffGraphs between boundary
// snapshots) — the no-op entries a last-op-wins merge keeps are
// invisible to the maintainer.
TEST(CoalescingSource, FuzzCoalescedReplayMatchesNetDeltaReplay) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Rng rng(700 + seed);
    Graph initial = ChungLuPowerLaw(140, 6.0, 2.2, 35, rng);
    ChurnOptions options;
    options.num_snapshots = 9;
    options.min_churn = 10;
    options.max_churn = 35;
    SnapshotSequence sequence = MakeChurnSnapshots(initial, options, rng);

    for (size_t window : {2u, 3u}) {
      // Net-delta mirror: diff every window-th materialized snapshot.
      std::vector<EdgeDelta> net;
      Graph previous = sequence.initial();
      size_t boundary = 0;
      while (boundary < sequence.deltas().size()) {
        boundary = std::min(boundary + window, sequence.deltas().size());
        Graph next = sequence.Materialize(boundary);
        net.push_back(DiffGraphs(previous, next));
        previous = std::move(next);
      }

      IncAvtTracker coalesced_tracker(3, 4);
      IncAvtTracker net_tracker(3, 4);
      coalesced_tracker.ProcessFirst(sequence.initial());
      net_tracker.ProcessFirst(sequence.initial());
      CoalescingSource source(
          std::make_unique<SequenceSource>(&sequence), window);
      EdgeDelta merged;
      size_t step = 0;
      while (MustNext(source, &merged)) {
        ASSERT_LT(step, net.size());
        AvtSnapshotResult a = coalesced_tracker.ProcessDelta(merged);
        AvtSnapshotResult b = net_tracker.ProcessDelta(net[step]);
        EXPECT_EQ(a.anchors, b.anchors)
            << "seed " << seed << " window " << window << " step " << step;
        EXPECT_EQ(a.num_followers, b.num_followers)
            << "seed " << seed << " window " << window << " step " << step;
        ++step;
      }
      EXPECT_EQ(step, net.size());
    }
  }
}

}  // namespace
}  // namespace avt
