// Differential fuzz: IncAvtTracker vs from-scratch recomputation.
//
// A seeded fuzz loop drives the incremental tracker through ~200 random
// EdgeDelta transitions (mixed inserts/removes, varying k/l/batch) and,
// after every transition, recomputes the ground truth from scratch on
// the materialized snapshot — a fresh core decomposition, a fresh
// K-order + follower oracle, and the exact anchored peel — exactly what
// a StaticAVT re-solve would see. Any drift between the maintained
// incremental state and the from-scratch view (core numbers, |C_k|,
// reported follower counts, anchored-core size) is a bug in the
// maintenance or tracking path, regardless of which anchors the
// heuristic picked.
//
// Every transition is driven through TWO trackers in lockstep: the
// default (delta-maintained DynamicCsr scans) and the csr=kNone
// baseline (dynamic-adjacency scans). After each delta the maintained
// CSR must mirror the dynamic adjacency exactly — same per-vertex
// neighbor sequence, order included — and both trackers must report
// bit-identical anchors: the order-preservation contract of
// graph/dynamic_csr.h, checked under the full churn distribution.
//
// On a mismatch the failing schedule is SHRUNK — whole transitions
// first, then individual edges while the schedule is small — and
// printed, so the minimized repro can be pasted into a regression test.
//
// Scale knob: AVT_FUZZ_TRANSITIONS overrides the per-config transition
// count (the sanitizer tier runs a reduced sweep; see scripts/check.sh).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "anchor/anchored_core.h"
#include "anchor/follower_oracle.h"
#include "core/engine.h"
#include "core/inc_avt.h"
#include "core/run_summary.h"
#include "durability/wal.h"
#include "corelib/decomposition.h"
#include "corelib/korder.h"
#include "gen/models.h"
#include "gen/temporal.h"
#include "graph/delta.h"
#include "graph/delta_source.h"
#include "graph/dynamic_csr.h"
#include "graph/edge_log.h"
#include "graph/io.h"
#include "util/random.h"

namespace avt {
namespace {

struct FuzzConfig {
  uint32_t n;
  double avg_degree;
  uint32_t k;
  uint32_t l;
  uint32_t max_batch;  // per-side churn bound ("b"): 0..max_batch each
  uint64_t seed;
};

size_t TransitionsPerConfig() {
  if (const char* env = std::getenv("AVT_FUZZ_TRANSITIONS")) {
    int value = std::atoi(env);
    if (value > 0) return static_cast<size_t>(value) / 4 + 1;
  }
  return 50;  // 4 configs x 50 = 200 transitions
}

// One random transition against the current graph: remove up to
// max_batch existing edges, insert up to max_batch absent pairs. The
// delta is applied to `g` so the next transition sees the new state.
EdgeDelta RandomDelta(Graph& g, uint32_t max_batch, Rng& rng) {
  EdgeDelta delta;
  const uint64_t removals = rng.Uniform(max_batch + 1);
  if (removals > 0 && g.NumEdges() > 0) {
    std::vector<Edge> edges = g.CollectEdges();
    for (uint64_t r = 0; r < removals && !edges.empty(); ++r) {
      size_t pick = static_cast<size_t>(rng.Uniform(edges.size()));
      delta.deletions.push_back(edges[pick]);
      edges[pick] = edges.back();
      edges.pop_back();
    }
  }
  const uint64_t insertions = rng.Uniform(max_batch + 1);
  for (uint64_t a = 0; a < insertions; ++a) {
    for (int attempt = 0; attempt < 32; ++attempt) {
      VertexId u = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
      VertexId v = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
      if (u == v || g.HasEdge(u, v)) continue;
      // Inserting an edge just removed in this delta would make the
      // transition order-sensitive; keep the batches disjoint.
      bool clashes = false;
      for (const Edge& e : delta.deletions) clashes |= (e == Edge(u, v));
      for (const Edge& e : delta.insertions) clashes |= (e == Edge(u, v));
      if (clashes) continue;
      delta.insertions.push_back(Edge(u, v));
      break;
    }
  }
  delta.Apply(g);
  return delta;
}

std::string FormatSchedule(const std::vector<EdgeDelta>& schedule) {
  std::ostringstream out;
  for (size_t t = 0; t < schedule.size(); ++t) {
    out << "  t" << (t + 1) << ":";
    for (const Edge& e : schedule[t].insertions) {
      out << " +(" << e.u << "," << e.v << ")";
    }
    for (const Edge& e : schedule[t].deletions) {
      out << " -(" << e.u << "," << e.v << ")";
    }
    out << "\n";
  }
  return out.str();
}

// The maintained CSR must equal the dynamic adjacency elementwise —
// same per-vertex neighbor ORDER, not just the same sets.
std::string CompareCsrToAdjacency(const DynamicCsr* csr, const Graph& g) {
  std::ostringstream why;
  if (csr == nullptr) {
    return "maintained tracker exposes no CSR mirror";
  }
  if (csr->NumVertices() != g.NumVertices() ||
      csr->NumEdges() != g.NumEdges()) {
    why << "CSR shape (" << csr->NumVertices() << ", " << csr->NumEdges()
        << ") != graph (" << g.NumVertices() << ", " << g.NumEdges() << ")";
    return why.str();
  }
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    std::span<const VertexId> a = csr->Neighbors(u);
    std::span<const VertexId> b = g.Neighbors(u);
    if (a.size() != b.size()) {
      why << "CSR degree(" << u << ")=" << a.size() << " != " << b.size();
      return why.str();
    }
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[i]) {
        why << "CSR neighbors(" << u << ")[" << i << "]=" << a[i]
            << " != adjacency " << b[i] << " (order drift)";
        return why.str();
      }
    }
  }
  return "";
}

// Replays the schedule through two fresh trackers — maintained-CSR
// scans (default) and dynamic-adjacency scans (csr=kNone) — in
// lockstep, cross-checking every snapshot against from-scratch
// recomputation, the CSR mirror against the adjacency, and the two
// trackers' anchors against each other. Returns "" when all
// transitions agree, else a description of the first mismatch.
std::string CheckSchedule(const Graph& g0,
                          const std::vector<EdgeDelta>& schedule,
                          uint32_t k, uint32_t l) {
  IncAvtTracker tracker(k, l);  // default: IncAvtCsrMode::kMaintained
  IncAvtOptions nocsr_options;
  nocsr_options.csr = IncAvtCsrMode::kNone;
  IncAvtTracker nocsr_tracker(k, l, IncAvtMode::kRestricted, nocsr_options);
  tracker.ProcessFirst(g0);
  nocsr_tracker.ProcessFirst(g0);
  Graph g = g0;
  for (size_t t = 0; t < schedule.size(); ++t) {
    schedule[t].Apply(g);
    AvtSnapshotResult snap = tracker.ProcessDelta(schedule[t]);
    AvtSnapshotResult nocsr_snap = nocsr_tracker.ProcessDelta(schedule[t]);
    std::ostringstream why;

    // Maintained CSR vs dynamic adjacency, and CSR-scan anchors vs
    // adjacency-scan anchors.
    std::string csr_drift =
        CompareCsrToAdjacency(tracker.maintainer().csr(), g);
    if (!csr_drift.empty()) {
      why << "t=" << (t + 1) << ": " << csr_drift;
      return why.str();
    }
    if (snap.anchors != nocsr_snap.anchors) {
      why << "t=" << (t + 1)
          << ": maintained-CSR anchors diverged from csr=none";
      return why.str();
    }

    // Maintained core numbers vs a fresh decomposition.
    CoreDecomposition cores = DecomposeCores(g);
    uint32_t kcore_size = 0;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      if (cores.core[v] >= k) ++kcore_size;
      if (tracker.maintainer().order().CoreOf(v) != cores.core[v]) {
        why << "t=" << (t + 1) << ": maintained core(" << v << ")="
            << tracker.maintainer().order().CoreOf(v)
            << " != from-scratch " << cores.core[v];
        return why.str();
      }
    }
    if (snap.kcore_size != kcore_size) {
      why << "t=" << (t + 1) << ": kcore_size " << snap.kcore_size
          << " != from-scratch " << kcore_size;
      return why.str();
    }

    // Reported followers vs the exact anchored peel of the reported
    // anchors, and vs a fresh K-order + oracle.
    AnchoredCoreResult exact = ComputeAnchoredKCore(g, k, snap.anchors);
    if (snap.num_followers != exact.followers.size()) {
      why << "t=" << (t + 1) << ": num_followers " << snap.num_followers
          << " != exact peel " << exact.followers.size();
      return why.str();
    }
    if (snap.anchored_core_size != exact.members.size()) {
      why << "t=" << (t + 1) << ": anchored_core_size "
          << snap.anchored_core_size << " != exact |C_k(S)| "
          << exact.members.size();
      return why.str();
    }
    KOrder fresh_order;
    fresh_order.Build(g);
    FollowerOracle fresh_oracle(&g, &fresh_order);
    uint32_t fresh_followers = fresh_oracle.CountFollowers(snap.anchors, k);
    if (snap.num_followers != fresh_followers) {
      why << "t=" << (t + 1) << ": num_followers " << snap.num_followers
          << " != fresh-order oracle " << fresh_followers;
      return why.str();
    }
  }
  return "";
}

// Delta-level then edge-level greedy minimization, preserving failure.
std::vector<EdgeDelta> ShrinkSchedule(const Graph& g0,
                                      std::vector<EdgeDelta> schedule,
                                      uint32_t k, uint32_t l) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t i = schedule.size(); i-- > 0;) {
      std::vector<EdgeDelta> trial = schedule;
      trial.erase(trial.begin() + static_cast<ptrdiff_t>(i));
      if (!CheckSchedule(g0, trial, k, l).empty()) {
        schedule = std::move(trial);
        progress = true;
      }
    }
  }
  if (schedule.size() <= 10) {
    progress = true;
    while (progress) {
      progress = false;
      for (size_t i = 0; i < schedule.size(); ++i) {
        for (int side = 0; side < 2; ++side) {
          std::vector<Edge>& edges = side == 0
                                         ? schedule[i].insertions
                                         : schedule[i].deletions;
          for (size_t e = edges.size(); e-- > 0;) {
            std::vector<EdgeDelta> trial = schedule;
            std::vector<Edge>& trial_edges =
                side == 0 ? trial[i].insertions : trial[i].deletions;
            trial_edges.erase(trial_edges.begin() +
                              static_cast<ptrdiff_t>(e));
            if (!CheckSchedule(g0, trial, k, l).empty()) {
              schedule = std::move(trial);
              progress = true;
            }
          }
        }
      }
    }
  }
  return schedule;
}

TEST(DifferentialFuzz, IncAvtMatchesFromScratchRecomputation) {
  const size_t transitions = TransitionsPerConfig();
  const FuzzConfig configs[] = {
      {150, 6.0, 3, 3, 10, 501},
      {200, 7.0, 4, 5, 25, 502},
      {120, 5.0, 3, 2, 40, 503},
      {180, 8.0, 5, 4, 15, 504},
  };
  for (const FuzzConfig& config : configs) {
    Rng rng(config.seed);
    Graph g0 = ChungLuPowerLaw(config.n, config.avg_degree, 2.2,
                               config.n / 4, rng);
    // Generate the whole schedule up front (against a working copy), so
    // a failure can be replayed and shrunk deterministically from g0.
    Graph working = g0;
    std::vector<EdgeDelta> schedule;
    schedule.reserve(transitions);
    for (size_t t = 0; t < transitions; ++t) {
      schedule.push_back(RandomDelta(working, config.max_batch, rng));
    }

    std::string mismatch = CheckSchedule(g0, schedule, config.k, config.l);
    if (!mismatch.empty()) {
      std::vector<EdgeDelta> minimal =
          ShrinkSchedule(g0, schedule, config.k, config.l);
      std::string minimal_mismatch =
          CheckSchedule(g0, minimal, config.k, config.l);
      ADD_FAILURE() << "differential mismatch (seed " << config.seed
                    << ", k=" << config.k << ", l=" << config.l
                    << ", batch<=" << config.max_batch << "):\n  "
                    << mismatch << "\nshrunk to " << minimal.size()
                    << " transition(s): " << minimal_mismatch << "\n"
                    << FormatSchedule(minimal);
      return;  // one minimized repro is enough output
    }
  }
}

// Acceptance matrix for the streaming refactor: a temporal edge-list
// FILE streamed through AvtEngine (StreamingEdgeFileSource, the
// zero-materialization ingestion path, coalesce-window 1 == no
// decorator) must produce bit-identical anchors and follower counts to
// the materialized WindowSnapshots replay of the SAME file, across
// {lazy, eager} x csr {none, maintained} x threads {1, 8}.
TEST(DifferentialFuzz, StreamedFileReplayMatchesMaterializedMatrix) {
  Rng rng(808);
  TemporalGenOptions options;
  options.num_vertices = 250;
  options.num_events = 15'000;
  options.num_days = 120;
  TemporalEventLog log = GenBurstyMessageEvents(options, 0.2, 4.0, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "avt_fuzz_stream_log.txt")
          .string();
  ASSERT_TRUE(SaveTemporalEdgeList(log, path).ok());
  auto loaded = LoadTemporalEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  const size_t T = 6;
  const uint32_t window = 30;
  SnapshotSequence sequence = WindowSnapshots(loaded.value(), T, window);

  const uint32_t k = 3;
  const uint32_t l = 4;
  for (bool lazy : {true, false}) {
    for (IncAvtCsrMode mode :
         {IncAvtCsrMode::kNone, IncAvtCsrMode::kMaintained}) {
      for (uint32_t threads : {1u, 8u}) {
        IncAvtOptions options_inc;
        options_inc.lazy = lazy;
        options_inc.csr = mode;
        options_inc.num_threads = threads;
        auto run_config = [&](std::unique_ptr<DeltaSource> source) {
          AvtEngine engine(
              std::make_unique<IncAvtTracker>(
                  k, l, IncAvtMode::kRestricted, options_inc),
              std::move(source));
          std::vector<std::pair<std::vector<VertexId>, uint32_t>> track;
          engine.SetObserver([&](const AvtSnapshotResult& snap) {
            track.emplace_back(snap.anchors, snap.num_followers);
          });
          EXPECT_TRUE(engine.Drain().ok());
          return track;
        };
        auto materialized =
            run_config(std::make_unique<SequenceSource>(&sequence));
        auto opened = StreamingEdgeFileSource::Open(path, T, window);
        ASSERT_TRUE(opened.ok()) << opened.status().ToString();
        auto streamed = run_config(std::move(opened).value());
        EXPECT_EQ(materialized, streamed)
            << "lazy=" << lazy << " csr=" << static_cast<int>(mode)
            << " threads=" << threads;
      }
    }
  }
  std::remove(path.c_str());
}

// The binary edge log is a third, on-disk representation of the same
// stream: `convert` transcodes the temporal file once, and
// MmapEdgeLogSource replays the frames with zero parsing. The
// acceptance bar is the strongest one this suite has: anchors and
// follower counts BIT-IDENTICAL across all three representations —
// binlog, text streamer, materialized snapshots — for every
// {lazy, eager} x csr {none, maintained} x batch {1, 16} configuration.
TEST(DifferentialFuzz, BinlogReplayMatchesTextAndMaterializedMatrix) {
  Rng rng(909);
  TemporalGenOptions options;
  options.num_vertices = 220;
  options.num_events = 12'000;
  options.num_days = 100;
  TemporalEventLog log = GenBurstyMessageEvents(options, 0.2, 4.0, rng);
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string text_path = (tmp / "avt_fuzz_binlog_src.txt").string();
  const std::string binlog_path = (tmp / "avt_fuzz_binlog.avtb").string();
  ASSERT_TRUE(SaveTemporalEdgeList(log, text_path).ok());
  const size_t T = 6;
  const uint32_t window = 25;
  auto stats = ConvertTemporalToEdgeLog(text_path, T, window, binlog_path);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  auto loaded = LoadTemporalEdgeList(text_path);
  ASSERT_TRUE(loaded.ok());
  SnapshotSequence sequence = WindowSnapshots(loaded.value(), T, window);

  const uint32_t k = 3;
  const uint32_t l = 4;
  for (bool lazy : {true, false}) {
    for (IncAvtCsrMode mode :
         {IncAvtCsrMode::kNone, IncAvtCsrMode::kMaintained}) {
      for (size_t batch : {size_t{1}, size_t{16}}) {
        IncAvtOptions options_inc;
        options_inc.lazy = lazy;
        options_inc.csr = mode;
        options_inc.batch_size = batch;
        auto run_config = [&](std::unique_ptr<DeltaSource> source) {
          AvtEngine engine(
              std::make_unique<IncAvtTracker>(
                  k, l, IncAvtMode::kRestricted, options_inc),
              std::move(source));
          std::vector<std::pair<std::vector<VertexId>, uint32_t>> track;
          engine.SetObserver([&](const AvtSnapshotResult& snap) {
            track.emplace_back(snap.anchors, snap.num_followers);
          });
          EXPECT_TRUE(engine.Drain().ok());
          return track;
        };
        auto materialized =
            run_config(std::make_unique<SequenceSource>(&sequence));
        auto text_source = StreamingEdgeFileSource::Open(text_path, T, window);
        ASSERT_TRUE(text_source.ok()) << text_source.status().ToString();
        auto streamed = run_config(std::move(text_source).value());
        auto bin_source = MmapEdgeLogSource::Open(binlog_path);
        ASSERT_TRUE(bin_source.ok()) << bin_source.status().ToString();
        auto binlogged = run_config(std::move(bin_source).value());
        const std::string config = "lazy=" + std::to_string(lazy) +
                                   " csr=" + std::to_string(int(mode)) +
                                   " batch=" + std::to_string(batch);
        EXPECT_EQ(streamed, materialized) << config;
        EXPECT_EQ(binlogged, streamed) << config;
        EXPECT_EQ(binlogged, materialized) << config;
      }
    }
  }
  std::remove(text_path.c_str());
  std::remove(binlog_path.c_str());
}

// Feeds a fixed schedule of deltas to the engine (no snapshot sequence
// needed — batching is an engine/tracker affair).
class ScheduleSource : public DeltaSource {
 public:
  ScheduleSource(const Graph* g0, const std::vector<EdgeDelta>* schedule)
      : g0_(g0), schedule_(schedule) {}
  const Graph& InitialGraph() const override { return *g0_; }
  StatusOr<bool> NextDelta(EdgeDelta* delta) override {
    if (next_ >= schedule_->size()) return false;
    *delta = (*schedule_)[next_++];
    return true;
  }
  std::string name() const override { return "schedule"; }

 private:
  const Graph* g0_;
  const std::vector<EdgeDelta>* schedule_;
  size_t next_ = 0;
};

// Batched delta transactions (IncAvtOptions::batch_size, honored by
// AvtEngine::Step): the merged transaction must be indistinguishable
// from the minimal net delta between the materialized boundary
// snapshots. Concretely, driving the engine with batch B must be
// BIT-IDENTICAL — anchors, followers, maintained coreness — to a
// mirror tracker fed DiffGraphs(G_boundary_prev, G_boundary) one
// transaction at a time (the DeltaBatcher last-op-wins guarantee:
// redundant merged ops are maintenance no-ops), across {lazy, eager} x
// csr {none, maintained}; the maintained coreness at every boundary
// must also equal a fresh from-scratch decomposition of the
// materialized boundary graph. batch_size 1 must be VERBATIM per-delta
// delivery: bit-identical to a direct ProcessDelta loop with no engine
// in between. (Anchors at a boundary are NOT required to match the
// per-delta replay's anchors there — the heuristic's seed path differs
// by construction; the invariant is equivalence to the net-delta
// transaction, exactly as CoalescingSource pins it source-side.)
TEST(DifferentialFuzz, BatchedReplayMatchesPerDeltaBoundaries) {
  Rng rng(606);
  Graph g0 = ChungLuPowerLaw(180, 6.0, 2.2, 45, rng);
  const size_t transitions = 24;
  Graph working = g0;
  std::vector<EdgeDelta> schedule;
  std::vector<Graph> states;  // states[t]: graph after transition t
  schedule.reserve(transitions);
  for (size_t t = 0; t < transitions; ++t) {
    schedule.push_back(RandomDelta(working, 20, rng));
    states.push_back(working);
  }

  const uint32_t k = 3;
  const uint32_t l = 4;
  struct BatchTrace {
    std::vector<std::vector<VertexId>> anchors;
    std::vector<uint32_t> followers;
    std::vector<std::vector<uint32_t>> coreness;
  };
  auto run = [&](bool lazy, IncAvtCsrMode mode, size_t batch) {
    IncAvtOptions options;
    options.lazy = lazy;
    options.csr = mode;
    options.batch_size = batch;
    auto tracker = std::make_unique<IncAvtTracker>(
        k, l, IncAvtMode::kRestricted, options);
    IncAvtTracker* raw = tracker.get();
    AvtEngine engine(std::move(tracker),
                     std::make_unique<ScheduleSource>(&g0, &schedule));
    BatchTrace trace;
    engine.SetObserver([&](const AvtSnapshotResult& snap) {
      trace.anchors.push_back(snap.anchors);
      trace.followers.push_back(snap.num_followers);
      std::vector<uint32_t> cores(g0.NumVertices());
      for (VertexId v = 0; v < g0.NumVertices(); ++v) {
        cores[v] = raw->maintainer().order().CoreOf(v);
      }
      trace.coreness.push_back(std::move(cores));
    });
    EXPECT_TRUE(engine.Drain().ok());
    return trace;
  };

  for (bool lazy : {true, false}) {
    for (IncAvtCsrMode mode :
         {IncAvtCsrMode::kNone, IncAvtCsrMode::kMaintained}) {
      // Per-delta reference (engine, batch 1) vs a direct ProcessDelta
      // loop: batch 1 must be verbatim passthrough, not a merge of one.
      BatchTrace reference = run(lazy, mode, 1);
      ASSERT_EQ(reference.anchors.size(), transitions + 1);
      {
        IncAvtOptions options;
        options.lazy = lazy;
        options.csr = mode;
        IncAvtTracker direct(k, l, IncAvtMode::kRestricted, options);
        AvtSnapshotResult snap = direct.ProcessFirst(g0);
        for (size_t t = 0;; ++t) {
          EXPECT_EQ(snap.anchors, reference.anchors[t])
              << "lazy=" << lazy << " csr=" << static_cast<int>(mode)
              << " t=" << t;
          EXPECT_EQ(snap.num_followers, reference.followers[t]);
          if (t == transitions) break;
          snap = direct.ProcessDelta(schedule[t]);
        }
      }

      for (size_t batch : {3u, 16u}) {
        BatchTrace batched = run(lazy, mode, batch);
        const size_t expected =
            1 + (transitions + batch - 1) / batch;  // G_0 + ceil(T/B)
        ASSERT_EQ(batched.anchors.size(), expected)
            << "lazy=" << lazy << " csr=" << static_cast<int>(mode)
            << " batch=" << batch;

        // Net-delta mirror: one DiffGraphs transaction per boundary.
        IncAvtOptions mirror_options;
        mirror_options.lazy = lazy;
        mirror_options.csr = mode;
        IncAvtTracker mirror(k, l, IncAvtMode::kRestricted,
                             mirror_options);
        const Graph* prev = &g0;
        AvtSnapshotResult msnap = mirror.ProcessFirst(g0);
        for (size_t i = 0; i < batched.anchors.size(); ++i) {
          const size_t boundary = std::min(i * batch, transitions);
          if (i > 0) {
            const Graph& cur = states[boundary - 1];
            msnap = mirror.ProcessDelta(DiffGraphs(*prev, cur));
            prev = &cur;
          }
          EXPECT_EQ(batched.anchors[i], msnap.anchors)
              << "lazy=" << lazy << " csr=" << static_cast<int>(mode)
              << " batch=" << batch << " boundary=" << boundary;
          EXPECT_EQ(batched.followers[i], msnap.num_followers)
              << "lazy=" << lazy << " csr=" << static_cast<int>(mode)
              << " batch=" << batch << " boundary=" << boundary;
          std::vector<uint32_t> mirror_cores(g0.NumVertices());
          for (VertexId v = 0; v < g0.NumVertices(); ++v) {
            mirror_cores[v] = mirror.maintainer().order().CoreOf(v);
          }
          EXPECT_EQ(batched.coreness[i], mirror_cores)
              << "lazy=" << lazy << " csr=" << static_cast<int>(mode)
              << " batch=" << batch << " boundary=" << boundary;
          // Maintained coreness at the boundary vs a fresh
          // decomposition of the materialized boundary snapshot.
          if (boundary > 0) {
            CoreDecomposition fresh = DecomposeCores(states[boundary - 1]);
            EXPECT_EQ(batched.coreness[i], fresh.core)
                << "batch=" << batch << " boundary=" << boundary;
          }
        }
      }
    }
  }
}

// PR-8 memo-policy matrix: every retention policy (memoize-all /
// top-value-only / LRU under a tight byte budget / none) must produce
// BIT-IDENTICAL anchors and follower counts, lazy and eager, at every
// transition of a random churn schedule. Eviction may only ever cost
// recomputation — a policy that changes a result has broken the
// certified-bound contract (a stale or missing entry must degrade to a
// fresh query, never to a wrong settle). Runs IncAvtMode::kMaintainedFull
// so the memo sees real slot-candidate pressure (kRestricted memoizes
// no slot entries), with gentle per-transition churn so entries survive
// long enough for retention to matter.
TEST(DifferentialFuzz, MemoPolicyMatrixIsBitIdentical) {
  const size_t transitions = 2 * TransitionsPerConfig();
  Rng rng(811);
  Graph g0 = ChungLuPowerLaw(200, 6.0, 2.2, 50, rng);
  Graph working = g0;
  std::vector<EdgeDelta> schedule;
  schedule.reserve(transitions);
  for (size_t t = 0; t < transitions; ++t) {
    schedule.push_back(RandomDelta(working, 4, rng));
  }

  const uint32_t k = 3, l = 4;
  struct PolicyConfig {
    MemoPolicy policy;
    size_t budget;
  };
  const PolicyConfig policies[] = {
      {MemoPolicy::kMemoizeAll, 0},
      {MemoPolicy::kTopValueOnly, 0},
      {MemoPolicy::kLru, 4 * 1024},  // tight: forces real eviction
      {MemoPolicy::kNone, 0},
  };
  auto run = [&](MemoPolicy policy, size_t budget, bool lazy) {
    IncAvtOptions options;
    options.lazy = lazy;
    options.memo_policy = policy;
    options.memo_budget_bytes = budget;
    IncAvtTracker tracker(k, l, IncAvtMode::kMaintainedFull, options);
    std::vector<std::pair<std::vector<VertexId>, uint32_t>> track;
    AvtSnapshotResult snap = tracker.ProcessFirst(g0);
    track.emplace_back(snap.anchors, snap.num_followers);
    for (const EdgeDelta& delta : schedule) {
      snap = tracker.ProcessDelta(delta);
      track.emplace_back(snap.anchors, snap.num_followers);
    }
    return track;
  };

  const auto baseline = run(MemoPolicy::kMemoizeAll, 0, /*lazy=*/true);
  for (const PolicyConfig& config : policies) {
    for (bool lazy : {true, false}) {
      if (config.policy == MemoPolicy::kMemoizeAll && lazy) continue;
      const auto track = run(config.policy, config.budget, lazy);
      ASSERT_EQ(track.size(), baseline.size());
      for (size_t t = 0; t < track.size(); ++t) {
        ASSERT_EQ(track[t], baseline[t])
            << "policy=" << MemoPolicyName(config.policy)
            << " lazy=" << lazy << " t=" << t;
      }
    }
  }
}

TEST(DifferentialFuzz, SurvivesEmptyAndDegenerateDeltas) {
  // Edge cases the random loop rarely hits: empty deltas, a delta whose
  // removals disconnect the k-core, and re-inserting what was removed.
  Rng rng(909);
  Graph g0 = ChungLuPowerLaw(100, 6.0, 2.2, 30, rng);
  std::vector<EdgeDelta> schedule;
  schedule.push_back(EdgeDelta{});  // no-op transition
  Graph working = g0;
  EdgeDelta wipe;
  std::vector<Edge> edges = working.CollectEdges();
  for (size_t i = 0; i < edges.size() && i < 120; ++i) {
    wipe.deletions.push_back(edges[i]);
  }
  wipe.Apply(working);
  schedule.push_back(wipe);
  schedule.push_back(wipe.Inverse());  // restore
  EXPECT_EQ(CheckSchedule(g0, schedule, 3, 3), "");
}

// Randomized crash drill over the durability layer: random workload,
// random tracker config, random checkpoint cadence, random kill point —
// and, when only the initial checkpoint exists, a random torn tail cut
// from the WAL. The recovered + drained run must be bit-identical to
// the uninterrupted reference every time (docs/DURABILITY.md). This is
// the fuzz-shaped companion to tests/durability_test.cc's exhaustive
// kill-point matrix: that suite enumerates, this one explores.
TEST(DifferentialFuzz, KillPointRecoveryIsBitIdentical) {
  struct Final {
    size_t processed;
    std::vector<VertexId> anchors;
    uint64_t candidates;
    uint64_t followers;
    double stability;
    size_t changes;
    bool operator==(const Final&) const = default;
  };
  auto capture = [](const AvtEngine& engine) {
    RunSummary summary = engine.Summary();
    return Final{engine.SnapshotsProcessed(),
                 engine.SnapshotsProcessed() ? engine.last().anchors
                                             : std::vector<VertexId>{},
                 summary.total_candidates,
                 summary.total_followers,
                 summary.anchor_stability,
                 summary.anchor_changes};
  };

  Rng rng(7070);
  const size_t kBatches[] = {1, 3, 16};
  const size_t rounds = 12;
  for (size_t round = 0; round < rounds; ++round) {
    Rng gen_rng(2000 + round);
    Graph g0 = ChungLuPowerLaw(
        80 + static_cast<VertexId>(rng.Uniform(80)), 6.0, 2.2, 30,
        gen_rng);
    const size_t transitions = 5 + rng.Uniform(6);
    Graph working = g0;
    std::vector<EdgeDelta> schedule;
    for (size_t t = 0; t < transitions; ++t) {
      schedule.push_back(RandomDelta(working, 15, gen_rng));
    }

    IncAvtOptions options;
    options.lazy = rng.Uniform(2) == 0;
    options.csr = rng.Uniform(2) == 0 ? IncAvtCsrMode::kNone
                                      : IncAvtCsrMode::kMaintained;
    options.batch_size = kBatches[rng.Uniform(3)];
    const uint32_t k = 3, l = 3;
    auto make_tracker = [&options, k, l]() {
      return std::make_unique<IncAvtTracker>(k, l, IncAvtMode::kRestricted,
                                             options);
    };
    auto describe = [&](size_t kill) {
      std::ostringstream out;
      out << "round=" << round << " lazy=" << options.lazy
          << " csr=" << static_cast<int>(options.csr)
          << " batch=" << options.batch_size << " kill=" << kill;
      return out.str();
    };

    AvtEngine reference(make_tracker(),
                        std::make_unique<ScheduleSource>(&g0, &schedule));
    ASSERT_TRUE(reference.Drain().ok()) << describe(0);
    const Final expected = capture(reference);
    const size_t total_steps = reference.SnapshotsProcessed();

    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("avt_fuzz_recover_" + std::to_string(round)))
            .string();
    std::filesystem::remove_all(dir);
    DurabilityOptions durability;
    durability.dir = dir;
    durability.checkpoint_every = rng.Uniform(3);  // 0 = initial only
    const size_t kill = 1 + rng.Uniform(total_steps);
    {
      AvtEngine victim(make_tracker(),
                       std::make_unique<ScheduleSource>(&g0, &schedule));
      ASSERT_TRUE(victim.EnableDurability(durability).ok())
          << describe(kill);
      for (size_t step = 0; step < kill; ++step) {
        ASSERT_TRUE(victim.Step().value()) << describe(kill);
      }
    }
    // With no cadenced checkpoints claiming records, a torn WAL tail is
    // crash-normal — cut a few bytes to simulate an in-flight write.
    if (durability.checkpoint_every == 0 && rng.Uniform(2) == 0) {
      const std::string wal_path = dir + "/" + DeltaWal::kFileName;
      const auto size = std::filesystem::file_size(wal_path);
      std::filesystem::resize_file(wal_path,
                                   size - std::min<uintmax_t>(size, 1 + rng.Uniform(16)));
    }

    auto recovered = AvtEngine::Recover(
        make_tracker(), std::make_unique<ScheduleSource>(&g0, &schedule),
        EngineOptions{}, durability);
    ASSERT_TRUE(recovered.ok())
        << describe(kill) << ": " << recovered.status().ToString();
    ASSERT_TRUE(recovered.value()->Drain().ok()) << describe(kill);
    EXPECT_EQ(capture(*recovered.value()).processed, expected.processed)
        << describe(kill);
    EXPECT_TRUE(capture(*recovered.value()) == expected) << describe(kill);
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace avt
