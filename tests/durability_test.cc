// Crash-safety tests: WAL/checkpoint framing survives truncation and
// bit flips with a clean Status (never a crash), and AvtEngine::Recover
// reproduces the uninterrupted run BIT-IDENTICALLY at every kill point,
// across tracker families, lazy/eager local search, csr backings, and
// batch widths — the durability layer's whole contract
// (docs/DURABILITY.md).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "anchor/greedy.h"
#include "core/avt.h"
#include "core/engine.h"
#include "core/inc_avt.h"
#include "core/run_summary.h"
#include "durability/checkpoint.h"
#include "durability/wal.h"
#include "gen/churn.h"
#include "gen/models.h"
#include "graph/delta_source.h"
#include "graph/resilient_source.h"
#include "util/random.h"

namespace avt {
namespace {

namespace fs = std::filesystem;

// Fresh scratch directory per use, removed recursively on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("avt_durability_" + tag + "_" +
              std::to_string(reinterpret_cast<uintptr_t>(this))))
                .string();
    fs::remove_all(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string ReadFileBytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.good()) << path;
  return std::string(std::istreambuf_iterator<char>(file),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(file.good()) << path;
}

SnapshotSequence SmallWorkload(uint64_t seed, size_t T = 6,
                               VertexId n = 120) {
  Rng rng(seed);
  Graph initial = ChungLuPowerLaw(n, 5.0, 2.2, 30, rng);
  ChurnOptions options;
  options.num_snapshots = T;
  options.min_churn = 8;
  options.max_churn = 20;
  return MakeChurnSnapshots(initial, options, rng);
}

EdgeDelta MakeDelta(std::vector<Edge> insertions,
                    std::vector<Edge> deletions = {}) {
  EdgeDelta delta;
  delta.insertions = std::move(insertions);
  delta.deletions = std::move(deletions);
  return delta;
}

// A source whose every pull fails transiently (retry-budget tests).
class AlwaysFailingSource : public DeltaSource {
 public:
  AlwaysFailingSource() : initial_(4) {}
  const Graph& InitialGraph() const override { return initial_; }
  StatusOr<bool> NextDelta(EdgeDelta*) override {
    return Status::IoError("backing store unavailable");
  }
  std::string name() const override { return "always-failing"; }

 private:
  Graph initial_;
};

// The fields the recovery invariant promises are bit-identical; wall
// clock and retry counters are transport, not result, and stay out.
struct FinalState {
  size_t processed = 0;
  VertexId vertices = 0;
  std::vector<VertexId> anchors;
  uint64_t candidates = 0;
  uint64_t followers = 0;
  double stability = 0;
  size_t changes = 0;

  bool operator==(const FinalState& other) const {
    return processed == other.processed && vertices == other.vertices &&
           anchors == other.anchors && candidates == other.candidates &&
           followers == other.followers && stability == other.stability &&
           changes == other.changes;
  }
};

std::ostream& operator<<(std::ostream& os, const FinalState& s) {
  os << "processed=" << s.processed << " vertices=" << s.vertices
     << " candidates=" << s.candidates << " followers=" << s.followers
     << " stability=" << s.stability << " changes=" << s.changes
     << " anchors=[";
  for (VertexId a : s.anchors) os << a << " ";
  return os << "]";
}

FinalState Capture(const AvtEngine& engine) {
  FinalState state;
  state.processed = engine.SnapshotsProcessed();
  state.vertices = engine.NumVertices();
  if (state.processed > 0) state.anchors = engine.last().anchors;
  RunSummary summary = engine.Summary();
  state.candidates = summary.total_candidates;
  state.followers = summary.total_followers;
  state.stability = summary.anchor_stability;
  state.changes = summary.anchor_changes;
  return state;
}

// One tracker configuration of the recovery matrix.
struct TrackerConfig {
  std::string label;
  bool is_static = false;  // StaticAvtTracker (blob-checkpoint path)
  bool lazy = true;
  IncAvtCsrMode csr = IncAvtCsrMode::kMaintained;
  size_t batch = 1;
};

std::unique_ptr<AvtTracker> BuildTracker(const TrackerConfig& config,
                                         uint32_t k, uint32_t l) {
  if (config.is_static) {
    return std::make_unique<StaticAvtTracker>(
        std::make_unique<GreedySolver>(GreedyOptions{}), k, l);
  }
  IncAvtOptions options;
  options.lazy = config.lazy;
  options.csr = config.csr;
  options.batch_size = config.batch;
  return std::make_unique<IncAvtTracker>(k, l, IncAvtMode::kRestricted,
                                         options);
}

std::vector<TrackerConfig> RecoveryMatrix() {
  // {lazy, eager} x csr {none, maintained} x batch {1, 3, 16}, plus the
  // static (blob-checkpointing) family.
  std::vector<TrackerConfig> matrix;
  for (bool lazy : {true, false}) {
    for (IncAvtCsrMode csr :
         {IncAvtCsrMode::kNone, IncAvtCsrMode::kMaintained}) {
      for (size_t batch : {size_t{1}, size_t{3}, size_t{16}}) {
        TrackerConfig config;
        config.label = std::string("incavt/") + (lazy ? "lazy" : "eager") +
                       (csr == IncAvtCsrMode::kNone ? "/csr-none"
                                                    : "/csr-maintained") +
                       "/batch" + std::to_string(batch);
        config.lazy = lazy;
        config.csr = csr;
        config.batch = batch;
        matrix.push_back(config);
      }
    }
  }
  TrackerConfig greedy;
  greedy.label = "static-greedy";
  greedy.is_static = true;
  matrix.push_back(greedy);
  return matrix;
}

// --- DeltaWal ----------------------------------------------------------

TEST(DeltaWal, RoundTripsRecords) {
  TempDir dir("wal_roundtrip");
  fs::create_directories(dir.path());
  const std::string path = dir.path() + "/" + DeltaWal::kFileName;

  std::vector<WalRecord> written;
  {
    auto wal = DeltaWal::Create(path, FsyncPolicy::kEveryRecord);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    for (uint64_t seq = 1; seq <= 3; ++seq) {
      WalRecord record;
      record.seq = seq;
      record.source_pulls = seq * 2;
      record.delta = MakeDelta({{0, 1}, {2, 3}}, {{1, 2}});
      ASSERT_TRUE(wal.value()->Append(record).ok());
      written.push_back(record);
    }
  }

  auto read = DeltaWal::ReadAll(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_FALSE(read.value().torn_tail);
  ASSERT_EQ(read.value().records.size(), written.size());
  for (size_t i = 0; i < written.size(); ++i) {
    EXPECT_EQ(read.value().records[i].seq, written[i].seq);
    EXPECT_EQ(read.value().records[i].source_pulls,
              written[i].source_pulls);
    EXPECT_EQ(read.value().records[i].delta.insertions,
              written[i].delta.insertions);
    EXPECT_EQ(read.value().records[i].delta.deletions,
              written[i].delta.deletions);
  }
  EXPECT_EQ(read.value().valid_bytes, fs::file_size(path));
}

TEST(DeltaWal, CreateRefusesToClobber) {
  TempDir dir("wal_clobber");
  fs::create_directories(dir.path());
  const std::string path = dir.path() + "/" + DeltaWal::kFileName;
  ASSERT_TRUE(DeltaWal::Create(path, FsyncPolicy::kNever).ok());
  auto second = DeltaWal::Create(path, FsyncPolicy::kNever);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kInvalidArgument);
}

TEST(DeltaWal, ReadMissingFileIsNotFound) {
  auto read = DeltaWal::ReadAll("/nonexistent/dir/wal.log");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(DeltaWal, TruncationAtEveryByteIsTornTailNeverCrash) {
  // Truncation is the crash-normal failure: every prefix of a valid WAL
  // must read back as the longest intact record prefix, flagged
  // torn_tail when bytes were dropped mid-record.
  TempDir dir("wal_trunc");
  fs::create_directories(dir.path());
  const std::string path = dir.path() + "/" + DeltaWal::kFileName;
  {
    auto wal = DeltaWal::Create(path, FsyncPolicy::kNever);
    ASSERT_TRUE(wal.ok());
    for (uint64_t seq = 1; seq <= 3; ++seq) {
      WalRecord record;
      record.seq = seq;
      record.source_pulls = 1;
      record.delta = MakeDelta({{static_cast<VertexId>(seq), 5}});
      ASSERT_TRUE(wal.value()->Append(record).ok());
    }
    ASSERT_TRUE(wal.value()->Sync().ok());
  }
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 8u);

  const std::string trunc_path = dir.path() + "/trunc.log";
  size_t full_prefixes = 0;
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteFileBytes(trunc_path, bytes.substr(0, len));
    auto read = DeltaWal::ReadAll(trunc_path);
    ASSERT_TRUE(read.ok()) << "len=" << len << ": "
                           << read.status().ToString();
    EXPECT_LE(read.value().valid_bytes, len) << "len=" << len;
    EXPECT_LT(read.value().records.size(), 3u) << "len=" << len;
    // Records that did survive are an exact prefix.
    for (size_t i = 0; i < read.value().records.size(); ++i) {
      EXPECT_EQ(read.value().records[i].seq, i + 1) << "len=" << len;
    }
    if (read.value().valid_bytes == len && len > 8) ++full_prefixes;
  }
  // Sanity: the loop saw real record boundaries, not just failures.
  EXPECT_GE(full_prefixes, 2u);
}

TEST(DeltaWal, BitFlipAtEveryByteIsCorruptionOrShorterPrefix) {
  // A flipped byte is NOT crash-normal: either the CRC/seq/magic checks
  // reject the file (kCorruption), or the flip landed in a length field
  // and the reader sees a shorter torn prefix. It must never produce
  // all records as if nothing happened, and never crash.
  TempDir dir("wal_flip");
  fs::create_directories(dir.path());
  const std::string path = dir.path() + "/" + DeltaWal::kFileName;
  {
    auto wal = DeltaWal::Create(path, FsyncPolicy::kNever);
    ASSERT_TRUE(wal.ok());
    for (uint64_t seq = 1; seq <= 3; ++seq) {
      WalRecord record;
      record.seq = seq;
      record.source_pulls = 1;
      record.delta = MakeDelta({{static_cast<VertexId>(seq), 9}});
      ASSERT_TRUE(wal.value()->Append(record).ok());
    }
    ASSERT_TRUE(wal.value()->Sync().ok());
  }
  const std::string bytes = ReadFileBytes(path);
  const std::string flip_path = dir.path() + "/flip.log";
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string damaged = bytes;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x01);
    WriteFileBytes(flip_path, damaged);
    auto read = DeltaWal::ReadAll(flip_path);
    if (read.ok()) {
      EXPECT_LT(read.value().records.size(), 3u) << "pos=" << pos;
    } else {
      EXPECT_EQ(read.status().code(), StatusCode::kCorruption)
          << "pos=" << pos << ": " << read.status().ToString();
    }
  }
}

// --- Checkpoint --------------------------------------------------------

CheckpointData SampleCheckpoint() {
  CheckpointData data;
  data.fingerprint = 0xFEEDFACE12345678ull;
  data.step = 4;
  data.wal_records = 3;
  data.source_pulls = 5;
  data.num_vertices = 99;
  data.total_millis = 1.5;
  data.max_millis = 0.75;
  data.total_candidates = 42;
  data.total_followers = 17;
  data.stability_sum = 2.25;
  data.anchor_changes = 2;
  data.previous_anchors = {3, 1, 4};
  data.has_tracker_state = true;
  data.tracker_state = "opaque-blob\x00\x01\x02";
  return data;
}

TEST(Checkpoint, RoundTripsAllFields) {
  TempDir dir("ckpt_roundtrip");
  fs::create_directories(dir.path());
  const CheckpointData data = SampleCheckpoint();
  ASSERT_TRUE(WriteCheckpoint(dir.path(), data, /*fsync=*/false).ok());

  auto listed = ListCheckpoints(dir.path());
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed.value().size(), 1u);
  EXPECT_EQ(listed.value()[0].step, data.step);

  auto read = ReadCheckpoint(listed.value()[0].path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  const CheckpointData& r = read.value();
  EXPECT_EQ(r.fingerprint, data.fingerprint);
  EXPECT_EQ(r.step, data.step);
  EXPECT_EQ(r.wal_records, data.wal_records);
  EXPECT_EQ(r.source_pulls, data.source_pulls);
  EXPECT_EQ(r.num_vertices, data.num_vertices);
  EXPECT_EQ(r.total_candidates, data.total_candidates);
  EXPECT_EQ(r.total_followers, data.total_followers);
  EXPECT_EQ(r.stability_sum, data.stability_sum);
  EXPECT_EQ(r.anchor_changes, data.anchor_changes);
  EXPECT_EQ(r.previous_anchors, data.previous_anchors);
  EXPECT_EQ(r.has_tracker_state, data.has_tracker_state);
  EXPECT_EQ(r.tracker_state, data.tracker_state);
}

TEST(Checkpoint, LoadLatestPicksNewestValidAndFallsBack) {
  TempDir dir("ckpt_latest");
  fs::create_directories(dir.path());
  CheckpointData old_data = SampleCheckpoint();
  old_data.step = 2;
  old_data.wal_records = 1;
  CheckpointData new_data = SampleCheckpoint();
  new_data.step = 6;
  new_data.wal_records = 5;
  ASSERT_TRUE(WriteCheckpoint(dir.path(), old_data, false).ok());
  ASSERT_TRUE(WriteCheckpoint(dir.path(), new_data, false).ok());

  auto latest = LoadLatestValidCheckpoint(dir.path());
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value().step, 6u);

  // Damage the newest: loading falls back to the older intact one — an
  // atomically-renamed torn checkpoint must never mask its predecessor.
  auto listed = ListCheckpoints(dir.path());
  ASSERT_TRUE(listed.ok());
  const std::string newest_path = listed.value().back().path;
  std::string bytes = ReadFileBytes(newest_path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  WriteFileBytes(newest_path, bytes);

  latest = LoadLatestValidCheckpoint(dir.path());
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest.value().step, 2u);
}

TEST(Checkpoint, EmptyDirIsNotFound) {
  TempDir dir("ckpt_empty");
  fs::create_directories(dir.path());
  auto latest = LoadLatestValidCheckpoint(dir.path());
  ASSERT_FALSE(latest.ok());
  EXPECT_EQ(latest.status().code(), StatusCode::kNotFound);
}

TEST(Checkpoint, EveryTruncationAndBitFlipIsCorruption) {
  // Checkpoints are written atomically (tmp + rename), so unlike the
  // WAL there is no torn-tail grace: ANY damage means the bytes are
  // not what was renamed into place.
  TempDir dir("ckpt_damage");
  fs::create_directories(dir.path());
  ASSERT_TRUE(WriteCheckpoint(dir.path(), SampleCheckpoint(), false).ok());
  auto listed = ListCheckpoints(dir.path());
  ASSERT_TRUE(listed.ok());
  const std::string path = listed.value()[0].path;
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 16u);

  const std::string damaged_path = dir.path() + "/damaged.avtc";
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteFileBytes(damaged_path, bytes.substr(0, len));
    auto read = ReadCheckpoint(damaged_path);
    ASSERT_FALSE(read.ok()) << "truncation len=" << len;
    EXPECT_EQ(read.status().code(), StatusCode::kCorruption)
        << "truncation len=" << len;
  }
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string damaged = bytes;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x01);
    WriteFileBytes(damaged_path, damaged);
    auto read = ReadCheckpoint(damaged_path);
    ASSERT_FALSE(read.ok()) << "flip pos=" << pos;
    EXPECT_EQ(read.status().code(), StatusCode::kCorruption)
        << "flip pos=" << pos;
  }
}

// --- Graph::FromAdjacency ----------------------------------------------

TEST(FromAdjacency, RestoresNeighborOrderVerbatim) {
  // Adjacency ORDER is load-bearing (solver tie-breaks read it), so the
  // restore must preserve it exactly — including orders AddEdge would
  // never produce.
  std::vector<std::vector<VertexId>> adjacency = {
      {2, 1},  // vertex 0: neighbor 2 before neighbor 1
      {0, 2},
      {1, 0},
  };
  auto graph = Graph::FromAdjacency(adjacency);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph.value().NumVertices(), 3u);
  EXPECT_EQ(graph.value().NumEdges(), 3u);
  for (VertexId u = 0; u < 3; ++u) {
    auto span = graph.value().Neighbors(u);
    std::vector<VertexId> got(span.begin(), span.end());
    EXPECT_EQ(got, adjacency[u]) << "vertex " << u;
  }
}

TEST(FromAdjacency, RejectsDamagedShapes) {
  auto out_of_range = Graph::FromAdjacency({{5}, {0}});
  ASSERT_FALSE(out_of_range.ok());
  EXPECT_EQ(out_of_range.status().code(), StatusCode::kCorruption);

  auto self_loop = Graph::FromAdjacency({{0}});
  ASSERT_FALSE(self_loop.ok());
  EXPECT_EQ(self_loop.status().code(), StatusCode::kCorruption);

  auto asymmetric = Graph::FromAdjacency({{1}, {}});
  ASSERT_FALSE(asymmetric.ok());
  EXPECT_EQ(asymmetric.status().code(), StatusCode::kCorruption);

  auto duplicated = Graph::FromAdjacency({{1, 1}, {0, 0}});
  ASSERT_FALSE(duplicated.ok());
  EXPECT_EQ(duplicated.status().code(), StatusCode::kCorruption);
}

// --- Tracker checkpoint state ------------------------------------------

TEST(TrackerState, StaticTrackerBlobRoundTrips) {
  SnapshotSequence sequence = SmallWorkload(21, 4);
  StaticAvtTracker original(
      std::make_unique<GreedySolver>(GreedyOptions{}), 3, 3);
  original.ProcessFirst(sequence.initial());
  original.ProcessDelta(sequence.deltas()[0]);

  std::string blob;
  ASSERT_TRUE(original.SaveCheckpointState(&blob));

  StaticAvtTracker restored(
      std::make_unique<GreedySolver>(GreedyOptions{}), 3, 3);
  ASSERT_TRUE(restored.RestoreCheckpointState(blob).ok());

  // Both continue from the same state: identical results from here on.
  for (size_t i = 1; i < sequence.deltas().size(); ++i) {
    AvtSnapshotResult a = original.ProcessDelta(sequence.deltas()[i]);
    AvtSnapshotResult b = restored.ProcessDelta(sequence.deltas()[i]);
    EXPECT_EQ(a.anchors, b.anchors) << "delta " << i;
    EXPECT_EQ(a.num_followers, b.num_followers) << "delta " << i;
    EXPECT_EQ(a.anchored_core_size, b.anchored_core_size) << "delta " << i;
    EXPECT_EQ(a.t, b.t) << "delta " << i;
  }
}

TEST(TrackerState, StaticTrackerRejectsDamagedBlobs) {
  SnapshotSequence sequence = SmallWorkload(22, 3, 40);
  StaticAvtTracker tracker(
      std::make_unique<GreedySolver>(GreedyOptions{}), 2, 2);
  tracker.ProcessFirst(sequence.initial());
  std::string blob;
  ASSERT_TRUE(tracker.SaveCheckpointState(&blob));

  // Every truncation must be flagged — the decoder is bounds-checked
  // end to end, so a short blob can never crash or half-apply.
  for (size_t len = 0; len < blob.size(); ++len) {
    StaticAvtTracker victim(
        std::make_unique<GreedySolver>(GreedyOptions{}), 2, 2);
    Status status = victim.RestoreCheckpointState(blob.substr(0, len));
    ASSERT_FALSE(status.ok()) << "len=" << len;
    EXPECT_EQ(status.code(), StatusCode::kCorruption) << "len=" << len;
  }
  // Bit flips either decode to a rejected shape or (flips in the
  // counters) decode cleanly; they must never crash.
  for (size_t pos = 0; pos < blob.size(); ++pos) {
    std::string damaged = blob;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x01);
    StaticAvtTracker victim(
        std::make_unique<GreedySolver>(GreedyOptions{}), 2, 2);
    Status status = victim.RestoreCheckpointState(damaged);
    if (!status.ok()) {
      EXPECT_EQ(status.code(), StatusCode::kCorruption) << "pos=" << pos;
    }
  }
}

TEST(TrackerState, IncrementalTrackerDeclinesBlobs) {
  // IncAVT's memo is history-dependent; it must decline blob
  // checkpoints so recovery takes the full-replay path.
  IncAvtTracker tracker(3, 3);
  std::string blob;
  EXPECT_FALSE(tracker.SaveCheckpointState(&blob));
  Status status = tracker.RestoreCheckpointState("anything");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnimplemented);
}

// --- Resilient sources -------------------------------------------------

TEST(ResilientSource, RetryStackIsBitIdenticalToCleanRun) {
  SnapshotSequence sequence = SmallWorkload(31);

  AvtEngine clean(MakeTracker(AvtAlgorithm::kIncAvt, 3, 3),
                  std::make_unique<SequenceSource>(&sequence));
  ASSERT_TRUE(clean.Drain().ok());

  FaultInjectionOptions fault;
  fault.seed = 77;
  fault.transient_rate = 0.2;
  RetryOptions retry;
  retry.max_retries = 16;
  retry.initial_backoff_millis = 0.01;  // keep the test fast
  retry.max_backoff_millis = 0.1;
  auto stacked = std::make_unique<RetryingSource>(
      std::make_unique<FaultInjectingSource>(
          std::make_unique<SequenceSource>(&sequence), fault),
      retry);
  AvtEngine faulty(MakeTracker(AvtAlgorithm::kIncAvt, 3, 3),
                   std::move(stacked));
  ASSERT_TRUE(faulty.Drain().ok());

  EXPECT_EQ(Capture(faulty), Capture(clean));
  // The absorbed faults are visible in the summary (transport counters,
  // excluded from the bit-identity comparison above).
  RunSummary summary = faulty.Summary();
  EXPECT_GT(summary.source_transient_errors, 0u);
  EXPECT_GE(summary.source_retries, summary.source_transient_errors);
}

TEST(ResilientSource, InjectedCorruptionPropagatesThroughRetries) {
  SnapshotSequence sequence = SmallWorkload(32, 5);
  FaultInjectionOptions fault;
  fault.corrupt_after = 2;
  auto stacked = std::make_unique<RetryingSource>(
      std::make_unique<FaultInjectingSource>(
          std::make_unique<SequenceSource>(&sequence), fault));
  AvtEngine engine(MakeTracker(AvtAlgorithm::kIncAvt, 3, 3),
                   std::move(stacked));
  Status status = engine.Drain();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  // The corruption is sticky: stepping again reports it again.
  StatusOr<bool> again = engine.Step();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kCorruption);
}

TEST(ResilientSource, RetryBudgetExhaustionPropagatesIoError) {
  RetryOptions retry;
  retry.max_retries = 3;
  retry.initial_backoff_millis = 0.01;
  retry.max_backoff_millis = 0.05;
  RetryingSource source(std::make_unique<AlwaysFailingSource>(), retry);
  EdgeDelta delta;
  StatusOr<bool> result = source.NextDelta(&delta);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  DeltaSource::Stats stats = source.SourceStats();
  EXPECT_EQ(stats.retries, 3u);
  EXPECT_GE(stats.transient_errors, 1u);
}

// --- Recovery: the bit-identity matrix ---------------------------------

TEST(Recovery, BitIdenticalAtEveryKillPointAcrossConfigs) {
  const uint32_t k = 3, l = 3;
  SnapshotSequence sequence = SmallWorkload(41);

  for (const TrackerConfig& config : RecoveryMatrix()) {
    // Uninterrupted reference.
    AvtEngine reference(BuildTracker(config, k, l),
                        std::make_unique<SequenceSource>(&sequence));
    ASSERT_TRUE(reference.Drain().ok()) << config.label;
    const FinalState expected = Capture(reference);
    const size_t total_steps = reference.SnapshotsProcessed();
    ASSERT_GE(total_steps, 2u) << config.label;

    for (size_t kill = 1; kill <= total_steps; ++kill) {
      TempDir dir("kill");
      DurabilityOptions durability;
      durability.dir = dir.path();
      durability.checkpoint_every = 2;
      durability.config_extra = "k=3;l=3";

      {
        AvtEngine victim(BuildTracker(config, k, l),
                         std::make_unique<SequenceSource>(&sequence));
        ASSERT_TRUE(victim.EnableDurability(durability).ok())
            << config.label;
        for (size_t step = 0; step < kill; ++step) {
          StatusOr<bool> stepped = victim.Step();
          ASSERT_TRUE(stepped.ok()) << config.label << " kill=" << kill;
          ASSERT_TRUE(stepped.value()) << config.label << " kill=" << kill;
        }
      }  // killed: the engine is dropped mid-run

      auto recovered = AvtEngine::Recover(
          BuildTracker(config, k, l),
          std::make_unique<SequenceSource>(&sequence), EngineOptions{},
          durability);
      ASSERT_TRUE(recovered.ok())
          << config.label << " kill=" << kill << ": "
          << recovered.status().ToString();
      ASSERT_TRUE(recovered.value()->Drain().ok())
          << config.label << " kill=" << kill;
      EXPECT_EQ(Capture(*recovered.value()), expected)
          << config.label << " kill=" << kill;
    }
  }
}

TEST(Recovery, SurvivesKillDuringRecoveredRunToo) {
  // Crash, recover, crash again mid-resume, recover again: the final
  // state must still be bit-identical (recovery is idempotent).
  const TrackerConfig config{/*label=*/"incavt/default", false, true,
                             IncAvtCsrMode::kMaintained, 1};
  SnapshotSequence sequence = SmallWorkload(42);

  AvtEngine reference(BuildTracker(config, 3, 3),
                      std::make_unique<SequenceSource>(&sequence));
  ASSERT_TRUE(reference.Drain().ok());
  const FinalState expected = Capture(reference);

  TempDir dir("double_kill");
  DurabilityOptions durability;
  durability.dir = dir.path();
  durability.checkpoint_every = 1;

  {
    AvtEngine first(BuildTracker(config, 3, 3),
                    std::make_unique<SequenceSource>(&sequence));
    ASSERT_TRUE(first.EnableDurability(durability).ok());
    for (int i = 0; i < 2; ++i) ASSERT_TRUE(first.Step().value());
  }
  {
    auto second = AvtEngine::Recover(
        BuildTracker(config, 3, 3),
        std::make_unique<SequenceSource>(&sequence), EngineOptions{},
        durability);
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    ASSERT_TRUE(second.value()->Step().value());  // one more, then die
  }
  auto third = AvtEngine::Recover(
      BuildTracker(config, 3, 3),
      std::make_unique<SequenceSource>(&sequence), EngineOptions{},
      durability);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  ASSERT_TRUE(third.value()->Drain().ok());
  EXPECT_EQ(Capture(*third.value()), expected);
}

TEST(Recovery, WalTornTailAtEveryByteStillBitIdentical) {
  // With only the initial checkpoint (claiming zero records), ANY
  // truncation of the WAL is crash-normal: the intact prefix replays
  // and the source re-supplies the lost suffix — final state identical.
  const TrackerConfig config{/*label=*/"incavt/batch3", false, true,
                             IncAvtCsrMode::kMaintained, 3};
  SnapshotSequence sequence = SmallWorkload(43, 5, 80);

  AvtEngine reference(BuildTracker(config, 3, 3),
                      std::make_unique<SequenceSource>(&sequence));
  ASSERT_TRUE(reference.Drain().ok());
  const FinalState expected = Capture(reference);

  TempDir source_dir("torn_src");
  DurabilityOptions durability;
  durability.dir = source_dir.path();
  durability.checkpoint_every = 0;  // initial checkpoint only
  {
    AvtEngine full(BuildTracker(config, 3, 3),
                   std::make_unique<SequenceSource>(&sequence));
    ASSERT_TRUE(full.EnableDurability(durability).ok());
    ASSERT_TRUE(full.Drain().ok());
  }
  const std::string wal_bytes =
      ReadFileBytes(source_dir.path() + "/" + DeltaWal::kFileName);
  auto checkpoints = ListCheckpoints(source_dir.path());
  ASSERT_TRUE(checkpoints.ok());
  ASSERT_EQ(checkpoints.value().size(), 1u);
  const std::string checkpoint_bytes =
      ReadFileBytes(checkpoints.value()[0].path);
  const std::string checkpoint_name =
      fs::path(checkpoints.value()[0].path).filename().string();

  for (size_t len = 0; len < wal_bytes.size(); ++len) {
    TempDir dir("torn");
    fs::create_directories(dir.path());
    WriteFileBytes(dir.path() + "/" + checkpoint_name, checkpoint_bytes);
    WriteFileBytes(dir.path() + "/" + DeltaWal::kFileName,
                   wal_bytes.substr(0, len));
    DurabilityOptions resumed = durability;
    resumed.dir = dir.path();
    auto recovered = AvtEngine::Recover(
        BuildTracker(config, 3, 3),
        std::make_unique<SequenceSource>(&sequence), EngineOptions{},
        resumed);
    ASSERT_TRUE(recovered.ok())
        << "len=" << len << ": " << recovered.status().ToString();
    ASSERT_TRUE(recovered.value()->Drain().ok()) << "len=" << len;
    EXPECT_EQ(Capture(*recovered.value()), expected) << "len=" << len;
  }
}

TEST(Recovery, WalBitFlipsSurfaceAsStatusOrIdenticalNeverCrash) {
  // A flipped WAL byte either (a) trips CRC/seq validation →
  // kCorruption from Recover, or (b) lands in a length field, shortens
  // the intact prefix, and the re-supplied source makes the final state
  // identical anyway. Both are acceptable; crashing or silently
  // diverging is not.
  const TrackerConfig config{/*label=*/"incavt/default", false, true,
                             IncAvtCsrMode::kMaintained, 1};
  SnapshotSequence sequence = SmallWorkload(44, 4, 60);

  AvtEngine reference(BuildTracker(config, 3, 3),
                      std::make_unique<SequenceSource>(&sequence));
  ASSERT_TRUE(reference.Drain().ok());
  const FinalState expected = Capture(reference);

  TempDir source_dir("flip_src");
  DurabilityOptions durability;
  durability.dir = source_dir.path();
  durability.checkpoint_every = 0;
  {
    AvtEngine full(BuildTracker(config, 3, 3),
                   std::make_unique<SequenceSource>(&sequence));
    ASSERT_TRUE(full.EnableDurability(durability).ok());
    ASSERT_TRUE(full.Drain().ok());
  }
  const std::string wal_bytes =
      ReadFileBytes(source_dir.path() + "/" + DeltaWal::kFileName);
  auto checkpoints = ListCheckpoints(source_dir.path());
  ASSERT_TRUE(checkpoints.ok());
  const std::string checkpoint_bytes =
      ReadFileBytes(checkpoints.value()[0].path);
  const std::string checkpoint_name =
      fs::path(checkpoints.value()[0].path).filename().string();

  size_t corruptions = 0;
  for (size_t pos = 0; pos < wal_bytes.size(); ++pos) {
    std::string damaged = wal_bytes;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x01);
    TempDir dir("flip");
    fs::create_directories(dir.path());
    WriteFileBytes(dir.path() + "/" + checkpoint_name, checkpoint_bytes);
    WriteFileBytes(dir.path() + "/" + DeltaWal::kFileName, damaged);
    DurabilityOptions resumed = durability;
    resumed.dir = dir.path();
    auto recovered = AvtEngine::Recover(
        BuildTracker(config, 3, 3),
        std::make_unique<SequenceSource>(&sequence), EngineOptions{},
        resumed);
    if (!recovered.ok()) {
      EXPECT_EQ(recovered.status().code(), StatusCode::kCorruption)
          << "pos=" << pos << ": " << recovered.status().ToString();
      ++corruptions;
      continue;
    }
    ASSERT_TRUE(recovered.value()->Drain().ok()) << "pos=" << pos;
    EXPECT_EQ(Capture(*recovered.value()), expected) << "pos=" << pos;
  }
  EXPECT_GT(corruptions, 0u);  // the CRC actually fired somewhere
}

TEST(Recovery, TruncationBelowCheckpointClaimIsCorruption) {
  // A cadenced checkpoint claims N committed records; a WAL truncated
  // below that claim is NOT crash-normal (the checkpoint was written
  // after those records were flushed) — it must refuse, not replay a
  // shorter history.
  const TrackerConfig config{/*label=*/"incavt/default", false, true,
                             IncAvtCsrMode::kMaintained, 1};
  SnapshotSequence sequence = SmallWorkload(45, 5, 60);

  TempDir dir("claim");
  DurabilityOptions durability;
  durability.dir = dir.path();
  durability.checkpoint_every = 2;
  {
    AvtEngine full(BuildTracker(config, 3, 3),
                   std::make_unique<SequenceSource>(&sequence));
    ASSERT_TRUE(full.EnableDurability(durability).ok());
    ASSERT_TRUE(full.Drain().ok());
  }
  // Truncate the WAL to just its magic: zero records survive, but the
  // newest checkpoint claims at least two.
  const std::string wal_path = dir.path() + "/" + DeltaWal::kFileName;
  const std::string bytes = ReadFileBytes(wal_path);
  WriteFileBytes(wal_path, bytes.substr(0, 8));

  auto recovered = AvtEngine::Recover(
      BuildTracker(config, 3, 3),
      std::make_unique<SequenceSource>(&sequence), EngineOptions{},
      durability);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kCorruption);
}

TEST(Recovery, RejectsFingerprintMismatch) {
  SnapshotSequence sequence = SmallWorkload(46, 4, 60);
  TempDir dir("fingerprint");
  DurabilityOptions durability;
  durability.dir = dir.path();
  durability.config_extra = "k=3;l=3";
  {
    AvtEngine engine(MakeTracker(AvtAlgorithm::kIncAvt, 3, 3),
                     std::make_unique<SequenceSource>(&sequence));
    ASSERT_TRUE(engine.EnableDurability(durability).ok());
    ASSERT_TRUE(engine.Drain().ok());
  }

  // Different caller config (the CLI folds k/l in here).
  DurabilityOptions wrong_extra = durability;
  wrong_extra.config_extra = "k=4;l=3";
  auto mismatched = AvtEngine::Recover(
      MakeTracker(AvtAlgorithm::kIncAvt, 4, 3),
      std::make_unique<SequenceSource>(&sequence), EngineOptions{},
      wrong_extra);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument);

  // Different tracker family (name differs → fingerprint differs).
  auto wrong_tracker = AvtEngine::Recover(
      MakeTracker(AvtAlgorithm::kGreedy, 3, 3),
      std::make_unique<SequenceSource>(&sequence), EngineOptions{},
      durability);
  ASSERT_FALSE(wrong_tracker.ok());
  EXPECT_EQ(wrong_tracker.status().code(), StatusCode::kInvalidArgument);

  // Different batch width (PreferredBatchSize is fingerprinted).
  TrackerConfig batched{/*label=*/"incavt/batch3", false, true,
                        IncAvtCsrMode::kMaintained, 3};
  auto wrong_batch = AvtEngine::Recover(
      BuildTracker(batched, 3, 3),
      std::make_unique<SequenceSource>(&sequence), EngineOptions{},
      durability);
  ASSERT_FALSE(wrong_batch.ok());
  EXPECT_EQ(wrong_batch.status().code(), StatusCode::kInvalidArgument);
}

TEST(Recovery, RejectsForeignSourceStream) {
  // Resuming against a stream shorter than the committed history is
  // detected during fast-forward: the source cannot be the one the log
  // was written from.
  SnapshotSequence sequence = SmallWorkload(47, 6, 60);
  TempDir dir("foreign");
  DurabilityOptions durability;
  durability.dir = dir.path();
  {
    AvtEngine engine(MakeTracker(AvtAlgorithm::kIncAvt, 3, 3),
                     std::make_unique<SequenceSource>(&sequence));
    ASSERT_TRUE(engine.EnableDurability(durability).ok());
    ASSERT_TRUE(engine.Drain().ok());
  }
  SnapshotSequence shorter = SmallWorkload(47, 2, 60);
  auto recovered = AvtEngine::Recover(
      MakeTracker(AvtAlgorithm::kIncAvt, 3, 3),
      std::make_unique<SequenceSource>(&shorter), EngineOptions{},
      durability);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kCorruption);
}

TEST(Recovery, EnableDurabilityRefusesUsedDirAndLateArming) {
  SnapshotSequence sequence = SmallWorkload(48, 3, 40);
  TempDir dir("refuse");
  DurabilityOptions durability;
  durability.dir = dir.path();
  {
    AvtEngine engine(MakeTracker(AvtAlgorithm::kIncAvt, 3, 3),
                     std::make_unique<SequenceSource>(&sequence));
    ASSERT_TRUE(engine.EnableDurability(durability).ok());
    ASSERT_TRUE(engine.Drain().ok());
  }
  // A second fresh run must not clobber the existing log.
  AvtEngine clobber(MakeTracker(AvtAlgorithm::kIncAvt, 3, 3),
                    std::make_unique<SequenceSource>(&sequence));
  Status status = clobber.EnableDurability(durability);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);

  // Arming after the first Step is a caller error.
  TempDir late_dir("late");
  AvtEngine late(MakeTracker(AvtAlgorithm::kIncAvt, 3, 3),
                 std::make_unique<SequenceSource>(&sequence));
  ASSERT_TRUE(late.Step().value());
  DurabilityOptions late_opts;
  late_opts.dir = late_dir.path();
  status = late.EnableDurability(late_opts);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(Recovery, FaultySourceStackRecoversBitIdentically) {
  // The full resilience stack under a kill: transient faults absorbed
  // by retries BEFORE the crash, a fresh fault-injecting stack after
  // it, and the recovered run still lands bit-identical to the clean
  // uninterrupted reference.
  SnapshotSequence sequence = SmallWorkload(49);
  auto make_stack = [&sequence]() -> std::unique_ptr<DeltaSource> {
    FaultInjectionOptions fault;
    fault.seed = 5;
    fault.transient_rate = 0.25;
    RetryOptions retry;
    retry.max_retries = 16;
    retry.initial_backoff_millis = 0.01;
    retry.max_backoff_millis = 0.1;
    return std::make_unique<RetryingSource>(
        std::make_unique<FaultInjectingSource>(
            std::make_unique<SequenceSource>(&sequence), fault),
        retry);
  };

  AvtEngine reference(MakeTracker(AvtAlgorithm::kIncAvt, 3, 3),
                      std::make_unique<SequenceSource>(&sequence));
  ASSERT_TRUE(reference.Drain().ok());
  const FinalState expected = Capture(reference);

  TempDir dir("faulty_recover");
  DurabilityOptions durability;
  durability.dir = dir.path();
  durability.checkpoint_every = 2;
  {
    AvtEngine victim(MakeTracker(AvtAlgorithm::kIncAvt, 3, 3),
                     make_stack());
    ASSERT_TRUE(victim.EnableDurability(durability).ok());
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(victim.Step().value());
  }
  auto recovered = AvtEngine::Recover(
      MakeTracker(AvtAlgorithm::kIncAvt, 3, 3), make_stack(),
      EngineOptions{}, durability);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_TRUE(recovered.value()->Drain().ok());
  EXPECT_EQ(Capture(*recovered.value()), expected);
}

// --- Durability-directory I/O failures --------------------------------
// (The tests run as root in CI, so permission-based unwritable dirs are
// not a usable failure vector; routing the path THROUGH a regular file
// (ENOTDIR / EEXIST) fails for root too.)

TEST(DurabilityIo, EnableDurabilityThroughRegularFilePathIsIoError) {
  SnapshotSequence sequence = SmallWorkload(51, 3, 40);
  TempDir dir("io_notdir");
  fs::create_directories(dir.path());
  const std::string file = dir.path() + "/plain-file";
  WriteFileBytes(file, "not a directory");

  for (const std::string& target :
       {file, file + "/sub"}) {  // EEXIST-as-file, then ENOTDIR
    AvtEngine engine(MakeTracker(AvtAlgorithm::kIncAvt, 3, 3),
                     std::make_unique<SequenceSource>(&sequence));
    DurabilityOptions durability;
    durability.dir = target;
    Status status = engine.EnableDurability(durability);
    ASSERT_FALSE(status.ok()) << target;
    EXPECT_EQ(status.code(), StatusCode::kIoError) << target;
    // Arming failed cleanly: the engine still runs, just not durably.
    EXPECT_TRUE(engine.Drain().ok()) << target;
  }
}

TEST(DurabilityIo, CheckpointDirVanishingMidRunHaltsDurability) {
  SnapshotSequence sequence = SmallWorkload(52, 5, 40);
  TempDir dir("io_vanish");
  DurabilityOptions durability;
  durability.dir = dir.path();
  durability.checkpoint_every = 1;

  AvtEngine engine(MakeTracker(AvtAlgorithm::kIncAvt, 3, 3),
                   std::make_unique<SequenceSource>(&sequence));
  ASSERT_TRUE(engine.EnableDurability(durability).ok());
  ASSERT_TRUE(engine.Step().value());  // G_0 + initial checkpoint

  // The directory disappears under a live run (operator error, tmpfs
  // cleanup). The WAL's open handle may keep absorbing appends, but
  // the next cadenced checkpoint cannot land — and an engine that
  // cannot keep its crash-safety promise must say so, not stream on
  // silently unprotected.
  fs::remove_all(dir.path());
  StatusOr<bool> stepped = engine.Step();
  ASSERT_FALSE(stepped.ok());
  EXPECT_EQ(stepped.status().code(), StatusCode::kIoError);
  EXPECT_EQ(engine.health().state(), HealthState::kHalted);
  EXPECT_EQ(engine.health().reason(), HealthReason::kDurabilityFailure);

  // Broken durability is sticky: no later Step silently resumes.
  StatusOr<bool> again = engine.Step();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().message(), stepped.status().message());
}

TEST(DurabilityIo, QuarantineOpenFailureHaltsInsteadOfDroppingPoison) {
  // The dead-letter log exists so poison is never silently dropped; if
  // it cannot be opened when the first poison delta arrives, the engine
  // halts rather than pretend the delta never existed.
  TempDir dir("io_qfail");
  fs::create_directories(dir.path());
  const std::string file = dir.path() + "/plain-file";
  WriteFileBytes(file, "not a directory");

  Graph initial(6);
  std::vector<EdgeDelta> deltas;
  deltas.push_back(MakeDelta({{0, 1}}));
  deltas.push_back(MakeDelta({{3, 3}}));  // self-loop poison
  SnapshotSequence sequence(initial);
  for (const EdgeDelta& delta : deltas) sequence.PushDelta(delta);

  EngineOptions options;
  options.quarantine_dir = file + "/sub";  // ENOTDIR on lazy open
  AvtEngine engine(MakeTracker(AvtAlgorithm::kIncAvt, 2, 2),
                   std::make_unique<SequenceSource>(&sequence), options);
  Status status = engine.Drain();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(engine.health().state(), HealthState::kHalted);
  EXPECT_EQ(engine.health().reason(), HealthReason::kDurabilityFailure);
  EXPECT_EQ(engine.QuarantinedDeltas(), 0u);
}

}  // namespace
}  // namespace avt
