// DynamicCsr unit suite: the order contract (append on insert,
// swap-with-back on delete, slabs copied verbatim by relocation and
// compaction) plus the slack/spill/compaction machinery itself. The
// cross-algorithm consequences of the contract (bit-identical anchors)
// are pinned by tests/differential_fuzz_test.cc; here we pin the
// structure against the Graph it mirrors, mutation by mutation.

#include "graph/dynamic_csr.h"

#include <gtest/gtest.h>

#include <vector>

#include "gen/models.h"
#include "graph/delta.h"
#include "maint/maintainer.h"
#include "util/random.h"

namespace avt {
namespace {

// Exact mirror check: same vertex count, edge count, and per-vertex
// neighbor sequence (order included).
::testing::AssertionResult MirrorsGraph(const DynamicCsr& csr,
                                        const Graph& g) {
  if (csr.NumVertices() != g.NumVertices()) {
    return ::testing::AssertionFailure()
           << "vertex count " << csr.NumVertices() << " != "
           << g.NumVertices();
  }
  if (csr.NumEdges() != g.NumEdges()) {
    return ::testing::AssertionFailure()
           << "edge count " << csr.NumEdges() << " != " << g.NumEdges();
  }
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    std::span<const VertexId> a = csr.Neighbors(u);
    std::span<const VertexId> b = g.Neighbors(u);
    if (a.size() != b.size()) {
      return ::testing::AssertionFailure()
             << "degree(" << u << ") " << a.size() << " != " << b.size();
    }
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[i]) {
        return ::testing::AssertionFailure()
               << "neighbors(" << u << ")[" << i << "] " << a[i]
               << " != " << b[i] << " (order drift)";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(DynamicCsr, RebuildCopiesNeighborOrderVerbatim) {
  Rng rng(11);
  Graph g = ChungLuPowerLaw(300, 6.0, 2.2, 60, rng);
  DynamicCsr csr;
  csr.Rebuild(g);
  EXPECT_TRUE(MirrorsGraph(csr, g));
  EXPECT_EQ(csr.relocations(), 0u);
  EXPECT_EQ(csr.compactions(), 0u);
  // Every slab carries slack beyond its degree.
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    EXPECT_GT(csr.CapacityOf(u), g.Degree(u));
  }
}

TEST(DynamicCsr, InsertAppendsLikeGraphPushBack) {
  Graph g(6);
  DynamicCsr csr;
  csr.Rebuild(g);
  const std::pair<VertexId, VertexId> inserts[] = {
      {0, 1}, {0, 2}, {0, 3}, {2, 4}, {4, 0}, {5, 1}};
  for (auto [u, v] : inserts) {
    ASSERT_TRUE(g.AddEdge(u, v));
    csr.AddEdge(u, v);
    ASSERT_TRUE(MirrorsGraph(csr, g));
  }
  // Append order is the insertion order, not sorted order.
  std::vector<VertexId> expected = {1, 2, 3, 4};
  std::span<const VertexId> actual = csr.Neighbors(0);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]);
  }
}

TEST(DynamicCsr, DeleteSwapsWithBackExactlyLikeGraph) {
  Graph g(5);
  DynamicCsr csr;
  csr.Rebuild(g);
  for (VertexId v = 1; v < 5; ++v) {
    ASSERT_TRUE(g.AddEdge(0, v));
    csr.AddEdge(0, v);
  }
  // Removing (0,2) from [1,2,3,4] must leave [1,4,3] in BOTH structures
  // (middle slot overwritten by the back, back popped).
  ASSERT_TRUE(g.RemoveEdge(0, 2));
  csr.RemoveEdge(0, 2);
  ASSERT_TRUE(MirrorsGraph(csr, g));
  std::span<const VertexId> after = csr.Neighbors(0);
  ASSERT_EQ(after.size(), 3u);
  EXPECT_EQ(after[0], 1u);
  EXPECT_EQ(after[1], 4u);
  EXPECT_EQ(after[2], 3u);
}

TEST(DynamicCsr, SlabGrowthSpillsAndPreservesOrder) {
  const VertexId n = 600;
  Graph g(n);
  DynamicCsr csr;
  csr.Rebuild(g);  // empty graph: minimal slabs everywhere
  // Grow one hub far past any initial slack: forces repeated
  // relocations of the hub's slab into the spill region.
  for (VertexId v = 1; v < n; ++v) {
    ASSERT_TRUE(g.AddEdge(0, v));
    csr.AddEdge(0, v);
  }
  EXPECT_GT(csr.relocations(), 0u);
  EXPECT_TRUE(MirrorsGraph(csr, g));
  // Geometric growth: the hub relocated O(log n) times, not O(n).
  EXPECT_LT(csr.relocations(), 20u + 2u * csr.compactions());
}

TEST(DynamicCsr, CompactionReclaimsGarbageAndPreservesOrder) {
  // Grow a hub (relocations strand garbage), shrink it back (live
  // payload collapses), then insert once more: the stranded garbage now
  // dominates the live entries and the insert's compaction check fires.
  const VertexId n = 4000;
  Graph g(n);
  DynamicCsr csr;
  csr.Rebuild(g);
  for (VertexId v = 1; v < n; ++v) {
    ASSERT_TRUE(g.AddEdge(0, v));
    csr.AddEdge(0, v);
  }
  ASSERT_GT(csr.relocations(), 0u);
  ASSERT_EQ(csr.compactions(), 0u);
  const uint64_t garbage_before = csr.DeadSlots();
  ASSERT_GT(garbage_before, 0u);
  for (VertexId v = 1; v < n - 50; ++v) {
    ASSERT_TRUE(g.RemoveEdge(0, v));
    csr.RemoveEdge(0, v);
  }
  ASSERT_TRUE(g.AddEdge(1, 2));
  csr.AddEdge(1, 2);
  EXPECT_GT(csr.compactions(), 0u);
  EXPECT_LT(csr.DeadSlots(), garbage_before);
  EXPECT_TRUE(MirrorsGraph(csr, g));
  // Post-compaction slabs are packed with fresh slack and stay usable.
  for (VertexId v = 1; v < 40; ++v) {
    if (v == 3 || g.HasEdge(3, v)) continue;
    ASSERT_TRUE(g.AddEdge(3, v));
    csr.AddEdge(3, v);
  }
  EXPECT_TRUE(MirrorsGraph(csr, g));
}

TEST(DynamicCsr, RandomChurnSoakStaysExact) {
  const VertexId n = 250;
  Rng rng(23);
  Graph g = ChungLuPowerLaw(n, 6.0, 2.2, 40, rng);
  DynamicCsr csr;
  csr.Rebuild(g);
  for (int op = 0; op < 6000; ++op) {
    VertexId u = static_cast<VertexId>(rng.Uniform(n));
    VertexId v = static_cast<VertexId>(rng.Uniform(n));
    if (u == v) continue;
    if (g.HasEdge(u, v)) {
      ASSERT_TRUE(g.RemoveEdge(u, v));
      csr.RemoveEdge(u, v);
    } else {
      ASSERT_TRUE(g.AddEdge(u, v));
      csr.AddEdge(u, v);
    }
    if (op % 500 == 0) {
      ASSERT_TRUE(MirrorsGraph(csr, g)) << "op " << op;
    }
  }
  EXPECT_TRUE(MirrorsGraph(csr, g));
}

TEST(DynamicCsr, MaintainerMirrorTracksApplyDelta) {
  Rng rng(31);
  Graph g = ChungLuPowerLaw(200, 6.0, 2.2, 40, rng);
  CoreMaintainer maintainer;
  maintainer.Reset(g);
  maintainer.SetCsrMirror(true);
  ASSERT_NE(maintainer.csr(), nullptr);
  EXPECT_TRUE(MirrorsGraph(*maintainer.csr(), maintainer.graph()));

  for (int step = 0; step < 30; ++step) {
    EdgeDelta delta;
    for (int i = 0; i < 8; ++i) {
      VertexId u = static_cast<VertexId>(rng.Uniform(200));
      VertexId v = static_cast<VertexId>(rng.Uniform(200));
      if (u == v) continue;
      if (maintainer.graph().HasEdge(u, v)) {
        delta.deletions.push_back(Edge(u, v));
      } else {
        delta.insertions.push_back(Edge(u, v));
      }
    }
    maintainer.ApplyDelta(delta);
    ASSERT_TRUE(MirrorsGraph(*maintainer.csr(), maintainer.graph()))
        << "step " << step;
  }

  // Disabling drops the mirror; re-enabling rebuilds it fresh.
  maintainer.SetCsrMirror(false);
  EXPECT_EQ(maintainer.csr(), nullptr);
  maintainer.SetCsrMirror(true);
  ASSERT_NE(maintainer.csr(), nullptr);
  EXPECT_TRUE(MirrorsGraph(*maintainer.csr(), maintainer.graph()));
}

}  // namespace
}  // namespace avt
